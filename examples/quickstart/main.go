// Quickstart: train a GraphSAGE model with Betty micro-batch partitioning
// on a synthetic ogbn-arxiv-like graph, under a simulated device capacity.
//
// It shows the core workflow end to end: load a dataset, build a training
// setup, let the memory-aware planner pick the number of micro-batches,
// train a few epochs, and evaluate.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"betty/internal/core"
	"betty/internal/dataset"
	"betty/internal/device"
)

func main() {
	// A scaled-down synthetic stand-in for ogbn-arxiv (see the dataset
	// package: power-law degrees, homophilous communities, learnable
	// features).
	ds, err := dataset.LoadScaled("ogbn-arxiv", 0.2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %s: %d nodes, %d edges, %d classes, %d train nodes\n",
		ds.Name, ds.Graph.NumNodes(), ds.Graph.NumEdges(), ds.NumClasses, len(ds.TrainIdx))

	// A simulated accelerator with a deliberately tight memory budget so
	// the planner has to split the batch.
	dev := device.New(24*device.MiB, device.DefaultCostModel())

	setup, err := core.BuildSAGE(ds, core.Options{
		Hidden:  64,
		Fanouts: []int{5, 10}, // input-first, like DGL's (10, 25) scaled down
		Device:  dev,
		Seed:    42,
	})
	if err != nil {
		log.Fatal(err)
	}

	for epoch := 1; epoch <= 5; epoch++ {
		st, err := setup.Engine.TrainEpochMicro()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("epoch %d: K=%d micro-batches, loss %.4f, peak %.1f MiB (cap %.1f), redundancy %d inputs\n",
			epoch, st.K, st.Loss,
			float64(st.PeakBytes)/(1<<20), float64(dev.Capacity())/(1<<20),
			st.Redundancy)
	}

	acc, err := setup.Engine.TestAccuracy()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("test accuracy after 5 epochs: %.3f\n", acc)
}
