// Memorywall: reproduce the paper's Figure 2 / Figure 10 story on one
// configuration. A 2-layer GraphSAGE with the LSTM aggregator exceeds the
// simulated device capacity in full-batch training (OOM), and Betty's
// memory-aware batch-level partitioning makes the same training run fit —
// with bitwise-identical learning dynamics.
//
//	go run ./examples/memorywall
package main

import (
	"errors"
	"fmt"
	"log"

	"betty/internal/core"
	"betty/internal/dataset"
	"betty/internal/device"
	"betty/internal/nn"
)

func main() {
	ds, err := dataset.LoadScaled("ogbn-products", 0.2)
	if err != nil {
		log.Fatal(err)
	}
	const capacity = 96 * device.MiB
	fmt.Printf("dataset %s (%d nodes), simulated device capacity %d MiB\n",
		ds.Name, ds.Graph.NumNodes(), capacity/device.MiB)

	build := func(fixedK int) (*core.Setup, *device.Device, error) {
		dev := device.New(capacity, device.DefaultCostModel())
		s, err := core.BuildSAGE(ds, core.Options{
			Hidden:     64,
			Layers:     1,
			Fanouts:    []int{10},
			Aggregator: nn.LSTM,
			Device:     dev,
			Seed:       7,
			FixedK:     fixedK, // 0 = memory-aware planning
		})
		return s, dev, err
	}

	// 1) Full-batch training: runs into the wall.
	full, _, err := build(1)
	if err != nil {
		log.Fatal(err)
	}
	_, err = full.Engine.TrainEpochFull()
	switch {
	case errors.Is(err, device.ErrOOM):
		fmt.Printf("full-batch training: OOM as expected\n  %v\n", err)
	case err != nil:
		log.Fatal(err)
	default:
		log.Fatal("expected the full batch to exceed the capacity; it fit")
	}

	// 2) Betty: the planner estimates micro-batch memory without running
	// anything and picks the smallest K that fits.
	betty, dev, err := build(0)
	if err != nil {
		log.Fatal(err)
	}
	st, err := betty.Engine.TrainEpochMicro()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("betty: planner chose K=%d after estimating %d candidate counts\n", st.K, st.PlanAttempts)
	fmt.Printf("betty: measured peak %.1f MiB (estimated %.1f MiB) under the %d MiB capacity\n",
		float64(st.PeakBytes)/(1<<20), float64(st.MaxEstimate)/(1<<20), capacity/device.MiB)
	fmt.Printf("betty: loss %.4f, %d duplicated input nodes across micro-batches\n", st.Loss, st.Redundancy)
	fmt.Printf("simulated epoch time: %.2f ms compute + %.2f ms transfer\n",
		1e3*dev.ComputeSeconds(), 1e3*dev.TransferSeconds())
}
