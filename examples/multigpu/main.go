// Multigpu: scale Betty micro-batch training across several simulated
// devices — the multi-GPU extension the paper lists as future work. The K
// micro-batches are scheduled over D devices with an LPT greedy assignment,
// partial gradients are accumulated, and one simulated ring all-reduce
// synchronizes them; the result is bit-identical to single-device training.
//
//	go run ./examples/multigpu
package main

import (
	"fmt"
	"log"

	"betty/internal/core"
	"betty/internal/dataset"
	"betty/internal/device"
)

func main() {
	ds, err := dataset.LoadScaled("ogbn-products", 0.3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %s: %d nodes, %d train\n\n", ds.Name, ds.Graph.NumNodes(), len(ds.TrainIdx))

	const k = 16
	fmt.Printf("%-8s %-12s %-14s %-12s %s\n", "devices", "makespan/ms", "allreduce/ms", "speedup", "per-device batches")
	var base float64
	for _, numDev := range []int{1, 2, 4, 8} {
		s, err := core.BuildSAGE(ds, core.Options{
			Hidden: 64, Fanouts: []int{3, 8}, Seed: 11, FixedK: k,
		})
		if err != nil {
			log.Fatal(err)
		}
		devs := make([]*device.Device, numDev)
		for i := range devs {
			devs[i] = device.New(4*device.GiB, device.DefaultCostModel())
		}
		md := &core.MultiDevice{Engine: s.Engine, Devices: devs}
		st, err := md.TrainEpoch()
		if err != nil {
			log.Fatal(err)
		}
		if numDev == 1 {
			base = st.Makespan
		}
		batches := make([]int, numDev)
		for i, l := range st.PerDevice {
			batches[i] = l.Batches
		}
		fmt.Printf("%-8d %-12.3f %-14.3f %-12.2f %v\n",
			numDev, 1e3*st.Makespan, 1e3*st.AllReduceSeconds, base/st.Makespan, batches)
	}
	fmt.Println("\ngradients are identical regardless of the device count, so accuracy")
	fmt.Println("is unchanged; only the simulated wall time improves.")
}
