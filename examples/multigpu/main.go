// Multigpu: scale Betty micro-batch training across several simulated
// devices with GSplit-style split-parallelism. Every planned micro-batch is
// itself REG-partitioned into one shard per device; shards execute
// cooperatively, boundary (halo) features move between devices over the
// fast interconnect instead of being re-loaded from the host, and a
// deterministic tree all-reduce merges the gradients. The result is
// bit-identical to single-device training at any device count; only the
// simulated wall time, per-device memory, and traffic mix change.
//
//	go run ./examples/multigpu
package main

import (
	"fmt"
	"log"

	"betty/internal/core"
	"betty/internal/dataset"
	"betty/internal/device"
)

func main() {
	ds, err := dataset.LoadScaled("ogbn-products", 0.3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %s: %d nodes, %d train\n\n", ds.Name, ds.Graph.NumNodes(), len(ds.TrainIdx))

	const k = 16
	fmt.Printf("%-8s %-12s %-12s %-14s %-10s %s\n",
		"devices", "makespan/ms", "speedup", "allreduce/ms", "halo/MiB", "max peak/MiB")
	var base float64
	for _, numDev := range []int{1, 2, 4, 8} {
		s, err := core.BuildSAGE(ds, core.Options{
			Hidden: 64, Fanouts: []int{3, 8}, Seed: 11, FixedK: k,
		})
		if err != nil {
			log.Fatal(err)
		}
		devs := make([]*device.Device, numDev)
		for i := range devs {
			devs[i] = device.New(4*device.GiB, device.DefaultCostModel())
		}
		md := &core.MultiDevice{Engine: s.Engine, Devices: devs}
		st, err := md.TrainEpoch()
		if err != nil {
			log.Fatal(err)
		}
		if numDev == 1 {
			base = st.Makespan
		}
		var maxPeak int64
		for _, l := range st.PerDevice {
			if l.PeakBytes > maxPeak {
				maxPeak = l.PeakBytes
			}
		}
		fmt.Printf("%-8d %-12.3f %-12.2f %-14.3f %-10.2f %.1f\n",
			numDev, 1e3*st.Makespan, base/st.Makespan, 1e3*st.AllReduceSeconds,
			float64(st.HaloBytes)/(1<<20), float64(maxPeak)/(1<<20))
	}
	fmt.Println("\nlosses, gradients, and parameters are bitwise identical regardless of")
	fmt.Println("the device count; only the simulated wall time, per-device memory,")
	fmt.Println("and host-vs-interconnect traffic mix change.")
}
