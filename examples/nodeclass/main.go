// Nodeclass: a full node-classification training run comparing full-batch
// training against Betty micro-batch training and conventional mini-batch
// training on the same synthetic ogbn-arxiv graph — the Table 5 / Figure 13
// story: Betty tracks the full batch exactly, mini-batch does not.
//
//	go run ./examples/nodeclass
package main

import (
	"fmt"
	"log"

	"betty/internal/core"
	"betty/internal/dataset"
)

const epochs = 15

func main() {
	ds, err := dataset.LoadScaled("ogbn-arxiv", 0.15)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %s: %d nodes, %d train / %d val / %d test\n\n",
		ds.Name, ds.Graph.NumNodes(), len(ds.TrainIdx), len(ds.ValIdx), len(ds.TestIdx))

	build := func(fixedK int) *core.Setup {
		s, err := core.BuildSAGE(ds, core.Options{
			Hidden:  64,
			Fanouts: []int{5, 10},
			Seed:    3,
			FixedK:  fixedK,
			LR:      0.01,
		})
		if err != nil {
			log.Fatal(err)
		}
		return s
	}

	full := build(1)
	betty := build(8)
	mini := build(1) // reused for mini-batch epochs below

	fmt.Println("epoch  full-batch    betty K=8     mini-batch x8")
	for e := 1; e <= epochs; e++ {
		if _, err := full.Engine.TrainEpochMicro(); err != nil {
			log.Fatal(err)
		}
		if _, err := betty.Engine.TrainEpochMicro(); err != nil {
			log.Fatal(err)
		}
		if _, err := mini.Engine.TrainEpochMini(8, uint64(e)); err != nil {
			log.Fatal(err)
		}
		fa, err := full.Engine.ValAccuracy()
		if err != nil {
			log.Fatal(err)
		}
		ba, err := betty.Engine.ValAccuracy()
		if err != nil {
			log.Fatal(err)
		}
		ma, err := mini.Engine.ValAccuracy()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%5d  %.4f        %.4f        %.4f\n", e, fa, ba, ma)
	}

	fmt.Println()
	for name, s := range map[string]*core.Setup{"full": full, "betty": betty, "mini": mini} {
		acc, err := s.Engine.TestAccuracy()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("final test accuracy (%s): %.4f\n", name, acc)
	}
	fmt.Println("\nbetty's column matches full-batch exactly: micro-batch gradient")
	fmt.Println("accumulation is mathematically equivalent to full-batch training,")
	fmt.Println("while mini-batch training changes the effective batch size.")
}
