// Partitionlab: dissect Betty's redundancy-embedded-graph partitioning on
// one sampled batch. It compares the four batch partitioners (range,
// random, metis, betty) on redundancy, balance, and estimated peak memory,
// and prints the REG statistics that drive the differences — a miniature
// of the paper's Figures 11 and 16.
//
//	go run ./examples/partitionlab
package main

import (
	"fmt"
	"log"

	"betty/internal/dataset"
	"betty/internal/graph"
	"betty/internal/memory"
	"betty/internal/nn"
	"betty/internal/partition"
	"betty/internal/reg"
	"betty/internal/rng"
	"betty/internal/sample"
)

func main() {
	ds, err := dataset.LoadScaled("ogbn-products", 0.4)
	if err != nil {
		log.Fatal(err)
	}

	// Sample the full training batch: a 2-level bipartite structure.
	sampler := sample.New([]int{3, 8}, 1)
	blocks, err := sampler.Sample(ds.Graph, ds.TrainIdx)
	if err != nil {
		log.Fatal(err)
	}
	stats := graph.Stats(blocks)
	fmt.Printf("full batch: %d output nodes, %d input nodes, %d edges across %d layers\n",
		stats.NumOutput, stats.NumInput, stats.TotalEdges, len(blocks))

	// Inspect the REG: its edge weights count shared neighbors.
	last := blocks[len(blocks)-1]
	regGraph, err := reg.BuildREG(last)
	if err != nil {
		log.Fatal(err)
	}
	var wsum float64
	var wmax float32
	for v := int32(0); int(v) < regGraph.N; v++ {
		_, ws := regGraph.Neighbors(v)
		for _, w := range ws {
			wsum += float64(w)
			if w > wmax {
				wmax = w
			}
		}
	}
	fmt.Printf("REG: %d nodes, %d directed half-edges, max shared-neighbor weight %.0f\n\n",
		regGraph.N, len(regGraph.Adj), wmax)

	// Model spec for memory estimates.
	model, err := nn.NewGraphSAGE(nn.Config{
		InDim: ds.FeatureDim(), Hidden: 64, OutDim: ds.NumClasses,
		Layers: len(blocks), Aggregator: nn.Mean,
	}, rng.New(1))
	if err != nil {
		log.Fatal(err)
	}
	spec := memory.SpecFromSAGE(model, nn.NewAdam(model, 0.01))

	const k = 8
	fmt.Printf("%-8s %12s %14s %12s %12s\n", "method", "redundancy", "max peak MiB", "balance", "REG cut")
	for _, p := range []reg.BatchPartitioner{
		reg.RangeBatch{},
		reg.RandomBatch{Seed: 9},
		reg.MetisBatch{Seed: 9},
		reg.BettyBatch{Seed: 9},
	} {
		groups, err := p.PartitionBatch(last, k)
		if err != nil {
			log.Fatal(err)
		}
		var micro [][]*graph.Block
		var maxPeak int64
		for _, sel := range groups {
			mb, err := graph.SliceBatch(blocks, sel)
			if err != nil {
				log.Fatal(err)
			}
			micro = append(micro, mb)
			est, err := memory.Estimate(mb, spec)
			if err != nil {
				log.Fatal(err)
			}
			if est.Peak() > maxPeak {
				maxPeak = est.Peak()
			}
		}
		redundancy := graph.InputRedundancy(blocks, micro)

		parts := make([]int32, last.NumDst)
		for pi, grp := range groups {
			for _, d := range grp {
				parts[d] = int32(pi)
			}
		}
		cut := partition.EdgeCut(regGraph, parts)
		balance := partition.Balance(regGraph, parts, k)
		fmt.Printf("%-8s %12d %14.2f %12.3f %12.0f\n",
			p.Name(), redundancy, float64(maxPeak)/(1<<20), balance, cut)
	}
	fmt.Println("\nlower REG cut -> fewer shared neighbors split apart -> less redundancy")
	fmt.Println("and a lower worst-case micro-batch footprint.")
}
