package main

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"betty/internal/checkpoint"
	"betty/internal/dataset"
	"betty/internal/serve"
)

// baseConfig is the e2e server shape shared by the tests: a small cora
// model on a random port, no warm-up training (weights are deterministic
// in the seed, so an in-process Build with the same knobs is bitwise the
// served model).
func baseConfig() serveConfig {
	return serveConfig{
		addr:    "127.0.0.1:0",
		dataset: "cora",
		scale:   0.5,
		model:   "sage",
		agg:     "mean",
		hidden:  16,
		heads:   4,
		fanouts: "4,6",
		epochs:  0,
		lr:      0.01,
		seed:    5,
		getenv:  func(string) string { return "" },
	}
}

// startServer runs cfg in a goroutine and returns its base URL and a stop
// function that shuts it down and propagates any run error.
func startServer(t *testing.T, cfg serveConfig) (string, func()) {
	t.Helper()
	ready := make(chan string, 1)
	shutdown := make(chan struct{})
	errc := make(chan error, 1)
	cfg.ready = ready
	cfg.shutdown = shutdown
	cfg.out = testWriter{t}
	go func() { errc <- run(cfg) }()
	select {
	case addr := <-ready:
		return "http://" + addr, func() {
			close(shutdown)
			if err := <-errc; err != nil {
				t.Errorf("server exited with error: %v", err)
			}
		}
	case err := <-errc:
		t.Fatalf("server failed to start: %v", err)
		return "", nil
	}
}

type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Log(strings.TrimSuffix(string(p), "\n"))
	return len(p), nil
}

// postPredict sends one predict call, returning the status code and the
// decoded success body (zero on failure statuses).
func postPredict(t *testing.T, base, body string) (int, serve.PredictResponse) {
	t.Helper()
	resp, err := http.Post(base+"/v1/predict", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out serve.PredictResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, out
}

// metrics fetches /metricsz and returns every counter and gauge by name.
func metrics(t *testing.T, base string) map[string]int64 {
	t.Helper()
	resp, err := http.Get(base + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out := map[string]int64{}
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var line struct {
			Type  string `json:"type"`
			Name  string `json:"name"`
			Value int64  `json:"value"`
		}
		if err := dec.Decode(&line); err != nil {
			t.Fatalf("metricsz line: %v", err)
		}
		if line.Type == "counter" || line.Type == "gauge" {
			out[line.Name] = line.Value
		}
	}
	return out
}

// waitMetric polls until the named metric satisfies ok, or fails after 10s.
func waitMetric(t *testing.T, base, name string, ok func(int64) bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if ok(metrics(t, base)[name]) {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("metric %s never reached the expected state", name)
}

// soloReference serves each trace alone on an in-process server built with
// the same dataset, weights, and serving seed as the e2e server.
func soloReference(t *testing.T, cfg serveConfig, model any, traces [][]int32) [][][]float32 {
	t.Helper()
	ds, err := dataset.LoadScaled(cfg.dataset, cfg.scale)
	if err != nil {
		t.Fatal(err)
	}
	fanouts, err := parseFanouts(cfg.fanouts)
	if err != nil {
		t.Fatal(err)
	}
	out := make([][][]float32, len(traces))
	for i, nodes := range traces {
		scfg := serve.Defaults()
		scfg.Fanouts = fanouts
		scfg.Seed = cfg.seed
		scfg.MaxWait = 0
		s, err := serve.New(ds, model, scfg)
		if err != nil {
			t.Fatal(err)
		}
		s.Start()
		scores, err := s.Predict(nodes, 0)
		if err != nil {
			t.Fatal(err)
		}
		s.Close()
		out[i] = scores
	}
	return out
}

// buildReferenceModel constructs the exact model run(cfg) serves (same
// dataset, knobs, and seed — weight init is deterministic).
func buildReferenceModel(t *testing.T, cfg serveConfig) any {
	t.Helper()
	ds, err := dataset.LoadScaled(cfg.dataset, cfg.scale)
	if err != nil {
		t.Fatal(err)
	}
	fanouts, err := parseFanouts(cfg.fanouts)
	if err != nil {
		t.Fatal(err)
	}
	setup, err := buildModel(ds, cfg, fanouts)
	if err != nil {
		t.Fatal(err)
	}
	return setup.Model
}

func bitwiseEqual(a, b [][]float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if math.Float32bits(a[i][j]) != math.Float32bits(b[i][j]) {
				return false
			}
		}
	}
	return true
}

func nodesJSON(nodes []int32) string {
	parts := make([]string, len(nodes))
	for i, v := range nodes {
		parts[i] = fmt.Sprint(v)
	}
	return "[" + strings.Join(parts, ",") + "]"
}

// The headline e2e: concurrent requests against a random port must
// coalesce into fewer batches, every response must be bitwise the
// single-request answer, and the planner's estimated peak must respect
// the configured budget.
func TestE2ECoalescingAndExactness(t *testing.T) {
	cfg := baseConfig()
	const capacityMiB = 64
	cfg.getenv = func(k string) string {
		switch k {
		case serve.EnvMaxWaitMS:
			return "60" // generous window so all concurrent requests share a batch
		case serve.EnvCapacityMiB:
			return fmt.Sprint(capacityMiB)
		}
		return ""
	}
	base, stop := startServer(t, cfg)
	defer stop()

	traces := [][]int32{
		{3, 8, 120}, {8, 700, 3}, {41, 5}, {700, 701, 702},
		{1, 2, 3, 4}, {120, 5, 9},
	}
	got := make([][][]float32, len(traces))
	var wg sync.WaitGroup
	for i, nodes := range traces {
		wg.Add(1)
		go func(i int, nodes []int32) {
			defer wg.Done()
			code, resp := postPredict(t, base, `{"nodes":`+nodesJSON(nodes)+`}`)
			if code != http.StatusOK {
				t.Errorf("request %d: status %d", i, code)
				return
			}
			got[i] = resp.Scores
		}(i, nodes)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	m := metrics(t, base)
	if m["serve.requests"] != int64(len(traces)) {
		t.Fatalf("served %d requests, want %d", m["serve.requests"], len(traces))
	}
	if m["serve.batches"] >= int64(len(traces)) {
		t.Fatalf("no coalescing: %d batches for %d requests", m["serve.batches"], len(traces))
	}
	if peak := m["serve.max_est_peak_bytes"]; peak <= 0 || peak > capacityMiB<<20 {
		t.Fatalf("planned peak %d outside the %d MiB budget", peak, capacityMiB)
	}

	model := buildReferenceModel(t, cfg)
	want := soloReference(t, cfg, model, traces)
	for i := range traces {
		if !bitwiseEqual(got[i], want[i]) {
			t.Fatalf("request %d: coalesced HTTP response differs from solo inference", i)
		}
	}
}

// Backpressure e2e: with a one-deep queue and a slow in-flight batch, the
// overflow request gets 429 and the queued-but-expired request gets 504.
func TestE2EBackpressureAndDeadline(t *testing.T) {
	cfg := baseConfig()
	cfg.dataset = "ogbn-arxiv"
	cfg.scale = 0.2
	cfg.hidden = 64
	cfg.fanouts = "-1,-1" // full neighborhoods: the big request is genuinely slow
	cfg.getenv = func(k string) string {
		switch k {
		case serve.EnvMaxWaitMS:
			return "0"
		case serve.EnvMaxBatch:
			return "1"
		case serve.EnvQueueDepth:
			return "1"
		case serve.EnvMaxRequestNodes:
			return "1000000"
		case serve.EnvCapacityMiB:
			return "8192"
		case serve.EnvTimeoutMS:
			return "0"
		}
		return ""
	}
	base, stop := startServer(t, cfg)
	defer stop()

	ds, err := dataset.LoadScaled(cfg.dataset, cfg.scale)
	if err != nil {
		t.Fatal(err)
	}
	heavy := make([]int32, ds.Graph.NumNodes())
	for i := range heavy {
		heavy[i] = int32(i)
	}

	heavyBody := `{"nodes":` + nodesJSON(heavy) + `}`

	type result struct {
		code int
	}
	slow := make(chan result, 1)
	go func() {
		code, _ := postPredict(t, base, heavyBody)
		slow <- result{code}
	}()
	// Wait until the heavy request is being executed (dequeued, in
	// flight) so the queue is empty for the next arrival.
	waitMetric(t, base, "serve.inflight_requests", func(v int64) bool { return v == 1 })

	queued := make(chan result, 1)
	go func() {
		code, _ := postPredict(t, base, `{"nodes":[1],"timeout_ms":1}`)
		queued <- result{code}
	}()
	// Wait until it occupies the queue's only slot. Its 1ms deadline
	// expires while the heavy batch runs, so the next batch boundary
	// must reject it with 504 — that assertion is unconditional below.
	waitMetric(t, base, "serve.queue_depth", func(v int64) bool { return v == 1 })

	// The 429 path: a single probe races with the heavy batch finishing,
	// so saturate instead — two feeders keep heavy requests arriving
	// while probes retry. While saturated, either the queue is full
	// (probe → 429) or the probe takes the only slot and the next probe
	// bounces, so a 429 must surface; only its absence would hang the
	// loop, and the 10s cap turns that into a failure.
	stopFeed := make(chan struct{})
	var feeders sync.WaitGroup
	for i := 0; i < 2; i++ {
		feeders.Add(1)
		go func() {
			defer feeders.Done()
			for {
				select {
				case <-stopFeed:
					return
				default:
				}
				resp, err := http.Post(base+"/v1/predict", "application/json", strings.NewReader(heavyBody))
				if err != nil {
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					time.Sleep(time.Millisecond)
				}
			}
		}()
	}
	got429 := false
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		resp, err := http.Post(base+"/v1/predict", "application/json", strings.NewReader(`{"nodes":[2]}`))
		if err != nil {
			t.Fatal(err)
		}
		var fail struct {
			Error string `json:"error"`
		}
		code := resp.StatusCode
		if code == http.StatusTooManyRequests {
			if err := json.NewDecoder(resp.Body).Decode(&fail); err != nil {
				t.Fatal(err)
			}
		}
		resp.Body.Close()
		if code == http.StatusTooManyRequests {
			if !strings.Contains(fail.Error, "queue") {
				t.Fatalf("429 body %q does not name the queue", fail.Error)
			}
			got429 = true
			break
		}
	}
	close(stopFeed)
	feeders.Wait()
	if !got429 {
		t.Fatal("never observed a 429 while saturated")
	}

	if r := <-queued; r.code != http.StatusGatewayTimeout {
		t.Fatalf("expired request: status %d, want 504", r.code)
	}
	if r := <-slow; r.code != http.StatusOK {
		t.Fatalf("heavy request: status %d, want 200", r.code)
	}
	m := metrics(t, base)
	if m["serve.rejected_queue_full"] < 1 || m["serve.deadline_exceeded"] != 1 {
		t.Fatalf("rejection counters: %+v", m)
	}
}

// Checkpoint round trip: a model trained one epoch, checkpointed, and
// loaded by the server must answer bitwise identically to the in-process
// trained model.
func TestE2ECheckpointRoundTrip(t *testing.T) {
	cfg := baseConfig()
	cfg.seed = 9

	ds, err := dataset.LoadScaled(cfg.dataset, cfg.scale)
	if err != nil {
		t.Fatal(err)
	}
	fanouts, err := parseFanouts(cfg.fanouts)
	if err != nil {
		t.Fatal(err)
	}
	setup, err := buildModel(ds, cfg, fanouts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := setup.Engine.TrainEpochMicro(); err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(t.TempDir(), "model.ckpt")
	if err := checkpoint.SaveFile(ckpt, setup.Model, map[string]string{"epochs": "1"}); err != nil {
		t.Fatal(err)
	}

	cfg.ckpt = ckpt
	base, stop := startServer(t, cfg)
	defer stop()

	traces := [][]int32{{3, 8, 120}, {700, 41, 5}}
	want := soloReference(t, cfg, setup.Model, traces)
	for i, nodes := range traces {
		code, resp := postPredict(t, base, `{"nodes":`+nodesJSON(nodes)+`}`)
		if code != http.StatusOK {
			t.Fatalf("predict status %d", code)
		}
		if !bitwiseEqual(resp.Scores, want[i]) {
			t.Fatalf("request %d: checkpoint-loaded server differs from in-process model", i)
		}
	}
}

// Malformed BETTY_SERVE_* values must abort startup, naming the variable.
func TestEnvFailsLoudlyAtStartup(t *testing.T) {
	cfg := baseConfig()
	cfg.getenv = func(k string) string {
		if k == serve.EnvMaxBatch {
			return "many"
		}
		return ""
	}
	err := run(cfg)
	if err == nil || !strings.Contains(err.Error(), serve.EnvMaxBatch) {
		t.Fatalf("run returned %v, want an error naming %s", err, serve.EnvMaxBatch)
	}

	cfg = baseConfig()
	cfg.fanouts = "0,5"
	if err := run(cfg); err == nil {
		t.Fatal("bad fanouts accepted")
	}
	cfg = baseConfig()
	cfg.model = "transformer"
	if err := run(cfg); err == nil {
		t.Fatal("unknown model accepted")
	}
	cfg = baseConfig()
	cfg.ckpt = filepath.Join(t.TempDir(), "missing.ckpt")
	if err := run(cfg); err == nil {
		t.Fatal("missing checkpoint accepted")
	}
}

// TrainThenServe covers the warm-up path of run itself.
func TestE2EWarmupTraining(t *testing.T) {
	cfg := baseConfig()
	cfg.epochs = 1
	base, stop := startServer(t, cfg)
	defer stop()
	if code, resp := postPredict(t, base, `{"nodes":[1,2]}`); code != http.StatusOK || len(resp.Scores) != 2 {
		t.Fatalf("warm-up server predict failed: %d", code)
	}
	// GCN and GAT builds must serve too.
	for _, model := range []string{"gcn", "gat"} {
		c := baseConfig()
		c.model = model
		c.hidden = 8
		c.heads = 2
		b, s := startServer(t, c)
		if code, _ := postPredict(t, b, `{"nodes":[5,7]}`); code != http.StatusOK {
			t.Fatalf("%s predict status %d", model, code)
		}
		s()
	}
}
