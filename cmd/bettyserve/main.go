// Command bettyserve exposes a trained GNN as an online prediction
// service: POST /v1/predict scores seed nodes, with concurrent requests
// dynamically batched, micro-batched under the device memory budget by
// the §4.4.3 planner, and answered bitwise-identically to single-request
// inference (DESIGN.md §11).
//
// Examples:
//
//	bettyserve -dataset ogbn-arxiv -scale 0.2 -epochs 3
//	bettyserve -dataset cora -checkpoint model.ckpt -addr 127.0.0.1:8747
//	BETTY_SERVE_CAPACITY_MIB=64 BETTY_SERVE_MAX_WAIT_MS=5 bettyserve -dataset cora
//
//	curl -s localhost:8747/v1/predict -d '{"nodes":[3,8,120]}'
//	curl -s localhost:8747/metricsz
//
// Serving policy (batching, admission, cache, budget) is configured by the
// BETTY_SERVE_* environment variables — see the knob table in README.md.
// A malformed value fails at startup rather than silently serving under a
// different policy.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"

	"betty/internal/checkpoint"
	"betty/internal/core"
	"betty/internal/dataset"
	"betty/internal/device"
	"betty/internal/nn"
	"betty/internal/obs"
	"betty/internal/serve"
	"betty/internal/store"
)

// serveConfig carries every knob of one bettyserve invocation; main fills
// it from flags and the environment, tests construct it directly.
type serveConfig struct {
	addr    string
	dataset string
	scale   float64
	model   string
	agg     string
	hidden  int
	heads   int
	fanouts string
	epochs  int
	lr      float32
	ckpt    string
	seed    uint64
	trace   bool

	// storePath serves out-of-core from a packed store (bettytrain -pack)
	// instead of loading the dataset into RAM; storeBudgetMiB bounds the
	// shard cache (BETTY_STORE_BUDGET_MIB overrides when set).
	storePath      string
	storeBudgetMiB int64

	// getenv resolves the BETTY_SERVE_* overrides (nil = os.Getenv).
	getenv func(string) string
	// ready, when non-nil, receives the bound listen address once the
	// server accepts connections (tests bind to port 0 and read it here).
	ready chan<- string
	// shutdown, when non-nil, triggers a graceful stop when closed: the
	// HTTP server stops accepting, the batcher drains, run returns nil.
	shutdown <-chan struct{}
	// out receives the human-readable log (default os.Stdout).
	out io.Writer
}

func main() {
	var cfg serveConfig
	flag.StringVar(&cfg.addr, "addr", "127.0.0.1:8747", "listen address")
	flag.StringVar(&cfg.dataset, "dataset", "ogbn-arxiv", "dataset: "+strings.Join(dataset.Names(), ", "))
	flag.Float64Var(&cfg.scale, "scale", 0.2, "dataset scale in (0,1]")
	flag.StringVar(&cfg.model, "model", "sage", "model: sage, gat, or gcn")
	flag.StringVar(&cfg.agg, "agg", "mean", "SAGE aggregator: mean, sum, pool, lstm")
	flag.IntVar(&cfg.hidden, "hidden", 64, "hidden width")
	flag.IntVar(&cfg.heads, "heads", 4, "GAT attention heads")
	flag.StringVar(&cfg.fanouts, "fanouts", "5,10", "per-layer fanouts, input-first (layers = count)")
	flag.IntVar(&cfg.epochs, "epochs", 1, "training epochs before serving (ignored with -checkpoint)")
	lr := flag.Float64("lr", 0.01, "Adam learning rate for the warm-up epochs")
	flag.StringVar(&cfg.ckpt, "checkpoint", "", "serve weights from this checkpoint instead of training")
	flag.Uint64Var(&cfg.seed, "seed", 1, "random seed (weights, sampling, partitioning)")
	flag.BoolVar(&cfg.trace, "trace", false, "record per-phase spans in /metricsz")
	flag.StringVar(&cfg.storePath, "store", "", "serve out-of-core from this packed store (bettytrain -pack)")
	flag.Int64Var(&cfg.storeBudgetMiB, "store-budget", 256, "out-of-core shard-cache budget in MiB")
	flag.Parse()
	cfg.lr = float32(*lr)

	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "bettyserve:", err)
		os.Exit(1)
	}
}

func run(cfg serveConfig) error {
	if cfg.out == nil {
		cfg.out = os.Stdout
	}
	if cfg.getenv == nil {
		cfg.getenv = os.Getenv
	}
	fanouts, err := parseFanouts(cfg.fanouts)
	if err != nil {
		return err
	}
	reg := obs.New(obs.RealClock())
	reg.SetTracing(cfg.trace)

	var ds *dataset.Dataset
	if cfg.storePath != "" {
		st, err := store.Open(cfg.storePath)
		if err != nil {
			return err
		}
		defer st.Close()
		budget := cfg.storeBudgetMiB
		if mib, err := store.ParseBudgetMiB(os.Getenv("BETTY_STORE_BUDGET_MIB")); err != nil {
			return err
		} else if mib > 0 {
			budget = mib
		}
		cache, err := store.NewCache(st, budget*device.MiB, reg)
		if err != nil {
			return err
		}
		if ds, err = st.Dataset(cache); err != nil {
			return err
		}
		fmt.Fprintf(cfg.out, "store %s: %d feature shards, cache budget %d MiB\n",
			cfg.storePath, st.NumShards(), budget)
	} else if ds, err = dataset.LoadScaled(cfg.dataset, cfg.scale); err != nil {
		return err
	}
	setup, err := buildModel(ds, cfg, fanouts)
	if err != nil {
		return err
	}
	if cfg.ckpt != "" {
		meta, err := checkpoint.LoadFile(cfg.ckpt, setup.Model)
		if err != nil {
			return err
		}
		fmt.Fprintf(cfg.out, "loaded checkpoint %s (%v)\n", cfg.ckpt, meta)
	} else {
		for e := 0; e < cfg.epochs; e++ {
			st, err := setup.Engine.TrainEpochMicro()
			if err != nil {
				return fmt.Errorf("warm-up epoch %d: %w", e+1, err)
			}
			fmt.Fprintf(cfg.out, "warm-up epoch %d: loss %.4f\n", e+1, st.Loss)
		}
	}

	scfg := serve.Defaults()
	scfg.Fanouts = fanouts
	scfg.Seed = cfg.seed
	scfg.Obs = reg
	if err := scfg.ApplyEnv(cfg.getenv); err != nil {
		return err
	}
	srv, err := serve.New(ds, setup.Model, scfg)
	if err != nil {
		return err
	}
	srv.Start()

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		srv.Close()
		return err
	}
	fmt.Fprintf(cfg.out, "serving %s/%s on http://%s (budget %d MiB, max batch %d, quant %v, embcache %v)\n",
		ds.Name, cfg.model, ln.Addr(), scfg.CapacityBytes>>20, scfg.MaxBatch, scfg.Quant, scfg.EmbMode)
	if cfg.ready != nil {
		cfg.ready <- ln.Addr().String()
	}
	hs := &http.Server{Handler: srv.Handler()}
	if cfg.shutdown != nil {
		go func() {
			<-cfg.shutdown
			// Graceful: stop accepting, wait for in-flight handlers, then
			// (below) drain the batcher.
			hs.Shutdown(context.Background())
		}()
	}
	err = hs.Serve(ln)
	if errors.Is(err, http.ErrServerClosed) {
		err = nil
	}
	if cerr := srv.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// buildModel assembles the architecture the flags describe (weights are
// replaced when -checkpoint is given).
func buildModel(ds *dataset.Dataset, cfg serveConfig, fanouts []int) (*core.Setup, error) {
	opts := core.Options{
		Hidden:  cfg.hidden,
		Heads:   cfg.heads,
		Fanouts: fanouts,
		LR:      cfg.lr,
		Seed:    cfg.seed,
	}
	switch cfg.model {
	case "sage":
		a, err := nn.ParseAggregator(cfg.agg)
		if err != nil {
			return nil, err
		}
		opts.Aggregator = a
		return core.BuildSAGE(ds, opts)
	case "gat":
		return core.BuildGAT(ds, opts)
	case "gcn":
		return core.BuildGCN(ds, opts)
	default:
		return nil, fmt.Errorf("unknown model %q (sage, gat, or gcn)", cfg.model)
	}
}

func parseFanouts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v == 0 || v < -1 {
			return nil, fmt.Errorf("bad fanout %q (positive integers or -1 for all neighbors)", p)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no fanouts given")
	}
	return out, nil
}
