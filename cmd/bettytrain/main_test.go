package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"betty/internal/checkpoint"
	"betty/internal/core"
	"betty/internal/dataset"
)

// smallConfig is a fast cora run used by every CLI test.
func smallConfig() runConfig {
	return runConfig{
		dataset:     "cora",
		scale:       0.2,
		model:       "sage",
		agg:         "mean",
		hidden:      8,
		heads:       2,
		fanouts:     "3,3",
		epochs:      3,
		lr:          0.01,
		partitioner: "betty",
		devices:     1,
		seed:        1,
		out:         &bytes.Buffer{},
	}
}

// parseNDJSON decodes every line of an NDJSON file and returns the set of
// "type" discriminators and phase names seen.
func parseNDJSON(t *testing.T, path string) (types, phases map[string]int) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	types = make(map[string]int)
	phases = make(map[string]int)
	for i, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var rec struct {
			Type  string `json:"type"`
			Phase string `json:"phase"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i+1, err, line)
		}
		types[rec.Type]++
		if rec.Phase != "" {
			phases[rec.Phase]++
		}
	}
	return types, phases
}

// A run that fails mid-training must still flush the metrics NDJSON and the
// checkpoint, keeping everything recorded up to the failure readable.
func TestRunFlushesMetricsAndCheckpointOnError(t *testing.T) {
	dir := t.TempDir()
	cfg := smallConfig()
	cfg.metrics = filepath.Join(dir, "run.ndjson")
	cfg.trace = true
	cfg.ckpt = filepath.Join(dir, "model.ckpt")
	injected := errors.New("injected mid-epoch failure")
	cfg.hook = func(epoch int) error {
		if epoch == 2 {
			return injected
		}
		return nil
	}

	err := run(cfg)
	if !errors.Is(err, injected) {
		t.Fatalf("run returned %v, want the injected error", err)
	}

	types, phases := parseNDJSON(t, cfg.metrics)
	if types["meta"] != 1 {
		t.Fatalf("meta lines = %d, want 1", types["meta"])
	}
	if types["span"] == 0 || types["counter"] == 0 || types["hist"] == 0 {
		t.Fatalf("flushed NDJSON missing record kinds: %v", types)
	}
	for _, ph := range []string{"sample", "forward", "backward", "step"} {
		if phases[ph] == 0 {
			t.Fatalf("no %q span in flushed trace (phases: %v)", ph, phases)
		}
	}

	// The checkpoint must hold the weights of the 2 completed epochs and
	// load back into a same-architecture model.
	ds, err := dataset.LoadScaled(cfg.dataset, cfg.scale)
	if err != nil {
		t.Fatal(err)
	}
	setup, err := core.BuildSAGE(ds, core.Options{Hidden: cfg.hidden, Fanouts: []int{3, 3}, Seed: cfg.seed})
	if err != nil {
		t.Fatal(err)
	}
	meta, err := checkpoint.LoadFile(cfg.ckpt, setup.Model)
	if err != nil {
		t.Fatalf("checkpoint unreadable after failed run: %v", err)
	}
	if meta["completed_epochs"] != "2" {
		t.Fatalf("completed_epochs = %q, want \"2\"", meta["completed_epochs"])
	}
}

// A clean run emits spans for every pipeline phase of every micro-batch,
// including the planner and evaluation phases.
func TestRunEmitsAllPhases(t *testing.T) {
	dir := t.TempDir()
	cfg := smallConfig()
	cfg.metrics = filepath.Join(dir, "run.ndjson")
	cfg.trace = true
	cfg.k = 2 // force partitioning so partition/reg_build phases appear
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	_, phases := parseNDJSON(t, cfg.metrics)
	for _, ph := range []string{"sample", "reg_build", "partition", "estimate",
		"forward", "backward", "step", "eval"} {
		if phases[ph] == 0 {
			t.Fatalf("no %q span in trace (phases: %v)", ph, phases)
		}
	}
	// 3 epochs x K=2 micro-batches
	if phases["forward"] < 6 {
		t.Fatalf("forward spans = %d, want >= 6", phases["forward"])
	}
}

// -metrics without -trace still writes counters and histograms (no spans),
// and the h2d phase appears once a device capacity is simulated.
func TestRunMetricsOnlyWithDevice(t *testing.T) {
	dir := t.TempDir()
	cfg := smallConfig()
	cfg.metrics = filepath.Join(dir, "run.ndjson")
	cfg.capacityMiB = 256
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	types, phases := parseNDJSON(t, cfg.metrics)
	if types["span"] != 0 {
		t.Fatalf("span records present without -trace: %v", types)
	}
	if types["counter"] == 0 || types["gauge"] == 0 || types["hist"] == 0 {
		t.Fatalf("metrics-only NDJSON missing record kinds: %v", types)
	}
	if len(phases) != 0 {
		t.Fatalf("unexpected phases without tracing: %v", phases)
	}
	// h2d durations still land in the phase histogram.
	data, err := os.ReadFile(cfg.metrics)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"span.h2d_ns"`)) {
		t.Fatal("no span.h2d_ns histogram in metrics output")
	}
}

// The adaptive tracker's learned margin reaches the human-readable output.
func TestRunAdaptiveReportsMargin(t *testing.T) {
	var out bytes.Buffer
	cfg := smallConfig()
	cfg.out = &out
	cfg.adaptive = true
	cfg.capacityMiB = 256
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "planner safety margin") {
		t.Fatalf("adaptive run did not report a margin:\n%s", out.String())
	}
}

// ExampleParseFanouts-style sanity: bad flags fail before any training.
func TestRunRejectsBadConfig(t *testing.T) {
	cfg := smallConfig()
	cfg.partitioner = "nope"
	if err := run(cfg); err == nil || !strings.Contains(err.Error(), "unknown partitioner") {
		t.Fatalf("err = %v, want unknown partitioner", err)
	}
	cfg = smallConfig()
	cfg.fanouts = "0"
	if err := run(cfg); err == nil || !strings.Contains(err.Error(), "bad fanout") {
		t.Fatalf("err = %v, want bad fanout", err)
	}
	cfg = smallConfig()
	cfg.model = "mlp"
	if err := run(cfg); err == nil || !strings.Contains(err.Error(), "unknown model") {
		t.Fatalf("err = %v, want unknown model", err)
	}
}
