// Command bettytrain trains a GNN with Betty micro-batch partitioning on a
// synthetic dataset under a simulated device capacity — the end-to-end
// training tool over the library's public surface.
//
// Examples:
//
//	bettytrain -dataset ogbn-arxiv -scale 0.2 -epochs 10
//	bettytrain -dataset ogbn-products -scale 0.2 -agg lstm -capacity 96 -epochs 5
//	bettytrain -dataset reddit -scale 0.1 -model gat -heads 2 -epochs 10
//	bettytrain -dataset cora -partitioner random -k 8 -epochs 20
//	bettytrain -dataset ogbn-arxiv -scale 0.2 -devices 4 -epochs 5
//	bettytrain -dataset cora -epochs 5 -metrics run.ndjson -trace
//
// With -metrics the run's counters, gauges, and per-phase histograms are
// written as NDJSON (see DESIGN.md §10); -trace additionally records one
// span per pipeline phase of every micro-batch. Both the metrics file and
// the -checkpoint file are flushed on error paths too, so a failed run
// still leaves a readable record of everything up to the failure.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"betty/internal/checkpoint"
	"betty/internal/core"
	"betty/internal/dataset"
	"betty/internal/device"
	"betty/internal/embcache"
	"betty/internal/memory"
	"betty/internal/nn"
	"betty/internal/obs"
	"betty/internal/reg"
	"betty/internal/store"
)

// runConfig carries every knob of one bettytrain invocation; main fills it
// from flags, tests construct it directly.
type runConfig struct {
	dataset     string
	scale       float64
	model       string
	agg         string
	hidden      int
	heads       int
	fanouts     string
	epochs      int
	lr          float32
	capacityMiB int64
	k           int
	partitioner string
	devices     int
	adaptive    bool
	seed        uint64

	// pack converts the (synthetic) dataset to the on-disk store format at
	// this path and exits; shard height comes from BETTY_STORE_SHARD_ROWS.
	pack string
	// storePath trains out-of-core from a packed store instead of loading
	// the dataset into RAM; features stream through a budget-pinned cache.
	storePath string
	// storeBudgetMiB bounds the shard cache (BETTY_STORE_BUDGET_MIB
	// overrides when set).
	storeBudgetMiB int64
	// macro persists sampled macrobatch frontiers at this path and reuses
	// them across epochs instead of resampling.
	macro string

	// metrics is the NDJSON output path ("" = no metrics file).
	metrics string
	// trace additionally records one span per pipeline phase in the
	// metrics output.
	trace bool
	// ckpt is the model checkpoint path ("" = no checkpoint).
	ckpt string

	// hook, when non-nil, runs after every completed epoch; an error
	// aborts training. Tests use it to exercise the flush-on-error path.
	hook func(epoch int) error
	// out receives the human-readable log (default os.Stdout).
	out io.Writer
}

func main() {
	var cfg runConfig
	flag.StringVar(&cfg.dataset, "dataset", "ogbn-arxiv", "dataset: "+strings.Join(dataset.Names(), ", "))
	flag.Float64Var(&cfg.scale, "scale", 0.2, "dataset scale in (0,1]")
	flag.StringVar(&cfg.model, "model", "sage", "model: sage, gat, or gcn")
	flag.StringVar(&cfg.agg, "agg", "mean", "SAGE aggregator: mean, sum, pool, lstm")
	flag.IntVar(&cfg.hidden, "hidden", 64, "hidden width")
	flag.IntVar(&cfg.heads, "heads", 4, "GAT attention heads")
	flag.StringVar(&cfg.fanouts, "fanouts", "5,10", "per-layer fanouts, input-first (layers = count)")
	flag.IntVar(&cfg.epochs, "epochs", 10, "training epochs")
	lr := flag.Float64("lr", 0.01, "Adam learning rate")
	flag.Int64Var(&cfg.capacityMiB, "capacity", 0, "simulated device capacity in MiB (0 = unbounded)")
	flag.IntVar(&cfg.k, "k", 0, "fixed micro-batch count (0 = memory-aware planner)")
	flag.StringVar(&cfg.partitioner, "partitioner", "betty", "batch partitioner: betty, metis, random, range")
	flag.IntVar(&cfg.devices, "devices", 1, "number of simulated devices (data-parallel)")
	flag.BoolVar(&cfg.adaptive, "adaptive", false, "learn a planner safety margin from measured peaks")
	flag.Uint64Var(&cfg.seed, "seed", 1, "random seed")
	flag.StringVar(&cfg.metrics, "metrics", "", "write run metrics as NDJSON to this file (flushed on errors too)")
	flag.BoolVar(&cfg.trace, "trace", false, "record per-phase spans in the -metrics output")
	flag.StringVar(&cfg.ckpt, "checkpoint", "", "save the trained model to this file (also on errors)")
	flag.StringVar(&cfg.pack, "pack", "", "pack the dataset into an on-disk store at this path and exit")
	flag.StringVar(&cfg.storePath, "store", "", "train out-of-core from this packed store (see -pack)")
	flag.Int64Var(&cfg.storeBudgetMiB, "store-budget", 256, "out-of-core shard-cache budget in MiB")
	flag.StringVar(&cfg.macro, "macro", "", "persist macrobatch frontiers here and reuse them across epochs")
	flag.Parse()
	cfg.lr = float32(*lr)

	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "bettytrain:", err)
		os.Exit(1)
	}
}

func run(cfg runConfig) (err error) {
	if cfg.out == nil {
		cfg.out = os.Stdout
	}
	fanouts, err := parseFanouts(cfg.fanouts)
	if err != nil {
		return err
	}
	if cfg.pack != "" {
		return runPack(cfg)
	}

	// The registry exists for the whole run and is flushed by a deferred
	// write, so a mid-epoch failure (OOM, injected error) still leaves a
	// readable NDJSON record of every phase executed before it.
	var obsReg *obs.Registry
	if cfg.metrics != "" || cfg.trace {
		obsReg = obs.New(obs.RealClock())
		obsReg.SetTracing(cfg.trace)
	}
	if cfg.metrics != "" {
		defer func() {
			if werr := obsReg.WriteFile(cfg.metrics); werr != nil && err == nil {
				err = werr
			}
		}()
	}

	var ds *dataset.Dataset
	if cfg.storePath != "" {
		st, err := store.Open(cfg.storePath)
		if err != nil {
			return err
		}
		defer st.Close()
		budget := cfg.storeBudgetMiB
		if mib, err := store.ParseBudgetMiB(os.Getenv("BETTY_STORE_BUDGET_MIB")); err != nil {
			return err
		} else if mib > 0 {
			budget = mib
		}
		cache, err := store.NewCache(st, budget*device.MiB, obsReg)
		if err != nil {
			return err
		}
		if ds, err = st.Dataset(cache); err != nil {
			return err
		}
		fmt.Fprintf(cfg.out, "store %s: %d feature shards, %.1f MiB on disk, cache budget %d MiB\n",
			cfg.storePath, st.NumShards(), float64(st.FeatureBytes())/(1<<20), budget)
	} else if ds, err = dataset.LoadScaled(cfg.dataset, cfg.scale); err != nil {
		return err
	}
	fmt.Fprintf(cfg.out, "dataset %s: %d nodes, %d edges, %d classes, %d train nodes\n",
		ds.Name, ds.Graph.NumNodes(), ds.Graph.NumEdges(), ds.NumClasses, len(ds.TrainIdx))

	opts := core.Options{
		Hidden:  cfg.hidden,
		Heads:   cfg.heads,
		Fanouts: fanouts,
		LR:      cfg.lr,
		Seed:    cfg.seed,
		FixedK:  cfg.k,
	}
	if cfg.capacityMiB > 0 {
		opts.Device = device.New(cfg.capacityMiB*device.MiB, device.DefaultCostModel())
	}
	switch cfg.partitioner {
	case "betty":
	case "metis":
		opts.Partitioner = reg.MetisBatch{Seed: cfg.seed}
	case "random":
		opts.Partitioner = reg.RandomBatch{Seed: cfg.seed}
	case "range":
		opts.Partitioner = reg.RangeBatch{}
	default:
		return fmt.Errorf("unknown partitioner %q", cfg.partitioner)
	}

	var setup *core.Setup
	switch cfg.model {
	case "sage":
		a, err := nn.ParseAggregator(cfg.agg)
		if err != nil {
			return err
		}
		opts.Aggregator = a
		setup, err = core.BuildSAGE(ds, opts)
		if err != nil {
			return err
		}
	case "gat":
		setup, err = core.BuildGAT(ds, opts)
		if err != nil {
			return err
		}
	case "gcn":
		setup, err = core.BuildGCN(ds, opts)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown model %q (sage, gat, or gcn)", cfg.model)
	}
	setup.Engine.SetObs(obsReg)
	if emb, err := buildEmbCache(obsReg, cfg.out); err != nil {
		return err
	} else if emb != nil {
		setup.Runner.Emb = emb
	}
	if cfg.adaptive {
		setup.Engine.Tracker = memory.NewErrorTracker()
	}
	if cfg.macro != "" {
		setup.Engine.Frontiers = store.NewMacroCache(cfg.macro, setup.Engine.Sampler.ConfigKey(), obsReg)
	}

	// Like the metrics flush, the checkpoint is written by a deferred save:
	// a failed run keeps the weights of its completed epochs.
	completed := 0
	if cfg.ckpt != "" {
		defer func() {
			meta := map[string]string{
				"model":            cfg.model,
				"dataset":          ds.Name,
				"completed_epochs": strconv.Itoa(completed),
			}
			if serr := checkpoint.SaveFile(cfg.ckpt, setup.Model, meta); serr != nil && err == nil {
				err = serr
			}
		}()
	}

	var multi *core.MultiDevice
	if cfg.devices > 1 {
		devs := make([]*device.Device, cfg.devices)
		capBytes := int64(64) * device.GiB
		if cfg.capacityMiB > 0 {
			capBytes = cfg.capacityMiB * device.MiB
		}
		for i := range devs {
			devs[i] = device.New(capBytes, device.DefaultCostModel())
		}
		multi = &core.MultiDevice{Engine: setup.Engine, Devices: devs}
	}

	fmt.Fprintf(cfg.out, "%-6s %-4s %-9s %-9s %-11s %-12s %s\n",
		"epoch", "K", "loss", "train acc", "peak MiB", "epoch sim s", "redundancy")
	for e := 1; e <= cfg.epochs; e++ {
		var (
			st  core.EpochStats
			sim float64
		)
		if multi != nil {
			mst, err := multi.TrainEpoch()
			if err != nil {
				return err
			}
			st = mst.EpochStats
			sim = mst.Makespan
		} else {
			st, err = setup.Engine.TrainEpochMicro()
			if err != nil {
				return err
			}
			sim = st.ComputeSeconds + st.TransferSeconds
		}
		fmt.Fprintf(cfg.out, "%-6d %-4d %-9.4f %-9.4f %-11.2f %-12.5f %d\n",
			e, st.K, st.Loss, st.TrainAcc, float64(st.PeakBytes)/(1<<20), sim, st.Redundancy)
		completed = e
		if cfg.hook != nil {
			if herr := cfg.hook(e); herr != nil {
				return fmt.Errorf("epoch %d: %w", e, herr)
			}
		}
	}

	val, err := setup.Engine.ValAccuracy()
	if err != nil {
		return err
	}
	test, err := setup.Engine.TestAccuracy()
	if err != nil {
		return err
	}
	fmt.Fprintf(cfg.out, "\nvalidation accuracy %.4f, test accuracy %.4f\n", val, test)
	if tr := setup.Engine.Tracker; tr != nil && tr.Observations() {
		fmt.Fprintf(cfg.out, "planner safety margin %.4f (measured-vs-estimated feedback)\n", tr.Margin())
	}
	return nil
}

// buildEmbCache assembles the historical-embedding cache from the
// BETTY_EMBCACHE* environment knobs (DESIGN.md §16). Unset means exact —
// the bitwise self-checking default — so a plain run continuously audits
// the cache path without ever changing a training float.
func buildEmbCache(obsReg *obs.Registry, out io.Writer) (*embcache.Cache, error) {
	mode, err := embcache.ParseMode(os.Getenv("BETTY_EMBCACHE"))
	if err != nil {
		return nil, err
	}
	if mode == embcache.ModeOff {
		return nil, nil
	}
	budgetMiB := int64(64)
	if mib, err := embcache.ParseBudgetMiB(os.Getenv("BETTY_EMBCACHE_BUDGET_MIB")); err != nil {
		return nil, err
	} else if mib > 0 {
		budgetMiB = mib
	}
	maxLag := 1
	if lag, err := embcache.ParseMaxLag(os.Getenv("BETTY_EMBCACHE_MAX_LAG")); err != nil {
		return nil, err
	} else if lag >= 0 {
		maxLag = lag
	}
	emb, err := embcache.New(embcache.Config{
		Mode:        mode,
		BudgetBytes: budgetMiB * device.MiB,
		MaxLag:      maxLag,
		Obs:         obsReg,
	})
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(out, "embedding cache: mode %v, budget %d MiB, max version lag %d\n",
		mode, budgetMiB, maxLag)
	return emb, nil
}

// runPack converts the flag-selected dataset into the on-disk store format
// and exits: frontiers of the training loop never see it. The shard height
// is the packed file's layout, so it rides the BETTY_STORE_SHARD_ROWS env
// knob rather than a flag — it must match nothing at train time, any
// reader adapts to the header.
func runPack(cfg runConfig) error {
	ds, err := dataset.LoadScaled(cfg.dataset, cfg.scale)
	if err != nil {
		return err
	}
	rows, err := store.ParseShardRows(os.Getenv("BETTY_STORE_SHARD_ROWS"))
	if err != nil {
		return err
	}
	if err := store.Pack(cfg.pack, ds, store.PackConfig{ShardRows: rows}); err != nil {
		return err
	}
	st, err := store.Open(cfg.pack)
	if err != nil {
		return fmt.Errorf("verifying packed store: %w", err)
	}
	defer st.Close()
	fmt.Fprintf(cfg.out, "packed %s: %d nodes, %d shards of %d rows, %.1f MiB features\n",
		cfg.pack, st.NumNodes(), st.NumShards(), st.ShardRows(), float64(st.FeatureBytes())/(1<<20))
	return nil
}

func parseFanouts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v == 0 || v < -1 {
			return nil, fmt.Errorf("bad fanout %q (positive integers or -1 for all neighbors)", p)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no fanouts given")
	}
	return out, nil
}
