// Command bettytrain trains a GNN with Betty micro-batch partitioning on a
// synthetic dataset under a simulated device capacity — the end-to-end
// training tool over the library's public surface.
//
// Examples:
//
//	bettytrain -dataset ogbn-arxiv -scale 0.2 -epochs 10
//	bettytrain -dataset ogbn-products -scale 0.2 -agg lstm -capacity 96 -epochs 5
//	bettytrain -dataset reddit -scale 0.1 -model gat -heads 2 -epochs 10
//	bettytrain -dataset cora -partitioner random -k 8 -epochs 20
//	bettytrain -dataset ogbn-arxiv -scale 0.2 -devices 4 -epochs 5
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"betty/internal/core"
	"betty/internal/dataset"
	"betty/internal/device"
	"betty/internal/memory"
	"betty/internal/nn"
	"betty/internal/reg"
)

func main() {
	var (
		dsName      = flag.String("dataset", "ogbn-arxiv", "dataset: "+strings.Join(dataset.Names(), ", "))
		scale       = flag.Float64("scale", 0.2, "dataset scale in (0,1]")
		model       = flag.String("model", "sage", "model: sage, gat, or gcn")
		agg         = flag.String("agg", "mean", "SAGE aggregator: mean, sum, pool, lstm")
		hidden      = flag.Int("hidden", 64, "hidden width")
		heads       = flag.Int("heads", 4, "GAT attention heads")
		fanoutsFlag = flag.String("fanouts", "5,10", "per-layer fanouts, input-first (layers = count)")
		epochs      = flag.Int("epochs", 10, "training epochs")
		lr          = flag.Float64("lr", 0.01, "Adam learning rate")
		capacityMiB = flag.Int64("capacity", 0, "simulated device capacity in MiB (0 = unbounded)")
		k           = flag.Int("k", 0, "fixed micro-batch count (0 = memory-aware planner)")
		partName    = flag.String("partitioner", "betty", "batch partitioner: betty, metis, random, range")
		devices     = flag.Int("devices", 1, "number of simulated devices (data-parallel)")
		adaptive    = flag.Bool("adaptive", false, "learn a planner safety margin from measured peaks")
		seed        = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	if err := run(*dsName, *scale, *model, *agg, *hidden, *heads, *fanoutsFlag,
		*epochs, float32(*lr), *capacityMiB, *k, *partName, *devices, *adaptive, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "bettytrain:", err)
		os.Exit(1)
	}
}

func run(dsName string, scale float64, model, agg string, hidden, heads int,
	fanoutsFlag string, epochs int, lr float32, capacityMiB int64, k int,
	partName string, devices int, adaptive bool, seed uint64) error {

	fanouts, err := parseFanouts(fanoutsFlag)
	if err != nil {
		return err
	}
	ds, err := dataset.LoadScaled(dsName, scale)
	if err != nil {
		return err
	}
	fmt.Printf("dataset %s: %d nodes, %d edges, %d classes, %d train nodes\n",
		ds.Name, ds.Graph.NumNodes(), ds.Graph.NumEdges(), ds.NumClasses, len(ds.TrainIdx))

	opts := core.Options{
		Hidden:  hidden,
		Heads:   heads,
		Fanouts: fanouts,
		LR:      lr,
		Seed:    seed,
		FixedK:  k,
	}
	if capacityMiB > 0 {
		opts.Device = device.New(capacityMiB*device.MiB, device.DefaultCostModel())
	}
	switch partName {
	case "betty":
	case "metis":
		opts.Partitioner = reg.MetisBatch{Seed: seed}
	case "random":
		opts.Partitioner = reg.RandomBatch{Seed: seed}
	case "range":
		opts.Partitioner = reg.RangeBatch{}
	default:
		return fmt.Errorf("unknown partitioner %q", partName)
	}

	var setup *core.Setup
	switch model {
	case "sage":
		a, err := nn.ParseAggregator(agg)
		if err != nil {
			return err
		}
		opts.Aggregator = a
		setup, err = core.BuildSAGE(ds, opts)
		if err != nil {
			return err
		}
	case "gat":
		setup, err = core.BuildGAT(ds, opts)
		if err != nil {
			return err
		}
	case "gcn":
		setup, err = core.BuildGCN(ds, opts)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown model %q (sage, gat, or gcn)", model)
	}
	if adaptive {
		setup.Engine.Tracker = memory.NewErrorTracker()
	}

	var multi *core.MultiDevice
	if devices > 1 {
		devs := make([]*device.Device, devices)
		capBytes := int64(64) * device.GiB
		if capacityMiB > 0 {
			capBytes = capacityMiB * device.MiB
		}
		for i := range devs {
			devs[i] = device.New(capBytes, device.DefaultCostModel())
		}
		multi = &core.MultiDevice{Engine: setup.Engine, Devices: devs}
	}

	fmt.Printf("%-6s %-4s %-9s %-9s %-11s %-12s %s\n",
		"epoch", "K", "loss", "train acc", "peak MiB", "epoch sim s", "redundancy")
	for e := 1; e <= epochs; e++ {
		var (
			st  core.EpochStats
			sim float64
		)
		if multi != nil {
			mst, err := multi.TrainEpoch()
			if err != nil {
				return err
			}
			st = mst.EpochStats
			sim = mst.Makespan
		} else {
			st, err = setup.Engine.TrainEpochMicro()
			if err != nil {
				return err
			}
			sim = st.ComputeSeconds + st.TransferSeconds
		}
		fmt.Printf("%-6d %-4d %-9.4f %-9.4f %-11.2f %-12.5f %d\n",
			e, st.K, st.Loss, st.TrainAcc, float64(st.PeakBytes)/(1<<20), sim, st.Redundancy)
	}

	val, err := setup.Engine.ValAccuracy()
	if err != nil {
		return err
	}
	test, err := setup.Engine.TestAccuracy()
	if err != nil {
		return err
	}
	fmt.Printf("\nvalidation accuracy %.4f, test accuracy %.4f\n", val, test)
	return nil
}

func parseFanouts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v == 0 || v < -1 {
			return nil, fmt.Errorf("bad fanout %q (positive integers or -1 for all neighbors)", p)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no fanouts given")
	}
	return out, nil
}
