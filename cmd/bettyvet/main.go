// Command bettyvet type-checks the module and runs the project-specific
// static analyzers that machine-check the repository's determinism,
// shard-purity, pool-discipline, hot-allocation, env-knob, and
// observability invariants (see internal/lint and DESIGN.md §9/§14). It is
// zero-dependency and fully offline: packages are enumerated with `go list
// -json` and type-checked from source; the module-scoped analyzers
// (dettaint, envreg, obsdisc) additionally build a whole-module call graph
// and diff the knob registry against the README.
//
// Usage:
//
//	go run ./cmd/bettyvet [-json] [-audit] [packages...]
//
// With no package patterns it analyzes ./.... The exit status is 0 when
// clean, 1 when any diagnostic is reported, and 2 on a load/type error.
// -json emits the diagnostics as a JSON array (empty when clean) for CI
// artifact upload. -audit additionally reports stale suppressions —
// //bettyvet:ok annotations that silence no diagnostic — as findings of
// the pseudo-analyzer "bettyvet-audit", so excused findings cannot outlive
// their excuse.
//
// Intentional findings are silenced in source with a reasoned annotation
// on the offending line or the line above it:
//
//	//bettyvet:ok <analyzer> <reason>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"betty/internal/lint"
)

type jsonDiagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array on stdout")
	audit := flag.Bool("audit", false, "also report stale //bettyvet:ok suppressions")
	flag.Parse()

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	patterns := flag.Args()
	m, err := lint.LoadModule(cwd, patterns...)
	if err != nil {
		fatal(err)
	}

	res := m.Run()
	diags := res.Diags
	if *audit {
		diags = append(diags, res.Stale...)
	}

	if *jsonOut {
		out := make([]jsonDiagnostic, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiagnostic{
				Analyzer: d.Analyzer,
				File:     relativize(cwd, d.Pos.Filename),
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			d.Pos.Filename = relativize(cwd, d.Pos.Filename)
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "bettyvet: %d diagnostic(s)\n", len(diags))
		}
		os.Exit(1)
	}
}

// relativize shortens abs to a cwd-relative path when possible.
func relativize(cwd, abs string) string {
	if rel, err := filepath.Rel(cwd, abs); err == nil && !filepath.IsAbs(rel) {
		return rel
	}
	return abs
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bettyvet:", err)
	os.Exit(2)
}
