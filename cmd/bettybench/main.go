// Command bettybench regenerates the paper's tables and figures against
// the simulated device and synthetic datasets.
//
// Usage:
//
//	bettybench -list
//	bettybench -exp fig12 [-scale 0.5] [-epochs 10] [-csv] [-v]
//	bettybench -exp all
//	bettybench -step BENCH_step.json [-scale 0.2]
//	bettybench -serve BENCH_serve.json [-scale 0.2]
//	bettybench -multidev BENCH_multidev.json [-scale 0.2]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"betty/internal/bench"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id (fig2..fig16, tab2..tab7, abl-*) or 'all'")
		list    = flag.Bool("list", false, "list available experiments")
		scale   = flag.Float64("scale", 1, "multiply each experiment's dataset scale (smoke runs: 0.2)")
		epochs  = flag.Int("epochs", 0, "override training epoch counts")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		verbose = flag.Bool("v", false, "log progress to stderr")
		step    = flag.String("step", "", "write the training-step perf sweep (workers x pool x fused) to this JSON file")
		srv     = flag.String("serve", "", "write the online-serving load report to this JSON file")
		mdev    = flag.String("multidev", "", "write the split-parallel scaling sweep (devices x shard partitioner) to this JSON file")
		gate    = flag.String("gate", "", "re-run the step sweep and fail if any cell regressed >threshold vs this committed BENCH_step.json")
		gateOut = flag.String("gate-out", "BENCH_gate.json", "write the gate comparison artifact to this file")
		gateTol = flag.Float64("gate-threshold", bench.DefaultGateThreshold, "tolerated relative ns/step slowdown")
		sgate   = flag.String("serve-gate", "", "re-run the serve sweep and fail if reuse-mode p50/p99 regressed >threshold vs this committed BENCH_serve.json")
		sgateO  = flag.String("serve-gate-out", "BENCH_serve_gate.json", "write the serve gate comparison artifact to this file")
	)
	flag.Parse()

	if *sgate != "" {
		rep, err := bench.WriteServeGate(*sgate, *sgateO, *scale, *gateTol)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bettybench: serve gate: %v\n", err)
			os.Exit(1)
		}
		for _, c := range rep.Cells {
			mark := " "
			if c.Regressed {
				mark = "!"
			}
			fmt.Printf("%s %-30s baseline %12d ns  current %12d ns  ratio %.3f\n",
				mark, c.Name, c.BaselineNs, c.CurrentNs, c.Ratio)
		}
		if rep.Advisory {
			fmt.Printf("advisory only: host_cpus %d != baseline host_cpus %d — ratios not binding\n",
				rep.HostCPUs, rep.BaselineHostCPUs)
		}
		if rep.Failed {
			fmt.Fprintf(os.Stderr, "bettybench: serve gate: reuse-mode latency regression beyond %.0f%% — see %s (override: apply the perf-regression-ok label)\n",
				rep.Threshold*100, *sgateO)
			os.Exit(1)
		}
		return
	}

	if *gate != "" {
		rep, err := bench.WriteGate(*gate, *gateOut, *scale, *gateTol)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bettybench: gate: %v\n", err)
			os.Exit(1)
		}
		for _, c := range rep.Cells {
			mark := " "
			if c.Regressed {
				mark = "!"
			}
			fmt.Printf("%s %-30s baseline %12d ns  current %12d ns  ratio %.3f\n",
				mark, c.Name, c.BaselineNs, c.CurrentNs, c.Ratio)
		}
		if rep.Advisory {
			fmt.Printf("advisory only: host_cpus %d != baseline host_cpus %d — ratios not binding\n",
				rep.HostCPUs, rep.BaselineHostCPUs)
		}
		if rep.Failed {
			fmt.Fprintf(os.Stderr, "bettybench: gate: regression beyond %.0f%% — see %s (override: apply the perf-regression-ok label)\n",
				rep.Threshold*100, *gateOut)
			os.Exit(1)
		}
		return
	}

	if *mdev != "" {
		rep, err := bench.WriteMultiDevBench(*mdev, *scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bettybench: multidev bench: %v\n", err)
			os.Exit(1)
		}
		for _, c := range rep.Cells {
			fmt.Printf("%-8s x%d  makespan %8.2fms  speedup %5.2fx  halo %8.2fMiB  allreduce %6.2fms  peak %7.1fMiB\n",
				c.Partitioner, c.Devices, c.MakespanMS, c.Speedup, c.HaloMiB, c.AllReduceMS, c.MaxPeakMiB)
		}
		fmt.Printf("REG boundary @ %d parts:", rep.Devices[len(rep.Devices)-1])
		for _, name := range []string{"range", "random", "metis", "betty"} {
			fmt.Printf("  %s=%d", name, rep.RegBoundary[name])
		}
		fmt.Println()
		return
	}

	if *srv != "" {
		rep, err := bench.WriteServeBench(*srv, *scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bettybench: serve bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%d requests x %d nodes: %.0f req/s   p50 %.2fms  p90 %.2fms  p99 %.2fms\n",
			rep.Requests, rep.NodesPerRequest, rep.Load.ThroughputRPS,
			float64(rep.Load.P50NS)/1e6, float64(rep.Load.P90NS)/1e6, float64(rep.Load.P99NS)/1e6)
		fmt.Printf("batches: %d (%.1f req/batch)   cache hit rate: %.2f   max planned peak: %.1f MiB (budget %.0f MiB)\n",
			rep.Batches, rep.AvgRequestsPerBatch, rep.CacheHitRate,
			float64(rep.MaxEstPeakBytes)/(1<<20), float64(rep.CapacityBytes)/(1<<20))
		for _, q := range rep.Quant {
			fmt.Printf("quant=%-5s %.0f req/s  p99 %.2fms  weight bytes %d  max |Δscore| %.3g\n",
				q.Mode, q.Load.ThroughputRPS, float64(q.Load.P99NS)/1e6, q.WeightBytes, q.MaxAbsDiff)
		}
		for _, e := range rep.Emb {
			fmt.Printf("embcache=%-5s %.0f req/s  p50 %.2fms  p99 %.2fms  hit rate %.2f  layer-1 rows/req %.1f  max |Δscore| %.3g\n",
				e.Mode, e.Load.ThroughputRPS, float64(e.Load.P50NS)/1e6, float64(e.Load.P99NS)/1e6,
				e.HitRate, e.ComputedRowsPerRequest, e.MaxAbsDiff)
		}
		return
	}

	if *step != "" {
		rep, err := bench.WriteStepBench(*step, *scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bettybench: step bench: %v\n", err)
			os.Exit(1)
		}
		for _, r := range rep.Results {
			fmt.Printf("%-22s %12d ns/step %12d B/step %8d allocs/step\n",
				r.Name, r.NsPerStep, r.BytesPerStep, r.AllocsPerStep)
		}
		fmt.Printf("speedup(8w, pooled): %.2fx   fused speedup: %.2fx   alloc reduction (pool): %.1fx   byte reduction (pool): %.0fx   (host CPUs: %d)\n",
			rep.SpeedupPooled8W, rep.FusedSpeedup, rep.AllocReduction, rep.ByteReduction, rep.HostCPUs)
		if d := rep.Delta; d != nil {
			fmt.Printf("vs committed: %d -> %d ns/step (%.2fx), %d -> %d allocs/step\n",
				d.PrevNsPerStep, d.NewNsPerStep, d.Speedup, d.PrevAllocsPerStep, d.NewAllocsPerStep)
		}
		fmt.Printf("embedded %d obs records from one instrumented step\n", len(rep.ObsRecords))
		return
	}

	if *list {
		for _, id := range bench.IDs() {
			e, _ := bench.Get(id)
			fmt.Printf("%-12s %s\n", id, e.Paper)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "bettybench: -exp or -list required")
		flag.Usage()
		os.Exit(2)
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = bench.IDs()
	}
	var log io.Writer
	if *verbose {
		log = os.Stderr
	}
	opts := bench.Options{Scale: *scale, Epochs: *epochs, Log: log}
	for _, id := range ids {
		e, err := bench.Get(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("# %s — %s\n\n", e.ID, e.Paper)
		tables, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bettybench: %s: %v\n", id, err)
			os.Exit(1)
		}
		for _, t := range tables {
			if *csv {
				t.CSV(os.Stdout)
				fmt.Println()
			} else {
				t.Render(os.Stdout)
			}
		}
	}
}
