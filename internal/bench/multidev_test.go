package bench

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestMultiDevBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multidev bench smoke skipped in -short mode")
	}
	path := filepath.Join(t.TempDir(), "BENCH_multidev.json")
	rep, err := WriteMultiDevBench(path, 0.06)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(rep.Cells), 4*len(rep.Devices); got != want {
		t.Fatalf("%d cells, want %d", got, want)
	}
	for name, b := range rep.RegBoundary {
		if b <= 0 {
			t.Fatalf("REG boundary for %s is %d", name, b)
		}
	}
	for _, c := range rep.Cells {
		if c.MakespanMS <= 0 {
			t.Fatalf("cell %s x%d has no makespan", c.Partitioner, c.Devices)
		}
		if c.Devices == 1 && (c.HaloMiB != 0 || c.AllReduceMS != 0) {
			t.Fatalf("1-device cell has parallel costs: %+v", c)
		}
		if c.Devices > 1 && (c.HaloMiB <= 0 || c.AllReduceMS <= 0) {
			t.Fatalf("cell %s x%d missing halo/all-reduce: %+v", c.Partitioner, c.Devices, c)
		}
		// Numerics are device-count and shard-partitioner independent:
		// every cell trains to the same loss, bitwise.
		if math.Float64bits(c.Loss) != math.Float64bits(rep.Cells[0].Loss) {
			t.Fatalf("cell %s x%d loss %v differs from %v",
				c.Partitioner, c.Devices, c.Loss, rep.Cells[0].Loss)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var decoded MultiDevBenchReport
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
}
