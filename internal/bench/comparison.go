package bench

import (
	"betty/internal/core"
	"betty/internal/dataset"
	"betty/internal/graph"
	"betty/internal/nn"
)

func init() {
	register(&Experiment{
		ID:    "fig14",
		Paper: "Figure 14: per-epoch training time and data-movement time vs number of batches for range/random/Metis/Betty (3-layer GraphSAGE+Mean, ogbn-products)",
		Run:   runFig14,
	})
	register(&Experiment{
		ID:    "fig15",
		Paper: "Figure 15: computation efficiency (total micro-batch nodes / epoch time) vs number of batches for the four partitioners",
		Run:   runFig15,
	})
	register(&Experiment{
		ID:    "tab6",
		Paper: "Table 6: first-layer inputs, per-epoch time, and memory of micro-batch vs mini-batch training as the batch count grows",
		Run:   runTab6,
	})
	register(&Experiment{
		ID:    "tab7",
		Paper: "Table 7: memory estimation error of the LSTM aggregator across datasets and partition counts",
		Run:   runTab7,
	})
}

// fig14Run holds the measurements shared by Figures 14 and 15.
type fig14Run struct {
	k           int
	partitioner string
	computeS    float64
	transferS   float64
	totalNodes  int
	peak        int64
}

// runFig14Sweep executes one epoch per (K, partitioner) combination of the
// Figure 14/15 configuration and returns the measurements.
func runFig14Sweep(o Options) ([]fig14Run, error) {
	ds, err := loadDataset("ogbn-products", o.scale(0.35))
	if err != nil {
		return nil, err
	}
	var out []fig14Run
	for _, k := range []int{1, 2, 4, 8, 16, 32, 64} {
		if k > len(ds.TrainIdx) {
			continue
		}
		for _, p := range batchPartitioners(14) {
			if k == 1 && p.Name() != "betty" {
				continue // K=1 is partitioner-independent; record once
			}
			dev := bigDevice()
			s, err := core.BuildSAGE(ds, core.Options{
				Seed: 14, Hidden: 64, Layers: 3, Fanouts: []int{3, 5, 10},
				Aggregator: nn.Mean, FixedK: k, Device: dev, Partitioner: p,
			})
			if err != nil {
				return nil, err
			}
			st, err := s.Engine.TrainEpochMicro()
			if err != nil {
				return nil, err
			}
			// total nodes processed = inputs plus every layer's dst rows
			_, plan, err := s.Engine.PlanEpoch(ds.TrainIdx)
			if err != nil {
				return nil, err
			}
			totalNodes := 0
			for _, mb := range plan.Micro {
				totalNodes += graph.Stats(mb).TotalNodes
			}
			o.logf("fig14 %s k=%d compute=%.4fs transfer=%.4fs", p.Name(), k, st.ComputeSeconds, st.TransferSeconds)
			out = append(out, fig14Run{
				k: k, partitioner: p.Name(),
				computeS: st.ComputeSeconds, transferS: st.TransferSeconds,
				totalNodes: totalNodes, peak: st.PeakBytes,
			})
		}
	}
	return out, nil
}

func runFig14(o Options) ([]*Table, error) {
	runs, err := runFig14Sweep(o)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig14",
		Title:   "per-epoch simulated time (s), 3-layer GraphSAGE+Mean, scaled fanout (3,5,10)",
		Columns: []string{"batches", "partitioner", "train time/s", "data movement/s", "total/s"},
	}
	for _, r := range runs {
		t.AddRow(fmtI(r.k), r.partitioner, fmtF(r.computeS, 4), fmtF(r.transferS, 4), fmtF(r.computeS+r.transferS, 4))
	}
	return []*Table{t}, nil
}

func runFig15(o Options) ([]*Table, error) {
	runs, err := runFig14Sweep(o)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig15",
		Title:   "computation efficiency: total micro-batch nodes / epoch time",
		Columns: []string{"batches", "partitioner", "total nodes", "epoch time/s", "nodes per second"},
	}
	for _, r := range runs {
		total := r.computeS + r.transferS
		eff := float64(r.totalNodes) / total
		t.AddRow(fmtI(r.k), r.partitioner, fmtI(r.totalNodes), fmtF(total, 4), fmtF(eff, 0))
	}
	return []*Table{t}, nil
}

func runTab6(o Options) ([]*Table, error) {
	ds, err := loadDataset("ogbn-products", o.scale(0.35))
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "tab6",
		Title:   "micro-batch (Betty) vs mini-batch training, 2-layer GraphSAGE+Mean, scaled fanout (5,10)",
		Columns: []string{"batches", "micro inputs", "mini inputs", "micro time/s", "mini time/s", "micro mem/MiB", "mini mem/MiB"},
	}
	for _, k := range []int{1, 2, 4, 8, 16, 32, 64} {
		if k > len(ds.TrainIdx) {
			continue
		}
		build := func() (*core.Setup, error) {
			return core.BuildSAGE(ds, core.Options{
				Seed: 6, Hidden: 64, Fanouts: []int{5, 10},
				Aggregator: nn.Mean, FixedK: k, Device: bigDevice(),
			})
		}
		ms, err := build()
		if err != nil {
			return nil, err
		}
		micro, err := ms.Engine.TrainEpochMicro()
		if err != nil {
			return nil, err
		}
		mn, err := build()
		if err != nil {
			return nil, err
		}
		mini, err := mn.Engine.TrainEpochMini(k, 6)
		if err != nil {
			return nil, err
		}
		o.logf("tab6 k=%d micro-in=%d mini-in=%d", k, micro.InputNodes, mini.InputNodes)
		t.AddRow(fmtI(k),
			fmtI(micro.InputNodes), fmtI(mini.InputNodes),
			fmtF(micro.ComputeSeconds+micro.TransferSeconds, 4),
			fmtF(mini.ComputeSeconds+mini.TransferSeconds, 4),
			fmtMiB(micro.PeakBytes), fmtMiB(mini.PeakBytes))
	}
	return []*Table{t}, nil
}

// tab7Config selects the dataset scales of the estimation-error runs.
var tab7Configs = []struct {
	ds      string
	scale   float64
	featDim int
}{
	{"cora", 1.0, 64},
	{"pubmed", 1.0, 64},
	{"reddit", 0.15, 64},
	{"ogbn-arxiv", 0.2, 64},
	{"ogbn-products", 0.2, 0},
}

func runTab7(o Options) ([]*Table, error) {
	t := &Table{
		ID:      "tab7",
		Title:   "memory estimation error, 1-layer GraphSAGE+LSTM, fanout 10",
		Columns: []string{"dataset", "batches", "estimated peak/MiB", "measured peak/MiB", "error/%"},
	}
	for _, c := range tab7Configs {
		dsReal, err := loadTab7Dataset(c.ds, o.scale(c.scale), c.featDim)
		if err != nil {
			return nil, err
		}
		for _, k := range []int{4, 8} {
			if k > len(dsReal.TrainIdx) {
				continue
			}
			dev := bigDevice()
			s, err := core.BuildSAGE(dsReal, core.Options{
				Seed: 7, Hidden: 64, Layers: 1, Fanouts: []int{10},
				Aggregator: nn.LSTM, FixedK: k, Device: dev,
			})
			if err != nil {
				return nil, err
			}
			st, err := s.Engine.TrainEpochMicro()
			if err != nil {
				return nil, err
			}
			// the estimator predicts the largest micro-batch; compare with
			// the device's observed peak over the epoch
			errPct := 100 * (float64(st.MaxEstimate) - float64(st.PeakBytes)) / float64(st.PeakBytes)
			o.logf("tab7 %s k=%d err=%.2f%%", c.ds, k, errPct)
			t.AddRow(c.ds, fmtI(k), fmtMiB(st.MaxEstimate), fmtMiB(st.PeakBytes), fmtF(errPct, 2))
		}
	}
	return []*Table{t}, nil
}

// loadTab7Dataset loads a dataset with an optional feature-dim override
// (the LSTM's hidden size equals the input width, so wide-feature datasets
// are narrowed; see loadDatasetWithDim).
func loadTab7Dataset(name string, scale float64, featDim int) (*dataset.Dataset, error) {
	if featDim > 0 {
		return loadDatasetWithDim(name, scale, featDim)
	}
	return loadDataset(name, scale)
}
