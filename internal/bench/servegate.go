package bench

import (
	"encoding/json"
	"fmt"
	"os"
)

// The serve-regression gate: CI re-runs the serve sweep and compares the
// reuse-mode embedding-cache cell's latency percentiles against the
// committed BENCH_serve.json baseline. Reuse is the mode whose entire
// point is latency — a p50/p99 regression beyond the threshold means the
// cache stopped paying for itself, so it fails the smoke (exit 1 in
// bettybench -serve-gate) the same way a step-sweep regression does.
// Host-CPU mismatches demote the comparison to advisory, matching the
// step gate.

// TailGateFactor widens the gate threshold for tail percentiles: the
// smoke-scale p99 is estimated from very few samples, so it is held to
// threshold*TailGateFactor while the median is held to threshold itself.
const TailGateFactor = 5

// RunServeGate re-runs the serve sweep at scale and compares the reuse
// cell against the committed baseline at baselinePath. threshold <= 0
// uses DefaultGateThreshold.
func RunServeGate(baselinePath string, scale, threshold float64) (*GateReport, error) {
	if threshold <= 0 {
		threshold = DefaultGateThreshold
	}
	base, err := ReadServeBench(baselinePath)
	if err != nil {
		return nil, fmt.Errorf("bench: serve gate baseline: %w", err)
	}
	cur, err := RunServeBench(scale)
	if err != nil {
		return nil, err
	}
	return CompareServeBench(base, cur, baselinePath, threshold)
}

// CompareServeBench compares a fresh serve sweep against a committed
// baseline, gating on the reuse-mode latency percentiles.
func CompareServeBench(base, cur *ServeBenchReport, baselinePath string, threshold float64) (*GateReport, error) {
	if threshold <= 0 {
		threshold = DefaultGateThreshold
	}
	rep := &GateReport{
		BaselinePath:     baselinePath,
		Threshold:        threshold,
		HostCPUs:         cur.HostCPUs,
		BaselineHostCPUs: base.HostCPUs,
		Advisory:         cur.HostCPUs != base.HostCPUs,
	}
	reuse := func(r *ServeBenchReport) *ServeEmbResult {
		for i := range r.Emb {
			if r.Emb[i].Mode == "reuse" {
				return &r.Emb[i]
			}
		}
		return nil
	}
	b, c := reuse(base), reuse(cur)
	if b == nil || b.Load == nil {
		return nil, fmt.Errorf("bench: serve gate: no reuse cell in baseline %s", baselinePath)
	}
	if c == nil || c.Load == nil {
		return nil, fmt.Errorf("bench: serve gate: fresh run produced no reuse cell")
	}
	// The smoke's p99 is the tail of ~200 requests — a handful of samples —
	// so it gets a wider tolerance than the (stable) median. A tail blowup
	// still fails; run-to-run jitter of the 2nd-slowest request does not.
	tailThreshold := threshold * TailGateFactor
	cells := []struct {
		name           string
		baseNs, currNs int64
		tol            float64
	}{
		{"serve/reuse/p50_ns", b.Load.P50NS, c.Load.P50NS, threshold},
		{"serve/reuse/p99_ns", b.Load.P99NS, c.Load.P99NS, tailThreshold},
	}
	for _, cc := range cells {
		if cc.baseNs <= 0 {
			continue
		}
		cell := GateCell{
			Name:       cc.name,
			BaselineNs: cc.baseNs,
			CurrentNs:  cc.currNs,
			Ratio:      float64(cc.currNs) / float64(cc.baseNs),
		}
		cell.Regressed = cell.Ratio > 1+cc.tol
		if cell.Regressed && !rep.Advisory {
			rep.Failed = true
		}
		rep.Cells = append(rep.Cells, cell)
	}
	if len(rep.Cells) == 0 {
		return nil, fmt.Errorf("bench: serve gate found no comparable cells in %s", baselinePath)
	}
	return rep, nil
}

// WriteServeGate runs the serve gate and writes the comparison artifact to
// outPath (skipped when empty), before any failure is reported.
func WriteServeGate(baselinePath, outPath string, scale, threshold float64) (*GateReport, error) {
	rep, err := RunServeGate(baselinePath, scale, threshold)
	if err != nil {
		return nil, err
	}
	if outPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return rep, err
		}
	}
	return rep, nil
}
