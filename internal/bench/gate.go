package bench

import (
	"encoding/json"
	"fmt"
	"os"
)

// The bench-regression gate: CI re-runs the step sweep and compares it
// against the committed BENCH_step.json baseline. A cell that got more
// than Threshold slower on ns/step fails the gate (exit 1 in bettybench
// -gate), unless the PR carries the documented override label — the CI
// workflow, not this package, honors the label by skipping the job. The
// full comparison is written as an artifact either way, so a waved-through
// regression is still on the record.

// DefaultGateThreshold is the relative ns/step slowdown CI tolerates.
const DefaultGateThreshold = 0.05

// GateCell is one baseline cell's comparison against the fresh run.
type GateCell struct {
	Name           string  `json:"name"`
	BaselineNs     int64   `json:"baseline_ns_per_step"`
	CurrentNs      int64   `json:"current_ns_per_step"`
	Ratio          float64 `json:"ratio"` // current / baseline; > 1 is slower
	Regressed      bool    `json:"regressed"`
	BaselineAllocs int64   `json:"baseline_allocs_per_step"`
	CurrentAllocs  int64   `json:"current_allocs_per_step"`
}

// GateReport is the schema of the gate's comparison artifact.
type GateReport struct {
	// BaselinePath is the committed report the run was compared against.
	BaselinePath string `json:"baseline_path"`
	// Threshold is the tolerated relative slowdown.
	Threshold float64 `json:"threshold"`
	// HostCPUs / BaselineHostCPUs flag hardware mismatch: a baseline
	// measured on a different host parallelism makes absolute ns/step
	// comparisons advisory, not binding.
	HostCPUs         int  `json:"host_cpus"`
	BaselineHostCPUs int  `json:"baseline_host_cpus"`
	Advisory         bool `json:"advisory"`
	// Cells holds every baseline cell found in the fresh run.
	Cells []GateCell `json:"cells"`
	// Failed reports whether any cell regressed beyond Threshold on a
	// comparable host (an advisory mismatch never fails the gate).
	Failed bool `json:"failed"`
}

// RunGate re-runs the step sweep at scale and compares it against the
// committed baseline at baselinePath. threshold <= 0 uses
// DefaultGateThreshold.
func RunGate(baselinePath string, scale, threshold float64) (*GateReport, error) {
	if threshold <= 0 {
		threshold = DefaultGateThreshold
	}
	base, err := ReadStepBench(baselinePath)
	if err != nil {
		return nil, fmt.Errorf("bench: gate baseline: %w", err)
	}
	cur, err := RunStepBench(scale)
	if err != nil {
		return nil, err
	}
	return CompareStepBench(base, cur, baselinePath, threshold)
}

// CompareStepBench compares a fresh step sweep against a committed
// baseline cell by cell (matched by name).
func CompareStepBench(base, cur *StepBenchReport, baselinePath string, threshold float64) (*GateReport, error) {
	if threshold <= 0 {
		threshold = DefaultGateThreshold
	}
	rep := &GateReport{
		BaselinePath:     baselinePath,
		Threshold:        threshold,
		HostCPUs:         cur.HostCPUs,
		BaselineHostCPUs: base.HostCPUs,
		Advisory:         cur.HostCPUs != base.HostCPUs,
	}
	curCell := func(name string) *StepBenchResult {
		for i := range cur.Results {
			if cur.Results[i].Name == name {
				return &cur.Results[i]
			}
		}
		return nil
	}
	for _, b := range base.Results {
		c := curCell(b.Name)
		if c == nil || b.NsPerStep <= 0 {
			continue // schema drift: the regenerated baseline defines the cells
		}
		cell := GateCell{
			Name:           b.Name,
			BaselineNs:     b.NsPerStep,
			CurrentNs:      c.NsPerStep,
			Ratio:          float64(c.NsPerStep) / float64(b.NsPerStep),
			BaselineAllocs: b.AllocsPerStep,
			CurrentAllocs:  c.AllocsPerStep,
		}
		cell.Regressed = cell.Ratio > 1+threshold
		if cell.Regressed && !rep.Advisory {
			rep.Failed = true
		}
		rep.Cells = append(rep.Cells, cell)
	}
	if len(rep.Cells) == 0 {
		return nil, fmt.Errorf("bench: gate found no comparable cells in %s", baselinePath)
	}
	return rep, nil
}

// WriteGate runs the gate and writes the comparison artifact to outPath
// (skipped when empty). The error reports regression failure only after
// the artifact is written.
func WriteGate(baselinePath, outPath string, scale, threshold float64) (*GateReport, error) {
	rep, err := RunGate(baselinePath, scale, threshold)
	if err != nil {
		return nil, err
	}
	if outPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return rep, err
		}
	}
	return rep, nil
}
