package bench

import (
	"encoding/json"
	"fmt"
	"os"

	"betty/internal/core"
	"betty/internal/dataset"
	"betty/internal/device"
	"betty/internal/partition"
	"betty/internal/reg"
	"betty/internal/sample"
)

// The multidev benchmark sweeps split-parallel training over device counts
// and shard partitioners, producing the scaling curves GSplit-style
// execution is judged by: makespan speedup versus one device, halo traffic
// per partitioner (Betty's REG partitioning should move the least), the
// all-reduce tax, and the per-device memory relief. Its output is
// BENCH_multidev.json.

// MultiDevBenchCell is one (partitioner, device count) cell of the sweep.
type MultiDevBenchCell struct {
	// Partitioner names the shard partitioner splitting each micro-batch.
	Partitioner string `json:"partitioner"`
	// Devices is the simulated device count.
	Devices int `json:"devices"`
	// MakespanMS is the simulated epoch wall time in milliseconds,
	// including the gradient all-reduce.
	MakespanMS float64 `json:"makespan_ms"`
	// Speedup is the 1-device makespan of the same partitioner divided by
	// this cell's makespan.
	Speedup float64 `json:"speedup"`
	// AllReduceMS is the tree all-reduce's share of the makespan.
	AllReduceMS float64 `json:"allreduce_ms"`
	// HaloMiB is the boundary feature traffic between devices.
	HaloMiB float64 `json:"halo_mib"`
	// OwnedMiB is the host-loaded input feature traffic (constant across
	// device counts: every distinct input is loaded exactly once).
	OwnedMiB float64 `json:"owned_mib"`
	// MaxPeakMiB is the largest per-device memory peak.
	MaxPeakMiB float64 `json:"max_peak_mib"`
	// MaxIdleMS is the largest per-device barrier idle time — the load
	// imbalance the shard partitioner induced.
	MaxIdleMS float64 `json:"max_idle_ms"`
	// Loss is the epoch loss; identical across every cell by the bitwise
	// determinism contract, so the report doubles as evidence.
	Loss float64 `json:"loss"`
}

// MultiDevBenchReport is the schema of BENCH_multidev.json.
type MultiDevBenchReport struct {
	// Dataset and Model describe the benchmarked workload.
	Dataset string `json:"dataset"`
	Model   string `json:"model"`
	// Seeds is the epoch's labeled seed count, K the micro-batch count.
	Seeds int `json:"seeds"`
	K     int `json:"k"`
	// Devices lists the swept device counts.
	Devices []int `json:"devices"`
	// RegBoundary maps partitioner name to the REG boundary-node count at
	// k = max devices on the full batch — the static predictor of halo
	// traffic that the dynamic HaloMiB columns validate.
	RegBoundary map[string]int `json:"reg_boundary"`
	// Cells holds the measured sweep.
	Cells []MultiDevBenchCell `json:"cells"`
}

// multidevPartitioners returns the swept shard partitioners in report order.
func multidevPartitioners() []reg.BatchPartitioner {
	return []reg.BatchPartitioner{
		reg.RangeBatch{},
		reg.RandomBatch{Seed: 1},
		reg.MetisBatch{Seed: 1},
		reg.BettyBatch{Seed: 1},
	}
}

// RunMultiDevBench sweeps {1, 2, 4, 8} devices x shard partitioners over
// one split-parallel epoch each and returns the report.
func RunMultiDevBench(scale float64) (*MultiDevBenchReport, error) {
	ds, err := dataset.LoadScaled("ogbn-products", scale)
	if err != nil {
		return nil, err
	}
	seeds := ds.TrainIdx
	if len(seeds) > 1024 {
		seeds = seeds[:1024]
	}
	deviceCounts := []int{1, 2, 4, 8}
	rep := &MultiDevBenchReport{
		Dataset:     "ogbn-products",
		Model:       "GraphSAGE-2L-Mean-h64",
		Seeds:       len(seeds),
		Devices:     deviceCounts,
		RegBoundary: map[string]int{},
	}

	// Static predictor: boundary nodes of the full batch's REG partitioned
	// k = max devices ways. The same REG is scored under each partitioner
	// so the column is comparable across rows.
	blocks, err := sample.New([]int{5, 10}, 1).Sample(ds.Graph, seeds)
	if err != nil {
		return nil, err
	}
	regGraph, err := reg.BuildREGFast(blocks[len(blocks)-1])
	if err != nil {
		return nil, err
	}
	maxDev := deviceCounts[len(deviceCounts)-1]
	for _, sp := range []struct {
		name string
		p    partition.Partitioner
	}{
		{"range", partition.Range{}},
		{"random", partition.Random{Seed: 1}},
		{"metis", &partition.Metis{Seed: 1}},
		{"betty", &partition.Metis{Seed: 1}},
	} {
		parts, err := sp.p.Partition(regGraph, maxDev)
		if err != nil {
			return nil, err
		}
		rep.RegBoundary[sp.name] = partition.Boundary(regGraph, parts)
	}

	for _, shardP := range multidevPartitioners() {
		baseline := 0.0
		for _, nDev := range deviceCounts {
			s, err := core.BuildSAGE(ds, core.Options{
				Seed: 1, Hidden: 64, Fanouts: []int{5, 10}, FixedK: 8,
			})
			if err != nil {
				return nil, err
			}
			s.Engine.Runner.Data.TrainIdx = seeds
			devs := make([]*device.Device, nDev)
			for i := range devs {
				devs[i] = device.New(device.GiB, device.DefaultCostModel())
			}
			md := &core.MultiDevice{
				Engine: s.Engine, Devices: devs, ShardPartitioner: shardP,
			}
			st, err := md.TrainEpoch()
			if err != nil {
				return nil, fmt.Errorf("bench: %s x %d devices: %w", shardP.Name(), nDev, err)
			}
			if nDev == 1 {
				baseline = st.Makespan
			}
			var owned int64
			maxPeak, maxIdle := int64(0), 0.0
			for _, l := range st.PerDevice {
				owned += l.OwnedBytes
				if l.PeakBytes > maxPeak {
					maxPeak = l.PeakBytes
				}
				if l.IdleSeconds > maxIdle {
					maxIdle = l.IdleSeconds
				}
			}
			cell := MultiDevBenchCell{
				Partitioner: shardP.Name(),
				Devices:     nDev,
				MakespanMS:  st.Makespan * 1e3,
				AllReduceMS: st.AllReduceSeconds * 1e3,
				HaloMiB:     float64(st.HaloBytes) / (1 << 20),
				OwnedMiB:    float64(owned) / (1 << 20),
				MaxPeakMiB:  float64(maxPeak) / (1 << 20),
				MaxIdleMS:   maxIdle * 1e3,
				Loss:        st.Loss,
			}
			if st.Makespan > 0 {
				cell.Speedup = baseline / st.Makespan
			}
			rep.Cells = append(rep.Cells, cell)
		}
	}
	rep.K = 8
	return rep, nil
}

// WriteMultiDevBench runs the sweep and writes the JSON report to path.
func WriteMultiDevBench(path string, scale float64) (*MultiDevBenchReport, error) {
	rep, err := RunMultiDevBench(scale)
	if err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return rep, os.WriteFile(path, append(data, '\n'), 0o644)
}
