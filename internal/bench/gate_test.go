package bench

import "testing"

func gateReports() (base, cur *StepBenchReport) {
	base = &StepBenchReport{
		HostCPUs: 4,
		Results: []StepBenchResult{
			{Name: "workers=1/pool=on/fused=on", Workers: 1, Pool: true, Fused: true, NsPerStep: 100_000, AllocsPerStep: 90},
			{Name: "workers=8/pool=on/fused=on", Workers: 8, Pool: true, Fused: true, NsPerStep: 50_000, AllocsPerStep: 120},
		},
	}
	cur = &StepBenchReport{
		HostCPUs: 4,
		Results: []StepBenchResult{
			{Name: "workers=1/pool=on/fused=on", Workers: 1, Pool: true, Fused: true, NsPerStep: 101_000, AllocsPerStep: 90},
			{Name: "workers=8/pool=on/fused=on", Workers: 8, Pool: true, Fused: true, NsPerStep: 49_000, AllocsPerStep: 120},
			{Name: "workers=1/pool=off/fused=on", Workers: 1, Fused: true, NsPerStep: 140_000, AllocsPerStep: 130},
		},
	}
	return base, cur
}

// Within threshold: no failure; every baseline cell compared; cells that
// exist only in the fresh run are ignored (the baseline defines the set).
func TestGateWithinThreshold(t *testing.T) {
	base, cur := gateReports()
	rep, err := CompareStepBench(base, cur, "BENCH_step.json", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed || rep.Advisory {
		t.Fatalf("gate failed/advisory on a 1%% drift: %+v", rep)
	}
	if len(rep.Cells) != 2 {
		t.Fatalf("compared %d cells, want 2", len(rep.Cells))
	}
	if rep.Cells[0].Ratio <= 1.0 || rep.Cells[0].Regressed {
		t.Fatalf("cell 0 mis-scored: %+v", rep.Cells[0])
	}
}

// Beyond threshold: the regressed cell is flagged and the gate fails.
func TestGateFailsOnRegression(t *testing.T) {
	base, cur := gateReports()
	cur.Results[0].NsPerStep = 120_000 // 20% slower
	rep, err := CompareStepBench(base, cur, "BENCH_step.json", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed {
		t.Fatal("gate passed a 20% regression")
	}
	if !rep.Cells[0].Regressed || rep.Cells[1].Regressed {
		t.Fatalf("wrong cells flagged: %+v", rep.Cells)
	}
}

// A host-CPU mismatch demotes the gate to advisory: regressions are
// reported but never fail the run.
func TestGateAdvisoryOnHostMismatch(t *testing.T) {
	base, cur := gateReports()
	cur.HostCPUs = 16
	cur.Results[0].NsPerStep = 200_000
	rep, err := CompareStepBench(base, cur, "BENCH_step.json", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Advisory {
		t.Fatal("host mismatch not marked advisory")
	}
	if rep.Failed {
		t.Fatal("advisory comparison failed the gate")
	}
	if !rep.Cells[0].Regressed {
		t.Fatal("regression not reported in advisory mode")
	}
}

// Old-schema baselines (pre-fused cell names) share no names with the new
// sweep; the gate must say so rather than silently passing.
func TestGateNoComparableCells(t *testing.T) {
	base := &StepBenchReport{
		HostCPUs: 4,
		Results:  []StepBenchResult{{Name: "workers=1/pool=on", NsPerStep: 100}},
	}
	_, cur := gateReports()
	if _, err := CompareStepBench(base, cur, "BENCH_step.json", 0.05); err == nil {
		t.Fatal("gate accepted a baseline with no comparable cells")
	}
}
