package bench

import (
	"errors"
	"time"

	"betty/internal/graph"
	"betty/internal/memory"
	"betty/internal/nn"
	"betty/internal/partition"
	"betty/internal/reg"
)

// The ablation experiments isolate the design choices DESIGN.md calls out:
// the REG objective itself, the multilevel partitioner's refinement and
// matching phases, and the memory-aware planner versus fixed partition
// counts.

func init() {
	register(&Experiment{
		ID:    "abl-reg",
		Paper: "Ablation: REG shared-neighbor weights vs direct-edge (redundancy-unaware) partitioning — input redundancy and partitioning cost",
		Run:   runAblREG,
	})
	register(&Experiment{
		ID:    "abl-fm",
		Paper: "Ablation: multilevel partitioner with and without FM boundary refinement — REG edge cut and resulting redundancy",
		Run:   runAblFM,
	})
	register(&Experiment{
		ID:    "abl-match",
		Paper: "Ablation: heavy-edge matching vs random matching during coarsening — REG edge cut",
		Run:   runAblMatch,
	})
	register(&Experiment{
		ID:    "abl-rb",
		Paper: "Ablation: direct K-way vs recursive-bisection multilevel partitioning on the REG — edge cut, redundancy, wall-clock",
		Run:   runAblRB,
	})
	register(&Experiment{
		ID:    "abl-planner",
		Paper: "Ablation: memory-aware planner vs fixed partition counts — chosen K, attempts, and capacity fit",
		Run:   runAblPlanner,
	})
}

// ablBatch samples the shared ablation workload: a 2-layer batch over
// ogbn-products with scaled fanouts.
func ablBatch(o Options) ([]*graph.Block, error) {
	ds, err := loadDataset("ogbn-products", o.scale(0.5))
	if err != nil {
		return nil, err
	}
	return fullBatch(ds, []int{3, 8}, 1)
}

// redundancyOf partitions the batch with p into k groups and measures the
// duplicated input nodes.
func redundancyOf(blocks []*graph.Block, p reg.BatchPartitioner, k int) (int, error) {
	groups, err := p.PartitionBatch(blocks[len(blocks)-1], k)
	if err != nil {
		return 0, err
	}
	micro := make([][]*graph.Block, 0, k)
	for _, sel := range groups {
		mb, err := graph.SliceBatch(blocks, sel)
		if err != nil {
			return 0, err
		}
		micro = append(micro, mb)
	}
	return graph.InputRedundancy(blocks, micro), nil
}

func runAblREG(o Options) ([]*Table, error) {
	blocks, err := ablBatch(o)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "abl-reg",
		Title:   "REG (betty) vs direct-edge metis vs random: redundancy and wall-clock partitioning cost",
		Columns: []string{"batches", "algorithm", "input redundancy", "partition time/ms"},
	}
	for _, k := range []int{4, 16, 64} {
		for _, p := range []reg.BatchPartitioner{
			reg.RandomBatch{Seed: 2},
			reg.MetisBatch{Seed: 2},
			reg.BettyBatch{Seed: 2},
		} {
			start := time.Now()
			red, err := redundancyOf(blocks, p, k)
			if err != nil {
				return nil, err
			}
			ms := float64(time.Since(start).Microseconds()) / 1000
			o.logf("abl-reg k=%d %s red=%d %.1fms", k, p.Name(), red, ms)
			t.AddRow(fmtI(k), p.Name(), fmtI(red), fmtF(ms, 1))
		}
	}
	return []*Table{t}, nil
}

// fmVariant is BettyBatch with partitioner knobs exposed for ablation.
type fmVariant struct {
	seed              uint64
	disableRefinement bool
	randomMatching    bool
	name              string
}

func (v fmVariant) Name() string { return v.name }

func (v fmVariant) PartitionBatch(last *graph.Block, k int) ([][]int32, error) {
	g, err := reg.BuildREG(last)
	if err != nil {
		return nil, err
	}
	m := &partition.Metis{
		Seed:              v.seed,
		DisableRefinement: v.disableRefinement,
		RandomMatching:    v.randomMatching,
	}
	parts, err := m.Partition(g, k)
	if err != nil {
		return nil, err
	}
	groups := make([][]int32, k)
	for i, p := range parts {
		groups[p] = append(groups[p], int32(i))
	}
	return groups, nil
}

// regCut measures the REG edge cut a variant achieves.
func regCut(blocks []*graph.Block, v fmVariant, k int) (float64, error) {
	last := blocks[len(blocks)-1]
	g, err := reg.BuildREG(last)
	if err != nil {
		return 0, err
	}
	groups, err := v.PartitionBatch(last, k)
	if err != nil {
		return 0, err
	}
	parts := make([]int32, last.NumDst)
	for pi, grp := range groups {
		for _, d := range grp {
			parts[d] = int32(pi)
		}
	}
	return partition.EdgeCut(g, parts), nil
}

func runAblFM(o Options) ([]*Table, error) {
	blocks, err := ablBatch(o)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "abl-fm",
		Title:   "FM refinement on/off: REG edge cut and input redundancy",
		Columns: []string{"batches", "refinement", "REG edge cut", "input redundancy"},
	}
	for _, k := range []int{4, 16, 64} {
		for _, refine := range []bool{true, false} {
			v := fmVariant{seed: 3, disableRefinement: !refine, name: "betty"}
			cut, err := regCut(blocks, v, k)
			if err != nil {
				return nil, err
			}
			red, err := redundancyOf(blocks, v, k)
			if err != nil {
				return nil, err
			}
			label := "on"
			if !refine {
				label = "off"
			}
			o.logf("abl-fm k=%d refine=%s cut=%.0f red=%d", k, label, cut, red)
			t.AddRow(fmtI(k), label, fmtF(cut, 0), fmtI(red))
		}
	}
	return []*Table{t}, nil
}

func runAblMatch(o Options) ([]*Table, error) {
	blocks, err := ablBatch(o)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "abl-match",
		Title:   "coarsening matcher: heavy-edge vs random matching, REG edge cut",
		Columns: []string{"batches", "matcher", "REG edge cut"},
	}
	for _, k := range []int{4, 16, 64} {
		for _, randomMatch := range []bool{false, true} {
			v := fmVariant{seed: 4, randomMatching: randomMatch, name: "betty"}
			cut, err := regCut(blocks, v, k)
			if err != nil {
				return nil, err
			}
			label := "heavy-edge"
			if randomMatch {
				label = "random"
			}
			t.AddRow(fmtI(k), label, fmtF(cut, 0))
		}
	}
	return []*Table{t}, nil
}

// rbVariant partitions the REG with a configurable partition.Partitioner.
type rbVariant struct {
	part partition.Partitioner
}

func (v rbVariant) Name() string { return v.part.Name() }

func (v rbVariant) PartitionBatch(last *graph.Block, k int) ([][]int32, error) {
	g, err := reg.BuildREGFast(last)
	if err != nil {
		return nil, err
	}
	parts, err := v.part.Partition(g, k)
	if err != nil {
		return nil, err
	}
	groups := make([][]int32, k)
	for i, p := range parts {
		groups[p] = append(groups[p], int32(i))
	}
	return groups, nil
}

func runAblRB(o Options) ([]*Table, error) {
	blocks, err := ablBatch(o)
	if err != nil {
		return nil, err
	}
	last := blocks[len(blocks)-1]
	regGraph, err := reg.BuildREGFast(last)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "abl-rb",
		Title:   "direct K-way vs recursive bisection on the REG",
		Columns: []string{"batches", "scheme", "REG edge cut", "input redundancy", "partition time/ms"},
	}
	for _, k := range []int{4, 16, 64} {
		for _, v := range []rbVariant{
			{part: &partition.Metis{Seed: 6}},
			{part: &partition.RecursiveBisection{Seed: 6}},
		} {
			start := time.Now()
			groups, err := v.PartitionBatch(last, k)
			if err != nil {
				return nil, err
			}
			ms := float64(time.Since(start).Microseconds()) / 1000
			parts := make([]int32, last.NumDst)
			for pi, grp := range groups {
				for _, dd := range grp {
					parts[dd] = int32(pi)
				}
			}
			cut := partition.EdgeCut(regGraph, parts)
			red, err := redundancyOf(blocks, v, k)
			if err != nil {
				return nil, err
			}
			o.logf("abl-rb k=%d %s cut=%.0f red=%d %.1fms", k, v.Name(), cut, red, ms)
			t.AddRow(fmtI(k), v.Name(), fmtF(cut, 0), fmtI(red), fmtF(ms, 1))
		}
	}
	return []*Table{t}, nil
}

func runAblPlanner(o Options) ([]*Table, error) {
	ds, err := loadDataset("ogbn-products", o.scale(0.5))
	if err != nil {
		return nil, err
	}
	spec, err := sageSpec(ds, 2, 128, nn.Mean)
	if err != nil {
		return nil, err
	}
	blocks, err := fullBatch(ds, []int{3, 8}, 1)
	if err != nil {
		return nil, err
	}
	full, err := memory.Estimate(blocks, spec)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "abl-planner",
		Title:   "memory-aware planner vs fixed K under shrinking capacity",
		Columns: []string{"capacity/MiB", "planner K", "attempts", "max micro peak/MiB", "fixed K=4 fits", "fixed K=16 fits"},
	}
	for _, frac := range []float64{0.75, 0.5, 0.25, 0.1} {
		capacity := int64(float64(full.Peak()) * frac)
		pl := &memory.Planner{Capacity: capacity, Partitioner: reg.BettyBatch{Seed: 5}, Spec: spec}
		plan, err := pl.Plan(blocks)
		if errors.Is(err, memory.ErrCannotFit) {
			// at very small scales the fixed model state alone exceeds the
			// capacity fraction; record the row rather than fail
			t.AddRow(fmtMiB(capacity), "-", "-", "-", "no", "no")
			continue
		}
		if err != nil {
			return nil, err
		}
		fits := func(k int) string {
			p, err := pl.EvaluateFixedK(blocks, k)
			if err != nil {
				return "err"
			}
			if p.MaxPeak <= capacity {
				return "yes"
			}
			return "no"
		}
		o.logf("abl-planner cap=%s K=%d attempts=%d", fmtMiB(capacity), plan.K, plan.Attempts)
		t.AddRow(fmtMiB(capacity), fmtI(plan.K), fmtI(plan.Attempts), fmtMiB(plan.MaxPeak), fits(4), fits(16))
	}
	return []*Table{t}, nil
}
