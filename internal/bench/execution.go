package bench

import (
	"fmt"
	"math"

	"betty/internal/core"
	"betty/internal/dataset"
	"betty/internal/device"
	"betty/internal/nn"
)

// loadDatasetWithDim generates a registered dataset at a scale with an
// overridden feature dimension. The recurrent-aggregator experiments scale
// the feature width down because the LSTM's hidden size equals the input
// width (the DGL convention), and the pure-Go substrate has no BLAS to
// absorb a 1433-wide recurrence (see EXPERIMENTS.md).
func loadDatasetWithDim(name string, scale float64, featDim int) (*dataset.Dataset, error) {
	cfg, err := dataset.Config(name)
	if err != nil {
		return nil, err
	}
	key := fmt.Sprintf("%s@%.4f/d%d", name, scale, featDim)
	if d, ok := dsCache[key]; ok {
		return d, nil
	}
	cfg.Nodes = int(float64(cfg.Nodes) * scale)
	if cfg.Nodes < cfg.NumClasses*4 {
		cfg.Nodes = cfg.NumClasses * 4
	}
	if cfg.Communities > 0 {
		cfg.Communities = int(float64(cfg.Communities) * scale)
		if cfg.Communities < cfg.NumClasses {
			cfg.Communities = cfg.NumClasses
		}
	}
	cfg.FeatureDim = featDim
	d, err := dataset.Generate(cfg)
	if err != nil {
		return nil, err
	}
	dsCache[key] = d
	return d, nil
}

// bigDevice returns a device large enough that execution experiments never
// OOM; they measure peaks, not walls.
func bigDevice() *device.Device {
	return device.New(64*device.GiB, device.DefaultCostModel())
}

func init() {
	register(&Experiment{
		ID:    "fig4",
		Paper: "Figure 4: training loss and test accuracy of full-batch vs small mini-batch training (GraphSAGE, ogbn-products)",
		Run:   runFig4,
	})
	register(&Experiment{
		ID:    "fig12",
		Paper: "Figure 12: peak memory and per-epoch training time as the number of micro-batches grows (five dataset/model panels)",
		Run:   runFig12,
	})
	register(&Experiment{
		ID:    "fig13",
		Paper: "Figure 13: convergence of full-batch vs 2/4/8 micro-batch training (3-layer GraphSAGE+Mean, ogbn-arxiv)",
		Run:   runFig13,
	})
	register(&Experiment{
		ID:    "tab5",
		Paper: "Table 5: test accuracy of full-batch (DGL) vs Betty micro-batch training across datasets and models",
		Run:   runTab5,
	})
}

func runFig4(o Options) ([]*Table, error) {
	ds, err := loadDataset("ogbn-products", o.scale(0.12))
	if err != nil {
		return nil, err
	}
	epochs := o.epochs(60)
	opts := core.Options{Seed: 4, Hidden: 64, Fanouts: []int{5, 10}, LR: 0.01}

	fullOpts := opts
	fullOpts.FixedK = 1
	full, err := core.BuildSAGE(ds, fullOpts)
	if err != nil {
		return nil, err
	}
	mini, err := core.BuildSAGE(ds, opts)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:      "fig4",
		Title:   fmt.Sprintf("full batch (%d outputs) vs 16 mini-batches, %d epochs", len(ds.TrainIdx), epochs),
		Columns: []string{"epoch", "full loss", "full test acc", "mini loss", "mini test acc"},
	}
	for e := 1; e <= epochs; e++ {
		fs, err := full.Engine.TrainEpochFull()
		if err != nil {
			return nil, err
		}
		ms, err := mini.Engine.TrainEpochMini(16, uint64(e))
		if err != nil {
			return nil, err
		}
		if e%5 == 0 || e == 1 {
			fa, err := full.Engine.TestAccuracy()
			if err != nil {
				return nil, err
			}
			ma, err := mini.Engine.TestAccuracy()
			if err != nil {
				return nil, err
			}
			o.logf("fig4 epoch %d full=%.3f mini=%.3f", e, fa, ma)
			t.AddRow(fmtI(e), fmtF(fs.Loss, 4), fmtF(fa, 4), fmtF(ms.Loss, 4), fmtF(ma, 4))
		}
	}
	return []*Table{t}, nil
}

// fig12Panel is one dataset/model panel of Figure 12.
type fig12Panel struct {
	panel   string
	ds      string
	scale   float64
	featDim int // 0 keeps the dataset's native width
	layers  int
	hidden  int
	agg     nn.Aggregator
	fanouts []int
}

func fig12Panels() []fig12Panel {
	return []fig12Panel{
		{"a", "ogbn-arxiv", 0.3, 0, 2, 64, nn.Mean, []int{5, 10}},
		{"b", "reddit", 0.3, 0, 4, 32, nn.Mean, []int{5, 10, 10, 10}},
		{"c", "pubmed", 1.0, 64, 2, 32, nn.LSTM, []int{3, 5}},
		{"d", "cora", 1.0, 64, 2, 32, nn.LSTM, []int{3, 5}},
		{"e", "ogbn-products", 0.3, 0, 1, 64, nn.LSTM, []int{10}},
	}
}

func runFig12(o Options) ([]*Table, error) {
	t := &Table{
		ID:      "fig12",
		Title:   "peak device memory and per-epoch time vs number of micro-batches (Betty partitioning)",
		Columns: []string{"panel", "dataset", "model", "batches", "peak/MiB", "train time/s", "transfer time/s", "redundancy"},
	}
	for _, p := range fig12Panels() {
		var ds *dataset.Dataset
		var err error
		if p.featDim > 0 {
			ds, err = loadDatasetWithDim(p.ds, o.scale(p.scale), p.featDim)
		} else {
			ds, err = loadDataset(p.ds, o.scale(p.scale))
		}
		if err != nil {
			return nil, err
		}
		model := fmt.Sprintf("%d-layer SAGE %s", p.layers, p.agg)
		for _, k := range []int{1, 2, 4, 8, 16, 32} {
			if k > len(ds.TrainIdx) {
				continue
			}
			dev := bigDevice()
			s, err := core.BuildSAGE(ds, core.Options{
				Seed: 12, Hidden: p.hidden, Layers: p.layers,
				Fanouts: p.fanouts, Aggregator: p.agg, FixedK: k, Device: dev,
			})
			if err != nil {
				return nil, err
			}
			st, err := s.Engine.TrainEpochMicro()
			if err != nil {
				return nil, err
			}
			o.logf("fig12 %s k=%d peak=%s time=%.3f", p.panel, k, fmtMiB(st.PeakBytes), st.ComputeSeconds)
			t.AddRow(p.panel, p.ds, model, fmtI(k), fmtMiB(st.PeakBytes),
				fmtF(st.ComputeSeconds, 4), fmtF(st.TransferSeconds, 4), fmtI(st.Redundancy))
		}
	}
	return []*Table{t}, nil
}

func runFig13(o Options) ([]*Table, error) {
	ds, err := loadDataset("ogbn-arxiv", o.scale(0.15))
	if err != nil {
		return nil, err
	}
	epochs := o.epochs(40)
	counts := []int{1, 2, 4, 8}
	setups := make([]*core.Setup, len(counts))
	for i, k := range counts {
		s, err := core.BuildSAGE(ds, core.Options{
			Seed: 13, Hidden: 64, Fanouts: []int{3, 5, 10}, Layers: 3,
			Aggregator: nn.Mean, FixedK: k, LR: 0.01,
		})
		if err != nil {
			return nil, err
		}
		setups[i] = s
	}
	t := &Table{
		ID:      "fig13",
		Title:   fmt.Sprintf("test accuracy by epoch, 3-layer GraphSAGE+Mean, %d epochs", epochs),
		Columns: []string{"epoch", "full batch", "2 micro-batches", "4 micro-batches", "8 micro-batches"},
	}
	for e := 1; e <= epochs; e++ {
		row := []string{fmtI(e)}
		record := e%4 == 0 || e == 1
		for _, s := range setups {
			if _, err := s.Engine.TrainEpochMicro(); err != nil {
				return nil, err
			}
			if record {
				acc, err := s.Engine.TestAccuracy()
				if err != nil {
					return nil, err
				}
				row = append(row, fmtF(acc, 4))
			}
		}
		if record {
			o.logf("fig13 epoch %d: %v", e, row[1:])
			t.AddRow(row...)
		}
	}
	return []*Table{t}, nil
}

// tab5Config is one dataset/model row of Table 5.
type tab5Config struct {
	ds    string
	scale float64
	model string // "sage" or "gat"
}

func tab5Configs() []tab5Config {
	return []tab5Config{
		{"cora", 1.0, "sage"},
		{"cora", 1.0, "gat"},
		{"pubmed", 0.5, "sage"},
		{"pubmed", 0.5, "gat"},
		{"reddit", 0.1, "sage"},
		{"reddit", 0.1, "gat"},
		{"ogbn-arxiv", 0.15, "sage"},
		{"ogbn-arxiv", 0.15, "gat"},
		// GAT cannot use ogbn-products in the paper either
		{"ogbn-products", 0.12, "sage"},
	}
}

func runTab5(o Options) ([]*Table, error) {
	epochs := o.epochs(25)
	const runs = 2
	t := &Table{
		ID:      "tab5",
		Title:   fmt.Sprintf("test accuracy %% (mean ± std over %d seeds, %d epochs): full batch vs Betty micro-batch", runs, epochs),
		Columns: []string{"dataset", "model", "full-batch acc", "betty acc", "betty K"},
	}
	for _, c := range tab5Configs() {
		var fullAcc, bettyAcc []float64
		bettyK := 0
		for seedIdx := 0; seedIdx < runs; seedIdx++ {
			seed := uint64(100 + seedIdx)
			for _, mode := range []string{"full", "betty"} {
				ds, err := loadDataset(c.ds, o.scale(c.scale))
				if err != nil {
					return nil, err
				}
				opts := core.Options{Seed: seed, Hidden: 64, Fanouts: []int{5, 10}, LR: 0.01}
				if c.model == "gat" {
					opts.Hidden = 16
					opts.Heads = 2
				}
				if mode == "full" {
					opts.FixedK = 1
				} else {
					opts.FixedK = 4
				}
				var s *core.Setup
				if c.model == "gat" {
					s, err = core.BuildGAT(ds, opts)
				} else {
					s, err = core.BuildSAGE(ds, opts)
				}
				if err != nil {
					return nil, err
				}
				for e := 0; e < epochs; e++ {
					st, err := s.Engine.TrainEpochMicro()
					if err != nil {
						return nil, err
					}
					if mode == "betty" {
						bettyK = st.K
					}
				}
				acc, err := s.Engine.TestAccuracy()
				if err != nil {
					return nil, err
				}
				if mode == "full" {
					fullAcc = append(fullAcc, 100*acc)
				} else {
					bettyAcc = append(bettyAcc, 100*acc)
				}
			}
		}
		o.logf("tab5 %s/%s full=%s betty=%s", c.ds, c.model, meanStd(fullAcc), meanStd(bettyAcc))
		t.AddRow(c.ds, c.model, meanStd(fullAcc), meanStd(bettyAcc), fmtI(bettyK))
	}
	return []*Table{t}, nil
}

// meanStd renders mean ± std of a sample.
func meanStd(xs []float64) string {
	if len(xs) == 0 {
		return "-"
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var v float64
	for _, x := range xs {
		v += (x - mean) * (x - mean)
	}
	v /= float64(len(xs))
	return fmt.Sprintf("%.2f ± %.2f", mean, math.Sqrt(v))
}
