package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"betty/internal/dataset"
	"betty/internal/graph"
	"betty/internal/nn"
	"betty/internal/obs"
	"betty/internal/parallel"
	"betty/internal/rng"
	"betty/internal/sample"
	"betty/internal/tensor"
	"betty/internal/train"
)

// The step benchmark measures the training hot path this repository
// optimizes: one micro-batch forward+backward+optimizer step of a 2-layer
// GraphSAGE(Mean) model, swept over worker counts and the tape buffer
// pool. Its output, BENCH_step.json, is the perf-trajectory baseline
// future PRs diff against.

// StepBenchResult is one measured cell of the step sweep.
type StepBenchResult struct {
	// Name is "workers=W/pool=on|off/fused=on|off".
	Name string `json:"name"`
	// Workers is the parallel.SetWorkers bound used for the run.
	Workers int `json:"workers"`
	// Pool reports whether the tape buffer pool was enabled.
	Pool bool `json:"pool"`
	// Fused reports whether the fused kernel tier (BETTY_FUSED) was on.
	Fused bool `json:"fused"`
	// NsPerStep, BytesPerStep, and AllocsPerStep come straight from
	// testing.Benchmark over RunMicroBatch+Step.
	NsPerStep     int64 `json:"ns_per_step"`
	BytesPerStep  int64 `json:"bytes_per_step"`
	AllocsPerStep int64 `json:"allocs_per_step"`
}

// StepBenchDelta compares this run's fused workers=1/pool=on cell against
// the previously committed BENCH_step.json (the perf-trajectory record:
// every regeneration documents what it changed).
type StepBenchDelta struct {
	PrevNsPerStep     int64   `json:"prev_ns_per_step"`
	NewNsPerStep      int64   `json:"new_ns_per_step"`
	Speedup           float64 `json:"speedup"`
	PrevAllocsPerStep int64   `json:"prev_allocs_per_step"`
	NewAllocsPerStep  int64   `json:"new_allocs_per_step"`
}

// StepBenchReport is the schema of BENCH_step.json.
type StepBenchReport struct {
	// Dataset and Model describe the benchmarked workload.
	Dataset string `json:"dataset"`
	Model   string `json:"model"`
	// Seeds is the micro-batch output size, Edges the total block edges.
	Seeds int `json:"seeds"`
	Edges int `json:"edges"`
	// HostCPUs is GOMAXPROCS-visible parallelism of the measuring host —
	// speedups above it are not physically observable.
	HostCPUs int `json:"host_cpus"`
	// Results holds the measured sweep cells.
	Results []StepBenchResult `json:"results"`
	// SpeedupPooled8W is ns/step at workers=1 over workers=8, pool on.
	SpeedupPooled8W float64 `json:"speedup_pooled_8w"`
	// FusedSpeedup is unfused over fused ns/step at workers=1, pool on —
	// the raw win of the kernel tier (DESIGN.md §13).
	FusedSpeedup float64 `json:"fused_speedup"`
	// Delta compares against the previously committed report, when one
	// existed at the output path.
	Delta *StepBenchDelta `json:"delta_vs_committed,omitempty"`
	// AllocReduction is allocs/step unpooled over pooled (workers=1).
	AllocReduction float64 `json:"alloc_reduction"`
	// ByteReduction is bytes/step unpooled over pooled (workers=1) — the
	// GC-pressure reduction from recycling the tape arena.
	ByteReduction float64 `json:"byte_reduction"`
	// ObsRecords is the NDJSON export of one fully instrumented step
	// (spans + counters + histograms), embedded one record per element so
	// the step baseline carries the same observability schema as
	// bettytrain -metrics (DESIGN.md §10).
	ObsRecords []json.RawMessage `json:"obs_records,omitempty"`
}

// stepWorkload builds the fixed micro-batch the sweep measures.
func stepWorkload(scale float64) (*train.Runner, []*graph.Block, error) {
	ds, err := dataset.LoadScaled("ogbn-products", scale)
	if err != nil {
		return nil, nil, err
	}
	seeds := ds.TrainIdx
	if len(seeds) > 1024 {
		seeds = seeds[:1024]
	}
	blocks, err := sample.New([]int{5, 10}, 1).Sample(ds.Graph, seeds)
	if err != nil {
		return nil, nil, err
	}
	model, err := nn.NewGraphSAGE(nn.Config{
		InDim: ds.FeatureDim(), Hidden: 64, OutDim: ds.NumClasses,
		Layers: 2, Aggregator: nn.Mean,
	}, rng.New(1))
	if err != nil {
		return nil, nil, err
	}
	runner := train.NewRunner(model, ds, nn.NewAdam(model, 0.01), nil)
	return runner, blocks, nil
}

// RunStepBench sweeps {1, 8} workers x {on, off} pool over the step
// workload and returns the report. Each cell runs under testing.Benchmark
// with allocation tracking, after one untimed warm-up step that fills the
// pool arena (steady-state behavior is what the K-micro-batch loop sees).
func RunStepBench(scale float64) (*StepBenchReport, error) {
	runner, blocks, err := stepWorkload(scale)
	if err != nil {
		return nil, err
	}
	stats := graph.Stats(blocks)
	rep := &StepBenchReport{
		Dataset:  "ogbn-products",
		Model:    "GraphSAGE-2L-Mean-h64",
		Seeds:    stats.NumOutput,
		Edges:    stats.TotalEdges,
		HostCPUs: parallel.SetWorkers(parallel.SetWorkers(0)),
	}
	step := func() error {
		if _, err := runner.RunMicroBatch(blocks, 1); err != nil {
			return err
		}
		runner.Step()
		return nil
	}
	// The sweep: the fused/unfused A/B at both worker counts (pool on, the
	// production configuration), plus the pool-off cells that keep the
	// allocation-reduction trend comparable across reports (fused on, the
	// default execution path).
	cells := []struct {
		workers     int
		pool, fused bool
	}{
		{1, true, true}, {8, true, true},
		{1, true, false}, {8, true, false},
		{1, false, true}, {8, false, true},
	}
	for _, c := range cells {
		prevW := parallel.SetWorkers(c.workers)
		prevP := tensor.SetPooling(c.pool)
		prevF := nn.SetFused(c.fused)
		restore := func() {
			parallel.SetWorkers(prevW)
			tensor.SetPooling(prevP)
			nn.SetFused(prevF)
		}
		if err := step(); err != nil { // warm-up, untimed
			restore()
			return nil, err
		}
		var stepErr error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := step(); err != nil {
					stepErr = err
					b.FailNow()
				}
			}
		})
		restore()
		if stepErr != nil {
			return nil, stepErr
		}
		rep.Results = append(rep.Results, StepBenchResult{
			Name:          fmt.Sprintf("workers=%d/pool=%s/fused=%s", c.workers, onOff(c.pool), onOff(c.fused)),
			Workers:       c.workers,
			Pool:          c.pool,
			Fused:         c.fused,
			NsPerStep:     r.NsPerOp(),
			BytesPerStep:  r.AllocedBytesPerOp(),
			AllocsPerStep: r.AllocsPerOp(),
		})
	}
	cell := func(w int, pool, fused bool) *StepBenchResult {
		for i := range rep.Results {
			if rep.Results[i].Workers == w && rep.Results[i].Pool == pool && rep.Results[i].Fused == fused {
				return &rep.Results[i]
			}
		}
		return nil
	}
	if a, b := cell(1, true, true), cell(8, true, true); a != nil && b != nil && b.NsPerStep > 0 {
		rep.SpeedupPooled8W = float64(a.NsPerStep) / float64(b.NsPerStep)
	}
	if a, b := cell(1, true, false), cell(1, true, true); a != nil && b != nil && b.NsPerStep > 0 {
		rep.FusedSpeedup = float64(a.NsPerStep) / float64(b.NsPerStep)
	}
	if a, b := cell(1, false, true), cell(1, true, true); a != nil && b != nil && b.AllocsPerStep > 0 {
		rep.AllocReduction = float64(a.AllocsPerStep) / float64(b.AllocsPerStep)
		if b.BytesPerStep > 0 {
			rep.ByteReduction = float64(a.BytesPerStep) / float64(b.BytesPerStep)
		}
	}

	// One fully instrumented step (untimed, outside the sweep cells) whose
	// span/metric records are embedded verbatim in the report.
	obsReg := obs.New(obs.RealClock())
	obsReg.SetTracing(true)
	runner.Obs = obsReg
	if err := step(); err != nil {
		return nil, err
	}
	runner.Obs = nil
	for _, line := range obsReg.Records() {
		rep.ObsRecords = append(rep.ObsRecords, json.RawMessage(line))
	}
	return rep, nil
}

// ReadStepBench parses a committed BENCH_step.json.
func ReadStepBench(path string) (*StepBenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep StepBenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return &rep, nil
}

// baselineHotCell picks a report's workers=1/pool=on production cell,
// preferring the fused one; reports written before the fused dimension
// existed decode with Fused=false everywhere and still match.
func baselineHotCell(rep *StepBenchReport) *StepBenchResult {
	var fallback *StepBenchResult
	for i := range rep.Results {
		r := &rep.Results[i]
		if r.Workers != 1 || !r.Pool {
			continue
		}
		if r.Fused {
			return r
		}
		if fallback == nil {
			fallback = r
		}
	}
	return fallback
}

// WriteStepBench runs the sweep and writes the JSON report to path. When a
// previous report exists there, the new one embeds a delta against its
// workers=1/pool=on cell, so the committed file always documents what the
// regeneration changed.
func WriteStepBench(path string, scale float64) (*StepBenchReport, error) {
	var prevCell *StepBenchResult
	if prev, err := ReadStepBench(path); err == nil {
		prevCell = baselineHotCell(prev)
	}
	rep, err := RunStepBench(scale)
	if err != nil {
		return nil, err
	}
	if newCell := baselineHotCell(rep); prevCell != nil && newCell != nil && newCell.NsPerStep > 0 {
		rep.Delta = &StepBenchDelta{
			PrevNsPerStep:     prevCell.NsPerStep,
			NewNsPerStep:      newCell.NsPerStep,
			Speedup:           float64(prevCell.NsPerStep) / float64(newCell.NsPerStep),
			PrevAllocsPerStep: prevCell.AllocsPerStep,
			NewAllocsPerStep:  newCell.AllocsPerStep,
		}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return rep, os.WriteFile(path, append(data, '\n'), 0o644)
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}
