package bench

import (
	"fmt"

	"betty/internal/dataset"
	"betty/internal/graph"
	"betty/internal/memory"
	"betty/internal/nn"
	"betty/internal/reg"
	"betty/internal/rng"
	"betty/internal/sample"
)

// batchPartitioners returns the four compared algorithms in paper order.
func batchPartitioners(seed uint64) []reg.BatchPartitioner {
	return []reg.BatchPartitioner{
		reg.RangeBatch{},
		reg.RandomBatch{Seed: seed},
		reg.MetisBatch{Seed: seed},
		reg.BettyBatch{Seed: seed},
	}
}

// sageSpec builds a GraphSAGE model of the given shape over ds and returns
// its memory spec (Adam optimizer, as in the paper's training setup).
func sageSpec(ds *dataset.Dataset, layers, hidden int, agg nn.Aggregator) (memory.Spec, error) {
	cfg := nn.Config{
		InDim: ds.FeatureDim(), Hidden: hidden, OutDim: ds.NumClasses,
		Layers: layers, Aggregator: agg,
	}
	m, err := nn.NewGraphSAGE(cfg, rng.New(1))
	if err != nil {
		return memory.Spec{}, err
	}
	return memory.SpecFromSAGE(m, nn.NewAdam(m, 0.01)), nil
}

// fullBatch samples the full training batch of ds under the fanouts.
func fullBatch(ds *dataset.Dataset, fanouts []int, seed uint64) ([]*graph.Block, error) {
	return sample.New(fanouts, seed).Sample(ds.Graph, ds.TrainIdx)
}

// estimateConfig estimates the full-batch peak for one model/fanout shape.
func estimateConfig(ds *dataset.Dataset, layers, hidden int, agg nn.Aggregator, fanouts []int) (memory.Breakdown, memory.Spec, []*graph.Block, error) {
	spec, err := sageSpec(ds, layers, hidden, agg)
	if err != nil {
		return memory.Breakdown{}, spec, nil, err
	}
	blocks, err := fullBatch(ds, fanouts, 1)
	if err != nil {
		return memory.Breakdown{}, spec, nil, err
	}
	est, err := memory.Estimate(blocks, spec)
	return est, spec, blocks, err
}

// oomMark renders an estimated peak against the simulated capacity.
func oomMark(peak int64) string {
	if peak > SimCapacity {
		return "OOM"
	}
	return ""
}

// fig2Configs are the four panels of Figure 2 (and Figure 10): the
// memory-wall sweeps on ogbn-products. Dimensions are scaled with the
// dataset (see EXPERIMENTS.md) so the same knobs cross the capacity.
type fig2Config struct {
	panel   string
	label   string
	layers  int
	hidden  int
	agg     nn.Aggregator
	fanouts []int
}

func fig2Configs() []fig2Config {
	return []fig2Config{
		// (a) neighbor aggregators, 2-layer, hidden 256, fanout (10,25)
		{"a", "mean", 2, 256, nn.Mean, []int{10, 25}},
		{"a", "pool", 2, 256, nn.Pool, []int{10, 25}},
		{"a", "lstm", 2, 256, nn.LSTM, []int{10, 25}},
		// (b) number of layers, Mean, hidden 256, fanouts (10,25,30,40,40)
		{"b", "2-layer", 2, 256, nn.Mean, []int{10, 25}},
		{"b", "3-layer", 3, 256, nn.Mean, []int{10, 25, 30}},
		{"b", "4-layer", 4, 256, nn.Mean, []int{10, 25, 30, 40}},
		{"b", "5-layer", 5, 256, nn.Mean, []int{10, 25, 30, 40, 40}},
		// (c) hidden size, 4-layer Mean
		{"c", "hidden-64", 4, 64, nn.Mean, []int{10, 25, 30, 40}},
		{"c", "hidden-128", 4, 128, nn.Mean, []int{10, 25, 30, 40}},
		{"c", "hidden-256", 4, 256, nn.Mean, []int{10, 25, 30, 40}},
		{"c", "hidden-512", 4, 512, nn.Mean, []int{10, 25, 30, 40}},
		// (d) fanout, 1-layer LSTM, hidden 256
		{"d", "fanout-10", 1, 256, nn.LSTM, []int{10}},
		{"d", "fanout-20", 1, 256, nn.LSTM, []int{20}},
		{"d", "fanout-100", 1, 256, nn.LSTM, []int{100}},
		{"d", "fanout-800", 1, 256, nn.LSTM, []int{800}},
	}
}

const fig2Scale = 1.0 // products at full (registry) scale for the estimation sweeps

func init() {
	register(&Experiment{
		ID:    "fig2",
		Paper: "Figure 2: GPU memory consumption of GraphSAGE on ogbn-products across aggregators, depths, hidden sizes, and fanouts (full batch, no Betty)",
		Run:   runFig2,
	})
	register(&Experiment{
		ID:    "fig3",
		Paper: "Figure 3: memory breakdown of 1-layer GraphSAGE+Mean on ogbn-products (fanout 10, hidden 64)",
		Run:   runFig3,
	})
	register(&Experiment{
		ID:    "fig9",
		Paper: "Figure 9: in-degree distribution of destination nodes and of two REG micro-batches (ogbn-arxiv)",
		Run:   runFig9,
	})
	register(&Experiment{
		ID:    "fig10",
		Paper: "Figure 10: Betty breaks the Figure 2 memory wall; micro-batch counts chosen by the memory-aware planner",
		Run:   runFig10,
	})
	register(&Experiment{
		ID:    "fig11",
		Paper: "Figure 11: max memory reduction vs range/random/Metis partitioning (GraphSAGE, ogbn-products, varying batch counts; summary across datasets)",
		Run:   runFig11,
	})
	register(&Experiment{
		ID:    "fig16",
		Paper: "Figure 16: input-node redundancy of range/random/Metis/Betty versus the number of batches (3-layer GraphSAGE+Mean, ogbn-products)",
		Run:   runFig16,
	})
	register(&Experiment{
		ID:    "tab2",
		Paper: "Table 2: micro-batch memory imbalance of pure REG partitioning (GraphSAGE, ogbn-arxiv, 2 and 4 batches)",
		Run:   runTab2,
	})
}

func runFig2(o Options) ([]*Table, error) {
	ds, err := loadDataset("ogbn-products", o.scale(fig2Scale))
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig2",
		Title:   fmt.Sprintf("full-batch estimated peak memory, capacity %s GiB", fmtGiB(SimCapacity)),
		Columns: []string{"panel", "config", "layers", "hidden", "agg", "fanouts", "peak/GiB", "status"},
	}
	for _, c := range fig2Configs() {
		est, _, _, err := estimateConfig(ds, c.layers, c.hidden, c.agg, c.fanouts)
		if err != nil {
			return nil, err
		}
		o.logf("fig2 %s/%s peak=%s GiB", c.panel, c.label, fmtGiB(est.Peak()))
		t.AddRow(c.panel, c.label, fmtI(c.layers), fmtI(c.hidden), c.agg.String(),
			fmt.Sprint(c.fanouts), fmtGiB(est.Peak()), oomMark(est.Peak()))
	}
	return []*Table{t}, nil
}

func runFig3(o Options) ([]*Table, error) {
	ds, err := loadDataset("ogbn-products", o.scale(fig2Scale))
	if err != nil {
		return nil, err
	}
	est, _, _, err := estimateConfig(ds, 1, 64, nn.Mean, []int{10})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig3",
		Title:   "memory breakdown, 1-layer GraphSAGE+Mean, fanout 10, hidden 64",
		Columns: []string{"component", "MiB", "share/%"},
	}
	total := float64(est.Total())
	row := func(name string, v int64) {
		t.AddRow(name, fmtMiB(v), fmtF(100*float64(v)/total, 1))
	}
	row("input node features", est.InputFeatures)
	row("output node labels", est.Labels)
	row("edges (blocks)", est.Blocks)
	row("hidden layer output", est.Hidden)
	row("aggregator", est.Aggregator)
	row("model parameters", est.Params)
	row("gradients", est.Gradients)
	row("optimizer states", est.OptStates)
	return []*Table{t}, nil
}

func runFig9(o Options) ([]*Table, error) {
	ds, err := loadDataset("ogbn-arxiv", o.scale(0.5))
	if err != nil {
		return nil, err
	}
	blocks, err := fullBatch(ds, []int{10, 25}, 1)
	if err != nil {
		return nil, err
	}
	last := blocks[len(blocks)-1]
	const maxBucket = 10

	ta := &Table{
		ID:      "fig9",
		Title:   "(a) in-degree distribution of the batch's destination nodes",
		Columns: []string{"in-degree", "nodes"},
	}
	hist := last.InDegreeHistogram(maxBucket)
	for d, c := range hist {
		label := fmtI(d)
		if d == maxBucket {
			label = fmt.Sprintf(">=%d", maxBucket)
		}
		ta.AddRow(label, fmtI(c))
	}

	groups, err := (reg.BettyBatch{Seed: 1}).PartitionBatch(last, 2)
	if err != nil {
		return nil, err
	}
	tb := &Table{
		ID:      "fig9",
		Title:   "(b) in-degree distribution of the two REG micro-batches",
		Columns: []string{"in-degree", "micro-batch 0", "micro-batch 1", "imbalance/%"},
	}
	var hists [2][]int
	for gi, sel := range groups {
		micro, err := graph.SliceBatch(blocks, sel)
		if err != nil {
			return nil, err
		}
		hists[gi] = micro[len(micro)-1].InDegreeHistogram(maxBucket)
	}
	for d := 0; d <= maxBucket; d++ {
		label := fmtI(d)
		if d == maxBucket {
			label = fmt.Sprintf(">=%d", maxBucket)
		}
		a, b := hists[0][d], hists[1][d]
		imb := 0.0
		if a+b > 0 {
			lo, hi := a, b
			if lo > hi {
				lo, hi = hi, lo
			}
			if lo > 0 {
				imb = 100 * float64(hi-lo) / float64(lo)
			} else if hi > 0 {
				imb = 100
			}
		}
		tb.AddRow(label, fmtI(a), fmtI(b), fmtF(imb, 1))
	}
	return []*Table{ta, tb}, nil
}

func runFig10(o Options) ([]*Table, error) {
	ds, err := loadDataset("ogbn-products", o.scale(fig2Scale))
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig10",
		Title:   fmt.Sprintf("memory-aware planning under a %s GiB capacity: micro-batch count K per Figure 2 config", fmtGiB(SimCapacity)),
		Columns: []string{"panel", "config", "full peak/GiB", "K", "max micro peak/GiB", "attempts"},
	}
	for _, c := range fig2Configs() {
		est, spec, blocks, err := estimateConfig(ds, c.layers, c.hidden, c.agg, c.fanouts)
		if err != nil {
			return nil, err
		}
		pl := &memory.Planner{
			Capacity:    SimCapacity,
			Partitioner: reg.BettyBatch{Seed: 1},
			Spec:        spec,
		}
		plan, err := pl.Plan(blocks)
		if err != nil {
			return nil, fmt.Errorf("fig10 %s/%s: %w", c.panel, c.label, err)
		}
		o.logf("fig10 %s/%s K=%d", c.panel, c.label, plan.K)
		t.AddRow(c.panel, c.label, fmtGiB(est.Peak()), fmtI(plan.K), fmtGiB(plan.MaxPeak), fmtI(plan.Attempts))
	}
	return []*Table{t}, nil
}

func runFig11(o Options) ([]*Table, error) {
	// Panel 1: ogbn-products across batch counts, all four partitioners.
	// Fanouts are scaled with the graph (the paper's (10,25) on 2.45M
	// nodes keeps multi-hop frontiers partial; (5,10) does the same here).
	ds, err := loadDataset("ogbn-products", o.scale(1.0))
	if err != nil {
		return nil, err
	}
	spec, err := sageSpec(ds, 2, 128, nn.Mean)
	if err != nil {
		return nil, err
	}
	blocks, err := fullBatch(ds, []int{5, 10}, 1)
	if err != nil {
		return nil, err
	}
	t1 := &Table{
		ID:      "fig11",
		Title:   "max micro-batch estimated peak (MiB), GraphSAGE ogbn-products",
		Columns: []string{"batches", "range", "random", "metis", "betty", "betty reduction/%"},
	}
	for _, k := range []int{2, 4, 8, 16, 32} {
		peaks := make([]int64, 0, 4)
		for _, p := range batchPartitioners(1) {
			pl := &memory.Planner{Capacity: 1 << 62, Partitioner: p, Spec: spec}
			plan, err := pl.EvaluateFixedK(blocks, k)
			if err != nil {
				return nil, err
			}
			peaks = append(peaks, plan.MaxPeak)
		}
		worst := peaks[0]
		for _, p := range peaks[:3] {
			if p > worst {
				worst = p
			}
		}
		red := 100 * (1 - float64(peaks[3])/float64(worst))
		o.logf("fig11 k=%d betty reduction %.1f%%", k, red)
		t1.AddRow(fmtI(k), fmtMiB(peaks[0]), fmtMiB(peaks[1]), fmtMiB(peaks[2]), fmtMiB(peaks[3]), fmtF(red, 1))
	}

	// Panel 2: per-dataset summary at K=8.
	t2 := &Table{
		ID:      "fig11",
		Title:   "max micro-batch peak at K=8 across datasets (MiB)",
		Columns: []string{"dataset", "range", "random", "metis", "betty", "betty reduction/%"},
	}
	for _, name := range dataset.Names() {
		dsi, err := loadDataset(name, o.scale(1.0))
		if err != nil {
			return nil, err
		}
		speci, err := sageSpec(dsi, 2, 128, nn.Mean)
		if err != nil {
			return nil, err
		}
		blocksi, err := fullBatch(dsi, []int{5, 10}, 1)
		if err != nil {
			return nil, err
		}
		peaks := make([]int64, 0, 4)
		for _, p := range batchPartitioners(1) {
			pl := &memory.Planner{Capacity: 1 << 62, Partitioner: p, Spec: speci}
			plan, err := pl.EvaluateFixedK(blocksi, 8)
			if err != nil {
				return nil, err
			}
			peaks = append(peaks, plan.MaxPeak)
		}
		worst := peaks[0]
		for _, p := range peaks[:3] {
			if p > worst {
				worst = p
			}
		}
		red := 100 * (1 - float64(peaks[3])/float64(worst))
		t2.AddRow(name, fmtMiB(peaks[0]), fmtMiB(peaks[1]), fmtMiB(peaks[2]), fmtMiB(peaks[3]), fmtF(red, 1))
	}
	return []*Table{t1, t2}, nil
}

func runFig16(o Options) ([]*Table, error) {
	// Fanouts (3,5,10) are the scaled equivalent of the paper's (25,35,40):
	// they keep 3-hop micro-batch frontiers partial on the 60k-node graph.
	ds, err := loadDataset("ogbn-products", o.scale(1.0))
	if err != nil {
		return nil, err
	}
	blocks, err := fullBatch(ds, []int{3, 5, 10}, 1)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig16",
		Title:   "input-node redundancy vs batches, 3-layer GraphSAGE+Mean, scaled fanout (3,5,10)",
		Columns: []string{"batches", "range", "random", "metis", "betty", "betty vs best baseline/%"},
	}
	for _, k := range []int{2, 4, 8, 16, 32, 64} {
		reds := make([]int, 0, 4)
		for _, p := range batchPartitioners(1) {
			groups, err := p.PartitionBatch(blocks[len(blocks)-1], k)
			if err != nil {
				return nil, err
			}
			micro := make([][]*graph.Block, 0, k)
			for _, sel := range groups {
				mb, err := graph.SliceBatch(blocks, sel)
				if err != nil {
					return nil, err
				}
				micro = append(micro, mb)
			}
			reds = append(reds, graph.InputRedundancy(blocks, micro))
		}
		best := reds[0]
		for _, r := range reds[:3] {
			if r < best {
				best = r
			}
		}
		var save float64
		if best > 0 {
			save = 100 * (1 - float64(reds[3])/float64(best))
		}
		o.logf("fig16 k=%d betty=%d best-baseline=%d", k, reds[3], best)
		t.AddRow(fmtI(k), fmtI(reds[0]), fmtI(reds[1]), fmtI(reds[2]), fmtI(reds[3]), fmtF(save, 1))
	}
	return []*Table{t}, nil
}

func runTab2(o Options) ([]*Table, error) {
	ds, err := loadDataset("ogbn-arxiv", o.scale(0.5))
	if err != nil {
		return nil, err
	}
	spec, err := sageSpec(ds, 2, 128, nn.Mean)
	if err != nil {
		return nil, err
	}
	blocks, err := fullBatch(ds, []int{10, 25}, 1)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "tab2",
		Title:   "micro-batch memory under pure REG partitioning (no memory-aware step)",
		Columns: []string{"batches", "batch id", "estimated peak/MiB", "vs min/%"},
	}
	for _, k := range []int{2, 4} {
		pl := &memory.Planner{Capacity: 1 << 62, Partitioner: reg.BettyBatch{Seed: 1}, Spec: spec}
		plan, err := pl.EvaluateFixedK(blocks, k)
		if err != nil {
			return nil, err
		}
		minPeak := plan.Estimates[0].Peak()
		for _, e := range plan.Estimates[1:] {
			if e.Peak() < minPeak {
				minPeak = e.Peak()
			}
		}
		for i, e := range plan.Estimates {
			over := 100 * (float64(e.Peak())/float64(minPeak) - 1)
			t.AddRow(fmtI(k), fmtI(i), fmtMiB(e.Peak()), fmtF(over, 1))
		}
	}
	return []*Table{t}, nil
}
