package bench

import (
	"strings"
	"testing"

	"betty/internal/serve"
)

// servegateReport builds a minimal report with one reuse cell at the given
// latencies.
func servegateReport(cpus int, p50, p99 int64) *ServeBenchReport {
	return &ServeBenchReport{
		HostCPUs: cpus,
		Emb: []ServeEmbResult{
			{Mode: "off", Load: &serve.LoadReport{P50NS: p50, P99NS: p99}},
			{Mode: "reuse", Load: &serve.LoadReport{P50NS: p50, P99NS: p99}},
		},
	}
}

// The median is held to the threshold itself; a 10% p50 regression on a
// comparable host fails the gate.
func TestServeGateFailsOnMedianRegression(t *testing.T) {
	base := servegateReport(8, 1_000_000, 10_000_000)
	cur := servegateReport(8, 1_100_000, 10_000_000)
	rep, err := CompareServeBench(base, cur, "b.json", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed {
		t.Fatal("10% p50 regression did not fail the gate")
	}
	if rep.Cells[0].Name != "serve/reuse/p50_ns" || !rep.Cells[0].Regressed {
		t.Fatalf("p50 cell not flagged: %+v", rep.Cells)
	}
}

// The smoke's p99 comes from a handful of tail samples, so it gets the
// widened TailGateFactor tolerance: 10% jitter passes, a blowup beyond
// threshold*TailGateFactor still fails.
func TestServeGateTailTolerance(t *testing.T) {
	base := servegateReport(8, 1_000_000, 10_000_000)

	jitter := servegateReport(8, 1_000_000, 11_000_000) // +10% p99
	rep, err := CompareServeBench(base, jitter, "b.json", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed {
		t.Fatal("tail jitter within the widened tolerance failed the gate")
	}

	blowup := servegateReport(8, 1_000_000, 10_000_000+int64(float64(10_000_000)*0.05*TailGateFactor)+1_000_000)
	rep, err = CompareServeBench(base, blowup, "b.json", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed {
		t.Fatal("tail blowup beyond threshold*TailGateFactor passed the gate")
	}
}

// A baseline measured on different host parallelism demotes the gate to
// advisory: cells are still compared and flagged, but nothing fails.
func TestServeGateHostMismatchIsAdvisory(t *testing.T) {
	base := servegateReport(4, 1_000_000, 10_000_000)
	cur := servegateReport(8, 2_000_000, 40_000_000)
	rep, err := CompareServeBench(base, cur, "b.json", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Advisory {
		t.Fatal("host-CPU mismatch did not demote the gate to advisory")
	}
	if rep.Failed {
		t.Fatal("advisory comparison must never fail the gate")
	}
	if !rep.Cells[0].Regressed {
		t.Fatal("advisory mode must still flag regressed cells")
	}
}

// A baseline without a reuse cell (pre-embcache BENCH_serve.json) is a
// loud error naming the baseline, not a silently green gate.
func TestServeGateMissingReuseCell(t *testing.T) {
	base := &ServeBenchReport{HostCPUs: 8}
	cur := servegateReport(8, 1_000_000, 10_000_000)
	_, err := CompareServeBench(base, cur, "old_baseline.json", 0.05)
	if err == nil || !strings.Contains(err.Error(), "old_baseline.json") {
		t.Fatalf("stale baseline error = %v, want it to name the baseline", err)
	}
}
