package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"betty/internal/core"
	"betty/internal/dataset"
	"betty/internal/obs"
	"betty/internal/serve"
)

// The serve benchmark measures the online inference path: an open-loop
// seeded load run against a live server, reporting throughput, latency
// percentiles, and how well the dynamic batcher and feature cache
// amortized the work. Its output, BENCH_serve.json, is the serving
// counterpart of BENCH_step.json.

// ServeBenchReport is the schema of BENCH_serve.json.
type ServeBenchReport struct {
	// Dataset and Model describe the served workload.
	Dataset string `json:"dataset"`
	Model   string `json:"model"`
	// Requests and NodesPerRequest describe the load trace.
	Requests        int `json:"requests"`
	NodesPerRequest int `json:"nodes_per_request"`
	// Load is the measured throughput/latency report.
	Load *serve.LoadReport `json:"load"`
	// Batches is how many batches served the trace; AvgRequestsPerBatch
	// is the coalescing factor the dynamic batcher achieved.
	Batches             int64   `json:"batches"`
	AvgRequestsPerBatch float64 `json:"avg_requests_per_batch"`
	// CacheHitRate is hits / (hits + misses) of the feature cache.
	CacheHitRate float64 `json:"cache_hit_rate"`
	// MaxEstPeakBytes is the largest planned micro-batch forward peak;
	// CapacityBytes is the budget it stayed under.
	MaxEstPeakBytes int64 `json:"max_est_peak_bytes"`
	CapacityBytes   int64 `json:"capacity_bytes"`
}

// RunServeBench builds a server over the scaled ogbn-arxiv workload and
// drives it with a seeded open-loop trace.
func RunServeBench(scale float64) (*ServeBenchReport, error) {
	ds, err := dataset.LoadScaled("ogbn-arxiv", scale)
	if err != nil {
		return nil, err
	}
	setup, err := core.BuildSAGE(ds, core.Options{Seed: 1, Hidden: 64, Fanouts: []int{5, 10}})
	if err != nil {
		return nil, err
	}
	cfg := serve.Defaults()
	cfg.Fanouts = []int{5, 10}
	cfg.Seed = 1
	cfg.MaxWait = time.Millisecond
	cfg.Obs = obs.New(nil)
	s, err := serve.New(ds, setup.Model, cfg)
	if err != nil {
		return nil, err
	}
	s.Start()
	defer s.Close()

	lc := serve.LoadConfig{
		Requests:        200,
		NodesPerRequest: 8,
		MeanGap:         200 * time.Microsecond,
		Seed:            7,
	}
	load, err := serve.RunLoad(s, lc)
	if err != nil {
		return nil, err
	}
	if load.Errors > 0 {
		return nil, fmt.Errorf("bench: %d of %d serve requests failed", load.Errors, load.Requests)
	}
	st := s.StatsSnapshot()
	rep := &ServeBenchReport{
		Dataset:         ds.Name,
		Model:           "GraphSAGE-2L-Mean-h64",
		Requests:        lc.Requests,
		NodesPerRequest: lc.NodesPerRequest,
		Load:            load,
		Batches:         st.Batches,
		MaxEstPeakBytes: st.MaxEstPeakBytes,
		CapacityBytes:   cfg.CapacityBytes,
	}
	if st.Batches > 0 {
		rep.AvgRequestsPerBatch = float64(st.BatchedRequests) / float64(st.Batches)
	}
	if lookups := st.CacheHits + st.CacheMisses; lookups > 0 {
		rep.CacheHitRate = float64(st.CacheHits) / float64(lookups)
	}
	return rep, nil
}

// WriteServeBench runs the load and writes the JSON report to path.
func WriteServeBench(path string, scale float64) (*ServeBenchReport, error) {
	rep, err := RunServeBench(scale)
	if err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return rep, os.WriteFile(path, append(data, '\n'), 0o644)
}
