package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"betty/internal/core"
	"betty/internal/dataset"
	"betty/internal/embcache"
	"betty/internal/obs"
	"betty/internal/serve"
	"betty/internal/tensor"
)

// The serve benchmark measures the online inference path: an open-loop
// seeded load run against a live server, reporting throughput, latency
// percentiles, and how well the dynamic batcher and feature cache
// amortized the work. Its output, BENCH_serve.json, is the serving
// counterpart of BENCH_step.json.

// ServeBenchReport is the schema of BENCH_serve.json.
type ServeBenchReport struct {
	// Dataset and Model describe the served workload.
	Dataset string `json:"dataset"`
	Model   string `json:"model"`
	// Requests and NodesPerRequest describe the load trace.
	Requests        int `json:"requests"`
	NodesPerRequest int `json:"nodes_per_request"`
	// Load is the measured throughput/latency report.
	Load *serve.LoadReport `json:"load"`
	// Batches is how many batches served the trace; AvgRequestsPerBatch
	// is the coalescing factor the dynamic batcher achieved.
	Batches             int64   `json:"batches"`
	AvgRequestsPerBatch float64 `json:"avg_requests_per_batch"`
	// CacheHitRate is hits / (hits + misses) of the feature cache.
	CacheHitRate float64 `json:"cache_hit_rate"`
	// MaxEstPeakBytes is the largest planned micro-batch forward peak;
	// CapacityBytes is the budget it stayed under.
	MaxEstPeakBytes int64 `json:"max_est_peak_bytes"`
	CapacityBytes   int64 `json:"capacity_bytes"`
	// HostCPUs records the measuring host so the serve gate can demote
	// cross-host comparisons to advisory, like the step gate does.
	HostCPUs int `json:"host_cpus"`
	// Quant holds the exact/f16/int8 serving modes side by side
	// (DESIGN.md §13): per-mode load reports, resident weight bytes, and
	// the worst score deviation from the exact path on a fixed probe set.
	Quant []ServeQuantResult `json:"quant"`
	// Emb holds the historical-embedding cache modes (off/exact/reuse,
	// DESIGN.md §16) side by side over a skewed hot-node trace: per-mode
	// latency, cache hit rate, layer-1 compute per request, and the worst
	// score deviation from the off path on the probe set.
	Emb []ServeEmbResult `json:"emb"`
}

// ServeEmbResult is one BETTY_EMBCACHE mode's measured serving cell.
type ServeEmbResult struct {
	// Mode is off, exact, or reuse.
	Mode string `json:"mode"`
	// Load is the mode's throughput/latency report over the same skewed
	// trace.
	Load *serve.LoadReport `json:"load"`
	// HitRate is embedding-cache hits / (hits + misses); 0 for off and
	// exact (exact never skips compute).
	HitRate float64 `json:"hit_rate"`
	// ComputedRowsPerRequest is the layer-1 destination rows actually
	// computed per request — the compute the reuse mode saves.
	ComputedRowsPerRequest float64 `json:"computed_rows_per_request"`
	// MaxAbsDiff is the largest |score - off-mode score| over the probe
	// requests. Exact is 0 by construction; reuse is 0 while the weight
	// version is static (serving never steps the optimizer).
	MaxAbsDiff float64 `json:"max_abs_diff"`
}

// ServeQuantResult is one BETTY_QUANT mode's measured serving cell.
type ServeQuantResult struct {
	// Mode is off, f16, or int8.
	Mode string `json:"mode"`
	// Load is the mode's throughput/latency report over the same trace.
	Load *serve.LoadReport `json:"load"`
	// WeightBytes is the resident footprint of the quantized weight
	// matrices (their f32 footprint for mode off).
	WeightBytes int64 `json:"weight_bytes"`
	// MaxAbsDiff is the largest |score - exact score| over the probe
	// requests (0 for mode off by construction).
	MaxAbsDiff float64 `json:"max_abs_diff"`
}

// RunServeBench builds servers over the scaled ogbn-arxiv workload — one
// per BETTY_QUANT mode — and drives each with the same seeded open-loop
// trace. The exact (off) run fills the report's headline fields; the
// per-mode cells sit side by side under Quant.
func RunServeBench(scale float64) (*ServeBenchReport, error) {
	ds, err := dataset.LoadScaled("ogbn-arxiv", scale)
	if err != nil {
		return nil, err
	}
	lc := serve.LoadConfig{
		Requests:        200,
		NodesPerRequest: 8,
		MeanGap:         200 * time.Microsecond,
		Seed:            7,
	}
	// probe is a fixed request scored after each load run; the quantized
	// modes report their worst score deviation from the exact path on it.
	probe := make([]int32, 32)
	for i := range probe {
		probe[i] = int32(i * 7 % int(ds.Graph.NumNodes()))
	}

	var rep *ServeBenchReport
	var exactProbe [][]float32
	for _, mode := range []tensor.QuantMode{tensor.QuantOff, tensor.QuantF16, tensor.QuantInt8} {
		// Fresh model per mode: the quantized server steals and re-encodes
		// its model's weight storage.
		setup, err := core.BuildSAGE(ds, core.Options{Seed: 1, Hidden: 64, Fanouts: []int{5, 10}})
		if err != nil {
			return nil, err
		}
		reg := obs.New(nil)
		cfg := serve.Defaults()
		cfg.Fanouts = []int{5, 10}
		cfg.Seed = 1
		cfg.MaxWait = time.Millisecond
		cfg.Obs = reg
		cfg.Quant = mode
		s, err := serve.New(ds, setup.Model, cfg)
		if err != nil {
			return nil, err
		}
		s.Start()
		load, err := serve.RunLoad(s, lc)
		if err != nil {
			s.Close()
			return nil, err
		}
		if load.Errors > 0 {
			s.Close()
			return nil, fmt.Errorf("bench: %v: %d of %d serve requests failed", mode, load.Errors, load.Requests)
		}
		scores, err := s.Predict(probe, 0)
		if err != nil {
			s.Close()
			return nil, err
		}
		st := s.StatsSnapshot()
		s.Close()

		qr := ServeQuantResult{Mode: mode.String(), Load: load}
		if mode == tensor.QuantOff {
			exactProbe = scores
			qr.WeightBytes = weightMatrixBytes(setup.Model)
			rep = &ServeBenchReport{
				Dataset:         ds.Name,
				Model:           "GraphSAGE-2L-Mean-h64",
				Requests:        lc.Requests,
				NodesPerRequest: lc.NodesPerRequest,
				Load:            load,
				Batches:         st.Batches,
				MaxEstPeakBytes: st.MaxEstPeakBytes,
				CapacityBytes:   cfg.CapacityBytes,
			}
			if st.Batches > 0 {
				rep.AvgRequestsPerBatch = float64(st.BatchedRequests) / float64(st.Batches)
			}
			if lookups := st.CacheHits + st.CacheMisses; lookups > 0 {
				rep.CacheHitRate = float64(st.CacheHits) / float64(lookups)
			}
		} else {
			qr.WeightBytes, _ = reg.GaugeValue("serve.quant_weight_bytes")
			for i := range scores {
				for j := range scores[i] {
					d := math.Abs(float64(scores[i][j]) - float64(exactProbe[i][j]))
					if d > qr.MaxAbsDiff {
						qr.MaxAbsDiff = d
					}
				}
			}
		}
		rep.Quant = append(rep.Quant, qr)
	}
	rep.HostCPUs = runtime.NumCPU()

	// The embedding-cache sweep runs the off/exact/reuse modes over a
	// skewed trace (a small hot set dominates, the shape real serving
	// traffic has): quant stays off so any score difference is the
	// cache's alone.
	elc := lc
	elc.Skew = 3
	var offProbe [][]float32
	for _, mode := range []embcache.Mode{embcache.ModeOff, embcache.ModeExact, embcache.ModeReuse} {
		setup, err := core.BuildSAGE(ds, core.Options{Seed: 1, Hidden: 64, Fanouts: []int{5, 10}})
		if err != nil {
			return nil, err
		}
		reg := obs.New(nil)
		cfg := serve.Defaults()
		cfg.Fanouts = []int{5, 10}
		cfg.Seed = 1
		cfg.MaxWait = time.Millisecond
		cfg.Obs = reg
		cfg.EmbMode = mode
		s, err := serve.New(ds, setup.Model, cfg)
		if err != nil {
			return nil, err
		}
		s.Start()
		load, err := serve.RunLoad(s, elc)
		if err != nil {
			s.Close()
			return nil, err
		}
		if load.Errors > 0 {
			s.Close()
			return nil, fmt.Errorf("bench: embcache %v: %d of %d serve requests failed", mode, load.Errors, load.Requests)
		}
		scores, err := s.Predict(probe, 0)
		if err != nil {
			s.Close()
			return nil, err
		}
		st := s.StatsSnapshot()
		// Layer-1 compute: what a cache-less forward performs versus what
		// the cached forward actually computed.
		computed := reg.CounterValue("serve.layer1_dst_rows")
		if mode != embcache.ModeOff {
			computed = reg.CounterValue("embcache.computed_rows")
		}
		s.Close()

		er := ServeEmbResult{Mode: mode.String(), Load: load}
		if lookups := st.EmbHits + st.EmbMisses; lookups > 0 {
			er.HitRate = float64(st.EmbHits) / float64(lookups)
		}
		er.ComputedRowsPerRequest = float64(computed) / float64(st.Requests)
		if mode == embcache.ModeOff {
			offProbe = scores
		} else {
			for i := range scores {
				for j := range scores[i] {
					d := math.Abs(float64(scores[i][j]) - float64(offProbe[i][j]))
					if d > er.MaxAbsDiff {
						er.MaxAbsDiff = d
					}
				}
			}
		}
		rep.Emb = append(rep.Emb, er)
	}
	return rep, nil
}

// ReadServeBench loads a previously written BENCH_serve.json.
func ReadServeBench(path string) (*ServeBenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	var rep ServeBenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	return &rep, nil
}

// weightMatrixBytes sums the f32 footprint of the model's weight matrices
// (the parameters quantized serving compresses; biases excluded).
func weightMatrixBytes(model any) int64 {
	pm, ok := model.(interface{ Params() []*tensor.Var })
	if !ok {
		return 0
	}
	var total int64
	for _, p := range pm.Params() {
		if p.Value.Rows() > 1 {
			total += int64(p.Value.Len()) * 4
		}
	}
	return total
}

// WriteServeBench runs the load and writes the JSON report to path.
func WriteServeBench(path string, scale float64) (*ServeBenchReport, error) {
	rep, err := RunServeBench(scale)
	if err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return rep, os.WriteFile(path, append(data, '\n'), 0o644)
}
