package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"time"

	"betty/internal/core"
	"betty/internal/dataset"
	"betty/internal/obs"
	"betty/internal/serve"
	"betty/internal/tensor"
)

// The serve benchmark measures the online inference path: an open-loop
// seeded load run against a live server, reporting throughput, latency
// percentiles, and how well the dynamic batcher and feature cache
// amortized the work. Its output, BENCH_serve.json, is the serving
// counterpart of BENCH_step.json.

// ServeBenchReport is the schema of BENCH_serve.json.
type ServeBenchReport struct {
	// Dataset and Model describe the served workload.
	Dataset string `json:"dataset"`
	Model   string `json:"model"`
	// Requests and NodesPerRequest describe the load trace.
	Requests        int `json:"requests"`
	NodesPerRequest int `json:"nodes_per_request"`
	// Load is the measured throughput/latency report.
	Load *serve.LoadReport `json:"load"`
	// Batches is how many batches served the trace; AvgRequestsPerBatch
	// is the coalescing factor the dynamic batcher achieved.
	Batches             int64   `json:"batches"`
	AvgRequestsPerBatch float64 `json:"avg_requests_per_batch"`
	// CacheHitRate is hits / (hits + misses) of the feature cache.
	CacheHitRate float64 `json:"cache_hit_rate"`
	// MaxEstPeakBytes is the largest planned micro-batch forward peak;
	// CapacityBytes is the budget it stayed under.
	MaxEstPeakBytes int64 `json:"max_est_peak_bytes"`
	CapacityBytes   int64 `json:"capacity_bytes"`
	// Quant holds the exact/f16/int8 serving modes side by side
	// (DESIGN.md §13): per-mode load reports, resident weight bytes, and
	// the worst score deviation from the exact path on a fixed probe set.
	Quant []ServeQuantResult `json:"quant"`
}

// ServeQuantResult is one BETTY_QUANT mode's measured serving cell.
type ServeQuantResult struct {
	// Mode is off, f16, or int8.
	Mode string `json:"mode"`
	// Load is the mode's throughput/latency report over the same trace.
	Load *serve.LoadReport `json:"load"`
	// WeightBytes is the resident footprint of the quantized weight
	// matrices (their f32 footprint for mode off).
	WeightBytes int64 `json:"weight_bytes"`
	// MaxAbsDiff is the largest |score - exact score| over the probe
	// requests (0 for mode off by construction).
	MaxAbsDiff float64 `json:"max_abs_diff"`
}

// RunServeBench builds servers over the scaled ogbn-arxiv workload — one
// per BETTY_QUANT mode — and drives each with the same seeded open-loop
// trace. The exact (off) run fills the report's headline fields; the
// per-mode cells sit side by side under Quant.
func RunServeBench(scale float64) (*ServeBenchReport, error) {
	ds, err := dataset.LoadScaled("ogbn-arxiv", scale)
	if err != nil {
		return nil, err
	}
	lc := serve.LoadConfig{
		Requests:        200,
		NodesPerRequest: 8,
		MeanGap:         200 * time.Microsecond,
		Seed:            7,
	}
	// probe is a fixed request scored after each load run; the quantized
	// modes report their worst score deviation from the exact path on it.
	probe := make([]int32, 32)
	for i := range probe {
		probe[i] = int32(i * 7 % int(ds.Graph.NumNodes()))
	}

	var rep *ServeBenchReport
	var exactProbe [][]float32
	for _, mode := range []tensor.QuantMode{tensor.QuantOff, tensor.QuantF16, tensor.QuantInt8} {
		// Fresh model per mode: the quantized server steals and re-encodes
		// its model's weight storage.
		setup, err := core.BuildSAGE(ds, core.Options{Seed: 1, Hidden: 64, Fanouts: []int{5, 10}})
		if err != nil {
			return nil, err
		}
		reg := obs.New(nil)
		cfg := serve.Defaults()
		cfg.Fanouts = []int{5, 10}
		cfg.Seed = 1
		cfg.MaxWait = time.Millisecond
		cfg.Obs = reg
		cfg.Quant = mode
		s, err := serve.New(ds, setup.Model, cfg)
		if err != nil {
			return nil, err
		}
		s.Start()
		load, err := serve.RunLoad(s, lc)
		if err != nil {
			s.Close()
			return nil, err
		}
		if load.Errors > 0 {
			s.Close()
			return nil, fmt.Errorf("bench: %v: %d of %d serve requests failed", mode, load.Errors, load.Requests)
		}
		scores, err := s.Predict(probe, 0)
		if err != nil {
			s.Close()
			return nil, err
		}
		st := s.StatsSnapshot()
		s.Close()

		qr := ServeQuantResult{Mode: mode.String(), Load: load}
		if mode == tensor.QuantOff {
			exactProbe = scores
			qr.WeightBytes = weightMatrixBytes(setup.Model)
			rep = &ServeBenchReport{
				Dataset:         ds.Name,
				Model:           "GraphSAGE-2L-Mean-h64",
				Requests:        lc.Requests,
				NodesPerRequest: lc.NodesPerRequest,
				Load:            load,
				Batches:         st.Batches,
				MaxEstPeakBytes: st.MaxEstPeakBytes,
				CapacityBytes:   cfg.CapacityBytes,
			}
			if st.Batches > 0 {
				rep.AvgRequestsPerBatch = float64(st.BatchedRequests) / float64(st.Batches)
			}
			if lookups := st.CacheHits + st.CacheMisses; lookups > 0 {
				rep.CacheHitRate = float64(st.CacheHits) / float64(lookups)
			}
		} else {
			qr.WeightBytes, _ = reg.GaugeValue("serve.quant_weight_bytes")
			for i := range scores {
				for j := range scores[i] {
					d := math.Abs(float64(scores[i][j]) - float64(exactProbe[i][j]))
					if d > qr.MaxAbsDiff {
						qr.MaxAbsDiff = d
					}
				}
			}
		}
		rep.Quant = append(rep.Quant, qr)
	}
	return rep, nil
}

// weightMatrixBytes sums the f32 footprint of the model's weight matrices
// (the parameters quantized serving compresses; biases excluded).
func weightMatrixBytes(model any) int64 {
	pm, ok := model.(interface{ Params() []*tensor.Var })
	if !ok {
		return 0
	}
	var total int64
	for _, p := range pm.Params() {
		if p.Value.Rows() > 1 {
			total += int64(p.Value.Len()) * 4
		}
	}
	return total
}

// WriteServeBench runs the load and writes the JSON report to path.
func WriteServeBench(path string, scale float64) (*ServeBenchReport, error) {
	rep, err := RunServeBench(scale)
	if err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return rep, os.WriteFile(path, append(data, '\n'), 0o644)
}
