package bench

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := &Table{
		ID:      "t",
		Title:   "demo",
		Columns: []string{"a", "long-column"},
	}
	tb.AddRow("1", "x")
	tb.AddRow("22", "y")
	var sb strings.Builder
	tb.Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "== t: demo ==") {
		t.Fatalf("missing header: %q", out)
	}
	if !strings.Contains(out, "long-column") {
		t.Fatal("missing column")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// header + title + separator + 2 rows
	if len(lines) != 5 {
		t.Fatalf("unexpected line count %d: %q", len(lines), out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := &Table{ID: "t", Columns: []string{"a", "b"}}
	tb.AddRow("1", "2")
	var sb strings.Builder
	tb.CSV(&sb)
	if sb.String() != "a,b\n1,2\n" {
		t.Fatalf("csv = %q", sb.String())
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig2", "fig3", "fig4", "fig9", "fig10", "fig11", "fig12", "fig13",
		"fig14", "fig15", "fig16", "tab2", "tab5", "tab6", "tab7",
		"abl-reg", "abl-fm", "abl-match", "abl-rb", "abl-planner",
	}
	for _, id := range want {
		e, err := Get(id)
		if err != nil {
			t.Fatalf("experiment %s missing: %v", id, err)
		}
		if e.Paper == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Fatalf("registry has %d experiments, want %d: %v", len(IDs()), len(want), IDs())
	}
	if _, err := Get("fig99"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestOptionsHelpers(t *testing.T) {
	o := Options{}
	if o.scale(0.5) != 0.5 {
		t.Fatal("default scale should be identity")
	}
	o.Scale = 4
	if o.scale(0.5) != 1 {
		t.Fatal("scale must clamp at 1")
	}
	if o.epochs(7) != 7 {
		t.Fatal("default epochs")
	}
	o.Epochs = 3
	if o.epochs(7) != 3 {
		t.Fatal("override epochs")
	}
}

// Smoke-run the cheap (estimation-only) experiments end to end at a tiny
// scale; the training experiments are exercised by the repository-level
// benchmarks and by TestTrainingExperimentsSmoke below.
func TestEstimationExperimentsSmoke(t *testing.T) {
	for _, id := range []string{"fig2", "fig3", "fig9", "fig11", "fig16", "tab2", "abl-reg", "abl-fm", "abl-match", "abl-rb", "abl-planner"} {
		e, err := Get(id)
		if err != nil {
			t.Fatal(err)
		}
		tables, err := e.Run(Options{Scale: 0.08})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tables) == 0 {
			t.Fatalf("%s produced no tables", id)
		}
		for _, tb := range tables {
			if len(tb.Rows) == 0 {
				t.Fatalf("%s produced an empty table %q", id, tb.Title)
			}
			for _, row := range tb.Rows {
				if len(row) != len(tb.Columns) {
					t.Fatalf("%s: row width %d != %d columns", id, len(row), len(tb.Columns))
				}
			}
		}
	}
}

func TestTrainingExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("training smoke runs skipped in -short mode")
	}
	for _, id := range []string{"fig12", "tab7", "fig4", "fig13", "tab6"} {
		e, err := Get(id)
		if err != nil {
			t.Fatal(err)
		}
		tables, err := e.Run(Options{Scale: 0.06, Epochs: 2})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tables) == 0 || len(tables[0].Rows) == 0 {
			t.Fatalf("%s produced no output", id)
		}
	}
}

// fig10 exercises the planner search; run it at a tiny scale to keep the
// K search short but still hit the OOM-then-partition path.
func TestFig10Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("planner smoke skipped in -short mode")
	}
	e, err := Get("fig10")
	if err != nil {
		t.Fatal(err)
	}
	tables, err := e.Run(Options{Scale: 0.08})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables[0].Rows) == 0 {
		t.Fatal("no rows")
	}
}
