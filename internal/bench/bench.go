// Package bench is the experiment harness: every table and figure of the
// paper's evaluation (§3 and §6) has a regenerator here that produces the
// same rows or series the paper reports, against the simulated device and
// the synthetic datasets. The cmd/bettybench CLI and the repository's
// testing.B benchmarks both drive this package.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"betty/internal/dataset"
	"betty/internal/device"
)

// Table is one experiment output: a titled grid of cells.
type Table struct {
	// ID names the experiment ("fig12", "tab6", ...).
	ID string
	// Title describes the table for humans.
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row of formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes an aligned text rendering of the table.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

// CSV writes the table as comma-separated values.
func (t *Table) CSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.Columns, ","))
	for _, row := range t.Rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Options tunes an experiment run.
type Options struct {
	// Scale multiplies each experiment's built-in dataset scale; 1 runs
	// the defaults, smaller values make quick smoke runs.
	Scale float64
	// Epochs overrides the experiment's training epoch count when > 0.
	Epochs int
	// Log receives progress lines (nil discards them).
	Log io.Writer
}

func (o Options) scale(base float64) float64 {
	s := o.Scale
	if s <= 0 {
		s = 1
	}
	v := base * s
	if v > 1 {
		v = 1
	}
	return v
}

func (o Options) epochs(def int) int {
	if o.Epochs > 0 {
		return o.Epochs
	}
	return def
}

func (o Options) logf(format string, args ...any) {
	if o.Log != nil {
		fmt.Fprintf(o.Log, format+"\n", args...)
	}
}

// Experiment regenerates one paper table or figure.
type Experiment struct {
	// ID is the registry key ("fig2" ... "tab7", "abl-*").
	ID string
	// Paper describes what the experiment reproduces.
	Paper string
	// Run executes the experiment.
	Run func(Options) ([]*Table, error)
}

var registry = map[string]*Experiment{}

func register(e *Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("bench: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// Get returns a registered experiment.
func Get(id string) (*Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("bench: unknown experiment %q (have %s)", id, strings.Join(IDs(), ", "))
	}
	return e, nil
}

// IDs lists registered experiment ids sorted.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// SimCapacity is the simulated accelerator capacity used by the OOM-wall
// experiments. The datasets here are scaled-down versions of the paper's,
// so the capacity is scaled from the RTX 6000's 24 GB to keep the same
// configurations on each side of the wall (see EXPERIMENTS.md).
const SimCapacity = 1 * device.GiB

// loadDataset generates a registered dataset at the experiment's scale,
// memoized per (name, scale) because generation is deterministic.
func loadDataset(name string, scale float64) (*dataset.Dataset, error) {
	key := fmt.Sprintf("%s@%.4f", name, scale)
	if d, ok := dsCache[key]; ok {
		return d, nil
	}
	var d *dataset.Dataset
	var err error
	if scale >= 1 {
		d, err = dataset.Load(name)
	} else {
		d, err = dataset.LoadScaled(name, scale)
	}
	if err != nil {
		return nil, err
	}
	dsCache[key] = d
	return d, nil
}

var dsCache = map[string]*dataset.Dataset{}

// fmtMiB renders bytes as MiB with two decimals.
func fmtMiB(b int64) string { return fmt.Sprintf("%.2f", float64(b)/(1<<20)) }

// fmtGiB renders bytes as GiB with three decimals.
func fmtGiB(b int64) string { return fmt.Sprintf("%.3f", float64(b)/(1<<30)) }

// fmtF renders a float with the given precision.
func fmtF(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }

// fmtI renders an int.
func fmtI(v int) string { return fmt.Sprintf("%d", v) }
