// Package checkpoint serializes model parameters so trained models can be
// saved and restored across processes. The format is a small
// stdlib-gob-encoded envelope: a version, free-form metadata (model type,
// dataset, epoch, ...), and the parameter tensors in the model's canonical
// Params() order.
//
// Optimizer state (Adam moments) is deliberately not saved: a restored
// model resumes with a fresh optimizer, which matches how GNN checkpoints
// are typically used (evaluation, fine-tuning).
package checkpoint

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"betty/internal/nn"
)

// formatVersion guards against decoding incompatible files.
const formatVersion = 1

// paramBlob is one serialized parameter tensor.
type paramBlob struct {
	Rows, Cols int
	Data       []float32
}

// envelope is the on-disk structure.
type envelope struct {
	Version int
	Meta    map[string]string
	Params  []paramBlob
}

// Save writes m's parameters and the metadata to w.
func Save(w io.Writer, m nn.Module, meta map[string]string) error {
	env := envelope{Version: formatVersion, Meta: meta}
	for _, p := range m.Params() {
		env.Params = append(env.Params, paramBlob{
			Rows: p.Value.Rows(),
			Cols: p.Value.Cols(),
			Data: p.Value.Data,
		})
	}
	if err := gob.NewEncoder(w).Encode(&env); err != nil {
		return fmt.Errorf("checkpoint: encode: %w", err)
	}
	return nil
}

// Load restores parameters from r into m (which must have the same
// architecture) and returns the stored metadata.
func Load(r io.Reader, m nn.Module) (map[string]string, error) {
	var env envelope
	if err := gob.NewDecoder(r).Decode(&env); err != nil {
		return nil, fmt.Errorf("checkpoint: decode: %w", err)
	}
	if env.Version != formatVersion {
		return nil, fmt.Errorf("checkpoint: unsupported format version %d", env.Version)
	}
	params := m.Params()
	if len(params) != len(env.Params) {
		return nil, fmt.Errorf("checkpoint: model has %d parameters, file has %d", len(params), len(env.Params))
	}
	for i, p := range params {
		blob := env.Params[i]
		if p.Value.Rows() != blob.Rows || p.Value.Cols() != blob.Cols {
			return nil, fmt.Errorf("checkpoint: parameter %d shape %dx%d, file has %dx%d",
				i, p.Value.Rows(), p.Value.Cols(), blob.Rows, blob.Cols)
		}
		if len(blob.Data) != blob.Rows*blob.Cols {
			return nil, fmt.Errorf("checkpoint: parameter %d data length %d for %dx%d",
				i, len(blob.Data), blob.Rows, blob.Cols)
		}
	}
	// validate everything before mutating the model
	for i, p := range params {
		copy(p.Value.Data, env.Params[i].Data)
	}
	return env.Meta, nil
}

// SaveFile writes a checkpoint to path (created or truncated).
func SaveFile(path string, m nn.Module, meta map[string]string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close()
	if err := Save(f, m, meta); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile restores a checkpoint from path into m.
func LoadFile(path string, m nn.Module) (map[string]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close()
	return Load(f, m)
}

// Invalidator is anything holding state derived from the model weights
// that a checkpoint load makes stale — the historical-embedding cache
// (embcache.Cache, serve.Server) being the motivating case.
type Invalidator interface {
	Invalidate()
}

// LoadFileAndInvalidate restores a checkpoint and, only after the
// parameters have actually been replaced, invalidates the derived state.
// A failed load leaves both the model and inv untouched, so callers never
// pay a cache flush for a checkpoint that was rejected.
func LoadFileAndInvalidate(path string, m nn.Module, inv Invalidator) (map[string]string, error) {
	meta, err := LoadFile(path, m)
	if err != nil {
		return nil, err
	}
	if inv != nil {
		inv.Invalidate()
	}
	return meta, nil
}
