package checkpoint

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"

	"betty/internal/graph"
	"betty/internal/nn"
	"betty/internal/rng"
	"betty/internal/tensor"
)

func testModel(t *testing.T, seed uint64) *nn.GraphSAGE {
	t.Helper()
	m, err := nn.NewGraphSAGE(nn.Config{
		InDim: 6, Hidden: 8, OutDim: 3, Layers: 2, Aggregator: nn.Mean,
	}, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRoundTrip(t *testing.T) {
	src := testModel(t, 1)
	var buf bytes.Buffer
	meta := map[string]string{"dataset": "cora", "epoch": "12"}
	if err := Save(&buf, src, meta); err != nil {
		t.Fatal(err)
	}
	dst := testModel(t, 99) // different init
	got, err := Load(&buf, dst)
	if err != nil {
		t.Fatal(err)
	}
	if got["dataset"] != "cora" || got["epoch"] != "12" {
		t.Fatalf("metadata lost: %v", got)
	}
	ps, pd := src.Params(), dst.Params()
	for i := range ps {
		for j := range ps[i].Value.Data {
			if math.Float32bits(ps[i].Value.Data[j]) != math.Float32bits(pd[i].Value.Data[j]) {
				t.Fatalf("param %d elem %d not restored", i, j)
			}
		}
	}
}

func TestRoundTripPreservesForward(t *testing.T) {
	src := testModel(t, 2)
	var buf bytes.Buffer
	if err := Save(&buf, src, nil); err != nil {
		t.Fatal(err)
	}
	dst := testModel(t, 77)
	if _, err := Load(&buf, dst); err != nil {
		t.Fatal(err)
	}
	b := &graph.Block{
		NumSrc:   3,
		NumDst:   2,
		Ptr:      []int64{0, 1, 2},
		SrcLocal: []int32{2, 0},
		EID:      []int32{-1, -1},
		SrcNID:   []int32{0, 1, 2},
		DstNID:   []int32{0, 1},
	}
	inner := &graph.Block{
		NumSrc: 3,
		NumDst: 3,
		Ptr:    []int64{0, 0, 0, 0},
		SrcNID: []int32{0, 1, 2},
		DstNID: []int32{0, 1, 2},
	}
	x := tensor.New(3, 6)
	x.Randn(rng.New(3), 1)
	fwd := func(m *nn.GraphSAGE) *tensor.Tensor {
		tp := tensor.NewTape()
		return m.Forward(tp, []*graph.Block{inner, b}, tensor.Leaf(x)).Value
	}
	a, c := fwd(src), fwd(dst)
	for i := range a.Data {
		if math.Float32bits(a.Data[i]) != math.Float32bits(c.Data[i]) {
			t.Fatal("restored model computes different outputs")
		}
	}
}

func TestShapeMismatchRejectedWithoutMutation(t *testing.T) {
	small := testModel(t, 4)
	var buf bytes.Buffer
	if err := Save(&buf, small, nil); err != nil {
		t.Fatal(err)
	}
	big, err := nn.NewGraphSAGE(nn.Config{
		InDim: 6, Hidden: 16, OutDim: 3, Layers: 2, Aggregator: nn.Mean,
	}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	before := big.Params()[0].Value.Clone()
	if _, err := Load(&buf, big); err == nil {
		t.Fatal("shape mismatch accepted")
	}
	after := big.Params()[0].Value
	for i := range before.Data {
		if math.Float32bits(before.Data[i]) != math.Float32bits(after.Data[i]) {
			t.Fatal("failed load mutated the model")
		}
	}
}

func TestParamCountMismatchRejected(t *testing.T) {
	sage := testModel(t, 6)
	var buf bytes.Buffer
	if err := Save(&buf, sage, nil); err != nil {
		t.Fatal(err)
	}
	pool, err := nn.NewGraphSAGE(nn.Config{
		InDim: 6, Hidden: 8, OutDim: 3, Layers: 2, Aggregator: nn.Pool,
	}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf, pool); err == nil {
		t.Fatal("different architecture accepted")
	}
}

func TestGarbageRejected(t *testing.T) {
	m := testModel(t, 8)
	if _, err := Load(bytes.NewBufferString("not a checkpoint"), m); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.ckpt")
	src := testModel(t, 9)
	if err := SaveFile(path, src, map[string]string{"k": "v"}); err != nil {
		t.Fatal(err)
	}
	dst := testModel(t, 10)
	meta, err := LoadFile(path, dst)
	if err != nil {
		t.Fatal(err)
	}
	if meta["k"] != "v" {
		t.Fatal("file metadata lost")
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.ckpt"), dst); err == nil {
		t.Fatal("missing file accepted")
	}
}
