package reg

import (
	"fmt"
	"sort"

	"betty/internal/graph"
	"betty/internal/parallel"
	"betty/internal/partition"
)

// wedge is one weighted REG edge: an unordered destination pair (a < b)
// and its (partially) accumulated Gram weight.
type wedge struct {
	a, b int32
	w    float32
}

// srcShardGrain is the number of sources each emission shard owns and
// keyShardGrain the number of destination ids each merge shard owns. Both
// are fixed constants — never derived from the worker count — so the shard
// structure, and with it the floating-point accumulation tree, is identical
// no matter how many workers execute it (see package parallel).
const (
	srcShardGrain = 512
	keyShardGrain = 1024
)

// BuildREGFast constructs the same redundancy-embedded graph as BuildREG
// without materializing the sparse adjacency or its Gram product — the
// REG-construction optimization the paper lists as future work.
//
// It exploits that c_ij = Σ_k a_ki·a_kj only receives contributions from
// pairs of destinations fed by the same source: for every source it walks
// the source's (deduplicated, multiplicity-counted) destination list once
// and emits one weighted pair per destination combination. The per-source
// emission is sharded across workers (each shard with private mult/scratch
// buffers) and the sorted per-shard pair streams are merged in parallel by
// destination range, accumulating duplicate pairs in shard — that is,
// source — order. Non-output columns never enter the stream, so the
// restriction and self-loop removal of Algorithm 1 lines 5-7 are free.
//
// The result is bitwise-identical for every parallel.SetWorkers value.
func BuildREGFast(last *graph.Block) (*partition.WeightedGraph, error) {
	if err := last.Validate(); err != nil {
		return nil, fmt.Errorf("reg: invalid block: %w", err)
	}
	nDst := last.NumDst

	// Bucket the block's edges by source: srcPtr/srcDst is a CSR over the
	// homogeneous source space listing each source's destinations.
	nSrc := last.NumSrc
	counts := make([]int32, nSrc+1)
	for _, s := range last.SrcLocal {
		counts[s+1]++
	}
	for i := 0; i < nSrc; i++ {
		counts[i+1] += counts[i]
	}
	srcDst := make([]int32, len(last.SrcLocal))
	cursor := make([]int32, nSrc)
	copy(cursor, counts[:nSrc])
	for d := 0; d < nDst; d++ {
		for p := last.Ptr[d]; p < last.Ptr[d+1]; p++ {
			s := last.SrcLocal[p]
			srcDst[cursor[s]] = int32(d)
			cursor[s] = cursor[s] + 1
		}
	}

	// Emit weighted destination pairs, one shard per contiguous source
	// range, then merge the per-shard streams into a deduplicated edge list.
	shards := make([][]wedge, parallel.NumShards(nSrc, srcShardGrain))
	parallel.For(nSrc, srcShardGrain, func(lo, hi int) {
		shards[lo/srcShardGrain] = emitPairs(counts, srcDst, nDst, lo, hi)
	})
	u, v, w := mergeShards(shards, nDst)
	return partition.NewWeightedGraph(nDst, u, v, w, nil)
}

// emitPairs walks sources [lo, hi) and returns their weighted destination
// pairs, sorted by (a, b) with duplicates merged. Parallel edges give a
// source multiplicity m_ki toward destination i; the Gram contribution of
// source k to pair (i, j) is m_ki * m_kj, matching AᵀA exactly. The sort is
// stable, so duplicate pairs accumulate in source order.
func emitPairs(counts, srcDst []int32, nDst, lo, hi int) []wedge {
	var pairs []wedge
	scratch := make([]int32, 0, 64) // distinct destinations of one source
	mult := make([]float32, nDst)   // multiplicity accumulator
	for s := lo; s < hi; s++ {
		plo, phi := counts[s], counts[s+1]
		if phi-plo < 2 {
			continue
		}
		scratch = scratch[:0]
		for p := plo; p < phi; p++ {
			d := srcDst[p]
			//bettyvet:ok floateq mult holds increment-only occurrence counts, so zero marks first touch exactly
			if mult[d] == 0 {
				scratch = append(scratch, d)
			}
			mult[d]++
		}
		for i := 0; i < len(scratch); i++ {
			for j := i + 1; j < len(scratch); j++ {
				a, b := scratch[i], scratch[j]
				if a > b {
					a, b = b, a
				}
				pairs = append(pairs, wedge{a, b, mult[scratch[i]] * mult[scratch[j]]})
			}
		}
		for _, d := range scratch {
			mult[d] = 0
		}
	}
	sort.SliceStable(pairs, func(i, j int) bool {
		if pairs[i].a != pairs[j].a {
			return pairs[i].a < pairs[j].a
		}
		return pairs[i].b < pairs[j].b
	})
	out := pairs[:0]
	for _, p := range pairs {
		if n := len(out); n > 0 && out[n-1].a == p.a && out[n-1].b == p.b {
			out[n-1].w += p.w
		} else {
			out = append(out, p)
		}
	}
	return out
}

// mergeShards merges the sorted, locally-deduplicated shard streams into
// one deduplicated (u, v, w) edge list sorted by (a, b). The destination-id
// space is split into fixed ranges merged in parallel; within a range a
// k-way merge accumulates equal pairs across shards in shard order, which
// together with the stable in-shard sort means every edge weight is summed
// in ascending source order regardless of the worker count.
func mergeShards(shards [][]wedge, nDst int) (u, v []int32, w []float32) {
	nShards := parallel.NumShards(nDst, keyShardGrain)
	merged := make([][]wedge, nShards)
	// Each shard's candidate-stream list lives in a disjoint window of one
	// backing array allocated up front, so the hot closure itself allocates
	// nothing.
	partsBuf := make([][]wedge, nShards*len(shards))
	parallel.For(nDst, keyShardGrain, func(aLo, aHi int) {
		si := aLo / keyShardGrain
		parts := partsBuf[si*len(shards) : (si+1)*len(shards)]
		np := 0
		for _, sh := range shards {
			lo := sort.Search(len(sh), func(i int) bool { return sh[i].a >= int32(aLo) })
			hi := sort.Search(len(sh), func(i int) bool { return sh[i].a >= int32(aHi) })
			if lo < hi {
				parts[np] = sh[lo:hi]
				np++
			}
		}
		merged[si] = mergeParts(parts[:np])
	})
	total := 0
	for _, m := range merged {
		total += len(m)
	}
	u = make([]int32, 0, total)
	v = make([]int32, 0, total)
	w = make([]float32, 0, total)
	for _, m := range merged {
		for _, e := range m {
			u = append(u, e.a)
			v = append(v, e.b)
			w = append(w, e.w)
		}
	}
	return u, v, w
}

// mergeParts k-way merges sorted streams of unique pairs, summing the
// weights of pairs present in several streams in stream order.
func mergeParts(parts [][]wedge) []wedge {
	if len(parts) == 1 {
		return parts[0]
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]wedge, 0, total)
	idx := make([]int, len(parts))
	for {
		best := -1
		var bk wedge
		for pi, p := range parts {
			if idx[pi] >= len(p) {
				continue
			}
			c := p[idx[pi]]
			if best < 0 || c.a < bk.a || (c.a == bk.a && c.b < bk.b) {
				best, bk = pi, c
			}
		}
		if best < 0 {
			return out
		}
		var sum float32
		for pi, p := range parts {
			if idx[pi] < len(p) && p[idx[pi]].a == bk.a && p[idx[pi]].b == bk.b {
				sum += p[idx[pi]].w
				idx[pi]++
			}
		}
		out = append(out, wedge{bk.a, bk.b, sum})
	}
}
