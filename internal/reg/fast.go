package reg

import (
	"fmt"
	"sort"

	"betty/internal/graph"
	"betty/internal/partition"
)

// BuildREGFast constructs the same redundancy-embedded graph as BuildREG
// without materializing the sparse adjacency or its Gram product — the
// REG-construction optimization the paper lists as future work.
//
// It exploits that c_ij = Σ_k a_ki·a_kj only receives contributions from
// pairs of destinations fed by the same source: for every source it walks
// the source's (deduplicated, multiplicity-counted) destination list once
// and emits one weighted pair per destination combination, then sorts and
// merges the pair stream. Non-output columns never enter the stream, so the
// restriction and self-loop removal of Algorithm 1 lines 5-7 are free.
func BuildREGFast(last *graph.Block) (*partition.WeightedGraph, error) {
	if err := last.Validate(); err != nil {
		return nil, fmt.Errorf("reg: invalid block: %w", err)
	}
	nDst := last.NumDst

	// Bucket the block's edges by source: srcPtr/srcDst is a CSR over the
	// homogeneous source space listing each source's destinations.
	nSrc := last.NumSrc
	counts := make([]int32, nSrc+1)
	for _, s := range last.SrcLocal {
		counts[s+1]++
	}
	for i := 0; i < nSrc; i++ {
		counts[i+1] += counts[i]
	}
	srcDst := make([]int32, len(last.SrcLocal))
	cursor := make([]int32, nSrc)
	copy(cursor, counts[:nSrc])
	for d := 0; d < nDst; d++ {
		for p := last.Ptr[d]; p < last.Ptr[d+1]; p++ {
			s := last.SrcLocal[p]
			srcDst[cursor[s]] = int32(d)
			cursor[s] = cursor[s] + 1
		}
	}

	// Emit weighted destination pairs per source. Parallel edges give a
	// source multiplicity m_ki toward destination i; the Gram contribution
	// of source k to pair (i, j) is m_ki * m_kj, matching AᵀA exactly.
	type wpair struct {
		a, b int32
		w    float32
	}
	var pairs []wpair
	scratch := make([]int32, 0, 64) // distinct destinations of one source
	mult := make([]float32, nDst)   // multiplicity accumulator
	for s := 0; s < nSrc; s++ {
		lo, hi := counts[s], counts[s+1]
		if hi-lo < 2 {
			continue
		}
		scratch = scratch[:0]
		for p := lo; p < hi; p++ {
			d := srcDst[p]
			if mult[d] == 0 {
				scratch = append(scratch, d)
			}
			mult[d]++
		}
		for i := 0; i < len(scratch); i++ {
			for j := i + 1; j < len(scratch); j++ {
				a, b := scratch[i], scratch[j]
				if a > b {
					a, b = b, a
				}
				pairs = append(pairs, wpair{a, b, mult[scratch[i]] * mult[scratch[j]]})
			}
		}
		for _, d := range scratch {
			mult[d] = 0
		}
	}

	// Sort and merge the pair stream, then hand the edge list to the
	// partitioner's graph builder.
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].a != pairs[j].a {
			return pairs[i].a < pairs[j].a
		}
		return pairs[i].b < pairs[j].b
	})
	u := make([]int32, 0, len(pairs))
	v := make([]int32, 0, len(pairs))
	w := make([]float32, 0, len(pairs))
	for _, p := range pairs {
		if n := len(u); n > 0 && u[n-1] == p.a && v[n-1] == p.b {
			w[n-1] += p.w
		} else {
			u = append(u, p.a)
			v = append(v, p.b)
			w = append(w, p.w)
		}
	}
	return partition.NewWeightedGraph(nDst, u, v, w, nil)
}
