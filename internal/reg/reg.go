// Package reg implements Betty's redundancy-embedded graph (REG)
// construction and the batch-level partitioning algorithms compared in the
// paper (Algorithm 1 and §6.1): given the output (last) layer's bipartite
// block of a GNN batch, each BatchPartitioner splits the output nodes into
// K groups from which micro-batches are built.
//
// The REG is the Gram matrix C = AᵀA of the block's adjacency: entry
// c_ij counts the in-neighbors shared by output nodes i and j, so a K-way
// min-edge-cut partition of the REG minimizes the input-node redundancy
// created when the batch is split (§4.3.2).
package reg

import (
	"fmt"

	"betty/internal/graph"
	"betty/internal/obs"
	"betty/internal/partition"
	"betty/internal/rng"
	"betty/internal/sparse"
)

// BuildREG constructs the redundancy-embedded graph of a last-layer block,
// following Algorithm 1 lines 1-7: adjacency A over the block's homogeneous
// node space, C = AᵀA, restriction to output (destination) nodes, and
// self-loop removal. The result has one node per block destination; edge
// weights count shared in-neighbors.
func BuildREG(last *graph.Block) (*partition.WeightedGraph, error) {
	if err := last.Validate(); err != nil {
		return nil, fmt.Errorf("reg: invalid block: %w", err)
	}
	n := last.NumSrc // homogeneous node space: sources (destinations are a prefix)
	srcIdx, dstIdx := last.EdgePairs()
	// A[k][i] = 1 iff edge k -> i; rows are sources, cols are destinations
	// in the same local space.
	a, err := sparse.NewCOO(n, n, srcIdx, dstIdx, nil)
	if err != nil {
		return nil, fmt.Errorf("reg: adjacency: %w", err)
	}
	c := a.Gram() // c_ij = number of shared in-neighbors of i and j

	// Remove non-output nodes (keep destinations 0..NumDst-1), then self loops.
	keep := make([]int32, last.NumDst)
	for i := range keep {
		keep[i] = int32(i)
	}
	c, err = c.SelectSquare(keep)
	if err != nil {
		return nil, fmt.Errorf("reg: restrict to outputs: %w", err)
	}
	c = c.DropSelfLoops()

	// Convert to the partitioner's undirected weighted-graph format.
	// C is symmetric; NewWeightedGraph sums both triangle copies, so halve.
	u := make([]int32, 0, c.NNZ())
	v := make([]int32, 0, c.NNZ())
	w := make([]float32, 0, c.NNZ())
	for i := 0; i < c.NumRows; i++ {
		for p := c.RowPtr[i]; p < c.RowPtr[i+1]; p++ {
			j := c.ColIdx[p]
			if int32(i) < j { // take the upper triangle once
				u = append(u, int32(i))
				v = append(v, j)
				w = append(w, c.Val[p])
			}
		}
	}
	return partition.NewWeightedGraph(last.NumDst, u, v, w, nil)
}

// BatchPartitioner splits a batch's output nodes into K groups. The
// returned groups hold *local destination indices* of the last-layer block;
// every group is non-empty and the groups partition [0, NumDst).
type BatchPartitioner interface {
	// Name identifies the algorithm in experiment output.
	Name() string
	// PartitionBatch returns K disjoint, covering groups of local output
	// indices of the block.
	PartitionBatch(last *graph.Block, k int) ([][]int32, error)
}

// groupsFromParts converts a per-node part assignment into index groups and
// checks none is empty.
func groupsFromParts(parts []int32, k int) ([][]int32, error) {
	groups := make([][]int32, k)
	for i, p := range parts {
		groups[p] = append(groups[p], int32(i))
	}
	for p, g := range groups {
		if len(g) == 0 {
			return nil, fmt.Errorf("reg: partition produced empty group %d", p)
		}
	}
	return groups, nil
}

func validateBatchK(last *graph.Block, k int) error {
	if k <= 0 {
		return fmt.Errorf("reg: k must be positive, got %d", k)
	}
	if k > last.NumDst {
		return fmt.Errorf("reg: k=%d exceeds %d output nodes", k, last.NumDst)
	}
	return nil
}

// RangeBatch splits output nodes into contiguous local-index ranges.
type RangeBatch struct{}

// Name implements BatchPartitioner.
func (RangeBatch) Name() string { return "range" }

// PartitionBatch implements BatchPartitioner.
func (RangeBatch) PartitionBatch(last *graph.Block, k int) ([][]int32, error) {
	if err := validateBatchK(last, k); err != nil {
		return nil, err
	}
	n := last.NumDst
	groups := make([][]int32, k)
	for i := 0; i < n; i++ {
		p := i * k / n
		groups[p] = append(groups[p], int32(i))
	}
	return groups, nil
}

// RandomBatch splits output nodes into equal-size random groups.
type RandomBatch struct {
	// Seed makes the split reproducible.
	Seed uint64
}

// Name implements BatchPartitioner.
func (RandomBatch) Name() string { return "random" }

// PartitionBatch implements BatchPartitioner.
func (p RandomBatch) PartitionBatch(last *graph.Block, k int) ([][]int32, error) {
	if err := validateBatchK(last, k); err != nil {
		return nil, err
	}
	n := last.NumDst
	perm := rng.New(p.Seed).Perm(n)
	groups := make([][]int32, k)
	for pos, node := range perm {
		g := pos * k / n
		groups[g] = append(groups[g], node)
	}
	return groups, nil
}

// MetisBatch is the redundancy-unaware METIS baseline: it partitions the
// graph induced on output nodes by the *direct* edges of the block (an
// output that is also another output's sampled neighbor), with unit edge
// weights. Unlike Betty it does not see shared-neighbor redundancy.
type MetisBatch struct {
	// Seed drives the multilevel partitioner's randomized phases.
	Seed uint64
}

// Name implements BatchPartitioner.
func (MetisBatch) Name() string { return "metis" }

// PartitionBatch implements BatchPartitioner.
func (p MetisBatch) PartitionBatch(last *graph.Block, k int) ([][]int32, error) {
	if err := validateBatchK(last, k); err != nil {
		return nil, err
	}
	var uu, vv []int32
	var ww []float32
	for d := 0; d < last.NumDst; d++ {
		for q := last.Ptr[d]; q < last.Ptr[d+1]; q++ {
			s := last.SrcLocal[q]
			if int(s) < last.NumDst && int(s) != d { // edge between two outputs
				uu = append(uu, s)
				vv = append(vv, int32(d))
				ww = append(ww, 1)
			}
		}
	}
	g, err := partition.NewWeightedGraph(last.NumDst, uu, vv, ww, nil)
	if err != nil {
		return nil, err
	}
	parts, err := (&partition.Metis{Seed: p.Seed}).Partition(g, k)
	if err != nil {
		return nil, err
	}
	return groupsFromParts(parts, k)
}

// BettyBatch is the paper's REG partitioning (Algorithm 1): build the
// redundancy-embedded graph and min-cut partition it with the multilevel
// partitioner, so output nodes sharing many neighbors stay together.
//
// By default it uses the pair-streaming REG construction (BuildREGFast,
// property-tested equal to the SpGEMM reference); set Reference to force
// the Algorithm-1-literal sparse-product path.
type BettyBatch struct {
	// Seed drives the multilevel partitioner's randomized phases.
	Seed uint64
	// Imbalance overrides the partitioner's balance tolerance (0 = default).
	Imbalance float64
	// Reference selects the literal AᵀA SpGEMM construction.
	Reference bool
	// Obs, when non-nil, receives one PhaseRegBuild span per REG
	// construction. Timing comes from the registry's injected Clock —
	// this kernel package never reads a clock itself (bettyvet detrand).
	Obs *obs.Registry
}

// Name implements BatchPartitioner.
func (BettyBatch) Name() string { return "betty" }

// PartitionBatch implements BatchPartitioner.
func (p BettyBatch) PartitionBatch(last *graph.Block, k int) ([][]int32, error) {
	if err := validateBatchK(last, k); err != nil {
		return nil, err
	}
	build := BuildREGFast
	if p.Reference {
		build = BuildREG
	}
	sp := p.Obs.StartSpan(obs.PhaseRegBuild).
		SetInt("outputs", int64(last.NumDst)).
		SetInt("edges", int64(last.NumEdges()))
	g, err := build(last)
	sp.End()
	if err != nil {
		return nil, err
	}
	parts, err := (&partition.Metis{Seed: p.Seed, Imbalance: p.Imbalance}).Partition(g, k)
	if err != nil {
		return nil, err
	}
	return groupsFromParts(parts, k)
}
