package reg

import (
	"math"
	"testing"
	"testing/quick"

	"betty/internal/graph"
	"betty/internal/parallel"
	"betty/internal/rng"
)

// regEqual compares two weighted graphs edge-for-edge (order-insensitive).
func regEqual(t *testing.T, a, b interface {
	Neighbors(v int32) ([]int32, []float32)
}, n int) bool {
	t.Helper()
	for v := int32(0); int(v) < n; v++ {
		adjA, wA := a.Neighbors(v)
		adjB, wB := b.Neighbors(v)
		if len(adjA) != len(adjB) {
			return false
		}
		mA := map[int32]float32{}
		for i, u := range adjA {
			mA[u] = wA[i]
		}
		for i, u := range adjB {
			if math.Float32bits(mA[u]) != math.Float32bits(wB[i]) {
				return false
			}
		}
	}
	return true
}

func TestFastMatchesReferenceOnExample(t *testing.T) {
	b := makeBlock(t, []int32{1, 8, 3}, [][]int32{
		{3, 5, 6, 7},
		{5, 6, 9},
		{5, 9, 7},
	})
	ref, err := BuildREG(b)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := BuildREGFast(b)
	if err != nil {
		t.Fatal(err)
	}
	if ref.N != fast.N {
		t.Fatalf("node counts differ: %d vs %d", ref.N, fast.N)
	}
	if !regEqual(t, ref, fast, ref.N) {
		t.Fatal("fast REG differs from the SpGEMM reference")
	}
}

// Property: fast construction equals the SpGEMM reference on random blocks,
// including blocks with parallel edges and outputs that feed each other.
func TestFastMatchesReferenceProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		nDst := 2 + r.Intn(30)
		pool := int32(nDst) + r.Int31n(40)
		neigh := make([][]int32, nDst)
		for i := range neigh {
			deg := r.Intn(8)
			for j := 0; j < deg; j++ {
				// draw from a space overlapping the outputs, with repeats
				neigh[i] = append(neigh[i], r.Int31n(pool))
			}
		}
		dst := make([]int32, nDst)
		for i := range dst {
			dst[i] = int32(i)
		}
		b := makeBlockQuiet(dst, neigh)
		if b.Validate() != nil {
			return false
		}
		ref, err := BuildREG(b)
		if err != nil {
			return false
		}
		fast, err := BuildREGFast(b)
		if err != nil {
			return false
		}
		return ref.N == fast.N && regEqual(t, ref, fast, ref.N)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// makeBlockQuiet is makeBlock without the testing.T plumbing (for quick).
func makeBlockQuiet(dstNIDs []int32, neigh [][]int32) *graph.Block {
	local := make(map[int32]int32, len(dstNIDs)*2)
	srcNID := append([]int32(nil), dstNIDs...)
	for i, v := range dstNIDs {
		local[v] = int32(i)
	}
	b := &graph.Block{
		NumDst: len(dstNIDs),
		DstNID: append([]int32(nil), dstNIDs...),
		Ptr:    make([]int64, 1, len(dstNIDs)+1),
	}
	for _, ns := range neigh {
		for _, u := range ns {
			li, ok := local[u]
			if !ok {
				li = int32(len(srcNID))
				local[u] = li
				srcNID = append(srcNID, u)
			}
			b.SrcLocal = append(b.SrcLocal, li)
			b.EID = append(b.EID, -1)
		}
		b.Ptr = append(b.Ptr, int64(len(b.SrcLocal)))
	}
	b.SrcNID = srcNID
	b.NumSrc = len(srcNID)
	return b
}

func TestFastEmptyNeighborhoods(t *testing.T) {
	b := makeBlock(t, []int32{0, 1}, [][]int32{{}, {}})
	fast, err := BuildREGFast(b)
	if err != nil {
		t.Fatal(err)
	}
	if fast.N != 2 || len(fast.Adj) != 0 {
		t.Fatalf("expected an empty REG, got %d edges", len(fast.Adj))
	}
}

// BuildREGFast must produce a bitwise-identical WeightedGraph (same CSR
// arrays, same float bits) for every worker count: the shard structure is
// fixed by constants, and weights accumulate in source order regardless of
// how many workers execute the shards. The block is sized well past
// srcShardGrain so the emission genuinely runs multi-shard.
func TestFastParallelDeterminism(t *testing.T) {
	r := rng.New(3)
	nDst := 400
	pool := int32(3000)
	neigh := make([][]int32, nDst)
	for i := range neigh {
		deg := 2 + r.Intn(12)
		for j := 0; j < deg; j++ {
			neigh[i] = append(neigh[i], r.Int31n(pool))
		}
	}
	dst := make([]int32, nDst)
	for i := range dst {
		dst[i] = int32(i)
	}
	b := makeBlockQuiet(dst, neigh)
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if b.NumSrc <= srcShardGrain {
		t.Fatalf("block has %d sources; test needs more than one shard (grain %d)", b.NumSrc, srcShardGrain)
	}

	defer parallel.SetWorkers(parallel.SetWorkers(1))
	want, err := BuildREGFast(b)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 8} {
		parallel.SetWorkers(w)
		got, err := BuildREGFast(b)
		if err != nil {
			t.Fatal(err)
		}
		if got.N != want.N || len(got.Ptr) != len(want.Ptr) || len(got.Adj) != len(want.Adj) {
			t.Fatalf("workers=%d: graph shape differs", w)
		}
		for i := range want.Ptr {
			if got.Ptr[i] != want.Ptr[i] {
				t.Fatalf("workers=%d: Ptr[%d] = %d, serial %d", w, i, got.Ptr[i], want.Ptr[i])
			}
		}
		for i := range want.Adj {
			if got.Adj[i] != want.Adj[i] || math.Float32bits(got.EWt[i]) != math.Float32bits(want.EWt[i]) {
				t.Fatalf("workers=%d: edge %d (%d, %v) differs from serial (%d, %v)",
					w, i, got.Adj[i], got.EWt[i], want.Adj[i], want.EWt[i])
			}
		}
	}
}
