package reg

import (
	"testing"

	"betty/internal/graph"
	"betty/internal/partition"
	"betty/internal/rng"
)

// makeBlock builds a last-layer block by hand: dstNIDs are the output nodes
// and neigh[i] lists the global IDs of output i's sampled in-neighbors.
func makeBlock(t *testing.T, dstNIDs []int32, neigh [][]int32) *graph.Block {
	t.Helper()
	local := make(map[int32]int32, len(dstNIDs)*2)
	srcNID := append([]int32(nil), dstNIDs...)
	for i, v := range dstNIDs {
		local[v] = int32(i)
	}
	b := &graph.Block{
		NumDst: len(dstNIDs),
		DstNID: append([]int32(nil), dstNIDs...),
		Ptr:    make([]int64, 1, len(dstNIDs)+1),
	}
	for _, ns := range neigh {
		for _, u := range ns {
			li, ok := local[u]
			if !ok {
				li = int32(len(srcNID))
				local[u] = li
				srcNID = append(srcNID, u)
			}
			b.SrcLocal = append(b.SrcLocal, li)
			b.EID = append(b.EID, -1)
		}
		b.Ptr = append(b.Ptr, int64(len(b.SrcLocal)))
	}
	b.SrcNID = srcNID
	b.NumSrc = len(srcNID)
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	return b
}

// inputNodes returns the distinct global node IDs a group of outputs needs
// loaded (the group's sources plus the outputs themselves).
func inputNodes(b *graph.Block, group []int32) map[int32]bool {
	set := make(map[int32]bool)
	for _, d := range group {
		set[b.DstNID[d]] = true
		for p := b.Ptr[d]; p < b.Ptr[d+1]; p++ {
			set[b.SrcNID[b.SrcLocal[p]]] = true
		}
	}
	return set
}

// redundancy counts duplicated input nodes across groups versus the
// unpartitioned batch.
func redundancy(b *graph.Block, groups [][]int32) int {
	full := make(map[int32]bool)
	total := 0
	for _, g := range groups {
		in := inputNodes(b, g)
		total += len(in)
		for v := range in {
			full[v] = true
		}
	}
	return total - len(full)
}

func TestBuildREGCountsSharedNeighbors(t *testing.T) {
	// outputs 1 and 8 share neighbors {5, 6}; output 1 also has {3, 7}.
	b := makeBlock(t, []int32{1, 8}, [][]int32{
		{3, 5, 6, 7},
		{5, 6, 9},
	})
	g, err := BuildREG(b)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 2 {
		t.Fatalf("REG has %d nodes, want 2", g.N)
	}
	adj, ewt := g.Neighbors(0)
	if len(adj) != 1 || adj[0] != 1 {
		t.Fatalf("REG adjacency wrong: %v", adj)
	}
	if ewt[0] != 2 {
		t.Fatalf("REG weight %v, want 2 shared neighbors", ewt[0])
	}
}

func TestBuildREGNoSharing(t *testing.T) {
	b := makeBlock(t, []int32{0, 1}, [][]int32{
		{10, 11},
		{12, 13},
	})
	g, err := BuildREG(b)
	if err != nil {
		t.Fatal(err)
	}
	for v := int32(0); v < int32(g.N); v++ {
		if adj, _ := g.Neighbors(v); len(adj) != 0 {
			t.Fatalf("disjoint neighborhoods should give an empty REG, got %v", adj)
		}
	}
}

// An output that is itself another output's neighbor contributes shared-
// neighbor counts like any other source node.
func TestBuildREGOutputAsNeighbor(t *testing.T) {
	// output 0's neighbors: {1, 5}; output 1's neighbors: {5, 6};
	// output 2's neighbors: {1, 5}. Shares: (0,1)={5}, (0,2)={1,5}, (1,2)={5}.
	b := makeBlock(t, []int32{0, 1, 2}, [][]int32{
		{1, 5},
		{5, 6},
		{1, 5},
	})
	g, err := BuildREG(b)
	if err != nil {
		t.Fatal(err)
	}
	get := func(a, c int32) float32 {
		adj, ewt := g.Neighbors(a)
		for i, u := range adj {
			if u == c {
				return ewt[i]
			}
		}
		return 0
	}
	if get(0, 1) != 1 || get(0, 2) != 2 || get(1, 2) != 1 {
		t.Fatalf("REG weights: (0,1)=%v (0,2)=%v (1,2)=%v", get(0, 1), get(0, 2), get(1, 2))
	}
}

// twoCommunityBlock builds a block whose outputs form two groups, each
// sampling neighbors from its own shared pool — the structure where REG
// partitioning should recover zero extra redundancy.
func twoCommunityBlock(t *testing.T, perSide, fanout int) *graph.Block {
	t.Helper()
	r := rng.New(99)
	n := 2 * perSide
	dst := make([]int32, n)
	for i := range dst {
		dst[i] = int32(i)
	}
	neigh := make([][]int32, n)
	for i := 0; i < n; i++ {
		poolBase := int32(1000)
		if i >= perSide {
			poolBase = 2000
		}
		seen := map[int32]bool{}
		for len(seen) < fanout {
			seen[poolBase+r.Int31n(int32(fanout*2))] = true
		}
		for v := range seen {
			neigh[i] = append(neigh[i], v)
		}
	}
	return makeBlock(t, dst, neigh)
}

func TestBettyBeatsBaselinesOnRedundancy(t *testing.T) {
	b := twoCommunityBlock(t, 24, 8)
	k := 2
	betty, err := BettyBatch{Seed: 1}.PartitionBatch(b, k)
	if err != nil {
		t.Fatal(err)
	}
	random, err := RandomBatch{Seed: 1}.PartitionBatch(b, k)
	if err != nil {
		t.Fatal(err)
	}
	rb, rr := redundancy(b, betty), redundancy(b, random)
	if rb >= rr {
		t.Fatalf("betty redundancy %d not lower than random %d", rb, rr)
	}
	// with perfectly separable communities Betty should find a near-zero cut
	if rb > rr/4 {
		t.Fatalf("betty redundancy %d too high vs random %d on separable communities", rb, rr)
	}
}

func TestAllBatchPartitionersCoverOutputs(t *testing.T) {
	b := twoCommunityBlock(t, 10, 5)
	ps := []BatchPartitioner{RangeBatch{}, RandomBatch{Seed: 2}, MetisBatch{Seed: 2}, BettyBatch{Seed: 2}}
	for _, p := range ps {
		for _, k := range []int{1, 2, 3, 5} {
			groups, err := p.PartitionBatch(b, k)
			if err != nil {
				t.Fatalf("%s k=%d: %v", p.Name(), k, err)
			}
			if len(groups) != k {
				t.Fatalf("%s produced %d groups, want %d", p.Name(), len(groups), k)
			}
			seen := make(map[int32]bool)
			for gi, g := range groups {
				if len(g) == 0 {
					t.Fatalf("%s k=%d group %d empty", p.Name(), k, gi)
				}
				for _, d := range g {
					if d < 0 || int(d) >= b.NumDst {
						t.Fatalf("%s: index %d out of range", p.Name(), d)
					}
					if seen[d] {
						t.Fatalf("%s: output %d in two groups", p.Name(), d)
					}
					seen[d] = true
				}
			}
			if len(seen) != b.NumDst {
				t.Fatalf("%s k=%d covers %d of %d outputs", p.Name(), k, len(seen), b.NumDst)
			}
		}
	}
}

func TestBatchPartitionersRejectBadK(t *testing.T) {
	b := twoCommunityBlock(t, 4, 3)
	ps := []BatchPartitioner{RangeBatch{}, RandomBatch{}, MetisBatch{}, BettyBatch{}}
	for _, p := range ps {
		if _, err := p.PartitionBatch(b, 0); err == nil {
			t.Fatalf("%s accepted k=0", p.Name())
		}
		if _, err := p.PartitionBatch(b, b.NumDst+1); err == nil {
			t.Fatalf("%s accepted k > outputs", p.Name())
		}
	}
}

func TestRangeBatchIsContiguous(t *testing.T) {
	b := twoCommunityBlock(t, 8, 3)
	groups, err := RangeBatch{}.PartitionBatch(b, 4)
	if err != nil {
		t.Fatal(err)
	}
	next := int32(0)
	for _, g := range groups {
		for _, d := range g {
			if d != next {
				t.Fatalf("range batch not contiguous at %d", d)
			}
			next++
		}
	}
}

func TestBettyDeterminism(t *testing.T) {
	b := twoCommunityBlock(t, 16, 6)
	a1, err := BettyBatch{Seed: 5}.PartitionBatch(b, 4)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := BettyBatch{Seed: 5}.PartitionBatch(b, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a1 {
		if len(a1[i]) != len(a2[i]) {
			t.Fatal("betty partitioning not deterministic")
		}
		for j := range a1[i] {
			if a1[i][j] != a2[i][j] {
				t.Fatal("betty partitioning not deterministic")
			}
		}
	}
}

// Betty's REG objective: the edge cut of the chosen partition on the REG
// should be no worse than a random partition's cut.
func TestBettyCutBeatsRandomCut(t *testing.T) {
	b := twoCommunityBlock(t, 20, 8)
	regGraph, err := BuildREG(b)
	if err != nil {
		t.Fatal(err)
	}
	groups, err := BettyBatch{Seed: 3}.PartitionBatch(b, 4)
	if err != nil {
		t.Fatal(err)
	}
	toParts := func(gs [][]int32) []int32 {
		parts := make([]int32, b.NumDst)
		for pi, g := range gs {
			for _, d := range g {
				parts[d] = int32(pi)
			}
		}
		return parts
	}
	rgroups, err := RandomBatch{Seed: 3}.PartitionBatch(b, 4)
	if err != nil {
		t.Fatal(err)
	}
	bcut := partition.EdgeCut(regGraph, toParts(groups))
	rcut := partition.EdgeCut(regGraph, toParts(rgroups))
	if bcut > rcut {
		t.Fatalf("betty REG cut %v worse than random %v", bcut, rcut)
	}
}
