// Package graph provides the graph substrate for GNN training: a compact
// immutable directed graph stored in CSR (out-edges) and CSC (in-edges)
// form, and the bipartite Block structure that represents one layer of a
// GNN mini-batch (DGL's "message flow graph" block).
//
// Node and edge identifiers are int32; the scaled datasets used in this
// repository stay far below 2^31 nodes and edges. All structures are
// deterministic given the same input edge list.
package graph

import (
	"fmt"
	"sort"
)

// Graph is an immutable directed graph with both out-edge (CSR) and
// in-edge (CSC) adjacency. Edge IDs are the positions of edges in the
// original edge list, so the same edge has one ID visible from both sides.
type Graph struct {
	numNodes int32
	numEdges int64

	// CSR over source node: out-edges.
	outPtr []int64
	outDst []int32
	outEID []int32

	// CSC over destination node: in-edges.
	inPtr []int64
	inSrc []int32
	inEID []int32

	// ewt holds per-edge weights indexed by edge ID (Equation 1's e_uv);
	// nil means every edge has weight 1.
	ewt []float32
}

// FromEdges builds a graph with n nodes from parallel src/dst edge lists.
// Edge i gets ID i. Self-loops and parallel edges are preserved.
func FromEdges(n int32, src, dst []int32) (*Graph, error) {
	return FromEdgesWeighted(n, src, dst, nil)
}

// FromEdgesWeighted builds a graph whose edge i carries weight w[i].
// A nil w means unit weights.
func FromEdgesWeighted(n int32, src, dst []int32, w []float32) (*Graph, error) {
	if len(src) != len(dst) {
		return nil, fmt.Errorf("graph: src and dst length mismatch: %d vs %d", len(src), len(dst))
	}
	if w != nil && len(w) != len(src) {
		return nil, fmt.Errorf("graph: weight length %d for %d edges", len(w), len(src))
	}
	m := len(src)
	for i := 0; i < m; i++ {
		if src[i] < 0 || src[i] >= n || dst[i] < 0 || dst[i] >= n {
			return nil, fmt.Errorf("graph: edge %d (%d->%d) out of range [0,%d)", i, src[i], dst[i], n)
		}
	}
	g := &Graph{numNodes: n, numEdges: int64(m)}
	g.outPtr, g.outDst, g.outEID = buildAdj(n, src, dst)
	g.inPtr, g.inSrc, g.inEID = buildAdj(n, dst, src)
	if w != nil {
		g.ewt = append([]float32(nil), w...)
	}
	return g, nil
}

// HasWeights reports whether the graph carries explicit edge weights.
func (g *Graph) HasWeights() bool { return g.ewt != nil }

// EdgeWeight returns the weight of the edge with the given ID (1 for
// unweighted graphs).
func (g *Graph) EdgeWeight(eid int32) float32 {
	if g.ewt == nil {
		return 1
	}
	return g.ewt[eid]
}

// buildAdj builds a CSR adjacency keyed by `key` with neighbor `val` via a
// counting sort; the third returned slice holds original edge indices.
func buildAdj(n int32, key, val []int32) ([]int64, []int32, []int32) {
	m := len(key)
	ptr := make([]int64, n+1)
	for _, k := range key {
		ptr[k+1]++
	}
	for i := int32(0); i < n; i++ {
		ptr[i+1] += ptr[i]
	}
	adj := make([]int32, m)
	eid := make([]int32, m)
	cursor := make([]int64, n)
	copy(cursor, ptr[:n])
	for e := 0; e < m; e++ {
		k := key[e]
		p := cursor[k]
		adj[p] = val[e]
		eid[p] = int32(e)
		cursor[k] = p + 1
	}
	return ptr, adj, eid
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int32 { return g.numNodes }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int64 { return g.numEdges }

// InDegree returns the number of in-edges of v.
func (g *Graph) InDegree(v int32) int {
	return int(g.inPtr[v+1] - g.inPtr[v])
}

// OutDegree returns the number of out-edges of v.
func (g *Graph) OutDegree(v int32) int {
	return int(g.outPtr[v+1] - g.outPtr[v])
}

// InNeighbors returns the sources of v's in-edges and their edge IDs.
// The returned slices alias internal storage and must not be modified.
func (g *Graph) InNeighbors(v int32) (srcs, eids []int32) {
	lo, hi := g.inPtr[v], g.inPtr[v+1]
	return g.inSrc[lo:hi], g.inEID[lo:hi]
}

// OutNeighbors returns the destinations of v's out-edges and their edge IDs.
// The returned slices alias internal storage and must not be modified.
func (g *Graph) OutNeighbors(v int32) (dsts, eids []int32) {
	lo, hi := g.outPtr[v], g.outPtr[v+1]
	return g.outDst[lo:hi], g.outEID[lo:hi]
}

// Edges re-materializes the original (src, dst) edge lists in edge-ID order.
func (g *Graph) Edges() (src, dst []int32) {
	src = make([]int32, g.numEdges)
	dst = make([]int32, g.numEdges)
	for v := int32(0); v < g.numNodes; v++ {
		lo, hi := g.inPtr[v], g.inPtr[v+1]
		for p := lo; p < hi; p++ {
			e := g.inEID[p]
			src[e] = g.inSrc[p]
			dst[e] = v
		}
	}
	return src, dst
}

// InDegreeHistogram buckets all nodes by in-degree, with degrees >= maxBucket
// accumulated into the last bucket — the "in-degree bucketing" scheme used
// by DGL-style frameworks whose last-bucket explosion §4.4.2 analyzes.
// The returned slice has maxBucket+1 entries: [deg0, deg1, ..., deg>=max].
func (g *Graph) InDegreeHistogram(maxBucket int) []int {
	h := make([]int, maxBucket+1)
	for v := int32(0); v < g.numNodes; v++ {
		d := g.InDegree(v)
		if d >= maxBucket {
			h[maxBucket]++
		} else {
			h[d]++
		}
	}
	return h
}

// MaxInDegree returns the largest in-degree in the graph.
func (g *Graph) MaxInDegree() int {
	best := 0
	for v := int32(0); v < g.numNodes; v++ {
		if d := g.InDegree(v); d > best {
			best = d
		}
	}
	return best
}

// Bytes returns the memory footprint of the graph's adjacency structures —
// the host-side cost of keeping the raw graph resident (Betty's
// heterogeneous-memory design keeps the graph and features in host memory
// and ships only micro-batch slices to the device).
func (g *Graph) Bytes() int64 {
	b := int64(len(g.outPtr)+len(g.inPtr)) * 8
	b += int64(len(g.outDst)+len(g.outEID)+len(g.inSrc)+len(g.inEID)) * 4
	b += int64(len(g.ewt)) * 4
	return b
}

// Validate checks structural invariants; tests call it after construction.
func (g *Graph) Validate() error {
	if int64(len(g.outDst)) != g.numEdges || int64(len(g.inSrc)) != g.numEdges {
		return fmt.Errorf("graph: adjacency length mismatch")
	}
	if g.outPtr[g.numNodes] != g.numEdges || g.inPtr[g.numNodes] != g.numEdges {
		return fmt.Errorf("graph: pointer array does not cover all edges")
	}
	if !sort.SliceIsSorted(g.outPtr, func(i, j int) bool { return g.outPtr[i] < g.outPtr[j] }) &&
		!isNonDecreasing(g.outPtr) {
		return fmt.Errorf("graph: outPtr not monotone")
	}
	if !isNonDecreasing(g.inPtr) {
		return fmt.Errorf("graph: inPtr not monotone")
	}
	return nil
}

func isNonDecreasing(s []int64) bool {
	for i := 1; i < len(s); i++ {
		if s[i] < s[i-1] {
			return false
		}
	}
	return true
}
