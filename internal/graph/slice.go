package graph

import "fmt"

// SliceBatch extracts a micro-batch from a full batch: given the full
// batch's blocks (input-layer first) and a selection of local destination
// indices of the *last* block, it returns the sub-blocks that compute
// exactly those outputs. This is the paper's block_dataloader: the
// micro-batch bipartite is induced on the full batch's sampled edges, so
// the union of all micro-batches over a partition of the outputs covers the
// full batch exactly, and any source shared between micro-batches is
// duplicated (the redundancy Betty minimizes).
//
// Global node and edge IDs (SrcNID/DstNID/EID) are carried through, so the
// micro-batch retains the raw-graph index mapping (§5, "Index mapping").
func SliceBatch(full []*Block, sel []int32) ([]*Block, error) {
	if len(full) == 0 {
		return nil, fmt.Errorf("graph: SliceBatch on empty batch")
	}
	blocks := make([]*Block, len(full))
	cur := sel
	for l := len(full) - 1; l >= 0; l-- {
		nb, srcSel, err := sliceBlock(full[l], cur)
		if err != nil {
			return nil, fmt.Errorf("graph: slicing layer %d: %w", l, err)
		}
		blocks[l] = nb
		// The sources selected at this layer are, by the sampler's chaining
		// invariant (inner.DstNID == outer.SrcNID), the destination
		// selection of the next-inner block.
		cur = srcSel
	}
	return blocks, nil
}

// sliceBlock induces a sub-block of b on the destination selection sel
// (local dst indices of b). It returns the sub-block and the selection of
// b's local *source* indices used, in the sub-block's source order.
func sliceBlock(b *Block, sel []int32) (*Block, []int32, error) {
	nDst := len(sel)
	if nDst == 0 {
		return nil, nil, fmt.Errorf("empty destination selection")
	}
	// srcSel[i] = b-local source index of the sub-block's local source i.
	// Destinations come first (the dst-prefix convention).
	srcSel := make([]int32, nDst, nDst*2)
	localOf := make(map[int32]int32, nDst*2)
	dstNID := make([]int32, nDst)
	for i, d := range sel {
		if d < 0 || int(d) >= b.NumDst {
			return nil, nil, fmt.Errorf("destination index %d out of range [0,%d)", d, b.NumDst)
		}
		srcSel[i] = d // dst d is also b-local source d (prefix convention)
		localOf[d] = int32(i)
		dstNID[i] = b.DstNID[d]
	}
	ptr := make([]int64, nDst+1)
	var srcLocal, eid []int32
	var ewt []float32
	for i, d := range sel {
		for p := b.Ptr[d]; p < b.Ptr[d+1]; p++ {
			s := b.SrcLocal[p]
			li, ok := localOf[s]
			if !ok {
				li = int32(len(srcSel))
				localOf[s] = li
				srcSel = append(srcSel, s)
			}
			srcLocal = append(srcLocal, li)
			eid = append(eid, b.EID[p])
			if b.EdgeWt != nil {
				ewt = append(ewt, b.EdgeWt[p])
			}
		}
		ptr[i+1] = int64(len(srcLocal))
	}
	srcNID := make([]int32, len(srcSel))
	for i, s := range srcSel {
		srcNID[i] = b.SrcNID[s]
	}
	nb := &Block{
		NumSrc:   len(srcSel),
		NumDst:   nDst,
		Ptr:      ptr,
		SrcLocal: srcLocal,
		EID:      eid,
		EdgeWt:   ewt,
		SrcNID:   srcNID,
		DstNID:   dstNID,
	}
	return nb, srcSel, nil
}

// InputRedundancy measures the duplicated layer-1 input nodes across
// micro-batches relative to the full batch: the sum of the micro-batches'
// input source counts minus the full batch's (§6.5's "input nodes
// redundancy" metric counts exactly these duplicated loads).
func InputRedundancy(full []*Block, micro [][]*Block) int {
	total := 0
	for _, mb := range micro {
		if len(mb) > 0 {
			total += mb[0].NumSrc
		}
	}
	if len(full) == 0 {
		return total
	}
	return total - full[0].NumSrc
}

// TotalInputNodes sums the first-layer input counts over micro-batches
// (Table 6's "total number of the first layer input").
func TotalInputNodes(micro [][]*Block) int {
	total := 0
	for _, mb := range micro {
		if len(mb) > 0 {
			total += mb[0].NumSrc
		}
	}
	return total
}
