package graph

import "testing"

// sampleBlock builds the paper's Figure 7 style 1-layer block by hand:
// destinations {8, 5}; node 8 aggregates {4, 5, 7, 11}, node 5 aggregates
// {4, 7}. Sources are dst-prefixed: [8, 5, 4, 7, 11].
func sampleBlock() *Block {
	return &Block{
		NumSrc:   5,
		NumDst:   2,
		Ptr:      []int64{0, 4, 6},
		SrcLocal: []int32{2, 1, 3, 4, 2, 3},
		EID:      []int32{0, 1, 2, 3, 4, 5},
		SrcNID:   []int32{8, 5, 4, 7, 11},
		DstNID:   []int32{8, 5},
	}
}

func TestBlockValidateOK(t *testing.T) {
	if err := sampleBlock().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBlockValidateCatchesCorruption(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Block)
	}{
		{"dst not src prefix", func(b *Block) { b.SrcNID[0] = 99 }},
		{"ptr too short", func(b *Block) { b.Ptr = b.Ptr[:2] }},
		{"ptr not covering", func(b *Block) { b.Ptr[2] = 3 }},
		{"eid length", func(b *Block) { b.EID = b.EID[:3] }},
		{"src out of range", func(b *Block) { b.SrcLocal[0] = 42 }},
		{"src negative", func(b *Block) { b.SrcLocal[0] = -1 }},
		{"more dst than src", func(b *Block) { b.NumSrc = 1 }},
	}
	for _, tc := range cases {
		b := sampleBlock()
		tc.mutate(b)
		if b.Validate() == nil {
			t.Errorf("%s: corruption not detected", tc.name)
		}
	}
}

func TestBlockDegreesAndEdges(t *testing.T) {
	b := sampleBlock()
	if b.NumEdges() != 6 {
		t.Fatalf("NumEdges = %d", b.NumEdges())
	}
	if b.InDegree(0) != 4 || b.InDegree(1) != 2 {
		t.Fatalf("degrees = %d, %d", b.InDegree(0), b.InDegree(1))
	}
}

func TestEdgePairs(t *testing.T) {
	b := sampleBlock()
	src, dst := b.EdgePairs()
	if len(src) != 6 || len(dst) != 6 {
		t.Fatal("wrong pair count")
	}
	// first 4 edges belong to dst 0, last 2 to dst 1
	for i := 0; i < 4; i++ {
		if dst[i] != 0 {
			t.Fatalf("edge %d dst = %d", i, dst[i])
		}
	}
	for i := 4; i < 6; i++ {
		if dst[i] != 1 {
			t.Fatalf("edge %d dst = %d", i, dst[i])
		}
	}
	if src[0] != 2 || src[5] != 3 {
		t.Fatalf("src pairs wrong: %v", src)
	}
}

func TestBlockInDegreeHistogram(t *testing.T) {
	b := sampleBlock()
	h := b.InDegreeHistogram(3)
	// degrees 4 and 2 -> bucket>=3 gets 1, bucket2 gets 1
	if h[2] != 1 || h[3] != 1 {
		t.Fatalf("histogram = %v", h)
	}
}

func TestDegreeBuckets(t *testing.T) {
	b := sampleBlock()
	buckets := b.DegreeBuckets()
	if len(buckets[4]) != 1 || buckets[4][0] != 0 {
		t.Fatalf("bucket 4 = %v", buckets[4])
	}
	if len(buckets[2]) != 1 || buckets[2][0] != 1 {
		t.Fatalf("bucket 2 = %v", buckets[2])
	}
}

func TestStats(t *testing.T) {
	inner := &Block{
		NumSrc: 8, NumDst: 5,
		Ptr:      []int64{0, 1, 2, 3, 4, 5},
		SrcLocal: []int32{5, 6, 7, 0, 1},
		EID:      []int32{-1, -1, -1, -1, -1},
		SrcNID:   []int32{8, 5, 4, 7, 11, 1, 2, 3},
		DstNID:   []int32{8, 5, 4, 7, 11},
	}
	outer := sampleBlock()
	s := Stats([]*Block{inner, outer})
	if s.NumInput != 8 {
		t.Fatalf("NumInput = %d", s.NumInput)
	}
	if s.NumOutput != 2 {
		t.Fatalf("NumOutput = %d", s.NumOutput)
	}
	if s.TotalEdges != 11 {
		t.Fatalf("TotalEdges = %d", s.TotalEdges)
	}
	if s.TotalNodes != 8+5+2 {
		t.Fatalf("TotalNodes = %d", s.TotalNodes)
	}
	if len(s.DstPerLayer) != 2 || s.DstPerLayer[0] != 5 || s.DstPerLayer[1] != 2 {
		t.Fatalf("DstPerLayer = %v", s.DstPerLayer)
	}
}

func TestStatsEmpty(t *testing.T) {
	s := Stats(nil)
	if s.NumInput != 0 || s.TotalEdges != 0 {
		t.Fatal("empty stats should be zero")
	}
}
