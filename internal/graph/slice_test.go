package graph

import (
	"math"
	"testing"
	"testing/quick"

	"betty/internal/rng"
)

// buildChain constructs a deterministic two-layer batch over a tiny raw
// graph for slicing tests. Layer sizes: inner 5 dst / 8 src, outer 2 dst /
// 5 src; the inner block's DstNID equals the outer block's SrcNID.
func buildChain() []*Block {
	outer := &Block{
		NumSrc:   5,
		NumDst:   2,
		Ptr:      []int64{0, 3, 5},
		SrcLocal: []int32{2, 3, 1, 2, 4},
		EID:      []int32{10, 11, 12, 13, 14},
		SrcNID:   []int32{100, 101, 102, 103, 104},
		DstNID:   []int32{100, 101},
	}
	inner := &Block{
		NumSrc:   8,
		NumDst:   5,
		Ptr:      []int64{0, 2, 3, 5, 7, 8},
		SrcLocal: []int32{5, 6, 7, 1, 5, 0, 6, 7},
		EID:      []int32{20, 21, 22, 23, 24, 25, 26, 27},
		SrcNID:   []int32{100, 101, 102, 103, 104, 200, 201, 202},
		DstNID:   []int32{100, 101, 102, 103, 104},
	}
	return []*Block{inner, outer}
}

func TestSliceBatchSingleOutput(t *testing.T) {
	full := buildChain()
	micro, err := SliceBatch(full, []int32{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(micro) != 2 {
		t.Fatalf("got %d layers", len(micro))
	}
	mOuter, mInner := micro[1], micro[0]
	if err := mOuter.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := mInner.Validate(); err != nil {
		t.Fatal(err)
	}
	// output 0 (NID 100) draws from sources {102, 103, 101} plus itself
	if mOuter.NumDst != 1 || mOuter.DstNID[0] != 100 {
		t.Fatalf("outer dst = %v", mOuter.DstNID)
	}
	if mOuter.NumSrc != 4 {
		t.Fatalf("outer src count = %d, want 4 (100,102,103,101)", mOuter.NumSrc)
	}
	// chaining invariant
	if mInner.NumDst != mOuter.NumSrc {
		t.Fatal("micro blocks do not chain")
	}
	for i := range mInner.DstNID {
		if mInner.DstNID[i] != mOuter.SrcNID[i] {
			t.Fatal("micro frontier NIDs do not chain")
		}
	}
	// EIDs preserved: outer edges of output 0 were 10, 11, 12
	if len(mOuter.EID) != 3 || mOuter.EID[0] != 10 || mOuter.EID[1] != 11 || mOuter.EID[2] != 12 {
		t.Fatalf("outer EIDs = %v", mOuter.EID)
	}
}

func TestSliceBatchFullSelectionIsIdentity(t *testing.T) {
	full := buildChain()
	micro, err := SliceBatch(full, []int32{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	for l := range full {
		if micro[l].NumSrc != full[l].NumSrc || micro[l].NumEdges() != full[l].NumEdges() {
			t.Fatalf("layer %d: full selection changed the batch: %d/%d src, %d/%d edges",
				l, micro[l].NumSrc, full[l].NumSrc, micro[l].NumEdges(), full[l].NumEdges())
		}
		for i := range full[l].SrcNID {
			if micro[l].SrcNID[i] != full[l].SrcNID[i] {
				t.Fatalf("layer %d: source order changed", l)
			}
		}
	}
}

func TestSliceBatchErrors(t *testing.T) {
	full := buildChain()
	if _, err := SliceBatch(nil, []int32{0}); err == nil {
		t.Fatal("empty batch not rejected")
	}
	if _, err := SliceBatch(full, nil); err == nil {
		t.Fatal("empty selection not rejected")
	}
	if _, err := SliceBatch(full, []int32{9}); err == nil {
		t.Fatal("out-of-range selection not rejected")
	}
}

// randomBatch builds a random raw graph and samples a full 2-layer batch
// from it using only package-local structures (mirrors sample.Sampler).
func randomBatchForSlice(seed uint64) []*Block {
	r := rng.New(seed)
	n := int32(30 + r.Intn(100))
	m := 8 * int(n)
	src := make([]int32, m)
	dst := make([]int32, m)
	for i := range src {
		src[i] = r.Int31n(n)
		dst[i] = r.Int31n(n)
	}
	g, err := FromEdges(n, src, dst)
	if err != nil {
		panic(err)
	}
	nSeeds := 4 + r.Intn(8)
	seeds := r.Perm(int(n))[:nSeeds]
	// full-neighbor two-layer expansion
	layer := func(frontier []int32) *Block {
		local := map[int32]int32{}
		srcNID := append([]int32(nil), frontier...)
		for i, v := range frontier {
			local[v] = int32(i)
		}
		b := &Block{NumDst: len(frontier), DstNID: append([]int32(nil), frontier...), Ptr: make([]int64, 1, len(frontier)+1)}
		for _, v := range frontier {
			ss, es := g.InNeighbors(v)
			for i, u := range ss {
				li, ok := local[u]
				if !ok {
					li = int32(len(srcNID))
					local[u] = li
					srcNID = append(srcNID, u)
				}
				b.SrcLocal = append(b.SrcLocal, li)
				b.EID = append(b.EID, es[i])
			}
			b.Ptr = append(b.Ptr, int64(len(b.SrcLocal)))
		}
		b.SrcNID = srcNID
		b.NumSrc = len(srcNID)
		return b
	}
	outer := layer(seeds)
	inner := layer(outer.SrcNID)
	return []*Block{inner, outer}
}

// Property: for random batches and random 2-way splits, (1) each micro
// batch validates and chains, (2) micro outputs partition the full outputs,
// (3) every micro edge appears in the full block with identical EID, and
// (4) union of micro input nodes equals the full input node set.
func TestSliceBatchProperties(t *testing.T) {
	f := func(seed uint64) bool {
		full := randomBatchForSlice(seed)
		last := full[len(full)-1]
		r := rng.New(seed ^ 0xabc)
		perm := r.Perm(last.NumDst)
		cutAt := 1 + r.Intn(last.NumDst-1+1)
		if cutAt >= last.NumDst {
			cutAt = last.NumDst - 1
		}
		if cutAt < 1 {
			cutAt = 1
		}
		selA, selB := perm[:cutAt], perm[cutAt:]
		if len(selB) == 0 {
			return true
		}
		microA, err := SliceBatch(full, selA)
		if err != nil {
			return false
		}
		microB, err := SliceBatch(full, selB)
		if err != nil {
			return false
		}
		for _, micro := range [][]*Block{microA, microB} {
			for l, b := range micro {
				if b.Validate() != nil {
					return false
				}
				if l+1 < len(micro) {
					if b.NumDst != micro[l+1].NumSrc {
						return false
					}
				}
			}
		}
		// outputs partition
		outs := map[int32]int{}
		for _, d := range microA[len(microA)-1].DstNID {
			outs[d]++
		}
		for _, d := range microB[len(microB)-1].DstNID {
			outs[d]++
		}
		if len(outs) != last.NumDst {
			return false
		}
		for _, c := range outs {
			if c != 1 {
				return false
			}
		}
		// input union
		fullInputs := map[int32]bool{}
		for _, v := range full[0].SrcNID {
			fullInputs[v] = true
		}
		microInputs := map[int32]bool{}
		for _, v := range microA[0].SrcNID {
			microInputs[v] = true
		}
		for _, v := range microB[0].SrcNID {
			microInputs[v] = true
		}
		if len(fullInputs) != len(microInputs) {
			return false
		}
		for v := range microInputs {
			if !fullInputs[v] {
				return false
			}
		}
		// redundancy is non-negative and consistent with TotalInputNodes
		red := InputRedundancy(full, [][]*Block{microA, microB})
		if red < 0 {
			return false
		}
		if TotalInputNodes([][]*Block{microA, microB}) != full[0].NumSrc+red {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Slicing carries edge weights through to the micro-batch blocks.
func TestSliceCarriesEdgeWeights(t *testing.T) {
	full := buildChain()
	full[0].EdgeWt = []float32{1, 2, 3, 4, 5, 6, 7, 8}
	full[1].EdgeWt = []float32{10, 11, 12, 13, 14}
	micro, err := SliceBatch(full, []int32{0})
	if err != nil {
		t.Fatal(err)
	}
	mOuter := micro[1]
	if mOuter.EdgeWt == nil {
		t.Fatal("slice dropped edge weights")
	}
	// output 0's edges in the full outer block are positions 0..2
	for i := 0; i < 3; i++ {
		if math.Float32bits(mOuter.EdgeWt[i]) != math.Float32bits(full[1].EdgeWt[i]) {
			t.Fatalf("weight %d = %v, want %v", i, mOuter.EdgeWt[i], full[1].EdgeWt[i])
		}
	}
	if err := mOuter.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInputRedundancyEmptyFull(t *testing.T) {
	micro := [][]*Block{buildChain()}
	if InputRedundancy(nil, micro) != 8 {
		t.Fatal("redundancy with empty full batch should equal micro total")
	}
}
