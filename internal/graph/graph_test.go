package graph

import (
	"testing"
	"testing/quick"

	"betty/internal/rng"
)

// diamond returns the small test graph used across the package tests:
//
//	0 -> 2, 1 -> 2, 2 -> 3, 0 -> 3, 3 -> 0
func diamond(t *testing.T) *Graph {
	t.Helper()
	g, err := FromEdges(4,
		[]int32{0, 1, 2, 0, 3},
		[]int32{2, 2, 3, 3, 0})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFromEdgesBasics(t *testing.T) {
	g := diamond(t)
	if g.NumNodes() != 4 || g.NumEdges() != 5 {
		t.Fatalf("got %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFromEdgesRejectsBadInput(t *testing.T) {
	if _, err := FromEdges(2, []int32{0}, []int32{0, 1}); err == nil {
		t.Fatal("length mismatch not rejected")
	}
	if _, err := FromEdges(2, []int32{0}, []int32{5}); err == nil {
		t.Fatal("out-of-range node not rejected")
	}
	if _, err := FromEdges(2, []int32{-1}, []int32{0}); err == nil {
		t.Fatal("negative node not rejected")
	}
}

func TestDegrees(t *testing.T) {
	g := diamond(t)
	wantIn := []int{1, 0, 2, 2}
	wantOut := []int{2, 1, 1, 1}
	for v := int32(0); v < 4; v++ {
		if g.InDegree(v) != wantIn[v] {
			t.Fatalf("InDegree(%d) = %d, want %d", v, g.InDegree(v), wantIn[v])
		}
		if g.OutDegree(v) != wantOut[v] {
			t.Fatalf("OutDegree(%d) = %d, want %d", v, g.OutDegree(v), wantOut[v])
		}
	}
}

func TestInNeighborsAndEdgeIDs(t *testing.T) {
	g := diamond(t)
	srcs, eids := g.InNeighbors(3)
	if len(srcs) != 2 {
		t.Fatalf("node 3 should have 2 in-neighbors, got %v", srcs)
	}
	seen := map[int32]int32{}
	for i, s := range srcs {
		seen[s] = eids[i]
	}
	// edge 2 is 2->3, edge 3 is 0->3
	if seen[2] != 2 || seen[0] != 3 {
		t.Fatalf("edge ids wrong: %v", seen)
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	wantSrc := []int32{0, 1, 2, 0, 3}
	wantDst := []int32{2, 2, 3, 3, 0}
	g, err := FromEdges(4, wantSrc, wantDst)
	if err != nil {
		t.Fatal(err)
	}
	src, dst := g.Edges()
	for i := range wantSrc {
		if src[i] != wantSrc[i] || dst[i] != wantDst[i] {
			t.Fatalf("edge %d: got %d->%d, want %d->%d", i, src[i], dst[i], wantSrc[i], wantDst[i])
		}
	}
}

// Property: for random graphs, every edge is visible from both endpoints
// with a consistent edge ID.
func TestCSRCSCConsistency(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := int32(2 + r.Intn(30))
		m := r.Intn(100)
		src := make([]int32, m)
		dst := make([]int32, m)
		for i := range src {
			src[i] = r.Int31n(n)
			dst[i] = r.Int31n(n)
		}
		g, err := FromEdges(n, src, dst)
		if err != nil {
			return false
		}
		if g.Validate() != nil {
			return false
		}
		// every in-edge of every node must match the original list
		count := 0
		for v := int32(0); v < n; v++ {
			ss, es := g.InNeighbors(v)
			for i := range ss {
				e := es[i]
				if src[e] != ss[i] || dst[e] != v {
					return false
				}
				count++
			}
		}
		return count == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestInDegreeHistogram(t *testing.T) {
	g := diamond(t)
	h := g.InDegreeHistogram(2)
	// in-degrees: 1, 0, 2, 2 -> bucket0:1, bucket1:1, bucket>=2:2
	if h[0] != 1 || h[1] != 1 || h[2] != 2 {
		t.Fatalf("histogram = %v", h)
	}
	total := 0
	for _, c := range h {
		total += c
	}
	if total != int(g.NumNodes()) {
		t.Fatalf("histogram total %d != %d nodes", total, g.NumNodes())
	}
}

func TestMaxInDegree(t *testing.T) {
	g := diamond(t)
	if g.MaxInDegree() != 2 {
		t.Fatalf("MaxInDegree = %d", g.MaxInDegree())
	}
}

func TestEmptyGraph(t *testing.T) {
	g, err := FromEdges(3, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 0 || g.InDegree(0) != 0 {
		t.Fatal("empty graph misbehaves")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSelfLoopAndParallelEdges(t *testing.T) {
	g, err := FromEdges(2, []int32{0, 0, 1, 1}, []int32{0, 1, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if g.InDegree(0) != 3 {
		t.Fatalf("InDegree(0) = %d, want 3 (self loop + 2 parallel)", g.InDegree(0))
	}
}
