package graph

import (
	"fmt"
	"sort"
	"sync"
)

// Block is one bipartite layer of a GNN mini-batch: edges flow from source
// (neighbor) nodes to destination (center) nodes. A multi-layer batch is a
// []*Block ordered input-layer first, output-layer last, where layer l's
// source node set equals layer l+1's... — more precisely, blocks[l+1].DstNID
// is a prefix-compatible subset: blocks produced by sampling satisfy
// blocks[l].DstNID == blocks[l+1].SrcNID is NOT required; instead
// blocks[l].DstNID (the nodes computed by layer l) equals blocks[l+1]'s
// source frontier. See sample.Sampler for the construction.
//
// Following the DGL convention, the first NumDst source slots are the
// destination nodes themselves (SrcNID[:NumDst] == DstNID), so features
// computed for destinations can be read from the source tensor prefix.
//
// Index mapping (§5 of the paper): SrcNID/DstNID map local (within-block)
// indices to global node IDs in the raw graph, and EID maps local edge
// indices to global edge IDs. Micro-batch blocks produced by slicing a
// full-batch block keep the *raw-graph* IDs, which is exactly the
// "dictionary bookmarking local indices to global indices" the paper adds.
type Block struct {
	// NumSrc and NumDst are the sizes of the two node sets.
	NumSrc, NumDst int

	// CSC layout over destinations: the in-edges of local destination d are
	// positions Ptr[d]..Ptr[d+1] of SrcLocal and EID.
	Ptr      []int64
	SrcLocal []int32

	// EID holds the global (raw-graph) edge ID of each block edge, or -1
	// when the edge does not correspond to a raw-graph edge.
	EID []int32

	// EdgeWt holds per-edge weights (Equation 1's e_uv) parallel to
	// SrcLocal; nil means unit weights.
	EdgeWt []float32

	// SrcNID and DstNID map local source/destination indices to global
	// node IDs. SrcNID[:NumDst] == DstNID.
	SrcNID []int32
	DstNID []int32

	// Derived-view caches. A Block is immutable once constructed, and the
	// model layers re-derive the same per-edge index views on every forward
	// pass of every micro-batch; memoizing them here removes that rebuild
	// from the training hot path. Blocks are always handled by pointer
	// (sync.Once makes copying a vet error), and the caches are safe for
	// concurrent use.
	pairsOnce          sync.Once
	srcPairs, dstPairs []int32

	wtOnce sync.Once
	wtLeaf any

	lstmOnce    sync.Once
	lstmBuckets []DegreeBucket

	srcInvOnce sync.Once
	srcInvCnt  []int32
	srcInvPos  []int32
	invDegOnce sync.Once
	invDeg     []float32
}

// NumEdges returns the number of edges in the block.
func (b *Block) NumEdges() int { return len(b.SrcLocal) }

// InDegree returns the in-degree of local destination d.
func (b *Block) InDegree(d int) int {
	return int(b.Ptr[d+1] - b.Ptr[d])
}

// EdgePairs expands the CSC layout into parallel (srcLocal, dstLocal)
// per-edge index slices, the format the tensor segment ops consume. The
// expansion is computed once per block and the cached slices are returned
// on every later call; callers must not modify them. dst is non-decreasing
// by construction, which is what lets the tensor segment kernels shard on
// destination boundaries.
func (b *Block) EdgePairs() (src, dst []int32) {
	b.pairsOnce.Do(func() {
		b.srcPairs = make([]int32, b.NumEdges())
		b.dstPairs = make([]int32, b.NumEdges())
		for d := 0; d < b.NumDst; d++ {
			for p := b.Ptr[d]; p < b.Ptr[d+1]; p++ {
				b.srcPairs[p] = b.SrcLocal[p]
				b.dstPairs[p] = int32(d)
			}
		}
	})
	return b.srcPairs, b.dstPairs
}

// SrcInverse returns the inverse of the block's per-edge source index:
// positions pos[cnt[r]:cnt[r+1]] list, in ascending order, the edge
// positions p with SrcLocal[p] == r. The fused aggregation backward
// (tensor.FusedCSRAgg) iterates it so each source row is owned by exactly
// one worker; memoizing it here removes the rebuild — and its two
// allocations — from every backward pass of every micro-batch. Callers
// must not modify the returned slices.
func (b *Block) SrcInverse() (cnt, pos []int32) {
	b.srcInvOnce.Do(func() {
		cnt := make([]int32, b.NumSrc+1)
		for _, s := range b.SrcLocal {
			cnt[s+1]++
		}
		for r := 0; r < b.NumSrc; r++ {
			cnt[r+1] += cnt[r]
		}
		fill := make([]int32, b.NumSrc)
		pos := make([]int32, len(b.SrcLocal))
		for p, s := range b.SrcLocal {
			pos[cnt[s]+fill[s]] = int32(p)
			fill[s]++
		}
		b.srcInvCnt, b.srcInvPos = cnt, pos
	})
	return b.srcInvCnt, b.srcInvPos
}

// InvInDegree returns 1/in-degree per local destination (0 for isolated
// destinations) — the mean-aggregation post-scale — computed once per
// block. Callers must not modify the returned slice.
func (b *Block) InvInDegree() []float32 {
	b.invDegOnce.Do(func() {
		inv := make([]float32, b.NumDst)
		for d := 0; d < b.NumDst; d++ {
			if deg := b.InDegree(d); deg > 0 {
				inv[d] = 1 / float32(deg)
			}
		}
		b.invDeg = inv
	})
	return b.invDeg
}

// MemoEdgeWt memoizes an edge-weight view built from b.EdgeWt — in
// practice the tensor leaf the SAGE weighted-sum wraps around the weights.
// build runs at most once per block; later calls return the cached value.
// The type is opaque (any) so graph does not depend on the tensor package.
func (b *Block) MemoEdgeWt(build func() any) any {
	b.wtOnce.Do(func() { b.wtLeaf = build() })
	return b.wtLeaf
}

// InDegreeHistogram buckets the block's destination nodes by in-degree with
// saturation at maxBucket, mirroring Graph.InDegreeHistogram.
func (b *Block) InDegreeHistogram(maxBucket int) []int {
	h := make([]int, maxBucket+1)
	for d := 0; d < b.NumDst; d++ {
		deg := b.InDegree(d)
		if deg >= maxBucket {
			h[maxBucket]++
		} else {
			h[deg]++
		}
	}
	return h
}

// DegreeBuckets groups local destination indices by exact in-degree,
// the "NodeBatch" bucketing used by the LSTM aggregator (§4.4.2). The map
// key is the in-degree; destinations with zero in-degree are included under
// key 0 so aggregators can give them zero neighborhoods.
func (b *Block) DegreeBuckets() map[int][]int32 {
	buckets := make(map[int][]int32)
	for d := 0; d < b.NumDst; d++ {
		deg := b.InDegree(d)
		buckets[deg] = append(buckets[deg], int32(d))
	}
	return buckets
}

// DegreeBucket is one NodeBatch of the LSTM aggregator (§4.4.2): the
// destinations sharing in-degree Deg, plus the per-timestep gather indices
// Steps[t][i] = the t-th in-neighbor of Nodes[i]. Precomputing Steps turns
// every LSTM timestep into a single dense GatherRows with no per-forward
// index rebuilding.
type DegreeBucket struct {
	Deg   int
	Nodes []int32
	Steps [][]int32
}

// LSTMBuckets returns the block's degree buckets with precomputed timestep
// index matrices, in ascending degree order, excluding zero-degree
// destinations (which keep a zero aggregate). The buckets are built once
// per block; callers must not modify the returned slices.
func (b *Block) LSTMBuckets() []DegreeBucket {
	b.lstmOnce.Do(func() {
		byDeg := b.DegreeBuckets()
		degrees := make([]int, 0, len(byDeg))
		for d := range byDeg {
			if d > 0 {
				degrees = append(degrees, d)
			}
		}
		sort.Ints(degrees)
		b.lstmBuckets = make([]DegreeBucket, 0, len(degrees))
		for _, deg := range degrees {
			nodes := byDeg[deg]
			steps := make([][]int32, deg)
			for t := 0; t < deg; t++ {
				idx := make([]int32, len(nodes))
				for i, d := range nodes {
					idx[i] = b.SrcLocal[b.Ptr[d]+int64(t)]
				}
				steps[t] = idx
			}
			b.lstmBuckets = append(b.lstmBuckets, DegreeBucket{Deg: deg, Nodes: nodes, Steps: steps})
		}
	})
	return b.lstmBuckets
}

// Validate checks the block's structural invariants.
func (b *Block) Validate() error {
	if len(b.DstNID) != b.NumDst || len(b.SrcNID) != b.NumSrc {
		return fmt.Errorf("block: NID length mismatch")
	}
	if b.NumSrc < b.NumDst {
		return fmt.Errorf("block: NumSrc %d < NumDst %d (dst must be a src prefix)", b.NumSrc, b.NumDst)
	}
	for i := 0; i < b.NumDst; i++ {
		if b.SrcNID[i] != b.DstNID[i] {
			return fmt.Errorf("block: SrcNID[%d]=%d != DstNID[%d]=%d", i, b.SrcNID[i], i, b.DstNID[i])
		}
	}
	if len(b.Ptr) != b.NumDst+1 {
		return fmt.Errorf("block: Ptr length %d, want %d", len(b.Ptr), b.NumDst+1)
	}
	if b.Ptr[b.NumDst] != int64(len(b.SrcLocal)) {
		return fmt.Errorf("block: Ptr does not cover all edges")
	}
	if len(b.EID) != len(b.SrcLocal) {
		return fmt.Errorf("block: EID length mismatch")
	}
	if b.EdgeWt != nil && len(b.EdgeWt) != len(b.SrcLocal) {
		return fmt.Errorf("block: EdgeWt length mismatch")
	}
	if !isNonDecreasing(b.Ptr) {
		return fmt.Errorf("block: Ptr not monotone")
	}
	for _, s := range b.SrcLocal {
		if s < 0 || int(s) >= b.NumSrc {
			return fmt.Errorf("block: source index %d out of range [0,%d)", s, b.NumSrc)
		}
	}
	return nil
}

// BatchStats summarizes a multi-layer batch (input-first block list) for
// memory estimation and redundancy accounting.
type BatchStats struct {
	// NumInput is the number of source nodes of the input (first) block —
	// the rows of the input-feature tensor the batch loads.
	NumInput int
	// NumOutput is the number of destination nodes of the output (last)
	// block — the labeled nodes.
	NumOutput int
	// TotalEdges sums edge counts over all blocks.
	TotalEdges int
	// TotalNodes sums source-node counts over all blocks plus the final
	// destination count: every feature/hidden row materialized.
	TotalNodes int
	// DstPerLayer lists NumDst per block, input-first.
	DstPerLayer []int
	// SrcPerLayer lists NumSrc per block, input-first.
	SrcPerLayer []int
}

// Stats computes BatchStats for an input-first block list.
func Stats(blocks []*Block) BatchStats {
	var s BatchStats
	if len(blocks) == 0 {
		return s
	}
	s.NumInput = blocks[0].NumSrc
	s.NumOutput = blocks[len(blocks)-1].NumDst
	for _, b := range blocks {
		s.TotalEdges += b.NumEdges()
		s.TotalNodes += b.NumSrc
		s.DstPerLayer = append(s.DstPerLayer, b.NumDst)
		s.SrcPerLayer = append(s.SrcPerLayer, b.NumSrc)
	}
	s.TotalNodes += s.NumOutput
	return s
}
