package embcache

import "betty/internal/graph"

// restrictDst builds the sub-block of b containing only the destinations
// in keep (ascending old local dst indices) and the sources they reach.
// Because every forward kernel computes each output row only from that
// row's own inputs (the per-row stability invariant, DESIGN.md §11), a
// layer applied to the sub-block yields rows bitwise equal to the
// corresponding rows of the full block — which is what lets a partial
// cache hit skip exactly the hit rows.
//
// The returned srcSel maps the sub-block's local source index to the old
// local source index, for gathering the matching feature rows.
//
// The kept destinations become the sub-block's source prefix: old local
// destination k is also old local source k (blocks list destinations
// first among sources), so the SrcNID[:NumDst] == DstNID invariant holds
// by construction. Remaining sources follow in first-occurrence order of
// the retained edges, so the construction is deterministic.
func restrictDst(b *graph.Block, keep []int32) (*graph.Block, []int32) {
	m := len(keep)
	srcSel := make([]int32, m, m+len(b.SrcLocal)/2)
	srcMap := make(map[int32]int32, m)
	for i, d := range keep {
		srcSel[i] = d
		srcMap[d] = int32(i)
	}
	sub := &graph.Block{
		NumDst: m,
		Ptr:    make([]int64, 1, m+1),
		DstNID: make([]int32, m),
	}
	edgeCap := 0
	for _, d := range keep {
		edgeCap += int(b.Ptr[d+1] - b.Ptr[d])
	}
	sub.SrcLocal = make([]int32, 0, edgeCap)
	if b.EID != nil {
		sub.EID = make([]int32, 0, edgeCap)
	}
	if b.EdgeWt != nil {
		sub.EdgeWt = make([]float32, 0, edgeCap)
	}
	for i, d := range keep {
		sub.DstNID[i] = b.DstNID[d]
		for e := b.Ptr[d]; e < b.Ptr[d+1]; e++ {
			s := b.SrcLocal[e]
			ns, ok := srcMap[s]
			if !ok {
				ns = int32(len(srcSel))
				srcMap[s] = ns
				srcSel = append(srcSel, s)
			}
			sub.SrcLocal = append(sub.SrcLocal, ns)
			if b.EID != nil {
				sub.EID = append(sub.EID, b.EID[e])
			}
			if b.EdgeWt != nil {
				sub.EdgeWt = append(sub.EdgeWt, b.EdgeWt[e])
			}
		}
		sub.Ptr = append(sub.Ptr, int64(len(sub.SrcLocal)))
	}
	sub.NumSrc = len(srcSel)
	sub.SrcNID = make([]int32, len(srcSel))
	for j, s := range srcSel {
		sub.SrcNID[j] = b.SrcNID[s]
	}
	return sub, srcSel
}
