package embcache_test

import (
	"math"
	"testing"

	"betty/internal/core"
	"betty/internal/dataset"
	"betty/internal/device"
	"betty/internal/embcache"
	"betty/internal/graph"
	"betty/internal/obs"
	"betty/internal/sample"
	"betty/internal/tensor"
)

// The forward tests run the cached path through core.BatchInferenceCached
// (the external package avoids the core→embcache import cycle) and pin the
// contract the modes advertise: exact is bitwise identical to off, and
// reuse at lag 0 is bitwise identical too — including across partial hits,
// where only the missed destinations are recomputed on a restricted
// sub-block.

func fwdData(t *testing.T) *dataset.Dataset {
	t.Helper()
	d, err := dataset.Generate(dataset.GenConfig{
		Name: "t", Nodes: 800, AvgDegree: 10, FeatureDim: 24,
		NumClasses: 5, Homophily: 0.8, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func fwdSetup(t *testing.T, d *dataset.Dataset) *core.Setup {
	t.Helper()
	s, err := core.BuildSAGE(d, core.Options{Seed: 50, Hidden: 16, Fanouts: []int{4, 6}})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func sampleBlocks(t *testing.T, s *core.Setup, d *dataset.Dataset, seeds []int32) ([]*graph.Block, *tensor.Tensor) {
	t.Helper()
	blocks, err := s.Engine.Sampler.Sample(d.Graph, seeds)
	if err != nil {
		t.Fatal(err)
	}
	x, err := d.GatherFeatures(blocks[0].SrcNID)
	if err != nil {
		t.Fatal(err)
	}
	return blocks, x
}

func nodewiseBlocks(t *testing.T, nw *sample.NodeWise, d *dataset.Dataset, seeds []int32) ([]*graph.Block, *tensor.Tensor) {
	t.Helper()
	blocks, err := nw.Sample(d.Graph, seeds)
	if err != nil {
		t.Fatal(err)
	}
	x, err := d.GatherFeatures(blocks[0].SrcNID)
	if err != nil {
		t.Fatal(err)
	}
	return blocks, x
}

func tensorsBitwiseEqual(a, b *tensor.Tensor) bool {
	if a.Rows() != b.Rows() || a.Cols() != b.Cols() {
		return false
	}
	for i := range a.Data {
		if math.Float32bits(a.Data[i]) != math.Float32bits(b.Data[i]) {
			return false
		}
	}
	return true
}

func newCache(t *testing.T, mode embcache.Mode, maxLag int, reg *obs.Registry) *embcache.Cache {
	t.Helper()
	c, err := embcache.New(embcache.Config{
		Mode: mode, BudgetBytes: 8 * device.MiB, MaxLag: maxLag, Obs: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestExactModeBitwiseIdenticalToOff(t *testing.T) {
	d := fwdData(t)
	s := fwdSetup(t, d)
	blocks, x := sampleBlocks(t, s, d, []int32{3, 8, 120, 700})

	off, err := core.BatchInference(s.Model, blocks, x)
	if err != nil {
		t.Fatal(err)
	}
	c := newCache(t, embcache.ModeExact, 0, obs.New(nil))
	// Twice: the first populates, the second verifies every cached row
	// bitwise against the recomputation.
	for pass := 0; pass < 2; pass++ {
		got, err := core.BatchInferenceCached(s.Model, blocks, x, c)
		if err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		if !tensorsBitwiseEqual(off, got) {
			t.Fatalf("pass %d: exact mode diverged from off", pass)
		}
	}
	if h, _ := c.Stats(); h != 0 {
		t.Fatalf("exact mode reported %d hits: compute must never be skipped", h)
	}
	if c.Dim() == 0 {
		t.Fatal("exact passes did not populate the cache")
	}
}

func TestReuseAllHitsBitwiseAtLagZero(t *testing.T) {
	d := fwdData(t)
	s := fwdSetup(t, d)
	blocks, x := sampleBlocks(t, s, d, []int32{3, 8, 120, 700})

	off, err := core.BatchInference(s.Model, blocks, x)
	if err != nil {
		t.Fatal(err)
	}
	c := newCache(t, embcache.ModeReuse, 0, obs.New(nil))
	// First pass: cold, computes and populates.
	if _, err := core.BatchInferenceCached(s.Model, blocks, x, c); err != nil {
		t.Fatal(err)
	}
	// Second pass over the same blocks: every layer-1 destination hits,
	// and the spliced result is still bitwise the off-path logits.
	got, err := core.BatchInferenceCached(s.Model, blocks, x, c)
	if err != nil {
		t.Fatal(err)
	}
	if !tensorsBitwiseEqual(off, got) {
		t.Fatal("reuse mode at lag 0 diverged from off")
	}
	hits, _ := c.Stats()
	if hits != int64(blocks[0].NumDst) {
		t.Fatalf("warm pass hit %d of %d destinations", hits, blocks[0].NumDst)
	}
}

func TestReusePartialHitsBitwiseAtLagZero(t *testing.T) {
	d := fwdData(t)
	s := fwdSetup(t, d)
	reg := obs.New(nil)
	c := newCache(t, embcache.ModeReuse, 0, reg)

	// Warm the cache with one frontier, then run a different, overlapping
	// one: the overlap hits, the rest is computed on the restricted
	// sub-block, and the splice must still be bitwise exact. Cross-batch
	// row stability needs the node-wise sampler (the serving-path one,
	// whose draw for a node never depends on its batch); the training
	// Sampler's per-call streams make a node's neighborhood batch-
	// dependent, which is exactly why serving uses NodeWise.
	nw := sample.NewNodeWise([]int{4, 6}, 9)
	warm, wx := nodewiseBlocks(t, nw, d, []int32{3, 8, 120, 700})
	if _, err := core.BatchInferenceCached(s.Model, warm, wx, c); err != nil {
		t.Fatal(err)
	}
	blocks, x := nodewiseBlocks(t, nw, d, []int32{3, 8, 200, 305})
	off, err := core.BatchInference(s.Model, blocks, x)
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.BatchInferenceCached(s.Model, blocks, x, c)
	if err != nil {
		t.Fatal(err)
	}
	if !tensorsBitwiseEqual(off, got) {
		t.Fatal("partial-hit reuse diverged from off")
	}
	hits, misses := c.Stats()
	if hits == 0 {
		t.Fatal("overlapping frontiers produced no hits")
	}
	if misses == 0 {
		t.Fatal("expected a partial (not total) hit — pick less overlapping seeds")
	}
	// Only the missed destinations were computed on the second frontier.
	computed := reg.CounterValue("embcache.computed_rows")
	wantComputed := int64(warm[0].NumDst) + misses
	if computed != wantComputed {
		t.Fatalf("computed_rows = %d, want %d (full warm pass + misses only)", computed, wantComputed)
	}
}

func TestReuseStaleRowsRecomputeAfterInvalidate(t *testing.T) {
	d := fwdData(t)
	s := fwdSetup(t, d)
	blocks, x := sampleBlocks(t, s, d, []int32{5, 9, 42})
	c := newCache(t, embcache.ModeReuse, 1, obs.New(nil))
	if _, err := core.BatchInferenceCached(s.Model, blocks, x, c); err != nil {
		t.Fatal(err)
	}
	c.Invalidate()
	got, err := core.BatchInferenceCached(s.Model, blocks, x, c)
	if err != nil {
		t.Fatal(err)
	}
	off, err := core.BatchInference(s.Model, blocks, x)
	if err != nil {
		t.Fatal(err)
	}
	if !tensorsBitwiseEqual(off, got) {
		t.Fatal("post-invalidate forward diverged")
	}
	if hits, _ := c.Stats(); hits != 0 {
		t.Fatalf("%d hits served from an invalidated cache", hits)
	}
}
