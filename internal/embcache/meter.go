package embcache

import (
	"sync"

	"betty/internal/obs"
)

// Meter measures cross-batch frontier overlap: what fraction of each
// batch's layer-1 destination frontier was also in the previous batch's
// frontier. This is the temporal-locality signal (Cooperative
// Minibatching, PAPERS.md) that justifies the historical-embedding cache,
// published whether or not the cache is on.
type Meter struct {
	reg *obs.Registry

	mu   sync.Mutex
	prev map[int32]struct{}
}

// NewMeter builds a frontier-overlap meter reporting to reg.
func NewMeter(reg *obs.Registry) *Meter {
	return &Meter{reg: reg, prev: make(map[int32]struct{})}
}

// Observe records one batch frontier, emitting the overlap with the
// previous frontier as sample.frontier.reuse_nodes / total_nodes
// counters and the running fraction as the reuse_frac_ppm gauge
// (parts-per-million, the repo's integer-gauge idiom for fractions).
func (m *Meter) Observe(nids []int32) {
	if m == nil || len(nids) == 0 {
		return
	}
	m.mu.Lock()
	reused := 0
	next := make(map[int32]struct{}, len(nids))
	for _, nid := range nids {
		if _, ok := m.prev[nid]; ok {
			reused++
		}
		next[nid] = struct{}{}
	}
	m.prev = next
	m.mu.Unlock()
	m.reg.Add("sample.frontier.reuse_nodes", int64(reused))
	m.reg.Add("sample.frontier.total_nodes", int64(len(nids)))
	if total := m.reg.CounterValue("sample.frontier.total_nodes"); total > 0 {
		r := m.reg.CounterValue("sample.frontier.reuse_nodes")
		m.reg.Set("sample.frontier.reuse_frac_ppm", r*1_000_000/total)
	}
}
