package embcache

import (
	"fmt"

	"betty/internal/graph"
	"betty/internal/nn"
	"betty/internal/tensor"
)

// Forward runs a layer-wise forward pass over blocks, consulting the
// cache for layer-1 rows. The cache key space is blocks[0].DstNID: layer-1
// destinations are exactly the layer-2 source frontier, so a cached row
// splices directly into the layer-2 input.
//
//   - nil / off cache: plain per-layer application, op-for-op identical to
//     the model's own Forward.
//   - exact: layer 1 is computed in full, then verified+stored — outputs
//     and gradients bitwise match the off path.
//   - reuse: hit rows are spliced in as constants and only the missed
//     destinations are computed, on the destination-restricted sub-block.
//     No gradient flows through a hit row (historical embeddings are
//     treated as constants, the VR-GCN/GNNAutoScale trade).
func Forward(tp *tensor.Tape, model any, blocks []*graph.Block, x *tensor.Var, c *Cache) (*tensor.Var, error) {
	layers, err := nn.LayerStack(model)
	if err != nil {
		return nil, err
	}
	if len(layers) != len(blocks) {
		return nil, fmt.Errorf("embcache: %d blocks for %d layers", len(blocks), len(layers))
	}
	start := 0
	h := x
	if c.Active() && len(layers) >= 2 {
		h, err = forwardLayer1(tp, layers[0], blocks[0], x, c)
		if err != nil {
			return nil, err
		}
		start = 1
	}
	for l := start; l < len(layers); l++ {
		h = nn.ApplyBlockLayer(tp, layers[l], blocks[l], h, l == len(layers)-1)
	}
	return h, nil
}

// forwardLayer1 produces the layer-1 output (always non-last, so the
// inter-layer ReLU is applied) through the cache.
func forwardLayer1(tp *tensor.Tape, layer nn.BlockLayer, b *graph.Block, x *tensor.Var, c *Cache) (*tensor.Var, error) {
	if c.mode == ModeExact {
		h1 := nn.ApplyBlockLayer(tp, layer, b, x, false)
		c.reg.Add("embcache.computed_rows", int64(b.NumDst))
		if err := c.VerifyAndStore(b.DstNID, h1.Value); err != nil {
			return nil, err
		}
		return h1, nil
	}

	// Reuse: fetch what the cache has directly into a leaf tensor whose
	// miss rows stay zero; they are filled by the scattered sub-block
	// compute below.
	var hitRows *tensor.Tensor
	var hit []bool
	hits := 0
	if dim := c.Dim(); dim > 0 {
		hitRows = tensor.New(b.NumDst, dim)
		hit, hits = c.FetchInto(b.DstNID, hitRows.Row)
	} else {
		c.reg.Add("embcache.misses", int64(b.NumDst))
	}
	if hits == b.NumDst {
		return tensor.Leaf(hitRows), nil
	}
	if hits == 0 {
		h1 := nn.ApplyBlockLayer(tp, layer, b, x, false)
		c.reg.Add("embcache.computed_rows", int64(b.NumDst))
		if err := c.Store(b.DstNID, h1.Value); err != nil {
			return nil, err
		}
		return h1, nil
	}

	// Partial hit: compute only the missed destinations on the restricted
	// sub-block. Per-row stability makes these rows bitwise equal to the
	// full-block rows; the splice is Add(scattered misses, leaf hits),
	// exact because the disjoint counterpart rows are +0.0 (layer-1
	// output is post-ReLU, so no -0.0 can make 0+x differ from x).
	keep := make([]int32, 0, b.NumDst-hits)
	for i := 0; i < b.NumDst; i++ {
		if !hit[i] {
			keep = append(keep, int32(i))
		}
	}
	sub, srcSel := restrictDst(b, keep)
	xs := tp.GatherRows(x, srcSel)
	hm := nn.ApplyBlockLayer(tp, layer, sub, xs, false)
	c.reg.Add("embcache.computed_rows", int64(len(keep)))
	if err := c.Store(sub.DstNID, hm.Value); err != nil {
		return nil, err
	}
	return tp.Add(tp.ScatterRows(hm, keep, b.NumDst), tensor.Leaf(hitRows)), nil
}
