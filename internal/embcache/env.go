// Package embcache is a versioned historical-embedding cache: it stores
// layer-1 activations keyed by (weight version, node id) so consecutive
// minibatches — training micro-batches and concurrent serve requests
// alike — can reuse rows computed moments ago instead of re-running the
// layer-1 gather+aggregate for them (DESIGN.md §16).
//
// Three modes, selected by BETTY_EMBCACHE:
//
//   - off:   the cache is inert; forwards take the plain per-layer path.
//   - exact: the default self-check mode. Every forward computes layer 1
//     in full, and cached rows are verified bitwise against the fresh
//     recomputation before being refreshed — outputs and gradients are
//     bitwise identical to off, and any divergence is a loud error.
//   - reuse: the fast path. Hits at version lag ≤ BETTY_EMBCACHE_MAX_LAG
//     skip layer-1 compute for those rows; the cached row is spliced into
//     the layer-2 input as a constant (no gradient flows through it).
//     Staleness is bounded: rows older than the lag budget miss and are
//     dropped lazily.
//
// Resident bytes are budget-pinned LRU, charged to a device.Device ledger
// (the same accounting discipline as internal/store's shard cache), so
// the cache composes with the planner's memory budgets.
package embcache

import (
	"fmt"
	"strconv"
)

// Mode selects the cache behavior (BETTY_EMBCACHE).
type Mode int

const (
	// ModeOff disables the cache entirely.
	ModeOff Mode = iota
	// ModeExact populates the cache and verifies hits bitwise against the
	// full recomputation; compute is never skipped. The default.
	ModeExact
	// ModeReuse skips layer-1 compute for hits within the version-lag
	// budget; cached rows enter the forward as constants.
	ModeReuse
)

func (m Mode) String() string {
	switch m {
	case ModeOff:
		return "off"
	case ModeExact:
		return "exact"
	case ModeReuse:
		return "reuse"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Environment knobs (see the README knob table).
const (
	// EnvMode selects off/exact/reuse. No BETTY_SERVE_ prefix: like
	// BETTY_QUANT and BETTY_FUSED this is a repo-wide numeric contract,
	// honored identically by training and serving.
	EnvMode = "BETTY_EMBCACHE"
	// EnvBudgetMiB bounds the cache's resident bytes (ledger-charged).
	EnvBudgetMiB = "BETTY_EMBCACHE_BUDGET_MIB"
	// EnvMaxLag bounds how many weight versions old a reusable row may be.
	EnvMaxLag = "BETTY_EMBCACHE_MAX_LAG"
)

// ParseMode interprets BETTY_EMBCACHE. Empty means exact — the
// self-checking default; a malformed value is a loud error, never a
// silent fallback to a different caching policy.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "exact":
		return ModeExact, nil
	case "off":
		return ModeOff, nil
	case "reuse":
		return ModeReuse, nil
	default:
		return ModeOff, fmt.Errorf("%s=%q invalid (want off, exact, or reuse)", EnvMode, s)
	}
}

// ParseBudgetMiB interprets BETTY_EMBCACHE_BUDGET_MIB. Empty returns 0
// (unset — caller keeps its default); anything else must be a positive
// integer number of MiB.
func ParseBudgetMiB(s string) (int64, error) {
	if s == "" {
		return 0, nil
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil || v <= 0 {
		return 0, fmt.Errorf("%s=%q invalid (want a positive integer MiB)", EnvBudgetMiB, s)
	}
	return v, nil
}

// ParseMaxLag interprets BETTY_EMBCACHE_MAX_LAG. Empty returns -1
// (unset — caller keeps its default); 0 is meaningful (reuse only
// same-version rows), so the unset sentinel is negative.
func ParseMaxLag(s string) (int, error) {
	if s == "" {
		return -1, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("%s=%q invalid (want a non-negative integer)", EnvMaxLag, s)
	}
	return v, nil
}
