package embcache

import (
	"math"
	"strings"
	"testing"

	"betty/internal/device"
	"betty/internal/graph"
	"betty/internal/obs"
	"betty/internal/tensor"
)

func TestParseMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Mode
	}{
		{"", ModeExact}, {"exact", ModeExact}, {"off", ModeOff}, {"reuse", ModeReuse},
	} {
		got, err := ParseMode(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseMode(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseMode("fast"); err == nil || !strings.Contains(err.Error(), EnvMode) {
		t.Fatalf("malformed mode accepted or unnamed: %v", err)
	}
}

func TestParseBudgetMiB(t *testing.T) {
	if v, err := ParseBudgetMiB(""); err != nil || v != 0 {
		t.Fatalf("empty budget = %d, %v", v, err)
	}
	if v, err := ParseBudgetMiB("64"); err != nil || v != 64 {
		t.Fatalf("budget 64 = %d, %v", v, err)
	}
	for _, bad := range []string{"0", "-3", "lots", "1.5"} {
		if _, err := ParseBudgetMiB(bad); err == nil {
			t.Fatalf("budget %q accepted", bad)
		}
	}
}

func TestParseMaxLag(t *testing.T) {
	if v, err := ParseMaxLag(""); err != nil || v != -1 {
		t.Fatalf("empty lag = %d, %v (want unset sentinel -1)", v, err)
	}
	if v, err := ParseMaxLag("0"); err != nil || v != 0 {
		t.Fatalf("lag 0 = %d, %v", v, err)
	}
	if v, err := ParseMaxLag("5"); err != nil || v != 5 {
		t.Fatalf("lag 5 = %d, %v", v, err)
	}
	for _, bad := range []string{"-1", "many", "2.0"} {
		if _, err := ParseMaxLag(bad); err == nil {
			t.Fatalf("lag %q accepted", bad)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if c, err := New(Config{Mode: ModeOff}); c != nil || err != nil {
		t.Fatalf("off mode: %v, %v (want nil cache, nil error)", c, err)
	}
	if _, err := New(Config{Mode: ModeReuse, BudgetBytes: 1024, MaxLag: -1}); err == nil {
		t.Fatal("negative max lag accepted")
	}
	if _, err := New(Config{Mode: ModeExact}); err == nil {
		t.Fatal("zero budget accepted")
	}
	shared := device.New(device.MiB, device.CostModel{})
	if _, err := New(Config{Mode: ModeExact, Ledger: shared}); err == nil {
		t.Fatal("shared-ledger cache without a self-budget accepted")
	}
}

func TestNilCacheIsInert(t *testing.T) {
	var c *Cache
	if c.Active() || c.Mode() != ModeOff || c.Version() != 0 || c.Dim() != 0 {
		t.Fatal("nil cache not inert")
	}
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Fatal("nil cache has stats")
	}
	c.BumpVersion()
	c.Invalidate()
	c.Flush()
	hit, hits := c.FetchInto([]int32{1, 2}, func(int) []float32 { return nil })
	if hits != 0 || len(hit) != 2 || hit[0] || hit[1] {
		t.Fatal("nil cache returned hits")
	}
	if err := c.Store([]int32{1}, tensor.New(1, 4)); err != nil {
		t.Fatal(err)
	}
	if c.ResidentBytes() != 0 || c.MaxObservedLag() != 0 {
		t.Fatal("nil cache holds state")
	}
}

// rows builds a tensor whose row i is vals[i].
func rows(t *testing.T, vals ...[]float32) *tensor.Tensor {
	t.Helper()
	m := tensor.New(len(vals), len(vals[0]))
	for i, v := range vals {
		copy(m.Row(i), v)
	}
	return m
}

// fetch runs FetchInto into a scratch tensor and returns the mask, hit
// count, and the scratch rows.
func fetch(c *Cache, nids []int32, dim int) ([]bool, int, *tensor.Tensor) {
	dst := tensor.New(len(nids), dim)
	hit, hits := c.FetchInto(nids, dst.Row)
	return hit, hits, dst
}

func TestReuseStalenessBound(t *testing.T) {
	reg := obs.New(nil)
	c, err := New(Config{Mode: ModeReuse, BudgetBytes: device.MiB, MaxLag: 1, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Store([]int32{7, 9}, rows(t, []float32{1, 2}, []float32{3, 4})); err != nil {
		t.Fatal(err)
	}

	// Lag 0 and lag 1 hit; the rows come back bit-for-bit.
	for lag := 0; lag <= 1; lag++ {
		hit, hits, dst := fetch(c, []int32{7, 9}, 2)
		if hits != 2 || !hit[0] || !hit[1] {
			t.Fatalf("lag %d: hits = %d, mask %v", lag, hits, hit)
		}
		if dst.Row(0)[0] != 1 || dst.Row(1)[1] != 4 {
			t.Fatalf("lag %d: wrong row data %v %v", lag, dst.Row(0), dst.Row(1))
		}
		c.BumpVersion()
	}
	if c.MaxObservedLag() != 1 {
		t.Fatalf("max observed lag = %d, want 1", c.MaxObservedLag())
	}

	// Lag 2 exceeds MaxLag: the entries miss and are dropped.
	if _, hits, _ := fetch(c, []int32{7, 9}, 2); hits != 0 {
		t.Fatalf("stale rows hit (%d)", hits)
	}
	if got := reg.CounterValue("embcache.stale_drops"); got != 2 {
		t.Fatalf("stale_drops = %d, want 2", got)
	}
	if c.ResidentBytes() != 0 {
		t.Fatalf("stale entries still resident: %d bytes", c.ResidentBytes())
	}
	if c.MaxObservedLag() > 1 {
		t.Fatalf("over-lag fetch counted as observed lag %d", c.MaxObservedLag())
	}
}

func TestExactModeNeverHits(t *testing.T) {
	reg := obs.New(nil)
	c, err := New(Config{Mode: ModeExact, BudgetBytes: device.MiB, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Store([]int32{1}, rows(t, []float32{5})); err != nil {
		t.Fatal(err)
	}
	if _, hits, _ := fetch(c, []int32{1}, 1); hits != 0 {
		t.Fatal("exact mode returned a hit — compute must never be skipped")
	}
	if h, m := c.Stats(); h != 0 || m != 1 {
		t.Fatalf("stats = %d/%d, want 0/1", h, m)
	}
}

func TestVerifyAndStore(t *testing.T) {
	reg := obs.New(nil)
	c, err := New(Config{Mode: ModeExact, BudgetBytes: device.MiB, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyAndStore([]int32{3}, rows(t, []float32{1, 2})); err != nil {
		t.Fatal(err)
	}
	// Same version, same bits: fine.
	if err := c.VerifyAndStore([]int32{3}, rows(t, []float32{1, 2})); err != nil {
		t.Fatal(err)
	}
	// Same version, different bits: the self-check must fire loudly.
	if err := c.VerifyAndStore([]int32{3}, rows(t, []float32{1, 2.5})); err == nil {
		t.Fatal("bitwise mismatch at the same version accepted")
	}
	if got := reg.CounterValue("embcache.verify_failures"); got != 1 {
		t.Fatalf("verify_failures = %d, want 1", got)
	}
	// After a version bump the weights legitimately changed: no verify,
	// the row is refreshed.
	c.BumpVersion()
	if err := c.VerifyAndStore([]int32{3}, rows(t, []float32{9, 9})); err != nil {
		t.Fatalf("cross-version refresh rejected: %v", err)
	}
}

func TestBudgetEvictionLRU(t *testing.T) {
	reg := obs.New(nil)
	// Two granularity-rounded rows fit the budget; the third evicts the
	// least recently used.
	c, err := New(Config{Mode: ModeReuse, BudgetBytes: 2 * device.AllocGranularity, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Store([]int32{1}, rows(t, []float32{1, 1})); err != nil {
		t.Fatal(err)
	}
	if err := c.Store([]int32{2}, rows(t, []float32{2, 2})); err != nil {
		t.Fatal(err)
	}
	// Touch node 1 so node 2 is the LRU tail.
	if _, hits, _ := fetch(c, []int32{1}, 2); hits != 1 {
		t.Fatal("warm row missed")
	}
	if err := c.Store([]int32{3}, rows(t, []float32{3, 3})); err != nil {
		t.Fatal(err)
	}
	if got := reg.CounterValue("embcache.evictions"); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	hit, hits, _ := fetch(c, []int32{1, 2, 3}, 2)
	if hits != 2 || !hit[0] || hit[1] || !hit[2] {
		t.Fatalf("LRU evicted the wrong row: mask %v", hit)
	}
	if c.ResidentBytes() > 2*device.AllocGranularity {
		t.Fatalf("resident %d exceeds budget", c.ResidentBytes())
	}
	if peak, ok := reg.GaugeValue("embcache.resident_peak_bytes"); !ok || peak > 2*device.AllocGranularity {
		t.Fatalf("published peak %d (ok=%v) exceeds budget", peak, ok)
	}
}

func TestRowLargerThanBudgetIsSkipped(t *testing.T) {
	reg := obs.New(nil)
	c, err := New(Config{Mode: ModeReuse, BudgetBytes: 100, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	// 128 floats = 512 raw bytes > the 100-byte budget: never stored,
	// never partially charged.
	if err := c.Store([]int32{1}, tensor.New(1, 128)); err != nil {
		t.Fatal(err)
	}
	if got := reg.CounterValue("embcache.budget_skips"); got != 1 {
		t.Fatalf("budget_skips = %d, want 1", got)
	}
	if c.ResidentBytes() != 0 {
		t.Fatalf("oversized row left %d resident bytes", c.ResidentBytes())
	}
}

func TestSharedLedgerPressureEvicts(t *testing.T) {
	reg := obs.New(nil)
	shared := device.New(3*device.AllocGranularity, device.CostModel{})
	// Another cache's resident charge occupies a third of the ledger.
	other, err := shared.Alloc(device.AllocGranularity, "other.cache")
	if err != nil {
		t.Fatal(err)
	}
	defer shared.Free(other)
	c, err := New(Config{Mode: ModeReuse, BudgetBytes: device.MiB, Ledger: shared, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	for nid := int32(1); nid <= 4; nid++ {
		if err := c.Store([]int32{nid}, rows(t, []float32{float32(nid)})); err != nil {
			t.Fatal(err)
		}
	}
	// The self-budget is ample; the shared ledger is what forced eviction
	// down to two resident rows.
	if got := reg.CounterValue("embcache.evictions"); got != 2 {
		t.Fatalf("evictions = %d, want 2", got)
	}
	if shared.Used() > shared.Capacity() || shared.Peak() > shared.Capacity() {
		t.Fatalf("ledger overcommitted: used %d peak %d cap %d", shared.Used(), shared.Peak(), shared.Capacity())
	}
	if _, hits, _ := fetch(c, []int32{3, 4}, 1); hits != 2 {
		t.Fatal("most-recent rows evicted instead of LRU tail")
	}
}

func TestFlushAndInvalidate(t *testing.T) {
	reg := obs.New(nil)
	c, err := New(Config{Mode: ModeReuse, BudgetBytes: device.MiB, MaxLag: 3, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Store([]int32{1, 2}, rows(t, []float32{1}, []float32{2})); err != nil {
		t.Fatal(err)
	}

	// Invalidate jumps the version past the whole lag window: every entry
	// misses on its next touch, with no eager sweep.
	c.Invalidate()
	if _, hits, _ := fetch(c, []int32{1, 2}, 1); hits != 0 {
		t.Fatal("invalidated rows still hit")
	}
	if got := reg.CounterValue("embcache.invalidations"); got != 1 {
		t.Fatalf("invalidations = %d", got)
	}

	if err := c.Store([]int32{5}, rows(t, []float32{5})); err != nil {
		t.Fatal(err)
	}
	c.Flush()
	if c.ResidentBytes() != 0 {
		t.Fatalf("flush left %d resident bytes", c.ResidentBytes())
	}
	if _, hits, _ := fetch(c, []int32{5}, 1); hits != 0 {
		t.Fatal("flushed row still hit")
	}
	if v, ok := reg.GaugeValue("embcache.resident_rows"); !ok || v != 0 {
		t.Fatalf("resident_rows gauge = %d after flush", v)
	}
}

func TestStoreShapeErrors(t *testing.T) {
	c, err := New(Config{Mode: ModeExact, BudgetBytes: device.MiB})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Store([]int32{1, 2}, tensor.New(1, 4)); err == nil {
		t.Fatal("row/nid count mismatch accepted")
	}
	if err := c.Store([]int32{1}, tensor.New(1, 4)); err != nil {
		t.Fatal(err)
	}
	if err := c.Store([]int32{2}, tensor.New(1, 8)); err == nil {
		t.Fatal("row dim change accepted")
	}
}

func TestRestrictDst(t *testing.T) {
	b := &graph.Block{
		NumDst:   3,
		NumSrc:   5,
		Ptr:      []int64{0, 2, 5, 6},
		SrcLocal: []int32{0, 3, 1, 3, 4, 2},
		EID:      []int32{0, 1, 2, 3, 4, 5},
		EdgeWt:   []float32{1, 2, 3, 4, 5, 6},
		DstNID:   []int32{10, 11, 12},
		SrcNID:   []int32{10, 11, 12, 20, 21},
	}
	sub, srcSel := restrictDst(b, []int32{0, 2})

	if sub.NumDst != 2 || sub.NumSrc != 3 {
		t.Fatalf("sub sizes %d/%d, want 2/3", sub.NumDst, sub.NumSrc)
	}
	wantSel := []int32{0, 2, 3}
	for i, s := range wantSel {
		if srcSel[i] != s {
			t.Fatalf("srcSel = %v, want %v", srcSel, wantSel)
		}
	}
	wantDst := []int32{10, 12}
	wantSrc := []int32{10, 12, 20}
	for i := range wantDst {
		if sub.DstNID[i] != wantDst[i] || sub.SrcNID[i] != wantDst[i] {
			t.Fatalf("DstNID %v / SrcNID %v: destinations must prefix sources", sub.DstNID, sub.SrcNID)
		}
	}
	for i := range wantSrc {
		if sub.SrcNID[i] != wantSrc[i] {
			t.Fatalf("SrcNID = %v, want %v", sub.SrcNID, wantSrc)
		}
	}
	wantPtr := []int64{0, 2, 3}
	wantLocal := []int32{0, 2, 1}
	wantEID := []int32{0, 1, 5}
	wantWt := []float32{1, 2, 6}
	for i := range wantPtr {
		if sub.Ptr[i] != wantPtr[i] {
			t.Fatalf("Ptr = %v, want %v", sub.Ptr, wantPtr)
		}
	}
	for i := range wantLocal {
		// EdgeWt is copied, never recomputed, so bitwise is the claim.
		if sub.SrcLocal[i] != wantLocal[i] || sub.EID[i] != wantEID[i] ||
			math.Float32bits(sub.EdgeWt[i]) != math.Float32bits(wantWt[i]) {
			t.Fatalf("edges: SrcLocal %v EID %v EdgeWt %v", sub.SrcLocal, sub.EID, sub.EdgeWt)
		}
	}
	// Every retained edge still names the same global endpoint pair.
	for i, d := range []int32{0, 2} {
		for e := sub.Ptr[i]; e < sub.Ptr[i+1]; e++ {
			orig := b.Ptr[d] + (e - sub.Ptr[i])
			if sub.SrcNID[sub.SrcLocal[e]] != b.SrcNID[b.SrcLocal[orig]] {
				t.Fatalf("edge %d of kept dst %d changed endpoint", e, d)
			}
		}
	}
}

func TestMeter(t *testing.T) {
	reg := obs.New(nil)
	m := NewMeter(reg)
	m.Observe([]int32{1, 2, 3})
	m.Observe([]int32{2, 3, 4})
	if got := reg.CounterValue("sample.frontier.reuse_nodes"); got != 2 {
		t.Fatalf("reuse_nodes = %d, want 2", got)
	}
	if got := reg.CounterValue("sample.frontier.total_nodes"); got != 6 {
		t.Fatalf("total_nodes = %d, want 6", got)
	}
	frac, ok := reg.GaugeValue("sample.frontier.reuse_frac_ppm")
	if !ok || frac != 2*1_000_000/6 {
		t.Fatalf("reuse_frac_ppm = %d (ok=%v)", frac, ok)
	}
	// Disjoint frontier: no new reuse.
	m.Observe([]int32{9, 10})
	if got := reg.CounterValue("sample.frontier.reuse_nodes"); got != 2 {
		t.Fatalf("disjoint frontier counted as reuse: %d", got)
	}
	var nilMeter *Meter
	nilMeter.Observe([]int32{1})
	m.Observe(nil)
}

func TestVersionGauge(t *testing.T) {
	reg := obs.New(nil)
	c, err := New(Config{Mode: ModeReuse, BudgetBytes: device.MiB, MaxLag: 2, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	c.BumpVersion()
	c.BumpVersion()
	if v, ok := reg.GaugeValue("embcache.version"); !ok || v != 2 {
		t.Fatalf("version gauge = %d (ok=%v), want 2", v, ok)
	}
	if c.Version() != 2 {
		t.Fatalf("Version() = %d", c.Version())
	}
	c.Invalidate()
	if c.Version() != 5 { // += maxLag+1
		t.Fatalf("post-invalidate version = %d, want 5", c.Version())
	}
}
