package embcache

import (
	"container/list"
	"fmt"
	"math"
	"sync"

	"betty/internal/device"
	"betty/internal/obs"
	"betty/internal/tensor"
)

// Config assembles a Cache.
type Config struct {
	// Mode is off/exact/reuse; New returns nil for ModeOff so callers can
	// thread the result unconditionally (all methods are nil-safe).
	Mode Mode
	// BudgetBytes bounds resident row bytes. Required when Ledger is nil.
	BudgetBytes int64
	// MaxLag is the maximum weight-version lag a reuse hit may carry.
	MaxLag int
	// Ledger, when non-nil, is the device ledger cache bytes are charged
	// to (shared with other caches); otherwise the cache creates its own
	// ledger of capacity BudgetBytes.
	Ledger *device.Device
	// Obs receives counters and gauges (nil is fine).
	Obs *obs.Registry
}

// entry is one cached layer-1 row. version records the weight version the
// row was computed under; staleness is version lag, checked lazily at
// lookup so invalidation is O(1).
type entry struct {
	nid     int32
	version uint64
	row     []float32
	buf     *device.Buffer
	elem    *list.Element
}

// Cache is a concurrency-safe versioned historical-embedding cache.
// Rows are copied in and out under the lock — no caller ever holds a
// reference into cache-owned memory, so eviction needs no pinning.
type Cache struct {
	mode   Mode
	maxLag uint64
	budget int64
	ledger *device.Device
	reg    *obs.Registry

	mu             sync.Mutex
	version        uint64
	entries        map[int32]*entry
	lru            *list.List // front = most recent; values are *entry
	residentBytes  int64
	rowDim         int
	maxObservedLag uint64
	hits, misses   int64
}

// New builds a cache, or nil when cfg.Mode is ModeOff.
func New(cfg Config) (*Cache, error) {
	if cfg.Mode == ModeOff {
		return nil, nil
	}
	if cfg.MaxLag < 0 {
		return nil, fmt.Errorf("embcache: negative max lag %d", cfg.MaxLag)
	}
	ledger := cfg.Ledger
	if ledger == nil {
		if cfg.BudgetBytes <= 0 {
			return nil, fmt.Errorf("embcache: budget must be positive, got %d", cfg.BudgetBytes)
		}
		ledger = device.New(cfg.BudgetBytes, device.CostModel{})
	} else if cfg.BudgetBytes <= 0 {
		return nil, fmt.Errorf("embcache: shared-ledger cache needs a positive self-budget, got %d", cfg.BudgetBytes)
	}
	c := &Cache{
		mode:    cfg.Mode,
		maxLag:  uint64(cfg.MaxLag),
		budget:  cfg.BudgetBytes,
		ledger:  ledger,
		reg:     cfg.Obs,
		entries: make(map[int32]*entry),
		lru:     list.New(),
	}
	c.reg.Set("embcache.budget_bytes", cfg.BudgetBytes)
	c.reg.Set("embcache.version", 0)
	return c, nil
}

// Active reports whether forwards should consult the cache.
func (c *Cache) Active() bool { return c != nil && c.mode != ModeOff }

// Mode returns the cache mode (ModeOff for a nil cache).
func (c *Cache) Mode() Mode {
	if c == nil {
		return ModeOff
	}
	return c.mode
}

// Version returns the current weight version.
func (c *Cache) Version() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.version
}

// Dim returns the cached row width, or 0 before the first Store.
func (c *Cache) Dim() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rowDim
}

// MaxObservedLag returns the largest version lag any reuse hit has
// carried — the quantity the staleness-bound test pins against MaxLag.
func (c *Cache) MaxObservedLag() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.maxObservedLag
}

// Stats returns the cumulative FetchInto hit and miss counts (zeros for
// a nil cache). In exact mode every lookup reports a miss by
// construction — compute is never skipped.
func (c *Cache) Stats() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// ResidentBytes returns the ledger-charged bytes currently held.
func (c *Cache) ResidentBytes() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.residentBytes
}

// BumpVersion advances the weight version by one — called after every
// optimizer step. Entries are not touched: staleness is evaluated lazily
// at lookup against the new version.
func (c *Cache) BumpVersion() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.version++
	v := c.version
	c.mu.Unlock()
	c.reg.Set("embcache.version", int64(v))
}

// Invalidate advances the version past every entry's reuse window —
// called on checkpoint load, when the weights change discontinuously.
// Entries drop lazily on their next lookup; no eager sweep.
func (c *Cache) Invalidate() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.version += c.maxLag + 1
	v := c.version
	c.mu.Unlock()
	c.reg.Add("embcache.invalidations", 1)
	c.reg.Set("embcache.version", int64(v))
}

// Flush drops every entry and releases its ledger charge — called when a
// server shuts down, after the batch worker has fully drained.
func (c *Cache) Flush() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		c.ledger.Free(e.buf)
		c.residentBytes -= e.buf.Bytes()
	}
	c.lru.Init()
	c.entries = make(map[int32]*entry)
	c.publishResidency()
}

// FetchInto looks up nids and copies each hit's row into dst(i). Only
// reuse mode returns hits; exact mode always reports misses so the
// caller computes in full (verification happens in VerifyAndStore).
// Returns the per-node hit mask and the hit count.
func (c *Cache) FetchInto(nids []int32, dst func(i int) []float32) ([]bool, int) {
	if !c.Active() {
		return make([]bool, len(nids)), 0
	}
	hit := make([]bool, len(nids))
	if c.mode != ModeReuse {
		c.mu.Lock()
		c.misses += int64(len(nids))
		c.mu.Unlock()
		c.reg.Add("embcache.misses", int64(len(nids)))
		return hit, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	hits, staleDrops := 0, 0
	for i, nid := range nids {
		e, ok := c.entries[nid]
		if !ok {
			continue
		}
		lag := c.version - e.version
		if lag > c.maxLag {
			c.removeLocked(e)
			staleDrops++
			continue
		}
		copy(dst(i), e.row)
		c.lru.MoveToFront(e.elem)
		if lag > c.maxObservedLag {
			c.maxObservedLag = lag
		}
		c.reg.Observe("embcache.hit_lag", int64(lag))
		hit[i] = true
		hits++
	}
	c.hits += int64(hits)
	c.misses += int64(len(nids) - hits)
	c.reg.Add("embcache.hits", int64(hits))
	c.reg.Add("embcache.misses", int64(len(nids)-hits))
	if staleDrops > 0 {
		c.reg.Add("embcache.stale_drops", int64(staleDrops))
		c.publishResidency()
	}
	return hit, hits
}

// Store inserts rows of t (one per nid, at the current version), evicting
// LRU entries as needed to fit the budget. Rows that cannot fit even
// after evicting everything else are skipped, never partially stored.
func (c *Cache) Store(nids []int32, t *tensor.Tensor) error {
	return c.store(nids, t, false)
}

// VerifyAndStore is the exact-mode path: any cached row already at the
// current version must be bitwise equal to the freshly recomputed row in
// t. A mismatch is a loud error — it means the cache and the forward
// disagree about the same weights, which is exactly the corruption the
// self-check mode exists to catch. Rows are then (re)stored as in Store.
func (c *Cache) VerifyAndStore(nids []int32, t *tensor.Tensor) error {
	return c.store(nids, t, true)
}

func (c *Cache) store(nids []int32, t *tensor.Tensor, verify bool) error {
	if !c.Active() || len(nids) == 0 {
		return nil
	}
	if t.Rows() != len(nids) {
		return fmt.Errorf("embcache: %d rows for %d node ids", t.Rows(), len(nids))
	}
	dim := t.Cols()
	rowBytes := int64(dim) * 4
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rowDim == 0 {
		c.rowDim = dim
	} else if c.rowDim != dim {
		return fmt.Errorf("embcache: row dim changed %d -> %d", c.rowDim, dim)
	}
	budgetSkips := 0
	for i, nid := range nids {
		fresh := t.Row(i)
		if e, ok := c.entries[nid]; ok {
			if verify && e.version == c.version {
				if j := mismatch(e.row, fresh); j >= 0 {
					c.reg.Add("embcache.verify_failures", 1)
					return fmt.Errorf("embcache: exact-mode verify failed for node %d at version %d: cached[%d]=%x recomputed=%x",
						nid, c.version, j, math.Float32bits(e.row[j]), math.Float32bits(fresh[j]))
				}
			}
			copy(e.row, fresh)
			e.version = c.version
			c.lru.MoveToFront(e.elem)
			continue
		}
		buf, err := c.allocLocked(rowBytes)
		if err != nil {
			budgetSkips++
			continue
		}
		e := &entry{nid: nid, version: c.version, row: make([]float32, dim), buf: buf}
		copy(e.row, fresh)
		e.elem = c.lru.PushFront(e)
		c.entries[nid] = e
		c.residentBytes += buf.Bytes()
	}
	if budgetSkips > 0 {
		c.reg.Add("embcache.budget_skips", int64(budgetSkips))
	}
	c.publishResidency()
	return nil
}

// allocLocked charges rowBytes to the ledger, evicting this cache's own
// LRU tail until both the self-budget and the (possibly shared) ledger
// accept the charge. Fails only when the row cannot fit at all.
func (c *Cache) allocLocked(rowBytes int64) (*device.Buffer, error) {
	for {
		overBudget := c.residentBytes+rowBytes > c.budget
		var buf *device.Buffer
		var err error
		if !overBudget {
			buf, err = c.ledger.Alloc(rowBytes, "embcache.row")
			if err == nil {
				return buf, nil
			}
		}
		tail := c.lru.Back()
		if tail == nil {
			if overBudget {
				return nil, fmt.Errorf("embcache: row of %d bytes exceeds budget %d", rowBytes, c.budget)
			}
			return nil, err
		}
		c.removeLocked(tail.Value.(*entry))
		c.reg.Add("embcache.evictions", 1)
	}
}

func (c *Cache) removeLocked(e *entry) {
	c.lru.Remove(e.elem)
	delete(c.entries, e.nid)
	c.ledger.Free(e.buf)
	c.residentBytes -= e.buf.Bytes()
}

func (c *Cache) publishResidency() {
	c.reg.Set("embcache.resident_bytes", c.residentBytes)
	c.reg.Set("embcache.resident_rows", int64(c.lru.Len()))
	c.reg.Set("embcache.resident_peak_bytes", c.ledger.Peak())
}

// mismatch returns the first index where a and b differ bitwise, or -1.
// NaN payloads and signed zeros count as differences: the exact-mode
// contract is bit equality, not numeric equality.
func mismatch(a, b []float32) int {
	if len(a) != len(b) {
		return 0
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return i
		}
	}
	return -1
}
