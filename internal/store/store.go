package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"betty/internal/dataset"
	"betty/internal/graph"
	"betty/internal/tensor"
)

// PackConfig parameterizes the converter.
type PackConfig struct {
	// ShardRows is the feature-shard height (default DefaultShardRows).
	// Smaller shards mean finer-grained eviction; the cache budget must
	// hold at least one shard.
	ShardRows int
	// ChunkEdges bounds the edges per graph chunk (default 256Ki).
	ChunkEdges int
}

// Pack writes ds to path in the store format. The feature rows are pulled
// through the dataset's active FeatureSource, so an already-disk-backed
// dataset can be repacked (e.g. with a different shard height).
func Pack(path string, ds *dataset.Dataset, cfg PackConfig) (err error) {
	if cfg.ShardRows <= 0 {
		cfg.ShardRows = DefaultShardRows
	}
	if cfg.ChunkEdges <= 0 {
		cfg.ChunkEdges = defaultChunkEdges
	}
	src := ds.FeatureSource()
	n := int(ds.Graph.NumNodes())
	if src.Rows() != n {
		return fmt.Errorf("store: %d feature rows for %d graph nodes", src.Rows(), n)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("store: creating %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("store: closing %s: %w", path, cerr)
		}
	}()

	w := &countingWriter{w: f}
	if _, err := w.Write([]byte(headMagic)); err != nil {
		return fmt.Errorf("store: writing magic: %w", err)
	}
	writeBlob := func(payload []byte) (blobRef, error) {
		ref := blobRef{Off: w.n, Len: int64(len(payload)), CRC: crc32.ChecksumIEEE(payload)}
		_, werr := w.Write(payload)
		return ref, werr
	}

	h := &header{
		Version:    formatVersion,
		Name:       ds.Name,
		NumNodes:   n,
		Dim:        src.Dim(),
		NumClasses: ds.NumClasses,
		ShardRows:  cfg.ShardRows,
		HasWeights: ds.Graph.HasWeights(),
	}

	// Graph: edges re-materialized in edge-ID order so the rebuilt CSR/CSC
	// assigns identical edge IDs, then chunked.
	esrc, edst := ds.Graph.Edges()
	for lo := 0; lo < len(esrc); lo += cfg.ChunkEdges {
		hi := lo + cfg.ChunkEdges
		if hi > len(esrc) {
			hi = len(esrc)
		}
		var w32 []float32
		if h.HasWeights {
			w32 = make([]float32, hi-lo)
			for i := range w32 {
				w32[i] = ds.Graph.EdgeWeight(int32(lo + i))
			}
		}
		payload, perr := encodeEdgeChunk(esrc[lo:hi], edst[lo:hi], w32)
		if perr != nil {
			return perr
		}
		ref, werr := writeBlob(payload)
		if werr != nil {
			return fmt.Errorf("store: writing edge chunk: %w", werr)
		}
		h.EdgeChunks = append(h.EdgeChunks, ref)
	}
	if len(esrc) == 0 {
		// Zero-edge graphs still round-trip: one empty chunk keeps the
		// decoder's "at least one chunk" shape without special cases.
		payload, _ := encodeEdgeChunk(nil, nil, nil)
		ref, werr := writeBlob(payload)
		if werr != nil {
			return fmt.Errorf("store: writing edge chunk: %w", werr)
		}
		h.EdgeChunks = append(h.EdgeChunks, ref)
	}

	for _, blob := range []struct {
		ref *blobRef
		vs  []int32
	}{
		{&h.Labels, ds.Labels},
		{&h.Train, ds.TrainIdx},
		{&h.Val, ds.ValIdx},
		{&h.Test, ds.TestIdx},
	} {
		ref, werr := writeBlob(encodeInt32s(blob.vs))
		if werr != nil {
			return fmt.Errorf("store: writing int32 blob: %w", werr)
		}
		*blob.ref = ref
	}

	// Feature shards: gather each row range through the source into a
	// staging tensor, then encode. The staging tensor is one shard tall,
	// so packing never materializes the full matrix.
	nids := make([]int32, 0, cfg.ShardRows)
	for id := 0; id < h.numShards(); id++ {
		start, end := h.shardRowRange(id)
		nids = nids[:0]
		for r := start; r < end; r++ {
			nids = append(nids, int32(r))
		}
		stage := tensor.New(len(nids), h.Dim)
		if gerr := src.GatherInto(stage, nids); gerr != nil {
			return fmt.Errorf("store: packing shard %d: %w", id, gerr)
		}
		payload, perr := EncodeShard(len(nids), h.Dim, stage.Data)
		if perr != nil {
			return perr
		}
		ref, werr := writeBlob(payload)
		if werr != nil {
			return fmt.Errorf("store: writing shard %d: %w", id, werr)
		}
		h.Shards = append(h.Shards, ref)
	}

	hdr, hdrCRC, err := encodeHeader(h)
	if err != nil {
		return err
	}
	hdrOff := w.n
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("store: writing header: %w", err)
	}
	trailer := make([]byte, trailerSize)
	binary.LittleEndian.PutUint64(trailer[0:], uint64(hdrOff))
	binary.LittleEndian.PutUint64(trailer[8:], uint64(len(hdr)))
	binary.LittleEndian.PutUint32(trailer[16:], hdrCRC)
	copy(trailer[20:], tailMagic)
	if _, err := w.Write(trailer); err != nil {
		return fmt.Errorf("store: writing trailer: %w", err)
	}
	return nil
}

// countingWriter tracks the write offset for blobRef bookkeeping.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// Store is an open store file. Metadata is validated at Open; payloads are
// read and checksum-verified on demand. ReadAt is used for all payload
// reads, so a Store is safe for concurrent loads.
type Store struct {
	f    *os.File
	path string
	size int64
	hdr  *header
}

// Open validates path's framing — both magics, the trailer, the header
// checksum and geometry, and every payload reference — and returns a
// handle. Any inconsistency is a descriptive error naming what failed.
func Open(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: opening %s: %w", path, err)
	}
	s, err := openFile(f, path)
	if err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

func openFile(f *os.File, path string) (*Store, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("store: stat %s: %w", path, err)
	}
	size := fi.Size()
	if size < int64(len(headMagic)+trailerSize) {
		return nil, fmt.Errorf("store: %s is %d bytes, smaller than the minimal framing (%d)",
			path, size, len(headMagic)+trailerSize)
	}
	magic := make([]byte, len(headMagic))
	if _, err := f.ReadAt(magic, 0); err != nil {
		return nil, fmt.Errorf("store: reading magic of %s: %w", path, err)
	}
	if string(magic) != headMagic {
		return nil, fmt.Errorf("store: %s is not a betty store (bad magic %q)", path, magic)
	}
	trailer := make([]byte, trailerSize)
	if _, err := f.ReadAt(trailer, size-int64(trailerSize)); err != nil {
		return nil, fmt.Errorf("store: reading trailer of %s: %w", path, err)
	}
	if got := string(trailer[20:]); got != tailMagic {
		return nil, fmt.Errorf("store: %s trailer magic %q, want %q — truncated or overwritten file", path, got, tailMagic)
	}
	hdrOff := int64(binary.LittleEndian.Uint64(trailer[0:]))
	hdrLen := int64(binary.LittleEndian.Uint64(trailer[8:]))
	hdrCRC := binary.LittleEndian.Uint32(trailer[16:])
	if hdrOff < int64(len(headMagic)) || hdrLen < 0 || hdrOff+hdrLen != size-int64(trailerSize) {
		return nil, fmt.Errorf("store: %s header reference [%d,+%d) is inconsistent with file size %d",
			path, hdrOff, hdrLen, size)
	}
	hdrBlob := make([]byte, hdrLen)
	if _, err := f.ReadAt(hdrBlob, hdrOff); err != nil {
		return nil, fmt.Errorf("store: reading header of %s: %w", path, err)
	}
	if got := crc32.ChecksumIEEE(hdrBlob); got != hdrCRC {
		return nil, fmt.Errorf("store: %s header checksum mismatch: file says %08x, content hashes to %08x",
			path, hdrCRC, got)
	}
	hdr, err := decodeHeader(hdrBlob)
	if err != nil {
		return nil, fmt.Errorf("%w (file %s)", err, path)
	}
	s := &Store{f: f, path: path, size: size, hdr: hdr}
	refs := append([]blobRef{hdr.Labels, hdr.Train, hdr.Val, hdr.Test}, hdr.EdgeChunks...)
	refs = append(refs, hdr.Shards...)
	for _, ref := range refs {
		if ref.Off < int64(len(headMagic)) || ref.Len < 0 || ref.Off+ref.Len > hdrOff {
			return nil, fmt.Errorf("store: %s payload reference [%d,+%d) escapes the payload region [%d,%d)",
				path, ref.Off, ref.Len, len(headMagic), hdrOff)
		}
	}
	return s, nil
}

// Close releases the file handle.
func (s *Store) Close() error { return s.f.Close() }

// Name returns the packed dataset's name.
func (s *Store) Name() string { return s.hdr.Name }

// NumNodes returns the node count.
func (s *Store) NumNodes() int { return s.hdr.NumNodes }

// Dim returns the feature width.
func (s *Store) Dim() int { return s.hdr.Dim }

// NumShards returns the feature-shard count.
func (s *Store) NumShards() int { return s.hdr.numShards() }

// ShardRows returns the configured shard height.
func (s *Store) ShardRows() int { return s.hdr.ShardRows }

// MaxShardBytes returns the decoded byte size of the largest shard — the
// minimum viable cache budget.
func (s *Store) MaxShardBytes() int64 {
	rows := s.hdr.ShardRows
	if s.hdr.NumNodes < rows {
		rows = s.hdr.NumNodes
	}
	return int64(rows) * int64(s.hdr.Dim) * 4
}

// FeatureBytes returns the decoded size of the full feature matrix — what
// an in-RAM dataset would keep resident.
func (s *Store) FeatureBytes() int64 {
	return int64(s.hdr.NumNodes) * int64(s.hdr.Dim) * 4
}

// readBlob reads and checksum-verifies one payload.
func (s *Store) readBlob(ref blobRef, what string) ([]byte, error) {
	blob := make([]byte, ref.Len)
	if _, err := s.f.ReadAt(blob, ref.Off); err != nil {
		return nil, fmt.Errorf("store: reading %s of %s: %w", what, s.path, err)
	}
	if got := crc32.ChecksumIEEE(blob); got != ref.CRC {
		return nil, fmt.Errorf("store: %s of %s is corrupt: checksum %08x, header expects %08x",
			what, s.path, got, ref.CRC)
	}
	return blob, nil
}

// Shard is one decoded feature shard: global rows [Start, Start+Rows).
type Shard struct {
	ID    int
	Start int
	Rows  int
	Dim   int
	Data  []float32
}

// Row returns the feature row of global node nid, which must lie in the
// shard's range.
func (sh *Shard) Row(nid int) []float32 {
	r := nid - sh.Start
	return sh.Data[r*sh.Dim : (r+1)*sh.Dim]
}

// Bytes returns the decoded payload size charged to the cache ledger.
func (sh *Shard) Bytes() int64 { return int64(sh.Rows) * int64(sh.Dim) * 4 }

// LoadShard reads, verifies, and decodes shard id. Cache users go through
// Cache.Pin instead; LoadShard is the uncached path (and the packer test
// surface).
func (s *Store) LoadShard(id int) (*Shard, error) {
	if id < 0 || id >= s.NumShards() {
		return nil, fmt.Errorf("store: shard %d out of range [0,%d)", id, s.NumShards())
	}
	blob, err := s.readBlob(s.hdr.Shards[id], fmt.Sprintf("feature shard %d", id))
	if err != nil {
		return nil, err
	}
	rows, dim, data, err := DecodeShard(blob)
	if err != nil {
		return nil, fmt.Errorf("%w (shard %d of %s)", err, id, s.path)
	}
	start, end := s.hdr.shardRowRange(id)
	if rows != end-start || dim != s.hdr.Dim {
		return nil, fmt.Errorf("store: shard %d of %s decodes to %dx%d, header expects %dx%d",
			id, s.path, rows, dim, end-start, s.hdr.Dim)
	}
	return &Shard{ID: id, Start: start, Rows: rows, Dim: dim, Data: data}, nil
}

// loadInt32s reads one int32 blob.
func (s *Store) loadInt32s(ref blobRef, what string) ([]int32, error) {
	blob, err := s.readBlob(ref, what)
	if err != nil {
		return nil, err
	}
	vs, err := decodeInt32s(blob)
	if err != nil {
		return nil, fmt.Errorf("%w (%s of %s)", err, what, s.path)
	}
	return vs, nil
}

// LoadGraph rebuilds the CSR/CSC graph from the edge chunks. Edge IDs are
// identical to the packed graph's because chunks preserve edge-ID order.
func (s *Store) LoadGraph() (*graph.Graph, error) {
	var src, dst []int32
	var w []float32
	for i, ref := range s.hdr.EdgeChunks {
		blob, err := s.readBlob(ref, fmt.Sprintf("edge chunk %d", i))
		if err != nil {
			return nil, err
		}
		cs, cd, cw, err := decodeEdgeChunk(blob)
		if err != nil {
			return nil, fmt.Errorf("%w (edge chunk %d of %s)", err, i, s.path)
		}
		if s.hdr.HasWeights != (cw != nil) && len(cs) > 0 {
			return nil, fmt.Errorf("store: edge chunk %d of %s weight presence disagrees with header", i, s.path)
		}
		src = append(src, cs...)
		dst = append(dst, cd...)
		w = append(w, cw...)
	}
	if !s.hdr.HasWeights {
		w = nil
	}
	g, err := graph.FromEdgesWeighted(int32(s.hdr.NumNodes), src, dst, w)
	if err != nil {
		return nil, fmt.Errorf("store: rebuilding graph of %s: %w", s.path, err)
	}
	return g, nil
}

// Dataset assembles a ready-to-train dataset whose graph, labels, and
// splits are loaded into RAM (they are small) and whose features stay on
// disk behind the given cache. The returned dataset's Features tensor is
// nil — the full matrix is never materialized.
func (s *Store) Dataset(c *Cache) (*dataset.Dataset, error) {
	if c == nil {
		return nil, fmt.Errorf("store: Dataset requires a cache (NewCache)")
	}
	if c.store != s {
		return nil, fmt.Errorf("store: cache belongs to a different store")
	}
	g, err := s.LoadGraph()
	if err != nil {
		return nil, err
	}
	labels, err := s.loadInt32s(s.hdr.Labels, "labels")
	if err != nil {
		return nil, err
	}
	if len(labels) != s.hdr.NumNodes {
		return nil, fmt.Errorf("store: %d labels for %d nodes in %s", len(labels), s.hdr.NumNodes, s.path)
	}
	train, err := s.loadInt32s(s.hdr.Train, "train split")
	if err != nil {
		return nil, err
	}
	val, err := s.loadInt32s(s.hdr.Val, "val split")
	if err != nil {
		return nil, err
	}
	test, err := s.loadInt32s(s.hdr.Test, "test split")
	if err != nil {
		return nil, err
	}
	return &dataset.Dataset{
		Name:       s.hdr.Name,
		Graph:      g,
		Source:     NewFeatures(c),
		Labels:     labels,
		NumClasses: s.hdr.NumClasses,
		TrainIdx:   train,
		ValIdx:     val,
		TestIdx:    test,
	}, nil
}
