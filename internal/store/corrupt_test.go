package store

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

// readAll fully exercises a store: header already validated by Open, then
// graph, labels, splits, and every feature shard. It returns the first
// error.
func readAll(st *Store) error {
	if _, err := st.LoadGraph(); err != nil {
		return err
	}
	c, err := NewCache(st, st.MaxShardBytes()*2, nil)
	if err != nil {
		return err
	}
	if _, err := st.Dataset(c); err != nil {
		return err
	}
	for id := 0; id < st.NumShards(); id++ {
		if _, err := st.LoadShard(id); err != nil {
			return err
		}
	}
	return nil
}

// Every single-byte corruption anywhere in the file must surface as a
// descriptive error somewhere between Open and a full read — never a
// panic, and never silently different data. The checksummed format makes
// this provable byte by byte; the test samples offsets across every
// region plus the structural hot spots.
func TestCorruptByteFlipMatrix(t *testing.T) {
	ds := genDataset(t, 300, 8, 11)
	goodPath := packTemp(t, ds, 64)
	good, err := os.ReadFile(goodPath)
	if err != nil {
		t.Fatal(err)
	}

	offsets := []int{0, 1, len(headMagic) - 1} // head magic
	for off := len(headMagic); off < len(good); off += len(good)/97 + 1 {
		offsets = append(offsets, off)
	}
	// Trailer structure: header offset, length, CRC, tail magic.
	for off := len(good) - trailerSize; off < len(good); off++ {
		offsets = append(offsets, off)
	}

	dir := t.TempDir()
	for _, off := range offsets {
		bad := append([]byte(nil), good...)
		bad[off] ^= 0x40
		path := filepath.Join(dir, "bad.betty")
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("offset %d: panicked: %v", off, r)
				}
			}()
			st, err := Open(path)
			if err == nil {
				err = readAll(st)
				st.Close()
			}
			if err == nil {
				t.Fatalf("offset %d: corruption read back cleanly", off)
			}
			if err.Error() == "" {
				t.Fatalf("offset %d: empty error message", off)
			}
		}()
	}
}

// Truncations at every structural boundary (and a few arbitrary cuts)
// must fail Open with a descriptive error, not panic and not succeed.
func TestTruncationMatrix(t *testing.T) {
	ds := genDataset(t, 300, 8, 12)
	goodPath := packTemp(t, ds, 64)
	good, err := os.ReadFile(goodPath)
	if err != nil {
		t.Fatal(err)
	}
	cuts := []int{0, 1, len(headMagic), trailerSize - 1, trailerSize,
		len(good) / 3, len(good) / 2, len(good) - trailerSize, len(good) - 1}
	dir := t.TempDir()
	for _, n := range cuts {
		path := filepath.Join(dir, "trunc.betty")
		if err := os.WriteFile(path, good[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("cut %d: panicked: %v", n, r)
				}
			}()
			st, err := Open(path)
			if err == nil {
				st.Close()
				t.Fatalf("cut %d: truncated file opened cleanly", n)
			}
		}()
	}
}

// A clean file read through the corruption harness stays bitwise-exact —
// the control arm proving the matrix above fails for the right reason.
func TestCorruptControlArm(t *testing.T) {
	ds := genDataset(t, 300, 8, 11)
	st := openTemp(t, packTemp(t, ds, 64))
	if err := readAll(st); err != nil {
		t.Fatal(err)
	}
	sh, err := st.LoadShard(0)
	if err != nil {
		t.Fatal(err)
	}
	for j, v := range sh.Row(0) {
		if math.Float32bits(v) != math.Float32bits(ds.Features.At(0, j)) {
			t.Fatal("clean read not bitwise identical")
		}
	}
}
