package store

import (
	"fmt"
	"strconv"
)

// Environment knob names (see the README knob table and bettyvet's envreg
// registry). Both follow the repository's hardened-parser discipline:
// empty means "unset" (zero value), anything else must parse cleanly or
// the run aborts — a typo'd budget must never silently train unbounded.
const (
	// EnvBudgetMiB bounds the shard cache's resident bytes.
	EnvBudgetMiB = "BETTY_STORE_BUDGET_MIB"
	// EnvShardRows sets the packer's feature-shard height.
	EnvShardRows = "BETTY_STORE_SHARD_ROWS"
)

// ParseBudgetMiB parses the BETTY_STORE_BUDGET_MIB value: "" means unset
// (returns 0), otherwise a positive MiB count.
func ParseBudgetMiB(v string) (int64, error) {
	if v == "" {
		return 0, nil
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("store: %s=%q: want a positive integer MiB count", EnvBudgetMiB, v)
	}
	return n, nil
}

// ParseShardRows parses the BETTY_STORE_SHARD_ROWS value: "" means unset
// (returns 0, callers fall back to DefaultShardRows), otherwise a positive
// row count.
func ParseShardRows(v string) (int, error) {
	if v == "" {
		return 0, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("store: %s=%q: want a positive integer row count", EnvShardRows, v)
	}
	return n, nil
}
