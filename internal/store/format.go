// Package store is the out-of-core dataset layer: a single-file, versioned,
// checksummed on-disk format (chunked CSR edge lists + partition-aligned
// feature shards) and a budget-pinned shard cache that bounds the resident
// feature footprint by a configured byte budget instead of the dataset
// size. The layout follows Armada's memory-efficient store and BatchGNN's
// partition-aligned CPU shards (see PAPERS.md): features are split into
// fixed-height row shards so a micro-batch gather touches only the shards
// its frontier lands in, and every resident shard byte is charged to a
// device.Device byte ledger whose capacity is the budget — residency can
// never exceed the budget by construction, and the ledger's peak is the
// proof the tests assert.
//
// File layout (all integers little-endian):
//
//	magic "BETYST1\n"
//	blob*            payloads written sequentially: edge chunks, labels,
//	                 splits, feature shards — each CRC32-checksummed
//	gob(header)      the table of contents: dataset metadata + one
//	                 blobRef{Off,Len,CRC} per payload
//	trailer          headerOff int64 | headerLen int64 | headerCRC uint32 |
//	                 tail magic "BETYEND\n"
//
// The header lives at the end so Pack streams payloads without knowing
// their count up front; Open reads the trailer first, validates both
// magics and the header checksum, then validates every blobRef against the
// file size. Payload checksums are verified on every load, so corruption
// surfaces as a descriptive error at the first touch — never a panic,
// never silent zeros.
package store

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"math"
)

const (
	// formatVersion is bumped on any incompatible layout change; Open
	// rejects mismatches loudly.
	formatVersion = 1

	headMagic = "BETYST1\n"
	tailMagic = "BETYEND\n"

	// trailerSize is headerOff + headerLen + headerCRC + tail magic.
	trailerSize = 8 + 8 + 4 + len(tailMagic)

	// DefaultShardRows is the feature-shard height used when the packer is
	// not told otherwise (BETTY_STORE_SHARD_ROWS).
	DefaultShardRows = 1024

	// defaultChunkEdges bounds the edges per graph chunk.
	defaultChunkEdges = 1 << 18
)

// blobRef locates one checksummed payload inside the store file.
type blobRef struct {
	Off int64
	Len int64
	CRC uint32
}

// header is the store's table of contents, gob-encoded at the end of the
// file. Field names are part of the format; renaming one is a version bump.
type header struct {
	Version    int
	Name       string
	NumNodes   int
	Dim        int
	NumClasses int
	// ShardRows is the row height of every feature shard except possibly
	// the last (the remainder shard).
	ShardRows  int
	HasWeights bool
	// EdgeChunks are the graph's edges in edge-ID order, chunked; Labels
	// and the three split blobs are int32 lists; Shards[i] holds feature
	// rows [i*ShardRows, min((i+1)*ShardRows, NumNodes)).
	EdgeChunks []blobRef
	Labels     blobRef
	Train      blobRef
	Val        blobRef
	Test       blobRef
	Shards     []blobRef
}

// numShards derives the shard count from the header geometry.
func (h *header) numShards() int {
	if h.ShardRows <= 0 {
		return 0
	}
	return (h.NumNodes + h.ShardRows - 1) / h.ShardRows
}

// shardRowRange returns the global row range [start, end) of shard id.
func (h *header) shardRowRange(id int) (start, end int) {
	start = id * h.ShardRows
	end = start + h.ShardRows
	if end > h.NumNodes {
		end = h.NumNodes
	}
	return start, end
}

// EncodeShard serializes one feature shard: u32 rows | u32 dim | rows*dim
// float32 values, little-endian, bit-exact (NaN payloads included, which
// is what lets the fuzz round-trip compare raw bits).
func EncodeShard(rows, dim int, data []float32) ([]byte, error) {
	if rows < 0 || dim < 0 {
		return nil, fmt.Errorf("store: negative shard shape %dx%d", rows, dim)
	}
	if len(data) != rows*dim {
		return nil, fmt.Errorf("store: shard payload has %d values, want %dx%d=%d",
			len(data), rows, dim, rows*dim)
	}
	out := make([]byte, 8+4*len(data))
	binary.LittleEndian.PutUint32(out[0:], uint32(rows))
	binary.LittleEndian.PutUint32(out[4:], uint32(dim))
	for i, v := range data {
		binary.LittleEndian.PutUint32(out[8+4*i:], math.Float32bits(v))
	}
	return out, nil
}

// DecodeShard parses an EncodeShard payload, validating the declared shape
// against the payload length. It never panics on malformed input.
func DecodeShard(blob []byte) (rows, dim int, data []float32, err error) {
	if len(blob) < 8 {
		return 0, 0, nil, fmt.Errorf("store: shard blob of %d bytes is shorter than its 8-byte shape header", len(blob))
	}
	rows = int(binary.LittleEndian.Uint32(blob[0:]))
	dim = int(binary.LittleEndian.Uint32(blob[4:]))
	// The product is computed in int64 so a hostile shape cannot overflow
	// into a small allocation.
	want := int64(rows) * int64(dim)
	if want > int64(len(blob)-8)/4 || int64(len(blob)-8) != want*4 {
		return 0, 0, nil, fmt.Errorf("store: shard declares %dx%d values but carries %d payload bytes",
			rows, dim, len(blob)-8)
	}
	data = make([]float32, want)
	for i := range data {
		data[i] = math.Float32frombits(binary.LittleEndian.Uint32(blob[8+4*i:]))
	}
	return rows, dim, data, nil
}

// encodeInt32s serializes an int32 list: u32 count | count int32 values.
func encodeInt32s(vs []int32) []byte {
	out := make([]byte, 4+4*len(vs))
	binary.LittleEndian.PutUint32(out[0:], uint32(len(vs)))
	for i, v := range vs {
		binary.LittleEndian.PutUint32(out[4+4*i:], uint32(v))
	}
	return out
}

// decodeInt32s parses an encodeInt32s payload.
func decodeInt32s(blob []byte) ([]int32, error) {
	if len(blob) < 4 {
		return nil, fmt.Errorf("store: int32 blob of %d bytes is shorter than its 4-byte count", len(blob))
	}
	n := int64(binary.LittleEndian.Uint32(blob[0:]))
	if int64(len(blob)-4) != n*4 {
		return nil, fmt.Errorf("store: int32 blob declares %d values but carries %d payload bytes", n, len(blob)-4)
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(blob[4+4*i:]))
	}
	return out, nil
}

// encodeEdgeChunk serializes one run of edges: u32 count | u8 hasWeights |
// count src int32 | count dst int32 | [count weight float32].
func encodeEdgeChunk(src, dst []int32, w []float32) ([]byte, error) {
	if len(src) != len(dst) {
		return nil, fmt.Errorf("store: edge chunk src/dst length mismatch: %d vs %d", len(src), len(dst))
	}
	if w != nil && len(w) != len(src) {
		return nil, fmt.Errorf("store: edge chunk has %d weights for %d edges", len(w), len(src))
	}
	n := len(src)
	size := 5 + 8*n
	if w != nil {
		size += 4 * n
	}
	out := make([]byte, size)
	binary.LittleEndian.PutUint32(out[0:], uint32(n))
	if w != nil {
		out[4] = 1
	}
	for i, v := range src {
		binary.LittleEndian.PutUint32(out[5+4*i:], uint32(v))
	}
	for i, v := range dst {
		binary.LittleEndian.PutUint32(out[5+4*n+4*i:], uint32(v))
	}
	for i, v := range w {
		binary.LittleEndian.PutUint32(out[5+8*n+4*i:], math.Float32bits(v))
	}
	return out, nil
}

// decodeEdgeChunk parses an encodeEdgeChunk payload.
func decodeEdgeChunk(blob []byte) (src, dst []int32, w []float32, err error) {
	if len(blob) < 5 {
		return nil, nil, nil, fmt.Errorf("store: edge chunk of %d bytes is shorter than its 5-byte header", len(blob))
	}
	n := int64(binary.LittleEndian.Uint32(blob[0:]))
	hasW := blob[4] == 1
	want := n * 8
	if hasW {
		want += n * 4
	}
	if int64(len(blob)-5) != want {
		return nil, nil, nil, fmt.Errorf("store: edge chunk declares %d edges (weights=%v) but carries %d payload bytes",
			n, hasW, len(blob)-5)
	}
	src = make([]int32, n)
	dst = make([]int32, n)
	for i := range src {
		src[i] = int32(binary.LittleEndian.Uint32(blob[5+4*i:]))
	}
	off := 5 + 4*int(n)
	for i := range dst {
		dst[i] = int32(binary.LittleEndian.Uint32(blob[off+4*i:]))
	}
	if hasW {
		off += 4 * int(n)
		w = make([]float32, n)
		for i := range w {
			w[i] = math.Float32frombits(binary.LittleEndian.Uint32(blob[off+4*i:]))
		}
	}
	return src, dst, w, nil
}

// encodeHeader gob-encodes the header and returns the bytes plus checksum.
func encodeHeader(h *header) ([]byte, uint32, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(h); err != nil {
		return nil, 0, fmt.Errorf("store: encoding header: %w", err)
	}
	return buf.Bytes(), crc32.ChecksumIEEE(buf.Bytes()), nil
}

// decodeHeader parses and validates a gob header blob.
func decodeHeader(blob []byte) (*header, error) {
	var h header
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&h); err != nil {
		return nil, fmt.Errorf("store: decoding header: %w", err)
	}
	if h.Version != formatVersion {
		return nil, fmt.Errorf("store: format version %d, this build reads version %d", h.Version, formatVersion)
	}
	if h.NumNodes < 0 || h.Dim <= 0 || h.ShardRows <= 0 || h.NumClasses <= 0 {
		return nil, fmt.Errorf("store: header geometry invalid: %d nodes, dim %d, shard rows %d, %d classes",
			h.NumNodes, h.Dim, h.ShardRows, h.NumClasses)
	}
	if got, want := len(h.Shards), h.numShards(); got != want {
		return nil, fmt.Errorf("store: header lists %d shards, geometry implies %d", got, want)
	}
	return &h, nil
}
