package store

import (
	"fmt"

	"betty/internal/parallel"
	"betty/internal/tensor"
)

// Features is the disk-backed dataset.FeatureSource: every gather groups
// its node IDs by shard, pins each touched shard through the cache, copies
// the rows, and unpins. Row bytes come off the disk bit-exact, so a gather
// through Features is bitwise identical to the same gather against the
// in-RAM matrix the store was packed from — the property the out-of-core
// equivalence tests pin.
//
// Concurrency: shards are processed by parallel.For with one shard per
// work item, and each worker holds at most one pin at a time, which is the
// progress guarantee Cache.Pin's blocking relies on. Output rows are
// disjoint, so the parallel copy is deterministic.
type Features struct {
	cache *Cache
}

// NewFeatures wraps a cache as a FeatureSource.
func NewFeatures(c *Cache) *Features { return &Features{cache: c} }

// Rows returns the number of feature rows.
func (f *Features) Rows() int { return f.cache.store.NumNodes() }

// Dim returns the feature width.
func (f *Features) Dim() int { return f.cache.store.Dim() }

// ResidentBytes is the cache's current residency — bounded by the budget,
// not the dataset size.
func (f *Features) ResidentBytes() int64 { return f.cache.ResidentBytes() }

// GatherInto copies the rows for the given global node IDs into out.
func (f *Features) GatherInto(out *tensor.Tensor, nids []int32) error {
	if out.Rows() != len(nids) || out.Cols() != f.Dim() {
		return fmt.Errorf("store: gather into %dx%d, want %dx%d",
			out.Rows(), out.Cols(), len(nids), f.Dim())
	}
	rows := f.Rows()
	shardRows := f.cache.store.ShardRows()
	for _, nid := range nids {
		if nid < 0 || int(nid) >= rows {
			return fmt.Errorf("store: gather node %d out of range [0,%d)", nid, rows)
		}
	}

	// Bucket gather positions by shard with a counting sort: deterministic
	// (no map iteration) and O(nids + shards). touched lists the non-empty
	// shards in ascending ID order; pos holds each shard's positions into
	// nids, contiguous in the order they appear.
	nShards := f.cache.store.NumShards()
	counts := make([]int32, nShards+1)
	for _, nid := range nids {
		counts[int(nid)/shardRows+1]++
	}
	for s := 0; s < nShards; s++ {
		counts[s+1] += counts[s]
	}
	pos := make([]int32, len(nids))
	cursor := make([]int32, nShards)
	for s := range cursor {
		cursor[s] = counts[s]
	}
	for i, nid := range nids {
		s := int(nid) / shardRows
		pos[cursor[s]] = int32(i)
		cursor[s]++
	}
	var touched []int32
	for s := 0; s < nShards; s++ {
		if counts[s+1] > counts[s] {
			touched = append(touched, int32(s))
		}
	}

	// One shard per work item: a worker pins, copies its shard's rows, and
	// unpins before taking the next shard, so at most Workers() shards are
	// pinned at any instant and every worker can always make progress.
	errs := make([]error, len(touched))
	parallel.For(len(touched), 1, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			sid := int(touched[t])
			sh, err := f.cache.Pin(sid)
			if err != nil {
				errs[t] = err
				continue
			}
			for _, p := range pos[counts[sid]:counts[sid+1]] {
				copy(out.Row(int(p)), sh.Row(int(nids[p])))
			}
			f.cache.Unpin(sh)
		}
	})
	for _, err := range errs {
		if err != nil {
			return fmt.Errorf("store: gather: %w", err)
		}
	}
	return nil
}

// GatherRow copies one row into dst.
func (f *Features) GatherRow(dst []float32, nid int32) error {
	if len(dst) != f.Dim() {
		return fmt.Errorf("store: gather row into len %d, want %d", len(dst), f.Dim())
	}
	if nid < 0 || int(nid) >= f.Rows() {
		return fmt.Errorf("store: gather node %d out of range [0,%d)", nid, f.Rows())
	}
	sh, err := f.cache.Pin(int(nid) / f.cache.store.ShardRows())
	if err != nil {
		return fmt.Errorf("store: gather row %d: %w", nid, err)
	}
	copy(dst, sh.Row(int(nid)))
	f.cache.Unpin(sh)
	return nil
}
