package store

import (
	"math"
	"os"
	"testing"
	"time"

	"betty/internal/dataset"
	"betty/internal/obs"
	"betty/internal/serve"
)

// TestOutOfCoreEndToEnd is the headline proof of this subsystem: a graph
// whose feature matrix is 10× the cache budget trains and serves
// bitwise-identically to the in-RAM path, while the byte ledger proves
// residency never exceeded the budget. When STORE_E2E_LEDGER names a
// path, the run's full metric registry is written there as NDJSON (CI
// uploads it as an artifact).
func TestOutOfCoreEndToEnd(t *testing.T) {
	ds := genDataset(t, 4096, 48, 41) // 4096×48×4B = 768 KiB of features
	st := openTemp(t, packTemp(t, ds, 128))

	budget := st.FeatureBytes() / 10
	if st.FeatureBytes() < 10*budget {
		t.Fatalf("feature matrix %d not ≥ 10× budget %d", st.FeatureBytes(), budget)
	}
	reg := obs.New(obs.NewFakeClock(0, 1))
	cache, err := NewCache(st, budget, reg)
	if err != nil {
		t.Fatal(err)
	}
	diskDS, err := st.Dataset(cache)
	if err != nil {
		t.Fatal(err)
	}

	// Train both paths with the same seed.
	const epochs = 3
	ram := buildSAGE(t, ds, 9)
	disk := buildSAGE(t, diskDS, 9)
	disk.Engine.SetObs(reg)
	ramLosses := trainLosses(t, ram, epochs)
	diskLosses := trainLosses(t, disk, epochs)
	for e := range ramLosses {
		if ramLosses[e] != diskLosses[e] {
			t.Fatalf("epoch %d: out-of-core loss %x != in-RAM loss %x", e+1, diskLosses[e], ramLosses[e])
		}
	}
	ra, da := paramBits(ram), paramBits(disk)
	for i := range ra {
		if ra[i] != da[i] {
			t.Fatalf("trained parameter %d differs between in-RAM and out-of-core", i)
		}
	}
	va, err := ram.Engine.ValAccuracy()
	if err != nil {
		t.Fatal(err)
	}
	vb, err := disk.Engine.ValAccuracy()
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(va) != math.Float64bits(vb) {
		t.Fatalf("validation accuracy differs: %v vs %v", va, vb)
	}

	// Serve both trained models and compare predictions bitwise. The
	// disk-backed server's feature cache misses route through the shard
	// cache row by row.
	nodes := make([]int32, 64)
	for i := range nodes {
		nodes[i] = int32((i * 61) % 4096)
	}
	predict := func(t *testing.T, srvDS *serveDataset) [][]float32 {
		cfg := serve.Defaults()
		cfg.Fanouts = []int{3, 3}
		cfg.Seed = 9
		cfg.MaxWait = 0
		srv, err := serve.New(srvDS.ds, srvDS.model, cfg)
		if err != nil {
			t.Fatal(err)
		}
		srv.Start()
		defer srv.Close()
		out, err := srv.Predict(nodes, 10*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	ramPred := predict(t, &serveDataset{ds: ds, model: ram.Model})
	diskPred := predict(t, &serveDataset{ds: diskDS, model: disk.Model})
	if len(ramPred) != len(diskPred) {
		t.Fatal("prediction count mismatch")
	}
	for i := range ramPred {
		for j := range ramPred[i] {
			if math.Float32bits(ramPred[i][j]) != math.Float32bits(diskPred[i][j]) {
				t.Fatalf("prediction %d[%d] differs between in-RAM and out-of-core serving", i, j)
			}
		}
	}

	// The ledger proves budget safety: the cache's high-water mark and the
	// published gauge both stayed at or under budget for the entire run.
	if cache.PeakBytes() > cache.Budget() {
		t.Fatalf("ledger peak %d exceeded budget %d", cache.PeakBytes(), cache.Budget())
	}
	if peak, ok := reg.GaugeValue("store.resident_peak_bytes"); !ok || peak > budget {
		t.Fatalf("published peak %d (ok=%v) exceeded budget %d", peak, ok, budget)
	}
	if reg.CounterValue("store.evictions") == 0 {
		t.Fatal("a 10×-over-budget run must evict")
	}

	if path := os.Getenv("STORE_E2E_LEDGER"); path != "" {
		if err := reg.WriteFile(path); err != nil {
			t.Fatalf("writing ledger artifact: %v", err)
		}
	}
}

// serveDataset pairs a dataset with the model trained on it.
type serveDataset struct {
	ds    *dataset.Dataset
	model any
}
