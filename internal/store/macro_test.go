package store

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"betty/internal/core"
	"betty/internal/dataset"
	"betty/internal/nn"
	"betty/internal/obs"
)

func buildSAGE(t *testing.T, ds *dataset.Dataset, seed uint64) *core.Setup {
	t.Helper()
	agg, err := nn.ParseAggregator("mean")
	if err != nil {
		t.Fatal(err)
	}
	setup, err := core.BuildSAGE(ds, core.Options{
		Hidden: 16, Fanouts: []int{3, 3}, LR: 0.01, Seed: seed, FixedK: 2,
		Aggregator: agg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return setup
}

// trainLosses runs epochs and returns the bit patterns of each epoch loss.
func trainLosses(t *testing.T, setup *core.Setup, epochs int) []uint64 {
	t.Helper()
	out := make([]uint64, epochs)
	for e := 0; e < epochs; e++ {
		st, err := setup.Engine.TrainEpochMicro()
		if err != nil {
			t.Fatal(err)
		}
		out[e] = math.Float64bits(st.Loss)
	}
	return out
}

func paramBits(setup *core.Setup) []uint32 {
	var bits []uint32
	for _, p := range setup.Model.Params() {
		for _, v := range p.Value.Data {
			bits = append(bits, math.Float32bits(v))
		}
	}
	return bits
}

// A persisted-frontier run must be bitwise identical to a resampled run
// with the same seed — losses every epoch and final parameters — and the
// obs counters must prove the reuse: exactly one resample for the train
// seed set, reuse every later epoch.
func TestMacroReuseEquivalence(t *testing.T) {
	ds := genDataset(t, 800, 12, 31)
	const epochs = 3

	base := buildSAGE(t, ds, 7)
	wantLosses := trainLosses(t, base, epochs)

	dir := t.TempDir()
	reg := obs.New(obs.NewFakeClock(0, 1))
	withMacro := buildSAGE(t, ds, 7)
	withMacro.Engine.SetObs(reg)
	mc := NewMacroCache(filepath.Join(dir, "train.macro"),
		withMacro.Engine.Sampler.ConfigKey(), reg)
	withMacro.Engine.Frontiers = mc

	gotLosses := trainLosses(t, withMacro, epochs)
	for e := range wantLosses {
		if gotLosses[e] != wantLosses[e] {
			t.Fatalf("epoch %d loss differs: %x vs %x", e+1, gotLosses[e], wantLosses[e])
		}
	}
	a, b := paramBits(base), paramBits(withMacro)
	if len(a) != len(b) {
		t.Fatal("parameter count mismatch")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("parameter %d differs", i)
		}
	}
	if got := reg.CounterValue("macro.resample"); got != 1 {
		t.Fatalf("macro.resample = %d, want exactly 1 (first epoch only)", got)
	}
	if got := reg.CounterValue("macro.reuse"); got != epochs-1 {
		t.Fatalf("macro.reuse = %d, want %d", got, epochs-1)
	}
	if reg.CounterValue("macro.saves") != 1 {
		t.Fatal("macrobatch not persisted")
	}

	// A fresh process (new MacroCache over the same file) reuses from disk
	// with zero resampling.
	reg2 := obs.New(obs.NewFakeClock(0, 1))
	fresh := buildSAGE(t, ds, 7)
	fresh.Engine.SetObs(reg2)
	fresh.Engine.Frontiers = NewMacroCache(filepath.Join(dir, "train.macro"),
		fresh.Engine.Sampler.ConfigKey(), reg2)
	freshLosses := trainLosses(t, fresh, epochs)
	for e := range wantLosses {
		if freshLosses[e] != wantLosses[e] {
			t.Fatalf("disk-reused epoch %d loss differs", e+1)
		}
	}
	if got := reg2.CounterValue("macro.resample"); got != 0 {
		t.Fatalf("disk reuse resampled %d times, want 0", got)
	}
	if reg2.CounterValue("macro.disk_loads") == 0 {
		t.Fatal("no disk load recorded")
	}
}

// A macro file written under one sampler configuration must refuse to
// serve another: silently training on stale frontiers would be a wrong
// model, not a slow one.
func TestMacroKeyMismatch(t *testing.T) {
	ds := genDataset(t, 400, 8, 32)
	dir := t.TempDir()
	path := filepath.Join(dir, "m.macro")

	setup := buildSAGE(t, ds, 7)
	setup.Engine.Frontiers = NewMacroCache(path, setup.Engine.Sampler.ConfigKey(), nil)
	if _, err := setup.Engine.TrainEpochMicro(); err != nil {
		t.Fatal(err)
	}

	other := NewMacroCache(path, setup.Engine.Sampler.ConfigKey()^1, nil)
	if _, _, err := other.Load(ds.TrainIdx); err == nil {
		t.Fatal("sampler-config mismatch accepted")
	}

	// Different seed set under the right key: same file, loud mismatch
	// (the file stores one seed set's frontier).
	right := NewMacroCache(path, setup.Engine.Sampler.ConfigKey(), nil)
	if _, _, err := right.Load(ds.TrainIdx[:len(ds.TrainIdx)-1]); err == nil {
		t.Fatal("seed-set mismatch accepted")
	}

	// A missing file is not an error — it is "sample and save".
	gone := NewMacroCache(filepath.Join(dir, "nope.macro"), 1, nil)
	if _, ok, err := gone.Load(ds.TrainIdx); err != nil || ok {
		t.Fatalf("missing file: ok=%v err=%v, want miss", ok, err)
	}
}

// A corrupted macro file must fail loudly, never panic or decode to
// stale frontiers.
func TestMacroCorruption(t *testing.T) {
	ds := genDataset(t, 400, 8, 33)
	path := filepath.Join(t.TempDir(), "m.macro")
	setup := buildSAGE(t, ds, 7)
	mc := NewMacroCache(path, setup.Engine.Sampler.ConfigKey(), nil)
	setup.Engine.Frontiers = mc
	if _, err := setup.Engine.TrainEpochMicro(); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, off := range []int{0, len(blob) / 2, len(blob) - 1} {
		bad := append([]byte(nil), blob...)
		bad[off] ^= 0x20
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		fresh := NewMacroCache(path, setup.Engine.Sampler.ConfigKey(), nil)
		if _, _, err := fresh.Load(ds.TrainIdx); err == nil {
			t.Fatalf("offset %d: corrupted macro file accepted", off)
		}
	}
	for _, n := range []int{0, 4, len(blob) - 1} {
		if err := os.WriteFile(path, blob[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		fresh := NewMacroCache(path, setup.Engine.Sampler.ConfigKey(), nil)
		if _, _, err := fresh.Load(ds.TrainIdx); err == nil {
			t.Fatalf("truncation %d: accepted", n)
		}
	}
}
