package store

import (
	"math"
	"path/filepath"
	"strings"
	"testing"

	"betty/internal/dataset"
	"betty/internal/obs"
)

// genDataset builds a small synthetic dataset for store tests.
func genDataset(t testing.TB, nodes, dim int, seed uint64) *dataset.Dataset {
	t.Helper()
	ds, err := dataset.Generate(dataset.GenConfig{
		Name: "store-test", Nodes: nodes, AvgDegree: 6, FeatureDim: dim,
		NumClasses: 5, Homophily: 0.8, PowerLawExp: 2.3, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// packTemp packs ds into a temp file and returns its path.
func packTemp(t testing.TB, ds *dataset.Dataset, shardRows int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ds.betty")
	if err := Pack(path, ds, PackConfig{ShardRows: shardRows}); err != nil {
		t.Fatal(err)
	}
	return path
}

func openTemp(t testing.TB, path string) *Store {
	t.Helper()
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func TestPackOpenRoundTrip(t *testing.T) {
	ds := genDataset(t, 500, 12, 1)
	st := openTemp(t, packTemp(t, ds, 64))

	if st.Name() != ds.Name || st.NumNodes() != int(ds.Graph.NumNodes()) || st.Dim() != ds.FeatureDim() {
		t.Fatalf("header mismatch: %s/%d/%d", st.Name(), st.NumNodes(), st.Dim())
	}
	if st.ShardRows() != 64 {
		t.Fatalf("shard rows = %d", st.ShardRows())
	}
	wantShards := (500 + 63) / 64
	if st.NumShards() != wantShards {
		t.Fatalf("shards = %d, want %d", st.NumShards(), wantShards)
	}

	// Every shard decodes to the exact feature rows it covers.
	row := 0
	for id := 0; id < st.NumShards(); id++ {
		sh, err := st.LoadShard(id)
		if err != nil {
			t.Fatal(err)
		}
		if sh.Start != row {
			t.Fatalf("shard %d starts at %d, want %d", id, sh.Start, row)
		}
		for r := 0; r < sh.Rows; r++ {
			got := sh.Row(row + r)
			want := ds.Features.Row(row + r)
			for j := range want {
				if math.Float32bits(got[j]) != math.Float32bits(want[j]) {
					t.Fatalf("shard %d row %d col %d: %v != %v", id, row+r, j, got[j], want[j])
				}
			}
		}
		row += sh.Rows
	}
	if row != 500 {
		t.Fatalf("shards cover %d rows, want 500", row)
	}

	// The graph round-trips edge-exactly.
	g, err := st.LoadGraph()
	if err != nil {
		t.Fatal(err)
	}
	as, ad := ds.Graph.Edges()
	bs, bd := g.Edges()
	if len(as) != len(bs) {
		t.Fatalf("edge count %d != %d", len(bs), len(as))
	}
	for i := range as {
		if as[i] != bs[i] || ad[i] != bd[i] {
			t.Fatalf("edge %d mismatch", i)
		}
	}
}

func TestShardRangeErrors(t *testing.T) {
	ds := genDataset(t, 200, 8, 2)
	st := openTemp(t, packTemp(t, ds, 64))
	for _, id := range []int{-1, st.NumShards()} {
		if _, err := st.LoadShard(id); err == nil {
			t.Fatalf("shard %d accepted", id)
		}
	}
}

// The disk-backed Dataset must be bitwise-indistinguishable from the
// in-RAM one: labels, splits, and every gathered feature row.
func TestDatasetEquivalence(t *testing.T) {
	ds := genDataset(t, 700, 10, 3)
	st := openTemp(t, packTemp(t, ds, 128))
	cache, err := NewCache(st, st.MaxShardBytes()*2, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := st.Dataset(cache)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumClasses != ds.NumClasses || len(got.Labels) != len(ds.Labels) {
		t.Fatal("labels/classes mismatch")
	}
	for i := range ds.Labels {
		if got.Labels[i] != ds.Labels[i] {
			t.Fatalf("label %d mismatch", i)
		}
	}
	for _, pair := range [][2][]int32{
		{got.TrainIdx, ds.TrainIdx}, {got.ValIdx, ds.ValIdx}, {got.TestIdx, ds.TestIdx},
	} {
		if len(pair[0]) != len(pair[1]) {
			t.Fatal("split size mismatch")
		}
		for i := range pair[1] {
			if pair[0][i] != pair[1][i] {
				t.Fatal("split content mismatch")
			}
		}
	}
	// Gather every node in a scrambled order through the cache.
	nids := make([]int32, 700)
	for i := range nids {
		nids[i] = int32((i * 37) % 700)
	}
	f, err := got.GatherFeatures(nids)
	if err != nil {
		t.Fatal(err)
	}
	for i, nid := range nids {
		for j := 0; j < f.Cols(); j++ {
			if math.Float32bits(f.At(i, j)) != math.Float32bits(ds.Features.At(int(nid), j)) {
				t.Fatalf("gathered row %d col %d mismatch", nid, j)
			}
		}
	}
	if cache.PeakBytes() > cache.Budget() {
		t.Fatalf("peak %d exceeds budget %d", cache.PeakBytes(), cache.Budget())
	}
}

func TestDatasetRequiresCache(t *testing.T) {
	ds := genDataset(t, 200, 8, 4)
	st := openTemp(t, packTemp(t, ds, 64))
	if _, err := st.Dataset(nil); err == nil {
		t.Fatal("nil cache accepted")
	}
	other := openTemp(t, packTemp(t, ds, 64))
	cache, err := NewCache(other, other.MaxShardBytes(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Dataset(cache); err == nil {
		t.Fatal("cache for a different store accepted")
	}
}

func TestNewCacheBudgetErrors(t *testing.T) {
	ds := genDataset(t, 300, 16, 5)
	st := openTemp(t, packTemp(t, ds, 128))
	if _, err := NewCache(st, 0, nil); err == nil {
		t.Fatal("zero budget accepted")
	}
	if _, err := NewCache(st, st.MaxShardBytes()-1, nil); err == nil {
		t.Fatal("budget below one shard accepted")
	} else if !strings.Contains(err.Error(), EnvShardRows) {
		t.Fatalf("sub-shard budget error %q should suggest %s", err, EnvShardRows)
	}
	c, err := NewCache(st, st.MaxShardBytes(), obs.New(obs.NewFakeClock(0, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if c.Budget() != st.MaxShardBytes() {
		t.Fatalf("budget = %d", c.Budget())
	}
}

func TestParseBudgetMiB(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		ok   bool
	}{
		{"", 0, true},
		{"64", 64, true},
		{"1", 1, true},
		{"0", 0, false},
		{"-3", 0, false},
		{"4.5", 0, false},
		{"lots", 0, false},
	}
	for _, c := range cases {
		got, err := ParseBudgetMiB(c.in)
		if c.ok != (err == nil) || got != c.want {
			t.Fatalf("ParseBudgetMiB(%q) = %d, %v", c.in, got, err)
		}
		if err != nil && !strings.Contains(err.Error(), EnvBudgetMiB) {
			t.Fatalf("error %q does not name %s", err, EnvBudgetMiB)
		}
	}
}

func TestParseShardRows(t *testing.T) {
	cases := []struct {
		in   string
		want int
		ok   bool
	}{
		{"", 0, true},
		{"128", 128, true},
		{"0", 0, false},
		{"-1", 0, false},
		{"x", 0, false},
	}
	for _, c := range cases {
		got, err := ParseShardRows(c.in)
		if c.ok != (err == nil) || got != c.want {
			t.Fatalf("ParseShardRows(%q) = %d, %v", c.in, got, err)
		}
		if err != nil && !strings.Contains(err.Error(), EnvShardRows) {
			t.Fatalf("error %q does not name %s", err, EnvShardRows)
		}
	}
}
