package store

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzShardRoundTrip drives the shard codec from both ends. A shape plus
// raw float bits must encode and decode back bitwise-identically (NaN
// payloads included), and an arbitrary blob handed to DecodeShard must
// either fail loudly or decode to something that re-encodes to the exact
// same bytes — never panic, never silently fabricate rows.
func FuzzShardRoundTrip(f *testing.F) {
	f.Add(uint16(4), uint16(3), []byte{1, 2, 3, 4, 0xff, 0xff, 0xc0, 0x7f})
	f.Add(uint16(0), uint16(0), []byte{})
	f.Add(uint16(1), uint16(1), []byte{0, 0, 0x80, 0x7f})
	// A well-formed encoded blob, to seed the decode-first direction.
	good, err := EncodeShard(2, 2, []float32{1, 2, 3, 4})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(uint16(2), uint16(2), good)

	f.Fuzz(func(t *testing.T, rowsRaw, dimRaw uint16, raw []byte) {
		rows := int(rowsRaw % 128)
		dim := int(dimRaw % 64)

		// Direction 1: encode a shaped matrix built from the raw bytes,
		// decode it, and demand bitwise identity.
		data := make([]float32, rows*dim)
		for i := range data {
			var word uint32
			if (i+1)*4 <= len(raw) {
				word = binary.LittleEndian.Uint32(raw[i*4:])
			} else {
				word = uint32(i) * 0x9e3779b9
			}
			data[i] = math.Float32frombits(word)
		}
		blob, err := EncodeShard(rows, dim, data)
		if err != nil {
			t.Fatalf("encode of valid shape %dx%d failed: %v", rows, dim, err)
		}
		gr, gd, got, err := DecodeShard(blob)
		if err != nil {
			t.Fatalf("decode of fresh encode failed: %v", err)
		}
		if gr != rows || gd != dim || len(got) != len(data) {
			t.Fatalf("shape %dx%d round-tripped to %dx%d", rows, dim, gr, gd)
		}
		for i := range data {
			if math.Float32bits(got[i]) != math.Float32bits(data[i]) {
				t.Fatalf("element %d: %x != %x", i, math.Float32bits(got[i]), math.Float32bits(data[i]))
			}
		}

		// Direction 2: the raw bytes as a blob. Must not panic; on success
		// the decode must re-encode to the identical blob (no silent
		// truncation or zero-fill).
		r2, d2, v2, err := DecodeShard(raw)
		if err == nil {
			re, err := EncodeShard(r2, d2, v2)
			if err != nil {
				t.Fatalf("re-encode of decoded blob failed: %v", err)
			}
			if string(re) != string(raw) {
				t.Fatalf("decode accepted a blob that does not re-encode identically (%d vs %d bytes)", len(re), len(raw))
			}
		}
	})
}

// FuzzInt32RoundTrip covers the label/split codec the same way.
func FuzzInt32RoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 7, 0, 0, 0})
	f.Fuzz(func(t *testing.T, raw []byte) {
		vs, err := decodeInt32s(raw)
		if err == nil {
			re := encodeInt32s(vs)
			if string(re) != string(raw) {
				t.Fatalf("decode accepted a blob that does not re-encode identically")
			}
		}
		n := len(raw) / 4
		vals := make([]int32, n)
		for i := range vals {
			vals[i] = int32(binary.LittleEndian.Uint32(raw[i*4:]))
		}
		back, err := decodeInt32s(encodeInt32s(vals))
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		for i := range vals {
			if back[i] != vals[i] {
				t.Fatalf("element %d mismatch", i)
			}
		}
	})
}
