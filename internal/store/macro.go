package store

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"sync"

	"betty/internal/graph"
	"betty/internal/obs"
)

const macroMagic = "BETYMB1\n"

// MacroCache persists sampled frontiers (the full-batch block list) so an
// epoch can reuse the macrobatch sampled by a previous epoch — or a
// previous run — instead of resampling it (BatchGNN's precomputed
// macrobatch). The repository's sampler derives every random stream from
// (seed, seeds[0], layer), so a reused frontier is bitwise identical to
// what resampling would have produced; persistence trades the sampling
// walk for one sequential read.
//
// Safety: the file embeds the sampler configuration key and a hash of the
// seed set. Loading with a different sampler config or seed set fails
// loudly — a stale macrobatch silently training on the wrong frontier is
// exactly the corruption this layer exists to refuse.
type MacroCache struct {
	path string
	key  uint64
	reg  *obs.Registry

	mu sync.Mutex
	// mem holds frontiers already loaded or saved this process, keyed by
	// seed-set hash: epochs after the first hit RAM, not disk.
	mem map[uint64][]*graph.Block
}

// NewMacroCache persists frontiers at path, bound to the given sampler
// configuration key (sample.Sampler.ConfigKey). The registry may be nil.
func NewMacroCache(path string, key uint64, reg *obs.Registry) *MacroCache {
	return &MacroCache{path: path, key: key, reg: reg, mem: make(map[uint64][]*graph.Block)}
}

// macroFile is the gob payload: one persisted frontier.
type macroFile struct {
	Version   int
	Key       uint64
	SeedsHash uint64
	Blocks    []macroBlock
}

// macroBlock mirrors graph.Block's exported fields (the unexported memo
// caches rebuild lazily after load).
type macroBlock struct {
	NumSrc, NumDst int
	Ptr            []int64
	SrcLocal       []int32
	EID            []int32
	EdgeWt         []float32
	SrcNID         []int32
	DstNID         []int32
}

// hashSeeds folds the seed list through splitmix64 so reordered or edited
// seed sets collide with negligible probability.
func hashSeeds(seeds []int32) uint64 {
	h := uint64(0x9e3779b97f4a7c15) ^ uint64(len(seeds))
	for _, s := range seeds {
		h ^= uint64(uint32(s))
		h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
		h = (h ^ (h >> 27)) * 0x94d049bb133111eb
		h ^= h >> 31
	}
	return h
}

// Load returns the persisted frontier for seeds, with ok=false when
// nothing has been persisted yet (first epoch). A file whose sampler key
// or seed hash disagrees is an error, not a miss.
func (m *MacroCache) Load(seeds []int32) ([]*graph.Block, bool, error) {
	sh := hashSeeds(seeds)
	m.mu.Lock()
	defer m.mu.Unlock()
	if blocks, ok := m.mem[sh]; ok {
		m.reg.Add("macro.reuse", 1)
		return blocks, true, nil
	}
	blob, err := os.ReadFile(m.path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("store: reading macrobatch %s: %w", m.path, err)
	}
	mf, err := decodeMacro(blob, m.path)
	if err != nil {
		return nil, false, err
	}
	if mf.Key != m.key {
		return nil, false, fmt.Errorf("store: macrobatch %s was sampled under config key %016x, this run uses %016x — "+
			"delete the file or match the sampler configuration", m.path, mf.Key, m.key)
	}
	if mf.SeedsHash != sh {
		return nil, false, fmt.Errorf("store: macrobatch %s covers a different seed set (hash %016x, want %016x)",
			m.path, mf.SeedsHash, sh)
	}
	blocks := make([]*graph.Block, len(mf.Blocks))
	for i, mb := range mf.Blocks {
		blocks[i] = &graph.Block{
			NumSrc: mb.NumSrc, NumDst: mb.NumDst,
			Ptr: mb.Ptr, SrcLocal: mb.SrcLocal, EID: mb.EID, EdgeWt: mb.EdgeWt,
			SrcNID: mb.SrcNID, DstNID: mb.DstNID,
		}
	}
	m.mem[sh] = blocks
	m.reg.Add("macro.reuse", 1)
	m.reg.Add("macro.disk_loads", 1)
	return blocks, true, nil
}

// Save persists the frontier sampled for seeds and primes the in-memory
// reuse map. The write is atomic (temp file + rename), so a crash mid-save
// leaves either the old frontier or none.
func (m *MacroCache) Save(seeds []int32, blocks []*graph.Block) error {
	sh := hashSeeds(seeds)
	mf := macroFile{Version: formatVersion, Key: m.key, SeedsHash: sh, Blocks: make([]macroBlock, len(blocks))}
	for i, b := range blocks {
		mf.Blocks[i] = macroBlock{
			NumSrc: b.NumSrc, NumDst: b.NumDst,
			Ptr: b.Ptr, SrcLocal: b.SrcLocal, EID: b.EID, EdgeWt: b.EdgeWt,
			SrcNID: b.SrcNID, DstNID: b.DstNID,
		}
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&mf); err != nil {
		return fmt.Errorf("store: encoding macrobatch: %w", err)
	}
	blob := make([]byte, len(macroMagic)+4, len(macroMagic)+4+payload.Len())
	copy(blob, macroMagic)
	binary.LittleEndian.PutUint32(blob[len(macroMagic):], crc32.ChecksumIEEE(payload.Bytes()))
	blob = append(blob, payload.Bytes()...)
	tmp := m.path + ".tmp"
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return fmt.Errorf("store: writing macrobatch: %w", err)
	}
	if err := os.Rename(tmp, m.path); err != nil {
		return fmt.Errorf("store: installing macrobatch: %w", err)
	}
	m.mu.Lock()
	m.mem[sh] = blocks
	m.mu.Unlock()
	m.reg.Add("macro.saves", 1)
	return nil
}

// decodeMacro validates framing and checksum and parses the payload.
func decodeMacro(blob []byte, path string) (*macroFile, error) {
	if len(blob) < len(macroMagic)+4 {
		return nil, fmt.Errorf("store: macrobatch %s is %d bytes, shorter than its framing", path, len(blob))
	}
	if string(blob[:len(macroMagic)]) != macroMagic {
		return nil, fmt.Errorf("store: %s is not a betty macrobatch (bad magic %q)", path, blob[:len(macroMagic)])
	}
	crc := binary.LittleEndian.Uint32(blob[len(macroMagic):])
	payload := blob[len(macroMagic)+4:]
	if got := crc32.ChecksumIEEE(payload); got != crc {
		return nil, fmt.Errorf("store: macrobatch %s is corrupt: checksum %08x, file expects %08x", path, got, crc)
	}
	var mf macroFile
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&mf); err != nil {
		return nil, fmt.Errorf("store: decoding macrobatch %s: %w", path, err)
	}
	if mf.Version != formatVersion {
		return nil, fmt.Errorf("store: macrobatch %s is format version %d, this build reads version %d",
			path, mf.Version, formatVersion)
	}
	return &mf, nil
}
