package store

import (
	"errors"
	"math"
	"sync"
	"testing"

	"betty/internal/obs"
	"betty/internal/parallel"
	"betty/internal/tensor"
)

var errShardMismatch = errors.New("pinned shard row differs from in-RAM features")

// gatherAll pulls every node's features through src in a scrambled order,
// in chunks, and returns the concatenated matrix.
func gatherAll(t *testing.T, src interface {
	Rows() int
	Dim() int
	GatherInto(*tensor.Tensor, []int32) error
}, stride int) *tensor.Tensor {
	t.Helper()
	n := src.Rows()
	nids := make([]int32, n)
	for i := range nids {
		nids[i] = int32((i * 131) % n)
	}
	out := tensor.New(n, src.Dim())
	for lo := 0; lo < n; lo += stride {
		hi := min(lo+stride, n)
		chunk := tensor.New(hi-lo, src.Dim())
		if err := src.GatherInto(chunk, nids[lo:hi]); err != nil {
			t.Fatal(err)
		}
		copy(out.Data[lo*src.Dim():], chunk.Data)
	}
	return out
}

// The eviction invariants, under concurrency and an adversarially tiny
// budget: results bitwise equal to an unbounded run, ledger high-water
// never above budget, and the obs gauges agreeing with the ledger.
func TestEvictionInvariants(t *testing.T) {
	ds := genDataset(t, 1500, 24, 21)
	path := packTemp(t, ds, 64) // ~24 shards of 6KiB

	for _, workers := range []int{1, 8} {
		prev := parallel.SetWorkers(workers)
		st := openTemp(t, path)
		reg := obs.New(obs.NewFakeClock(0, 1))
		// Tiny budget: barely two shards resident at once.
		cache, err := NewCache(st, st.MaxShardBytes()*2, reg)
		if err != nil {
			t.Fatal(err)
		}
		got := gatherAll(t, NewFeatures(cache), 193)
		parallel.SetWorkers(prev)

		// Compare against the in-RAM matrix directly (same scrambled order).
		n, dim := 1500, 24
		for i := 0; i < n; i++ {
			nid := (i * 131) % n
			for j := 0; j < dim; j++ {
				if math.Float32bits(got.At(i, j)) != math.Float32bits(ds.Features.At(nid, j)) {
					t.Fatalf("workers=%d: row %d col %d differs from in-RAM", workers, nid, j)
				}
			}
		}
		if cache.PeakBytes() > cache.Budget() {
			t.Fatalf("workers=%d: ledger peak %d exceeds budget %d", workers, cache.PeakBytes(), cache.Budget())
		}
		if peak, ok := reg.GaugeValue("store.resident_peak_bytes"); !ok || peak > cache.Budget() {
			t.Fatalf("workers=%d: gauge peak %d (ok=%v) vs budget %d", workers, peak, ok, cache.Budget())
		}
		if reg.CounterValue("store.evictions") == 0 {
			t.Fatalf("workers=%d: a 2-shard budget over 24 shards must evict", workers)
		}
		if reg.CounterValue("store.shard_misses") == 0 {
			t.Fatalf("workers=%d: no shard loads recorded", workers)
		}
	}
}

// A pinned shard must survive arbitrary eviction pressure: its data stays
// valid and re-pinning it is a hit, not a reload.
func TestPinnedShardSurvivesEviction(t *testing.T) {
	ds := genDataset(t, 1000, 16, 22)
	st := openTemp(t, packTemp(t, ds, 64))
	reg := obs.New(obs.NewFakeClock(0, 1))
	cache, err := NewCache(st, st.MaxShardBytes()*3, reg)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := cache.Pin(2)
	if err != nil {
		t.Fatal(err)
	}
	snapshot := append([]float32(nil), sh.Data...)

	// Churn every other shard through the remaining budget.
	for round := 0; round < 3; round++ {
		for id := 0; id < st.NumShards(); id++ {
			if id == 2 {
				continue
			}
			other, err := cache.Pin(id)
			if err != nil {
				t.Fatal(err)
			}
			cache.Unpin(other)
		}
	}
	for i := range snapshot {
		if math.Float32bits(sh.Data[i]) != math.Float32bits(snapshot[i]) {
			t.Fatal("pinned shard data changed under eviction pressure")
		}
	}
	misses := reg.CounterValue("store.shard_misses")
	again, err := cache.Pin(2)
	if err != nil {
		t.Fatal(err)
	}
	if again != sh {
		t.Fatal("re-pinning a pinned shard reloaded it")
	}
	if reg.CounterValue("store.shard_misses") != misses {
		t.Fatal("re-pinning a pinned shard counted as a miss")
	}
	if reg.CounterValue("store.shard_hits") == 0 {
		t.Fatal("no hits recorded")
	}
	cache.Unpin(again)
	cache.Unpin(sh)
	if cache.PeakBytes() > cache.Budget() {
		t.Fatalf("peak %d exceeds budget %d", cache.PeakBytes(), cache.Budget())
	}
}

// Concurrent raw pinners at a one-shard budget: every worker makes
// progress (pin waits, not deadlock), and the ledger never overshoots.
func TestConcurrentPinOneShardBudget(t *testing.T) {
	ds := genDataset(t, 600, 8, 23)
	st := openTemp(t, packTemp(t, ds, 64))
	reg := obs.New(obs.NewFakeClock(0, 1))
	cache, err := NewCache(st, st.MaxShardBytes(), reg)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				id := (w*7 + i) % st.NumShards()
				sh, err := cache.Pin(id)
				if err != nil {
					errs[w] = err
					return
				}
				want := ds.Features.At(sh.Start, 0)
				if math.Float32bits(sh.Row(sh.Start)[0]) != math.Float32bits(want) {
					cache.Unpin(sh)
					errs[w] = errShardMismatch
					return
				}
				cache.Unpin(sh)
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	if cache.PeakBytes() > cache.Budget() {
		t.Fatalf("peak %d exceeds one-shard budget %d", cache.PeakBytes(), cache.Budget())
	}
	if reg.CounterValue("store.pin_waits") == 0 {
		t.Log("note: no pin waits observed (schedule-dependent, not a failure)")
	}
}

func TestUnpairedUnpinPanics(t *testing.T) {
	ds := genDataset(t, 200, 8, 24)
	st := openTemp(t, packTemp(t, ds, 64))
	cache, err := NewCache(st, st.MaxShardBytes(), nil)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := cache.Pin(0)
	if err != nil {
		t.Fatal(err)
	}
	cache.Unpin(sh)
	defer func() {
		if recover() == nil {
			t.Fatal("double Unpin did not panic")
		}
	}()
	cache.Unpin(sh)
}
