package store

import (
	"container/list"
	"fmt"
	"sync"

	"betty/internal/device"
	"betty/internal/obs"
)

// Cache is the budget-pinned shard cache: it loads feature shards on
// demand, keeps them resident up to a byte budget, and evicts under an
// LRU-with-pin discipline — a pinned shard (one a gather is actively
// copying from) is never evicted; when every resident shard is pinned and
// the budget is exhausted, Pin blocks until another gather unpins.
//
// Accounting runs through a device.Device byte ledger (the same ledger
// type the memory.Planner budgets against) whose capacity is the budget:
// every resident shard byte is Alloc'd, every eviction Frees, so the
// ledger's Used can never exceed the budget by construction and its Peak
// is the high-water proof the out-of-core tests assert. The ledger rounds
// to device.AllocGranularity, which only makes the bound stricter.
//
// Deadlock-freedom: each gather worker pins at most one shard at a time
// (see Features.GatherInto), so some worker can always finish its copy and
// unpin — a waiting Pin is woken by the next Unpin. A single shard larger
// than the whole budget can never fit and fails fast instead of blocking.
type Cache struct {
	store  *Store
	ledger *device.Device
	reg    *obs.Registry

	mu   sync.Mutex
	cond *sync.Cond
	// lru is the eviction order over resident, unpinned shards: front is
	// most recently unpinned. Pinned shards are not in the list.
	lru *list.List
	// resident maps shard ID to its cache entry.
	resident map[int]*cacheEntry
}

type cacheEntry struct {
	shard *Shard
	buf   *device.Buffer
	pins  int
	// elem is the shard's LRU position while unpinned, nil while pinned.
	elem *list.Element
}

// NewCache builds a cache over st with the given byte budget. The registry
// may be nil; when set it receives the hit/miss/eviction counters and the
// resident/pinned gauges the CI ledger artifact exports.
func NewCache(st *Store, budget int64, reg *obs.Registry) (*Cache, error) {
	if budget <= 0 {
		return nil, fmt.Errorf("store: cache budget %d must be positive", budget)
	}
	if min := st.MaxShardBytes(); budget < min {
		return nil, fmt.Errorf("store: cache budget %d cannot hold one %d-byte shard — "+
			"raise the budget or repack with smaller BETTY_STORE_SHARD_ROWS", budget, min)
	}
	c := &Cache{
		store:    st,
		ledger:   device.New(budget, device.CostModel{}),
		reg:      reg,
		lru:      list.New(),
		resident: make(map[int]*cacheEntry),
	}
	c.cond = sync.NewCond(&c.mu)
	reg.Set("store.budget_bytes", budget)
	return c, nil
}

// Budget returns the configured byte budget.
func (c *Cache) Budget() int64 { return c.ledger.Capacity() }

// ResidentBytes returns the ledger's current residency.
func (c *Cache) ResidentBytes() int64 { return c.ledger.Used() }

// PeakBytes returns the ledger's high-water mark — the number the
// out-of-core tests compare against Budget.
func (c *Cache) PeakBytes() int64 { return c.ledger.Peak() }

// Pin returns shard id resident and pinned: the shard cannot be evicted
// until the matching Unpin. Pin blocks while the budget is exhausted by
// other pinned shards; it fails on I/O errors, corruption, or an id out of
// range. Every Pin must be paired with an Unpin (bettyvet's pooldisc
// enforces the pairing outside this package).
func (c *Cache) Pin(id int) (*Shard, error) {
	c.mu.Lock()
	for {
		if e, ok := c.resident[id]; ok {
			if e.elem != nil {
				c.lru.Remove(e.elem)
				e.elem = nil
			}
			e.pins++
			c.publishLocked()
			c.reg.Add("store.shard_hits", 1)
			c.mu.Unlock()
			return e.shard, nil
		}
		need := c.shardBytes(id)
		if c.evictUntilLocked(need) {
			break
		}
		// Everything resident is pinned and the budget cannot take this
		// shard: wait for an Unpin to free eviction candidates.
		c.reg.Add("store.pin_waits", 1)
		c.cond.Wait()
	}
	// Reserve the budget before the disk read, release the lock during it:
	// the reservation keeps concurrent Pins from overcommitting while the
	// I/O runs unlocked.
	buf, err := c.ledger.Alloc(c.shardBytes(id), fmt.Sprintf("shard-%d", id))
	if err != nil {
		// evictUntilLocked made room under the lock, so the ledger cannot
		// refuse; a failure here is a genuine bookkeeping bug.
		c.mu.Unlock()
		return nil, fmt.Errorf("store: cache ledger refused a reservation it had room for: %w", err)
	}
	c.mu.Unlock()

	sh, err := c.store.LoadShard(id)

	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil {
		c.ledger.Free(buf)
		c.cond.Broadcast()
		c.reg.Add("store.load_errors", 1)
		return nil, err
	}
	if e, ok := c.resident[id]; ok {
		// A concurrent Pin loaded the same shard while we read: keep the
		// established entry, drop our duplicate load.
		c.ledger.Free(buf)
		c.cond.Broadcast()
		if e.elem != nil {
			c.lru.Remove(e.elem)
			e.elem = nil
		}
		e.pins++
		c.publishLocked()
		return e.shard, nil
	}
	c.resident[id] = &cacheEntry{shard: sh, buf: buf, pins: 1}
	c.reg.Add("store.shard_misses", 1)
	c.reg.Add("store.loaded_bytes", sh.Bytes())
	c.publishLocked()
	// A waiter wanting this same shard can now share the pin.
	c.cond.Broadcast()
	return sh, nil
}

// Unpin releases one pin on sh. When the last pin drops, the shard stays
// resident and becomes evictable at the front of the LRU order.
func (c *Cache) Unpin(sh *Shard) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.resident[sh.ID]
	if !ok || e.pins <= 0 {
		panic(fmt.Sprintf("store: Unpin of shard %d which is not pinned", sh.ID))
	}
	e.pins--
	if e.pins == 0 {
		e.elem = c.lru.PushFront(e.shard.ID)
		// Budget may now be reclaimable: wake waiting Pins.
		c.cond.Broadcast()
	}
	c.publishLocked()
}

// shardBytes returns the ledger charge for shard id without loading it.
func (c *Cache) shardBytes(id int) int64 {
	start, end := c.store.hdr.shardRowRange(id)
	return int64(end-start) * int64(c.store.hdr.Dim) * 4
}

// evictUntilLocked evicts LRU shards until need more bytes fit under the
// budget (ledger-rounded). It reports false when the remaining resident
// set is entirely pinned and still too large — the caller must wait.
func (c *Cache) evictUntilLocked(need int64) bool {
	rounded := (need + device.AllocGranularity - 1) / device.AllocGranularity * device.AllocGranularity
	for c.ledger.Used()+rounded > c.ledger.Capacity() {
		back := c.lru.Back()
		if back == nil {
			return false
		}
		id := back.Value.(int)
		e := c.resident[id]
		c.lru.Remove(back)
		delete(c.resident, id)
		c.ledger.Free(e.buf)
		c.reg.Add("store.evictions", 1)
	}
	return true
}

// publishLocked exports the residency gauges. Called with the mutex held,
// so the gauge sequence is consistent with the ledger.
func (c *Cache) publishLocked() {
	if c.reg == nil {
		return
	}
	c.reg.Set("store.resident_bytes", c.ledger.Used())
	c.reg.Set("store.resident_peak_bytes", c.ledger.Peak())
	pinned := 0
	for _, e := range c.resident {
		if e.pins > 0 {
			pinned++
		}
	}
	c.reg.Set("store.pinned_shards", int64(pinned))
	c.reg.Set("store.resident_shards", int64(len(c.resident)))
}
