package nn

import (
	"fmt"

	"betty/internal/graph"
	"betty/internal/tensor"
)

// BlockLayer is one GNN layer that can be applied to a single bipartite
// block — the unit of layer-wise forward execution. All conv layers in
// this package satisfy it.
type BlockLayer interface {
	Forward(tp *tensor.Tape, b *graph.Block, h *tensor.Var) *tensor.Var
}

// FusedBlockLayer is the optional fused-tier interface (DESIGN.md §13):
// layers that implement it run gather→aggregate→bias→ReLU in fused
// kernels, with the inter-layer ReLU folded in. Fusion is bitwise-exact,
// so which path executes never changes a prediction byte.
type FusedBlockLayer interface {
	ForwardFused(tp *tensor.Tape, b *graph.Block, h *tensor.Var, relu bool) *tensor.Var
}

// LayerStack extracts the per-layer modules of a supported model. Applying
// them one at a time through ApplyBlockLayer records exactly the op
// sequence the model's own Forward records, so per-layer execution is
// bitwise identical to the whole-model forward — the property the
// inference paths (core.BatchInference, core.LayerwiseInference) and the
// embedding cache's partial-skip path (internal/embcache) all rely on.
func LayerStack(model any) ([]BlockLayer, error) {
	switch m := model.(type) {
	case *GraphSAGE:
		out := make([]BlockLayer, len(m.Layers))
		for i, l := range m.Layers {
			out[i] = l
		}
		return out, nil
	case *GAT:
		out := make([]BlockLayer, len(m.Layers))
		for i, l := range m.Layers {
			out[i] = l
		}
		return out, nil
	case *GCN:
		out := make([]BlockLayer, len(m.Layers))
		for i, l := range m.Layers {
			out[i] = l
		}
		return out, nil
	default:
		return nil, fmt.Errorf("nn: layer-wise execution does not support %T", model)
	}
}

// ApplyBlockLayer runs one GNN layer over one block, applying the
// inter-layer ReLU when the layer is not the model's last. Layers that
// implement the fused tier take it when BETTY_FUSED is on, exactly as the
// models' own Forward loops do.
func ApplyBlockLayer(tp *tensor.Tape, layer BlockLayer, b *graph.Block, h *tensor.Var, last bool) *tensor.Var {
	if fl, ok := layer.(FusedBlockLayer); ok && FusedEnabled() {
		return fl.ForwardFused(tp, b, h, !last)
	}
	out := layer.Forward(tp, b, h)
	if !last {
		out = tp.ReLU(out)
	}
	return out
}
