package nn

import (
	"fmt"

	"betty/internal/graph"
	"betty/internal/rng"
	"betty/internal/tensor"
)

// SAGEConv is one GraphSAGE layer: it aggregates neighbor features with the
// configured Aggregator and combines them with the destination's own
// features through a linear transform on the concatenation,
// h'_v = W · [h_v ‖ AGG({h_u : u→v})] + b.
type SAGEConv struct {
	Agg Aggregator
	// fc maps concat(self, agg) of width 2*in to out.
	fc *Linear
	// poolFC pre-transforms neighbor features for the Pool aggregator.
	poolFC *Linear
	// lstm is the recurrent aggregator cell (hidden = in, DGL convention).
	lstm *LSTMCell
	in   int
	out  int
}

// NewSAGEConv returns a GraphSAGE layer mapping in features to out features.
func NewSAGEConv(in, out int, agg Aggregator, r *rng.RNG) *SAGEConv {
	c := &SAGEConv{Agg: agg, in: in, out: out, fc: NewLinear(2*in, out, r)}
	switch agg {
	case Pool:
		c.poolFC = NewLinear(in, in, r)
	case LSTM:
		c.lstm = NewLSTMCell(in, in, r)
	}
	return c
}

// Params implements Module.
func (c *SAGEConv) Params() []*tensor.Var {
	ps := c.fc.Params()
	if c.poolFC != nil {
		ps = append(ps, c.poolFC.Params()...)
	}
	if c.lstm != nil {
		ps = append(ps, c.lstm.Params()...)
	}
	return ps
}

// AggParams returns only the aggregator's parameters (NP_Agg in the
// paper's memory-estimation notation, Table 3); nil for Mean and Sum.
func (c *SAGEConv) AggParams() []*tensor.Var {
	switch {
	case c.poolFC != nil:
		return c.poolFC.Params()
	case c.lstm != nil:
		return c.lstm.Params()
	default:
		return nil
	}
}

// Forward computes the layer on block b. h holds source-node features
// (b.NumSrc rows); the result has b.NumDst rows.
func (c *SAGEConv) Forward(tp *tensor.Tape, b *graph.Block, h *tensor.Var) *tensor.Var {
	if h.Value.Rows() != b.NumSrc {
		panic(fmt.Sprintf("nn: SAGEConv got %d feature rows for %d sources", h.Value.Rows(), b.NumSrc))
	}
	self := tp.SliceRows(h, 0, b.NumDst)
	agg := c.aggregate(tp, b, h)
	return c.fc.Apply(tp, tp.ConcatCols(self, agg))
}

func (c *SAGEConv) aggregate(tp *tensor.Tape, b *graph.Block, h *tensor.Var) *tensor.Var {
	src, dst := b.EdgePairs()
	switch c.Agg {
	case Sum:
		return c.weightedSum(tp, b, h, src, dst)
	case Mean:
		// Equation 1: SUM(e_uv * h_u / D_v) — the weighted neighbor sum
		// divided by the in-degree (1/deg memoized on the block).
		sum := c.weightedSum(tp, b, h, src, dst)
		return tp.RowScale(sum, b.InvInDegree())
	case Pool:
		pre := tp.ReLU(c.poolFC.Apply(tp, h))
		msgs := tp.GatherRows(pre, src)
		return tp.SegmentMax(msgs, dst, b.NumDst)
	case LSTM:
		return c.lstmAggregate(tp, b, h)
	default:
		panic(fmt.Sprintf("nn: unknown aggregator %v", c.Agg))
	}
}

// weightedSum computes the per-destination sum of source rows, multiplied
// by the block's edge weights when present (the e_uv factor of Table 1).
// Unweighted blocks use the fused gather+segment-sum fast path. The weight
// leaf is memoized on the block: EdgeWt is immutable and the leaf is
// read-only, so every layer of every step shares one wrapper instead of
// copying the weights each call.
func (c *SAGEConv) weightedSum(tp *tensor.Tape, b *graph.Block, h *tensor.Var, src, dst []int32) *tensor.Var {
	if b.EdgeWt == nil {
		return tp.GatherSegmentSum(h, src, dst, b.NumDst)
	}
	w := b.MemoEdgeWt(func() any {
		return tensor.Leaf(tensor.FromSlice(len(b.EdgeWt), 1, b.EdgeWt))
	}).(*tensor.Var)
	msgs := tp.MulRowsVec(tp.GatherRows(h, src), w)
	return tp.SegmentSum(msgs, dst, b.NumDst)
}

// lstmAggregate runs the LSTM cell over each destination's neighbor
// sequence using in-degree bucketing (§4.4.2): destinations with equal
// in-degree form one NodeBatch so each timestep is a dense [B x F] slice.
func (c *SAGEConv) lstmAggregate(tp *tensor.Tape, b *graph.Block, h *tensor.Var) *tensor.Var {
	var pieces *tensor.Var
	for _, bucket := range b.LSTMBuckets() {
		bsz := len(bucket.Nodes)
		hState := tensor.Leaf(tensor.New(bsz, c.in))
		cState := tensor.Leaf(tensor.New(bsz, c.in))
		var hv, cv *tensor.Var = hState, cState
		for t := 0; t < bucket.Deg; t++ {
			x := tp.GatherRows(h, bucket.Steps[t])
			hv, cv = c.lstm.Step(tp, x, hv, cv)
		}
		scattered := tp.ScatterRows(hv, bucket.Nodes, b.NumDst)
		if pieces == nil {
			pieces = scattered
		} else {
			pieces = tp.Add(pieces, scattered)
		}
	}
	if pieces == nil {
		return tensor.Leaf(tensor.New(b.NumDst, c.in))
	}
	return pieces
}

// GraphSAGE is the multi-layer GraphSAGE model: one SAGEConv per block,
// with ReLU between layers and raw logits at the output.
type GraphSAGE struct {
	Layers []*SAGEConv
	cfg    Config
}

// Config describes a GNN model's architecture.
type Config struct {
	// InDim is the input feature dimension, Hidden the width of
	// intermediate layers, OutDim the number of classes.
	InDim, Hidden, OutDim int
	// Layers is the number of graph convolution layers (== blocks consumed).
	Layers int
	// Aggregator selects the SAGE neighbor reduction (ignored by GAT).
	Aggregator Aggregator
	// Heads is the GAT attention head count (ignored by GraphSAGE).
	Heads int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.InDim <= 0 || c.Hidden <= 0 || c.OutDim <= 0 {
		return fmt.Errorf("nn: dimensions must be positive: %+v", c)
	}
	if c.Layers <= 0 {
		return fmt.Errorf("nn: need at least one layer")
	}
	return nil
}

// LayerDims returns the (in, out) dimensions of layer l under cfg.
func (c Config) LayerDims(l int) (in, out int) {
	in = c.Hidden
	if l == 0 {
		in = c.InDim
	}
	out = c.Hidden
	if l == c.Layers-1 {
		out = c.OutDim
	}
	return in, out
}

// NewGraphSAGE builds a GraphSAGE model from cfg.
func NewGraphSAGE(cfg Config, r *rng.RNG) (*GraphSAGE, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &GraphSAGE{cfg: cfg}
	for l := 0; l < cfg.Layers; l++ {
		in, out := cfg.LayerDims(l)
		m.Layers = append(m.Layers, NewSAGEConv(in, out, cfg.Aggregator, r))
	}
	return m, nil
}

// Config returns the model's architecture description.
func (m *GraphSAGE) Config() Config { return m.cfg }

// Params implements Module.
func (m *GraphSAGE) Params() []*tensor.Var {
	var ps []*tensor.Var
	for _, l := range m.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// AggParamCount counts aggregator-only parameters (NP_Agg, Table 3).
func (m *GraphSAGE) AggParamCount() int {
	total := 0
	for _, l := range m.Layers {
		for _, p := range l.AggParams() {
			total += p.Value.Len()
		}
	}
	return total
}

// Forward runs the model over an input-first block list; x holds the input
// features of blocks[0].NumSrc source nodes. It returns logits for the last
// block's destinations.
func (m *GraphSAGE) Forward(tp *tensor.Tape, blocks []*graph.Block, x *tensor.Var) *tensor.Var {
	if len(blocks) != len(m.Layers) {
		panic(fmt.Sprintf("nn: model has %d layers but batch has %d blocks", len(m.Layers), len(blocks)))
	}
	h := x
	fused := FusedEnabled()
	for l, conv := range m.Layers {
		if fused {
			h = conv.ForwardFused(tp, blocks[l], h, l < len(m.Layers)-1)
		} else {
			h = conv.Forward(tp, blocks[l], h)
			if l < len(m.Layers)-1 {
				h = tp.ReLU(h)
			}
		}
	}
	return h
}

// Flops estimates the forward+backward floating point operations of one
// pass over the batch, used by the simulated device's compute clock.
// Backward is costed at 2x forward, the standard rule of thumb.
func (m *GraphSAGE) Flops(blocks []*graph.Block) float64 {
	var fwd float64
	for l, conv := range m.Layers {
		b := blocks[l]
		e := float64(b.NumEdges())
		nDst := float64(b.NumDst)
		in, out := float64(conv.in), float64(conv.out)
		switch conv.Agg {
		case Mean, Sum:
			fwd += e * in // segment reduction
		case Pool:
			fwd += 2*float64(b.NumSrc)*in*in + e*in // pre-transform + max
		case LSTM:
			// per edge (node-timestep): 8 gate matmuls of in x in
			fwd += e * (8 * in * in)
		}
		fwd += 2 * nDst * (2 * in) * out // the combining linear layer
	}
	return 3 * fwd // forward + ~2x backward
}
