package nn

import (
	"math"
	"testing"

	"betty/internal/graph"
	"betty/internal/rng"
	"betty/internal/tensor"
)

// weightedBlock builds a tiny block with explicit edge weights:
// dst0 aggregates src {1, 2} with weights {2, 3}; dst1 aggregates {0} w=0.5.
func weightedBlock(t *testing.T) *graph.Block {
	t.Helper()
	b := &graph.Block{
		NumSrc:   3,
		NumDst:   2,
		Ptr:      []int64{0, 2, 3},
		SrcLocal: []int32{1, 2, 0},
		EID:      []int32{-1, -1, -1},
		EdgeWt:   []float32{2, 3, 0.5},
		SrcNID:   []int32{10, 11, 12},
		DstNID:   []int32{10, 11},
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	return b
}

func identitySAGE(t *testing.T, agg Aggregator) *SAGEConv {
	t.Helper()
	conv := NewSAGEConv(1, 1, agg, rng.New(1))
	conv.fc.W.Value.Zero()
	conv.fc.W.Value.Set(1, 0, 1) // output = aggregate only
	conv.fc.B.Value.Zero()
	return conv
}

func TestWeightedSumAggregation(t *testing.T) {
	b := weightedBlock(t)
	conv := identitySAGE(t, Sum)
	h := tensor.Leaf(tensor.FromSlice(3, 1, []float32{10, 1, 1}))
	tp := tensor.NewTape()
	out := conv.Forward(tp, b, h)
	// dst0: 2*1 + 3*1 = 5; dst1: 0.5*10 = 5
	if out.Value.At(0, 0) != 5 || out.Value.At(1, 0) != 5 {
		t.Fatalf("weighted sums = %v, %v", out.Value.At(0, 0), out.Value.At(1, 0))
	}
}

func TestWeightedMeanDividesByDegree(t *testing.T) {
	b := weightedBlock(t)
	conv := identitySAGE(t, Mean)
	h := tensor.Leaf(tensor.FromSlice(3, 1, []float32{10, 1, 1}))
	tp := tensor.NewTape()
	out := conv.Forward(tp, b, h)
	// Eq 1: sum(e*h)/D: dst0 = 5/2 = 2.5, dst1 = 5/1 = 5
	if out.Value.At(0, 0) != 2.5 || out.Value.At(1, 0) != 5 {
		t.Fatalf("weighted means = %v, %v", out.Value.At(0, 0), out.Value.At(1, 0))
	}
}

// Unit weights must be numerically identical to the unweighted fast path.
func TestUnitWeightsMatchUnweighted(t *testing.T) {
	r := rng.New(5)
	unweighted := &graph.Block{
		NumSrc:   4,
		NumDst:   2,
		Ptr:      []int64{0, 3, 4},
		SrcLocal: []int32{1, 2, 3, 0},
		EID:      []int32{-1, -1, -1, -1},
		SrcNID:   []int32{1, 2, 3, 4},
		DstNID:   []int32{1, 2},
	}
	// Blocks carry sync.Once caches and must not be copied; rebuild instead.
	weighted := &graph.Block{
		NumSrc:   4,
		NumDst:   2,
		Ptr:      []int64{0, 3, 4},
		SrcLocal: []int32{1, 2, 3, 0},
		EID:      []int32{-1, -1, -1, -1},
		SrcNID:   []int32{1, 2, 3, 4},
		DstNID:   []int32{1, 2},
		EdgeWt:   []float32{1, 1, 1, 1},
	}

	conv := NewSAGEConv(3, 2, Mean, r)
	h := tensor.Leaf(tensor.New(4, 3))
	h.Value.Randn(r, 1)

	tp1 := tensor.NewTape()
	o1 := conv.Forward(tp1, unweighted, h)
	tp2 := tensor.NewTape()
	o2 := conv.Forward(tp2, weighted, h)
	for i := range o1.Value.Data {
		if math.Float32bits(o1.Value.Data[i]) != math.Float32bits(o2.Value.Data[i]) {
			t.Fatalf("unit weights diverge at %d: %v vs %v", i, o1.Value.Data[i], o2.Value.Data[i])
		}
	}
}

// Gradients must flow through the weighted path into the inputs.
func TestWeightedAggregationGradients(t *testing.T) {
	b := weightedBlock(t)
	r := rng.New(6)
	conv := NewSAGEConv(2, 2, Sum, r)
	h := tensor.Param(tensor.New(3, 2))
	h.Value.Randn(r, 1)
	tp := tensor.NewTape()
	out := conv.Forward(tp, b, h)
	loss := tp.Sum(tp.Mul(out, out))
	tp.Backward(loss)
	if h.Grad == nil {
		t.Fatal("no gradient through the weighted path")
	}
	nonzero := false
	for _, g := range h.Grad.Data {
		if g != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("gradient is identically zero")
	}
}
