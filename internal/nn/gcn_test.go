package nn

import (
	"math"
	"testing"

	"betty/internal/graph"
	"betty/internal/rng"
	"betty/internal/tensor"
)

// gcnGraph: node 0 with in-edges from 1 and 2; node 1 with in-edge from 2.
func gcnGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.FromEdges(3, []int32{1, 2, 2}, []int32{0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// gcnBlock: full 1-hop neighborhood of {0, 1} in gcnGraph.
func gcnBlock(t *testing.T) *graph.Block {
	t.Helper()
	b := &graph.Block{
		NumSrc:   3,
		NumDst:   2,
		Ptr:      []int64{0, 2, 3},
		SrcLocal: []int32{1, 2, 2},
		EID:      []int32{0, 1, 2},
		SrcNID:   []int32{0, 1, 2},
		DstNID:   []int32{0, 1},
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	return b
}

func TestGCNConvHandComputed(t *testing.T) {
	g := gcnGraph(t)
	conv := NewGCNConv(g, 1, 1, rng.New(1))
	// identity transform for checkability
	conv.fc.W.Value.Set(0, 0, 1)
	conv.fc.B.Value.Zero()

	// in-degrees: node0=2, node1=1, node2=0 -> d̂ = 3, 2, 1
	h := tensor.Leaf(tensor.FromSlice(3, 1, []float32{6, 4, 2}))
	tp := tensor.NewTape()
	out := conv.Forward(tp, gcnBlock(t), h)

	s0 := 1 / math.Sqrt(3)
	s1 := 1 / math.Sqrt(2)
	s2 := 1.0
	// dst0: (h1*s1 + h2*s2)*s0 + h0*s0*s0 = (4*s1 + 2)*s0 + 6/3
	want0 := (4*s1+2*s2)*s0 + 6*s0*s0
	// dst1: (h2*s2)*s1 + h1*s1*s1 = 2*s1 + 4/2
	want1 := 2*s2*s1 + 4*s1*s1
	if math.Abs(float64(out.Value.At(0, 0))-want0) > 1e-5 {
		t.Fatalf("dst0 = %v, want %v", out.Value.At(0, 0), want0)
	}
	if math.Abs(float64(out.Value.At(1, 0))-want1) > 1e-5 {
		t.Fatalf("dst1 = %v, want %v", out.Value.At(1, 0), want1)
	}
}

func TestGCNModel(t *testing.T) {
	g := gcnGraph(t)
	r := rng.New(2)
	m, err := NewGCN(g, Config{InDim: 4, Hidden: 8, OutDim: 3, Layers: 2}, r)
	if err != nil {
		t.Fatal(err)
	}
	if m.AggParamCount() != 0 {
		t.Fatal("GCN should have no aggregator params")
	}
	if ParamCount(m) != 4*8+8+8*3+3 {
		t.Fatalf("param count = %d", ParamCount(m))
	}
	// a 2-layer batch over the tiny graph: reuse the 1-hop block twice is
	// invalid (chaining), so build inner over the outer's sources
	outer := gcnBlock(t)
	inner := &graph.Block{
		NumSrc:   3,
		NumDst:   3,
		Ptr:      []int64{0, 2, 3, 3},
		SrcLocal: []int32{1, 2, 2},
		EID:      []int32{0, 1, 2},
		SrcNID:   []int32{0, 1, 2},
		DstNID:   []int32{0, 1, 2},
	}
	if err := inner.Validate(); err != nil {
		t.Fatal(err)
	}
	x := tensor.Param(tensor.New(3, 4))
	x.Value.Randn(r, 1)
	tp := tensor.NewTape()
	logits := m.Forward(tp, []*graph.Block{inner, outer}, x)
	if logits.Value.Rows() != 2 || logits.Value.Cols() != 3 {
		t.Fatalf("logits %dx%d", logits.Value.Rows(), logits.Value.Cols())
	}
	loss := tp.SoftmaxCrossEntropy(logits, []int32{0, 1})
	tp.Backward(loss)
	for i, p := range m.Params() {
		if p.Grad == nil {
			t.Fatalf("param %d got no gradient", i)
		}
	}
	if m.Flops([]*graph.Block{inner, outer}) <= 0 {
		t.Fatal("non-positive flops")
	}
}

func TestGCNConfigValidation(t *testing.T) {
	g := gcnGraph(t)
	if _, err := NewGCN(g, Config{InDim: 0, Hidden: 1, OutDim: 1, Layers: 1}, rng.New(1)); err == nil {
		t.Fatal("invalid config accepted")
	}
}
