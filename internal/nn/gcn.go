package nn

import (
	"fmt"
	"math"

	"betty/internal/graph"
	"betty/internal/rng"
	"betty/internal/tensor"
)

// GCNConv is a graph convolution layer (Kipf & Welling) with symmetric
// degree normalization — Table 1's Sum layer with c_uv = 1/√(d̂_u·d̂_v)
// edge coefficients and an implicit self loop:
//
//	h'_v = W · ( Σ_{u→v} h_u/√(d̂_u·d̂_v) + h_v/d̂_v ) + b
//
// where d̂ is the raw-graph in-degree plus one. The degrees come from the
// full graph, not the sampled block, matching how GCN is defined on the
// underlying graph.
type GCNConv struct {
	fc *Linear
	// invSqrtDeg[v] = 1/sqrt(inDegree(v)+1) indexed by global node ID.
	invSqrtDeg []float32
	in, out    int
}

// NewGCNConv returns a GCN layer; degrees are taken from g.
func NewGCNConv(g *graph.Graph, in, out int, r *rng.RNG) *GCNConv {
	inv := make([]float32, g.NumNodes())
	for v := int32(0); v < g.NumNodes(); v++ {
		inv[v] = float32(1 / math.Sqrt(float64(g.InDegree(v))+1))
	}
	return &GCNConv{fc: NewLinear(in, out, r), invSqrtDeg: inv, in: in, out: out}
}

// Params implements Module.
func (c *GCNConv) Params() []*tensor.Var { return c.fc.Params() }

// Forward computes the layer on block b; h holds source features.
func (c *GCNConv) Forward(tp *tensor.Tape, b *graph.Block, h *tensor.Var) *tensor.Var {
	if h.Value.Rows() != b.NumSrc {
		panic(fmt.Sprintf("nn: GCNConv got %d feature rows for %d sources", h.Value.Rows(), b.NumSrc))
	}
	// scale sources by 1/sqrt(d̂_u)
	srcScale := make([]float32, b.NumSrc)
	for i, nid := range b.SrcNID {
		srcScale[i] = c.invSqrtDeg[nid]
	}
	hn := tp.RowScale(h, srcScale)
	src, dst := b.EdgePairs()
	agg := tp.GatherSegmentSum(hn, src, dst, b.NumDst)
	// self loop: h_v / d̂_v = (h_v/√d̂_v) * 1/√d̂_v
	self := tp.RowScale(tp.SliceRows(hn, 0, b.NumDst), srcScale[:b.NumDst])
	// destination normalization 1/sqrt(d̂_v) applied to the neighbor sum
	summed := tp.Add(tp.RowScale(agg, srcScale[:b.NumDst]), self)
	return c.fc.Apply(tp, summed)
}

// GCN is the multi-layer graph convolutional network.
type GCN struct {
	Layers []*GCNConv
	cfg    Config
}

// NewGCN builds a GCN over graph g from cfg (the Aggregator field is
// ignored; GCN always uses the normalized sum).
func NewGCN(g *graph.Graph, cfg Config, r *rng.RNG) (*GCN, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &GCN{cfg: cfg}
	for l := 0; l < cfg.Layers; l++ {
		in, out := cfg.LayerDims(l)
		m.Layers = append(m.Layers, NewGCNConv(g, in, out, r))
	}
	return m, nil
}

// Config returns the model's architecture description.
func (m *GCN) Config() Config { return m.cfg }

// Params implements Module.
func (m *GCN) Params() []*tensor.Var {
	var ps []*tensor.Var
	for _, l := range m.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// AggParamCount is zero: the normalized sum has no learned parameters.
func (m *GCN) AggParamCount() int { return 0 }

// Forward runs the model over an input-first block list.
func (m *GCN) Forward(tp *tensor.Tape, blocks []*graph.Block, x *tensor.Var) *tensor.Var {
	if len(blocks) != len(m.Layers) {
		panic(fmt.Sprintf("nn: model has %d layers but batch has %d blocks", len(m.Layers), len(blocks)))
	}
	h := x
	fused := FusedEnabled()
	for l, conv := range m.Layers {
		if fused {
			h = conv.ForwardFused(tp, blocks[l], h, l < len(m.Layers)-1)
		} else {
			h = conv.Forward(tp, blocks[l], h)
			if l < len(m.Layers)-1 {
				h = tp.ReLU(h)
			}
		}
	}
	return h
}

// Flops estimates forward+backward floating point operations for one pass.
func (m *GCN) Flops(blocks []*graph.Block) float64 {
	var fwd float64
	for l, conv := range m.Layers {
		b := blocks[l]
		e := float64(b.NumEdges())
		n := float64(b.NumDst)
		s := float64(b.NumSrc)
		in, out := float64(conv.in), float64(conv.out)
		fwd += s*in + e*in + 3*n*in // scaling, reduction, self path
		fwd += 2 * n * in * out     // the linear transform
	}
	return 3 * fwd
}
