package nn

import (
	"fmt"
	"os"
	"strconv"
	"sync/atomic"

	"betty/internal/graph"
	"betty/internal/tensor"
)

// BETTY_FUSED gates the fused kernel tier (DESIGN.md §13): when on (the
// default), layer forwards go through tensor.FusedCSRAgg and
// tensor.LinearBiasReLU instead of the primitive-op chains. Fusion is
// bitwise-exact — the per-op and end-to-end equivalence tests pin fused and
// unfused paths to identical bytes — so the knob exists for A/B
// benchmarking and as an escape hatch, not because results differ.

var fusedOn atomic.Bool

func init() { fusedOn.Store(defaultFused()) }

// ParseFusedMode validates a BETTY_FUSED override, accepting exactly the
// strconv.ParseBool spellings. The empty string means "unset" and returns
// the default (fusion on). Garbage is an error: a typo must fail loudly,
// not silently flip a benchmark arm.
func ParseFusedMode(v string) (bool, error) {
	if v == "" {
		return true, nil
	}
	on, err := strconv.ParseBool(v)
	if err != nil {
		return false, fmt.Errorf("BETTY_FUSED=%q: not a boolean (want 1/0, true/false, t/f)", v)
	}
	return on, nil
}

// defaultFused reads the BETTY_FUSED environment toggle (default on). An
// invalid value panics at startup.
func defaultFused() bool {
	on, err := ParseFusedMode(os.Getenv("BETTY_FUSED"))
	if err != nil {
		panic("nn: " + err.Error())
	}
	return on
}

// FusedEnabled reports whether the fused kernel tier is active.
func FusedEnabled() bool { return fusedOn.Load() }

// SetFused switches the fused kernel tier on or off and returns the
// previous setting:
//
//	defer nn.SetFused(nn.SetFused(false))
func SetFused(on bool) bool { return fusedOn.Swap(on) }

// blockCSR assembles the tensor.CSR view of block b from its memoized
// derived views — per-edge endpoint slices, the source inverse for the
// backward scatter-add, optionally the block edge weights and the
// mean-aggregation 1/deg post-scale. Everything is cached on the block, so
// building the struct on the hot path allocates nothing.
func blockCSR(b *graph.Block, weighted, mean bool) tensor.CSR {
	src, dst := b.EdgePairs()
	cnt, pos := b.SrcInverse()
	c := tensor.CSR{Src: src, Dst: dst, InvCnt: cnt, InvPos: pos, NSrc: b.NumSrc, NDst: b.NumDst}
	if weighted {
		c.Wt = b.EdgeWt
	}
	if mean {
		c.InvDeg = b.InvInDegree()
	}
	return c
}

// ApplyFused computes ReLU(x @ W + b) — or x @ W + b when relu is false —
// through the fused kernel.
func (l *Linear) ApplyFused(tp *tensor.Tape, x *tensor.Var, relu bool) *tensor.Var {
	return tp.LinearBiasReLU(x, l.W, l.B, relu)
}

// ForwardFused computes the SAGE layer through the fused kernel tier,
// folding the inter-layer ReLU (relu=true for every layer but the model's
// last) into the combining linear transform. Mean and Sum aggregation —
// weighted or not — collapse into one FusedCSRAgg pass; Pool and LSTM keep
// their primitive aggregation (learned transforms don't fuse into a CSR
// pass) but still use the fused linear. Values and gradients are bitwise
// identical to Forward + ReLU.
func (c *SAGEConv) ForwardFused(tp *tensor.Tape, b *graph.Block, h *tensor.Var, relu bool) *tensor.Var {
	if h.Value.Rows() != b.NumSrc {
		panic(fmt.Sprintf("nn: SAGEConv got %d feature rows for %d sources", h.Value.Rows(), b.NumSrc))
	}
	self := tp.SliceRows(h, 0, b.NumDst)
	var agg *tensor.Var
	switch c.Agg {
	case Sum:
		agg = tp.FusedCSRAgg(h, blockCSR(b, b.EdgeWt != nil, false))
	case Mean:
		agg = tp.FusedCSRAgg(h, blockCSR(b, b.EdgeWt != nil, true))
	default:
		agg = c.aggregate(tp, b, h)
	}
	return c.fc.ApplyFused(tp, tp.ConcatCols(self, agg), relu)
}

// ForwardFused computes the GCN layer through the fused kernel tier: the
// destination normalization rides in FusedCSRAgg's post-scale slot instead
// of a separate RowScale pass, and the combining linear fuses bias and the
// inter-layer ReLU. Edge weights are never applied — the unfused GCN
// ignores them too (its coefficients are purely degree-derived).
func (c *GCNConv) ForwardFused(tp *tensor.Tape, b *graph.Block, h *tensor.Var, relu bool) *tensor.Var {
	if h.Value.Rows() != b.NumSrc {
		panic(fmt.Sprintf("nn: GCNConv got %d feature rows for %d sources", h.Value.Rows(), b.NumSrc))
	}
	srcScale := make([]float32, b.NumSrc)
	for i, nid := range b.SrcNID {
		srcScale[i] = c.invSqrtDeg[nid]
	}
	hn := tp.RowScale(h, srcScale)
	csr := blockCSR(b, false, false)
	csr.InvDeg = srcScale[:b.NumDst]
	agg := tp.FusedCSRAgg(hn, csr)
	self := tp.RowScale(tp.SliceRows(hn, 0, b.NumDst), srcScale[:b.NumDst])
	summed := tp.Add(agg, self)
	return c.fc.ApplyFused(tp, summed, relu)
}
