// Package nn implements the GNN models the paper evaluates — GraphSAGE
// with Mean, Sum, Pool, and LSTM aggregators, and GAT with multi-head
// attention — together with the layers they are built from (Linear, LSTM
// cell) and the optimizers (SGD, Adam). Everything runs on the tensor
// package's autograd tape, so micro-batch gradient accumulation is exact.
package nn

import (
	"fmt"

	"betty/internal/rng"
	"betty/internal/tensor"
)

// Module is anything with trainable parameters.
type Module interface {
	// Params returns the parameter Vars in a stable order.
	Params() []*tensor.Var
}

// ParamCount sums the element counts of a module's parameters.
func ParamCount(m Module) int {
	total := 0
	for _, p := range m.Params() {
		total += p.Value.Len()
	}
	return total
}

// ZeroGrad clears the gradients of every parameter of m.
func ZeroGrad(m Module) {
	for _, p := range m.Params() {
		p.ZeroGrad()
	}
}

// Linear is a dense affine layer: y = xW + b.
type Linear struct {
	W *tensor.Var
	B *tensor.Var
}

// NewLinear returns a Xavier-initialized in x out affine layer.
func NewLinear(in, out int, r *rng.RNG) *Linear {
	w := tensor.New(in, out)
	w.XavierInit(r)
	return &Linear{
		W: tensor.Param(w),
		B: tensor.Param(tensor.New(1, out)),
	}
}

// Params implements Module.
func (l *Linear) Params() []*tensor.Var { return []*tensor.Var{l.W, l.B} }

// Apply computes x @ W + b on the tape.
func (l *Linear) Apply(tp *tensor.Tape, x *tensor.Var) *tensor.Var {
	return tp.AddBias(tp.MatMul(x, l.W), l.B)
}

// InDim returns the input dimension.
func (l *Linear) InDim() int { return l.W.Value.Rows() }

// OutDim returns the output dimension.
func (l *Linear) OutDim() int { return l.W.Value.Cols() }

// LSTMCell is a standard LSTM cell with fused gate weights: the four gates
// (input, forget, cell, output) are computed as x@Wx + h@Wh + b and split.
type LSTMCell struct {
	Hidden int
	Wx     *tensor.Var // in x 4h
	Wh     *tensor.Var // h x 4h
	B      *tensor.Var // 1 x 4h
}

// NewLSTMCell returns an LSTM cell mapping in-dim inputs to hidden-dim
// state.
func NewLSTMCell(in, hidden int, r *rng.RNG) *LSTMCell {
	wx := tensor.New(in, 4*hidden)
	wx.XavierInit(r)
	wh := tensor.New(hidden, 4*hidden)
	wh.XavierInit(r)
	b := tensor.New(1, 4*hidden)
	// forget-gate bias 1.0, the standard trick for gradient flow
	for j := hidden; j < 2*hidden; j++ {
		b.Set(0, j, 1)
	}
	return &LSTMCell{Hidden: hidden, Wx: tensor.Param(wx), Wh: tensor.Param(wh), B: tensor.Param(b)}
}

// Params implements Module.
func (c *LSTMCell) Params() []*tensor.Var { return []*tensor.Var{c.Wx, c.Wh, c.B} }

// Step advances the cell one timestep: given input x (B x in) and previous
// state (h, cst) it returns the next (h, cst), each B x hidden.
func (c *LSTMCell) Step(tp *tensor.Tape, x, h, cst *tensor.Var) (*tensor.Var, *tensor.Var) {
	gates := tp.AddBias(tp.Add(tp.MatMul(x, c.Wx), tp.MatMul(h, c.Wh)), c.B)
	hn := c.Hidden
	i := tp.Sigmoid(tp.SliceCols(gates, 0, hn))
	f := tp.Sigmoid(tp.SliceCols(gates, hn, 2*hn))
	g := tp.Tanh(tp.SliceCols(gates, 2*hn, 3*hn))
	o := tp.Sigmoid(tp.SliceCols(gates, 3*hn, 4*hn))
	cNext := tp.Add(tp.Mul(f, cst), tp.Mul(i, g))
	hNext := tp.Mul(o, tp.Tanh(cNext))
	return hNext, cNext
}

// Aggregator enumerates the neighbor aggregation operators of Table 1.
type Aggregator int

// Aggregator kinds. Mean and Sum are the cheap reductions; Pool applies a
// learned transform before an elementwise max; LSTM runs a recurrent cell
// over the (degree-bucketed) neighbor sequence and is the memory-hungry
// aggregator the paper's Figure 2(a) analyzes.
const (
	Mean Aggregator = iota
	Sum
	Pool
	LSTM
)

// String implements fmt.Stringer.
func (a Aggregator) String() string {
	switch a {
	case Mean:
		return "mean"
	case Sum:
		return "sum"
	case Pool:
		return "pool"
	case LSTM:
		return "lstm"
	default:
		return fmt.Sprintf("aggregator(%d)", int(a))
	}
}

// ParseAggregator converts a name to an Aggregator.
func ParseAggregator(s string) (Aggregator, error) {
	switch s {
	case "mean":
		return Mean, nil
	case "sum":
		return Sum, nil
	case "pool":
		return Pool, nil
	case "lstm":
		return LSTM, nil
	default:
		return 0, fmt.Errorf("nn: unknown aggregator %q", s)
	}
}
