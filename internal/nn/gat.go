package nn

import (
	"fmt"

	"betty/internal/graph"
	"betty/internal/rng"
	"betty/internal/tensor"
)

// GATConv is one multi-head graph attention layer (Veličković et al.):
// per head, source and destination features are projected with W, edge
// attention logits e_uv = LeakyReLU(aₗ·Wh_u + aᵣ·Wh_v) are softmax-
// normalized over each destination's in-edges, and messages are the
// attention-weighted sum of projected sources. Head outputs are
// concatenated (or averaged on the output layer).
type GATConv struct {
	heads   []*gatHead
	in, out int
	// concat selects concatenation (hidden layers) vs averaging (output).
	concat bool
	// negativeSlope is the LeakyReLU slope for attention logits.
	negativeSlope float32
}

type gatHead struct {
	w    *tensor.Var // in x out
	attL *tensor.Var // out x 1, scores projected sources
	attR *tensor.Var // out x 1, scores projected destinations
}

// NewGATConv returns a GAT layer with the given head count. With
// concat=true the output width is heads*out.
func NewGATConv(in, out, heads int, concat bool, r *rng.RNG) *GATConv {
	c := &GATConv{in: in, out: out, concat: concat, negativeSlope: 0.2}
	for h := 0; h < heads; h++ {
		w := tensor.New(in, out)
		w.XavierInit(r)
		al := tensor.New(out, 1)
		al.XavierInit(r)
		ar := tensor.New(out, 1)
		ar.XavierInit(r)
		c.heads = append(c.heads, &gatHead{
			w:    tensor.Param(w),
			attL: tensor.Param(al),
			attR: tensor.Param(ar),
		})
	}
	return c
}

// Params implements Module.
func (c *GATConv) Params() []*tensor.Var {
	var ps []*tensor.Var
	for _, h := range c.heads {
		ps = append(ps, h.w, h.attL, h.attR)
	}
	return ps
}

// NumHeads returns the attention head count.
func (c *GATConv) NumHeads() int { return len(c.heads) }

// OutWidth returns the layer's output feature width.
func (c *GATConv) OutWidth() int {
	if c.concat {
		return len(c.heads) * c.out
	}
	return c.out
}

// Forward computes the layer on block b; h holds source features.
func (c *GATConv) Forward(tp *tensor.Tape, b *graph.Block, h *tensor.Var) *tensor.Var {
	if h.Value.Rows() != b.NumSrc {
		panic(fmt.Sprintf("nn: GATConv got %d feature rows for %d sources", h.Value.Rows(), b.NumSrc))
	}
	src, dst := b.EdgePairs()
	var outs *tensor.Var
	for _, head := range c.heads {
		z := tp.MatMul(h, head.w)     // numSrc x out
		sL := tp.MatMul(z, head.attL) // numSrc x 1
		sR := tp.MatMul(z, head.attR) // numSrc x 1 (dst are a src prefix)
		eL := tp.GatherRows(sL, src)  // per-edge source score
		eR := tp.GatherRows(sR, dst)  // per-edge destination score
		logits := tp.LeakyReLU(tp.Add(eL, eR), c.negativeSlope)
		alpha := tp.SegmentSoftmax(logits, dst, b.NumDst)
		msgs := tp.MulRowsVec(tp.GatherRows(z, src), alpha)
		agg := tp.SegmentSum(msgs, dst, b.NumDst) // numDst x out
		if outs == nil {
			outs = agg
		} else if c.concat {
			outs = tp.ConcatCols(outs, agg)
		} else {
			outs = tp.Add(outs, agg)
		}
	}
	if !c.concat && len(c.heads) > 1 {
		outs = tp.Scale(outs, 1/float32(len(c.heads)))
	}
	return outs
}

// GAT is the multi-layer graph attention model: hidden layers concatenate
// their heads and apply ELU-like ReLU; the output layer averages heads.
type GAT struct {
	Layers []*GATConv
	cfg    Config
}

// NewGAT builds a GAT model; cfg.Heads defaults to 4 when unset.
func NewGAT(cfg Config, r *rng.RNG) (*GAT, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	heads := cfg.Heads
	if heads <= 0 {
		heads = 4
	}
	cfg.Heads = heads
	m := &GAT{cfg: cfg}
	in := cfg.InDim
	for l := 0; l < cfg.Layers; l++ {
		last := l == cfg.Layers-1
		if last {
			m.Layers = append(m.Layers, NewGATConv(in, cfg.OutDim, heads, false, r))
		} else {
			m.Layers = append(m.Layers, NewGATConv(in, cfg.Hidden, heads, true, r))
			in = cfg.Hidden * heads
		}
	}
	return m, nil
}

// Config returns the model's architecture description.
func (m *GAT) Config() Config { return m.cfg }

// Params implements Module.
func (m *GAT) Params() []*tensor.Var {
	var ps []*tensor.Var
	for _, l := range m.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// AggParamCount counts attention parameters (the per-head score vectors),
// the analogue of NP_Agg for GAT.
func (m *GAT) AggParamCount() int {
	total := 0
	for _, l := range m.Layers {
		for _, h := range l.heads {
			total += h.attL.Value.Len() + h.attR.Value.Len()
		}
	}
	return total
}

// Forward runs the model over an input-first block list.
func (m *GAT) Forward(tp *tensor.Tape, blocks []*graph.Block, x *tensor.Var) *tensor.Var {
	if len(blocks) != len(m.Layers) {
		panic(fmt.Sprintf("nn: model has %d layers but batch has %d blocks", len(m.Layers), len(blocks)))
	}
	h := x
	for l, conv := range m.Layers {
		h = conv.Forward(tp, blocks[l], h)
		if l < len(m.Layers)-1 {
			h = tp.ReLU(h)
		}
	}
	return h
}

// Flops estimates forward+backward floating point operations for one pass.
func (m *GAT) Flops(blocks []*graph.Block) float64 {
	var fwd float64
	for l, conv := range m.Layers {
		b := blocks[l]
		e := float64(b.NumEdges())
		nSrc := float64(b.NumSrc)
		heads := float64(len(conv.heads))
		in, out := float64(conv.in), float64(conv.out)
		fwd += heads * (2*nSrc*in*out + 4*nSrc*out + 6*e + e*out)
	}
	return 3 * fwd
}
