package nn

import (
	"fmt"
	"math"

	"betty/internal/tensor"
)

// Optimizer updates a module's parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update and leaves gradients untouched (call ZeroGrad
	// after, or rely on the trainer to do so).
	Step()
	// StateSize returns the number of float32 optimizer-state values per
	// model parameter value (0 for plain SGD, 2 for Adam) — component (8)
	// of the paper's memory estimator.
	StateSize() int
	// Name identifies the optimizer in experiment output.
	Name() string
}

// SGD is stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float32
	Momentum float32
	params   []*tensor.Var
	velocity []*tensor.Tensor
}

// NewSGD returns an SGD optimizer over m's parameters.
func NewSGD(m Module, lr, momentum float32) *SGD {
	s := &SGD{LR: lr, Momentum: momentum, params: m.Params()}
	//bettyvet:ok floateq zero-value config sentinel: momentum 0 means plain SGD with no velocity state
	if momentum != 0 {
		s.velocity = make([]*tensor.Tensor, len(s.params))
		for i, p := range s.params {
			s.velocity[i] = tensor.New(p.Value.Rows(), p.Value.Cols())
		}
	}
	return s
}

// Name implements Optimizer.
func (s *SGD) Name() string { return "sgd" }

// StateSize implements Optimizer.
func (s *SGD) StateSize() int {
	//bettyvet:ok floateq zero-value config sentinel: momentum 0 means plain SGD with no velocity state
	if s.Momentum != 0 {
		return 1
	}
	return 0
}

// Step implements Optimizer.
func (s *SGD) Step() {
	for i, p := range s.params {
		if p.Grad == nil {
			continue
		}
		//bettyvet:ok floateq zero-value config sentinel: momentum 0 means plain SGD with no velocity state
		if s.Momentum != 0 {
			v := s.velocity[i]
			for j := range v.Data {
				v.Data[j] = s.Momentum*v.Data[j] + p.Grad.Data[j]
				p.Value.Data[j] -= s.LR * v.Data[j]
			}
		} else {
			for j := range p.Value.Data {
				p.Value.Data[j] -= s.LR * p.Grad.Data[j]
			}
		}
	}
}

// Adam is the Adam optimizer (Kingma & Ba) with bias correction — the
// optimizer whose two state tensors per parameter the paper's estimator
// counts as component (8).
type Adam struct {
	LR, Beta1, Beta2, Eps float32
	params                []*tensor.Var
	m, v                  []*tensor.Tensor
	t                     int
}

// NewAdam returns an Adam optimizer with the usual defaults
// (beta1=0.9, beta2=0.999, eps=1e-8).
func NewAdam(mod Module, lr float32) *Adam {
	a := &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, params: mod.Params()}
	a.m = make([]*tensor.Tensor, len(a.params))
	a.v = make([]*tensor.Tensor, len(a.params))
	for i, p := range a.params {
		a.m[i] = tensor.New(p.Value.Rows(), p.Value.Cols())
		a.v[i] = tensor.New(p.Value.Rows(), p.Value.Cols())
	}
	return a
}

// Name implements Optimizer.
func (a *Adam) Name() string { return "adam" }

// StateSize implements Optimizer.
func (a *Adam) StateSize() int { return 2 }

// Step implements Optimizer.
func (a *Adam) Step() {
	a.t++
	bc1 := 1 - float32(math.Pow(float64(a.Beta1), float64(a.t)))
	bc2 := 1 - float32(math.Pow(float64(a.Beta2), float64(a.t)))
	for i, p := range a.params {
		if p.Grad == nil {
			continue
		}
		m, v := a.m[i], a.v[i]
		for j, g := range p.Grad.Data {
			m.Data[j] = a.Beta1*m.Data[j] + (1-a.Beta1)*g
			v.Data[j] = a.Beta2*v.Data[j] + (1-a.Beta2)*g*g
			mh := m.Data[j] / bc1
			vh := v.Data[j] / bc2
			p.Value.Data[j] -= a.LR * mh / (float32(math.Sqrt(float64(vh))) + a.Eps)
		}
	}
}

// NewOptimizer constructs an optimizer by name ("sgd", "momentum", "adam").
func NewOptimizer(name string, m Module, lr float32) (Optimizer, error) {
	switch name {
	case "sgd":
		return NewSGD(m, lr, 0), nil
	case "momentum":
		return NewSGD(m, lr, 0.9), nil
	case "adam":
		return NewAdam(m, lr), nil
	default:
		return nil, fmt.Errorf("nn: unknown optimizer %q", name)
	}
}
