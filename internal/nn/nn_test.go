package nn

import (
	"math"
	"testing"

	"betty/internal/graph"
	"betty/internal/rng"
	"betty/internal/tensor"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

// testBlock returns a small block: 3 destinations with degrees 2, 1, 0 over
// 5 sources.
func testBlock(t *testing.T) *graph.Block {
	b := &graph.Block{
		NumSrc:   5,
		NumDst:   3,
		Ptr:      []int64{0, 2, 3, 3},
		SrcLocal: []int32{3, 4, 0, 0},
		EID:      []int32{-1, -1, -1, -1},
		SrcNID:   []int32{10, 11, 12, 13, 14},
		DstNID:   []int32{10, 11, 12},
	}
	b.Ptr = []int64{0, 2, 3, 3}
	b.SrcLocal = []int32{3, 4, 0}
	b.EID = []int32{-1, -1, -1}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	return b
}

func TestLinear(t *testing.T) {
	r := rng.New(1)
	l := NewLinear(4, 3, r)
	if ParamCount(l) != 4*3+3 {
		t.Fatalf("param count = %d", ParamCount(l))
	}
	x := tensor.Leaf(tensor.New(2, 4))
	x.Value.Randn(r, 1)
	tp := tensor.NewTape()
	y := l.Apply(tp, x)
	if y.Value.Rows() != 2 || y.Value.Cols() != 3 {
		t.Fatalf("bad output shape %dx%d", y.Value.Rows(), y.Value.Cols())
	}
}

func TestLSTMCellShapesAndGradient(t *testing.T) {
	r := rng.New(2)
	c := NewLSTMCell(3, 3, r)
	// forget bias initialized to 1
	if c.B.Value.At(0, 3) != 1 || c.B.Value.At(0, 0) != 0 {
		t.Fatal("forget-gate bias not initialized")
	}
	x := tensor.Leaf(tensor.New(2, 3))
	x.Value.Randn(r, 1)

	build := func(tp *tensor.Tape) *tensor.Var {
		h := tensor.Leaf(tensor.New(2, 3))
		cs := tensor.Leaf(tensor.New(2, 3))
		var hv, cv *tensor.Var = h, cs
		for step := 0; step < 2; step++ {
			hv, cv = c.Step(tp, x, hv, cv)
		}
		return tp.Sum(tp.Mul(hv, hv))
	}
	tp := tensor.NewTape()
	loss := build(tp)
	tp.Backward(loss)
	// finite-difference check a few entries of Wx
	const eps = 1e-3
	for _, idx := range []int{0, 5, 11} {
		orig := c.Wx.Value.Data[idx]
		c.Wx.Value.Data[idx] = orig + eps
		lp := float64(build(tensor.NewTape()).Value.Data[0])
		c.Wx.Value.Data[idx] = orig - eps
		lm := float64(build(tensor.NewTape()).Value.Data[0])
		c.Wx.Value.Data[idx] = orig
		want := (lp - lm) / (2 * eps)
		got := float64(c.Wx.Grad.Data[idx])
		if math.Abs(want-got) > 2e-2*(1+math.Abs(want)) {
			t.Fatalf("Wx[%d]: analytic %v vs numeric %v", idx, got, want)
		}
	}
}

func TestSAGEConvMeanMatchesHandComputation(t *testing.T) {
	r := rng.New(3)
	b := testBlock(t)
	conv := NewSAGEConv(2, 2, Mean, r)
	// identity-ish weights for checkability: W = [[I],[I]] stacked
	conv.fc.W.Value.Zero()
	for i := 0; i < 2; i++ {
		conv.fc.W.Value.Set(i, i, 1)   // self part
		conv.fc.W.Value.Set(2+i, i, 1) // aggregate part
	}
	conv.fc.B.Value.Zero()

	h := tensor.Leaf(tensor.FromSlice(5, 2, []float32{
		1, 0,
		0, 1,
		1, 1,
		2, 2,
		4, 4,
	}))
	tp := tensor.NewTape()
	out := conv.Forward(tp, b, h)
	// dst0: self (1,0) + mean((2,2),(4,4)) = (1,0)+(3,3) = (4,3)
	if !almostEq(float64(out.Value.At(0, 0)), 4, 1e-5) || !almostEq(float64(out.Value.At(0, 1)), 3, 1e-5) {
		t.Fatalf("dst0 = (%v,%v), want (4,3)", out.Value.At(0, 0), out.Value.At(0, 1))
	}
	// dst1: self (0,1) + mean((1,0)) = (1,1)
	if !almostEq(float64(out.Value.At(1, 0)), 1, 1e-5) || !almostEq(float64(out.Value.At(1, 1)), 1, 1e-5) {
		t.Fatalf("dst1 = (%v,%v), want (1,1)", out.Value.At(1, 0), out.Value.At(1, 1))
	}
	// dst2 has no neighbors: just self (1,1)
	if !almostEq(float64(out.Value.At(2, 0)), 1, 1e-5) || !almostEq(float64(out.Value.At(2, 1)), 1, 1e-5) {
		t.Fatalf("dst2 = (%v,%v), want (1,1)", out.Value.At(2, 0), out.Value.At(2, 1))
	}
}

func TestSAGEConvAllAggregatorsRun(t *testing.T) {
	b := testBlock(t)
	for _, agg := range []Aggregator{Mean, Sum, Pool, LSTM} {
		r := rng.New(4)
		conv := NewSAGEConv(2, 3, agg, r)
		h := tensor.Param(tensor.New(5, 2))
		h.Value.Randn(r, 1)
		tp := tensor.NewTape()
		out := conv.Forward(tp, b, h)
		if out.Value.Rows() != 3 || out.Value.Cols() != 3 {
			t.Fatalf("%v: bad shape %dx%d", agg, out.Value.Rows(), out.Value.Cols())
		}
		loss := tp.Sum(tp.Mul(out, out))
		tp.Backward(loss)
		for _, p := range conv.fc.Params() {
			if p.Grad == nil {
				t.Fatalf("%v: fc params got no gradient", agg)
			}
		}
		if h.Grad == nil {
			t.Fatalf("%v: input features got no gradient", agg)
		}
	}
}

func TestSAGEConvParamAccounting(t *testing.T) {
	r := rng.New(5)
	mean := NewSAGEConv(4, 8, Mean, r)
	pool := NewSAGEConv(4, 8, Pool, r)
	lstm := NewSAGEConv(4, 8, LSTM, r)
	base := 2*4*8 + 8 // fc: (2*in) x out + bias
	if ParamCount(mean) != base {
		t.Fatalf("mean params = %d, want %d", ParamCount(mean), base)
	}
	if ParamCount(pool) != base+4*4+4 {
		t.Fatalf("pool params = %d", ParamCount(pool))
	}
	wantLSTM := base + 4*16 + 4*16 + 16 // Wx + Wh + b with hidden=in=4
	if ParamCount(lstm) != wantLSTM {
		t.Fatalf("lstm params = %d, want %d", ParamCount(lstm), wantLSTM)
	}
	if len(mean.AggParams()) != 0 || len(pool.AggParams()) != 2 || len(lstm.AggParams()) != 3 {
		t.Fatal("AggParams counts wrong")
	}
}

// LSTM aggregation with in-degree bucketing must give every destination
// with neighbors a nonzero aggregate and leave isolated destinations zero.
func TestLSTMAggregationBucketing(t *testing.T) {
	r := rng.New(6)
	b := testBlock(t) // degrees 2, 1, 0
	conv := NewSAGEConv(2, 2, LSTM, r)
	h := tensor.Leaf(tensor.New(5, 2))
	h.Value.Randn(r, 1)
	tp := tensor.NewTape()
	agg := conv.lstmAggregate(tp, b, h)
	if agg.Value.Rows() != 3 {
		t.Fatalf("agg rows = %d", agg.Value.Rows())
	}
	// dst2 (degree 0) must be exactly zero
	if agg.Value.At(2, 0) != 0 || agg.Value.At(2, 1) != 0 {
		t.Fatal("isolated destination has nonzero LSTM aggregate")
	}
	// dst0 and dst1 should be nonzero almost surely
	nz := math.Abs(float64(agg.Value.At(0, 0))) + math.Abs(float64(agg.Value.At(1, 0)))
	if nz == 0 {
		t.Fatal("LSTM aggregate suspiciously zero")
	}
}

func TestGraphSAGEConfigValidation(t *testing.T) {
	r := rng.New(7)
	if _, err := NewGraphSAGE(Config{InDim: 0, Hidden: 4, OutDim: 2, Layers: 1}, r); err == nil {
		t.Fatal("zero InDim accepted")
	}
	if _, err := NewGraphSAGE(Config{InDim: 4, Hidden: 4, OutDim: 2, Layers: 0}, r); err == nil {
		t.Fatal("zero layers accepted")
	}
}

func TestLayerDims(t *testing.T) {
	c := Config{InDim: 10, Hidden: 16, OutDim: 3, Layers: 3}
	cases := [][3]int{{0, 10, 16}, {1, 16, 16}, {2, 16, 3}}
	for _, tc := range cases {
		in, out := c.LayerDims(tc[0])
		if in != tc[1] || out != tc[2] {
			t.Fatalf("layer %d dims (%d,%d), want (%d,%d)", tc[0], in, out, tc[1], tc[2])
		}
	}
	one := Config{InDim: 10, Hidden: 16, OutDim: 3, Layers: 1}
	in, out := one.LayerDims(0)
	if in != 10 || out != 3 {
		t.Fatalf("single layer dims (%d,%d)", in, out)
	}
}

// buildTwoLayerBatch samples a 2-layer full batch from a random graph.
func buildTwoLayerBatch(t *testing.T, seed uint64) (*graph.Graph, []*graph.Block) {
	t.Helper()
	r := rng.New(seed)
	n := int32(60)
	var src, dst []int32
	for i := 0; i < 500; i++ {
		src = append(src, r.Int31n(n))
		dst = append(dst, r.Int31n(n))
	}
	g, err := graph.FromEdges(n, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	seeds := []int32{0, 1, 2, 3, 4, 5, 6, 7}
	blocks := fullBatch(t, g, seeds, 2)
	return g, blocks
}

// fullBatch expands seeds with full neighborhoods for the given layers.
func fullBatch(t *testing.T, g *graph.Graph, seeds []int32, layers int) []*graph.Block {
	t.Helper()
	blocks := make([]*graph.Block, layers)
	frontier := seeds
	for l := layers - 1; l >= 0; l-- {
		local := map[int32]int32{}
		srcNID := append([]int32(nil), frontier...)
		for i, v := range frontier {
			local[v] = int32(i)
		}
		b := &graph.Block{NumDst: len(frontier), DstNID: append([]int32(nil), frontier...), Ptr: make([]int64, 1, len(frontier)+1)}
		for _, v := range frontier {
			ss, es := g.InNeighbors(v)
			for i, u := range ss {
				li, ok := local[u]
				if !ok {
					li = int32(len(srcNID))
					local[u] = li
					srcNID = append(srcNID, u)
				}
				b.SrcLocal = append(b.SrcLocal, li)
				b.EID = append(b.EID, es[i])
			}
			b.Ptr = append(b.Ptr, int64(len(b.SrcLocal)))
		}
		b.SrcNID = srcNID
		b.NumSrc = len(srcNID)
		blocks[l] = b
		frontier = srcNID
	}
	return blocks
}

// The core Betty correctness property at the model level: the accumulated,
// fraction-scaled gradients of sliced micro-batches equal the full-batch
// gradient, for a real 2-layer GraphSAGE on real blocks.
func TestMicroBatchGradientEquivalenceGNN(t *testing.T) {
	_, blocks := buildTwoLayerBatch(t, 11)
	r := rng.New(12)
	model, err := NewGraphSAGE(Config{InDim: 4, Hidden: 5, OutDim: 3, Layers: 2, Aggregator: Mean}, r)
	if err != nil {
		t.Fatal(err)
	}
	// features per raw node, labels per output
	feat := tensor.New(60, 4)
	feat.Randn(r, 1)
	last := blocks[len(blocks)-1]
	labels := make([]int32, last.NumDst)
	for i := range labels {
		labels[i] = int32(i % 3)
	}
	gather := func(b []*graph.Block) *tensor.Var {
		x := tensor.New(b[0].NumSrc, 4)
		for i, nid := range b[0].SrcNID {
			copy(x.Row(i), feat.Row(int(nid)))
		}
		return tensor.Leaf(x)
	}
	labelsFor := func(b []*graph.Block) []int32 {
		lb := b[len(b)-1]
		out := make([]int32, lb.NumDst)
		for i, nid := range lb.DstNID {
			// label by the node's position in the full output list
			for j, fn := range last.DstNID {
				if fn == nid {
					out[i] = labels[j]
				}
			}
		}
		return out
	}

	// full-batch gradient
	ZeroGrad(model)
	tp := tensor.NewTape()
	logits := model.Forward(tp, blocks, gather(blocks))
	loss := tp.SoftmaxCrossEntropy(logits, labels)
	tp.Backward(loss)
	fullGrads := make([]*tensor.Tensor, 0)
	for _, p := range model.Params() {
		fullGrads = append(fullGrads, p.Grad.Clone())
	}

	// micro-batch accumulation over a 3/5 split
	ZeroGrad(model)
	groups := [][]int32{{0, 2, 4}, {1, 3, 5, 6, 7}}
	for _, sel := range groups {
		micro, err := graph.SliceBatch(blocks, sel)
		if err != nil {
			t.Fatal(err)
		}
		mtp := tensor.NewTape()
		mlogits := model.Forward(mtp, micro, gather(micro))
		mloss := mtp.SoftmaxCrossEntropy(mlogits, labelsFor(micro))
		mloss = mtp.Scale(mloss, float32(len(sel))/float32(last.NumDst))
		mtp.Backward(mloss)
	}
	for i, p := range model.Params() {
		for j := range p.Grad.Data {
			if !almostEq(float64(p.Grad.Data[j]), float64(fullGrads[i].Data[j]), 1e-3) {
				t.Fatalf("param %d elem %d: micro %v vs full %v", i, j, p.Grad.Data[j], fullGrads[i].Data[j])
			}
		}
	}
}

func TestGATForwardShapesAndGrads(t *testing.T) {
	_, blocks := buildTwoLayerBatch(t, 13)
	r := rng.New(14)
	model, err := NewGAT(Config{InDim: 4, Hidden: 5, OutDim: 3, Layers: 2, Heads: 2}, r)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Leaf(tensor.New(blocks[0].NumSrc, 4))
	x.Value.Randn(r, 1)
	tp := tensor.NewTape()
	logits := model.Forward(tp, blocks, x)
	if logits.Value.Rows() != blocks[1].NumDst || logits.Value.Cols() != 3 {
		t.Fatalf("GAT output %dx%d", logits.Value.Rows(), logits.Value.Cols())
	}
	labels := make([]int32, blocks[1].NumDst)
	loss := tp.SoftmaxCrossEntropy(logits, labels)
	tp.Backward(loss)
	for i, p := range model.Params() {
		if p.Grad == nil {
			t.Fatalf("GAT param %d got no grad", i)
		}
	}
	// layer 0: 2 heads x (attL 5 + attR 5); layer 1: 2 heads x (3 + 3)
	if model.AggParamCount() != 2*(5+5)+2*(3+3) {
		t.Fatalf("GAT AggParamCount = %d", model.AggParamCount())
	}
}

func TestGATHiddenWidthConcatsHeads(t *testing.T) {
	r := rng.New(15)
	conv := NewGATConv(4, 5, 3, true, r)
	if conv.OutWidth() != 15 {
		t.Fatalf("concat width = %d", conv.OutWidth())
	}
	avg := NewGATConv(4, 5, 3, false, r)
	if avg.OutWidth() != 5 {
		t.Fatalf("average width = %d", avg.OutWidth())
	}
}

func TestOptimizersDescend(t *testing.T) {
	quadratic := func(opt func(Module) Optimizer) float64 {
		w := tensor.Param(tensor.FromSlice(1, 2, []float32{3, -2}))
		mod := paramModule{w}
		o := opt(mod)
		for i := 0; i < 200; i++ {
			tp := tensor.NewTape()
			loss := tp.Sum(tp.Mul(w, w))
			ZeroGrad(mod)
			tp.Backward(loss)
			o.Step()
		}
		return float64(w.Value.Data[0]*w.Value.Data[0] + w.Value.Data[1]*w.Value.Data[1])
	}
	if v := quadratic(func(m Module) Optimizer { return NewSGD(m, 0.1, 0) }); v > 1e-6 {
		t.Fatalf("SGD did not descend: %v", v)
	}
	if v := quadratic(func(m Module) Optimizer { return NewSGD(m, 0.05, 0.9) }); v > 1e-6 {
		t.Fatalf("momentum SGD did not descend: %v", v)
	}
	if v := quadratic(func(m Module) Optimizer { return NewAdam(m, 0.05) }); v > 1e-4 {
		t.Fatalf("Adam did not descend: %v", v)
	}
}

type paramModule struct{ p *tensor.Var }

func (m paramModule) Params() []*tensor.Var { return []*tensor.Var{m.p} }

func TestOptimizerStateSizes(t *testing.T) {
	w := tensor.Param(tensor.New(2, 2))
	m := paramModule{w}
	if NewSGD(m, 0.1, 0).StateSize() != 0 {
		t.Fatal("plain SGD state size")
	}
	if NewSGD(m, 0.1, 0.9).StateSize() != 1 {
		t.Fatal("momentum state size")
	}
	if NewAdam(m, 0.1).StateSize() != 2 {
		t.Fatal("adam state size")
	}
}

func TestNewOptimizerByName(t *testing.T) {
	w := tensor.Param(tensor.New(1, 1))
	m := paramModule{w}
	for _, name := range []string{"sgd", "momentum", "adam"} {
		o, err := NewOptimizer(name, m, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		if o.Name() == "" {
			t.Fatal("empty optimizer name")
		}
	}
	if _, err := NewOptimizer("nope", m, 0.1); err == nil {
		t.Fatal("unknown optimizer accepted")
	}
}

func TestParseAggregator(t *testing.T) {
	for _, name := range []string{"mean", "sum", "pool", "lstm"} {
		a, err := ParseAggregator(name)
		if err != nil {
			t.Fatal(err)
		}
		if a.String() != name {
			t.Fatalf("round trip %q -> %q", name, a.String())
		}
	}
	if _, err := ParseAggregator("avg"); err == nil {
		t.Fatal("unknown aggregator accepted")
	}
}

func TestFlopsPositiveAndOrdered(t *testing.T) {
	_, blocks := buildTwoLayerBatch(t, 16)
	r := rng.New(17)
	mk := func(agg Aggregator) *GraphSAGE {
		m, err := NewGraphSAGE(Config{InDim: 8, Hidden: 8, OutDim: 3, Layers: 2, Aggregator: agg}, r)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	mean := mk(Mean).Flops(blocks)
	lstm := mk(LSTM).Flops(blocks)
	if mean <= 0 || lstm <= 0 {
		t.Fatal("flops must be positive")
	}
	if lstm <= mean {
		t.Fatalf("LSTM flops %v should exceed mean %v", lstm, mean)
	}
}
