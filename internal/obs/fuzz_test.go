package obs

import (
	"encoding/binary"
	"testing"
)

// FuzzHistogramBuckets feeds arbitrary bound sets and observation streams
// through a histogram and asserts its two invariants: sanitized bounds are
// strictly increasing, and every observation lands in exactly one bucket
// (count conservation).
func FuzzHistogramBuckets(f *testing.F) {
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0}, []byte{5})
	f.Add([]byte{}, []byte{0, 1, 2, 3})
	f.Add([]byte{10, 0, 0, 0, 0, 0, 0, 0, 10, 0, 0, 0, 0, 0, 0, 0}, []byte{9, 10, 11})
	f.Add([]byte{255, 255, 255, 255, 255, 255, 255, 255}, []byte{255})
	f.Fuzz(func(t *testing.T, boundBytes, valBytes []byte) {
		var bounds []int64
		for i := 0; i+8 <= len(boundBytes) && len(bounds) < 64; i += 8 {
			bounds = append(bounds, int64(binary.LittleEndian.Uint64(boundBytes[i:])))
		}
		h := NewHistogram(bounds)

		got := h.Bounds()
		for i := 1; i < len(got); i++ {
			if got[i-1] >= got[i] {
				t.Fatalf("bounds not strictly increasing: %v", got)
			}
		}
		if len(h.Counts()) != len(got)+1 {
			t.Fatalf("bucket count %d for %d bounds", len(h.Counts()), len(got))
		}

		var sum int64
		n := len(valBytes)
		if n > 256 {
			n = 256
		}
		for i := 0; i < n; i++ {
			// Spread raw bytes over a wide signed range so both bucket
			// boundaries and the overflow bucket get exercised.
			v := (int64(valBytes[i]) - 128) << (uint(i) % 48)
			h.Observe(v)
			sum += v
		}
		if h.Count() != int64(n) {
			t.Fatalf("Count = %d, want %d", h.Count(), n)
		}
		if h.Sum() != sum {
			t.Fatalf("Sum = %d, want %d", h.Sum(), sum)
		}
		var total int64
		for _, c := range h.Counts() {
			if c < 0 {
				t.Fatalf("negative bucket count: %v", h.Counts())
			}
			total += c
		}
		if total != int64(n) {
			t.Fatalf("buckets sum to %d, observed %d", total, n)
		}

		// Re-observing the sanitized bounds themselves lands each in its
		// own (upper-inclusive) bucket.
		h2 := NewHistogram(got)
		for _, b := range got {
			h2.Observe(b)
		}
		for i, c := range h2.Counts() {
			want := int64(1)
			if i == len(got) { // overflow bucket stays empty
				want = 0
			}
			if c != want {
				t.Fatalf("bound self-observation counts = %v", h2.Counts())
			}
		}
	})
}
