package obs

import (
	"strings"
	"sync"
	"testing"
)

// Every operation must be a no-op on a nil registry and nil span — that is
// the entire "disabled instrumentation is free" contract.
func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	r.Add("c", 1)
	r.Set("g", 2)
	r.Observe("h_ns", 3)
	r.SetTracing(true)
	if r.Tracing() {
		t.Fatal("nil registry reports tracing")
	}
	if r.Counter("c") != nil || r.Gauge("g") != nil || r.HistogramWith("h", nil) != nil {
		t.Fatal("nil registry returned a live metric")
	}
	if got := r.CounterValue("c"); got != 0 {
		t.Fatalf("CounterValue = %d", got)
	}
	if _, ok := r.GaugeValue("g"); ok {
		t.Fatal("nil registry has a gauge")
	}
	sp := r.StartSpan(PhaseForward)
	if sp != nil {
		t.Fatal("nil registry returned a live span")
	}
	sp.SetInt("k", 1).SetInt("k", 2)
	sp.End()
	if r.Spans() != nil || r.Records() != nil {
		t.Fatal("nil registry exported something")
	}
	if err := r.WriteFile("/nonexistent/dir/file"); err != nil {
		t.Fatalf("nil WriteFile: %v", err)
	}
	var c *Counter
	c.Add(1)
	if c.Value() != 0 {
		t.Fatal("nil counter holds a value")
	}
	var g *Gauge
	g.Set(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge holds a value")
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 || h.Bounds() != nil || h.Counts() != nil {
		t.Fatal("nil histogram holds state")
	}
}

func TestCountersGaugesBasics(t *testing.T) {
	r := New(NewFakeClock(0, 1))
	r.Add("a", 3)
	r.Add("a", 4)
	if got := r.CounterValue("a"); got != 7 {
		t.Fatalf("counter = %d, want 7", got)
	}
	if got := r.CounterValue("missing"); got != 0 {
		t.Fatalf("missing counter = %d", got)
	}
	r.Set("g", 10)
	r.Set("g", -2)
	if v, ok := r.GaugeValue("g"); !ok || v != -2 {
		t.Fatalf("gauge = %d,%v, want -2,true", v, ok)
	}
	if _, ok := r.GaugeValue("missing"); ok {
		t.Fatal("missing gauge exists")
	}
	// Same name returns the same metric object.
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("Counter not idempotent")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("Gauge not idempotent")
	}
	if r.HistogramWith("h", CountBounds) != r.HistogramWith("h", SizeBounds) {
		t.Fatal("HistogramWith not idempotent")
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram([]int64{10, 100})
	for _, v := range []int64{-5, 10, 11, 100, 101, 1 << 40} {
		h.Observe(v)
	}
	// Buckets: v<=10, 10<v<=100, v>100.
	want := []int64{2, 2, 2}
	got := h.Counts()
	if len(got) != len(want) {
		t.Fatalf("counts = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("counts = %v, want %v", got, want)
		}
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if h.Sum() != -5+10+11+100+101+(1<<40) {
		t.Fatalf("sum = %d", h.Sum())
	}
}

// Unsorted and duplicated bounds are sanitized at construction.
func TestHistogramSanitizesBounds(t *testing.T) {
	h := NewHistogram([]int64{100, 10, 100, 10, 1})
	b := h.Bounds()
	want := []int64{1, 10, 100}
	if len(b) != len(want) {
		t.Fatalf("bounds = %v, want %v", b, want)
	}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bounds = %v, want %v", b, want)
		}
	}
	if len(h.Counts()) != len(want)+1 {
		t.Fatalf("counts len = %d, want %d", len(h.Counts()), len(want)+1)
	}
}

func TestBoundsForSuffix(t *testing.T) {
	if got := BoundsFor("span.forward_ns"); got[0] != DurationBounds[0] {
		t.Fatalf("ns bounds = %v", got)
	}
	if got := BoundsFor("micro.peak_bytes"); got[0] != SizeBounds[0] {
		t.Fatalf("bytes bounds = %v", got)
	}
	if got := BoundsFor("train.micro_batches"); got[0] != CountBounds[0] {
		t.Fatalf("count bounds = %v", got)
	}
}

func TestFakeClock(t *testing.T) {
	c := NewFakeClock(100, 10)
	if c.Now() != 100 || c.Now() != 110 {
		t.Fatal("fake clock does not self-advance")
	}
	c.Advance(1000)
	if got := c.Now(); got != 1120 {
		t.Fatalf("after Advance, Now = %d, want 1120", got)
	}
}

func TestSpanRecordingAndFields(t *testing.T) {
	r := New(NewFakeClock(0, 1000))
	r.SetTracing(true)
	sp := r.StartSpan(PhaseSample).SetInt("seeds", 64).SetInt("layers", 2)
	sp.SetInt("seeds", 65) // later value wins
	sp.End()
	spans := r.Spans()
	if len(spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(spans))
	}
	got := spans[0]
	if got.Seq != 0 || got.Phase != PhaseSample || got.StartNS != 0 || got.DurNS != 1000 {
		t.Fatalf("span = %+v", got)
	}
	// Fields sorted by key, dedup applied.
	if len(got.Fields) != 2 || got.Fields[0].Key != "layers" || got.Fields[1].Val != 65 {
		t.Fatalf("fields = %+v", got.Fields)
	}
	// Duration also landed in the per-phase histogram.
	h := r.HistogramWith("span.sample_ns", nil)
	if h.Count() != 1 || h.Sum() != 1000 {
		t.Fatalf("phase hist count=%d sum=%d", h.Count(), h.Sum())
	}
}

// With tracing off, spans still feed histograms but leave no trace records.
func TestTracingOffKeepsHistograms(t *testing.T) {
	r := New(NewFakeClock(0, 7))
	r.StartSpan(PhaseForward).End()
	if len(r.Spans()) != 0 {
		t.Fatal("span recorded with tracing off")
	}
	if r.HistogramWith("span.forward_ns", nil).Count() != 1 {
		t.Fatal("phase histogram not fed with tracing off")
	}
}

// Concurrent metric updates across goroutines must commute exactly.
func TestConcurrentMetricsExact(t *testing.T) {
	r := New(NewFakeClock(0, 1))
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Add("c", 1)
				r.Observe("h", int64(i%7))
			}
		}()
	}
	wg.Wait()
	if got := r.CounterValue("c"); got != goroutines*per {
		t.Fatalf("counter = %d, want %d", got, goroutines*per)
	}
	h := r.HistogramWith("h", nil)
	if h.Count() != goroutines*per {
		t.Fatalf("hist count = %d, want %d", h.Count(), goroutines*per)
	}
	var total int64
	for _, c := range h.Counts() {
		total += c
	}
	if total != h.Count() {
		t.Fatalf("bucket counts sum to %d, Count = %d", total, h.Count())
	}
}

// Names landing in different shards stay independent; shardFor must be a
// pure function of the name.
func TestSharding(t *testing.T) {
	names := []string{"a", "b", "c", "train.steps", "span.forward_ns", "plan.k"}
	for _, n := range names {
		if shardFor(n) != shardFor(n) {
			t.Fatalf("shardFor(%q) unstable", n)
		}
		if s := shardFor(n); s < 0 || s >= numShards {
			t.Fatalf("shardFor(%q) = %d out of range", n, s)
		}
	}
	r := New(NewFakeClock(0, 1))
	for i, n := range names {
		r.Add(n, int64(i+1))
	}
	for i, n := range names {
		if got := r.CounterValue(n); got != int64(i+1) {
			t.Fatalf("counter %q = %d, want %d", n, got, i+1)
		}
	}
}

func TestRecordsLayout(t *testing.T) {
	r := New(NewFakeClock(0, 500))
	r.SetTracing(true)
	r.StartSpan(PhaseStep).SetInt("k", 4).End()
	r.Add("z.counter", 1)
	r.Set("a.gauge", 9)
	recs := r.Records()
	if len(recs) < 4 {
		t.Fatalf("records = %v", recs)
	}
	if recs[0] != `{"type":"meta","schema":1}` {
		t.Fatalf("meta line = %s", recs[0])
	}
	if want := `{"type":"span","seq":0,"phase":"step","start_ns":0,"dur_ns":500,"fields":{"k":4}}`; recs[1] != want {
		t.Fatalf("span line = %s, want %s", recs[1], want)
	}
	// Counters precede gauges precede histograms, each name-sorted.
	var kinds []string
	for _, line := range recs[1:] {
		switch {
		case strings.HasPrefix(line, `{"type":"span"`):
			kinds = append(kinds, "span")
		case strings.HasPrefix(line, `{"type":"counter"`):
			kinds = append(kinds, "counter")
		case strings.HasPrefix(line, `{"type":"gauge"`):
			kinds = append(kinds, "gauge")
		case strings.HasPrefix(line, `{"type":"hist"`):
			kinds = append(kinds, "hist")
		default:
			t.Fatalf("unknown record %s", line)
		}
	}
	want := []string{"span", "counter", "gauge", "hist"}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", kinds, want)
		}
	}
}
