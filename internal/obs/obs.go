// Package obs is the observability layer: counters, gauges, fixed-bucket
// histograms, and phase spans over the training pipeline, exported as
// NDJSON (one JSON object per line, stable field order).
//
// Design constraints, in order:
//
//   - Kernel-package purity. Kernel packages (internal/sample, internal/reg,
//     ...) may never read the wall clock (bettyvet's detrand analyzer
//     enforces this), yet their phases must be timed. Time therefore enters
//     only through the Clock injected into the Registry: CLIs inject the
//     real clock, tests inject a deterministic FakeClock, and the
//     instrumented kernel code only ever calls StartSpan/End — it holds no
//     time source of its own.
//
//   - Near-zero disabled overhead. Every method is safe on a nil *Registry
//     and a nil *Span: the hot path pays one pointer test per call and
//     allocates nothing. Training code is instrumented unconditionally and
//     callers opt in by attaching a registry.
//
//   - Determinism under parallelism. The registry is lock-sharded by metric
//     name so concurrent workers (BETTY_WORKERS > 1) never contend on one
//     mutex, and all metric state is commutative (atomic adds), so exported
//     values are identical for any worker count. Span records carry a
//     sequence number assigned in End order; phases recorded from the
//     serial training loop are therefore reproducible run-to-run under the
//     fake clock.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Phase names used across the training pipeline. Spans are not restricted
// to these, but every instrumented site in this repository uses one of
// them, so consumers can rely on the taxonomy (DESIGN.md §10).
const (
	PhaseSample    = "sample"    // neighbor sampling (internal/sample)
	PhaseRegBuild  = "reg_build" // REG construction (internal/reg)
	PhasePartition = "partition" // K-way output partitioning
	PhaseEstimate  = "estimate"  // analytical memory estimation
	PhaseH2D       = "h2d"       // host-to-device staging + ledger charge
	PhaseForward   = "forward"   // forward pass + loss
	PhaseBackward  = "backward"  // backward pass
	PhaseStep      = "step"      // optimizer step + gradient clear
	PhaseEval      = "eval"      // chunked evaluation
	PhaseEnqueue   = "enqueue"   // serving request admission (internal/serve)
	PhaseBatch     = "batch"     // serving batch execution (internal/serve)
	PhaseMultiDev  = "multidev"  // multi-device epoch (core.MultiDevice)
	PhaseShard     = "shard"     // split-parallel shard execution of one micro-batch
)

// Clock is the injected time source. Now returns nanoseconds; only
// differences are ever interpreted, so the epoch is the clock's choice.
type Clock interface {
	Now() int64
}

// realClock reads the wall clock. It lives here — in a non-kernel package —
// so instrumented kernel code never touches package time itself.
type realClock struct{}

func (realClock) Now() int64 { return time.Now().UnixNano() }

// RealClock returns the wall clock used by the CLIs.
func RealClock() Clock { return realClock{} }

// FakeClock is a deterministic clock for tests and golden files: every Now
// call returns the current reading and advances it by a fixed step, so a
// serial sequence of spans gets reproducible timestamps and durations.
type FakeClock struct {
	mu   sync.Mutex
	now  int64
	step int64
}

// NewFakeClock returns a clock starting at start that self-advances by step
// nanoseconds per Now call.
func NewFakeClock(start, step int64) *FakeClock {
	return &FakeClock{now: start, step: step}
}

// Now returns the current reading and advances the clock by the step.
func (c *FakeClock) Now() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	v := c.now
	c.now += c.step
	return v
}

// Advance moves the clock forward by d nanoseconds.
func (c *FakeClock) Advance(d int64) {
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

// numShards is the lock-sharding degree of the metric maps. Sixteen shards
// keep distinct-name contention negligible at any plausible BETTY_WORKERS.
const numShards = 16

// metricShard holds the metrics whose names hash to one shard.
type metricShard struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// Registry is the root of the observability layer: a sharded metric store
// plus an optional span trace. The zero value is not usable; construct with
// New. All methods are safe for concurrent use and safe on a nil receiver
// (they no-op), which is how disabled instrumentation stays free.
type Registry struct {
	clock   Clock
	tracing atomic.Bool

	shards [numShards]metricShard

	spanMu sync.Mutex
	spans  []SpanRecord
}

// New returns a registry using the given clock (nil means RealClock).
// Span tracing starts disabled; metrics are always on.
func New(clock Clock) *Registry {
	if clock == nil {
		clock = RealClock()
	}
	r := &Registry{clock: clock}
	for i := range r.shards {
		r.shards[i].counters = make(map[string]*Counter)
		r.shards[i].gauges = make(map[string]*Gauge)
		r.shards[i].histograms = make(map[string]*Histogram)
	}
	return r
}

// SetTracing enables or disables span-record collection. Span durations
// feed the per-phase histograms regardless; tracing additionally keeps one
// SpanRecord per span for the NDJSON trace.
func (r *Registry) SetTracing(on bool) {
	if r == nil {
		return
	}
	r.tracing.Store(on)
}

// Tracing reports whether span records are being collected.
func (r *Registry) Tracing() bool { return r != nil && r.tracing.Load() }

// shardFor hashes a metric name to its shard (FNV-1a).
func shardFor(name string) int {
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= 16777619
	}
	return int(h % numShards)
}

// Counter is a monotonically increasing metric. The nil counter (from a nil
// registry) ignores all operations.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins metric.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Value returns the current gauge value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Counter returns (creating if needed) the named counter; nil on a nil
// registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	s := &r.shards[shardFor(name)]
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.counters[name]
	if c == nil {
		c = &Counter{}
		s.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge; nil on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	s := &r.shards[shardFor(name)]
	s.mu.Lock()
	defer s.mu.Unlock()
	g := s.gauges[name]
	if g == nil {
		g = &Gauge{}
		s.gauges[name] = g
	}
	return g
}

// HistogramWith returns (creating if needed) the named histogram with the
// given bucket bounds; nil on a nil registry. The bounds of an existing
// histogram are not changed.
func (r *Registry) HistogramWith(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	s := &r.shards[shardFor(name)]
	s.mu.Lock()
	defer s.mu.Unlock()
	h := s.histograms[name]
	if h == nil {
		h = NewHistogram(bounds)
		s.histograms[name] = h
	}
	return h
}

// Add increments the named counter by d (no-op on nil registry).
func (r *Registry) Add(name string, d int64) { r.Counter(name).Add(d) }

// Set sets the named gauge to v (no-op on nil registry).
func (r *Registry) Set(name string, v int64) { r.Gauge(name).Set(v) }

// Observe records v into the named histogram, creating it with bounds
// chosen from the name's unit suffix (see BoundsFor) if absent.
func (r *Registry) Observe(name string, v int64) {
	if r == nil {
		return
	}
	r.HistogramWith(name, BoundsFor(name)).Observe(v)
}

// CounterValue returns the named counter's value, 0 if absent or nil.
func (r *Registry) CounterValue(name string) int64 {
	if r == nil {
		return 0
	}
	s := &r.shards[shardFor(name)]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters[name].Value()
}

// GaugeValue returns the named gauge's value and whether it exists.
func (r *Registry) GaugeValue(name string) (int64, bool) {
	if r == nil {
		return 0, false
	}
	s := &r.shards[shardFor(name)]
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.gauges[name]
	if !ok {
		return 0, false
	}
	return g.Value(), true
}

// Histogram is a fixed-bucket histogram over int64 observations. Bucket i
// counts observations v with bounds[i-1] < v <= bounds[i]; the final bucket
// is the overflow (v > bounds[len-1]). Counts are atomic, so concurrent
// observers commute and totals are exact for any worker count.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1; last is overflow
	sum    atomic.Int64
	total  atomic.Int64
}

// NewHistogram builds a histogram from the given upper bucket bounds,
// sanitizing them to a strictly increasing sequence (sorted, deduplicated).
// An empty bound set yields a single overflow bucket.
func NewHistogram(bounds []int64) *Histogram {
	bs := append([]int64(nil), bounds...)
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	uniq := bs[:0]
	for i, b := range bs {
		if i == 0 || b != uniq[len(uniq)-1] {
			uniq = append(uniq, b)
		}
	}
	return &Histogram{bounds: uniq, counts: make([]atomic.Int64, len(uniq)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.total.Add(1)
}

// Bounds returns a copy of the sanitized bucket upper bounds.
func (h *Histogram) Bounds() []int64 {
	if h == nil {
		return nil
	}
	return append([]int64(nil), h.bounds...)
}

// Counts returns a copy of the per-bucket counts (last entry is overflow).
func (h *Histogram) Counts() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Default bucket bounds by unit. All are powers of a fixed base so golden
// files never depend on host behavior.
var (
	// DurationBounds covers 1µs .. 100s in decades (nanosecond values).
	DurationBounds = []int64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11}
	// SizeBounds covers 1KiB .. 16GiB in factors of 4.
	SizeBounds = []int64{1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20,
		1 << 22, 1 << 24, 1 << 26, 1 << 28, 1 << 30, 1 << 32, 1 << 34}
	// CountBounds covers 1 .. 1e9 in decades.
	CountBounds = []int64{1, 10, 100, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9}
)

// BoundsFor picks default histogram bounds from a metric name's unit
// suffix: "_ns" means durations, "_bytes" means sizes, anything else
// counts.
func BoundsFor(name string) []int64 {
	switch {
	case hasSuffix(name, "_ns"):
		return DurationBounds
	case hasSuffix(name, "_bytes"):
		return SizeBounds
	default:
		return CountBounds
	}
}

// hasSuffix is strings.HasSuffix without the import.
func hasSuffix(s, suf string) bool {
	return len(s) >= len(suf) && s[len(s)-len(suf):] == suf
}

// Field is one integer attribute attached to a span.
type Field struct {
	Key string
	Val int64
}

// SpanRecord is one completed span as kept for the NDJSON trace.
type SpanRecord struct {
	// Seq is the record's position in End order (0-based).
	Seq int
	// Phase is the span's phase name.
	Phase string
	// StartNS and DurNS are the clock reading at start and the duration.
	StartNS, DurNS int64
	// Fields are the span's attributes, sorted by key.
	Fields []Field
}

// Span is one in-flight phase measurement. A nil span (from a nil
// registry) ignores all operations, so call sites need no guards.
type Span struct {
	r      *Registry
	phase  string
	start  int64
	fields []Field
}

// StartSpan begins a span of the given phase. It returns nil — a valid,
// inert span — when the registry is nil.
func (r *Registry) StartSpan(phase string) *Span {
	if r == nil {
		return nil
	}
	return &Span{r: r, phase: phase, start: r.clock.Now()}
}

// SetInt attaches an integer attribute to the span and returns it for
// chaining. Later values for the same key win.
func (s *Span) SetInt(key string, v int64) *Span {
	if s == nil {
		return nil
	}
	for i := range s.fields {
		if s.fields[i].Key == key {
			s.fields[i].Val = v
			return s
		}
	}
	s.fields = append(s.fields, Field{Key: key, Val: v})
	return s
}

// End completes the span: its duration is observed into the
// "span.<phase>_ns" histogram, and — when tracing is enabled — a SpanRecord
// is appended to the trace with the next sequence number.
func (s *Span) End() {
	if s == nil {
		return
	}
	dur := s.r.clock.Now() - s.start
	s.r.Observe("span."+s.phase+"_ns", dur)
	if !s.r.tracing.Load() {
		return
	}
	sort.Slice(s.fields, func(i, j int) bool { return s.fields[i].Key < s.fields[j].Key })
	s.r.spanMu.Lock()
	s.r.spans = append(s.r.spans, SpanRecord{
		Seq:     len(s.r.spans),
		Phase:   s.phase,
		StartNS: s.start,
		DurNS:   dur,
		Fields:  s.fields,
	})
	s.r.spanMu.Unlock()
}

// Spans returns a copy of the recorded span trace in sequence order.
func (r *Registry) Spans() []SpanRecord {
	if r == nil {
		return nil
	}
	r.spanMu.Lock()
	defer r.spanMu.Unlock()
	return append([]SpanRecord(nil), r.spans...)
}
