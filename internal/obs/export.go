package obs

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
)

// The NDJSON export format: one JSON object per line, every line carrying a
// "type" discriminator, and — crucially for golden files and diffing — a
// byte-stable layout. Lines are hand-assembled so the field order is fixed
// by this file, not by a marshaler:
//
//	{"type":"meta","schema":1}
//	{"type":"span","seq":0,"phase":"sample","start_ns":0,"dur_ns":1000,"fields":{"seeds":64}}
//	{"type":"counter","name":"train.micro_batches","value":4}
//	{"type":"gauge","name":"plan.k","value":4}
//	{"type":"hist","name":"span.sample_ns","count":3,"sum":3000,"bounds":[...],"counts":[...]}
//
// Spans come first in sequence order, then counters, gauges, and histograms
// each sorted by name. Metric values are commutative atomics, so the bytes
// are identical for any BETTY_WORKERS; span order is the End order, which
// is deterministic for the serial training loop.

// schemaVersion guards consumers against layout changes.
const schemaVersion = 1

// Records renders the full export, one NDJSON line per element (no
// trailing newlines). The first record is the meta line.
func (r *Registry) Records() []string {
	if r == nil {
		return nil
	}
	var out []string
	out = append(out, fmt.Sprintf(`{"type":"meta","schema":%d}`, schemaVersion))
	for _, sp := range r.Spans() {
		out = append(out, spanLine(sp))
	}
	names, counters, gauges, hists := r.snapshot()
	for _, n := range names.counters {
		out = append(out, fmt.Sprintf(`{"type":"counter","name":%s,"value":%d}`,
			strconv.Quote(n), counters[n]))
	}
	for _, n := range names.gauges {
		out = append(out, fmt.Sprintf(`{"type":"gauge","name":%s,"value":%d}`,
			strconv.Quote(n), gauges[n]))
	}
	for _, n := range names.hists {
		h := hists[n]
		var b bytes.Buffer
		fmt.Fprintf(&b, `{"type":"hist","name":%s,"count":%d,"sum":%d,"bounds":`,
			strconv.Quote(n), h.Count(), h.Sum())
		writeInts(&b, h.Bounds())
		b.WriteString(`,"counts":`)
		writeInts(&b, h.Counts())
		b.WriteByte('}')
		out = append(out, b.String())
	}
	return out
}

// WriteNDJSON writes the export to w, newline-terminated.
func (r *Registry) WriteNDJSON(w io.Writer) error {
	for _, line := range r.Records() {
		if _, err := io.WriteString(w, line+"\n"); err != nil {
			return fmt.Errorf("obs: write: %w", err)
		}
	}
	return nil
}

// WriteFile writes the export to path (created or truncated). A nil
// registry writes nothing and succeeds.
func (r *Registry) WriteFile(path string) error {
	if r == nil {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	if err := r.WriteNDJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	return nil
}

// spanLine renders one span record with fields as a nested object sorted by
// key (SpanRecord.Fields are sorted at End).
func spanLine(sp SpanRecord) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, `{"type":"span","seq":%d,"phase":%s,"start_ns":%d,"dur_ns":%d,"fields":{`,
		sp.Seq, strconv.Quote(sp.Phase), sp.StartNS, sp.DurNS)
	for i, f := range sp.Fields {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Quote(f.Key))
		b.WriteByte(':')
		b.WriteString(strconv.FormatInt(f.Val, 10))
	}
	b.WriteString("}}")
	return b.String()
}

// writeInts renders a JSON array of integers.
func writeInts(b *bytes.Buffer, vs []int64) {
	b.WriteByte('[')
	for i, v := range vs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatInt(v, 10))
	}
	b.WriteByte(']')
}

// metricNames holds the sorted name lists of one snapshot.
type metricNames struct {
	counters, gauges, hists []string
}

// snapshot collects every metric across the shards with names sorted, so
// the export order is independent of shard hashing and insertion order.
func (r *Registry) snapshot() (metricNames, map[string]int64, map[string]int64, map[string]*Histogram) {
	var names metricNames
	counters := make(map[string]int64)
	gauges := make(map[string]int64)
	hists := make(map[string]*Histogram)
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		for n, c := range s.counters {
			names.counters = append(names.counters, n)
			counters[n] = c.Value()
		}
		for n, g := range s.gauges {
			names.gauges = append(names.gauges, n)
			gauges[n] = g.Value()
		}
		for n, h := range s.histograms {
			names.hists = append(names.hists, n)
			hists[n] = h
		}
		s.mu.Unlock()
	}
	sort.Strings(names.counters)
	sort.Strings(names.gauges)
	sort.Strings(names.hists)
	return names, counters, gauges, hists
}
