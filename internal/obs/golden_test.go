package obs

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"betty/internal/parallel"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenScript drives a registry through a fixed instrumentation sequence:
// a serial span script mimicking one training step, plus counter and
// histogram updates issued from inside parallel.For so the export also
// covers the concurrent path.
func goldenScript(r *Registry) {
	r.StartSpan(PhaseSample).SetInt("seeds", 64).SetInt("layers", 2).End()
	r.StartSpan(PhaseRegBuild).SetInt("outputs", 64).SetInt("edges", 480).End()
	r.StartSpan(PhasePartition).SetInt("k", 4).SetInt("outputs", 64).End()
	r.StartSpan(PhaseEstimate).SetInt("k", 4).SetInt("max_peak_bytes", 1<<20).End()
	for i := 0; i < 4; i++ {
		r.StartSpan(PhaseForward).SetInt("input_nodes", 300).SetInt("outputs", 16).End()
		r.StartSpan(PhaseBackward).SetInt("input_nodes", 300).End()
		r.Add("train.micro_batches", 1)
		r.Observe("micro.peak_bytes", int64(1<<19+i*1024))
	}
	r.StartSpan(PhaseStep).End()
	r.Add("train.steps", 1)
	r.Set("plan.k", 4)
	// Concurrent updates: 256 items, one counter increment and one
	// histogram observation each. All state is commutative, so the export
	// is byte-identical at any worker count.
	parallel.For(256, 16, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			r.Add("par.items", 1)
			r.Observe("par.value", int64(i%13))
		}
	})
}

// TestGoldenNDJSON locks the export bytes under the fake clock, and proves
// they are independent of the parallelism level.
func TestGoldenNDJSON(t *testing.T) {
	runAt := func(workers int) string {
		prev := parallel.SetWorkers(workers)
		defer parallel.SetWorkers(prev)
		r := New(NewFakeClock(0, 1000))
		r.SetTracing(true)
		goldenScript(r)
		return strings.Join(r.Records(), "\n") + "\n"
	}
	got1 := runAt(1)
	got8 := runAt(8)
	if got1 != got8 {
		t.Fatal("export differs between 1 and 8 workers")
	}

	path := filepath.Join("testdata", "golden.ndjson")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got1), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got1 != string(want) {
		t.Errorf("export drifted from golden file (run with -update to regenerate)\ngot:\n%s\nwant:\n%s", got1, want)
	}
}

// WriteNDJSON and WriteFile produce the same bytes as Records.
func TestWriteFileMatchesRecords(t *testing.T) {
	r := New(NewFakeClock(0, 1000))
	r.SetTracing(true)
	goldenScript(r)
	path := filepath.Join(t.TempDir(), "out.ndjson")
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if want := strings.Join(r.Records(), "\n") + "\n"; string(data) != want {
		t.Fatal("WriteFile bytes differ from Records")
	}
}
