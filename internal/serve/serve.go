// Package serve is the memory-aware online inference layer: a dynamic
// batcher coalesces concurrent prediction requests into one sampled batch,
// the §4.4.3 planner splits that batch into micro-batches whose estimated
// forward footprint fits the device budget, and the shared forward path
// (core.BatchInference) produces the scores.
//
// The correctness contract is exactness under coalescing: every response
// is bitwise identical to what the same request would have received alone.
// Two properties make that hold. First, sampling is node-wise
// (sample.NodeWise): a node's sampled neighborhood is a pure function of
// (seed, node, layer), never of its batch, so merging requests
// deduplicates shared frontier nodes instead of re-randomizing them.
// Second, every forward kernel computes each output row only from that
// row's own inputs, so slicing a batch into micro-batches — or merging
// requests into a batch — cannot perturb any row's float sequence.
//
// Admission is bounded: a full queue rejects immediately (ErrQueueFull →
// HTTP 429), per-request deadlines are honored at batch boundaries
// (ErrDeadlineExceeded → 504), and a closed server drains what it has
// already admitted before stopping (ErrClosed → 503 for new work). A
// panic while executing a batch fails that batch's requests and the
// worker keeps serving.
package serve

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"betty/internal/core"
	"betty/internal/dataset"
	"betty/internal/device"
	"betty/internal/embcache"
	"betty/internal/memory"
	"betty/internal/obs"
	"betty/internal/reg"
	"betty/internal/sample"
	"betty/internal/tensor"
)

// Sentinel errors of the admission path; the HTTP layer maps them to
// status codes (429, 504, 503, 400).
var (
	ErrQueueFull        = errors.New("serve: queue full")
	ErrDeadlineExceeded = errors.New("serve: deadline exceeded")
	ErrClosed           = errors.New("serve: server closed")
	ErrInvalid          = errors.New("serve: invalid request")
)

// request is one admitted prediction request awaiting batching.
type request struct {
	nodes []int32
	// deadline is the clock reading after which the request must not be
	// executed (0 = none); enq is the clock reading at admission.
	deadline int64
	enq      int64
	done     chan response
}

// response carries the per-node class scores (row i scores nodes[i]) or
// the terminal error.
type response struct {
	scores [][]float32
	err    error
}

// Server coalesces prediction requests into memory-planned batches over
// one model. Construct with New, call Start to begin serving, Close to
// drain and stop.
type Server struct {
	cfg     Config
	ds      *dataset.Dataset
	model   any
	sampler *sample.NodeWise
	spec    memory.Spec
	part    reg.BatchPartitioner
	clock   obs.Clock
	obs     *obs.Registry
	cache   *featureCache
	quant   *quantStore
	// cacheLedger is the one device ledger all resident cache state —
	// feature rows and historical embeddings — is charged to, so the two
	// caches share a single accountable budget (DESIGN.md §16).
	cacheLedger *device.Device
	// emb is the historical-embedding cache (nil when EmbMode is off).
	emb *embcache.Cache
	// frontier measures cross-batch layer-1 frontier overlap — the
	// sample.frontier.* locality signal behind the embedding cache.
	frontier *embcache.Meter
	// rowBuf stages one feature row on cache misses (worker-only).
	rowBuf []float32

	queue chan *request

	mu      sync.Mutex // guards closed, started, and the send side of queue
	closed  bool
	started bool
	wg      sync.WaitGroup
	// closeDone is closed once the first Close call has finished draining
	// and flushing; concurrent/repeat Close calls wait on it so no caller
	// returns while cache state is still being torn down.
	closeDone chan struct{}

	// batchSeq numbers executed batches for the batch log (worker-only).
	batchSeq int64
	// maxEstPeak tracks the largest planned micro-batch forward peak
	// (worker-only; exported as the serve.max_est_peak_bytes gauge).
	maxEstPeak int64
}

// New builds a server for the given dataset and model. The model must be
// one of the supported architectures (memory.SpecForInference) and cfg
// must validate; cfg.Fanouts must match the model's layer count.
func New(ds *dataset.Dataset, model any, cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	spec, err := memory.SpecForInference(model)
	if err != nil {
		return nil, err
	}
	if len(cfg.Fanouts) != spec.Model.Layers {
		return nil, fmt.Errorf("serve: %d fanouts for %d model layers", len(cfg.Fanouts), spec.Model.Layers)
	}
	if cfg.Clock == nil {
		cfg.Clock = obs.RealClock()
	}
	qs, err := newQuantStore(model, cfg.Quant)
	if err != nil {
		return nil, err
	}
	// One ledger covers all resident cache state: the feature cache's
	// worst case (CacheNodes rows at the unquantized row size, each
	// rounded to the allocation granularity) plus the embedding-cache
	// budget. Either cache hitting the ledger's ceiling evicts its own
	// tail first, so neither can starve the other beyond its share.
	embBudget := int64(0)
	if cfg.EmbMode != embcache.ModeOff {
		embBudget = cfg.EmbBudgetMiB * device.MiB
	}
	rowWorst := roundAlloc(int64(ds.FeatureDim())*4 + 4)
	ledger := device.New(int64(cfg.CacheNodes)*rowWorst+embBudget, device.CostModel{})
	var emb *embcache.Cache
	if cfg.EmbMode != embcache.ModeOff {
		emb, err = embcache.New(embcache.Config{
			Mode:        cfg.EmbMode,
			BudgetBytes: embBudget,
			MaxLag:      cfg.EmbMaxLag,
			Ledger:      ledger,
			Obs:         cfg.Obs,
		})
		if err != nil {
			return nil, err
		}
	}
	s := &Server{
		cfg:         cfg,
		ds:          ds,
		model:       model,
		sampler:     sample.NewNodeWise(cfg.Fanouts, cfg.Seed),
		spec:        spec,
		part:        reg.BettyBatch{Seed: cfg.Seed ^ 0xb7, Obs: cfg.Obs},
		clock:       cfg.Clock,
		obs:         cfg.Obs,
		cache:       newFeatureCache(cfg.CacheNodes, cfg.Quant, ledger),
		quant:       qs,
		cacheLedger: ledger,
		emb:         emb,
		frontier:    embcache.NewMeter(cfg.Obs),
		rowBuf:      make([]float32, ds.FeatureDim()),
		queue:       make(chan *request, cfg.QueueDepth),
		closeDone:   make(chan struct{}),
	}
	s.sampler.Obs = cfg.Obs
	if qs != nil {
		s.obs.Set("serve.quant_weight_bytes", qs.EncBytes)
		s.obs.Set("serve.quant_weight_f32_bytes", qs.F32Bytes)
	}
	s.obs.Set("serve.cache_ledger_capacity_bytes", ledger.Capacity())
	return s, nil
}

// roundAlloc rounds n up to the device allocation granularity, matching
// what one ledger charge for n bytes actually costs.
func roundAlloc(n int64) int64 {
	g := device.AllocGranularity
	return (n + g - 1) / g * g
}

// Start launches the batch worker. Requests may be enqueued before Start;
// they are served in admission order once the worker runs (tests use this
// to fix batch compositions deterministically). Start is idempotent, and
// Start after (or racing) Close is a no-op: launching a worker once the
// queue is closed would race Close's own drain — both would pull from the
// closed queue while Close is already flushing the caches behind it.
func (s *Server) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started || s.closed {
		return
	}
	s.started = true
	s.wg.Add(1)
	go s.worker()
}

// Close stops admission, drains every already-admitted request, waits for
// the worker to exit, and only then flushes the caches — the in-flight
// batch must complete before its featureCache/embcache writes lose their
// owner. It is idempotent, and every Close call (not just the first)
// returns only after the drain and flush have finished. Close on a
// never-Started server fails queued requests with ErrClosed instead of
// leaving their callers waiting.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.closeDone
		return nil
	}
	s.closed = true
	started := s.started
	close(s.queue)
	s.mu.Unlock()
	s.wg.Wait()
	if !started {
		// No worker ever ran: the drain is ours. (A worker started after
		// this point is impossible — Start checks closed under mu.)
		for req := range s.queue {
			s.respond(req, response{err: ErrClosed})
		}
	}
	// The worker has exited and the queue is drained: cache ownership has
	// reverted to us, so the flush cannot race a batch completion.
	s.flushCaches()
	close(s.closeDone)
	return nil
}

// flushCaches drops all resident cache state and returns its bytes to the
// ledger. Called only after the batch worker has fully stopped.
func (s *Server) flushCaches() {
	s.cache.flush()
	s.emb.Flush()
	s.obs.Set("serve.cache_nodes", int64(s.cache.len()))
	s.obs.Set("serve.cache_bytes", s.cache.residentBytes())
	s.publishLedger()
}

// publishLedger exports the shared cache ledger's residency and peak.
func (s *Server) publishLedger() {
	s.obs.Set("serve.cache_ledger_bytes", s.cacheLedger.Used())
	s.obs.Set("serve.cache_ledger_peak_bytes", s.cacheLedger.Peak())
}

// Invalidate marks every historical embedding stale — the weights changed
// out from under the cache (checkpoint swap). Satisfies
// checkpoint.Invalidator, so weight loads can be written as
// checkpoint.LoadFileAndInvalidate(path, model, server).
func (s *Server) Invalidate() {
	s.emb.Invalidate()
}

// Predict scores the given nodes and blocks until the response is ready.
// timeout overrides the configured default deadline; negative means "use
// the default", 0 means "no deadline".
func (s *Server) Predict(nodes []int32, timeout time.Duration) ([][]float32, error) {
	req, err := s.enqueue(nodes, timeout)
	if err != nil {
		return nil, err
	}
	res := <-req.done
	return res.scores, res.err
}

// enqueue validates and admits one request without waiting for its result.
func (s *Server) enqueue(nodes []int32, timeout time.Duration) (*request, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("%w: no nodes", ErrInvalid)
	}
	if len(nodes) > s.cfg.MaxRequestNodes {
		return nil, fmt.Errorf("%w: %d nodes exceeds the %d-node request bound",
			ErrInvalid, len(nodes), s.cfg.MaxRequestNodes)
	}
	for _, v := range nodes {
		if v < 0 || v >= s.ds.Graph.NumNodes() {
			return nil, fmt.Errorf("%w: node %d out of range [0, %d)", ErrInvalid, v, s.ds.Graph.NumNodes())
		}
	}
	if timeout < 0 {
		timeout = s.cfg.DefaultTimeout
	}
	sp := s.obs.StartSpan(obs.PhaseEnqueue).SetInt("nodes", int64(len(nodes)))
	defer sp.End()
	now := s.clock.Now()
	req := &request{
		nodes: append([]int32(nil), nodes...),
		enq:   now,
		done:  make(chan response, 1),
	}
	if timeout > 0 {
		req.deadline = now + timeout.Nanoseconds()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		s.obs.Add("serve.rejected_closed", 1)
		return nil, ErrClosed
	}
	select {
	case s.queue <- req:
	default:
		s.obs.Add("serve.rejected_queue_full", 1)
		return nil, ErrQueueFull
	}
	s.obs.Add("serve.requests", 1)
	s.obs.Set("serve.queue_depth", int64(len(s.queue)))
	return req, nil
}

// worker is the batch loop: collect, filter expired, execute, repeat,
// until the queue is closed and drained.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		req, ok := <-s.queue
		if !ok {
			return
		}
		batch := s.collect(req)
		// Publish the depth at dequeue time too, so an observer can tell
		// "queued" from "in flight" while a batch runs.
		s.obs.Set("serve.queue_depth", int64(len(s.queue)))
		s.obs.Set("serve.inflight_requests", int64(len(batch)))
		now := s.clock.Now()
		live := batch[:0]
		for _, r := range batch {
			if r.deadline > 0 && now > r.deadline {
				s.obs.Add("serve.deadline_exceeded", 1)
				s.respond(r, response{err: ErrDeadlineExceeded})
				continue
			}
			live = append(live, r)
		}
		if len(live) > 0 {
			s.runBatch(live)
		}
		s.obs.Set("serve.inflight_requests", 0)
		s.obs.Set("serve.queue_depth", int64(len(s.queue)))
	}
}

// collect gathers requests for one batch, starting from first: it keeps
// pulling until the batch holds MaxBatch seed nodes, the queue is empty
// (MaxWait 0) or MaxWait has elapsed, or the queue closes.
func (s *Server) collect(first *request) []*request {
	batch := []*request{first}
	seeds := len(first.nodes)
	if s.cfg.MaxWait <= 0 {
		for seeds < s.cfg.MaxBatch {
			select {
			case r, ok := <-s.queue:
				if !ok {
					return batch
				}
				batch = append(batch, r)
				seeds += len(r.nodes)
			default:
				return batch
			}
		}
		return batch
	}
	timer := time.NewTimer(s.cfg.MaxWait)
	defer timer.Stop()
	for seeds < s.cfg.MaxBatch {
		select {
		case r, ok := <-s.queue:
			if !ok {
				return batch
			}
			batch = append(batch, r)
			seeds += len(r.nodes)
		case <-timer.C:
			return batch
		}
	}
	return batch
}

// respond delivers res to req exactly once and records its end-to-end
// latency.
func (s *Server) respond(req *request, res response) {
	s.obs.Observe("serve.e2e_ns", s.clock.Now()-req.enq)
	req.done <- res
}

// runBatch executes one coalesced batch end to end. A panic anywhere in
// the pipeline is isolated here: the batch's requests fail, the worker
// survives.
func (s *Server) runBatch(batch []*request) {
	defer func() {
		if r := recover(); r != nil {
			s.obs.Add("serve.panics", 1)
			err := fmt.Errorf("serve: batch panicked: %v", r)
			for _, req := range batch {
				s.respond(req, response{err: err})
			}
		}
	}()
	sp := s.obs.StartSpan(obs.PhaseBatch).SetInt("requests", int64(len(batch)))
	defer sp.End()
	now := s.clock.Now()
	for _, req := range batch {
		s.obs.Observe("serve.queue_wait_ns", now-req.enq)
	}

	// Deduplicate the requests' nodes into one seed list. Union order is
	// first-occurrence order, a pure function of the batch composition.
	index := make(map[int32]int, len(batch[0].nodes)*len(batch))
	var union []int32
	for _, req := range batch {
		for _, v := range req.nodes {
			if _, ok := index[v]; !ok {
				index[v] = len(union)
				union = append(union, v)
			}
		}
	}
	sp.SetInt("union_nodes", int64(len(union)))

	scores, err := s.scoreUnion(union)
	if err != nil {
		for _, req := range batch {
			s.respond(req, response{err: err})
		}
		return
	}

	for _, req := range batch {
		out := make([][]float32, len(req.nodes))
		for i, v := range req.nodes {
			out[i] = scores[index[v]]
		}
		s.respond(req, response{scores: out})
	}
	s.obs.Add("serve.batches", 1)
	s.obs.Add("serve.batched_requests", int64(len(batch)))
	s.obs.Observe("serve.batch_requests", int64(len(batch)))
}

// scoreUnion samples, plans, and forwards the deduplicated seed list,
// returning one score row per union node. It also emits the batch-log
// line, which must happen after planning (it records K and the estimate).
func (s *Server) scoreUnion(union []int32) ([][]float32, error) {
	blocks, err := s.sampler.Sample(s.ds.Graph, union)
	if err != nil {
		return nil, fmt.Errorf("serve: sampling: %w", err)
	}
	// blocks[0].DstNID is the layer-1 destination frontier — the
	// embedding cache's key space — so its overlap across consecutive
	// batches is exactly the reusable fraction.
	s.frontier.Observe(blocks[0].DstNID)
	pl := &memory.Planner{
		Capacity:     s.cfg.CapacityBytes,
		Partitioner:  s.part,
		Spec:         s.spec,
		MaxK:         s.cfg.MaxK,
		SafetyMargin: s.cfg.SafetyMargin,
		Obs:          s.obs,
		Peak:         memory.Breakdown.ForwardPeak,
	}
	plan, err := pl.Plan(blocks)
	if err != nil {
		return nil, fmt.Errorf("serve: planning: %w", err)
	}
	if plan.MaxPeak > s.maxEstPeak {
		s.maxEstPeak = plan.MaxPeak
		s.obs.Set("serve.max_est_peak_bytes", s.maxEstPeak)
	}

	// Quantized deployments keep only encoded weights between batches;
	// materialize the round-tripped f32 weights for this batch's forwards
	// and return the scratch to the pool on the way out.
	s.quant.install()
	defer s.quant.uninstall()

	scores := make([][]float32, len(union))
	for gi, micro := range plan.Micro {
		feats, err := s.gather(micro[0].SrcNID)
		if err != nil {
			return nil, err
		}
		fsp := s.obs.StartSpan(obs.PhaseForward).
			SetInt("outputs", int64(len(plan.Groups[gi]))).
			SetInt("inputs", int64(micro[0].NumSrc))
		// layer1_dst_rows counts what a cache-less forward computes at
		// layer 1; against embcache.computed_rows it yields the
		// compute-per-request saving in the bench report.
		s.obs.Add("serve.layer1_dst_rows", int64(micro[0].NumDst))
		logits, err := core.BatchInferenceCached(s.model, micro, feats, s.emb)
		fsp.End()
		if err != nil {
			return nil, fmt.Errorf("serve: forward: %w", err)
		}
		// Groups[gi] holds the union positions this micro-batch scored,
		// in the micro-batch's destination order.
		for ri, pos := range plan.Groups[gi] {
			scores[pos] = append([]float32(nil), logits.Row(ri)...)
		}
	}
	s.obs.Add("serve.served_nodes", int64(len(union)))
	s.writeBatchLog(union, plan)
	return scores, nil
}

// gather stages the input features for the given node IDs through the LRU
// cache (when enabled). Under QuantOff rows are exact copies of the host
// rows; under a quantized mode every staged row — hit or miss — is the
// codec round-trip of the host row, so in all modes cache state never
// changes the staged bytes. Rows come through the dataset's FeatureSource,
// so a disk-backed deployment serves from its shard cache instead of a
// resident matrix; a shard that cannot be loaded fails the batch loudly.
func (s *Server) gather(nids []int32) (*tensor.Tensor, error) {
	if s.cache == nil && s.cfg.Quant == tensor.QuantOff {
		return s.ds.GatherFeatures(nids)
	}
	out := tensor.New(len(nids), s.ds.FeatureDim())
	var hits, misses int64
	for i, nid := range nids {
		if row, ok := s.cache.get(nid); ok {
			row.decodeInto(out.Row(i))
			hits++
			continue
		}
		// Miss: fetch through the source, encode, stage the decoded
		// encoding — identical bytes to a later hit on the same row.
		// encodeRow copies, so the single staging buffer is safe to reuse.
		if err := s.ds.GatherFeatureRow(s.rowBuf, nid); err != nil {
			return nil, fmt.Errorf("serve: feature row %d: %w", nid, err)
		}
		row := encodeRow(s.cfg.Quant, s.rowBuf)
		row.decodeInto(out.Row(i))
		s.cache.put(nid, row)
		misses++
	}
	s.obs.Add("serve.cache_hits", hits)
	s.obs.Add("serve.cache_misses", misses)
	s.obs.Set("serve.cache_nodes", int64(s.cache.len()))
	s.obs.Set("serve.cache_bytes", s.cache.residentBytes())
	s.publishLedger()
	return out, nil
}

// writeBatchLog emits one hand-assembled NDJSON line describing the batch
// composition and plan. Every field is a pure function of the admitted
// request trace — no timestamps, no durations — so a fixed trace yields
// byte-identical logs at any BETTY_WORKERS.
func (s *Server) writeBatchLog(union []int32, plan *memory.Plan) {
	w := s.cfg.BatchLog
	seq := s.batchSeq
	s.batchSeq++
	if w == nil {
		return
	}
	var b bytes.Buffer
	fmt.Fprintf(&b, `{"type":"batch","seq":%d,"union":%d,"k":%d,"est_peak_bytes":%d,"nodes":`,
		seq, len(union), plan.K, plan.MaxPeak)
	b.WriteByte('[')
	for i, v := range union {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatInt(int64(v), 10))
	}
	b.WriteString("]}\n")
	if _, err := w.Write(b.Bytes()); err != nil {
		s.obs.Add("serve.batch_log_errors", 1)
	}
}

// Stats is a point-in-time snapshot of the serving counters most tests
// and operators need without parsing the metrics export.
type Stats struct {
	Requests, Batches, BatchedRequests  int64
	RejectedQueueFull, DeadlineExceeded int64
	CacheHits, CacheMisses              int64
	EmbHits, EmbMisses                  int64
	MaxEstPeakBytes                     int64
}

// StatsSnapshot reads the counters from the registry (zero without one).
func (s *Server) StatsSnapshot() Stats {
	embHits, embMisses := s.emb.Stats()
	return Stats{
		Requests:          s.obs.CounterValue("serve.requests"),
		Batches:           s.obs.CounterValue("serve.batches"),
		BatchedRequests:   s.obs.CounterValue("serve.batched_requests"),
		RejectedQueueFull: s.obs.CounterValue("serve.rejected_queue_full"),
		DeadlineExceeded:  s.obs.CounterValue("serve.deadline_exceeded"),
		CacheHits:         s.obs.CounterValue("serve.cache_hits"),
		CacheMisses:       s.obs.CounterValue("serve.cache_misses"),
		EmbHits:           embHits,
		EmbMisses:         embMisses,
		MaxEstPeakBytes:   func() int64 { v, _ := s.obs.GaugeValue("serve.max_est_peak_bytes"); return v }(),
	}
}
