package serve

import (
	"strings"
	"testing"

	"betty/internal/core"
	"betty/internal/obs"
	"betty/internal/sample"
	"betty/internal/tensor"
)

// quantScores runs one fresh server over nodes under cfg and returns the
// response rows.
func quantScores(t *testing.T, cfg Config, nodes []int32, model any) [][]float32 {
	t.Helper()
	d := testData(t)
	s := newTestServer(t, d, model, cfg)
	s.Start()
	defer s.Close()
	scores, err := s.Predict(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	return scores
}

// directScores computes the reference: sample with the server's sampler
// seed, stage features through mapRow, run the shared forward.
func directScores(t *testing.T, cfg Config, nodes []int32, model any, mapRow func(dst, src []float32)) [][]float32 {
	t.Helper()
	d := testData(t)
	sampler := sample.NewNodeWise(cfg.Fanouts, cfg.Seed)
	blocks, err := sampler.Sample(d.Graph, nodes)
	if err != nil {
		t.Fatal(err)
	}
	feats := tensor.New(blocks[0].NumSrc, d.FeatureDim())
	for i, nid := range blocks[0].SrcNID {
		mapRow(feats.Row(i), d.Features.Row(int(nid)))
	}
	logits, err := core.BatchInference(model, blocks, feats)
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]float32, len(nodes))
	for i := range nodes {
		out[i] = append([]float32(nil), logits.Row(i)...)
	}
	return out
}

// roundTripParams applies the serving quantization rule to a model in
// place: every weight matrix (more than one row) whose encoding is
// strictly smaller than f32 is replaced by its codec round-trip. This is
// the same rule newQuantStore applies, restated independently so the test
// pins the contract rather than the implementation.
func roundTripParams(t *testing.T, model any, mode tensor.QuantMode) {
	t.Helper()
	pm, ok := model.(interface{ Params() []*tensor.Var })
	if !ok {
		t.Fatalf("model %T has no Params", model)
	}
	n := 0
	for _, p := range pm.Params() {
		if p.Value.Rows() <= 1 {
			continue
		}
		q := tensor.Quantize(p.Value, mode)
		if q.Bytes() >= int64(p.Value.Len())*4 {
			continue
		}
		q.DecodeInto(p.Value.Data)
		n++
	}
	if n == 0 {
		t.Fatalf("%v round-trip touched no parameter", mode)
	}
}

// TestQuantOffByteIdentity is the BETTY_QUANT=off contract: the default
// configuration serves exactly what the shared forward produces from the
// exact f32 weights and features — the quantization machinery must be
// fully inert when off.
func TestQuantOffByteIdentity(t *testing.T) {
	d := testData(t)
	model := testModel(t, d)
	nodes := []int32{3, 8, 120, 700, 41}
	cfg := testConfig(obs.NewFakeClock(0, 1), nil)
	got := quantScores(t, cfg, nodes, model)
	want := directScores(t, cfg, nodes, model, func(dst, src []float32) { copy(dst, src) })
	if !bitwiseEqual(got, want) {
		t.Fatal("QuantOff serving differs from the exact shared forward")
	}
}

// TestQuantServingMatchesRoundTrippedReference pins what quantized serving
// IS: bitwise identical to running the exact f32 forward on the
// codec-round-tripped weights and features. The forward kernels never see
// a quantized number — only decoded f32 — so the entire deployment error
// is the codec's documented round-trip error propagated through the model,
// and the scores must still land within a loose end-to-end band of exact.
func TestQuantServingMatchesRoundTrippedReference(t *testing.T) {
	d := testData(t)
	nodes := []int32{3, 8, 120, 700, 41, 77, 410}
	baseCfg := testConfig(obs.NewFakeClock(0, 1), nil)
	exact := directScores(t, baseCfg, nodes, testModel(t, d),
		func(dst, src []float32) { copy(dst, src) })

	cases := []struct {
		mode  tensor.QuantMode
		bound float64 // end-to-end |quant - exact| ceiling for this model
	}{
		{tensor.QuantF16, 0.05},
		{tensor.QuantInt8, 1.0},
	}
	for _, tc := range cases {
		t.Run(tc.mode.String(), func(t *testing.T) {
			reg := obs.New(obs.NewFakeClock(0, 1))
			cfg := testConfig(obs.NewFakeClock(0, 1), reg)
			cfg.Quant = tc.mode
			// The server quantizes its model in place; reference gets its
			// own identically-seeded instance, round-tripped by the rule.
			got := quantScores(t, cfg, nodes, testModel(t, d))
			ref := testModel(t, d)
			roundTripParams(t, ref, tc.mode)
			want := directScores(t, cfg, nodes, ref, func(dst, src []float32) {
				encodeRow(tc.mode, src).decodeInto(dst)
			})
			if !bitwiseEqual(got, want) {
				t.Fatal("quantized serving differs from round-tripped reference forward")
			}
			// The compressed weights must actually be smaller...
			enc, _ := reg.GaugeValue("serve.quant_weight_bytes")
			f32, _ := reg.GaugeValue("serve.quant_weight_f32_bytes")
			if enc <= 0 || f32 <= 0 || enc >= f32 {
				t.Fatalf("quant weight bytes %d vs f32 %d: no compression recorded", enc, f32)
			}
			// ...and the end-to-end error bounded.
			var worst float64
			for i := range got {
				for j := range got[i] {
					if dv := float64(got[i][j]) - float64(exact[i][j]); dv > worst {
						worst = dv
					} else if -dv > worst {
						worst = -dv
					}
				}
			}
			if worst == 0 {
				t.Fatal("quantized scores identical to exact — quantization did not engage")
			}
			if worst > tc.bound {
				t.Fatalf("max |quant-exact| = %g exceeds %g", worst, tc.bound)
			}
		})
	}
}

// Quantized gather round-trips misses through the codec before staging, so
// the cache cannot change a prediction: a cold server, a warm cache, and a
// cache-disabled server must serve identical bytes.
func TestQuantCacheInvisible(t *testing.T) {
	d := testData(t)
	nodes := []int32{3, 8, 120, 700}
	for _, mode := range []tensor.QuantMode{tensor.QuantF16, tensor.QuantInt8} {
		cfg := testConfig(obs.NewFakeClock(0, 1), nil)
		cfg.Quant = mode
		s := newTestServer(t, d, testModel(t, d), cfg)
		s.Start()
		cold, err := s.Predict(nodes, 0)
		if err != nil {
			t.Fatal(err)
		}
		warm, err := s.Predict(nodes, 0) // all hits now
		if err != nil {
			t.Fatal(err)
		}
		s.Close()
		if !bitwiseEqual(cold, warm) {
			t.Fatalf("%v: warm-cache response differs from cold", mode)
		}
		noCache := cfg
		noCache.CacheNodes = 0
		bare := quantScores(t, noCache, nodes, testModel(t, d))
		if !bitwiseEqual(cold, bare) {
			t.Fatalf("%v: cache-disabled response differs from cached", mode)
		}
	}
}

// BETTY_QUANT is applied by ApplyEnv with the same fail-loudly contract as
// the other serving knobs.
func TestQuantEnv(t *testing.T) {
	env := func(m map[string]string) func(string) string {
		return func(k string) string { return m[k] }
	}
	cfg := Defaults()
	cfg.Fanouts = []int{4}
	if err := cfg.ApplyEnv(env(map[string]string{EnvQuant: "int8"})); err != nil {
		t.Fatal(err)
	}
	if cfg.Quant != tensor.QuantInt8 {
		t.Fatalf("Quant = %v, want int8", cfg.Quant)
	}
	if err := cfg.ApplyEnv(env(map[string]string{EnvQuant: "off"})); err != nil {
		t.Fatal(err)
	}
	if cfg.Quant != tensor.QuantOff {
		t.Fatalf("Quant = %v, want off", cfg.Quant)
	}
	err := cfg.ApplyEnv(env(map[string]string{EnvQuant: "fp16"}))
	if err == nil || !strings.Contains(err.Error(), "BETTY_QUANT") {
		t.Fatalf("malformed BETTY_QUANT accepted: %v", err)
	}
}
