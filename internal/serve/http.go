package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"betty/internal/memory"
)

// PredictRequest is the POST /v1/predict body.
type PredictRequest struct {
	// Nodes are the global node IDs to score.
	Nodes []int32 `json:"nodes"`
	// TimeoutMS overrides the server's default deadline for this request:
	// absent or 0 uses the default, a positive value sets the deadline,
	// -1 disables it.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// PredictResponse is the success body: Scores[i] holds the class scores
// (unnormalized logits) for Nodes[i]. Go's encoding/json renders float32
// with the shortest round-tripping representation, so decoding the scores
// back to float32 is bit-exact — clients can compare predictions across
// servers bitwise.
type PredictResponse struct {
	Nodes  []int32     `json:"nodes"`
	Scores [][]float32 `json:"scores"`
}

// errorResponse is the failure body of every endpoint.
type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the server's HTTP API:
//
//	POST /v1/predict — score seed nodes (dynamic batching applies)
//	GET  /healthz    — liveness ("ok", or "draining" after Close)
//	GET  /metricsz   — the obs registry as NDJSON (empty without one)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/predict", s.handlePredict)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metricsz", s.handleMetricsz)
	return mux
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req PredictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if req.TimeoutMS < -1 {
		writeError(w, http.StatusBadRequest, "timeout_ms must be >= -1")
		return
	}
	// Predict's timeout convention: negative = server default, 0 = none.
	timeout := -time.Millisecond
	switch {
	case req.TimeoutMS == -1:
		timeout = 0
	case req.TimeoutMS > 0:
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	scores, err := s.Predict(req.Nodes, timeout)
	if err != nil {
		writeError(w, statusFor(err), err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(PredictResponse{Nodes: req.Nodes, Scores: scores}); err != nil {
		s.obs.Add("serve.http_encode_errors", 1)
	}
}

// statusFor maps the admission sentinels to their documented status codes.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrInvalid):
		return http.StatusBadRequest // 400
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests // 429
	case errors.Is(err, ErrDeadlineExceeded):
		return http.StatusGatewayTimeout // 504
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable // 503
	case errors.Is(err, memory.ErrCannotFit):
		return http.StatusInsufficientStorage // 507: request cannot fit the budget at any K
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	status := "ok"
	code := http.StatusOK
	if closed {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"status": status})
}

func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	if s.obs == nil {
		return
	}
	if err := s.obs.WriteNDJSON(w); err != nil {
		s.obs.Add("serve.http_encode_errors", 1)
	}
}

func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorResponse{Error: msg})
}
