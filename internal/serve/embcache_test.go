package serve

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"betty/internal/checkpoint"
	"betty/internal/core"
	"betty/internal/dataset"
	"betty/internal/embcache"
	"betty/internal/obs"
)

// The serving-side embedding-cache suite (DESIGN.md §16): cross-batch
// exact verification, checkpoint-swap invalidation end to end, the hit
// rate under skewed repeat traffic, the shared-ledger budget invariant,
// and the graceful-drain pin for the Start/Close race fix.

// Cross-batch exact mode is only sound because serving samples node-wise:
// a node's layer-1 row is a pure function of (seed, node, weights), never
// of its batch, so a later batch recomputing a cached node must reproduce
// it bitwise. Three overlapping requests on one server exercise exactly
// that verify path — and each response must still be bitwise what the
// request would have gotten alone.
func TestExactModeCrossBatchOverlap(t *testing.T) {
	d := testData(t)
	model := testModel(t, d)
	reg := obs.New(obs.NewFakeClock(0, 1))
	cfg := testConfig(obs.NewFakeClock(0, 1), reg) // EmbMode defaults to exact
	s := newTestServer(t, d, model, cfg)
	s.Start()
	defer s.Close()

	soloCfg := cfg
	soloCfg.Obs = obs.New(obs.NewFakeClock(0, 1))
	for _, nodes := range [][]int32{
		{3, 8, 120, 700},
		{8, 3, 200, 305}, // overlaps batch 0: its rows get re-verified
		{700, 305, 9, 42},
	} {
		got, err := s.Predict(nodes, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !bitwiseEqual(got, soloScores(t, d, model, soloCfg, nodes)) {
			t.Fatalf("coalesced response for %v diverged from solo", nodes)
		}
	}
	if v := reg.CounterValue("embcache.verify_failures"); v != 0 {
		t.Fatalf("cross-batch exact verify failed %d times", v)
	}
	if v, ok := reg.GaugeValue("embcache.resident_rows"); !ok || v == 0 {
		t.Fatal("exact mode never populated the cache")
	}
}

// The invalidation-on-checkpoint-swap end-to-end: train → save A → train →
// save B, serve A in reuse mode, warm the cache, swap to B through
// LoadFileAndInvalidate, and the very next predictions must be bitwise a
// fresh B server's — no stale layer-1 row survives. The negative control
// (same swap without Invalidate) proves the invalidation is load-bearing.
func TestCheckpointSwapInvalidation(t *testing.T) {
	d := testData(t)
	tr, err := core.BuildSAGE(d, core.Options{
		Seed: 50, Hidden: 16, Fanouts: []int{4, 6}, FixedK: 2, LR: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	train := func(epochs int) {
		for i := 0; i < epochs; i++ {
			if _, err := tr.Engine.TrainEpochMicro(); err != nil {
				t.Fatal(err)
			}
		}
	}
	dir := t.TempDir()
	ckptA := filepath.Join(dir, "a.ckpt")
	ckptB := filepath.Join(dir, "b.ckpt")
	train(2)
	if err := checkpoint.SaveFile(ckptA, tr.Model, nil); err != nil {
		t.Fatal(err)
	}
	train(2)
	if err := checkpoint.SaveFile(ckptB, tr.Model, nil); err != nil {
		t.Fatal(err)
	}

	loaded := func(path string) *core.Setup {
		su, err := core.BuildSAGE(d, core.Options{Seed: 1, Hidden: 16, Fanouts: []int{4, 6}})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := checkpoint.LoadFile(path, su.Model); err != nil {
			t.Fatal(err)
		}
		return su
	}
	nodes := []int32{3, 8, 120, 700, 41, 5}
	offCfg := testConfig(obs.NewFakeClock(0, 1), obs.New(nil))
	offCfg.EmbMode = embcache.ModeOff
	groundA := soloScores(t, d, loaded(ckptA).Model, offCfg, nodes)
	groundB := soloScores(t, d, loaded(ckptB).Model, offCfg, nodes)
	if bitwiseEqual(groundA, groundB) {
		t.Fatal("checkpoints A and B score identically — training never moved the weights")
	}

	su := loaded(ckptA)
	reg := obs.New(obs.NewFakeClock(0, 1))
	cfg := testConfig(obs.NewFakeClock(0, 1), reg)
	cfg.EmbMode = embcache.ModeReuse
	s := newTestServer(t, d, su.Model, cfg)
	s.Start()
	defer s.Close()
	for pass := 0; pass < 2; pass++ { // second pass serves warm layer-1 hits
		got, err := s.Predict(nodes, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !bitwiseEqual(got, groundA) {
			t.Fatalf("pass %d under checkpoint A diverged from ground truth", pass)
		}
	}
	if st := s.StatsSnapshot(); st.EmbHits == 0 {
		t.Fatal("warm pass produced no reuse hits")
	}

	// The swap: weights replaced, then the server (a checkpoint.Invalidator)
	// marks every cached row stale before any request can read it.
	if _, err := checkpoint.LoadFileAndInvalidate(ckptB, su.Model, s); err != nil {
		t.Fatal(err)
	}
	got, err := s.Predict(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bitwiseEqual(got, groundB) {
		t.Fatal("post-swap predictions reused stale embeddings")
	}
	if reg.CounterValue("embcache.invalidations") != 1 {
		t.Fatal("checkpoint swap did not invalidate the cache")
	}
	if reg.CounterValue("embcache.stale_drops") == 0 {
		t.Fatal("invalidated rows were never dropped at lookup")
	}

	// Negative control: the same warm-then-swap without Invalidate keeps
	// serving the stale rows, so its output must NOT match fresh B.
	su2 := loaded(ckptA)
	cfg2 := testConfig(obs.NewFakeClock(0, 1), obs.New(obs.NewFakeClock(0, 1)))
	cfg2.EmbMode = embcache.ModeReuse
	s2 := newTestServer(t, d, su2.Model, cfg2)
	s2.Start()
	defer s2.Close()
	if _, err := s2.Predict(nodes, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := checkpoint.LoadFile(ckptB, su2.Model); err != nil {
		t.Fatal(err)
	}
	got2, err := s2.Predict(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	if bitwiseEqual(got2, groundB) {
		t.Fatal("control is vacuous: stale reuse matched fresh weights without invalidation")
	}
}

// Skewed repeat traffic is the workload the reuse mode exists for: with a
// power-law node distribution and a repeated trace, at least 30% of
// layer-1 destinations must be served from the cache (the ISSUE's
// acceptance floor), and the frontier meter must see the same locality.
func TestEmbcacheSkewedHitRate(t *testing.T) {
	d := testData(t)
	model := testModel(t, d)
	reg := obs.New(nil)
	cfg := testConfig(nil, reg) // real clock: RunLoad measures wall time
	cfg.EmbMode = embcache.ModeReuse
	cfg.QueueDepth = 256
	s := newTestServer(t, d, model, cfg)
	s.Start()
	defer s.Close()

	lc := LoadConfig{Requests: 150, NodesPerRequest: 8, Seed: 7, Skew: 3}
	for pass := 0; pass < 2; pass++ {
		rep, err := RunLoad(s, lc)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Errors != 0 {
			t.Fatalf("pass %d: %d load errors", pass, rep.Errors)
		}
	}
	st := s.StatsSnapshot()
	total := st.EmbHits + st.EmbMisses
	if total == 0 {
		t.Fatal("load run performed no layer-1 cache lookups")
	}
	if rate := float64(st.EmbHits) / float64(total); rate < 0.30 {
		t.Fatalf("reuse hit rate %.2f under skewed repeat load, want >= 0.30", rate)
	}
	if reg.CounterValue("sample.frontier.reuse_nodes") == 0 {
		t.Fatal("frontier meter saw no cross-batch overlap on a skewed trace")
	}
}

// The budget invariant under pressure: a graph whose frontier wants more
// rows than the 1 MiB embedding budget holds must evict — never exceed —
// and the shared cache ledger's peak stays at or under its capacity. With
// SERVE_E2E_LEDGER set, the run's full metric ledger is written as NDJSON
// (the CI audit artifact).
func TestEmbcacheLedgerE2E(t *testing.T) {
	d, err := dataset.Generate(dataset.GenConfig{
		Name: "t4k", Nodes: 4096, AvgDegree: 10, FeatureDim: 24,
		NumClasses: 5, Homophily: 0.8, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	su, err := core.BuildSAGE(d, core.Options{Seed: 50, Hidden: 16, Fanouts: []int{4, 6}})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.New(nil)
	cfg := testConfig(nil, reg)
	cfg.EmbMode = embcache.ModeReuse
	cfg.EmbBudgetMiB = 1
	cfg.QueueDepth = 512
	s := newTestServer(t, d, su.Model, cfg)
	s.Start()

	rep, err := RunLoad(s, LoadConfig{Requests: 400, NodesPerRequest: 8, Seed: 11, Skew: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d load errors", rep.Errors)
	}

	// Mid-life invariants, read while the cache is still resident.
	budget, ok := reg.GaugeValue("embcache.budget_bytes")
	if !ok || budget <= 0 {
		t.Fatal("embedding budget gauge missing")
	}
	if res, ok := reg.GaugeValue("embcache.resident_bytes"); !ok || res > budget {
		t.Fatalf("resident %d bytes exceeds the %d-byte budget", res, budget)
	}
	if reg.CounterValue("embcache.evictions") == 0 {
		t.Fatal("a frontier larger than the budget never evicted")
	}
	if st := s.StatsSnapshot(); st.EmbHits == 0 {
		t.Fatal("skewed load produced no reuse hits")
	}

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	capacity, ok := reg.GaugeValue("serve.cache_ledger_capacity_bytes")
	if !ok || capacity <= 0 {
		t.Fatal("cache ledger capacity gauge missing")
	}
	if peak, ok := reg.GaugeValue("serve.cache_ledger_peak_bytes"); !ok || peak > capacity {
		t.Fatalf("cache ledger peak %d exceeds capacity %d", peak, capacity)
	}
	if used, ok := reg.GaugeValue("serve.cache_ledger_bytes"); !ok || used != 0 {
		t.Fatalf("flush left %d bytes charged to the ledger", used)
	}

	if path := os.Getenv("SERVE_E2E_LEDGER"); path != "" {
		if err := reg.WriteFile(path); err != nil {
			t.Fatalf("writing ledger artifact: %v", err)
		}
	}
}

// The graceful-drain pin for the flush-on-shutdown race fix: Close racing
// in-flight Predicts must give every request exactly one terminal outcome
// (scores, or ErrClosed at admission), concurrent and repeated Close calls
// all succeed after the drain, and Start after Close stays a no-op. A
// dropped request hangs its Predict and fails the test by timeout.
func TestGracefulDrainUnderLoad(t *testing.T) {
	d := testData(t)
	model := testModel(t, d)
	for round := 0; round < 3; round++ {
		reg := obs.New(nil)
		cfg := testConfig(nil, reg) // real clock, drain-only batching
		cfg.QueueDepth = 256
		s := newTestServer(t, d, model, cfg)
		s.Start()

		const callers = 24
		var wg sync.WaitGroup
		outcomes := make([]error, callers)
		scores := make([][][]float32, callers)
		for i := 0; i < callers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sc, err := s.Predict([]int32{int32(i), int32(i + 100), 7}, 0)
				scores[i], outcomes[i] = sc, err
			}(i)
		}
		// Widen the race window differently each round: round 0 closes
		// immediately, later rounds close mid-drain.
		time.Sleep(time.Duration(round) * 500 * time.Microsecond)
		closeErrs := make(chan error, 2)
		go func() { closeErrs <- s.Close() }()
		go func() { closeErrs <- s.Close() }()
		wg.Wait()
		for i := 0; i < 2; i++ {
			if err := <-closeErrs; err != nil {
				t.Fatalf("round %d: Close: %v", round, err)
			}
		}
		for i, err := range outcomes {
			switch {
			case err == nil:
				if len(scores[i]) != 3 {
					t.Fatalf("round %d request %d: %d score rows for 3 nodes", round, i, len(scores[i]))
				}
			case errors.Is(err, ErrClosed):
			default:
				t.Fatalf("round %d request %d: unexpected terminal error %v", round, i, err)
			}
		}
		// Once drained, the server stays closed: Start is a no-op and new
		// admissions are rejected, not silently dropped.
		s.Start()
		if _, err := s.Predict([]int32{1}, 0); !errors.Is(err, ErrClosed) {
			t.Fatalf("round %d: Predict after Close returned %v, want ErrClosed", round, err)
		}
	}
}
