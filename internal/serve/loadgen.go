package serve

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"betty/internal/rng"
)

// LoadConfig parameterizes the open-loop load generator: requests are
// issued at seeded exponential inter-arrival gaps regardless of how fast
// the server answers (open-loop, so queueing delay is observed rather
// than hidden by back-to-back closed-loop issuance).
type LoadConfig struct {
	// Requests is the total number of requests to issue.
	Requests int
	// NodesPerRequest is the seed-node count of each request.
	NodesPerRequest int
	// MeanGap is the mean inter-arrival gap (0 = issue back to back).
	MeanGap time.Duration
	// Timeout is the per-request deadline passed to Predict (negative =
	// server default, 0 = none).
	Timeout time.Duration
	// Seed drives node selection and the arrival process.
	Seed uint64
	// Skew shapes the node popularity distribution. <= 1 keeps the
	// uniform draw; above 1, node i is drawn with probability density
	// proportional to a power law (idx = n * u^Skew for uniform u), so a
	// small set of hot nodes dominates the trace — the temporal-locality
	// shape real serving traffic has, and what the historical-embedding
	// cache's hit rate is measured against.
	Skew float64
}

// LoadReport summarizes one load run.
type LoadReport struct {
	Requests int   `json:"requests"`
	Errors   int   `json:"errors"`
	DurNS    int64 `json:"dur_ns"`
	// ThroughputRPS counts successful responses per wall-clock second.
	ThroughputRPS float64 `json:"throughput_rps"`
	// Latency percentiles over successful requests, in nanoseconds.
	P50NS int64 `json:"p50_ns"`
	P90NS int64 `json:"p90_ns"`
	P99NS int64 `json:"p99_ns"`
	MaxNS int64 `json:"max_ns"`
}

// RunLoad drives s with the configured open-loop arrival trace and blocks
// until every response (or error) has arrived. The server must be
// Started. Node choices and arrival gaps are pure functions of cfg.Seed;
// wall-clock timing of course is not.
func RunLoad(s *Server, cfg LoadConfig) (*LoadReport, error) {
	if cfg.Requests <= 0 {
		return nil, fmt.Errorf("serve: load run needs a positive request count")
	}
	if cfg.NodesPerRequest <= 0 {
		cfg.NodesPerRequest = 1
	}
	r := rng.New(cfg.Seed)
	n := int(s.ds.Graph.NumNodes())

	// Pre-draw the whole trace so issuance does no RNG work.
	traces := make([][]int32, cfg.Requests)
	gaps := make([]time.Duration, cfg.Requests)
	for i := range traces {
		nodes := make([]int32, cfg.NodesPerRequest)
		for j := range nodes {
			if cfg.Skew > 1 {
				idx := int(float64(n) * math.Pow(r.Float64(), cfg.Skew))
				if idx >= n {
					idx = n - 1
				}
				nodes[j] = int32(idx)
			} else {
				nodes[j] = int32(r.Intn(n))
			}
		}
		traces[i] = nodes
		if cfg.MeanGap > 0 {
			gaps[i] = time.Duration(-float64(cfg.MeanGap) * math.Log(1-r.Float64()))
		}
	}

	lats := make([]int64, cfg.Requests)
	errs := make([]error, cfg.Requests)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < cfg.Requests; i++ {
		if gaps[i] > 0 {
			time.Sleep(gaps[i])
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			t0 := time.Now()
			_, err := s.Predict(traces[i], cfg.Timeout)
			lats[i] = time.Since(t0).Nanoseconds()
			errs[i] = err
		}(i)
	}
	wg.Wait()
	dur := time.Since(start)

	rep := &LoadReport{Requests: cfg.Requests, DurNS: dur.Nanoseconds()}
	var ok []int64
	for i, err := range errs {
		if err != nil {
			rep.Errors++
			continue
		}
		ok = append(ok, lats[i])
	}
	if len(ok) > 0 && dur > 0 {
		rep.ThroughputRPS = float64(len(ok)) / dur.Seconds()
	}
	sort.Slice(ok, func(i, j int) bool { return ok[i] < ok[j] })
	rep.P50NS = percentile(ok, 0.50)
	rep.P90NS = percentile(ok, 0.90)
	rep.P99NS = percentile(ok, 0.99)
	if len(ok) > 0 {
		rep.MaxNS = ok[len(ok)-1]
	}
	return rep, nil
}

// percentile returns the q-quantile of sorted (nearest-rank); 0 on empty.
func percentile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
