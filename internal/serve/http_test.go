package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"betty/internal/obs"
)

// postPredict sends one predict call and decodes the body into out (which
// may be *PredictResponse or *errorResponse), returning the status code.
func postPredict(t *testing.T, url string, body string, out any) int {
	t.Helper()
	resp, err := http.Post(url+"/v1/predict", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return resp.StatusCode
}

func TestHTTPPredict(t *testing.T) {
	d := testData(t)
	model := testModel(t, d)
	reg := obs.New(nil)
	cfg := testConfig(nil, reg) // real clock under HTTP
	s := newTestServer(t, d, model, cfg)
	s.Start()
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var ok PredictResponse
	if code := postPredict(t, ts.URL, `{"nodes":[3,8,120]}`, &ok); code != http.StatusOK {
		t.Fatalf("predict status %d", code)
	}
	if len(ok.Scores) != 3 || len(ok.Scores[0]) != d.NumClasses {
		t.Fatalf("response shape %dx%d", len(ok.Scores), len(ok.Scores[0]))
	}
	// JSON round-trips float32 exactly, so the HTTP response must be
	// bitwise the in-process prediction.
	want := soloScores(t, d, model, testConfig(nil, nil), []int32{3, 8, 120})
	if !bitwiseEqual(ok.Scores, want) {
		t.Fatal("HTTP scores differ from in-process scores")
	}

	var fail errorResponse
	if code := postPredict(t, ts.URL, `{"nodes":[999999]}`, &fail); code != http.StatusBadRequest {
		t.Fatalf("out-of-range node: status %d", code)
	}
	if fail.Error == "" {
		t.Fatal("error body empty")
	}
	if code := postPredict(t, ts.URL, `{nodes:}`, nil); code != http.StatusBadRequest {
		t.Fatalf("bad JSON: status %d", code)
	}
	if code := postPredict(t, ts.URL, `{"nodes":[1],"timeout_ms":-2}`, nil); code != http.StatusBadRequest {
		t.Fatalf("bad timeout: status %d", code)
	}
	resp, err := http.Get(ts.URL + "/v1/predict")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET predict: status %d", resp.StatusCode)
	}
}

func TestHTTPHealthAndMetrics(t *testing.T) {
	d := testData(t)
	model := testModel(t, d)
	reg := obs.New(nil)
	s := newTestServer(t, d, model, testConfig(nil, reg))
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz %d %q", code, body)
	}
	if code := postPredict(t, ts.URL, `{"nodes":[1,2]}`, nil); code != http.StatusOK {
		t.Fatalf("predict status %d", code)
	}
	code, body := get("/metricsz")
	if code != http.StatusOK {
		t.Fatalf("metricsz status %d", code)
	}
	if !strings.HasPrefix(body, `{"type":"meta"`) || !strings.Contains(body, `"serve.requests"`) {
		t.Fatalf("metricsz body missing serve metrics: %q", body)
	}

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if code, body := get("/healthz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("post-close healthz %d %q", code, body)
	}
	var fail errorResponse
	if code := postPredict(t, ts.URL, `{"nodes":[1]}`, &fail); code != http.StatusServiceUnavailable {
		t.Fatalf("post-close predict status %d", code)
	}
}

// statusFor must map every sentinel to its documented code.
func TestStatusFor(t *testing.T) {
	cases := []struct {
		err  error
		code int
	}{
		{ErrInvalid, http.StatusBadRequest},
		{ErrQueueFull, http.StatusTooManyRequests},
		{ErrDeadlineExceeded, http.StatusGatewayTimeout},
		{ErrClosed, http.StatusServiceUnavailable},
		{io.ErrUnexpectedEOF, http.StatusInternalServerError},
	}
	for _, c := range cases {
		if got := statusFor(c.err); got != c.code {
			t.Fatalf("statusFor(%v) = %d, want %d", c.err, got, c.code)
		}
	}
}
