package serve

import (
	"container/list"

	"betty/internal/device"
	"betty/internal/tensor"
)

// featureCache is an LRU cache of gathered input-feature rows keyed by
// global node ID, stored in the server's quantized format (quantRow; f32
// copies under QuantOff). It is owned by the single batch worker goroutine,
// so it needs no locking. Under QuantOff a hit changes which bytes are
// copied, never what they are; under a quantized mode the gather path
// round-trips misses through the same codec before staging, so cache state
// still cannot affect served predictions.
//
// Resident row bytes are charged to the server's cache ledger — the same
// device.Device the embedding cache charges — so all resident cache state
// is accountable against one budget. A row the ledger cannot fit even
// after evicting this cache's own tail is simply not cached (the miss
// path already produced the staged bytes), never a failed request.
type featureCache struct {
	capNodes int
	mode     tensor.QuantMode
	ledger   *device.Device
	entries  map[int32]*list.Element
	order    *list.List // front = most recently used
	bytes    int64      // ledger-charged resident row bytes, for the cache-size gauge
}

// cacheEntry is one resident row.
type cacheEntry struct {
	nid int32
	row quantRow
	buf *device.Buffer
}

// newFeatureCache returns a cache holding up to capNodes rows encoded under
// mode, charging resident bytes to ledger; capNodes <= 0 returns nil, and
// every method is safe on a nil cache (always a miss).
func newFeatureCache(capNodes int, mode tensor.QuantMode, ledger *device.Device) *featureCache {
	if capNodes <= 0 {
		return nil
	}
	return &featureCache{
		capNodes: capNodes,
		mode:     mode,
		ledger:   ledger,
		entries:  make(map[int32]*list.Element, capNodes),
		order:    list.New(),
	}
}

// get returns the cached row for nid (marking it most recently used); the
// second result reports a hit.
func (c *featureCache) get(nid int32) (quantRow, bool) {
	if c == nil {
		return quantRow{}, false
	}
	el, ok := c.entries[nid]
	if !ok {
		return quantRow{}, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).row, true
}

// put inserts an already-encoded row for nid, evicting the least recently
// used entry when full (by node count or by ledger budget). Re-inserting
// an existing key refreshes its recency.
func (c *featureCache) put(nid int32, row quantRow) {
	if c == nil {
		return
	}
	if el, ok := c.entries[nid]; ok {
		c.order.MoveToFront(el)
		return
	}
	if c.order.Len() >= c.capNodes {
		c.evictBack()
	}
	var buf *device.Buffer
	if c.ledger != nil {
		for {
			var err error
			if buf, err = c.ledger.Alloc(row.bytes(), "serve.feature_row"); err == nil {
				break
			}
			if c.order.Len() == 0 {
				return // row cannot fit at all; serve it uncached
			}
			c.evictBack()
		}
	}
	c.entries[nid] = c.order.PushFront(&cacheEntry{nid: nid, row: row, buf: buf})
	c.bytes += c.charged(row, buf)
}

// evictBack drops the least recently used entry and returns its ledger
// charge.
func (c *featureCache) evictBack() {
	back := c.order.Back()
	if back == nil {
		return
	}
	c.order.Remove(back)
	e := back.Value.(*cacheEntry)
	c.bytes -= c.charged(e.row, e.buf)
	if e.buf != nil {
		c.ledger.Free(e.buf)
	}
	delete(c.entries, e.nid)
}

// charged is the accountable size of one row: the ledger's rounded
// allocation when charging, the raw row bytes otherwise.
func (c *featureCache) charged(row quantRow, buf *device.Buffer) int64 {
	if buf != nil {
		return buf.Bytes()
	}
	return row.bytes()
}

// flush drops every entry and releases its ledger charge.
func (c *featureCache) flush() {
	if c == nil {
		return
	}
	for c.order.Len() > 0 {
		c.evictBack()
	}
}

// len returns the resident node count.
func (c *featureCache) len() int {
	if c == nil {
		return 0
	}
	return c.order.Len()
}

// residentBytes returns the ledger-charged resident row bytes.
func (c *featureCache) residentBytes() int64 {
	if c == nil {
		return 0
	}
	return c.bytes
}
