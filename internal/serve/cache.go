package serve

import "container/list"

// featureCache is an LRU cache of gathered input-feature rows keyed by
// global node ID. It is owned by the single batch worker goroutine, so it
// needs no locking, and — because cached rows are exact copies of the
// host feature matrix — a hit changes which bytes are copied, never what
// they are: cache state cannot affect served predictions.
type featureCache struct {
	capNodes int
	entries  map[int32]*list.Element
	order    *list.List // front = most recently used
}

// cacheEntry is one resident row.
type cacheEntry struct {
	nid int32
	row []float32
}

// newFeatureCache returns a cache holding up to capNodes rows; capNodes <= 0
// returns nil, and every method is safe on a nil cache (always a miss).
func newFeatureCache(capNodes int) *featureCache {
	if capNodes <= 0 {
		return nil
	}
	return &featureCache{
		capNodes: capNodes,
		entries:  make(map[int32]*list.Element, capNodes),
		order:    list.New(),
	}
}

// get returns the cached row for nid (marking it most recently used) or
// nil on a miss.
func (c *featureCache) get(nid int32) []float32 {
	if c == nil {
		return nil
	}
	el, ok := c.entries[nid]
	if !ok {
		return nil
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).row
}

// put inserts a copy of row for nid, evicting the least recently used
// entry when full. Re-inserting an existing key refreshes its recency.
func (c *featureCache) put(nid int32, row []float32) {
	if c == nil {
		return
	}
	if el, ok := c.entries[nid]; ok {
		c.order.MoveToFront(el)
		return
	}
	if c.order.Len() >= c.capNodes {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.entries, back.Value.(*cacheEntry).nid)
	}
	c.entries[nid] = c.order.PushFront(&cacheEntry{nid: nid, row: append([]float32(nil), row...)})
}

// len returns the resident node count.
func (c *featureCache) len() int {
	if c == nil {
		return 0
	}
	return c.order.Len()
}
