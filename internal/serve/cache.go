package serve

import (
	"container/list"

	"betty/internal/tensor"
)

// featureCache is an LRU cache of gathered input-feature rows keyed by
// global node ID, stored in the server's quantized format (quantRow; f32
// copies under QuantOff). It is owned by the single batch worker goroutine,
// so it needs no locking. Under QuantOff a hit changes which bytes are
// copied, never what they are; under a quantized mode the gather path
// round-trips misses through the same codec before staging, so cache state
// still cannot affect served predictions.
type featureCache struct {
	capNodes int
	mode     tensor.QuantMode
	entries  map[int32]*list.Element
	order    *list.List // front = most recently used
	bytes    int64      // resident row bytes, for the cache-size gauge
}

// cacheEntry is one resident row.
type cacheEntry struct {
	nid int32
	row quantRow
}

// newFeatureCache returns a cache holding up to capNodes rows encoded under
// mode; capNodes <= 0 returns nil, and every method is safe on a nil cache
// (always a miss).
func newFeatureCache(capNodes int, mode tensor.QuantMode) *featureCache {
	if capNodes <= 0 {
		return nil
	}
	return &featureCache{
		capNodes: capNodes,
		mode:     mode,
		entries:  make(map[int32]*list.Element, capNodes),
		order:    list.New(),
	}
}

// get returns the cached row for nid (marking it most recently used); the
// second result reports a hit.
func (c *featureCache) get(nid int32) (quantRow, bool) {
	if c == nil {
		return quantRow{}, false
	}
	el, ok := c.entries[nid]
	if !ok {
		return quantRow{}, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).row, true
}

// put inserts an already-encoded row for nid, evicting the least recently
// used entry when full. Re-inserting an existing key refreshes its recency.
func (c *featureCache) put(nid int32, row quantRow) {
	if c == nil {
		return
	}
	if el, ok := c.entries[nid]; ok {
		c.order.MoveToFront(el)
		return
	}
	if c.order.Len() >= c.capNodes {
		back := c.order.Back()
		c.order.Remove(back)
		e := back.Value.(*cacheEntry)
		c.bytes -= e.row.bytes()
		delete(c.entries, e.nid)
	}
	c.entries[nid] = c.order.PushFront(&cacheEntry{nid: nid, row: row})
	c.bytes += row.bytes()
}

// len returns the resident node count.
func (c *featureCache) len() int {
	if c == nil {
		return 0
	}
	return c.order.Len()
}

// residentBytes returns the resident row bytes.
func (c *featureCache) residentBytes() int64 {
	if c == nil {
		return 0
	}
	return c.bytes
}
