package serve

import (
	"fmt"

	"betty/internal/tensor"
)

// Quantized serving storage (DESIGN.md §13). Two stores exist, both owned
// by the single batch worker:
//
//   - quantStore compresses the model's weight matrices at rest and
//     dequantizes them into pooled f32 scratch (tensor.AcquireScratch)
//     around each batch's forward passes. The exact f32 kernels then run
//     on the round-tripped weights, so quantized serving is exactly
//     "serve the round-tripped model" — nothing about the kernel numerics
//     changes, which is what makes the error bound analyzable: it is the
//     codec's documented round-trip bound propagated through the forward.
//
//   - quantRow compresses one cached feature row. On a cache miss the row
//     is encoded and immediately decoded before staging, so the staged
//     bytes are identical whether the row came from the cache or the host
//     matrix — cache state can never change a prediction, the same
//     invariant the exact path holds.
//
// QuantOff uses neither: New leaves s.quant nil and the cache stores f32
// copies, byte-identical to an unquantized deployment.

// paramModel is the slice of the nn.Module contract the store needs.
type paramModel interface {
	Params() []*tensor.Var
}

// quantStore holds the quantized weight matrices of one model. Between
// batches only the encoded form is resident; install materializes f32
// scratch for the forward, uninstall returns it to the pool.
type quantStore struct {
	mode   tensor.QuantMode
	params []*tensor.Var
	enc    []*tensor.QuantTensor
	// F32Bytes and EncBytes compare the resident weight footprints: what
	// the quantized matrices would occupy as f32 versus what they do
	// occupy encoded (biases and unshrinkable params stay f32 and appear
	// in neither).
	F32Bytes int64
	EncBytes int64

	installed bool
}

// newQuantStore encodes the model's weight matrices under mode and steals
// their f32 storage. QuantOff returns (nil, nil): the model is left
// untouched and serving stays exact. A parameter is quantized only when it
// is a matrix (more than one row — biases stay f32; their error would be
// fully visible in every output for a negligible size win) and the encoded
// form is strictly smaller than f32 (int8's per-row scales can make very
// narrow matrices grow instead).
func newQuantStore(model any, mode tensor.QuantMode) (*quantStore, error) {
	if mode == tensor.QuantOff {
		return nil, nil
	}
	pm, ok := model.(paramModel)
	if !ok {
		return nil, fmt.Errorf("serve: model %T has no parameters to quantize", model)
	}
	st := &quantStore{mode: mode}
	for _, p := range pm.Params() {
		if p.Value.Rows() <= 1 {
			continue
		}
		q := tensor.Quantize(p.Value, mode)
		f32 := int64(p.Value.Len()) * 4
		if q.Bytes() >= f32 {
			continue
		}
		st.params = append(st.params, p)
		st.enc = append(st.enc, q)
		st.F32Bytes += f32
		st.EncBytes += q.Bytes()
		p.Value.Data = nil // encoded form is now the only resident copy
	}
	if len(st.params) == 0 {
		return nil, fmt.Errorf("serve: %v quantization shrank no parameter of %T", mode, model)
	}
	return st, nil
}

// install dequantizes every stored matrix into pooled scratch and points
// the parameter tensors at it. Worker-only; must be paired with uninstall.
func (st *quantStore) install() {
	if st == nil || st.installed {
		return
	}
	for i, p := range st.params {
		s := tensor.AcquireScratch(p.Value.Len())
		st.enc[i].DecodeInto(s)
		p.Value.Data = s
	}
	st.installed = true
}

// uninstall releases the scratch weights installed by install.
func (st *quantStore) uninstall() {
	if st == nil || !st.installed {
		return
	}
	for _, p := range st.params {
		s := p.Value.Data
		p.Value.Data = nil
		tensor.ReleaseScratch(s)
	}
	st.installed = false
}

// quantRow is one feature row in the cache's storage format: exactly one
// representation is populated, matching the cache's mode.
type quantRow struct {
	f32   []float32
	f16   []uint16
	q     []int8
	scale float32
}

// encodeRow converts row into mode's storage format. The f32 mode copies
// (the pre-quantization cache behavior, byte-exact).
func encodeRow(mode tensor.QuantMode, row []float32) quantRow {
	switch mode {
	case tensor.QuantOff:
		return quantRow{f32: append([]float32(nil), row...)}
	case tensor.QuantF16:
		r := quantRow{f16: make([]uint16, len(row))}
		tensor.F16EncodeSlice(r.f16, row)
		return r
	case tensor.QuantInt8:
		r := quantRow{q: make([]int8, len(row))}
		r.scale = tensor.Int8EncodeRow(r.q, row)
		return r
	default:
		panic(fmt.Sprintf("serve: encodeRow unknown mode %v", mode))
	}
}

// decodeInto reconstructs the row into dst.
func (r quantRow) decodeInto(dst []float32) {
	switch {
	case r.f32 != nil:
		copy(dst, r.f32)
	case r.f16 != nil:
		tensor.F16DecodeSlice(dst, r.f16)
	default:
		tensor.Int8DecodeRow(dst, r.q, r.scale)
	}
}

// bytes returns the row's resident size.
func (r quantRow) bytes() int64 {
	switch {
	case r.f32 != nil:
		return int64(len(r.f32)) * 4
	case r.f16 != nil:
		return int64(len(r.f16)) * 2
	default:
		return int64(len(r.q)) + 4
	}
}
