package serve

import (
	"fmt"
	"io"
	"strconv"
	"time"

	"betty/internal/embcache"
	"betty/internal/obs"
	"betty/internal/tensor"
)

// Config holds every knob of the serving path. The zero value is not
// usable; start from Defaults (or fill every field) and optionally layer
// environment overrides on top with ApplyEnv.
type Config struct {
	// Fanouts are the per-layer sampling bounds, input-first — they must
	// match the model's layer count.
	Fanouts []int
	// Seed drives the node-wise sampler and the REG partitioner. Because
	// sampling is keyed per node (sample.NodeWise), the seed fixes every
	// node's neighborhood for the server's lifetime.
	Seed uint64

	// MaxBatch is the coalescing target: the batcher stops gathering
	// requests once the batch holds at least MaxBatch seed nodes. A batch
	// may exceed it by at most one request's nodes (a pulled request is
	// never split or pushed back); the memory planner, not MaxBatch, is
	// what bounds the device footprint.
	MaxBatch int
	// MaxWait bounds how long the batcher waits for more requests after
	// the first one arrives. 0 means drain-only: take whatever is already
	// queued and run immediately (the deterministic-replay mode).
	MaxWait time.Duration
	// QueueDepth is the admission bound: requests beyond it are rejected
	// with ErrQueueFull (HTTP 429) instead of queuing without limit.
	QueueDepth int
	// CacheNodes is the feature-cache capacity in nodes; 0 disables the
	// cache.
	CacheNodes int
	// DefaultTimeout is the per-request deadline applied when a request
	// does not carry its own; 0 means no deadline.
	DefaultTimeout time.Duration
	// MaxRequestNodes bounds the seed nodes of a single request.
	MaxRequestNodes int

	// EmbMode selects the historical-embedding cache behavior (DESIGN.md
	// §16): off, exact (populate + bitwise self-check, the default), or
	// reuse (skip layer-1 compute on hits within EmbMaxLag versions).
	EmbMode embcache.Mode
	// EmbBudgetMiB bounds the embedding cache's resident bytes; charged
	// to the same ledger as the feature cache.
	EmbBudgetMiB int64
	// EmbMaxLag is the maximum weight-version lag a reuse hit may carry.
	EmbMaxLag int

	// Quant selects the at-rest storage format of the serving path's
	// weights and cached feature rows (DESIGN.md §13): QuantOff (exact
	// f32, the default), QuantF16, or QuantInt8. The forward kernels stay
	// exact f32 either way — quantized storage is dequantized into pooled
	// scratch before each batch — so QuantOff serves bitwise what an
	// unquantized deployment serves, and the compressed modes trade the
	// documented round-trip error for a smaller resident model.
	Quant tensor.QuantMode

	// CapacityBytes is the device memory budget the planner enforces per
	// micro-batch (forward-only accounting; see memory.Breakdown.ForwardPeak).
	CapacityBytes int64
	// SafetyMargin inflates the planner's estimates (see memory.Planner).
	SafetyMargin float64
	// MaxK caps the planner's partition search (0 = number of outputs).
	MaxK int

	// Clock is the time source for deadlines and latency metrics (nil
	// means obs.RealClock; tests inject obs.FakeClock).
	Clock obs.Clock
	// Obs, when non-nil, receives the serving spans and metrics.
	Obs *obs.Registry
	// BatchLog, when non-nil, receives one timing-free NDJSON line per
	// executed batch — the deterministic record of how requests coalesced.
	BatchLog io.Writer
}

// Defaults returns a config with production-shaped defaults for everything
// but Fanouts, which the caller must set to the model's layer structure.
func Defaults() Config {
	return Config{
		MaxBatch:        256,
		MaxWait:         2 * time.Millisecond,
		QueueDepth:      64,
		CacheNodes:      4096,
		DefaultTimeout:  time.Second,
		MaxRequestNodes: 1024,
		CapacityBytes:   256 << 20,
		EmbMode:         embcache.ModeExact,
		EmbBudgetMiB:    64,
		EmbMaxLag:       1,
	}
}

// Validate rejects unusable configurations.
func (c *Config) Validate() error {
	if len(c.Fanouts) == 0 {
		return fmt.Errorf("serve: no fanouts configured")
	}
	for _, f := range c.Fanouts {
		if f == 0 || f < -1 {
			return fmt.Errorf("serve: bad fanout %d (positive or -1 for all neighbors)", f)
		}
	}
	if c.MaxBatch <= 0 {
		return fmt.Errorf("serve: MaxBatch must be positive (got %d)", c.MaxBatch)
	}
	if c.MaxWait < 0 {
		return fmt.Errorf("serve: MaxWait must be non-negative (got %v)", c.MaxWait)
	}
	if c.QueueDepth <= 0 {
		return fmt.Errorf("serve: QueueDepth must be positive (got %d)", c.QueueDepth)
	}
	if c.CacheNodes < 0 {
		return fmt.Errorf("serve: CacheNodes must be non-negative (got %d)", c.CacheNodes)
	}
	if c.DefaultTimeout < 0 {
		return fmt.Errorf("serve: DefaultTimeout must be non-negative (got %v)", c.DefaultTimeout)
	}
	if c.MaxRequestNodes <= 0 {
		return fmt.Errorf("serve: MaxRequestNodes must be positive (got %d)", c.MaxRequestNodes)
	}
	if c.CapacityBytes <= 0 {
		return fmt.Errorf("serve: CapacityBytes must be positive (got %d)", c.CapacityBytes)
	}
	if c.SafetyMargin < 0 {
		return fmt.Errorf("serve: SafetyMargin must be non-negative (got %v)", c.SafetyMargin)
	}
	switch c.Quant {
	case tensor.QuantOff, tensor.QuantF16, tensor.QuantInt8:
	default:
		return fmt.Errorf("serve: unknown quant mode %d", int(c.Quant))
	}
	switch c.EmbMode {
	case embcache.ModeOff, embcache.ModeExact, embcache.ModeReuse:
	default:
		return fmt.Errorf("serve: unknown embedding-cache mode %d", int(c.EmbMode))
	}
	if c.EmbMode != embcache.ModeOff && c.EmbBudgetMiB <= 0 {
		return fmt.Errorf("serve: EmbBudgetMiB must be positive with the embedding cache on (got %d)", c.EmbBudgetMiB)
	}
	if c.EmbMaxLag < 0 {
		return fmt.Errorf("serve: EmbMaxLag must be non-negative (got %d)", c.EmbMaxLag)
	}
	return nil
}

// The BETTY_SERVE_* environment knobs. Like BETTY_WORKERS (see
// parallel.ParseWorkers), a malformed value fails loudly at startup rather
// than silently serving under a different policy than the operator set.
const (
	EnvMaxBatch        = "BETTY_SERVE_MAX_BATCH"
	EnvMaxWaitMS       = "BETTY_SERVE_MAX_WAIT_MS"
	EnvQueueDepth      = "BETTY_SERVE_QUEUE_DEPTH"
	EnvCacheNodes      = "BETTY_SERVE_CACHE_NODES"
	EnvTimeoutMS       = "BETTY_SERVE_TIMEOUT_MS"
	EnvMaxRequestNodes = "BETTY_SERVE_MAX_REQUEST_NODES"
	EnvCapacityMiB     = "BETTY_SERVE_CAPACITY_MIB"
	// EnvQuant selects the quantized serving storage (off/f16/int8); it is
	// deliberately not BETTY_SERVE_-prefixed because it names a repo-wide
	// numerics contract (DESIGN.md §13), not a batching policy.
	EnvQuant = "BETTY_QUANT"
)

// ApplyEnv overlays environment overrides on c, reading variables through
// getenv (os.Getenv in production; tests pass a map lookup). Unset or empty
// variables leave the field untouched; any malformed value is an error
// naming the variable.
func (c *Config) ApplyEnv(getenv func(string) string) error {
	intVars := []struct {
		name string
		min  int64
		set  func(int64)
	}{
		{EnvMaxBatch, 1, func(v int64) { c.MaxBatch = int(v) }},
		{EnvMaxWaitMS, 0, func(v int64) { c.MaxWait = time.Duration(v) * time.Millisecond }},
		{EnvQueueDepth, 1, func(v int64) { c.QueueDepth = int(v) }},
		{EnvCacheNodes, 0, func(v int64) { c.CacheNodes = int(v) }},
		{EnvTimeoutMS, 0, func(v int64) { c.DefaultTimeout = time.Duration(v) * time.Millisecond }},
		{EnvMaxRequestNodes, 1, func(v int64) { c.MaxRequestNodes = int(v) }},
		{EnvCapacityMiB, 1, func(v int64) { c.CapacityBytes = v << 20 }},
	}
	for _, ev := range intVars {
		raw := getenv(ev.name)
		if raw == "" {
			continue
		}
		v, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			return fmt.Errorf("serve: %s=%q: not an integer", ev.name, raw)
		}
		if v < ev.min {
			return fmt.Errorf("serve: %s=%d: must be >= %d", ev.name, v, ev.min)
		}
		ev.set(v)
	}
	if raw := getenv(EnvQuant); raw != "" {
		mode, err := tensor.ParseQuantMode(raw)
		if err != nil {
			return fmt.Errorf("serve: %w", err)
		}
		c.Quant = mode
	}
	// The embedding-cache knobs are repo-wide contracts like BETTY_QUANT
	// (training honors them too); their hardened parsers live next to the
	// cache. ParseMode maps "" to exact, so only override when set.
	if raw := getenv(embcache.EnvMode); raw != "" {
		mode, err := embcache.ParseMode(raw)
		if err != nil {
			return fmt.Errorf("serve: %w", err)
		}
		c.EmbMode = mode
	}
	if mib, err := embcache.ParseBudgetMiB(getenv(embcache.EnvBudgetMiB)); err != nil {
		return fmt.Errorf("serve: %w", err)
	} else if mib > 0 {
		c.EmbBudgetMiB = mib
	}
	if lag, err := embcache.ParseMaxLag(getenv(embcache.EnvMaxLag)); err != nil {
		return fmt.Errorf("serve: %w", err)
	} else if lag >= 0 {
		c.EmbMaxLag = lag
	}
	return nil
}
