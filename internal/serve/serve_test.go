package serve

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"betty/internal/core"
	"betty/internal/dataset"
	"betty/internal/memory"
	"betty/internal/obs"
	"betty/internal/parallel"
	"betty/internal/tensor"
)

// testData builds the small synthetic graph the serving tests share.
func testData(t *testing.T) *dataset.Dataset {
	t.Helper()
	d, err := dataset.Generate(dataset.GenConfig{
		Name: "t", Nodes: 800, AvgDegree: 10, FeatureDim: 24,
		NumClasses: 5, Homophily: 0.8, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// testModel builds a deterministic GraphSAGE over d.
func testModel(t *testing.T, d *dataset.Dataset) any {
	t.Helper()
	s, err := core.BuildSAGE(d, core.Options{Seed: 50, Hidden: 16, Fanouts: []int{4, 6}})
	if err != nil {
		t.Fatal(err)
	}
	return s.Model
}

// testConfig is the deterministic-replay base config: drain-only batching,
// fake clock, ample capacity.
func testConfig(clock obs.Clock, reg *obs.Registry) Config {
	cfg := Defaults()
	cfg.Fanouts = []int{4, 6}
	cfg.Seed = 9
	cfg.MaxWait = 0
	cfg.DefaultTimeout = 0
	cfg.Clock = clock
	cfg.Obs = reg
	return cfg
}

func newTestServer(t *testing.T, d *dataset.Dataset, model any, cfg Config) *Server {
	t.Helper()
	s, err := New(d, model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// soloScores serves each request alone on a fresh server with the same
// seed — the ground truth coalesced responses must match bitwise.
func soloScores(t *testing.T, d *dataset.Dataset, model any, cfg Config, nodes []int32) [][]float32 {
	t.Helper()
	s := newTestServer(t, d, model, cfg)
	s.Start()
	defer s.Close()
	scores, err := s.Predict(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	return scores
}

func bitwiseEqual(a, b [][]float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if math.Float32bits(a[i][j]) != math.Float32bits(b[i][j]) {
				return false
			}
		}
	}
	return true
}

// Coalesced responses must be bitwise what each request would have gotten
// alone, including shared and duplicated nodes, and the requests must have
// shared one batch.
func TestCoalescingIsExact(t *testing.T) {
	d := testData(t)
	model := testModel(t, d)
	reg := obs.New(obs.NewFakeClock(0, 1))
	cfg := testConfig(obs.NewFakeClock(0, 1), reg)
	s := newTestServer(t, d, model, cfg)

	traces := [][]int32{
		{3, 8, 120},
		{8, 700, 3}, // overlaps request 0
		{41, 41, 5}, // duplicate node within one request
	}
	// Enqueue everything before Start so the drain-only batcher must
	// coalesce all three into one batch.
	reqs := make([]*request, len(traces))
	for i, nodes := range traces {
		r, err := s.enqueue(nodes, 0)
		if err != nil {
			t.Fatal(err)
		}
		reqs[i] = r
	}
	s.Start()
	got := make([][][]float32, len(reqs))
	for i, r := range reqs {
		res := <-r.done
		if res.err != nil {
			t.Fatal(res.err)
		}
		got[i] = res.scores
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if b := s.StatsSnapshot().Batches; b != 1 {
		t.Fatalf("3 pre-queued requests ran in %d batches, want 1", b)
	}
	for i, nodes := range traces {
		want := soloScores(t, d, model, testConfig(obs.NewFakeClock(0, 1), nil), nodes)
		if !bitwiseEqual(got[i], want) {
			t.Fatalf("request %d: coalesced response differs from solo response", i)
		}
	}
}

// A capacity between one micro-batch and the whole batch forces K > 1;
// the split must stay invisible in the responses and the planned peak must
// respect the budget.
func TestMicroBatchSplitIsExactAndBudgeted(t *testing.T) {
	d := testData(t)
	model := testModel(t, d)
	nodes := make([]int32, 120)
	for i := range nodes {
		nodes[i] = int32(i * 6)
	}
	want := soloScores(t, d, model, testConfig(obs.NewFakeClock(0, 1), nil), nodes)

	// Find a budget that forces a split: plan the same union unbounded,
	// then serve under half its peak.
	var log bytes.Buffer
	reg := obs.New(obs.NewFakeClock(0, 1))
	cfg := testConfig(obs.NewFakeClock(0, 1), reg)
	cfg.BatchLog = &log
	probe := newTestServer(t, d, model, cfg)
	blocks, err := probe.sampler.Sample(d.Graph, nodes)
	if err != nil {
		t.Fatal(err)
	}
	est, err := memory.Estimate(blocks, probe.spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg.CapacityBytes = est.ForwardPeak() / 2
	s := newTestServer(t, d, model, cfg)
	s.Start()
	got, err := s.Predict(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if !bitwiseEqual(got, want) {
		t.Fatal("micro-batched response differs from unsplit response")
	}
	st := s.StatsSnapshot()
	if st.MaxEstPeakBytes <= 0 || st.MaxEstPeakBytes > cfg.CapacityBytes {
		t.Fatalf("planned peak %d outside budget %d", st.MaxEstPeakBytes, cfg.CapacityBytes)
	}
	if !bytes.Contains(log.Bytes(), []byte(`"k":`)) || bytes.Contains(log.Bytes(), []byte(`"k":1,`)) {
		t.Fatalf("batch log does not show a split: %s", log.String())
	}
}

// The queue bound must reject with ErrQueueFull, and Close must fail
// queued requests with ErrClosed rather than stranding their callers.
func TestQueueOverflowAndClose(t *testing.T) {
	d := testData(t)
	model := testModel(t, d)
	cfg := testConfig(obs.NewFakeClock(0, 1), obs.New(obs.NewFakeClock(0, 1)))
	cfg.QueueDepth = 2
	s := newTestServer(t, d, model, cfg) // never started: the queue can only fill
	r1, err := s.enqueue([]int32{1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.enqueue([]int32{2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.enqueue([]int32{3}, 0); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow returned %v, want ErrQueueFull", err)
	}
	if s.StatsSnapshot().RejectedQueueFull != 1 {
		t.Fatal("overflow not counted")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for _, r := range []*request{r1, r2} {
		if res := <-r.done; !errors.Is(res.err, ErrClosed) {
			t.Fatalf("queued request got %v, want ErrClosed", res.err)
		}
	}
	if _, err := s.Predict([]int32{4}, 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close Predict returned %v, want ErrClosed", err)
	}
}

// A request whose deadline passes while it queues must be failed at the
// batch boundary, not executed.
func TestDeadlineHonoredAtBatchBoundary(t *testing.T) {
	d := testData(t)
	model := testModel(t, d)
	clock := obs.NewFakeClock(0, 0) // manual time: only Advance moves it
	cfg := testConfig(clock, obs.New(clock))
	s := newTestServer(t, d, model, cfg)
	expired, err := s.enqueue([]int32{7}, time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	alive, err := s.enqueue([]int32{9}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(time.Millisecond.Nanoseconds())
	s.Start()
	defer s.Close()
	if res := <-expired.done; !errors.Is(res.err, ErrDeadlineExceeded) {
		t.Fatalf("expired request got %v, want ErrDeadlineExceeded", res.err)
	}
	if res := <-alive.done; res.err != nil {
		t.Fatalf("in-deadline request failed: %v", res.err)
	}
	if s.StatsSnapshot().DeadlineExceeded != 1 {
		t.Fatal("deadline rejection not counted")
	}
}

// Validation failures must reject before admission.
func TestRequestValidation(t *testing.T) {
	d := testData(t)
	model := testModel(t, d)
	cfg := testConfig(obs.NewFakeClock(0, 1), nil)
	cfg.MaxRequestNodes = 4
	s := newTestServer(t, d, model, cfg)
	for _, nodes := range [][]int32{
		nil,
		{-1},
		{int32(d.Graph.NumNodes())},
		{1, 2, 3, 4, 5}, // over MaxRequestNodes
	} {
		if _, err := s.enqueue(nodes, 0); !errors.Is(err, ErrInvalid) {
			t.Fatalf("nodes %v admitted (err %v), want ErrInvalid", nodes, err)
		}
	}
}

// panicSource is a dataset.FeatureSource whose gathers panic, to exercise
// the worker's panic isolation below.
type panicSource struct{ dim, rows int }

func (p panicSource) Rows() int                                { return p.rows }
func (p panicSource) Dim() int                                 { return p.dim }
func (p panicSource) GatherInto(*tensor.Tensor, []int32) error { panic("sabotaged feature gather") }
func (p panicSource) GatherRow([]float32, int32) error         { panic("sabotaged feature gather") }
func (p panicSource) ResidentBytes() int64                     { return 0 }

// A panic while executing one batch must fail that batch's requests and
// leave the worker serving the next.
func TestPanicIsolation(t *testing.T) {
	d := testData(t)
	model := testModel(t, d)
	reg := obs.New(obs.NewFakeClock(0, 1))
	cfg := testConfig(obs.NewFakeClock(0, 1), reg)
	cfg.CacheNodes = 0 // gather straight from the (sabotaged) feature matrix
	s := newTestServer(t, d, model, cfg)

	// Sabotage: swap in a feature source that panics (a truncated matrix
	// no longer works — out-of-range gathers are descriptive errors now)
	// so the batch's feature gather panics mid-pipeline.
	good := s.ds
	bad := *d
	bad.Features = nil
	bad.Source = panicSource{dim: d.FeatureDim(), rows: int(d.Graph.NumNodes())}
	s.ds = &bad
	doomed, err := s.enqueue([]int32{5, 9}, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Close()
	res := <-doomed.done
	s.ds = good // repair; the worker is idle again once doomed has its answer
	if res.err == nil || !strings.Contains(res.err.Error(), "panicked") {
		t.Fatalf("panicked batch returned %v, want a batch-panic error", res.err)
	}
	if reg.CounterValue("serve.panics") != 1 {
		t.Fatal("panic not counted")
	}
	// Worker must still serve.
	if _, err := s.Predict([]int32{5, 9}, 0); err != nil {
		t.Fatalf("worker dead after panic: %v", err)
	}
}

// The feature cache must hit on re-requested nodes without changing any
// response byte.
func TestFeatureCache(t *testing.T) {
	d := testData(t)
	model := testModel(t, d)
	reg := obs.New(obs.NewFakeClock(0, 1))
	cfg := testConfig(obs.NewFakeClock(0, 1), reg)
	cfg.CacheNodes = 4096
	s := newTestServer(t, d, model, cfg)
	s.Start()
	defer s.Close()
	first, err := s.Predict([]int32{10, 20, 30}, 0)
	if err != nil {
		t.Fatal(err)
	}
	st := s.StatsSnapshot()
	if st.CacheMisses == 0 || st.CacheHits != 0 {
		t.Fatalf("cold cache: hits=%d misses=%d", st.CacheHits, st.CacheMisses)
	}
	second, err := s.Predict([]int32{10, 20, 30}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.StatsSnapshot().CacheHits == 0 {
		t.Fatal("warm cache produced no hits")
	}
	if !bitwiseEqual(first, second) {
		t.Fatal("cache changed the response bytes")
	}

	// No-cache server must produce the same bytes.
	noCacheCfg := testConfig(obs.NewFakeClock(0, 1), nil)
	noCacheCfg.CacheNodes = 0
	want := soloScores(t, d, model, noCacheCfg, []int32{10, 20, 30})
	if !bitwiseEqual(first, want) {
		t.Fatal("cached response differs from uncached response")
	}
}

// The LRU itself: eviction order, recency refresh, nil safety.
func TestFeatureCacheLRU(t *testing.T) {
	row := func(v float32) quantRow { return encodeRow(tensor.QuantOff, []float32{v}) }
	hit := func(nid int32, c *featureCache) bool { _, ok := c.get(nid); return ok }
	c := newFeatureCache(2, tensor.QuantOff, nil)
	c.put(1, row(1))
	c.put(2, row(2))
	if !hit(1, c) { // 1 becomes most recent
		t.Fatal("miss on resident node")
	}
	c.put(3, row(3)) // evicts 2
	if hit(2, c) {
		t.Fatal("LRU kept the least recently used entry")
	}
	if !hit(1, c) || !hit(3, c) {
		t.Fatal("LRU evicted a recent entry")
	}
	if c.len() != 2 {
		t.Fatalf("len %d, want 2", c.len())
	}
	if c.residentBytes() != 8 { // two one-float rows
		t.Fatalf("residentBytes %d, want 8", c.residentBytes())
	}
	var nilCache *featureCache
	if hit(1, nilCache) || nilCache.len() != 0 || nilCache.residentBytes() != 0 {
		t.Fatal("nil cache misbehaved")
	}
	nilCache.put(1, row(1)) // must not panic
	if newFeatureCache(0, tensor.QuantOff, nil) != nil {
		t.Fatal("zero-capacity cache not disabled")
	}
}

// A fixed request trace must produce byte-identical batch logs and
// bitwise-identical responses at any BETTY_WORKERS.
func TestTraceDeterminismAcrossWorkers(t *testing.T) {
	d := testData(t)
	traces := [][]int32{
		{3, 8, 120}, {8, 700, 3}, {41, 5}, {700, 701, 702, 3},
	}
	run := func(workers int) (string, [][][]float32) {
		defer parallel.SetWorkers(parallel.SetWorkers(workers))
		model := testModel(t, d)
		var log bytes.Buffer
		cfg := testConfig(obs.NewFakeClock(0, 1), nil)
		cfg.BatchLog = &log
		cfg.MaxBatch = 6 // forces the trace into multiple batches
		s := newTestServer(t, d, model, cfg)
		reqs := make([]*request, len(traces))
		for i, nodes := range traces {
			r, err := s.enqueue(nodes, 0)
			if err != nil {
				t.Fatal(err)
			}
			reqs[i] = r
		}
		s.Start()
		out := make([][][]float32, len(reqs))
		for i, r := range reqs {
			res := <-r.done
			if res.err != nil {
				t.Fatal(res.err)
			}
			out[i] = res.scores
		}
		s.Close()
		return log.String(), out
	}
	log1, out1 := run(1)
	log8, out8 := run(8)
	if log1 != log8 {
		t.Fatalf("batch logs differ across worker counts:\n1: %s\n8: %s", log1, log8)
	}
	if log1 == "" {
		t.Fatal("no batch log emitted")
	}
	for i := range out1 {
		if !bitwiseEqual(out1[i], out8[i]) {
			t.Fatalf("request %d responses differ across worker counts", i)
		}
	}
}

// Spans for every serving phase must appear under the fake clock.
func TestServingSpans(t *testing.T) {
	clock := obs.NewFakeClock(0, 10)
	reg := obs.New(clock)
	reg.SetTracing(true)
	d := testData(t)
	model := testModel(t, d)
	s := newTestServer(t, d, model, testConfig(clock, reg))
	s.Start()
	defer s.Close()
	if _, err := s.Predict([]int32{1, 2, 3}, 0); err != nil {
		t.Fatal(err)
	}
	phases := map[string]bool{}
	for _, sp := range reg.Spans() {
		phases[sp.Phase] = true
	}
	for _, want := range []string{obs.PhaseEnqueue, obs.PhaseBatch, obs.PhaseSample, obs.PhaseEstimate, obs.PhaseForward} {
		if !phases[want] {
			t.Fatalf("no %q span recorded (got %v)", want, phases)
		}
	}
	if reg.HistogramWith("serve.queue_wait_ns", nil).Count() == 0 {
		t.Fatal("queue wait not observed")
	}
	if reg.HistogramWith("serve.e2e_ns", nil).Count() == 0 {
		t.Fatal("e2e latency not observed")
	}
}

// Config validation and the BETTY_SERVE_* environment overlay.
func TestConfigEnv(t *testing.T) {
	base := func() Config {
		c := Defaults()
		c.Fanouts = []int{4, 6}
		return c
	}
	env := func(m map[string]string) func(string) string {
		return func(k string) string { return m[k] }
	}

	c := base()
	if err := c.ApplyEnv(env(map[string]string{
		EnvMaxBatch:        "32",
		EnvMaxWaitMS:       "5",
		EnvQueueDepth:      "7",
		EnvCacheNodes:      "0",
		EnvTimeoutMS:       "250",
		EnvMaxRequestNodes: "9",
		EnvCapacityMiB:     "64",
	})); err != nil {
		t.Fatal(err)
	}
	if c.MaxBatch != 32 || c.MaxWait != 5*time.Millisecond || c.QueueDepth != 7 ||
		c.CacheNodes != 0 || c.DefaultTimeout != 250*time.Millisecond ||
		c.MaxRequestNodes != 9 || c.CapacityBytes != 64<<20 {
		t.Fatalf("env not applied: %+v", c)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}

	// Unset variables leave defaults alone.
	c2 := base()
	if err := c2.ApplyEnv(env(nil)); err != nil {
		t.Fatal(err)
	}
	if c2.MaxBatch != base().MaxBatch {
		t.Fatal("empty env changed defaults")
	}

	// Malformed values fail loudly, naming the variable.
	for _, bad := range []map[string]string{
		{EnvMaxBatch: "zero"},
		{EnvMaxBatch: "0"},
		{EnvMaxBatch: "-3"},
		{EnvMaxWaitMS: "-1"},
		{EnvQueueDepth: "0"},
		{EnvCacheNodes: "-1"},
		{EnvTimeoutMS: "soon"},
		{EnvMaxRequestNodes: "0"},
		{EnvCapacityMiB: "0x40"},
	} {
		c := base()
		err := c.ApplyEnv(env(bad))
		if err == nil {
			t.Fatalf("malformed env %v accepted", bad)
		}
		for k := range bad {
			if !bytes.Contains([]byte(err.Error()), []byte(k)) {
				t.Fatalf("error %q does not name %s", err, k)
			}
		}
	}

	// Validate catches bad programmatic configs too.
	for _, mutate := range []func(*Config){
		func(c *Config) { c.Fanouts = nil },
		func(c *Config) { c.Fanouts = []int{0} },
		func(c *Config) { c.MaxBatch = 0 },
		func(c *Config) { c.MaxWait = -time.Second },
		func(c *Config) { c.QueueDepth = 0 },
		func(c *Config) { c.CacheNodes = -1 },
		func(c *Config) { c.DefaultTimeout = -time.Second },
		func(c *Config) { c.MaxRequestNodes = 0 },
		func(c *Config) { c.CapacityBytes = 0 },
		func(c *Config) { c.SafetyMargin = -0.1 },
	} {
		c := base()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("bad config accepted: %+v", c)
		}
	}
}

// New must reject model/config mismatches.
func TestNewValidation(t *testing.T) {
	d := testData(t)
	model := testModel(t, d)
	cfg := testConfig(nil, nil)
	cfg.Fanouts = []int{4} // model has 2 layers
	if _, err := New(d, model, cfg); err == nil {
		t.Fatal("fanout/layer mismatch accepted")
	}
	if _, err := New(d, struct{}{}, testConfig(nil, nil)); err == nil {
		t.Fatal("unsupported model accepted")
	}
}

// The load generator must drive a live server and report sane latencies.
func TestRunLoad(t *testing.T) {
	d := testData(t)
	model := testModel(t, d)
	cfg := testConfig(nil, obs.New(nil)) // real clock: loadgen measures wall time
	cfg.MaxWait = time.Millisecond
	s := newTestServer(t, d, model, cfg)
	s.Start()
	defer s.Close()
	rep, err := RunLoad(s, LoadConfig{Requests: 20, NodesPerRequest: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d load errors", rep.Errors)
	}
	if rep.ThroughputRPS <= 0 || rep.P50NS <= 0 || rep.P99NS < rep.P50NS || rep.MaxNS < rep.P99NS {
		t.Fatalf("implausible report: %+v", rep)
	}
	if _, err := RunLoad(s, LoadConfig{}); err == nil {
		t.Fatal("zero-request load accepted")
	}
}
