package partition

import (
	"fmt"

	"betty/internal/rng"
)

// RecursiveBisection partitions by recursively splitting the graph in two
// with the multilevel machinery — the classic METIS alternative to direct
// K-way partitioning. For non-power-of-two K the split targets are
// proportional (K=5 first splits 3:2). Recursive bisection often gives
// slightly better cuts for small K at a higher cost; the abl-rb experiment
// quantifies the trade-off on REG inputs.
type RecursiveBisection struct {
	// Seed drives all randomized phases.
	Seed uint64
	// Imbalance is the per-bisection balance tolerance (0 = 1.05).
	Imbalance float64
	// Passes bounds refinement passes per level (0 = 8).
	Passes int
}

// Name implements Partitioner.
func (m *RecursiveBisection) Name() string { return "metis-rb" }

// Partition implements Partitioner.
func (m *RecursiveBisection) Partition(g *WeightedGraph, k int) ([]int32, error) {
	if err := validateK(g, k); err != nil {
		return nil, err
	}
	parts := make([]int32, g.N)
	if g.N == 0 || k == 1 {
		return parts, nil
	}
	r := rng.New(m.Seed ^ 0x7262697365637421)
	nodes := make([]int32, g.N)
	for i := range nodes {
		nodes[i] = int32(i)
	}
	if err := m.split(g, nodes, k, 0, parts, r); err != nil {
		return nil, err
	}
	ensureNonEmpty(g, parts, k, r)
	return parts, nil
}

// split assigns part ids [base, base+k) to the given node subset of g.
func (m *RecursiveBisection) split(g *WeightedGraph, nodes []int32, k int, base int32, parts []int32, r *rng.RNG) error {
	if k == 1 {
		for _, v := range nodes {
			parts[v] = base
		}
		return nil
	}
	sub, back := g.Subgraph(nodes)
	k1 := (k + 1) / 2
	k2 := k - k1
	frac := float64(k1) / float64(k)

	side := m.bisect(sub, frac, r)
	var left, right []int32
	for i, s := range side {
		if s == 0 {
			left = append(left, back[i])
		} else {
			right = append(right, back[i])
		}
	}
	if len(left) < k1 || len(right) < k2 {
		return fmt.Errorf("partition: bisection produced sides %d/%d for k=%d/%d", len(left), len(right), k1, k2)
	}
	if err := m.split(g, left, k1, base, parts, r); err != nil {
		return err
	}
	return m.split(g, right, k2, base+int32(k1), parts, r)
}

// bisect splits g into two sides with target weight fractions frac and
// 1-frac, using coarsening + greedy growing + FM refinement.
func (m *RecursiveBisection) bisect(g *WeightedGraph, frac float64, r *rng.RNG) []int32 {
	imbalance := m.Imbalance
	if imbalance <= 0 {
		imbalance = 1.05
	}
	passes := m.Passes
	if passes <= 0 {
		passes = 8
	}
	inner := &Metis{} // reuse its coarsening machinery

	type level struct {
		g    *WeightedGraph
		cmap []int32
	}
	var levels []level
	cur := g
	for cur.N > 120 && len(levels) < 40 {
		coarse, cmap := inner.coarsen(cur, r)
		if coarse.N >= cur.N*19/20 {
			break
		}
		levels = append(levels, level{g: cur, cmap: cmap})
		cur = coarse
	}

	total := cur.TotalNodeWeight()
	parts := growBisection(cur, frac, r)
	allowed := []float64{imbalance * frac * total, imbalance * (1 - frac) * total}
	refineTargets(cur, parts, allowed, passes, r)

	for i := len(levels) - 1; i >= 0; i-- {
		lv := levels[i]
		fine := make([]int32, lv.g.N)
		for v := 0; v < lv.g.N; v++ {
			fine[v] = parts[lv.cmap[v]]
		}
		parts = fine
		lvlTotal := lv.g.TotalNodeWeight()
		allowed = []float64{imbalance * frac * lvlTotal, imbalance * (1 - frac) * lvlTotal}
		refineTargets(lv.g, parts, allowed, passes, r)
	}
	return parts
}

// growBisection grows side 0 by BFS until it reaches frac of the weight.
func growBisection(g *WeightedGraph, frac float64, r *rng.RNG) []int32 {
	parts := make([]int32, g.N)
	for i := range parts {
		parts[i] = 1
	}
	target := frac * g.TotalNodeWeight()
	order := r.Perm(g.N)
	var w float64
	queue := make([]int32, 0, 256)
	cursor := 0
	assigned := 0
	for w < target && assigned < g.N-1 {
		if len(queue) == 0 {
			for cursor < g.N && parts[order[cursor]] == 0 {
				cursor++
			}
			if cursor >= g.N {
				break
			}
			queue = append(queue, order[cursor])
		}
		v := queue[0]
		queue = queue[1:]
		if parts[v] == 0 {
			continue
		}
		parts[v] = 0
		assigned++
		w += float64(g.NWt[v])
		adj, _ := g.Neighbors(v)
		for _, u := range adj {
			if parts[u] == 1 {
				queue = append(queue, u)
			}
		}
	}
	return parts
}

// refineTargets is the boundary FM pass with per-part weight bounds.
func refineTargets(g *WeightedGraph, parts []int32, maxAllowed []float64, passes int, r *rng.RNG) {
	k := len(maxAllowed)
	partWt := PartWeights(g, parts, k)
	sizes := Sizes(parts, k)
	conn := make([]float32, k)
	connTouched := make([]int32, 0, k)
	for pass := 0; pass < passes; pass++ {
		moved := 0
		order := r.Perm(g.N)
		for _, v := range order {
			cur := parts[v]
			if sizes[cur] <= 1 {
				continue
			}
			adj, ewt := g.Neighbors(v)
			if len(adj) == 0 {
				continue
			}
			connTouched = connTouched[:0]
			for i, u := range adj {
				p := parts[u]
				//bettyvet:ok floateq edge weights are positive REG counts, so zero marks first touch exactly
				if conn[p] == 0 {
					connTouched = append(connTouched, p)
				}
				conn[p] += ewt[i]
			}
			internal := conn[cur]
			nwt := float64(g.NWt[v])
			best := int32(-1)
			var bestConn float32 = -1
			for _, p := range connTouched {
				if p == cur || partWt[p]+nwt > maxAllowed[p] {
					continue
				}
				if conn[p] > bestConn {
					bestConn = conn[p]
					best = p
				}
			}
			overweight := partWt[cur] > maxAllowed[cur]
			if best >= 0 {
				gain := bestConn - internal
				//bettyvet:ok floateq FM tie detection; weights are integer-valued counts so sums and differences are exact
				if gain > 0 || (gain == 0 && partWt[best]+nwt < partWt[cur]) ||
					(overweight && partWt[best]+nwt < partWt[cur]) {
					moveNode(v, cur, best, nwt, parts, partWt, sizes)
					moved++
				}
			} else if overweight {
				other := 1 - cur
				if k == 2 && partWt[other]+nwt < partWt[cur] {
					moveNode(v, cur, other, nwt, parts, partWt, sizes)
					moved++
				}
			}
			for _, p := range connTouched {
				conn[p] = 0
			}
		}
		if moved == 0 {
			break
		}
	}
}

// Subgraph returns the subgraph induced on the given nodes (edges with
// both endpoints inside) and the mapping from new ids back to g's ids.
func (g *WeightedGraph) Subgraph(nodes []int32) (*WeightedGraph, []int32) {
	remap := make(map[int32]int32, len(nodes))
	back := make([]int32, len(nodes))
	for i, v := range nodes {
		remap[v] = int32(i)
		back[i] = v
	}
	sub := &WeightedGraph{
		N:   len(nodes),
		Ptr: make([]int64, len(nodes)+1),
		NWt: make([]float32, len(nodes)),
	}
	for i, v := range nodes {
		sub.NWt[i] = g.NWt[v]
		adj, ewt := g.Neighbors(v)
		for j, u := range adj {
			if nu, ok := remap[u]; ok {
				sub.Adj = append(sub.Adj, nu)
				sub.EWt = append(sub.EWt, ewt[j])
			}
		}
		sub.Ptr[i+1] = int64(len(sub.Adj))
	}
	return sub, back
}
