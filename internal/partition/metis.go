package partition

import (
	"fmt"

	"betty/internal/rng"
)

// Metis is a multilevel K-way min-edge-cut partitioner in the style of
// METIS (Karypis & Kumar): the graph is coarsened with heavy-edge matching,
// an initial partition is computed on the coarsest graph with greedy graph
// growing, and the partition is projected back through the levels with
// boundary Kernighan-Lin/Fiduccia-Mattheyses refinement at each step.
//
// It minimizes the weight of cut edges subject to a node-weight balance
// constraint — the "min-cost flow cut" objective Betty's REG partitioning
// reduces redundancy elimination to (§4.3.2).
type Metis struct {
	// Seed drives all randomized choices (visit orders, seeds).
	Seed uint64
	// Imbalance is the allowed max-part/ideal ratio; 0 means the 1.05
	// default used by METIS.
	Imbalance float64
	// Passes bounds refinement passes per level; 0 means 8.
	Passes int
	// CoarsenTo stops coarsening when this few nodes remain; 0 means
	// max(120, 15*k).
	CoarsenTo int
	// DisableRefinement turns off KL/FM refinement (ablation knob).
	DisableRefinement bool
	// RandomMatching replaces heavy-edge matching with random matching
	// during coarsening (ablation knob).
	RandomMatching bool
}

// Name implements Partitioner.
func (m *Metis) Name() string { return "metis" }

// Partition implements Partitioner.
func (m *Metis) Partition(g *WeightedGraph, k int) ([]int32, error) {
	if err := validateK(g, k); err != nil {
		return nil, err
	}
	if g.N == 0 {
		return []int32{}, nil
	}
	if k == 1 {
		return make([]int32, g.N), nil
	}
	imbalance := m.Imbalance
	if imbalance <= 0 {
		imbalance = 1.05
	}
	passes := m.Passes
	if passes <= 0 {
		passes = 8
	}
	coarsenTo := m.CoarsenTo
	if coarsenTo <= 0 {
		coarsenTo = 15 * k
		if coarsenTo < 120 {
			coarsenTo = 120
		}
	}
	r := rng.New(m.Seed ^ 0x6d657469735f6b)

	// Coarsening phase.
	type level struct {
		g    *WeightedGraph
		cmap []int32 // fine node -> coarse node in the next level
	}
	var levels []level
	cur := g
	for cur.N > coarsenTo && len(levels) < 40 {
		coarse, cmap := m.coarsen(cur, r)
		if coarse.N >= cur.N*19/20 {
			break // diminishing returns; stop coarsening
		}
		levels = append(levels, level{g: cur, cmap: cmap})
		cur = coarse
	}

	// Initial partition on the coarsest graph.
	total := cur.TotalNodeWeight()
	maxAllowed := imbalance * total / float64(k)
	parts := m.initialPartition(cur, k, r)
	if !m.DisableRefinement {
		refine(cur, parts, k, maxAllowed, passes, r)
	}

	// Uncoarsening: project and refine at every level.
	for i := len(levels) - 1; i >= 0; i-- {
		lv := levels[i]
		fine := make([]int32, lv.g.N)
		for v := 0; v < lv.g.N; v++ {
			fine[v] = parts[lv.cmap[v]]
		}
		parts = fine
		if !m.DisableRefinement {
			lvlTotal := lv.g.TotalNodeWeight()
			refine(lv.g, parts, k, imbalance*lvlTotal/float64(k), passes, r)
		}
	}
	ensureNonEmpty(g, parts, k, r)
	return parts, nil
}

// coarsen contracts a maximal matching of g. With RandomMatching unset it
// uses heavy-edge matching: each unmatched vertex matches its unmatched
// neighbor with the heaviest connecting edge.
func (m *Metis) coarsen(g *WeightedGraph, r *rng.RNG) (*WeightedGraph, []int32) {
	n := g.N
	match := make([]int32, n)
	cmap := make([]int32, n)
	for i := range match {
		match[i] = -1
		cmap[i] = -1
	}
	order := r.Perm(n)
	var nc int32
	for _, v := range order {
		if match[v] != -1 {
			continue
		}
		adj, ewt := g.Neighbors(v)
		best := int32(-1)
		bestW := float32(-1)
		for i, u := range adj {
			if u == v || match[u] != -1 {
				continue
			}
			if m.RandomMatching {
				best = u
				break
			}
			if ewt[i] > bestW {
				bestW = ewt[i]
				best = u
			}
		}
		if best >= 0 {
			match[v] = best
			match[best] = v
			cmap[v] = nc
			cmap[best] = nc
		} else {
			match[v] = v
			cmap[v] = nc
		}
		nc++
	}

	// Build the contracted graph with a dense accumulator over coarse ids.
	ptr := make([]int64, nc+1)
	var adjOut []int32
	var ewtOut []float32
	nwt := make([]float32, nc)
	acc := make([]float32, nc)
	touched := make([]int32, 0, 128)
	// members: iterate fine nodes grouped by coarse id via bucket sort
	memberHead := make([]int32, nc)
	memberNext := make([]int32, n)
	for i := range memberHead {
		memberHead[i] = -1
	}
	for v := n - 1; v >= 0; v-- {
		c := cmap[v]
		memberNext[v] = memberHead[c]
		memberHead[c] = int32(v)
	}
	for c := int32(0); c < nc; c++ {
		touched = touched[:0]
		for v := memberHead[c]; v != -1; v = memberNext[v] {
			nwt[c] += g.NWt[v]
			adj, ewt := g.Neighbors(v)
			for i, u := range adj {
				cu := cmap[u]
				if cu == c {
					continue
				}
				//bettyvet:ok floateq edge weights are positive REG counts, so zero marks first touch exactly
				if acc[cu] == 0 {
					touched = append(touched, cu)
				}
				acc[cu] += ewt[i]
			}
		}
		for _, cu := range touched {
			adjOut = append(adjOut, cu)
			ewtOut = append(ewtOut, acc[cu])
			acc[cu] = 0
		}
		ptr[c+1] = int64(len(adjOut))
	}
	coarse := &WeightedGraph{N: int(nc), Ptr: ptr, Adj: adjOut, EWt: ewtOut, NWt: nwt}
	return coarse, cmap
}

// initialPartition grows k regions by BFS from random seeds until each
// reaches the target weight (greedy graph growing).
func (m *Metis) initialPartition(g *WeightedGraph, k int, r *rng.RNG) []int32 {
	n := g.N
	parts := make([]int32, n)
	for i := range parts {
		parts[i] = -1
	}
	total := g.TotalNodeWeight()
	target := total / float64(k)
	order := r.Perm(n)
	seedCursor := 0
	assigned := 0
	queue := make([]int32, 0, 256)

	for p := 0; p < k-1; p++ {
		var w float64
		// leave at least one node per remaining part
		remainingParts := k - 1 - p
		for w < target && assigned < n-remainingParts {
			if len(queue) == 0 {
				// find a fresh unassigned seed
				for seedCursor < n && parts[order[seedCursor]] != -1 {
					seedCursor++
				}
				if seedCursor >= n {
					break
				}
				queue = append(queue, order[seedCursor])
			}
			v := queue[0]
			queue = queue[1:]
			if parts[v] != -1 {
				continue
			}
			parts[v] = int32(p)
			assigned++
			w += float64(g.NWt[v])
			adj, _ := g.Neighbors(v)
			for _, u := range adj {
				if parts[u] == -1 {
					queue = append(queue, u)
				}
			}
		}
		queue = queue[:0]
	}
	for v := 0; v < n; v++ {
		if parts[v] == -1 {
			parts[v] = int32(k - 1)
		}
	}
	return parts
}

// refine runs greedy boundary KL/FM passes: each pass visits nodes in
// random order and moves a node to the neighboring part with the largest
// positive cut gain, subject to the balance bound maxAllowed.
func refine(g *WeightedGraph, parts []int32, k int, maxAllowed float64, passes int, r *rng.RNG) {
	partWt := PartWeights(g, parts, k)
	sizes := Sizes(parts, k)
	conn := make([]float32, k)
	connTouched := make([]int32, 0, k)

	for pass := 0; pass < passes; pass++ {
		moved := 0
		order := r.Perm(g.N)
		for _, v := range order {
			cur := parts[v]
			if sizes[cur] <= 1 {
				continue // never empty a part
			}
			adj, ewt := g.Neighbors(v)
			if len(adj) == 0 {
				continue
			}
			connTouched = connTouched[:0]
			for i, u := range adj {
				p := parts[u]
				//bettyvet:ok floateq edge weights are positive REG counts, so zero marks first touch exactly
				if conn[p] == 0 {
					connTouched = append(connTouched, p)
				}
				conn[p] += ewt[i]
			}
			internal := conn[cur]
			nwt := float64(g.NWt[v])
			best := int32(-1)
			var bestConn float32 = -1
			for _, p := range connTouched {
				if p == cur {
					continue
				}
				if partWt[p]+nwt > maxAllowed {
					continue
				}
				if conn[p] > bestConn {
					bestConn = conn[p]
					best = p
				}
			}
			overweight := partWt[cur] > maxAllowed
			if best >= 0 {
				gain := bestConn - internal
				if gain > 0 ||
					//bettyvet:ok floateq FM tie detection; weights are integer-valued counts so sums and differences are exact
					(gain == 0 && partWt[best]+nwt < partWt[cur]) ||
					(overweight && partWt[best]+nwt < partWt[cur]) {
					moveNode(v, cur, best, nwt, parts, partWt, sizes)
					moved++
				}
			} else if overweight {
				// no connected candidate: dump to the globally lightest part
				light := int32(0)
				for p := 1; p < k; p++ {
					if partWt[p] < partWt[light] {
						light = int32(p)
					}
				}
				if light != cur && partWt[light]+nwt < partWt[cur] {
					moveNode(v, cur, light, nwt, parts, partWt, sizes)
					moved++
				}
			}
			for _, p := range connTouched {
				conn[p] = 0
			}
		}
		if moved == 0 {
			break
		}
	}
}

func moveNode(v int32, from, to int32, nwt float64, parts []int32, partWt []float64, sizes []int) {
	parts[v] = to
	partWt[from] -= nwt
	partWt[to] += nwt
	sizes[from]--
	sizes[to]++
}

// ensureNonEmpty guarantees every part owns at least one node by stealing
// from the largest part. It is a final safety net; the growing and
// refinement phases normally keep all parts populated.
func ensureNonEmpty(g *WeightedGraph, parts []int32, k int, r *rng.RNG) {
	sizes := Sizes(parts, k)
	for p := 0; p < k; p++ {
		if sizes[p] > 0 {
			continue
		}
		// find the largest part and move one of its nodes here
		donor := 0
		for q := 1; q < k; q++ {
			if sizes[q] > sizes[donor] {
				donor = q
			}
		}
		if sizes[donor] <= 1 {
			continue // cannot fix without emptying another part
		}
		for _, v := range r.Perm(g.N) {
			if parts[v] == int32(donor) {
				parts[v] = int32(p)
				sizes[donor]--
				sizes[p]++
				break
			}
		}
	}
}

// String describes the configuration, useful in experiment logs.
func (m *Metis) String() string {
	return fmt.Sprintf("metis(seed=%d imbalance=%.2f refine=%t hem=%t)",
		m.Seed, m.Imbalance, !m.DisableRefinement, !m.RandomMatching)
}
