package partition

import (
	"testing"
	"testing/quick"

	"betty/internal/rng"
)

func TestRBRingBisection(t *testing.T) {
	g := ring(t, 64)
	parts, err := (&RecursiveBisection{Seed: 1}).Partition(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	checkValidPartition(t, parts, 64, 2)
	if cut := EdgeCut(g, parts); cut > 6 {
		t.Fatalf("ring cut %v too large (optimal 2)", cut)
	}
}

func TestRBFindsClusters(t *testing.T) {
	g := clusters(t, 4, 20, 7)
	parts, err := (&RecursiveBisection{Seed: 2}).Partition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	checkValidPartition(t, parts, 80, 4)
	if cut := EdgeCut(g, parts); cut > 30 {
		t.Fatalf("cluster cut %v; RB failed to find community structure", cut)
	}
}

func TestRBNonPowerOfTwo(t *testing.T) {
	g := clusters(t, 5, 16, 8)
	for _, k := range []int{3, 5, 7} {
		parts, err := (&RecursiveBisection{Seed: 3}).Partition(g, k)
		if err != nil {
			t.Fatal(err)
		}
		checkValidPartition(t, parts, 80, k)
		if b := Balance(g, parts, k); b > 1.6 {
			t.Fatalf("k=%d balance %v too loose for RB", k, b)
		}
	}
}

func TestRBSinglePartAndValidation(t *testing.T) {
	g := ring(t, 8)
	parts, err := (&RecursiveBisection{}).Partition(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range parts {
		if p != 0 {
			t.Fatal("k=1 must be all zeros")
		}
	}
	if _, err := (&RecursiveBisection{}).Partition(g, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := (&RecursiveBisection{}).Partition(g, 99); err == nil {
		t.Fatal("k>n accepted")
	}
}

func TestRBDeterminism(t *testing.T) {
	g := clusters(t, 4, 15, 9)
	a, err := (&RecursiveBisection{Seed: 11}).Partition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := (&RecursiveBisection{Seed: 11}).Partition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("RB not deterministic for fixed seed")
		}
	}
}

// Property: RB partitions are valid for random graphs and k.
func TestRBValidProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 10 + r.Intn(100)
		m := r.Intn(5 * n)
		u := make([]int32, m)
		v := make([]int32, m)
		w := make([]float32, m)
		for i := range u {
			u[i] = r.Int31n(int32(n))
			v[i] = r.Int31n(int32(n))
			w[i] = 1
		}
		g, err := NewWeightedGraph(n, u, v, w, nil)
		if err != nil {
			return false
		}
		k := 2 + r.Intn(6)
		if k > n {
			k = n
		}
		parts, err := (&RecursiveBisection{Seed: seed}).Partition(g, k)
		if err != nil {
			return false
		}
		sizes := Sizes(parts, k)
		total := 0
		for _, s := range sizes {
			if s == 0 {
				return false
			}
			total += s
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSubgraph(t *testing.T) {
	g := ring(t, 6) // 0-1-2-3-4-5-0
	sub, back := g.Subgraph([]int32{1, 2, 3})
	if sub.N != 3 {
		t.Fatalf("sub has %d nodes", sub.N)
	}
	if back[0] != 1 || back[2] != 3 {
		t.Fatalf("back map %v", back)
	}
	// edges inside subset: 1-2, 2-3; node 0's edges to 1 excluded
	adj, _ := sub.Neighbors(0) // new id 0 = old 1
	if len(adj) != 1 || adj[0] != 1 {
		t.Fatalf("sub adjacency of old node 1: %v", adj)
	}
	adj, _ = sub.Neighbors(1) // old 2 connects to old 1 and old 3
	if len(adj) != 2 {
		t.Fatalf("sub adjacency of old node 2: %v", adj)
	}
}

// RB and direct K-way should land in the same cut class on clustered
// inputs; neither should be catastrophically worse.
func TestRBComparableToKway(t *testing.T) {
	g := clusters(t, 8, 16, 10)
	rb, err := (&RecursiveBisection{Seed: 4}).Partition(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	kw, err := (&Metis{Seed: 4}).Partition(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	cutRB, cutKW := EdgeCut(g, rb), EdgeCut(g, kw)
	if cutRB > 4*cutKW+20 {
		t.Fatalf("RB cut %v catastrophically worse than k-way %v", cutRB, cutKW)
	}
}
