package partition

import "testing"

// Two components of two nodes each: a partition along the components has
// no boundary nodes; a partition across them makes every node boundary.
func TestBoundary(t *testing.T) {
	g, err := NewWeightedGraph(5,
		[]int32{0, 2}, []int32{1, 3}, []float32{1, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := Boundary(g, []int32{0, 0, 1, 1, 0}); got != 0 {
		t.Fatalf("aligned partition boundary = %d, want 0", got)
	}
	if got := Boundary(g, []int32{0, 1, 0, 1, 0}); got != 4 {
		t.Fatalf("crossing partition boundary = %d, want 4", got)
	}
	// Node 4 is isolated: never a boundary node under any partition.
	if got := Boundary(g, []int32{0, 1, 1, 0, 1}); got != 4 {
		t.Fatalf("mixed partition boundary = %d, want 4", got)
	}
}

// The boundary count is bracketed by the edge cut: each cut edge creates
// at most two boundary nodes, and any nonzero cut creates at least one.
func TestBoundaryTracksEdgeCut(t *testing.T) {
	// path 0-1-2-3-4
	g, err := NewWeightedGraph(5,
		[]int32{0, 1, 2, 3}, []int32{1, 2, 3, 4}, []float32{1, 1, 1, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	parts := []int32{0, 0, 1, 1, 1}
	if cut := EdgeCut(g, parts); cut != 1 {
		t.Fatalf("edge cut = %v", cut)
	}
	if got := Boundary(g, parts); got != 2 {
		t.Fatalf("boundary = %d, want 2 (both endpoints of the cut edge)", got)
	}
}
