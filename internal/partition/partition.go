// Package partition implements K-way graph partitioning. It provides the
// three baseline partitioners the paper evaluates against (range, random,
// and a METIS-style multilevel min-edge-cut partitioner built from scratch)
// behind a common interface, plus partition-quality metrics (edge cut,
// balance). Betty's REG partitioning (package reg) feeds its
// redundancy-embedded graph to the multilevel partitioner from here.
package partition

import (
	"fmt"
	"sort"

	"betty/internal/rng"
)

// WeightedGraph is an undirected graph with edge and node weights, the
// input format of the partitioners. The adjacency is symmetric: every edge
// appears from both endpoints with the same weight.
type WeightedGraph struct {
	N   int
	Ptr []int64   // len N+1
	Adj []int32   // neighbor ids
	EWt []float32 // edge weights, parallel to Adj
	NWt []float32 // node weights, len N
}

// NewWeightedGraph builds an undirected weighted graph from directed edge
// triplets (u[i], v[i], w[i]). Both directions are inserted and duplicate
// (unordered) pairs have their weights summed; self loops are dropped.
// nodeWt may be nil, meaning unit node weights.
func NewWeightedGraph(n int, u, v []int32, w []float32, nodeWt []float32) (*WeightedGraph, error) {
	if len(u) != len(v) || len(u) != len(w) {
		return nil, fmt.Errorf("partition: edge array length mismatch")
	}
	for i := range u {
		if u[i] < 0 || int(u[i]) >= n || v[i] < 0 || int(v[i]) >= n {
			return nil, fmt.Errorf("partition: edge %d (%d,%d) out of range", i, u[i], v[i])
		}
	}
	// Accumulate unordered pair weights deterministically: normalize each
	// pair to (low, high), sort, and merge runs. (A map would randomize
	// adjacency order and with it every downstream partitioning decision.)
	type pair struct {
		a, b int32
		w    float32
	}
	pairs := make([]pair, 0, len(u))
	for i := range u {
		a, b := u[i], v[i]
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		pairs = append(pairs, pair{a, b, w[i]})
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].a != pairs[j].a {
			return pairs[i].a < pairs[j].a
		}
		return pairs[i].b < pairs[j].b
	})
	merged := pairs[:0]
	for _, p := range pairs {
		if n := len(merged); n > 0 && merged[n-1].a == p.a && merged[n-1].b == p.b {
			merged[n-1].w += p.w
		} else {
			merged = append(merged, p)
		}
	}
	deg := make([]int64, n+1)
	for _, p := range merged {
		deg[p.a+1]++
		deg[p.b+1]++
	}
	for i := 0; i < n; i++ {
		deg[i+1] += deg[i]
	}
	g := &WeightedGraph{
		N:   n,
		Ptr: deg,
		Adj: make([]int32, len(merged)*2),
		EWt: make([]float32, len(merged)*2),
		NWt: make([]float32, n),
	}
	cursor := make([]int64, n)
	copy(cursor, g.Ptr[:n])
	for _, pr := range merged {
		p := cursor[pr.a]
		g.Adj[p], g.EWt[p] = pr.b, pr.w
		cursor[pr.a] = p + 1
		q := cursor[pr.b]
		g.Adj[q], g.EWt[q] = pr.a, pr.w
		cursor[pr.b] = q + 1
	}
	if nodeWt != nil {
		if len(nodeWt) != n {
			return nil, fmt.Errorf("partition: node weight length %d, want %d", len(nodeWt), n)
		}
		copy(g.NWt, nodeWt)
	} else {
		for i := range g.NWt {
			g.NWt[i] = 1
		}
	}
	return g, nil
}

// Neighbors returns node v's adjacency and edge-weight slices (aliases).
func (g *WeightedGraph) Neighbors(v int32) ([]int32, []float32) {
	lo, hi := g.Ptr[v], g.Ptr[v+1]
	return g.Adj[lo:hi], g.EWt[lo:hi]
}

// TotalNodeWeight sums all node weights.
func (g *WeightedGraph) TotalNodeWeight() float64 {
	var s float64
	for _, w := range g.NWt {
		s += float64(w)
	}
	return s
}

// Partitioner assigns each of a weighted graph's nodes to one of k parts.
type Partitioner interface {
	// Name identifies the algorithm in experiment output.
	Name() string
	// Partition returns a part id in [0, k) for every node of g.
	Partition(g *WeightedGraph, k int) ([]int32, error)
}

// validateK rejects degenerate part counts.
func validateK(g *WeightedGraph, k int) error {
	if k <= 0 {
		return fmt.Errorf("partition: k must be positive, got %d", k)
	}
	if g.N > 0 && k > g.N {
		return fmt.Errorf("partition: k=%d exceeds %d nodes", k, g.N)
	}
	return nil
}

// Range partitions nodes into k contiguous id ranges of near-equal size —
// the "range partition" baseline: the space of output node IDs is evenly
// and sequentially partitioned.
type Range struct{}

// Name implements Partitioner.
func (Range) Name() string { return "range" }

// Partition implements Partitioner.
func (Range) Partition(g *WeightedGraph, k int) ([]int32, error) {
	if err := validateK(g, k); err != nil {
		return nil, err
	}
	parts := make([]int32, g.N)
	for i := 0; i < g.N; i++ {
		parts[i] = int32(i * k / g.N)
	}
	return parts, nil
}

// Random partitions node ids evenly but randomly — the "random partition"
// baseline: the space of output node IDs is evenly and randomly partitioned.
type Random struct {
	// Seed makes the assignment reproducible.
	Seed uint64
}

// Name implements Partitioner.
func (Random) Name() string { return "random" }

// Partition implements Partitioner.
func (p Random) Partition(g *WeightedGraph, k int) ([]int32, error) {
	if err := validateK(g, k); err != nil {
		return nil, err
	}
	r := rng.New(p.Seed)
	perm := r.Perm(g.N)
	parts := make([]int32, g.N)
	for pos, node := range perm {
		parts[node] = int32(pos * k / g.N)
	}
	return parts, nil
}

// EdgeCut returns the total weight of edges whose endpoints are in
// different parts (each undirected edge counted once).
func EdgeCut(g *WeightedGraph, parts []int32) float64 {
	var cut float64
	for v := int32(0); int(v) < g.N; v++ {
		adj, ewt := g.Neighbors(v)
		for i, u := range adj {
			if u > v && parts[u] != parts[v] {
				cut += float64(ewt[i])
			}
		}
	}
	return cut
}

// Boundary counts the nodes that have at least one neighbor assigned to a
// different part. These are the vertices whose state must be exchanged
// between parts in a split-parallel execution — the halo set — so alongside
// EdgeCut it predicts the inter-device traffic a partition induces.
func Boundary(g *WeightedGraph, parts []int32) int {
	count := 0
	for v := int32(0); int(v) < g.N; v++ {
		adj, _ := g.Neighbors(v)
		for _, u := range adj {
			if parts[u] != parts[v] {
				count++
				break
			}
		}
	}
	return count
}

// PartWeights sums node weights per part.
func PartWeights(g *WeightedGraph, parts []int32, k int) []float64 {
	w := make([]float64, k)
	for v := 0; v < g.N; v++ {
		w[parts[v]] += float64(g.NWt[v])
	}
	return w
}

// Balance returns max part weight divided by the ideal (total/k); 1.0 is
// perfectly balanced.
func Balance(g *WeightedGraph, parts []int32, k int) float64 {
	w := PartWeights(g, parts, k)
	total := 0.0
	maxw := 0.0
	for _, x := range w {
		total += x
		if x > maxw {
			maxw = x
		}
	}
	//bettyvet:ok floateq division guard; weights are non-negative so the sum is exactly zero only when all are
	if total == 0 {
		return 1
	}
	return maxw / (total / float64(k))
}

// Sizes counts nodes per part.
func Sizes(parts []int32, k int) []int {
	s := make([]int, k)
	for _, p := range parts {
		s[p]++
	}
	return s
}
