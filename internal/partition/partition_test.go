package partition

import (
	"testing"
	"testing/quick"

	"betty/internal/rng"
)

// ring builds a cycle of n unit-weight nodes with unit edges.
func ring(t *testing.T, n int) *WeightedGraph {
	t.Helper()
	u := make([]int32, n)
	v := make([]int32, n)
	w := make([]float32, n)
	for i := 0; i < n; i++ {
		u[i] = int32(i)
		v[i] = int32((i + 1) % n)
		w[i] = 1
	}
	g, err := NewWeightedGraph(n, u, v, w, nil)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// clusters builds c dense clusters of size s with sparse inter-cluster
// links, a graph where a good partitioner should cut only the links.
func clusters(t *testing.T, c, s int, seed uint64) *WeightedGraph {
	t.Helper()
	r := rng.New(seed)
	var u, v []int32
	var w []float32
	n := c * s
	for ci := 0; ci < c; ci++ {
		base := ci * s
		// dense intra-cluster edges
		for i := 0; i < s; i++ {
			for j := i + 1; j < s; j++ {
				if r.Float64() < 0.6 {
					u = append(u, int32(base+i))
					v = append(v, int32(base+j))
					w = append(w, 10)
				}
			}
		}
		// one weak link to the next cluster
		next := (ci + 1) % c * s
		u = append(u, int32(base))
		v = append(v, int32(next))
		w = append(w, 1)
	}
	g, err := NewWeightedGraph(n, u, v, w, nil)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func checkValidPartition(t *testing.T, parts []int32, n, k int) {
	t.Helper()
	if len(parts) != n {
		t.Fatalf("parts length %d, want %d", len(parts), n)
	}
	sizes := Sizes(parts, k)
	for p, s := range sizes {
		if s == 0 {
			t.Fatalf("part %d is empty: sizes=%v", p, sizes)
		}
	}
	for i, p := range parts {
		if p < 0 || int(p) >= k {
			t.Fatalf("node %d in invalid part %d", i, p)
		}
	}
}

func TestNewWeightedGraphSymmetrizes(t *testing.T) {
	g, err := NewWeightedGraph(3, []int32{0, 1, 0}, []int32{1, 0, 2}, []float32{2, 3, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// (0,1) appears twice -> weight 5, seen from both sides
	adj, ewt := g.Neighbors(0)
	found := false
	for i, u := range adj {
		if u == 1 {
			found = true
			if ewt[i] != 5 {
				t.Fatalf("merged weight %v, want 5", ewt[i])
			}
		}
	}
	if !found {
		t.Fatal("edge 0-1 missing")
	}
	adj1, _ := g.Neighbors(1)
	if len(adj1) != 1 || adj1[0] != 0 {
		t.Fatalf("asymmetric adjacency: %v", adj1)
	}
}

func TestNewWeightedGraphDropsSelfLoops(t *testing.T) {
	g, err := NewWeightedGraph(2, []int32{0, 0}, []int32{0, 1}, []float32{9, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	adj, _ := g.Neighbors(0)
	if len(adj) != 1 || adj[0] != 1 {
		t.Fatalf("self loop survived: %v", adj)
	}
}

func TestNewWeightedGraphValidation(t *testing.T) {
	if _, err := NewWeightedGraph(2, []int32{0}, []int32{1, 0}, []float32{1}, nil); err == nil {
		t.Fatal("length mismatch not rejected")
	}
	if _, err := NewWeightedGraph(2, []int32{5}, []int32{0}, []float32{1}, nil); err == nil {
		t.Fatal("out-of-range node not rejected")
	}
	if _, err := NewWeightedGraph(2, nil, nil, nil, []float32{1}); err == nil {
		t.Fatal("bad node-weight length not rejected")
	}
}

func TestRangePartition(t *testing.T) {
	g := ring(t, 10)
	parts, err := Range{}.Partition(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	checkValidPartition(t, parts, 10, 3)
	// contiguity: parts must be non-decreasing over node ids
	for i := 1; i < 10; i++ {
		if parts[i] < parts[i-1] {
			t.Fatalf("range partition not contiguous: %v", parts)
		}
	}
}

func TestRandomPartitionEvenAndReproducible(t *testing.T) {
	g := ring(t, 100)
	a, err := Random{Seed: 7}.Partition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	checkValidPartition(t, a, 100, 4)
	sizes := Sizes(a, 4)
	for _, s := range sizes {
		if s != 25 {
			t.Fatalf("uneven random partition: %v", sizes)
		}
	}
	b, _ := Random{Seed: 7}.Partition(g, 4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different partition")
		}
	}
	c, _ := Random{Seed: 8}.Partition(g, 4)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical partition (suspicious)")
	}
}

func TestValidateK(t *testing.T) {
	g := ring(t, 4)
	for _, p := range []Partitioner{Range{}, Random{}, &Metis{}} {
		if _, err := p.Partition(g, 0); err == nil {
			t.Fatalf("%s accepted k=0", p.Name())
		}
		if _, err := p.Partition(g, 9); err == nil {
			t.Fatalf("%s accepted k > n", p.Name())
		}
	}
}

func TestMetisSinglePart(t *testing.T) {
	g := ring(t, 12)
	parts, err := (&Metis{}).Partition(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range parts {
		if p != 0 {
			t.Fatal("k=1 must assign everything to part 0")
		}
	}
}

func TestMetisRingBisection(t *testing.T) {
	g := ring(t, 64)
	parts, err := (&Metis{Seed: 3}).Partition(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	checkValidPartition(t, parts, 64, 2)
	cut := EdgeCut(g, parts)
	// optimal ring bisection cuts exactly 2 edges; allow small slack
	if cut > 6 {
		t.Fatalf("ring cut %v too large (optimal 2)", cut)
	}
	if b := Balance(g, parts, 2); b > 1.15 {
		t.Fatalf("ring bisection imbalanced: %v", b)
	}
}

func TestMetisFindsClusters(t *testing.T) {
	g := clusters(t, 4, 20, 1)
	parts, err := (&Metis{Seed: 5}).Partition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	checkValidPartition(t, parts, 80, 4)
	cut := EdgeCut(g, parts)
	// the 4 weak links weigh 1 each; cutting through a cluster costs 10+
	if cut > 30 {
		t.Fatalf("cluster cut %v; partitioner failed to find community structure", cut)
	}
}

func TestMetisBeatsRandomOnCut(t *testing.T) {
	g := clusters(t, 8, 16, 2)
	mparts, err := (&Metis{Seed: 1}).Partition(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	rparts, err := Random{Seed: 1}.Partition(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	mcut, rcut := EdgeCut(g, mparts), EdgeCut(g, rparts)
	if mcut >= rcut {
		t.Fatalf("metis cut %v not better than random cut %v", mcut, rcut)
	}
}

func TestMetisRefinementHelps(t *testing.T) {
	g := clusters(t, 6, 24, 3)
	with, err := (&Metis{Seed: 9}).Partition(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	without, err := (&Metis{Seed: 9, DisableRefinement: true}).Partition(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	if EdgeCut(g, with) > EdgeCut(g, without) {
		t.Fatalf("refinement made the cut worse: %v vs %v",
			EdgeCut(g, with), EdgeCut(g, without))
	}
}

func TestMetisRespectsBalance(t *testing.T) {
	r := rng.New(11)
	// irregular random graph
	n := 500
	var u, v []int32
	var w []float32
	for i := 0; i < 3000; i++ {
		u = append(u, r.Int31n(int32(n)))
		v = append(v, r.Int31n(int32(n)))
		w = append(w, float32(1+r.Intn(5)))
	}
	g, err := NewWeightedGraph(n, u, v, w, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 4, 8} {
		parts, err := (&Metis{Seed: 13}).Partition(g, k)
		if err != nil {
			t.Fatal(err)
		}
		checkValidPartition(t, parts, n, k)
		if b := Balance(g, parts, k); b > 1.35 {
			t.Fatalf("k=%d balance %v too loose", k, b)
		}
	}
}

func TestMetisDeterminism(t *testing.T) {
	g := clusters(t, 4, 15, 4)
	a, _ := (&Metis{Seed: 21}).Partition(g, 4)
	b, _ := (&Metis{Seed: 21}).Partition(g, 4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("metis not deterministic for fixed seed")
		}
	}
}

// Property: partitions from all algorithms are structurally valid for
// random graphs and random k.
func TestAllPartitionersProduceValidParts(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 8 + r.Intn(120)
		m := r.Intn(5 * n)
		u := make([]int32, m)
		v := make([]int32, m)
		w := make([]float32, m)
		for i := range u {
			u[i] = r.Int31n(int32(n))
			v[i] = r.Int31n(int32(n))
			w[i] = 1
		}
		g, err := NewWeightedGraph(n, u, v, w, nil)
		if err != nil {
			return false
		}
		k := 2 + r.Intn(6)
		if k > n {
			k = n
		}
		for _, p := range []Partitioner{Range{}, Random{Seed: seed}, &Metis{Seed: seed}} {
			parts, err := p.Partition(g, k)
			if err != nil {
				return false
			}
			if len(parts) != n {
				return false
			}
			sizes := Sizes(parts, k)
			total := 0
			for _, s := range sizes {
				if s == 0 {
					return false
				}
				total += s
			}
			if total != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeCutAndBalanceMetrics(t *testing.T) {
	g := ring(t, 4) // cycle 0-1-2-3-0, unit weights
	parts := []int32{0, 0, 1, 1}
	if cut := EdgeCut(g, parts); cut != 2 {
		t.Fatalf("EdgeCut = %v, want 2", cut)
	}
	if b := Balance(g, parts, 2); b != 1 {
		t.Fatalf("Balance = %v, want 1", b)
	}
	parts = []int32{0, 0, 0, 1}
	if b := Balance(g, parts, 2); b != 1.5 {
		t.Fatalf("Balance = %v, want 1.5", b)
	}
}

func TestNodeWeightsRespected(t *testing.T) {
	// two heavy nodes and many light ones; heavy nodes should separate
	n := 10
	nw := make([]float32, n)
	for i := range nw {
		nw[i] = 1
	}
	nw[0], nw[1] = 8, 8
	var u, v []int32
	var w []float32
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			u = append(u, int32(i))
			v = append(v, int32(j))
			w = append(w, 1)
		}
	}
	g, err := NewWeightedGraph(n, u, v, w, nw)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := (&Metis{Seed: 2}).Partition(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	pw := PartWeights(g, parts, 2)
	// total 24, ideal 12; heavy nodes together would make 17+ vs 7
	if pw[0] > 16 || pw[1] > 16 {
		t.Fatalf("node weights ignored: part weights %v", pw)
	}
}
