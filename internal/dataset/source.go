package dataset

import (
	"fmt"

	"betty/internal/parallel"
	"betty/internal/tensor"
)

// FeatureSource abstracts where input-feature rows live. The in-RAM
// implementation below wraps the dense feature matrix; internal/store adds
// a disk-backed implementation whose resident footprint is bounded by a
// cache budget instead of the dataset size. Everything downstream of the
// per-batch gather — training, evaluation, serving — goes through this
// interface, so swapping the backing store cannot change a single staged
// byte: both implementations copy the same rows in the same order.
//
// Implementations must be safe for concurrent Gather calls (evaluation
// chunks and serving batches gather in parallel) and must fail loudly —
// a row that cannot be produced is an error, never silent zeros.
type FeatureSource interface {
	// Rows is the number of feature rows (one per node).
	Rows() int
	// Dim is the feature width.
	Dim() int
	// GatherInto copies the rows for the given global node IDs into out,
	// which must be len(nids) x Dim.
	GatherInto(out *tensor.Tensor, nids []int32) error
	// GatherRow copies one row into dst, which must be len Dim.
	GatherRow(dst []float32, nid int32) error
	// ResidentBytes is the source's current host-memory footprint. For the
	// in-RAM source this is the whole matrix; for a disk-backed source it
	// is the bytes currently cached, which is what makes HostBytes honest
	// under out-of-core training.
	ResidentBytes() int64
}

// MatrixSource is the in-RAM FeatureSource: a dense feature matrix. It is
// a renaming of tensor.Tensor rather than a wrapper struct so that the
// conversion from an existing matrix is free and the interface value stays
// pointer-shaped (no per-gather boxing allocation).
type MatrixSource tensor.Tensor

// AsSource views a dense feature matrix as a FeatureSource.
func AsSource(t *tensor.Tensor) *MatrixSource { return (*MatrixSource)(t) }

func (m *MatrixSource) t() *tensor.Tensor { return (*tensor.Tensor)(m) }

// Rows returns the number of feature rows.
func (m *MatrixSource) Rows() int { return m.t().Rows() }

// Dim returns the feature width.
func (m *MatrixSource) Dim() int { return m.t().Cols() }

// GatherInto copies the rows for the given global node IDs into out. Rows
// are disjoint, so the parallel copy is deterministic.
func (m *MatrixSource) GatherInto(out *tensor.Tensor, nids []int32) error {
	if out.Rows() != len(nids) || out.Cols() != m.Dim() {
		return fmt.Errorf("dataset: gather into %dx%d, want %dx%d",
			out.Rows(), out.Cols(), len(nids), m.Dim())
	}
	rows := m.Rows()
	for _, nid := range nids {
		if nid < 0 || int(nid) >= rows {
			return fmt.Errorf("dataset: gather node %d out of range [0,%d)", nid, rows)
		}
	}
	src := m.t()
	parallel.For(len(nids), 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			copy(out.Row(i), src.Row(int(nids[i])))
		}
	})
	return nil
}

// GatherRow copies one row into dst.
func (m *MatrixSource) GatherRow(dst []float32, nid int32) error {
	if len(dst) != m.Dim() {
		return fmt.Errorf("dataset: gather row into len %d, want %d", len(dst), m.Dim())
	}
	if nid < 0 || int(nid) >= m.Rows() {
		return fmt.Errorf("dataset: gather node %d out of range [0,%d)", nid, m.Rows())
	}
	copy(dst, m.t().Row(int(nid)))
	return nil
}

// ResidentBytes is the full matrix: the in-RAM source keeps everything
// resident.
func (m *MatrixSource) ResidentBytes() int64 { return int64(m.t().Len()) * 4 }
