package dataset

import (
	"math"
	"testing"

	"betty/internal/rng"
)

func smallCfg(seed uint64) GenConfig {
	return GenConfig{
		Name: "test", Nodes: 2000, AvgDegree: 8, FeatureDim: 16,
		NumClasses: 5, Homophily: 0.8, PowerLawExp: 2.3, Seed: seed,
	}
}

func TestGenerateBasics(t *testing.T) {
	d, err := Generate(smallCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	if d.Graph.NumNodes() != 2000 {
		t.Fatalf("nodes = %d", d.Graph.NumNodes())
	}
	if d.Features.Rows() != 2000 || d.Features.Cols() != 16 {
		t.Fatal("feature shape wrong")
	}
	if len(d.Labels) != 2000 {
		t.Fatal("label length wrong")
	}
	for _, l := range d.Labels {
		if l < 0 || int(l) >= d.NumClasses {
			t.Fatalf("label %d out of range", l)
		}
	}
	// edges approximately nodes*avgdeg (minus dropped self loops)
	e := float64(d.Graph.NumEdges())
	if e < 14000 || e > 16000 {
		t.Fatalf("edge count %v far from target 16000", e)
	}
}

func TestGenerateSplitsDisjointAndCovering(t *testing.T) {
	d, err := Generate(smallCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int32]int{}
	for _, idx := range [][]int32{d.TrainIdx, d.ValIdx, d.TestIdx} {
		for _, v := range idx {
			seen[v]++
		}
	}
	if len(seen) != 2000 {
		t.Fatalf("splits cover %d of 2000 nodes", len(seen))
	}
	for v, c := range seen {
		if c != 1 {
			t.Fatalf("node %d appears in %d splits", v, c)
		}
	}
	if len(d.TrainIdx) != 1000 || len(d.ValIdx) != 500 {
		t.Fatalf("split sizes %d/%d/%d", len(d.TrainIdx), len(d.ValIdx), len(d.TestIdx))
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a, err := Generate(smallCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	if a.Graph.NumEdges() != b.Graph.NumEdges() {
		t.Fatal("same seed produced different graphs")
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("same seed produced different labels")
		}
	}
	for i := range a.Features.Data {
		if math.Float32bits(a.Features.Data[i]) != math.Float32bits(b.Features.Data[i]) {
			t.Fatal("same seed produced different features")
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := smallCfg(1)
	bad.Nodes = 0
	if _, err := Generate(bad); err == nil {
		t.Fatal("zero nodes accepted")
	}
	bad = smallCfg(1)
	bad.Homophily = 1.5
	if _, err := Generate(bad); err == nil {
		t.Fatal("bad homophily accepted")
	}
	bad = smallCfg(1)
	bad.NumClasses = 10000
	if _, err := Generate(bad); err == nil {
		t.Fatal("more classes than nodes accepted")
	}
}

// The in-degree distribution must be heavy-tailed: the max in-degree should
// far exceed the average, and the "last bucket" of an M=10 bucketing should
// hold a disproportionate share of edges (the §4.4.2 explosion).
func TestPowerLawDegreeTail(t *testing.T) {
	d, err := Generate(smallCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	avg := float64(d.Graph.NumEdges()) / float64(d.Graph.NumNodes())
	maxDeg := d.Graph.MaxInDegree()
	if float64(maxDeg) < 6*avg {
		t.Fatalf("max in-degree %d vs avg %.1f: tail too light", maxDeg, avg)
	}
	hist := d.Graph.InDegreeHistogram(10)
	last := hist[10]
	if last == 0 {
		t.Fatal("no nodes in the saturated bucket")
	}
}

// Homophily: the fraction of intra-class edges must be far above the 1/C
// random baseline, since this is what makes communities separable.
func TestHomophily(t *testing.T) {
	d, err := Generate(smallCfg(5))
	if err != nil {
		t.Fatal(err)
	}
	src, dst := d.Graph.Edges()
	intra := 0
	for i := range src {
		if d.Labels[src[i]] == d.Labels[dst[i]] {
			intra++
		}
	}
	frac := float64(intra) / float64(len(src))
	baseline := 1.0 / float64(d.NumClasses)
	if frac < 3*baseline {
		t.Fatalf("intra-class edge fraction %.3f too close to random %.3f", frac, baseline)
	}
}

// Features must be class-separable: a nearest-centroid classifier on the
// generated features should beat random guessing by a wide margin.
func TestFeaturesAreLearnable(t *testing.T) {
	d, err := Generate(smallCfg(6))
	if err != nil {
		t.Fatal(err)
	}
	// estimate centroids from train split
	dim := d.FeatureDim()
	cent := make([][]float64, d.NumClasses)
	count := make([]int, d.NumClasses)
	for i := range cent {
		cent[i] = make([]float64, dim)
	}
	for _, v := range d.TrainIdx {
		c := d.Labels[v]
		count[c]++
		row := d.Features.Row(int(v))
		for j, x := range row {
			cent[c][j] += float64(x)
		}
	}
	for c := range cent {
		for j := range cent[c] {
			cent[c][j] /= float64(count[c])
		}
	}
	correct := 0
	for _, v := range d.TestIdx {
		row := d.Features.Row(int(v))
		best, bestD := 0, math.Inf(1)
		for c := range cent {
			var dist float64
			for j, x := range row {
				diff := float64(x) - cent[c][j]
				dist += diff * diff
			}
			if dist < bestD {
				bestD, best = dist, c
			}
		}
		if int32(best) == d.Labels[v] {
			correct++
		}
	}
	acc := float64(correct) / float64(len(d.TestIdx))
	if acc < 0.6 {
		t.Fatalf("nearest-centroid accuracy %.2f; features not separable", acc)
	}
}

func TestRegistry(t *testing.T) {
	names := Names()
	want := []string{"cora", "ogbn-arxiv", "ogbn-products", "pubmed", "reddit"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v", names)
		}
	}
	if _, err := Config("cora"); err != nil {
		t.Fatal(err)
	}
	if _, err := Config("imagenet"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestLoadScaled(t *testing.T) {
	d, err := LoadScaled("ogbn-arxiv", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if d.Graph.NumNodes() != 800 {
		t.Fatalf("scaled nodes = %d, want 800", d.Graph.NumNodes())
	}
	if d.FeatureDim() != 128 || d.NumClasses != 40 {
		t.Fatal("scaling changed dims")
	}
	if _, err := LoadScaled("ogbn-arxiv", 0); err == nil {
		t.Fatal("zero scale accepted")
	}
	if _, err := LoadScaled("nope", 0.5); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestGatherHelpers(t *testing.T) {
	d, err := Generate(smallCfg(7))
	if err != nil {
		t.Fatal(err)
	}
	nids := []int32{5, 0, 9}
	f, err := d.GatherFeatures(nids)
	if err != nil {
		t.Fatal(err)
	}
	if f.Rows() != 3 || f.Cols() != d.FeatureDim() {
		t.Fatal("gathered feature shape wrong")
	}
	if _, err := d.GatherFeatures([]int32{int32(d.Features.Rows())}); err == nil {
		t.Fatal("out-of-range gather accepted")
	}
	row := make([]float32, d.FeatureDim())
	if err := d.GatherFeatureRow(row, 5); err != nil {
		t.Fatal(err)
	}
	for j := range row {
		if math.Float32bits(row[j]) != math.Float32bits(d.Features.At(5, j)) {
			t.Fatal("gathered row mismatch")
		}
	}
	for i, nid := range nids {
		for j := 0; j < f.Cols(); j++ {
			if math.Float32bits(f.At(i, j)) != math.Float32bits(d.Features.At(int(nid), j)) {
				t.Fatal("gathered features mismatch")
			}
		}
	}
	ls := d.GatherLabels(nids)
	for i, nid := range nids {
		if ls[i] != d.Labels[nid] {
			t.Fatal("gathered labels mismatch")
		}
	}
}

// Alias sampling must reproduce the weight distribution approximately.
func TestAliasDistribution(t *testing.T) {
	weights := []float64{1, 2, 4, 8}
	a := newAlias(weights, nil)
	r := rng.New(8)
	counts := make([]int, 4)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[a.draw(r)]++
	}
	total := 15.0
	for i, w := range weights {
		want := w / total
		got := float64(counts[i]) / draws
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("weight %d: frequency %.3f, want %.3f", i, got, want)
		}
	}
}

func TestAliasSubset(t *testing.T) {
	weights := []float64{1, 1, 1, 1, 1}
	subset := []int32{1, 3}
	a := newAlias(weights, subset)
	r := rng.New(9)
	for i := 0; i < 1000; i++ {
		v := a.draw(r)
		if v != 1 && v != 3 {
			t.Fatalf("subset alias drew %d", v)
		}
	}
}

func TestHostBytes(t *testing.T) {
	d, err := Generate(smallCfg(10))
	if err != nil {
		t.Fatal(err)
	}
	hb := d.HostBytes()
	featBytes := int64(d.Features.Len()) * 4
	if hb <= featBytes {
		t.Fatalf("HostBytes %d should exceed feature bytes %d (labels+graph)", hb, featBytes)
	}
	if hb <= 0 {
		t.Fatal("non-positive host footprint")
	}
}
