// Package dataset synthesizes the training datasets of the paper's Table 4.
// The real datasets (Cora, Pubmed, Reddit, ogbn-arxiv, ogbn-products) are
// not available offline, so each is replaced by a generated graph that
// preserves the properties Betty's behaviour depends on:
//
//   - a heavy-tailed (power-law) in-degree distribution, which drives the
//     in-degree bucketing explosion and partition imbalance of §4.4.2;
//   - community structure with homophily, which is what makes REG
//     partitioning find low-redundancy splits (§4.3);
//   - class-correlated features, so models genuinely learn and the
//     accuracy/convergence experiments (Table 5, Figure 13) are meaningful.
//
// Node counts are scaled to laptop memory while keeping each dataset's
// relative size, density, and feature width.
package dataset

import (
	"fmt"
	"math"

	"betty/internal/graph"
	"betty/internal/rng"
	"betty/internal/tensor"
)

// Dataset is a ready-to-train node classification problem.
type Dataset struct {
	Name  string
	Graph *graph.Graph
	// Features is the dense in-RAM feature matrix (NumNodes x FeatureDim).
	// It may be nil when Source is set: an out-of-core dataset never
	// materializes the full matrix.
	Features *tensor.Tensor
	// Source, when non-nil, overrides Features as the row provider for
	// every feature gather. When nil, gathers read the in-RAM matrix.
	Source     FeatureSource
	Labels     []int32 // NumNodes, in [0, NumClasses)
	NumClasses int
	TrainIdx   []int32
	ValIdx     []int32
	TestIdx    []int32
}

// FeatureSource returns the active row provider: Source when set,
// otherwise the in-RAM matrix.
func (d *Dataset) FeatureSource() FeatureSource {
	if d.Source != nil {
		return d.Source
	}
	return AsSource(d.Features)
}

// FeatureDim returns the width of the feature matrix.
func (d *Dataset) FeatureDim() int { return d.FeatureSource().Dim() }

// GatherFeatures copies the rows for the given global node IDs into a new
// tensor — the host-side feature fetch for a batch.
func (d *Dataset) GatherFeatures(nids []int32) (*tensor.Tensor, error) {
	out := tensor.New(len(nids), d.FeatureDim())
	if err := d.GatherFeaturesInto(out, nids); err != nil {
		return nil, err
	}
	return out, nil
}

// GatherFeaturesInto copies the rows for the given global node IDs into
// out, which must be len(nids) x FeatureDim. The training hot path stages
// the fetch into a pooled tape tensor so the per-batch feature copy stops
// allocating. An out-of-core source can fail (I/O error, corrupt shard);
// the error is propagated, never papered over with zero rows.
func (d *Dataset) GatherFeaturesInto(out *tensor.Tensor, nids []int32) error {
	return d.FeatureSource().GatherInto(out, nids)
}

// GatherFeatureRow copies one node's feature row into dst (len
// FeatureDim). Serving's per-row feature cache uses it to fill misses
// without materializing a batch tensor.
func (d *Dataset) GatherFeatureRow(dst []float32, nid int32) error {
	return d.FeatureSource().GatherRow(dst, nid)
}

// HostBytes returns the dataset's host-memory footprint: the resident
// feature bytes, labels, and graph adjacency. Betty's heterogeneous-memory
// layout keeps all of this in host memory; only per-micro-batch slices
// ever move to the device, which is why the device budget can be far below
// the dataset size. With a disk-backed source the feature term is the
// shard cache's current residency, not the dataset size.
func (d *Dataset) HostBytes() int64 {
	return d.FeatureSource().ResidentBytes() + int64(len(d.Labels))*4 + d.Graph.Bytes()
}

// GatherLabels copies the labels for the given global node IDs.
func (d *Dataset) GatherLabels(nids []int32) []int32 {
	out := make([]int32, len(nids))
	for i, nid := range nids {
		out[i] = d.Labels[nid]
	}
	return out
}

// GenConfig parameterizes the synthetic generator.
type GenConfig struct {
	Name string
	// Nodes and AvgDegree set the graph size; Edges ≈ Nodes*AvgDegree.
	Nodes     int
	AvgDegree float64
	// PowerLawExp is the Pareto tail exponent of the degree weights;
	// smaller means heavier tail (natural graphs: ~2-3).
	PowerLawExp float64
	// FeatureDim and NumClasses shape the learning problem.
	FeatureDim int
	NumClasses int
	// Homophily is the probability an edge stays inside its community.
	Homophily float64
	// Communities is the number of connectivity clusters (default:
	// NumClasses). Real graphs have far more clusters than label classes;
	// labels are assigned as community mod NumClasses. Fine communities
	// keep multi-hop neighborhoods local, which is what gives
	// redundancy-aware partitioning room to work.
	Communities int
	// NoiseStd is the feature noise around the class centroid.
	NoiseStd float64
	// LabelNoise is the fraction of nodes whose label is replaced with a
	// uniformly random class. It sets the achievable accuracy ceiling to
	// about (1 - LabelNoise) + LabelNoise/NumClasses, mirroring the
	// irreducible error of the real datasets (e.g. ogbn-arxiv tops out
	// near 72%).
	LabelNoise float64
	// TrainFrac and ValFrac set the split sizes (defaults 0.5 and 0.25);
	// the registry mirrors each real dataset's official fractions, e.g.
	// ogbn-products' 8% train split, because the train split is the full
	// batch Betty partitions.
	TrainFrac, ValFrac float64
	// Seed drives all randomness.
	Seed uint64
}

// Validate checks the configuration.
func (c GenConfig) Validate() error {
	if c.Nodes <= 0 || c.FeatureDim <= 0 || c.NumClasses <= 0 {
		return fmt.Errorf("dataset: non-positive size in %+v", c)
	}
	if c.NumClasses > c.Nodes {
		return fmt.Errorf("dataset: more classes than nodes")
	}
	if c.AvgDegree <= 0 {
		return fmt.Errorf("dataset: average degree must be positive")
	}
	if c.Homophily < 0 || c.Homophily > 1 {
		return fmt.Errorf("dataset: homophily out of [0,1]")
	}
	if c.LabelNoise < 0 || c.LabelNoise > 1 {
		return fmt.Errorf("dataset: label noise out of [0,1]")
	}
	return nil
}

// Generate synthesizes a dataset: a degree-corrected stochastic block model
// (Chung-Lu weights with community bias) plus Gaussian class-centroid
// features and a 50/25/25 split.
func Generate(cfg GenConfig) (*Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.PowerLawExp <= 0 {
		cfg.PowerLawExp = 2.5
	}
	if cfg.NoiseStd <= 0 {
		cfg.NoiseStd = 1.0
	}
	r := rng.New(cfg.Seed)
	n := cfg.Nodes
	numComm := cfg.Communities
	if numComm <= 0 {
		numComm = cfg.NumClasses
	}
	if numComm > n {
		numComm = n
	}

	// communities drive connectivity; labels are community mod classes,
	// assigned round-robin over a shuffle so both are balanced but not
	// id-contiguous
	comm := make([]int32, n)
	labels := make([]int32, n)
	perm := r.Perm(n)
	for pos, node := range perm {
		comm[node] = int32(pos % numComm)
		labels[node] = comm[node] % int32(cfg.NumClasses)
	}

	// power-law degree weights, capped to avoid one node owning the graph
	weights := make([]float64, n)
	capW := math.Max(10, float64(n)/20)
	for i := range weights {
		w := r.Pareto(1, cfg.PowerLawExp)
		if w > capW {
			w = capW
		}
		weights[i] = w
	}

	// alias tables: one global, one per community
	global := newAlias(weights, nil)
	byComm := make([]*alias, numComm)
	commNodes := make([][]int32, numComm)
	for i := 0; i < n; i++ {
		commNodes[comm[i]] = append(commNodes[comm[i]], int32(i))
	}
	for c := 0; c < numComm; c++ {
		byComm[c] = newAlias(weights, commNodes[c])
	}

	// draw edges: source weight-proportional, destination homophilous
	m := int(float64(n) * cfg.AvgDegree)
	src := make([]int32, 0, m)
	dst := make([]int32, 0, m)
	for e := 0; e < m; e++ {
		u := global.draw(r)
		var v int32
		if r.Float64() < cfg.Homophily {
			v = byComm[comm[u]].draw(r)
		} else {
			v = global.draw(r)
		}
		if u == v {
			continue
		}
		src = append(src, u)
		dst = append(dst, v)
	}
	g, err := graph.FromEdges(int32(n), src, dst)
	if err != nil {
		return nil, err
	}

	// flip labels after features are anchored to the true community, so
	// the graph and features stay coherent while accuracy gets a ceiling
	trueLabels := append([]int32(nil), labels...)

	// features: class centroid + noise
	feats := tensor.New(n, cfg.FeatureDim)
	centroids := tensor.New(cfg.NumClasses, cfg.FeatureDim)
	centroids.Randn(r, 1.0)
	for i := 0; i < n; i++ {
		c := centroids.Row(int(trueLabels[i]))
		row := feats.Row(i)
		for j := range row {
			row[j] = c[j] + float32(r.Norm()*float64(cfg.NoiseStd))
		}
	}
	if cfg.LabelNoise > 0 {
		for i := 0; i < n; i++ {
			if r.Float64() < cfg.LabelNoise {
				labels[i] = r.Int31n(int32(cfg.NumClasses))
			}
		}
	}

	// split over a fresh shuffle (default 50/25/25)
	trainFrac, valFrac := cfg.TrainFrac, cfg.ValFrac
	if trainFrac <= 0 {
		trainFrac = 0.5
	}
	if valFrac <= 0 {
		valFrac = 0.25
	}
	if trainFrac+valFrac >= 1 {
		return nil, fmt.Errorf("dataset: train+val fractions %v+%v leave no test split", trainFrac, valFrac)
	}
	split := r.Perm(n)
	nTrain := int(float64(n) * trainFrac)
	if nTrain < 1 {
		nTrain = 1
	}
	nVal := int(float64(n) * valFrac)
	if nVal < 1 {
		nVal = 1
	}
	d := &Dataset{
		Name:       cfg.Name,
		Graph:      g,
		Features:   feats,
		Labels:     labels,
		NumClasses: cfg.NumClasses,
		TrainIdx:   append([]int32(nil), split[:nTrain]...),
		ValIdx:     append([]int32(nil), split[nTrain:nTrain+nVal]...),
		TestIdx:    append([]int32(nil), split[nTrain+nVal:]...),
	}
	return d, nil
}

// alias is a Walker alias table for O(1) weighted sampling, optionally
// restricted to a subset of nodes.
type alias struct {
	nodes []int32 // nil means identity over [0, len(prob))
	prob  []float64
	alt   []int32
}

func newAlias(weights []float64, subset []int32) *alias {
	var idx []int32
	if subset != nil {
		idx = subset
	} else {
		idx = make([]int32, len(weights))
		for i := range idx {
			idx[i] = int32(i)
		}
	}
	n := len(idx)
	a := &alias{nodes: idx, prob: make([]float64, n), alt: make([]int32, n)}
	var total float64
	for _, v := range idx {
		total += weights[v]
	}
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, v := range idx {
		scaled[i] = weights[v] * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alt[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, rest := range [][]int32{small, large} {
		for _, i := range rest {
			a.prob[i] = 1
			a.alt[i] = i
		}
	}
	return a
}

func (a *alias) draw(r *rng.RNG) int32 {
	i := r.Intn(len(a.prob))
	if r.Float64() < a.prob[i] {
		return a.nodes[i]
	}
	return a.nodes[a.alt[i]]
}
