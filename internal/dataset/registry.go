package dataset

import (
	"fmt"
	"sort"
)

// registry maps dataset names to generator configurations. Node counts are
// scaled from Table 4 to laptop memory; feature widths, class counts, and
// relative densities match the real datasets.
//
//	real:   Cora 2.7k/10.6k   Pubmed 19.7k/44k   Reddit 233k/114.6M
//	        ogbn-arxiv 169k/2.3M   ogbn-products 2.45M/61.9M
//
// Split fractions mirror each real dataset's official splits, because the
// training split is the full batch Betty partitions: Planetoid's small
// labeled sets for Cora/Pubmed, ~66% for Reddit, ~54% for ogbn-arxiv, and
// ogbn-products' 8% train split (196,615 of 2.45M — the paper's Figure 4
// full batch).
var registry = map[string]GenConfig{
	"cora": {
		Name: "cora", Nodes: 2708, AvgDegree: 3.9, FeatureDim: 1433,
		NumClasses: 7, Homophily: 0.85, PowerLawExp: 2.8, Seed: 0xC07A,
		TrainFrac: 140.0 / 2708, ValFrac: 500.0 / 2708, Communities: 40, LabelNoise: 0.21,
	},
	"pubmed": {
		Name: "pubmed", Nodes: 19717, AvgDegree: 2.25, FeatureDim: 500,
		NumClasses: 3, Homophily: 0.8, PowerLawExp: 2.6, Seed: 0x9B3D,
		TrainFrac: 0.01, ValFrac: 0.025, Communities: 60, LabelNoise: 0.26,
	},
	// Reddit is the density outlier (avg degree ~492); scaled to 20k nodes
	// with avg degree 50 it remains the densest graph by an order of
	// magnitude.
	"reddit": {
		Name: "reddit", Nodes: 20000, AvgDegree: 50, FeatureDim: 602,
		NumClasses: 41, Homophily: 0.85, PowerLawExp: 2.1, Seed: 0x4EDD17,
		TrainFrac: 0.66, ValFrac: 0.1, Communities: 120, LabelNoise: 0.05,
	},
	"ogbn-arxiv": {
		Name: "ogbn-arxiv", Nodes: 40000, AvgDegree: 13.7, FeatureDim: 128,
		NumClasses: 40, Homophily: 0.85, PowerLawExp: 2.3, Seed: 0xA4817,
		TrainFrac: 0.54, ValFrac: 0.17, Communities: 160, LabelNoise: 0.29,
	},
	"ogbn-products": {
		Name: "ogbn-products", Nodes: 60000, AvgDegree: 25, FeatureDim: 100,
		NumClasses: 47, Homophily: 0.9, PowerLawExp: 2.2, Seed: 0x9406,
		TrainFrac: 0.08, ValFrac: 0.02, Communities: 300, LabelNoise: 0.24,
	},
}

// Names returns the registered dataset names in sorted order.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Config returns the generator configuration for a registered dataset.
func Config(name string) (GenConfig, error) {
	cfg, ok := registry[name]
	if !ok {
		return GenConfig{}, fmt.Errorf("dataset: unknown dataset %q (have %v)", name, Names())
	}
	return cfg, nil
}

// Load generates a registered dataset at full (scaled) size.
func Load(name string) (*Dataset, error) {
	cfg, err := Config(name)
	if err != nil {
		return nil, err
	}
	return Generate(cfg)
}

// LoadScaled generates a registered dataset shrunk by the given factor
// (0 < scale <= 1), keeping density and dimensions. Tests use small scales.
func LoadScaled(name string, scale float64) (*Dataset, error) {
	cfg, err := Config(name)
	if err != nil {
		return nil, err
	}
	if scale <= 0 || scale > 1 {
		return nil, fmt.Errorf("dataset: scale %v out of (0,1]", scale)
	}
	cfg.Nodes = int(float64(cfg.Nodes) * scale)
	if cfg.Nodes < cfg.NumClasses*4 {
		cfg.Nodes = cfg.NumClasses * 4
	}
	// keep the community granularity (nodes per community) constant
	if cfg.Communities > 0 {
		cfg.Communities = int(float64(cfg.Communities) * scale)
		if cfg.Communities < cfg.NumClasses {
			cfg.Communities = cfg.NumClasses
		}
	}
	return Generate(cfg)
}
