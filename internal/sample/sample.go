// Package sample implements fanout-bounded neighbor sampling, producing the
// hierarchical bipartite batch structure (a list of graph.Blocks) that GNN
// mini-batch training consumes — the role of DGL's
// MultiLayerNeighborSampler + to_block in the original Betty implementation.
package sample

import (
	"fmt"

	"betty/internal/graph"
	"betty/internal/obs"
	"betty/internal/rng"
)

// FullNeighbors as a fanout selects every in-neighbor (no sampling bound).
const FullNeighbors = -1

// Sampler draws fanout-bounded multi-layer neighborhoods. Fanouts are
// ordered input-layer first, matching the (10, 25, ...) tuples in the paper:
// Fanouts[len-1] bounds the neighbors of the seed (output) nodes, and
// Fanouts[0] bounds the outermost (input) layer.
//
// A Sampler holds no mutable state: every Sample call derives its random
// streams from (seed, seeds[0], layer), so results depend only on the
// call's arguments — never on how many Sample calls preceded it — and
// concurrent Sample calls are safe.
type Sampler struct {
	fanouts []int
	replace bool
	seed    uint64

	// Obs, when non-nil, receives one PhaseSample span per Sample call.
	// The sampler never reads a clock itself (this package is a kernel
	// package, so bettyvet's detrand forbids it); timing comes entirely
	// from the registry's injected Clock, keeping Sample's outputs a pure
	// function of (graph, seeds, config).
	Obs *obs.Registry
}

// New returns a sampler with the given input-first fanouts and RNG seed.
// A fanout of FullNeighbors (-1) disables the bound for that layer.
func New(fanouts []int, seed uint64) *Sampler {
	return &Sampler{fanouts: append([]int(nil), fanouts...), seed: seed}
}

// NewWithReplacement returns a sampler that samples neighbors with
// replacement, as DGL does when fanout exceeds available neighbors.
func NewWithReplacement(fanouts []int, seed uint64) *Sampler {
	s := New(fanouts, seed)
	s.replace = true
	return s
}

// NumLayers returns the number of block layers the sampler produces.
func (s *Sampler) NumLayers() int { return len(s.fanouts) }

// ConfigKey hashes the sampler's full configuration (fanouts, replacement
// mode, seed). Two samplers with equal keys draw identical neighborhoods
// for identical seed sets, which is what lets a persisted macrobatch
// (store.MacroCache) verify it was sampled under this configuration.
func (s *Sampler) ConfigKey() uint64 {
	h := mix64(s.seed ^ 0xa0761d6478bd642f)
	for _, f := range s.fanouts {
		h = mix64(h ^ uint64(uint32(int32(f))))
	}
	if s.replace {
		h = mix64(h ^ 0xe7037ed1a0b428db)
	}
	return h
}

// Fanouts returns a copy of the configured fanouts, input-first.
func (s *Sampler) Fanouts() []int { return append([]int(nil), s.fanouts...) }

// Sample draws the multi-level bipartite neighborhood of seeds in g.
// The returned blocks are ordered input-layer first; the last block's
// DstNID equals seeds.
func (s *Sampler) Sample(g *graph.Graph, seeds []int32) ([]*graph.Block, error) {
	if len(s.fanouts) == 0 {
		return nil, fmt.Errorf("sample: no fanouts configured")
	}
	for _, v := range seeds {
		if v < 0 || v >= g.NumNodes() {
			return nil, fmt.Errorf("sample: seed %d out of range", v)
		}
	}
	sp := s.Obs.StartSpan(obs.PhaseSample).
		SetInt("seeds", int64(len(seeds))).
		SetInt("layers", int64(len(s.fanouts)))
	defer sp.End()
	blocks := make([]*graph.Block, len(s.fanouts))
	frontier := append([]int32(nil), seeds...)
	for l := len(s.fanouts) - 1; l >= 0; l-- {
		b := s.sampleLayer(g, frontier, s.fanouts[l], s.layerRNG(seeds, l))
		blocks[l] = b
		frontier = b.SrcNID
	}
	sp.SetInt("input_nodes", int64(len(frontier)))
	return blocks, nil
}

// layerRNG derives the generator for one layer of one Sample call from the
// sampler seed, the call's first seed node, and the layer index. Two calls
// with the same seed set draw identical neighborhoods regardless of call
// order or interleaving, which is what makes chunk-parallel evaluation
// deterministic.
func (s *Sampler) layerRNG(seeds []int32, layer int) *rng.RNG {
	var s0 uint64
	if len(seeds) > 0 {
		s0 = uint64(uint32(seeds[0]))
	}
	h := mix64(s.seed ^ 0x9e3779b97f4a7c15)
	h = mix64(h ^ (s0 + 0xbf58476d1ce4e5b9))
	h = mix64(h ^ (uint64(layer)+1)*0x94d049bb133111eb)
	return rng.New(h)
}

// mix64 is the splitmix64 finalizer, used to hash the stream key.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// sampleLayer builds one bipartite block: for every destination in frontier
// it draws up to fanout in-neighbors from g using the layer's derived RNG.
func (s *Sampler) sampleLayer(g *graph.Graph, frontier []int32, fanout int, r *rng.RNG) *graph.Block {
	nDst := len(frontier)
	local := make(map[int32]int32, nDst*2)
	srcNID := make([]int32, nDst, nDst*2)
	copy(srcNID, frontier)
	for i, v := range frontier {
		local[v] = int32(i)
	}

	ptr := make([]int64, nDst+1)
	var srcLocal, eid []int32
	scratchSrc := make([]int32, 0, 64)
	scratchEID := make([]int32, 0, 64)

	for d := 0; d < nDst; d++ {
		neigh, eids := g.InNeighbors(frontier[d])
		chosenSrc, chosenEID := s.choose(r, neigh, eids, fanout, scratchSrc, scratchEID)
		for i, u := range chosenSrc {
			li, ok := local[u]
			if !ok {
				li = int32(len(srcNID))
				local[u] = li
				srcNID = append(srcNID, u)
			}
			srcLocal = append(srcLocal, li)
			eid = append(eid, chosenEID[i])
		}
		ptr[d+1] = int64(len(srcLocal))
	}

	b := &graph.Block{
		NumSrc:   len(srcNID),
		NumDst:   nDst,
		Ptr:      ptr,
		SrcLocal: srcLocal,
		EID:      eid,
		SrcNID:   srcNID,
		DstNID:   append([]int32(nil), frontier...),
	}
	if g.HasWeights() {
		b.EdgeWt = make([]float32, len(eid))
		for i, e := range eid {
			b.EdgeWt[i] = g.EdgeWeight(e)
		}
	}
	return b
}

// choose selects up to fanout entries of neigh/eids. With fanout disabled or
// enough capacity it returns the inputs unchanged; otherwise it reservoir-
// samples without replacement (or draws uniformly with replacement).
func (s *Sampler) choose(r *rng.RNG, neigh, eids []int32, fanout int, scratchSrc, scratchEID []int32) ([]int32, []int32) {
	return chooseNeighbors(r, neigh, eids, fanout, s.replace, scratchSrc, scratchEID)
}

// SampleFull draws the complete (unsampled) numLayers-hop neighborhood of
// seeds — the full-batch structure used as the partitioning input in Betty.
func SampleFull(g *graph.Graph, seeds []int32, numLayers int) ([]*graph.Block, error) {
	fanouts := make([]int, numLayers)
	for i := range fanouts {
		fanouts[i] = FullNeighbors
	}
	return New(fanouts, 0).Sample(g, seeds)
}
