package sample

import (
	"testing"

	"betty/internal/dataset"
	"betty/internal/graph"
	"betty/internal/obs"
)

// testGraph builds a small synthetic graph for sampler tests.
func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	ds, err := dataset.LoadScaled("cora", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	return ds.Graph
}

// blockEdges renders one destination's in-edge list (global source IDs in
// block order) for neighborhood comparisons.
func blockEdges(b *graph.Block, d int) []int32 {
	var out []int32
	for p := b.Ptr[d]; p < b.Ptr[d+1]; p++ {
		out = append(out, b.SrcNID[b.SrcLocal[p]])
	}
	return out
}

// dstEdgeMap maps every destination node ID of a block to its in-edge list.
func dstEdgeMap(b *graph.Block) map[int32][]int32 {
	m := make(map[int32][]int32, b.NumDst)
	for d := 0; d < b.NumDst; d++ {
		m[b.DstNID[d]] = blockEdges(b, d)
	}
	return m
}

// TestNodeWiseCompositionInvariance is the property the serving batcher is
// built on: a node's sampled neighborhood (set AND order) is identical
// whether the node is sampled alone or inside any batch.
func TestNodeWiseCompositionInvariance(t *testing.T) {
	g := testGraph(t)
	s := NewNodeWise([]int{3, 5}, 7)

	batch := []int32{0, 5, 9, 13, 21}
	full, err := s.Sample(g, batch)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range batch {
		solo, err := s.Sample(g, []int32{seed})
		if err != nil {
			t.Fatal(err)
		}
		// Output layer: the seed's own edges must agree.
		want := blockEdges(solo[len(solo)-1], 0)
		batchMap := dstEdgeMap(full[len(full)-1])
		got := batchMap[seed]
		if len(got) != len(want) {
			t.Fatalf("seed %d: %d edges in batch, %d alone", seed, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d edge %d: batch %d, alone %d", seed, i, got[i], want[i])
			}
		}
		// Inner layer: every frontier node shared between the solo and the
		// batched draw must have the same in-edge list.
		soloInner := dstEdgeMap(solo[0])
		batchInner := dstEdgeMap(full[0])
		for nid, want := range soloInner {
			got, ok := batchInner[nid]
			if !ok {
				t.Fatalf("seed %d: inner node %d missing from batch", seed, nid)
			}
			if len(got) != len(want) {
				t.Fatalf("inner node %d: %d edges in batch, %d alone", nid, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("inner node %d edge %d: batch %d, alone %d", nid, i, got[i], want[i])
				}
			}
		}
	}
}

// TestNodeWiseDeterministic pins that two identical calls yield identical
// blocks, and that batch order does not change any node's neighborhood.
func TestNodeWiseDeterministic(t *testing.T) {
	g := testGraph(t)
	s := NewNodeWise([]int{3, 5}, 11)
	a, err := s.Sample(g, []int32{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Sample(g, []int32{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	for l := range a {
		am, bm := dstEdgeMap(a[l]), dstEdgeMap(b[l])
		if len(am) != len(bm) {
			t.Fatalf("layer %d: %d vs %d destinations", l, len(am), len(bm))
		}
		for nid, ae := range am {
			be := bm[nid]
			if len(ae) != len(be) {
				t.Fatalf("layer %d node %d: %d vs %d edges", l, nid, len(ae), len(be))
			}
			for i := range ae {
				if ae[i] != be[i] {
					t.Fatalf("layer %d node %d edge %d differs", l, nid, i)
				}
			}
		}
	}
	// Reversed batch order: neighborhoods keyed per node must not move.
	c, err := s.Sample(g, []int32{4, 3, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	last := dstEdgeMap(c[len(c)-1])
	for nid, ae := range dstEdgeMap(a[len(a)-1]) {
		ce := last[nid]
		if len(ae) != len(ce) {
			t.Fatalf("node %d: %d vs %d edges under reversed order", nid, len(ae), len(ce))
		}
		for i := range ae {
			if ae[i] != ce[i] {
				t.Fatalf("node %d edge %d differs under reversed order", nid, i)
			}
		}
	}
}

// TestNodeWiseValidation covers the error paths and the chaining invariant.
func TestNodeWiseValidation(t *testing.T) {
	g := testGraph(t)
	if _, err := NewNodeWise(nil, 1).Sample(g, []int32{0}); err == nil {
		t.Fatal("expected error for empty fanouts")
	}
	if _, err := NewNodeWise([]int{3}, 1).Sample(g, []int32{-1}); err == nil {
		t.Fatal("expected error for negative seed")
	}
	if _, err := NewNodeWise([]int{3}, 1).Sample(g, []int32{g.NumNodes()}); err == nil {
		t.Fatal("expected error for out-of-range seed")
	}
	s := NewNodeWise([]int{3, 4}, 1)
	if s.NumLayers() != 2 {
		t.Fatalf("NumLayers = %d", s.NumLayers())
	}
	blocks, err := s.Sample(g, []int32{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 2 {
		t.Fatalf("got %d blocks", len(blocks))
	}
	last := blocks[len(blocks)-1]
	if last.DstNID[0] != 2 || last.DstNID[1] != 4 {
		t.Fatalf("last DstNID = %v", last.DstNID)
	}
	// Chaining invariant: inner dst frontier equals outer source frontier.
	if len(blocks[0].DstNID) != len(blocks[1].SrcNID) {
		t.Fatalf("frontier mismatch: %d vs %d", len(blocks[0].DstNID), len(blocks[1].SrcNID))
	}
	for i := range blocks[0].DstNID {
		if blocks[0].DstNID[i] != blocks[1].SrcNID[i] {
			t.Fatalf("frontier node %d: %d vs %d", i, blocks[0].DstNID[i], blocks[1].SrcNID[i])
		}
	}
}

// TestNodeWiseSampleSpan verifies the sampler reports PhaseSample spans
// through an attached registry.
func TestNodeWiseSampleSpan(t *testing.T) {
	g := testGraph(t)
	reg := obs.New(obs.NewFakeClock(0, 1000))
	reg.SetTracing(true)
	s := NewNodeWise([]int{3}, 1)
	s.Obs = reg
	if _, err := s.Sample(g, []int32{0, 1}); err != nil {
		t.Fatal(err)
	}
	spans := reg.Spans()
	if len(spans) != 1 || spans[0].Phase != obs.PhaseSample {
		t.Fatalf("spans = %+v", spans)
	}
}
