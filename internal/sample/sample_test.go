package sample

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"testing/quick"

	"betty/internal/graph"
	"betty/internal/rng"
)

// star builds a graph where node 0 has in-edges from nodes 1..n-1.
func star(t *testing.T, n int32) *graph.Graph {
	t.Helper()
	src := make([]int32, 0, n-1)
	dst := make([]int32, 0, n-1)
	for v := int32(1); v < n; v++ {
		src = append(src, v)
		dst = append(dst, 0)
	}
	g, err := graph.FromEdges(n, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// randomGraph builds a reproducible random directed graph.
func randomGraph(t *testing.T, seed uint64, n int32, m int) *graph.Graph {
	t.Helper()
	r := rng.New(seed)
	src := make([]int32, m)
	dst := make([]int32, m)
	for i := range src {
		src[i] = r.Int31n(n)
		dst[i] = r.Int31n(n)
	}
	g, err := graph.FromEdges(n, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSampleFanoutBound(t *testing.T) {
	g := star(t, 50)
	s := New([]int{10}, 1)
	blocks, err := s.Sample(g, []int32{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 1 {
		t.Fatalf("expected 1 block, got %d", len(blocks))
	}
	b := blocks[0]
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if b.InDegree(0) != 10 {
		t.Fatalf("fanout not respected: degree %d", b.InDegree(0))
	}
	// sampled without replacement: all sources distinct
	seen := map[int32]bool{}
	for _, s := range b.SrcLocal {
		if seen[s] {
			t.Fatal("duplicate neighbor without replacement")
		}
		seen[s] = true
	}
}

func TestSampleFullNeighbors(t *testing.T) {
	g := star(t, 20)
	blocks, err := SampleFull(g, []int32{0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if blocks[0].InDegree(0) != 19 {
		t.Fatalf("full sample got %d of 19 neighbors", blocks[0].InDegree(0))
	}
}

func TestSampleSmallDegreeTakesAll(t *testing.T) {
	g := star(t, 5)
	s := New([]int{100}, 1)
	blocks, err := s.Sample(g, []int32{0})
	if err != nil {
		t.Fatal(err)
	}
	if blocks[0].InDegree(0) != 4 {
		t.Fatalf("should take all 4 neighbors, got %d", blocks[0].InDegree(0))
	}
}

func TestSampleWithReplacement(t *testing.T) {
	g := star(t, 4) // only 3 neighbors
	s := NewWithReplacement([]int{10}, 2)
	blocks, err := s.Sample(g, []int32{0})
	if err != nil {
		t.Fatal(err)
	}
	// degree 3 <= fanout 10, so all neighbors taken without resampling
	if blocks[0].InDegree(0) != 3 {
		t.Fatalf("got degree %d", blocks[0].InDegree(0))
	}
	// now a star big enough to trigger replacement
	g2 := star(t, 100)
	blocks, err = s.Sample(g2, []int32{0})
	if err != nil {
		t.Fatal(err)
	}
	if blocks[0].InDegree(0) != 10 {
		t.Fatalf("replacement sample degree %d, want 10", blocks[0].InDegree(0))
	}
}

func TestMultiLayerStructure(t *testing.T) {
	g := randomGraph(t, 3, 200, 2000)
	s := New([]int{5, 3}, 7)
	seeds := []int32{0, 1, 2, 3, 4}
	blocks, err := s.Sample(g, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 2 {
		t.Fatalf("want 2 blocks, got %d", len(blocks))
	}
	inner, outer := blocks[0], blocks[1]
	if err := inner.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := outer.Validate(); err != nil {
		t.Fatal(err)
	}
	// output block's destinations are exactly the seeds
	for i, v := range seeds {
		if outer.DstNID[i] != v {
			t.Fatalf("seed %d lost", v)
		}
	}
	// chaining: inner's destinations are outer's sources
	if inner.NumDst != outer.NumSrc {
		t.Fatalf("layer chaining broken: %d vs %d", inner.NumDst, outer.NumSrc)
	}
	for i := range inner.DstNID {
		if inner.DstNID[i] != outer.SrcNID[i] {
			t.Fatal("frontier NIDs do not chain")
		}
	}
	// fanout bounds per layer
	for d := 0; d < outer.NumDst; d++ {
		if outer.InDegree(d) > 3 {
			t.Fatalf("outer fanout exceeded: %d", outer.InDegree(d))
		}
	}
	for d := 0; d < inner.NumDst; d++ {
		if inner.InDegree(d) > 5 {
			t.Fatalf("inner fanout exceeded: %d", inner.InDegree(d))
		}
	}
}

// Property: every sampled edge exists in the raw graph with matching
// endpoints and edge ID, for random graphs/seeds/fanouts.
func TestSampledEdgesAreReal(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := int32(10 + r.Intn(100))
		g := randomGraph(t, seed^1, n, 20*int(n))
		rawSrc, rawDst := g.Edges()
		seeds := []int32{r.Int31n(n), r.Int31n(n)}
		s := New([]int{1 + r.Intn(8), 1 + r.Intn(8)}, seed^2)
		blocks, err := s.Sample(g, seeds)
		if err != nil {
			return false
		}
		for _, b := range blocks {
			if b.Validate() != nil {
				return false
			}
			for d := 0; d < b.NumDst; d++ {
				for p := b.Ptr[d]; p < b.Ptr[d+1]; p++ {
					e := b.EID[p]
					if rawSrc[e] != b.SrcNID[b.SrcLocal[p]] || rawDst[e] != b.DstNID[d] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleDeterminism(t *testing.T) {
	g := randomGraph(t, 9, 300, 6000)
	seeds := []int32{1, 5, 9}
	a, err := New([]int{4, 4}, 42).Sample(g, seeds)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New([]int{4, 4}, 42).Sample(g, seeds)
	if err != nil {
		t.Fatal(err)
	}
	for l := range a {
		if a[l].NumSrc != b[l].NumSrc || a[l].NumEdges() != b[l].NumEdges() {
			t.Fatal("same seed produced different samples")
		}
		for i := range a[l].SrcNID {
			if a[l].SrcNID[i] != b[l].SrcNID[i] {
				t.Fatal("same seed produced different source order")
			}
		}
	}
}

func TestSampleErrors(t *testing.T) {
	g := star(t, 5)
	if _, err := New(nil, 0).Sample(g, []int32{0}); err == nil {
		t.Fatal("empty fanouts not rejected")
	}
	if _, err := New([]int{3}, 0).Sample(g, []int32{99}); err == nil {
		t.Fatal("out-of-range seed not rejected")
	}
}

// Reservoir sampling must be (approximately) uniform: over many draws of
// 2-of-20 neighbors, every neighbor should appear close to 1/10 of the time.
func TestSamplingUniformity(t *testing.T) {
	g := star(t, 21) // node 0 has neighbors 1..20
	counts := make(map[int32]int)
	const trials = 8000
	for i := 0; i < trials; i++ {
		s := New([]int{2}, uint64(i))
		blocks, err := s.Sample(g, []int32{0})
		if err != nil {
			t.Fatal(err)
		}
		b := blocks[0]
		for p := b.Ptr[0]; p < b.Ptr[1]; p++ {
			counts[b.SrcNID[b.SrcLocal[p]]]++
		}
	}
	want := float64(2*trials) / 20
	for v := int32(1); v <= 20; v++ {
		got := float64(counts[v])
		if got < 0.8*want || got > 1.2*want {
			t.Fatalf("neighbor %d drawn %v times, want about %v", v, got, want)
		}
	}
}

// Weighted graphs propagate their edge weights into the sampled blocks.
func TestSampleCarriesEdgeWeights(t *testing.T) {
	g, err := graph.FromEdgesWeighted(3,
		[]int32{1, 2}, []int32{0, 0}, []float32{2.5, 7.5})
	if err != nil {
		t.Fatal(err)
	}
	blocks, err := New([]int{10}, 1).Sample(g, []int32{0})
	if err != nil {
		t.Fatal(err)
	}
	b := blocks[0]
	if b.EdgeWt == nil {
		t.Fatal("weighted graph produced unweighted block")
	}
	for p := range b.EdgeWt {
		want := g.EdgeWeight(b.EID[p])
		if math.Float32bits(b.EdgeWt[p]) != math.Float32bits(want) {
			t.Fatalf("edge %d weight %v, want %v", p, b.EdgeWt[p], want)
		}
	}
	// unweighted graphs keep EdgeWt nil (the fast path)
	g2 := star(t, 4)
	blocks2, err := New([]int{10}, 1).Sample(g2, []int32{0})
	if err != nil {
		t.Fatal(err)
	}
	if blocks2[0].EdgeWt != nil {
		t.Fatal("unweighted graph produced weighted block")
	}
}

func TestZeroDegreeSeed(t *testing.T) {
	// node 1 in the star has no in-edges
	g := star(t, 5)
	blocks, err := New([]int{3}, 0).Sample(g, []int32{1})
	if err != nil {
		t.Fatal(err)
	}
	b := blocks[0]
	if b.NumEdges() != 0 || b.NumSrc != 1 || b.NumDst != 1 {
		t.Fatalf("zero-degree seed mishandled: %d edges %d src", b.NumEdges(), b.NumSrc)
	}
}

// blocksEqual compares two block lists structurally, field by field.
func blocksEqual(a, b []*graph.Block) bool {
	if len(a) != len(b) {
		return false
	}
	for l := range a {
		x, y := a[l], b[l]
		if x.NumSrc != y.NumSrc || x.NumDst != y.NumDst || x.NumEdges() != y.NumEdges() {
			return false
		}
		for i := range x.SrcNID {
			if x.SrcNID[i] != y.SrcNID[i] {
				return false
			}
		}
		for i := range x.SrcLocal {
			if x.SrcLocal[i] != y.SrcLocal[i] || x.EID[i] != y.EID[i] {
				return false
			}
		}
		for i := range x.Ptr {
			if x.Ptr[i] != y.Ptr[i] {
				return false
			}
		}
	}
	return true
}

// Regression: Sample must be order-independent. It used to advance a shared
// RNG across calls, so TestAccuracy/ValAccuracy results depended on how many
// Sample calls preceded them; now each call derives its streams from
// (seed, seeds[0], layer) alone.
func TestSampleOrderIndependent(t *testing.T) {
	g := randomGraph(t, 21, 400, 8000)
	seeds := []int32{7, 31, 99, 150}
	fresh, err := New([]int{4, 4}, 42).Sample(g, seeds)
	if err != nil {
		t.Fatal(err)
	}
	// Burn an arbitrary number of unrelated calls on the same sampler, then
	// sample the same seeds: the result must match a fresh sampler's.
	s := New([]int{4, 4}, 42)
	for i := 0; i < 5; i++ {
		if _, err := s.Sample(g, []int32{int32(10 + i), int32(200 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	after, err := s.Sample(g, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if !blocksEqual(fresh, after) {
		t.Fatal("Sample result depends on preceding calls")
	}
}

// Sample must be safe for concurrent callers (the chunk-parallel evaluator
// shares one sampler across goroutines); run with -race to verify. Every
// goroutine's result must equal the serial reference for its seeds.
func TestSampleConcurrentSafe(t *testing.T) {
	g := randomGraph(t, 22, 400, 8000)
	s := New([]int{5, 3}, 13)
	const callers = 8
	seedSets := make([][]int32, callers)
	refs := make([][]*graph.Block, callers)
	for i := range seedSets {
		seedSets[i] = []int32{int32(i * 37 % 400), int32((i*91 + 5) % 400), int32(i)}
		ref, err := New([]int{5, 3}, 13).Sample(g, seedSets[i])
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = ref
	}
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				got, err := s.Sample(g, seedSets[i])
				if err != nil {
					errs[i] = err
					return
				}
				if !blocksEqual(got, refs[i]) {
					errs[i] = fmt.Errorf("caller %d: concurrent sample differs from serial reference", i)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
