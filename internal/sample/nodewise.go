package sample

import (
	"fmt"

	"betty/internal/graph"
	"betty/internal/obs"
	"betty/internal/rng"
)

// NodeWise draws fanout-bounded neighborhoods whose randomness is keyed
// per node rather than per call: the sampled in-neighbors of node v at
// layer l are a pure function of (sampler seed, v, l) — never of which
// other nodes share the batch. Two overlapping seed sets therefore sample
// identical neighborhoods for every shared node, which is what lets the
// online serving batcher coalesce concurrent requests into one batch and
// still return, for each request, bitwise the result it would have gotten
// alone: shared frontier nodes deduplicate instead of diverging.
//
// This is the serving-side counterpart of Sampler, whose per-call streams
// (keyed by seeds[0]) make whole-batch training draws order-independent
// but make a node's neighborhood depend on its batch. Training keeps
// Sampler; the request path uses NodeWise.
type NodeWise struct {
	fanouts []int
	replace bool
	seed    uint64

	// Obs, when non-nil, receives one PhaseSample span per Sample call.
	// As with Sampler, time enters only through the registry's injected
	// Clock (this is a kernel package; detrand forbids a clock here).
	Obs *obs.Registry
}

// NewNodeWise returns a node-wise sampler with the given input-first
// fanouts and RNG seed. A fanout of FullNeighbors (-1) disables the bound
// for that layer.
func NewNodeWise(fanouts []int, seed uint64) *NodeWise {
	return &NodeWise{fanouts: append([]int(nil), fanouts...), seed: seed}
}

// NumLayers returns the number of block layers the sampler produces.
func (s *NodeWise) NumLayers() int { return len(s.fanouts) }

// Fanouts returns a copy of the configured fanouts, input-first.
func (s *NodeWise) Fanouts() []int { return append([]int(nil), s.fanouts...) }

// Sample draws the multi-level bipartite neighborhood of seeds in g. The
// returned blocks are ordered input-layer first; the last block's DstNID
// equals seeds. Unlike Sampler.Sample, the draw for each frontier node is
// independent of every other node in the call, so for any two seed sets
// the blocks agree on every shared node's in-edges (set and order).
func (s *NodeWise) Sample(g *graph.Graph, seeds []int32) ([]*graph.Block, error) {
	if len(s.fanouts) == 0 {
		return nil, fmt.Errorf("sample: no fanouts configured")
	}
	for _, v := range seeds {
		if v < 0 || v >= g.NumNodes() {
			return nil, fmt.Errorf("sample: seed %d out of range", v)
		}
	}
	sp := s.Obs.StartSpan(obs.PhaseSample).
		SetInt("seeds", int64(len(seeds))).
		SetInt("layers", int64(len(s.fanouts)))
	defer sp.End()
	blocks := make([]*graph.Block, len(s.fanouts))
	frontier := append([]int32(nil), seeds...)
	for l := len(s.fanouts) - 1; l >= 0; l-- {
		b := s.sampleLayer(g, frontier, s.fanouts[l], l)
		blocks[l] = b
		frontier = b.SrcNID
	}
	sp.SetInt("input_nodes", int64(len(frontier)))
	return blocks, nil
}

// nodeRNG derives the generator for one (node, layer) pair. The stream
// depends only on the sampler seed, the node's global ID, and the layer —
// the per-node analogue of Sampler.layerRNG.
func (s *NodeWise) nodeRNG(nid int32, layer int) *rng.RNG {
	h := mix64(s.seed ^ 0x9e3779b97f4a7c15)
	h = mix64(h ^ (uint64(uint32(nid)) + 0xbf58476d1ce4e5b9))
	h = mix64(h ^ (uint64(layer)+1)*0x94d049bb133111eb)
	return rng.New(h)
}

// sampleLayer builds one bipartite block, drawing each destination's
// neighbors from that destination's own derived stream.
func (s *NodeWise) sampleLayer(g *graph.Graph, frontier []int32, fanout, layer int) *graph.Block {
	nDst := len(frontier)
	local := make(map[int32]int32, nDst*2)
	srcNID := make([]int32, nDst, nDst*2)
	copy(srcNID, frontier)
	for i, v := range frontier {
		local[v] = int32(i)
	}

	ptr := make([]int64, nDst+1)
	var srcLocal, eid []int32
	scratchSrc := make([]int32, 0, 64)
	scratchEID := make([]int32, 0, 64)

	for d := 0; d < nDst; d++ {
		neigh, eids := g.InNeighbors(frontier[d])
		chosenSrc, chosenEID := chooseNeighbors(s.nodeRNG(frontier[d], layer),
			neigh, eids, fanout, s.replace, scratchSrc, scratchEID)
		for i, u := range chosenSrc {
			li, ok := local[u]
			if !ok {
				li = int32(len(srcNID))
				local[u] = li
				srcNID = append(srcNID, u)
			}
			srcLocal = append(srcLocal, li)
			eid = append(eid, chosenEID[i])
		}
		ptr[d+1] = int64(len(srcLocal))
	}

	b := &graph.Block{
		NumSrc:   len(srcNID),
		NumDst:   nDst,
		Ptr:      ptr,
		SrcLocal: srcLocal,
		EID:      eid,
		SrcNID:   srcNID,
		DstNID:   append([]int32(nil), frontier...),
	}
	if g.HasWeights() {
		b.EdgeWt = make([]float32, len(eid))
		for i, e := range eid {
			b.EdgeWt[i] = g.EdgeWeight(e)
		}
	}
	return b
}

// chooseNeighbors selects up to fanout entries of neigh/eids using r. With
// fanout disabled or enough capacity it returns the inputs unchanged;
// otherwise it reservoir-samples without replacement (or draws uniformly
// with replacement). Shared by Sampler and NodeWise — the samplers differ
// only in how r is derived.
func chooseNeighbors(r *rng.RNG, neigh, eids []int32, fanout int, replace bool, scratchSrc, scratchEID []int32) ([]int32, []int32) {
	if fanout == FullNeighbors || len(neigh) <= fanout {
		return neigh, eids
	}
	scratchSrc = scratchSrc[:0]
	scratchEID = scratchEID[:0]
	if replace {
		for i := 0; i < fanout; i++ {
			j := r.Intn(len(neigh))
			scratchSrc = append(scratchSrc, neigh[j])
			scratchEID = append(scratchEID, eids[j])
		}
		return scratchSrc, scratchEID
	}
	// Reservoir sampling (Algorithm R): uniform without replacement.
	scratchSrc = append(scratchSrc, neigh[:fanout]...)
	scratchEID = append(scratchEID, eids[:fanout]...)
	for i := fanout; i < len(neigh); i++ {
		j := r.Intn(i + 1)
		if j < fanout {
			scratchSrc[j] = neigh[i]
			scratchEID[j] = eids[i]
		}
	}
	return scratchSrc, scratchEID
}
