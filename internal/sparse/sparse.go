// Package sparse implements compressed sparse row (CSR) matrices and the
// sparse products needed by Betty's redundancy-embedded-graph construction
// (Algorithm 1): the Gram product AᵀA whose entry (i, j) counts the
// neighbors shared by destination nodes i and j.
package sparse

import "fmt"

// CSR is a sparse matrix in compressed-sparse-row form. Val may be nil,
// in which case every stored entry has implicit value 1 (a binary matrix,
// e.g. an adjacency matrix).
type CSR struct {
	NumRows, NumCols int
	RowPtr           []int64
	ColIdx           []int32
	Val              []float32
}

// NewCOO builds a CSR matrix from coordinate-format triplets. Duplicate
// coordinates are summed. vals may be nil for a binary matrix (duplicates
// then still sum, yielding counts).
func NewCOO(rows, cols int, ri, ci []int32, vals []float32) (*CSR, error) {
	if len(ri) != len(ci) {
		return nil, fmt.Errorf("sparse: row/col index length mismatch")
	}
	if vals != nil && len(vals) != len(ri) {
		return nil, fmt.Errorf("sparse: value length mismatch")
	}
	for k := range ri {
		if ri[k] < 0 || int(ri[k]) >= rows || ci[k] < 0 || int(ci[k]) >= cols {
			return nil, fmt.Errorf("sparse: entry %d (%d,%d) out of %dx%d", k, ri[k], ci[k], rows, cols)
		}
	}
	// counting sort by row
	ptr := make([]int64, rows+1)
	for _, r := range ri {
		ptr[r+1]++
	}
	for i := 0; i < rows; i++ {
		ptr[i+1] += ptr[i]
	}
	col := make([]int32, len(ri))
	val := make([]float32, len(ri))
	cursor := make([]int64, rows)
	copy(cursor, ptr[:rows])
	for k := range ri {
		p := cursor[ri[k]]
		col[p] = ci[k]
		if vals != nil {
			val[p] = vals[k]
		} else {
			val[p] = 1
		}
		cursor[ri[k]] = p + 1
	}
	m := &CSR{NumRows: rows, NumCols: cols, RowPtr: ptr, ColIdx: col, Val: val}
	return m.dedup(), nil
}

// dedup merges duplicate column entries within each row (summing values).
func (m *CSR) dedup() *CSR {
	outPtr := make([]int64, m.NumRows+1)
	outCol := make([]int32, 0, len(m.ColIdx))
	outVal := make([]float32, 0, len(m.Val))
	acc := make([]float32, m.NumCols)
	// First-touch detection uses an explicit mark, not acc[c] == 0: partial
	// sums that cancel to exact zero mid-row must not re-enter touched, or
	// the output row would carry duplicate columns.
	mark := make([]bool, m.NumCols)
	touched := make([]int32, 0, 64)
	for i := 0; i < m.NumRows; i++ {
		touched = touched[:0]
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			c := m.ColIdx[p]
			if !mark[c] {
				mark[c] = true
				touched = append(touched, c)
			}
			acc[c] += m.Val[p]
		}
		for _, c := range touched {
			//bettyvet:ok floateq sparse formats drop entries that sum to exactly zero by definition
			if acc[c] != 0 {
				outCol = append(outCol, c)
				outVal = append(outVal, acc[c])
			}
			acc[c] = 0
			mark[c] = false
		}
		outPtr[i+1] = int64(len(outCol))
	}
	return &CSR{NumRows: m.NumRows, NumCols: m.NumCols, RowPtr: outPtr, ColIdx: outCol, Val: outVal}
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.ColIdx) }

// At returns the value at (i, j) with a linear scan of row i; intended for
// tests and small matrices.
func (m *CSR) At(i, j int32) float32 {
	for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
		if m.ColIdx[p] == j {
			return m.Val[p]
		}
	}
	return 0
}

// Transpose returns mᵀ.
func (m *CSR) Transpose() *CSR {
	ptr := make([]int64, m.NumCols+1)
	for _, c := range m.ColIdx {
		ptr[c+1]++
	}
	for i := 0; i < m.NumCols; i++ {
		ptr[i+1] += ptr[i]
	}
	col := make([]int32, m.NNZ())
	val := make([]float32, m.NNZ())
	cursor := make([]int64, m.NumCols)
	copy(cursor, ptr[:m.NumCols])
	for i := 0; i < m.NumRows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			c := m.ColIdx[p]
			q := cursor[c]
			col[q] = int32(i)
			val[q] = m.Val[p]
			cursor[c] = q + 1
		}
	}
	return &CSR{NumRows: m.NumCols, NumCols: m.NumRows, RowPtr: ptr, ColIdx: col, Val: val}
}

// MatMul computes m @ b with Gustavson's row-wise SpGEMM algorithm.
func (m *CSR) MatMul(b *CSR) (*CSR, error) {
	if m.NumCols != b.NumRows {
		return nil, fmt.Errorf("sparse: MatMul shape mismatch %dx%d @ %dx%d", m.NumRows, m.NumCols, b.NumRows, b.NumCols)
	}
	outPtr := make([]int64, m.NumRows+1)
	outCol := make([]int32, 0, m.NNZ())
	outVal := make([]float32, 0, m.NNZ())
	acc := make([]float32, b.NumCols)
	// Explicit first-touch mark: acc[c] == 0 would re-append a column whose
	// partial products cancelled to exact zero, duplicating CSR entries.
	mark := make([]bool, b.NumCols)
	touched := make([]int32, 0, 256)
	for i := 0; i < m.NumRows; i++ {
		touched = touched[:0]
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			k := m.ColIdx[p]
			av := m.Val[p]
			for q := b.RowPtr[k]; q < b.RowPtr[k+1]; q++ {
				c := b.ColIdx[q]
				if !mark[c] {
					mark[c] = true
					touched = append(touched, c)
				}
				acc[c] += av * b.Val[q]
			}
		}
		for _, c := range touched {
			//bettyvet:ok floateq sparse formats drop entries that sum to exactly zero by definition
			if acc[c] != 0 {
				outCol = append(outCol, c)
				outVal = append(outVal, acc[c])
			}
			acc[c] = 0
			mark[c] = false
		}
		outPtr[i+1] = int64(len(outCol))
	}
	return &CSR{NumRows: m.NumRows, NumCols: b.NumCols, RowPtr: outPtr, ColIdx: outCol, Val: outVal}, nil
}

// Gram computes AᵀA for a binary-or-weighted matrix A: the REG matrix C of
// Equation 3 in the paper, where C[i][j] counts the shared in-neighbors of
// columns i and j. It is equivalent to A.Transpose().MatMul(A) but avoids
// materializing the transpose twice.
func (m *CSR) Gram() *CSR {
	at := m.Transpose()
	out, err := at.MatMul(m)
	if err != nil {
		// shapes always agree for AᵀA; this is unreachable
		panic(err)
	}
	return out
}

// DropSelfLoops returns a copy of m without diagonal entries
// (Algorithm 1 line 7).
func (m *CSR) DropSelfLoops() *CSR {
	outPtr := make([]int64, m.NumRows+1)
	outCol := make([]int32, 0, m.NNZ())
	outVal := make([]float32, 0, m.NNZ())
	for i := 0; i < m.NumRows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			if int(m.ColIdx[p]) == i {
				continue
			}
			outCol = append(outCol, m.ColIdx[p])
			outVal = append(outVal, m.Val[p])
		}
		outPtr[i+1] = int64(len(outCol))
	}
	return &CSR{NumRows: m.NumRows, NumCols: m.NumCols, RowPtr: outPtr, ColIdx: outCol, Val: outVal}
}

// SelectSquare returns the square submatrix of m induced by keep — the rows
// and columns whose (equal) index appears in keep, renumbered to 0..len-1 in
// keep order. Used by Algorithm 1 line 5-6 to remove non-output nodes from
// the REG. m must be square.
func (m *CSR) SelectSquare(keep []int32) (*CSR, error) {
	if m.NumRows != m.NumCols {
		return nil, fmt.Errorf("sparse: SelectSquare requires a square matrix")
	}
	remap := make([]int32, m.NumRows)
	for i := range remap {
		remap[i] = -1
	}
	for newID, old := range keep {
		if old < 0 || int(old) >= m.NumRows {
			return nil, fmt.Errorf("sparse: keep index %d out of range", old)
		}
		if remap[old] != -1 {
			return nil, fmt.Errorf("sparse: duplicate keep index %d", old)
		}
		remap[old] = int32(newID)
	}
	n := len(keep)
	outPtr := make([]int64, n+1)
	outCol := make([]int32, 0)
	outVal := make([]float32, 0)
	for newID, old := range keep {
		for p := m.RowPtr[old]; p < m.RowPtr[old+1]; p++ {
			nc := remap[m.ColIdx[p]]
			if nc < 0 {
				continue
			}
			outCol = append(outCol, nc)
			outVal = append(outVal, m.Val[p])
		}
		outPtr[newID+1] = int64(len(outCol))
	}
	return &CSR{NumRows: n, NumCols: n, RowPtr: outPtr, ColIdx: outCol, Val: outVal}, nil
}
