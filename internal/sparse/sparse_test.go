package sparse

import (
	"math"
	"testing"
	"testing/quick"

	"betty/internal/rng"
)

// dense converts a CSR to a dense 2D slice for comparison in tests.
func dense(m *CSR) [][]float32 {
	out := make([][]float32, m.NumRows)
	for i := range out {
		out[i] = make([]float32, m.NumCols)
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			out[i][m.ColIdx[p]] += m.Val[p]
		}
	}
	return out
}

func denseMul(a, b [][]float32) [][]float32 {
	rows, inner, cols := len(a), len(b), len(b[0])
	out := make([][]float32, rows)
	for i := range out {
		out[i] = make([]float32, cols)
		for k := 0; k < inner; k++ {
			for j := 0; j < cols; j++ {
				out[i][j] += a[i][k] * b[k][j]
			}
		}
	}
	return out
}

func randomCSR(r *rng.RNG, rows, cols, nnz int) *CSR {
	ri := make([]int32, nnz)
	ci := make([]int32, nnz)
	vals := make([]float32, nnz)
	for k := 0; k < nnz; k++ {
		ri[k] = r.Int31n(int32(rows))
		ci[k] = r.Int31n(int32(cols))
		vals[k] = float32(1 + r.Intn(3))
	}
	m, err := NewCOO(rows, cols, ri, ci, vals)
	if err != nil {
		panic(err)
	}
	return m
}

func TestNewCOOBinaryAndAt(t *testing.T) {
	m, err := NewCOO(3, 3, []int32{0, 1, 2, 0}, []int32{1, 2, 0, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 2 { // duplicate (0,1) summed
		t.Fatalf("At(0,1) = %v, want 2", m.At(0, 1))
	}
	if m.At(1, 2) != 1 || m.At(2, 0) != 1 || m.At(0, 0) != 0 {
		t.Fatal("wrong entries")
	}
	if m.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3 after dedup", m.NNZ())
	}
}

func TestNewCOOValidation(t *testing.T) {
	if _, err := NewCOO(2, 2, []int32{0}, []int32{0, 1}, nil); err == nil {
		t.Fatal("length mismatch not rejected")
	}
	if _, err := NewCOO(2, 2, []int32{5}, []int32{0}, nil); err == nil {
		t.Fatal("out-of-range row not rejected")
	}
	if _, err := NewCOO(2, 2, []int32{0}, []int32{0}, []float32{1, 2}); err == nil {
		t.Fatal("value length mismatch not rejected")
	}
}

func TestTransposeAgainstDense(t *testing.T) {
	r := rng.New(5)
	m := randomCSR(r, 7, 4, 15)
	mt := m.Transpose()
	d, dt := dense(m), dense(mt)
	for i := 0; i < 7; i++ {
		for j := 0; j < 4; j++ {
			if math.Float32bits(d[i][j]) != math.Float32bits(dt[j][i]) {
				t.Fatalf("transpose mismatch at %d,%d", i, j)
			}
		}
	}
}

// Property: SpGEMM equals dense matmul for random sparse matrices.
func TestMatMulAgainstDense(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		m, k, n := 1+r.Intn(8), 1+r.Intn(8), 1+r.Intn(8)
		a := randomCSR(r, m, k, r.Intn(20))
		b := randomCSR(r, k, n, r.Intn(20))
		c, err := a.MatMul(b)
		if err != nil {
			return false
		}
		want := denseMul(dense(a), dense(b))
		got := dense(c)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				if math.Float32bits(got[i][j]) != math.Float32bits(want[i][j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulShapeError(t *testing.T) {
	a := randomCSR(rng.New(1), 2, 3, 4)
	b := randomCSR(rng.New(2), 2, 3, 4)
	if _, err := a.MatMul(b); err == nil {
		t.Fatal("shape mismatch not rejected")
	}
}

// Gram on the paper's Figure 8 example: an adjacency matrix where the
// product counts shared neighbors. Nodes 0 and 1 share two in-neighbors.
func TestGramCountsSharedNeighbors(t *testing.T) {
	// A: 4 nodes; node 2 -> {0, 1}, node 3 -> {0, 1}. a_ki = edge k->i.
	a, err := NewCOO(4, 4,
		[]int32{2, 2, 3, 3},
		[]int32{0, 1, 0, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := a.Gram()
	if c.At(0, 1) != 2 || c.At(1, 0) != 2 {
		t.Fatalf("shared neighbor count = %v, want 2", c.At(0, 1))
	}
	if c.At(0, 0) != 2 { // diagonal counts own in-degree
		t.Fatalf("diagonal = %v, want 2", c.At(0, 0))
	}
}

// Property: Gram is symmetric with non-negative entries.
func TestGramSymmetry(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(10)
		a := randomCSR(r, n, n, r.Intn(30))
		c := a.Gram()
		d := dense(c)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if math.Float32bits(d[i][j]) != math.Float32bits(d[j][i]) || d[i][j] < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDropSelfLoops(t *testing.T) {
	m, err := NewCOO(3, 3, []int32{0, 1, 1, 2}, []int32{0, 1, 2, 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	d := m.DropSelfLoops()
	if d.At(0, 0) != 0 || d.At(1, 1) != 0 {
		t.Fatal("self loops survive")
	}
	if d.At(1, 2) != 1 || d.At(2, 0) != 1 {
		t.Fatal("off-diagonal entries lost")
	}
	if d.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2", d.NNZ())
	}
}

func TestSelectSquare(t *testing.T) {
	// 4x4 with a known pattern
	m, err := NewCOO(4, 4,
		[]int32{0, 0, 1, 2, 3},
		[]int32{1, 3, 2, 3, 0},
		[]float32{5, 6, 7, 8, 9})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := m.SelectSquare([]int32{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumRows != 2 || sub.NumCols != 2 {
		t.Fatalf("shape %dx%d", sub.NumRows, sub.NumCols)
	}
	// old (0,3)=6 -> new (0,1); old (3,0)=9 -> new (1,0); (0,1) and (2,3) dropped
	if sub.At(0, 1) != 6 || sub.At(1, 0) != 9 || sub.NNZ() != 2 {
		t.Fatalf("wrong submatrix: nnz=%d", sub.NNZ())
	}
}

func TestSelectSquareErrors(t *testing.T) {
	m, _ := NewCOO(3, 3, nil, nil, nil)
	if _, err := m.SelectSquare([]int32{0, 0}); err == nil {
		t.Fatal("duplicate keep not rejected")
	}
	if _, err := m.SelectSquare([]int32{7}); err == nil {
		t.Fatal("out-of-range keep not rejected")
	}
	rect := &CSR{NumRows: 2, NumCols: 3, RowPtr: make([]int64, 3)}
	if _, err := rect.SelectSquare([]int32{0}); err == nil {
		t.Fatal("non-square matrix not rejected")
	}
}

// Gram equals Transpose().MatMul() by definition.
func TestGramMatchesExplicitProduct(t *testing.T) {
	r := rng.New(17)
	a := randomCSR(r, 9, 6, 25)
	want, err := a.Transpose().MatMul(a)
	if err != nil {
		t.Fatal(err)
	}
	got := a.Gram()
	dw, dg := dense(want), dense(got)
	for i := range dw {
		for j := range dw[i] {
			if math.Float32bits(dw[i][j]) != math.Float32bits(dg[i][j]) {
				t.Fatalf("Gram mismatch at %d,%d", i, j)
			}
		}
	}
}

// TestDedupCancellationNoDuplicateColumns pins the accumulator's
// first-touch marking: contributions that cancel to exactly zero mid-row
// must neither re-register the column (duplicating CSR entries) nor leave
// a stored zero behind.
func TestDedupCancellationNoDuplicateColumns(t *testing.T) {
	// Column 1 receives 2, -2 (cancel), then 5; column 2 receives 3, -3
	// (cancels away entirely).
	m, err := NewCOO(1, 4,
		[]int32{0, 0, 0, 0, 0},
		[]int32{1, 1, 1, 2, 2},
		[]float32{2, -2, 5, 3, -3})
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 1 {
		t.Fatalf("NNZ = %d, want 1 (col 1 once, cancelled col 2 dropped): cols %v vals %v",
			m.NNZ(), m.ColIdx, m.Val)
	}
	seen := make(map[int32]bool)
	for _, c := range m.ColIdx {
		if seen[c] {
			t.Fatalf("duplicate column %d in row 0: %v", c, m.ColIdx)
		}
		seen[c] = true
	}
	if m.At(0, 1) != 5 {
		t.Fatalf("At(0,1) = %v, want 5", m.At(0, 1))
	}
}

// TestMatMulCancellationNoDuplicateColumns is the SpGEMM twin: partial
// products that cancel mid-accumulation must not duplicate output columns.
func TestMatMulCancellationNoDuplicateColumns(t *testing.T) {
	// a = [1 -1 1]; every b row is [1], so (0,0) accumulates 1, -1
	// (cancelling to zero mid-row), then 1.
	a, err := NewCOO(1, 3, []int32{0, 0, 0}, []int32{0, 1, 2}, []float32{1, -1, 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewCOO(3, 1, []int32{0, 1, 2}, []int32{0, 0, 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	c, err := a.MatMul(b)
	if err != nil {
		t.Fatal(err)
	}
	if c.NNZ() != 1 || c.ColIdx[0] != 0 {
		t.Fatalf("product NNZ = %d cols %v, want one entry at col 0", c.NNZ(), c.ColIdx)
	}
	if c.At(0, 0) != 1 {
		t.Fatalf("At(0,0) = %v, want 1", c.At(0, 0))
	}
}
