package core

import "betty/internal/rng"

// rngFor returns the RNG stream used for weight initialization under the
// given setup seed, kept separate from the sampling and partitioning
// streams so the three never alias.
func rngFor(seed uint64) *rng.RNG {
	return rng.New(seed ^ 0x77e1)
}
