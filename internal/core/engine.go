// Package core is Betty's public engine: it ties together neighbor
// sampling, REG-based batch partitioning, memory-aware planning, and
// gradient-accumulating micro-batch training (Figure 5's workflow).
//
// One training epoch proceeds as the paper describes:
//
//  1. sample the full batch (every training node) into a hierarchical
//     bipartite block list;
//  2. choose the partition count K — either fixed, or by the memory-aware
//     planner that estimates each candidate micro-batch without running it;
//  3. slice the full batch into K micro-batch block lists (the
//     block-dataloader step, preserving raw-graph index mappings);
//  4. run forward/backward per micro-batch with the loss scaled by its
//     share of outputs, accumulating gradients;
//  5. apply one optimizer step for the whole batch — mathematically
//     equivalent to full-batch training.
package core

import (
	"fmt"
	"math"

	"betty/internal/dataset"
	"betty/internal/device"
	"betty/internal/embcache"
	"betty/internal/graph"
	"betty/internal/memory"
	"betty/internal/nn"
	"betty/internal/obs"
	"betty/internal/reg"
	"betty/internal/sample"
	"betty/internal/train"
)

// Engine runs Betty training for one model/dataset pair.
type Engine struct {
	Runner      *train.Runner
	Sampler     *sample.Sampler
	Partitioner reg.BatchPartitioner
	Spec        memory.Spec

	// FixedK forces a partition count; 0 selects the memory-aware planner.
	FixedK int
	// SafetyMargin is forwarded to the planner (see memory.Planner).
	SafetyMargin float64
	// MaxK caps the planner's search.
	MaxK int
	// Tracker, when set, feeds each micro-batch's estimated-vs-measured
	// peak back into the planner's safety margin (the §6.7 feedback loop).
	// Requires a device to measure against.
	Tracker *memory.ErrorTracker
	// Obs, when non-nil, receives spans and metrics from the engine, the
	// planner it builds, and — when installed with SetObs — the runner,
	// sampler, and REG partitioner too.
	Obs *obs.Registry
	// PlanCapacity, when positive, overrides the planning budget (by
	// default the attached device's capacity). Multi-device training plans
	// against the smallest per-device capacity.
	PlanCapacity int64
	// PlanPeak, when non-nil, overrides which component sum of the memory
	// breakdown the planner compares against the budget (see
	// memory.Planner.Peak). Multi-device training installs the split-aware
	// peak so each micro-batch is budgeted at its per-device share.
	PlanPeak func(memory.Breakdown) int64
	// Frontiers, when non-nil, persists sampled macrobatches and reuses
	// them across epochs (BatchGNN-style): PlanEpoch loads the frontier
	// for its seed set instead of resampling when one is available. The
	// sampler's streams depend only on (seed, seeds, layer), so reuse is
	// bitwise identical to resampling — the macro.reuse / macro.resample
	// counters record which path each epoch took.
	Frontiers FrontierCache

	// frontierMeter measures cross-micro-batch frontier overlap
	// (sample.frontier.* metrics) — the temporal-locality signal the
	// historical-embedding cache exploits. Built lazily once a registry
	// is installed.
	frontierMeter *embcache.Meter
}

// FrontierCache persists sampled full-batch frontiers across epochs (and
// runs). store.MacroCache is the on-disk implementation.
type FrontierCache interface {
	// Load returns the persisted frontier for seeds; ok=false means none
	// has been saved yet. A frontier persisted under a different sampler
	// configuration or seed set must be an error, never a silent miss.
	Load(seeds []int32) (blocks []*graph.Block, ok bool, err error)
	// Save persists the frontier sampled for seeds.
	Save(seeds []int32, blocks []*graph.Block) error
}

// SetObs installs one registry on the engine and every collaborator it
// owns: the runner (h2d/forward/backward/step/eval spans), the sampler
// (sample spans), the planner built per epoch (partition/estimate spans),
// and — when the partitioner is the REG one — its reg_build span.
func (e *Engine) SetObs(r *obs.Registry) {
	e.Obs = r
	if e.Runner != nil {
		e.Runner.Obs = r
	}
	if e.Sampler != nil {
		e.Sampler.Obs = r
	}
	if bb, ok := e.Partitioner.(reg.BettyBatch); ok {
		bb.Obs = r
		e.Partitioner = bb
	}
}

// New assembles an engine with Betty's defaults (REG partitioning,
// memory-aware K selection).
func New(r *train.Runner, s *sample.Sampler, spec memory.Spec, seed uint64) *Engine {
	return &Engine{
		Runner:      r,
		Sampler:     s,
		Partitioner: reg.BettyBatch{Seed: seed},
		Spec:        spec,
	}
}

// EpochStats summarizes one training epoch.
type EpochStats struct {
	// K is the number of micro- (or mini-) batches executed.
	K int
	// Loss is the batch-weighted mean training loss.
	Loss float64
	// TrainAcc is the training accuracy over the epoch's *labeled* outputs;
	// masked seeds (label < 0) are excluded from both numerator and
	// denominator. It is 0 when no labeled output was seen.
	TrainAcc float64
	// PeakBytes is the device peak across the epoch (0 without a device).
	PeakBytes int64
	// TransferSeconds and ComputeSeconds are accumulated simulated times.
	TransferSeconds, ComputeSeconds float64
	// InputNodes is the total number of first-layer input nodes loaded.
	InputNodes int
	// Redundancy is the duplicated input nodes versus the full batch
	// (zero for full-batch and mini-batch epochs, where it is undefined).
	Redundancy int
	// PlanAttempts counts partition counts evaluated by the planner.
	PlanAttempts int
	// MaxEstimate is the planner's largest estimated micro-batch peak.
	MaxEstimate int64
	// HostBytes is the host-memory footprint (features, labels, graph)
	// that the heterogeneous layout keeps off the device.
	HostBytes int64
}

// capacity returns the planning budget: the device capacity, or unbounded
// when training without a device.
func (e *Engine) capacity() int64 {
	if e.Runner.Dev != nil {
		return e.Runner.Dev.Capacity()
	}
	return math.MaxInt64 / 2
}

// PlanEpoch samples the full batch for the given seeds and chooses the
// micro-batch partition (steps 1-3 of the workflow).
func (e *Engine) PlanEpoch(seeds []int32) ([]*graph.Block, *memory.Plan, error) {
	full, err := e.sampleOrReuse(seeds)
	if err != nil {
		return nil, nil, err
	}
	margin := e.SafetyMargin
	if e.Tracker != nil {
		if m := e.Tracker.Margin(); m > margin {
			margin = m
		}
	}
	capacity := e.capacity()
	if e.PlanCapacity > 0 {
		capacity = e.PlanCapacity
	}
	pl := &memory.Planner{
		Capacity:     capacity,
		Partitioner:  e.Partitioner,
		Spec:         e.Spec,
		MaxK:         e.MaxK,
		SafetyMargin: margin,
		Obs:          e.Obs,
		Peak:         e.PlanPeak,
	}
	var plan *memory.Plan
	if e.FixedK > 0 {
		plan, err = pl.EvaluateFixedK(full, e.FixedK)
	} else {
		plan, err = pl.Plan(full)
	}
	if err != nil {
		return nil, nil, err
	}
	return full, plan, nil
}

// sampleOrReuse produces the epoch's full-batch frontier: from the
// frontier cache when one is installed and holds this seed set, otherwise
// by sampling (and persisting the result when a cache is installed).
func (e *Engine) sampleOrReuse(seeds []int32) ([]*graph.Block, error) {
	if e.Frontiers != nil {
		blocks, ok, err := e.Frontiers.Load(seeds)
		if err != nil {
			return nil, fmt.Errorf("core: macrobatch load: %w", err)
		}
		if ok {
			return blocks, nil
		}
	}
	full, err := e.Sampler.Sample(e.Runner.Data.Graph, seeds)
	if err != nil {
		return nil, fmt.Errorf("core: sampling: %w", err)
	}
	if e.Frontiers != nil {
		e.Obs.Add("macro.resample", 1)
		if err := e.Frontiers.Save(seeds, full); err != nil {
			return nil, fmt.Errorf("core: macrobatch save: %w", err)
		}
	}
	return full, nil
}

// TrainEpochMicro runs one epoch of Betty micro-batch training over the
// dataset's training nodes: one gradient-accumulating pass and a single
// optimizer step.
func (e *Engine) TrainEpochMicro() (EpochStats, error) {
	return e.TrainEpochMicroSeeds(e.Runner.Data.TrainIdx)
}

// TrainEpochMicroSeeds is TrainEpochMicro over an explicit seed set.
func (e *Engine) TrainEpochMicroSeeds(seeds []int32) (EpochStats, error) {
	var st EpochStats
	full, plan, err := e.PlanEpoch(seeds)
	if err != nil {
		return st, err
	}
	e.fillPlanStats(&st, full, plan)
	if err := e.executePlan(plan, &st); err != nil {
		return st, err
	}
	e.Runner.Step()
	e.Obs.Add("epoch.count", 1)
	e.Obs.Set("epoch.k", int64(st.K))
	e.Obs.Set("epoch.peak_bytes", st.PeakBytes)
	e.Obs.Set("epoch.est_peak_bytes", st.MaxEstimate)
	if e.Tracker != nil {
		// Margin is a small fraction; gauges are integers, so expose it in
		// parts per million.
		e.Obs.Set("plan.margin_ppm", int64(e.Tracker.Margin()*1e6))
	}
	return st, nil
}

// fillPlanStats records the planning outcome on st.
func (e *Engine) fillPlanStats(st *EpochStats, full []*graph.Block, plan *memory.Plan) {
	st.K = plan.K
	st.PlanAttempts = plan.Attempts
	st.MaxEstimate = plan.MaxPeak
	st.Redundancy = plan.Redundancy(full)
	st.InputNodes = graph.TotalInputNodes(plan.Micro)
	st.HostBytes = e.Runner.Data.HostBytes()
}

// labeledOutputs counts the labeled destinations of each micro-batch and
// their total. Losses and gradient scales follow the labeled-count
// convention: SoftmaxCrossEntropy averages over labeled rows only, so the
// micro-batch whose gradients reconstruct the full-batch gradient must be
// weighted by its share of *labeled* outputs — weighting by the raw
// destination count over-weights micro-batches that happen to hold many
// unlabeled seeds. When no label is masked the two conventions produce the
// same floats, so unmasked training is bitwise unchanged.
func (e *Engine) labeledOutputs(micros [][]*graph.Block) ([]int, int) {
	labels := e.Runner.Data.Labels
	counts := make([]int, len(micros))
	total := 0
	for i, mb := range micros {
		last := mb[len(mb)-1]
		n := 0
		for _, nid := range last.DstNID {
			if labels[nid] >= 0 {
				n++
			}
		}
		counts[i] = n
		total += n
	}
	return counts, total
}

// executePlan runs the planned micro-batches in plan order — one
// gradient-accumulating pass with the labeled-count loss convention —
// and accumulates loss, accuracy, times, and peaks into st. It is the
// canonical execution shared by single-device training and the
// multi-device path, which is what keeps the two bitwise identical: the
// numerical work is a function of the plan alone, never of how many
// devices the simulation spreads it over.
func (e *Engine) executePlan(plan *memory.Plan, st *EpochStats) error {
	labeledPer, totalLabeled := e.labeledOutputs(plan.Micro)
	if e.frontierMeter == nil && e.Obs != nil {
		e.frontierMeter = embcache.NewMeter(e.Obs)
	}
	correct, labeled := 0, 0
	for i, micro := range plan.Micro {
		// micro[0].DstNID is the layer-1 destination frontier — the
		// embedding cache's key space — so its overlap with the previous
		// micro-batch is exactly the reusable fraction.
		e.frontierMeter.Observe(micro[0].DstNID)
		// Reset the peak tracker per micro-batch: transient buffers are
		// freed between micro-batches, so the epoch peak is the max of the
		// per-micro peaks — unchanged — while each measurement now lines
		// up with its own estimate for the tracker's feedback loop.
		if e.Runner.Dev != nil {
			e.Runner.Dev.ResetPeak()
		}
		var scale float32
		if totalLabeled > 0 {
			scale = float32(labeledPer[i]) / float32(totalLabeled)
		}
		res, err := e.Runner.RunMicroBatch(micro, scale)
		if err != nil {
			return fmt.Errorf("core: micro-batch: %w", err)
		}
		if totalLabeled > 0 {
			st.Loss += res.Loss * float64(labeledPer[i]) / float64(totalLabeled)
		}
		correct += res.Correct
		labeled += res.Count
		st.TransferSeconds += res.TransferSeconds
		st.ComputeSeconds += res.ComputeSeconds
		if res.PeakBytes > st.PeakBytes {
			st.PeakBytes = res.PeakBytes
		}
		est := plan.Estimates[i].Peak()
		e.Obs.Observe("micro.est_peak_bytes", est)
		if e.Tracker != nil && res.PeakBytes > 0 {
			e.Tracker.Observe(est, res.PeakBytes)
		}
	}
	// Accuracy is over labeled outputs only: res.Count excludes masked
	// seeds, so dividing by the seed count would deflate TrainAcc whenever
	// any seed is unlabeled.
	if labeled > 0 {
		st.TrainAcc = float64(correct) / float64(labeled)
	} else {
		st.TrainAcc = 0
	}
	return nil
}

// TrainEpochFull runs one full-batch epoch (K = 1): the baseline whose
// memory footprint Betty reduces. It fails with a device OOM error when
// the batch does not fit.
func (e *Engine) TrainEpochFull() (EpochStats, error) {
	saved := e.FixedK
	e.FixedK = 1
	defer func() { e.FixedK = saved }()
	return e.TrainEpochMicro()
}

// TrainEpochMini runs one epoch of conventional mini-batch training with k
// batches: training nodes are split randomly, each mini-batch is sampled
// independently from the raw graph (so shared neighbors are re-expanded,
// not sliced), and the optimizer steps after every batch. This is the
// baseline of Table 6 and §3.3 — note it changes the effective batch size.
func (e *Engine) TrainEpochMini(k int, shuffleSeed uint64) (EpochStats, error) {
	var st EpochStats
	seeds := e.Runner.Data.TrainIdx
	if k <= 0 || k > len(seeds) {
		return st, fmt.Errorf("core: invalid mini-batch count %d", k)
	}
	st.K = k
	order := make([]int32, len(seeds))
	copy(order, seeds)
	shuffle(order, shuffleSeed)

	if e.Runner.Dev != nil {
		e.Runner.Dev.ResetPeak()
	}
	n := len(order)
	// Loss weighting follows the labeled-count convention (see
	// labeledOutputs): each batch's mean-over-labeled loss is weighted by
	// its share of the epoch's labeled seeds. Identical to seed-count
	// weighting when nothing is masked.
	totalLabeled := 0
	for _, nid := range order {
		if e.Runner.Data.Labels[nid] >= 0 {
			totalLabeled++
		}
	}
	correct, labeled := 0, 0
	for i := 0; i < k; i++ {
		lo, hi := i*n/k, (i+1)*n/k
		if lo == hi {
			continue
		}
		blocks, err := e.Sampler.Sample(e.Runner.Data.Graph, order[lo:hi])
		if err != nil {
			return st, err
		}
		st.InputNodes += blocks[0].NumSrc
		res, err := e.Runner.RunMicroBatch(blocks, 1)
		if err != nil {
			return st, fmt.Errorf("core: mini-batch %d: %w", i, err)
		}
		if totalLabeled > 0 {
			st.Loss += res.Loss * float64(res.Count) / float64(totalLabeled)
		}
		correct += res.Correct
		labeled += res.Count
		st.TransferSeconds += res.TransferSeconds
		st.ComputeSeconds += res.ComputeSeconds
		if res.PeakBytes > st.PeakBytes {
			st.PeakBytes = res.PeakBytes
		}
		e.Runner.Step()
	}
	// As in TrainEpochMicroSeeds: divide by labeled outputs, not seeds.
	if labeled > 0 {
		st.TrainAcc = float64(correct) / float64(labeled)
	} else {
		st.TrainAcc = 0
	}
	return st, nil
}

// TestAccuracy evaluates the model on the dataset's test split using the
// engine's sampler, chunked to bound memory.
func (e *Engine) TestAccuracy() (float64, error) {
	return e.Runner.Evaluate(e.Sampler, e.Runner.Data.TestIdx, 2048)
}

// ValAccuracy evaluates the model on the validation split.
func (e *Engine) ValAccuracy() (float64, error) {
	return e.Runner.Evaluate(e.Sampler, e.Runner.Data.ValIdx, 2048)
}

// shuffle is a seeded Fisher-Yates over node ids.
func shuffle(s []int32, seed uint64) {
	state := seed
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := len(s) - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		s[i], s[j] = s[j], s[i]
	}
}

// Setup bundles the pieces most callers need: model, optimizer, runner,
// spec, sampler, and engine, built from a dataset and a few knobs.
type Setup struct {
	Model   train.Model
	Opt     nn.Optimizer
	Runner  *train.Runner
	Engine  *Engine
	Dataset *dataset.Dataset
}

// Options configures BuildSAGE / BuildGAT.
type Options struct {
	// Hidden is the hidden width (default 64).
	Hidden int
	// Layers is the number of GNN layers (default len(Fanouts)).
	Layers int
	// Fanouts are the per-layer sampling bounds, input-first.
	Fanouts []int
	// Aggregator selects the SAGE reduction (default Mean).
	Aggregator nn.Aggregator
	// Heads is the GAT head count (default 4).
	Heads int
	// LR is the learning rate (default 0.01 Adam).
	LR float32
	// Device, when non-nil, enforces capacity and accumulates time.
	Device *device.Device
	// Seed drives weights, sampling, and partitioning.
	Seed uint64
	// FixedK forces the partition count (0 = memory-aware planning).
	FixedK int
	// Partitioner overrides Betty's REG partitioning (for baselines).
	Partitioner reg.BatchPartitioner
}

func (o *Options) defaults() {
	if o.Hidden == 0 {
		o.Hidden = 64
	}
	if len(o.Fanouts) == 0 {
		o.Fanouts = []int{10, 25}
	}
	if o.Layers == 0 {
		o.Layers = len(o.Fanouts)
	}
	//bettyvet:ok floateq zero-value config sentinel: an unset LR is exactly 0
	if o.LR == 0 {
		o.LR = 0.01
	}
}

// BuildSAGE assembles a GraphSAGE training setup over ds.
func BuildSAGE(ds *dataset.Dataset, opts Options) (*Setup, error) {
	opts.defaults()
	cfg := nn.Config{
		InDim:      ds.FeatureDim(),
		Hidden:     opts.Hidden,
		OutDim:     ds.NumClasses,
		Layers:     opts.Layers,
		Aggregator: opts.Aggregator,
	}
	model, err := nn.NewGraphSAGE(cfg, rngFor(opts.Seed))
	if err != nil {
		return nil, err
	}
	opt := nn.NewAdam(model, opts.LR)
	spec := memory.SpecFromSAGE(model, opt)
	return finishSetup(ds, model, opt, spec, opts)
}

// BuildGCN assembles a GCN training setup over ds (the Aggregator option
// is ignored; GCN always uses the symmetric normalized sum).
func BuildGCN(ds *dataset.Dataset, opts Options) (*Setup, error) {
	opts.defaults()
	cfg := nn.Config{
		InDim:  ds.FeatureDim(),
		Hidden: opts.Hidden,
		OutDim: ds.NumClasses,
		Layers: opts.Layers,
	}
	model, err := nn.NewGCN(ds.Graph, cfg, rngFor(opts.Seed))
	if err != nil {
		return nil, err
	}
	opt := nn.NewAdam(model, opts.LR)
	spec := memory.SpecFromGCN(model, opt)
	return finishSetup(ds, model, opt, spec, opts)
}

// BuildGAT assembles a GAT training setup over ds.
func BuildGAT(ds *dataset.Dataset, opts Options) (*Setup, error) {
	opts.defaults()
	cfg := nn.Config{
		InDim:  ds.FeatureDim(),
		Hidden: opts.Hidden,
		OutDim: ds.NumClasses,
		Layers: opts.Layers,
		Heads:  opts.Heads,
	}
	model, err := nn.NewGAT(cfg, rngFor(opts.Seed))
	if err != nil {
		return nil, err
	}
	opt := nn.NewAdam(model, opts.LR)
	spec := memory.SpecFromGAT(model, opt)
	return finishSetup(ds, model, opt, spec, opts)
}

func finishSetup(ds *dataset.Dataset, model train.Model, opt nn.Optimizer, spec memory.Spec, opts Options) (*Setup, error) {
	if len(opts.Fanouts) != spec.Model.Layers {
		return nil, fmt.Errorf("core: %d fanouts for %d layers", len(opts.Fanouts), spec.Model.Layers)
	}
	runner := train.NewRunner(model, ds, opt, opts.Device)
	eng := New(runner, sample.New(opts.Fanouts, opts.Seed^0x5a), spec, opts.Seed^0xb7)
	eng.FixedK = opts.FixedK
	if opts.Partitioner != nil {
		eng.Partitioner = opts.Partitioner
	}
	return &Setup{Model: model, Opt: opt, Runner: runner, Engine: eng, Dataset: ds}, nil
}
