package core

import (
	"math"
	"testing"

	"betty/internal/device"
	"betty/internal/obs"
)

// obsSetup builds a capacity-constrained engine with a fake-clock registry
// attached, so epochs are fully instrumented and deterministic.
func obsSetup(t *testing.T, trace bool) (*Setup, *obs.Registry) {
	t.Helper()
	d := testData(t)
	dev := device.New(device.GiB, device.DefaultCostModel())
	s, err := BuildSAGE(d, Options{Seed: 60, Hidden: 16, Fanouts: []int{5, 5}, FixedK: 2, Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	r := obs.New(obs.NewFakeClock(0, 1000))
	r.SetTracing(trace)
	s.Engine.SetObs(r)
	return s, r
}

// One instrumented epoch must produce a span for every pipeline phase of
// every micro-batch, and the metric side must agree with the epoch stats.
func TestInstrumentedEpochEmitsEveryPhase(t *testing.T) {
	s, r := obsSetup(t, true)
	st, err := s.Engine.TrainEpochMicro()
	if err != nil {
		t.Fatal(err)
	}

	perPhase := make(map[string]int)
	for _, sp := range r.Spans() {
		perPhase[sp.Phase]++
	}
	// Phases once per epoch: sample, partition, estimate (the reg_build
	// span nests inside the partitioner call), step. Phases per micro-batch:
	// h2d, forward, backward.
	for _, ph := range []string{obs.PhaseSample, obs.PhaseRegBuild, obs.PhasePartition, obs.PhaseEstimate} {
		if perPhase[ph] < 1 {
			t.Errorf("no %q span recorded (got %v)", ph, perPhase)
		}
	}
	for _, ph := range []string{obs.PhaseH2D, obs.PhaseForward, obs.PhaseBackward} {
		if perPhase[ph] != st.K {
			t.Errorf("%q spans = %d, want one per micro-batch (K=%d)", ph, perPhase[ph], st.K)
		}
	}
	if perPhase[obs.PhaseStep] != 1 {
		t.Errorf("step spans = %d, want 1", perPhase[obs.PhaseStep])
	}

	if got := r.CounterValue("train.micro_batches"); got != int64(st.K) {
		t.Errorf("train.micro_batches = %d, want %d", got, st.K)
	}
	if got := r.CounterValue("train.steps"); got != 1 {
		t.Errorf("train.steps = %d", got)
	}
	if got := r.CounterValue("epoch.count"); got != 1 {
		t.Errorf("epoch.count = %d", got)
	}
	if k, ok := r.GaugeValue("epoch.k"); !ok || k != int64(st.K) {
		t.Errorf("epoch.k = %d,%v, want %d", k, ok, st.K)
	}
	if pk, ok := r.GaugeValue("epoch.peak_bytes"); !ok || pk != st.PeakBytes {
		t.Errorf("epoch.peak_bytes = %d,%v, want %d", pk, ok, st.PeakBytes)
	}
	if est, ok := r.GaugeValue("epoch.est_peak_bytes"); !ok || est != st.MaxEstimate {
		t.Errorf("epoch.est_peak_bytes = %d,%v, want %d", est, ok, st.MaxEstimate)
	}
	// Estimated and measured peaks were recorded per micro-batch.
	for _, name := range []string{"micro.est_peak_bytes", "micro.peak_bytes"} {
		if h := r.HistogramWith(name, nil); h.Count() != int64(st.K) {
			t.Errorf("%s observations = %d, want %d", name, h.Count(), st.K)
		}
	}
	if got := r.CounterValue("plan.attempts"); got < 1 {
		t.Errorf("plan.attempts = %d", got)
	}
	if k, ok := r.GaugeValue("plan.k"); !ok || k != int64(st.K) {
		t.Errorf("plan.k = %d,%v, want %d", k, ok, st.K)
	}
}

// The fake clock makes span timings a pure function of the call sequence:
// two identically-built instrumented epochs export identical bytes.
func TestInstrumentedEpochDeterministic(t *testing.T) {
	run := func() []string {
		s, r := obsSetup(t, true)
		if _, err := s.Engine.TrainEpochMicro(); err != nil {
			t.Fatal(err)
		}
		return r.Records()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("record counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs:\n%s\n%s", i, a[i], b[i])
		}
	}
}

// TestTrackerMarginConvergesOverRun is the §6.7 feedback loop end-to-end:
// an instrumented 3-epoch run feeds each micro-batch's measured peak into
// the ErrorTracker, whose margin must settle (each epoch moves it no more
// than the one before) and be exported via the plan.margin_ppm gauge.
func TestTrackerMarginConvergesOverRun(t *testing.T) {
	s, r := obsSetup(t, false)
	tr := memoryTracker()
	s.Engine.Tracker = tr

	margins := []float64{tr.Margin()}
	for epoch := 0; epoch < 3; epoch++ {
		if _, err := s.Engine.TrainEpochMicro(); err != nil {
			t.Fatal(err)
		}
		margins = append(margins, tr.Margin())
	}
	if !tr.Observations() {
		t.Fatal("tracker saw no observations")
	}
	for i, m := range margins[1:] {
		if m < 0 || m > 1 {
			t.Fatalf("margin after epoch %d = %v out of range", i+1, m)
		}
	}
	// EMA contraction: the margin's movement shrinks epoch over epoch
	// (identically seeded epochs repeat the same workload).
	d1 := math.Abs(margins[2] - margins[1])
	d2 := math.Abs(margins[3] - margins[2])
	if d2 > d1+1e-9 {
		t.Fatalf("margin diverging: moves %v then %v (margins %v)", d1, d2, margins)
	}
	ppm, ok := r.GaugeValue("plan.margin_ppm")
	if !ok {
		t.Fatal("plan.margin_ppm gauge not exported")
	}
	if want := int64(margins[3] * 1e6); ppm != want {
		t.Fatalf("plan.margin_ppm = %d, want %d", ppm, want)
	}
}

// Detaching the registry must stop all recording (the SetObs(nil) path the
// CLIs rely on when -metrics is absent).
func TestSetObsNilDisables(t *testing.T) {
	s, r := obsSetup(t, true)
	s.Engine.SetObs(nil)
	if _, err := s.Engine.TrainEpochMicro(); err != nil {
		t.Fatal(err)
	}
	if len(r.Spans()) != 0 {
		t.Fatalf("detached registry recorded %d spans", len(r.Spans()))
	}
	if got := r.CounterValue("train.steps"); got != 0 {
		t.Fatalf("detached registry counted %d steps", got)
	}
}
