package core

import (
	"errors"
	"math"
	"testing"

	"betty/internal/dataset"
	"betty/internal/device"
	"betty/internal/graph"
	"betty/internal/memory"
	"betty/internal/nn"
	"betty/internal/reg"
	"betty/internal/sample"
	"betty/internal/tensor"
	"betty/internal/train"
)

// memoryTracker is a tiny indirection so the test reads naturally.
func memoryTracker() *memory.ErrorTracker { return memory.NewErrorTracker() }

func testData(t *testing.T) *dataset.Dataset {
	t.Helper()
	d, err := dataset.Generate(dataset.GenConfig{
		Name: "t", Nodes: 800, AvgDegree: 10, FeatureDim: 24,
		NumClasses: 5, Homophily: 0.8, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestBuildSAGEDefaults(t *testing.T) {
	d := testData(t)
	s, err := BuildSAGE(d, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := s.Model.Config()
	if cfg.InDim != 24 || cfg.OutDim != 5 || cfg.Layers != 2 || cfg.Hidden != 64 {
		t.Fatalf("bad defaults: %+v", cfg)
	}
	if s.Engine.Partitioner.Name() != "betty" {
		t.Fatal("default partitioner is not betty")
	}
}

func TestBuildValidation(t *testing.T) {
	d := testData(t)
	if _, err := BuildSAGE(d, Options{Fanouts: []int{5}, Layers: 3}); err == nil {
		t.Fatal("fanout/layer mismatch accepted")
	}
}

func TestTrainEpochMicroFixedK(t *testing.T) {
	d := testData(t)
	s, err := BuildSAGE(d, Options{Seed: 2, Hidden: 16, Fanouts: []int{5, 5}, FixedK: 4})
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Engine.TrainEpochMicro()
	if err != nil {
		t.Fatal(err)
	}
	if st.K != 4 {
		t.Fatalf("K = %d", st.K)
	}
	if st.Loss <= 0 || st.TrainAcc < 0 || st.TrainAcc > 1 {
		t.Fatalf("bad metrics: %+v", st)
	}
	if st.Redundancy < 0 {
		t.Fatal("negative redundancy")
	}
	if st.InputNodes <= 0 {
		t.Fatal("no input nodes counted")
	}
}

// Micro-batch training must be numerically equivalent to full-batch: after
// one epoch from identical initializations, parameters must match closely.
func TestMicroEqualsFullAfterOneEpoch(t *testing.T) {
	d := testData(t)
	mk := func(k int) *Setup {
		s, err := BuildSAGE(d, Options{Seed: 3, Hidden: 16, Fanouts: []int{5, 5}, FixedK: k})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	full := mk(1)
	micro := mk(6)
	if _, err := full.Engine.TrainEpochMicro(); err != nil {
		t.Fatal(err)
	}
	if _, err := micro.Engine.TrainEpochMicro(); err != nil {
		t.Fatal(err)
	}
	pf, pm := full.Model.Params(), micro.Model.Params()
	for i := range pf {
		for j := range pf[i].Value.Data {
			a, b := float64(pf[i].Value.Data[j]), float64(pm[i].Value.Data[j])
			if math.Abs(a-b) > 1e-4*(1+math.Abs(a)) {
				t.Fatalf("param %d elem %d: full %v vs micro %v", i, j, a, b)
			}
		}
	}
}

func TestMemoryAwarePlanningSelectsK(t *testing.T) {
	d := testData(t)
	// First find the full-batch estimate, then constrain below it.
	s0, err := BuildSAGE(d, Options{Seed: 4, Hidden: 16, Fanouts: []int{5, 5}, FixedK: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, plan, err := s0.Engine.PlanEpoch(d.TrainIdx)
	if err != nil {
		t.Fatal(err)
	}
	capacity := plan.MaxPeak * 3 / 5
	dev := device.New(capacity, device.DefaultCostModel())
	s, err := BuildSAGE(d, Options{Seed: 4, Hidden: 16, Fanouts: []int{5, 5}, Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Engine.TrainEpochMicro()
	if err != nil {
		t.Fatal(err)
	}
	if st.K < 2 {
		t.Fatalf("planner chose K=%d under a %d-byte budget", st.K, capacity)
	}
	if st.PlanAttempts != st.K {
		t.Fatalf("attempts %d != K %d", st.PlanAttempts, st.K)
	}
	if st.PeakBytes > capacity {
		t.Fatalf("measured peak %d exceeded capacity %d", st.PeakBytes, capacity)
	}
}

func TestFullBatchOOMsWhereBettyFits(t *testing.T) {
	d := testData(t)
	s0, err := BuildSAGE(d, Options{Seed: 5, Hidden: 16, Fanouts: []int{5, 5}, FixedK: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, plan, err := s0.Engine.PlanEpoch(d.TrainIdx)
	if err != nil {
		t.Fatal(err)
	}
	capacity := plan.MaxPeak / 2

	// full-batch training on the small device must OOM
	devFull := device.New(capacity, device.DefaultCostModel())
	full, err := BuildSAGE(d, Options{Seed: 5, Hidden: 16, Fanouts: []int{5, 5}, FixedK: 1, Device: devFull})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := full.Engine.TrainEpochFull(); !errors.Is(err, device.ErrOOM) {
		t.Fatalf("full batch should OOM, got %v", err)
	}

	// Betty on the same budget must fit
	devBetty := device.New(capacity, device.DefaultCostModel())
	betty, err := BuildSAGE(d, Options{Seed: 5, Hidden: 16, Fanouts: []int{5, 5}, Device: devBetty})
	if err != nil {
		t.Fatal(err)
	}
	st, err := betty.Engine.TrainEpochMicro()
	if err != nil {
		t.Fatalf("betty OOMed where it should fit: %v", err)
	}
	if st.K < 2 {
		t.Fatal("betty did not partition")
	}
}

func TestTrainEpochMini(t *testing.T) {
	d := testData(t)
	s, err := BuildSAGE(d, Options{Seed: 6, Hidden: 16, Fanouts: []int{5, 5}})
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Engine.TrainEpochMini(4, 99)
	if err != nil {
		t.Fatal(err)
	}
	if st.K != 4 || st.Loss <= 0 {
		t.Fatalf("bad mini epoch: %+v", st)
	}
	if st.InputNodes <= 0 {
		t.Fatal("mini epoch counted no inputs")
	}
	if _, err := s.Engine.TrainEpochMini(0, 1); err == nil {
		t.Fatal("k=0 accepted")
	}
}

// Mini-batches re-expand shared neighbors, so for equal K they must load
// at least as many first-layer inputs as sliced micro-batches (Table 6).
func TestMiniLoadsMoreInputsThanMicro(t *testing.T) {
	d := testData(t)
	s, err := BuildSAGE(d, Options{Seed: 7, Hidden: 16, Fanouts: []int{8, 8}, FixedK: 8})
	if err != nil {
		t.Fatal(err)
	}
	micro, err := s.Engine.TrainEpochMicro()
	if err != nil {
		t.Fatal(err)
	}
	mini, err := s.Engine.TrainEpochMini(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if mini.InputNodes < micro.InputNodes {
		t.Fatalf("mini inputs %d < micro inputs %d", mini.InputNodes, micro.InputNodes)
	}
}

// End-to-end learning: several Betty epochs must beat random-guess accuracy
// clearly on a homophilous dataset.
func TestBettyTrainingLearns(t *testing.T) {
	d := testData(t)
	s, err := BuildSAGE(d, Options{Seed: 8, Hidden: 32, Fanouts: []int{8, 8}, FixedK: 4, LR: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	var lastLoss float64
	for epoch := 0; epoch < 12; epoch++ {
		st, err := s.Engine.TrainEpochMicro()
		if err != nil {
			t.Fatal(err)
		}
		lastLoss = st.Loss
	}
	acc, err := s.Engine.TestAccuracy()
	if err != nil {
		t.Fatal(err)
	}
	guess := 1.0 / float64(d.NumClasses)
	if acc < 3*guess {
		t.Fatalf("test accuracy %.3f barely above guessing %.3f (loss %.3f)", acc, guess, lastLoss)
	}
	if _, err := s.Engine.ValAccuracy(); err != nil {
		t.Fatal(err)
	}
}

// Two engines built identically must produce identical epoch statistics —
// the whole stack (dataset, sampling, partitioning, training) is seeded.
func TestEngineDeterminism(t *testing.T) {
	d := testData(t)
	run := func() []float64 {
		s, err := BuildSAGE(d, Options{Seed: 40, Hidden: 16, Fanouts: []int{5, 5}, FixedK: 4})
		if err != nil {
			t.Fatal(err)
		}
		var losses []float64
		for e := 0; e < 3; e++ {
			st, err := s.Engine.TrainEpochMicro()
			if err != nil {
				t.Fatal(err)
			}
			losses = append(losses, st.Loss)
		}
		return losses
	}
	a, b := run(), run()
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("epoch %d: losses %v vs %v differ between identical runs", i, a[i], b[i])
		}
	}
}

// The adaptive tracker must observe epochs and only ever raise the margin
// the planner uses (never below the static SafetyMargin).
func TestAdaptiveTrackerFeedback(t *testing.T) {
	d := testData(t)
	dev := device.New(device.GiB, device.DefaultCostModel())
	s, err := BuildSAGE(d, Options{Seed: 41, Hidden: 16, Fanouts: []int{5, 5}, Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	tr := memoryTracker()
	s.Engine.Tracker = tr
	if _, err := s.Engine.TrainEpochMicro(); err != nil {
		t.Fatal(err)
	}
	if !tr.Observations() {
		t.Fatal("tracker saw no observations after an epoch with a device")
	}
}

func TestBaselinePartitionerOverride(t *testing.T) {
	d := testData(t)
	s, err := BuildSAGE(d, Options{
		Seed: 9, Hidden: 16, Fanouts: []int{5, 5}, FixedK: 4,
		Partitioner: reg.RandomBatch{Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Engine.Partitioner.Name() != "random" {
		t.Fatal("partitioner override ignored")
	}
	if _, err := s.Engine.TrainEpochMicro(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildGATRuns(t *testing.T) {
	d := testData(t)
	s, err := BuildGAT(d, Options{Seed: 10, Hidden: 8, Heads: 2, Fanouts: []int{5, 5}, FixedK: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Engine.Spec.IsGAT {
		t.Fatal("GAT spec not marked")
	}
	st, err := s.Engine.TrainEpochMicro()
	if err != nil {
		t.Fatal(err)
	}
	if st.Loss <= 0 {
		t.Fatalf("GAT loss = %v", st.Loss)
	}
}

// The estimator must track the measured device peak for every model and
// aggregator — the calibrated constants of memory.Estimate regress here if
// the nn layer op sequences change without updating the estimator.
func TestEstimatorCalibrationAcrossModels(t *testing.T) {
	d := testData(t)
	cases := []struct {
		name  string
		build func(dev *device.Device) (*Setup, error)
	}{
		{"sage-mean", func(dev *device.Device) (*Setup, error) {
			return BuildSAGE(d, Options{Seed: 50, Hidden: 16, Fanouts: []int{5, 5}, FixedK: 4, Device: dev, Aggregator: nn.Mean})
		}},
		{"sage-sum", func(dev *device.Device) (*Setup, error) {
			return BuildSAGE(d, Options{Seed: 50, Hidden: 16, Fanouts: []int{5, 5}, FixedK: 4, Device: dev, Aggregator: nn.Sum})
		}},
		{"sage-pool", func(dev *device.Device) (*Setup, error) {
			return BuildSAGE(d, Options{Seed: 50, Hidden: 16, Fanouts: []int{5, 5}, FixedK: 4, Device: dev, Aggregator: nn.Pool})
		}},
		{"sage-lstm", func(dev *device.Device) (*Setup, error) {
			return BuildSAGE(d, Options{Seed: 50, Hidden: 16, Fanouts: []int{5, 5}, FixedK: 4, Device: dev, Aggregator: nn.LSTM})
		}},
		{"gat", func(dev *device.Device) (*Setup, error) {
			return BuildGAT(d, Options{Seed: 50, Hidden: 8, Heads: 2, Fanouts: []int{5, 5}, FixedK: 4, Device: dev})
		}},
		{"gcn", func(dev *device.Device) (*Setup, error) {
			return BuildGCN(d, Options{Seed: 50, Hidden: 16, Fanouts: []int{5, 5}, FixedK: 4, Device: dev})
		}},
	}
	for _, tc := range cases {
		dev := device.New(8*device.GiB, device.DefaultCostModel())
		s, err := tc.build(dev)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		st, err := s.Engine.TrainEpochMicro()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		ratio := float64(st.MaxEstimate) / float64(st.PeakBytes)
		if ratio < 0.80 || ratio > 1.20 {
			t.Fatalf("%s: estimate/measured ratio %.3f out of band (est %d, meas %d)",
				tc.name, ratio, st.MaxEstimate, st.PeakBytes)
		}
	}
}

// The estimator must stay within a sane band of the measured device peak
// (the Table 7 property, loosely checked here; the bench records exact
// numbers).
func TestEstimateTracksMeasuredPeak(t *testing.T) {
	d := testData(t)
	dev := device.New(8*device.GiB, device.DefaultCostModel())
	s, err := BuildSAGE(d, Options{Seed: 11, Hidden: 16, Fanouts: []int{5, 5}, FixedK: 4, Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Engine.TrainEpochMicro()
	if err != nil {
		t.Fatal(err)
	}
	est := float64(st.MaxEstimate)
	meas := float64(st.PeakBytes)
	ratio := est / meas
	if ratio < 0.85 || ratio > 1.15 {
		t.Fatalf("estimate %v vs measured %v (ratio %.2f) out of band", est, meas, ratio)
	}
}

// constModel always predicts class 0 and has no parameters, so epoch
// accuracies are exactly computable from the labels.
type constModel struct{ classes int }

func (m constModel) Params() []*tensor.Var { return nil }

func (m constModel) Forward(tp *tensor.Tape, blocks []*graph.Block, x *tensor.Var) *tensor.Var {
	out := tensor.New(blocks[len(blocks)-1].NumDst, m.classes)
	for i := 0; i < out.Rows(); i++ {
		out.Set(i, 0, 1)
	}
	return tensor.Leaf(out)
}

func (m constModel) Flops(blocks []*graph.Block) float64 { return 0 }

func (m constModel) Config() nn.Config {
	return nn.Config{InDim: 1, Hidden: 1, OutDim: m.classes, Layers: 2}
}

// constEngine builds an engine around constModel over d.
func constEngine(d *dataset.Dataset) *Engine {
	m := constModel{classes: d.NumClasses}
	r := train.NewRunner(m, d, nn.NewAdam(m, 0.01), nil)
	return New(r, sample.New([]int{3, 3}, 5), memory.Spec{Model: m.Config(), OptStatePerParam: 2}, 9)
}

// maskedAccuracy returns the class-0 rate over the labeled subset of seeds
// plus the labeled count — constModel's exact expected accuracy.
func maskedAccuracy(d *dataset.Dataset, seeds []int32) (float64, int) {
	zeros, labeled := 0, 0
	for _, nid := range seeds {
		if d.Labels[nid] < 0 {
			continue
		}
		labeled++
		if d.Labels[nid] == 0 {
			zeros++
		}
	}
	if labeled == 0 {
		return 0, 0
	}
	return float64(zeros) / float64(labeled), labeled
}

// EpochStats.TrainAcc must divide by the labeled-output count, not the seed
// count: with a third of the seeds masked, the old code deflated accuracy
// by exactly that third.
func TestTrainAccCountsLabeledOnlyMicro(t *testing.T) {
	d := testData(t)
	for i := range d.Labels {
		if i%3 == 0 {
			d.Labels[i] = -1
		}
	}
	eng := constEngine(d)
	eng.FixedK = 2
	seeds := d.TrainIdx[:120]
	st, err := eng.TrainEpochMicroSeeds(seeds)
	if err != nil {
		t.Fatal(err)
	}
	want, labeled := maskedAccuracy(d, seeds)
	if labeled == len(seeds) {
		t.Fatal("fixture has no masked seeds")
	}
	if math.Float64bits(st.TrainAcc) != math.Float64bits(want) {
		t.Fatalf("TrainAcc = %v, want %v over %d labeled of %d seeds", st.TrainAcc, want, labeled, len(seeds))
	}
}

func TestTrainAccCountsLabeledOnlyMini(t *testing.T) {
	d := testData(t)
	for i := range d.Labels {
		if i%4 == 0 {
			d.Labels[i] = -1
		}
	}
	eng := constEngine(d)
	st, err := eng.TrainEpochMini(3, 7)
	if err != nil {
		t.Fatal(err)
	}
	wantAcc, labeled := maskedAccuracy(d, eng.Runner.Data.TrainIdx)
	if labeled == len(eng.Runner.Data.TrainIdx) {
		t.Fatal("fixture has no masked seeds")
	}
	if math.Float64bits(st.TrainAcc) != math.Float64bits(wantAcc) {
		t.Fatalf("TrainAcc = %v, want %v", st.TrainAcc, wantAcc)
	}
}

// A fully masked epoch must report TrainAcc 0, not NaN.
func TestTrainAccAllMaskedIsZero(t *testing.T) {
	d := testData(t)
	for i := range d.Labels {
		d.Labels[i] = -1
	}
	eng := constEngine(d)
	eng.FixedK = 1
	st, err := eng.TrainEpochMicroSeeds(d.TrainIdx[:50])
	if err != nil {
		t.Fatal(err)
	}
	if st.TrainAcc != 0 || math.IsNaN(st.TrainAcc) {
		t.Fatalf("TrainAcc = %v for fully masked epoch, want 0", st.TrainAcc)
	}
}
