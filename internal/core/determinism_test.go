package core

import (
	"math"
	"testing"

	"betty/internal/parallel"
	"betty/internal/tensor"
)

// trainTrace runs a fresh 3-epoch micro-batch training under the given
// worker count and pool setting, returning every per-epoch loss and
// accuracy plus the final parameter bytes.
func trainTrace(t *testing.T, workers int, pool bool) ([]float64, []float32) {
	t.Helper()
	defer parallel.SetWorkers(parallel.SetWorkers(workers))
	defer tensor.SetPooling(tensor.SetPooling(pool))
	tensor.DrainPool()
	d := testData(t)
	s, err := BuildSAGE(d, Options{Seed: 40, Hidden: 16, Fanouts: []int{5, 5}, FixedK: 4})
	if err != nil {
		t.Fatal(err)
	}
	var scalars []float64
	for e := 0; e < 3; e++ {
		st, err := s.Engine.TrainEpochMicro()
		if err != nil {
			t.Fatal(err)
		}
		scalars = append(scalars, st.Loss, st.TrainAcc)
	}
	var params []float32
	for _, p := range s.Model.Params() {
		params = append(params, p.Value.Data...)
	}
	return scalars, params
}

// compareTraces requires two training runs to match bitwise: losses,
// accuracies, and every final parameter.
func compareTraces(t *testing.T, label string, s1, s2 []float64, p1, p2 []float32) {
	t.Helper()
	for i := range s1 {
		if math.Float64bits(s1[i]) != math.Float64bits(s2[i]) {
			t.Fatalf("%s: epoch scalar %d differs: %v vs %v", label, i, s1[i], s2[i])
		}
	}
	if len(p1) != len(p2) {
		t.Fatalf("%s: parameter counts differ", label)
	}
	for i := range p1 {
		if math.Float32bits(p1[i]) != math.Float32bits(p2[i]) {
			t.Fatalf("%s: parameter %d differs: %v vs %v", label, i, p1[i], p2[i])
		}
	}
}

// TestTrainEpochWorkersBitwiseIdentical pins the end-to-end determinism
// claim: a full micro-batch training run is bitwise-identical at 1 and 8
// workers — losses, accuracies, and every final parameter.
func TestTrainEpochWorkersBitwiseIdentical(t *testing.T) {
	s1, p1 := trainTrace(t, 1, true)
	s8, p8 := trainTrace(t, 8, true)
	compareTraces(t, "workers 1 vs 8", s1, s8, p1, p8)
}

// TestTrainEpochPoolBitwiseIdentical pins the pooling claim: recycling
// tape buffers across micro-batches changes no numerical result.
func TestTrainEpochPoolBitwiseIdentical(t *testing.T) {
	sOn, pOn := trainTrace(t, 4, true)
	sOff, pOff := trainTrace(t, 4, false)
	compareTraces(t, "pool on vs off", sOn, sOff, pOn, pOff)
}

// TestTrainEpochMiniPoolAndWorkers covers the mini-batch epoch path, which
// releases its tape per batch through the same runner.
func TestTrainEpochMiniPoolAndWorkers(t *testing.T) {
	run := func(workers int, pool bool) (float64, []float32) {
		defer parallel.SetWorkers(parallel.SetWorkers(workers))
		defer tensor.SetPooling(tensor.SetPooling(pool))
		tensor.DrainPool()
		d := testData(t)
		s, err := BuildSAGE(d, Options{Seed: 41, Hidden: 16, Fanouts: []int{5, 5}, FixedK: 4})
		if err != nil {
			t.Fatal(err)
		}
		st, err := s.Engine.TrainEpochMini(4, 7)
		if err != nil {
			t.Fatal(err)
		}
		var params []float32
		for _, p := range s.Model.Params() {
			params = append(params, p.Value.Data...)
		}
		return st.Loss, params
	}
	l1, p1 := run(1, false)
	l2, p2 := run(8, true)
	if math.Float64bits(l1) != math.Float64bits(l2) {
		t.Fatalf("mini-batch loss differs: %v vs %v", l1, l2)
	}
	compareTraces(t, "mini 1w/unpooled vs 8w/pooled", nil, nil, p1, p2)
}
