package core

import (
	"fmt"
	"sort"

	"betty/internal/device"
	"betty/internal/graph"
	"betty/internal/memory"
	"betty/internal/nn"
	"betty/internal/obs"
	"betty/internal/reg"
)

// MultiDevice extends the engine to several simulated accelerators using
// GSplit-style split-parallelism: instead of sharding whole micro-batches
// between devices (classic data parallelism over batches), every planned
// micro-batch is itself partitioned across the N devices — the natural
// multi-device extension of Betty's batch-level REG partitioning. Each
// device executes one shard of every micro-batch; input features it does
// not own arrive from their owning device over the fast interconnect (halo
// exchange) instead of being re-loaded from the host, and a deterministic
// binomial-tree all-reduce merges the gradient contributions before the
// single optimizer step that closes the epoch.
//
// Determinism contract: the numerical work — forward, backward, gradient
// fold, optimizer step — is a function of the plan alone and is executed in
// plan order on the host, never of the device count (the same invariant
// internal/parallel enforces for worker counts). The devices' ledgers and
// clocks replay that work cooperatively: per-shard memory charges (which
// surface per-device OOM), host loads for owned inputs, halo traffic for
// the rest, compute time from measured shard forwards, and the tree
// all-reduce schedule. Results are therefore bitwise identical to
// single-device training at any device count, in either mode.
type MultiDevice struct {
	Engine  *Engine
	Devices []*device.Device

	// Interconnect models the device-to-device links used for halo
	// exchange and the gradient all-reduce. A zero Bandwidth selects
	// device.DefaultInterconnect (NVLink-class 50 GB/s).
	Interconnect device.Interconnect

	// ShardPartitioner splits each micro-batch's destination set across
	// the devices (split-parallel mode). Nil uses the engine's batch
	// partitioner — Betty's REG partitioning by default, so output nodes
	// sharing many inputs land on the same device and the halo stays
	// small. reg.RangeBatch / reg.RandomBatch / reg.MetisBatch give the
	// baseline layouts the multidev bench sweeps.
	ShardPartitioner reg.BatchPartitioner

	// Mode selects the scheduling scheme; the zero value is SplitParallel.
	Mode MultiDeviceMode

	// replicas holds each device's persistent model-state buffers, so one
	// replica per device survives across epochs (no re-allocation leak).
	replicas map[*device.Device][]*device.Buffer
}

// MultiDeviceMode selects how an epoch's work is spread over the devices.
type MultiDeviceMode int

const (
	// SplitParallel partitions every micro-batch across all devices and
	// executes the shards cooperatively with halo feature exchange.
	SplitParallel MultiDeviceMode = iota
	// BatchParallel assigns whole micro-batches to devices with an LPT
	// greedy schedule — the data-parallel baseline split-parallelism is
	// measured against.
	BatchParallel
)

// String implements fmt.Stringer for experiment output.
func (m MultiDeviceMode) String() string {
	if m == BatchParallel {
		return "batch-parallel"
	}
	return "split-parallel"
}

// DeviceLoad reports one device's share of an epoch.
type DeviceLoad struct {
	// Batches counts the executions charged to the device: micro-batch
	// shards in split-parallel mode, whole micro-batches in batch-parallel
	// mode.
	Batches int
	// Seconds is the device's accumulated compute + transfer time.
	Seconds float64
	// ComputeSeconds and TransferSeconds split Seconds by clock; transfer
	// time includes both host loads and received halo bytes.
	ComputeSeconds, TransferSeconds float64
	// IdleSeconds is time spent waiting at the per-micro-batch barrier for
	// slower devices (split-parallel) or for the epoch makespan
	// (batch-parallel) — the load-imbalance cost.
	IdleSeconds float64
	// OwnedBytes is the input-feature bytes the device loaded from the
	// host for the shard inputs it owns.
	OwnedBytes int64
	// HaloInBytes and HaloOutBytes are the boundary feature bytes the
	// device received from, and served to, peer devices.
	HaloInBytes, HaloOutBytes int64
	// PeakBytes is the device's peak memory during the epoch.
	PeakBytes int64
}

// MultiEpochStats extends EpochStats with parallel-execution metrics.
type MultiEpochStats struct {
	EpochStats
	// Devices is the device count the epoch ran on.
	Devices int
	// Makespan is the simulated wall time: the sum over micro-batches of
	// the slowest device's shard time (cooperative barrier per micro-batch
	// in split-parallel mode; the slowest device total in batch-parallel
	// mode), plus the gradient all-reduce.
	Makespan float64
	// AllReduceSeconds is the critical-path time of the gradient tree
	// all-reduce; AllReduceBytes the total interconnect traffic it moved;
	// AllReduceRounds its serialized round count.
	AllReduceSeconds float64
	AllReduceBytes   int64
	AllReduceRounds  int
	// HaloBytes is the total boundary feature traffic between devices and
	// HaloSeconds the transfer time it cost. Betty's REG shard
	// partitioning exists to minimize exactly this.
	HaloBytes   int64
	HaloSeconds float64
	// PerDevice reports each device's share.
	PerDevice []DeviceLoad
}

// TrainEpoch runs one gradient-accumulating epoch across the devices and
// applies a single optimizer step. The per-device planner budget is the
// smallest device capacity; in split-parallel mode the memory planner uses
// the split-aware peak (memory.SplitPeak), so K is chosen by what one
// device's *shard* must hold, not the whole micro-batch.
func (m *MultiDevice) TrainEpoch() (MultiEpochStats, error) {
	var st MultiEpochStats
	if len(m.Devices) == 0 {
		return st, fmt.Errorf("core: multi-device training needs at least one device")
	}
	e := m.Engine
	seeds := e.Runner.Data.TrainIdx

	savedCap, savedPeak := e.PlanCapacity, e.PlanPeak
	e.PlanCapacity = m.minCapacity()
	if m.Mode == SplitParallel && len(m.Devices) > 1 {
		e.PlanPeak = memory.SplitPeak(len(m.Devices))
	}
	full, plan, err := e.PlanEpoch(seeds)
	e.PlanCapacity, e.PlanPeak = savedCap, savedPeak
	if err != nil {
		return st, err
	}
	e.fillPlanStats(&st.EpochStats, full, plan)
	st.Devices = len(m.Devices)
	st.PerDevice = make([]DeviceLoad, len(m.Devices))

	sp := e.Obs.StartSpan(obs.PhaseMultiDev).
		SetInt("devices", int64(len(m.Devices))).
		SetInt("k", int64(plan.K)).
		SetInt("mode", int64(m.Mode))
	defer sp.End()

	// The simulation swaps per-device replicas in and out of the runner;
	// restore whatever device and resident set the engine had afterwards.
	runner := e.Runner
	savedDev := runner.Dev
	savedResident := runner.DetachResident()
	defer func() {
		runner.Dev = savedDev
		runner.AttachResident(savedResident)
	}()
	if m.replicas == nil {
		m.replicas = make(map[*device.Device][]*device.Buffer)
	}
	for _, dev := range m.Devices {
		dev.ResetClocks()
		dev.ResetPeak()
	}
	if err := m.ensureReplicas(); err != nil {
		return st, err
	}
	if m.Mode == BatchParallel {
		err = m.simulateBatchParallel(plan, &st)
	} else {
		err = m.simulateSplitParallel(plan, &st)
	}
	if err != nil {
		return st, err
	}

	// Canonical numerics, device-count independent: the same execution
	// single-device training performs, in plan order. Its gradient fold is
	// the result the simulated tree all-reduce delivers to every replica.
	runner.Dev = nil
	runner.AttachResident(nil)
	if err := e.executePlan(plan, &st.EpochStats); err != nil {
		return st, err
	}
	m.finishEpoch(&st)

	if d := len(m.Devices); d > 1 {
		paramBytes := int64(nn.ParamCount(runner.Model)) * 4
		st.AllReduceSeconds, st.AllReduceBytes, st.AllReduceRounds =
			m.interconnect().TreeAllReduce(d, paramBytes)
		st.Makespan += st.AllReduceSeconds
	}

	runner.Step()
	m.exportObs(&st)
	sp.SetInt("halo_bytes", st.HaloBytes).
		SetInt("allreduce_bytes", st.AllReduceBytes)
	return st, nil
}

// interconnect returns the configured interconnect or the default.
func (m *MultiDevice) interconnect() device.Interconnect {
	if m.Interconnect.Bandwidth <= 0 {
		return device.DefaultInterconnect()
	}
	return m.Interconnect
}

// minCapacity is the per-device planning budget.
func (m *MultiDevice) minCapacity() int64 {
	min := m.Devices[0].Capacity()
	for _, d := range m.Devices[1:] {
		if c := d.Capacity(); c < min {
			min = c
		}
	}
	return min
}

// shardPartitioner resolves the partitioner that splits each micro-batch's
// destinations across devices.
func (m *MultiDevice) shardPartitioner() reg.BatchPartitioner {
	if m.ShardPartitioner != nil {
		return m.ShardPartitioner
	}
	return m.Engine.Partitioner
}

// ensureReplicas allocates each device's persistent model-state buffers
// (parameters, gradients, optimizer states) if not already resident.
func (m *MultiDevice) ensureReplicas() error {
	runner := m.Engine.Runner
	for d, dev := range m.Devices {
		runner.Dev = dev
		runner.AttachResident(m.replicas[dev])
		if err := runner.EnsureResident(); err != nil {
			runner.Dev = nil
			return fmt.Errorf("core: device %d replica: %w", d, err)
		}
		m.replicas[dev] = runner.DetachResident()
	}
	runner.Dev = nil
	return nil
}

// shardCharge replays one shard (or whole micro-batch) on a device: ledger
// allocations for the transient tensors, host transfers for owned inputs
// plus labels and block structure, halo receives for peer-owned inputs,
// and compute time from a measured gradient-free forward. haloByOwner maps
// owning-device index to received feature bytes (nil when everything is
// host-loaded). It returns the activation estimate error or OOM unchanged
// so callers can surface which device and shard hit capacity.
func (m *MultiDevice) shardCharge(d int, shard []*graph.Block, ownedBytes int64, haloByOwner []int64, load *DeviceLoad, st *MultiEpochStats) error {
	runner := m.Engine.Runner
	dev := m.Devices[d]
	stats := graph.Stats(shard)
	featBytes := int64(runner.Data.FeatureDim()) * 4

	fc, err := runner.MeasureForward(shard)
	if err != nil {
		return err
	}
	var transient []*device.Buffer
	free := func() {
		for _, b := range transient {
			dev.Free(b)
		}
	}
	charge := func(bytes int64, label string) error {
		if bytes == 0 {
			return nil
		}
		buf, err := dev.Alloc(bytes, label)
		if err != nil {
			free()
			return err
		}
		transient = append(transient, buf)
		return nil
	}
	inputBytes := int64(stats.NumInput) * featBytes
	labelBytes := int64(stats.NumOutput) * 4
	blockBytes := int64(stats.TotalEdges) * 3 * 4
	if err := charge(inputBytes, "input-features"); err != nil {
		return err
	}
	if err := charge(labelBytes, "labels"); err != nil {
		return err
	}
	if err := charge(blockBytes, "blocks"); err != nil {
		return err
	}
	dev.Transfer(ownedBytes)
	dev.Transfer(labelBytes)
	dev.Transfer(blockBytes)
	load.OwnedBytes += ownedBytes
	ic := m.interconnect()
	for owner, bytes := range haloByOwner {
		if bytes == 0 || owner == d {
			continue
		}
		st.HaloSeconds += dev.Exchange(bytes, ic)
		st.HaloBytes += bytes
		load.HaloInBytes += bytes
		st.PerDevice[owner].HaloOutBytes += bytes
	}
	if err := charge(fc.ActivationBytes, "activations"); err != nil {
		return fmt.Errorf("forward activations: %w", err)
	}
	// forward + backward issue roughly three kernels per recorded op,
	// matching the single-device accounting in RunMicroBatch.
	dev.ComputeKernels(fc.Flops, 3*fc.Ops)
	load.Batches++
	free()
	return nil
}

// busy returns a device's accumulated busy seconds.
func busy(dev *device.Device) float64 {
	return dev.ComputeSeconds() + dev.TransferSeconds()
}

// simulateSplitParallel replays the epoch under split-parallelism: each
// micro-batch's destination set is partitioned into one shard per device,
// shards execute cooperatively (a barrier per micro-batch), and boundary
// inputs move between devices instead of being re-loaded from the host.
func (m *MultiDevice) simulateSplitParallel(plan *memory.Plan, st *MultiEpochStats) error {
	e := m.Engine
	featBytes := int64(e.Runner.Data.FeatureDim()) * 4
	nDev := len(m.Devices)
	prevBusy := make([]float64, nDev)
	for d, dev := range m.Devices {
		prevBusy[d] = busy(dev)
	}
	for mi, micro := range plan.Micro {
		last := micro[len(micro)-1]
		shards, err := m.splitMicro(micro, mi)
		if err != nil {
			return err
		}
		msp := e.Obs.StartSpan(obs.PhaseShard).
			SetInt("micro", int64(mi)).
			SetInt("shards", int64(len(shards))).
			SetInt("outputs", int64(last.NumDst))

		// Ownership: walking devices in index order, the first shard that
		// references an input node owns it and loads it from the host;
		// every later reference is a halo receive from that owner. The
		// walk order is deterministic, so ownership — and with it every
		// byte of simulated traffic — is too.
		owner := make(map[int32]int, micro[0].NumSrc)
		for g := range shards {
			for _, nid := range shards[g][0].SrcNID {
				if _, ok := owner[nid]; !ok {
					owner[nid] = g
				}
			}
		}
		haloBefore := st.HaloBytes
		for g := range shards {
			haloByOwner := make([]int64, len(shards))
			var ownedBytes int64
			for _, nid := range shards[g][0].SrcNID {
				if o := owner[nid]; o == g {
					ownedBytes += featBytes
				} else {
					haloByOwner[o] += featBytes
				}
			}
			if err := m.shardCharge(g, shards[g], ownedBytes, haloByOwner, &st.PerDevice[g], st); err != nil {
				msp.End()
				return fmt.Errorf("core: device %d shard of micro-batch %d: %w", g, mi, err)
			}
		}
		// Cooperative barrier: the micro-batch finishes when its slowest
		// shard does; faster devices idle for the difference.
		var microMax float64
		deltas := make([]float64, nDev)
		for d, dev := range m.Devices {
			deltas[d] = busy(dev) - prevBusy[d]
			if deltas[d] > microMax {
				microMax = deltas[d]
			}
		}
		for d, dev := range m.Devices {
			st.PerDevice[d].IdleSeconds += microMax - deltas[d]
			prevBusy[d] = busy(dev)
		}
		st.Makespan += microMax
		msp.SetInt("halo_bytes", st.HaloBytes-haloBefore)
		msp.End()
	}
	return nil
}

// splitMicro partitions one micro-batch's destinations into at most one
// shard per device and slices the shard block lists. A single shard (one
// device, or a micro-batch with one output) reuses the micro-batch blocks
// unsliced, so the one-device simulation charges exactly what single-device
// training charges. Partitioners that cannot produce the requested group
// count on a tiny REG (an empty part) fall back to range splitting.
func (m *MultiDevice) splitMicro(micro []*graph.Block, mi int) ([][]*graph.Block, error) {
	last := micro[len(micro)-1]
	n := len(m.Devices)
	if last.NumDst < n {
		n = last.NumDst
	}
	if n == 1 {
		return [][]*graph.Block{micro}, nil
	}
	groups, err := m.shardPartitioner().PartitionBatch(last, n)
	if err != nil {
		m.Engine.Obs.Add("multidev.shard_fallbacks", 1)
		groups, err = reg.RangeBatch{}.PartitionBatch(last, n)
		if err != nil {
			return nil, fmt.Errorf("core: sharding micro-batch %d: %w", mi, err)
		}
	}
	shards := make([][]*graph.Block, len(groups))
	for g, sel := range groups {
		shards[g], err = graph.SliceBatch(micro, sel)
		if err != nil {
			return nil, fmt.Errorf("core: slicing shard %d of micro-batch %d: %w", g, mi, err)
		}
	}
	return shards, nil
}

// lptOrder returns micro-batch indices sorted by estimated peak descending,
// index ascending on ties — the deterministic longest-processing-time order
// the batch-parallel scheduler consumes.
func lptOrder(estimates []memory.Breakdown) []int {
	order := make([]int, len(estimates))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		pi, pj := estimates[order[i]].Peak(), estimates[order[j]].Peak()
		if pi != pj {
			return pi > pj
		}
		return order[i] < order[j]
	})
	return order
}

// simulateBatchParallel replays the epoch under the data-parallel baseline:
// whole micro-batches are assigned to devices by LPT greedy scheduling
// (largest estimated peak first, always to the least-loaded device, lowest
// index on ties) and every input is loaded from the host — no halo
// exchange, but also no per-device memory relief beyond the assignment.
func (m *MultiDevice) simulateBatchParallel(plan *memory.Plan, st *MultiEpochStats) error {
	nDev := len(m.Devices)
	assigned := make([][]int, nDev)
	loadEst := make([]int64, nDev)
	for _, mi := range lptOrder(plan.Estimates) {
		best := 0
		for d := 1; d < nDev; d++ {
			if loadEst[d] < loadEst[best] {
				best = d
			}
		}
		assigned[best] = append(assigned[best], mi)
		loadEst[best] += plan.Estimates[mi].Peak()
	}
	featBytes := int64(m.Engine.Runner.Data.FeatureDim()) * 4
	for d := range m.Devices {
		before := busy(m.Devices[d])
		for _, mi := range assigned[d] {
			micro := plan.Micro[mi]
			ownedBytes := int64(micro[0].NumSrc) * featBytes
			if err := m.shardCharge(d, micro, ownedBytes, nil, &st.PerDevice[d], st); err != nil {
				return fmt.Errorf("core: device %d micro-batch %d: %w", d, mi, err)
			}
		}
		if t := busy(m.Devices[d]) - before; t > st.Makespan {
			st.Makespan = t
		}
	}
	for d, dev := range m.Devices {
		st.PerDevice[d].IdleSeconds = st.Makespan - busy(dev)
	}
	return nil
}

// finishEpoch folds the device clocks and peaks into the epoch stats.
func (m *MultiDevice) finishEpoch(st *MultiEpochStats) {
	st.TransferSeconds, st.ComputeSeconds = 0, 0
	for d, dev := range m.Devices {
		load := &st.PerDevice[d]
		load.ComputeSeconds = dev.ComputeSeconds()
		load.TransferSeconds = dev.TransferSeconds()
		load.Seconds = load.ComputeSeconds + load.TransferSeconds
		load.PeakBytes = dev.Peak()
		st.TransferSeconds += load.TransferSeconds
		st.ComputeSeconds += load.ComputeSeconds
		if load.PeakBytes > st.PeakBytes {
			st.PeakBytes = load.PeakBytes
		}
	}
}

// exportObs publishes the epoch's multi-device gauges and counters.
func (m *MultiDevice) exportObs(st *MultiEpochStats) {
	o := m.Engine.Obs
	o.Add("multidev.epochs", 1)
	o.Add("multidev.halo_bytes", st.HaloBytes)
	o.Add("multidev.allreduce_bytes", st.AllReduceBytes)
	o.Set("multidev.devices", int64(st.Devices))
	o.Set("multidev.makespan_us", int64(st.Makespan*1e6))
	o.Set("multidev.allreduce_us", int64(st.AllReduceSeconds*1e6))
	for d, load := range st.PerDevice {
		prefix := fmt.Sprintf("multidev.d%d.", d)
		o.Set(prefix+"compute_us", int64(load.ComputeSeconds*1e6))
		o.Set(prefix+"transfer_us", int64(load.TransferSeconds*1e6))
		o.Set(prefix+"idle_us", int64(load.IdleSeconds*1e6))
		o.Set(prefix+"halo_in_bytes", load.HaloInBytes)
		o.Set(prefix+"halo_out_bytes", load.HaloOutBytes)
		o.Set(prefix+"peak_bytes", load.PeakBytes)
	}
}
