package core

import (
	"fmt"

	"betty/internal/device"
	"betty/internal/nn"
)

// MultiDevice extends the engine to several simulated accelerators — the
// multi-GPU direction the paper lists as future work. Micro-batches are
// scheduled across the devices with a longest-processing-time greedy
// assignment over their estimated cost; each device accumulates partial
// gradients over its share, and one gradient all-reduce plus a single
// optimizer step closes the epoch. Because micro-batch gradients sum
// linearly, the result remains mathematically identical to full-batch
// training regardless of the device count or assignment.
type MultiDevice struct {
	Engine  *Engine
	Devices []*device.Device
	// AllReduceBandwidth is the interconnect bandwidth (bytes/s) used to
	// cost the ring all-reduce; 0 selects 50 GB/s (NVLink-class).
	AllReduceBandwidth float64

	// replicas holds each device's persistent model-state buffers, so one
	// replica per device survives across epochs (no re-allocation leak).
	replicas map[*device.Device][]*device.Buffer
}

// DeviceLoad reports one device's share of an epoch.
type DeviceLoad struct {
	// Batches is the number of micro-batches the device executed.
	Batches int
	// Seconds is the device's accumulated compute + transfer time.
	Seconds float64
	// PeakBytes is the device's peak memory during the epoch.
	PeakBytes int64
}

// MultiEpochStats extends EpochStats with parallel-execution metrics.
type MultiEpochStats struct {
	EpochStats
	// Makespan is the simulated wall time: the slowest device's time plus
	// the gradient all-reduce.
	Makespan float64
	// AllReduceSeconds is the simulated gradient synchronization time.
	AllReduceSeconds float64
	// PerDevice reports each device's share.
	PerDevice []DeviceLoad
}

// TrainEpoch runs one gradient-accumulating epoch across the devices.
func (m *MultiDevice) TrainEpoch() (MultiEpochStats, error) {
	var st MultiEpochStats
	if len(m.Devices) == 0 {
		return st, fmt.Errorf("core: multi-device training needs at least one device")
	}
	seeds := m.Engine.Runner.Data.TrainIdx
	full, plan, err := m.Engine.PlanEpoch(seeds)
	if err != nil {
		return st, err
	}
	st.K = plan.K
	st.PlanAttempts = plan.Attempts
	st.MaxEstimate = plan.MaxPeak
	st.Redundancy = plan.Redundancy(full)

	// Longest-processing-time greedy: sort micro-batches by estimated
	// peak (a good proxy for their cost) and always give the next one to
	// the least-loaded device.
	order := make([]int, len(plan.Micro))
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && plan.Estimates[order[j]].Peak() > plan.Estimates[order[j-1]].Peak(); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	assigned := make([][]int, len(m.Devices))
	loadEst := make([]int64, len(m.Devices))
	for _, mi := range order {
		best := 0
		for d := 1; d < len(m.Devices); d++ {
			if loadEst[d] < loadEst[best] {
				best = d
			}
		}
		assigned[best] = append(assigned[best], mi)
		loadEst[best] += plan.Estimates[mi].Peak()
	}

	// Execute each device's share. The runner is sequential (one host), so
	// per-device clocks are reset and measured independently; the epoch
	// makespan is the slowest device.
	runner := m.Engine.Runner
	savedDev := runner.Dev
	savedResident := runner.DetachResident()
	defer func() {
		runner.Dev = savedDev
		runner.AttachResident(savedResident)
	}()
	if m.replicas == nil {
		m.replicas = make(map[*device.Device][]*device.Buffer)
	}
	st.PerDevice = make([]DeviceLoad, len(m.Devices))
	totalOut := len(seeds)
	for d, dev := range m.Devices {
		dev.ResetClocks()
		dev.ResetPeak()
		runner.Dev = dev
		runner.AttachResident(m.replicas[dev])
		for _, mi := range assigned[d] {
			micro := plan.Micro[mi]
			outs := micro[len(micro)-1].NumDst
			res, err := runner.RunMicroBatch(micro, float32(outs)/float32(totalOut))
			if err != nil {
				return st, fmt.Errorf("core: device %d micro-batch %d: %w", d, mi, err)
			}
			st.Loss += res.Loss * float64(outs) / float64(totalOut)
			st.TrainAcc += float64(res.Correct)
			st.InputNodes += micro[0].NumSrc
		}
		m.replicas[dev] = runner.DetachResident()
		load := DeviceLoad{
			Batches:   len(assigned[d]),
			Seconds:   dev.ComputeSeconds() + dev.TransferSeconds(),
			PeakBytes: dev.Peak(),
		}
		st.PerDevice[d] = load
		st.TransferSeconds += dev.TransferSeconds()
		st.ComputeSeconds += dev.ComputeSeconds()
		if load.Seconds > st.Makespan {
			st.Makespan = load.Seconds
		}
		if load.PeakBytes > st.PeakBytes {
			st.PeakBytes = load.PeakBytes
		}
	}
	st.TrainAcc /= float64(totalOut)

	// Ring all-reduce over the gradients: 2*(D-1)/D of the parameter bytes
	// cross the interconnect per device.
	if d := len(m.Devices); d > 1 {
		bw := m.AllReduceBandwidth
		if bw <= 0 {
			bw = 50e9
		}
		paramBytes := float64(nn.ParamCount(runner.Model)) * 4
		st.AllReduceSeconds = 2 * float64(d-1) / float64(d) * paramBytes / bw
		st.Makespan += st.AllReduceSeconds
	}

	runner.Step()
	return st, nil
}
