package core

import (
	"fmt"

	"betty/internal/embcache"
	"betty/internal/graph"
	"betty/internal/nn"
	"betty/internal/sample"
	"betty/internal/tensor"
)

// BlockLayer is one GNN layer that can be applied to a single bipartite
// block — the unit of layer-wise inference. The canonical definition
// lives in package nn (nn.LayerStack / nn.ApplyBlockLayer) so the
// embedding cache's partial-skip forward can share it; the alias keeps
// core's historical API.
type BlockLayer = nn.BlockLayer

// layerStack extracts the per-layer modules of a supported model.
func layerStack(model any) ([]BlockLayer, error) {
	return nn.LayerStack(model)
}

// applyLayer runs one GNN layer over one block, applying the inter-layer
// ReLU when the layer is not the model's last. It is the single per-layer
// forward step shared by whole-batch inference (BatchInference) and
// layer-wise offline inference (LayerwiseInference). Layers that implement
// the fused tier take it when BETTY_FUSED is on.
func applyLayer(tp *tensor.Tape, layer BlockLayer, b *graph.Block, h *tensor.Var, last bool) *tensor.Var {
	return nn.ApplyBlockLayer(tp, layer, b, h, last)
}

// BatchInference runs one forward pass of model over an input-first block
// list and returns the logits for the last block's destinations as a fresh
// tensor (one row per destination, in DstNID order). No gradients are
// recorded and all intermediates are recycled before returning.
//
// This is the one batch-forward implementation shared across the
// repository: training (train.Runner.RunMicroBatch) and evaluation call
// the same per-layer modules through Model.Forward, offline inference
// (LayerwiseInference) applies them one layer at a time, and the online
// serving path (internal/serve) calls BatchInference directly — the op
// sequence is identical in all cases, so predictions are bitwise equal
// across the three paths.
func BatchInference(model any, blocks []*graph.Block, feats *tensor.Tensor) (*tensor.Tensor, error) {
	return BatchInferenceCached(model, blocks, feats, nil)
}

// BatchInferenceCached is BatchInference with an optional historical-
// embedding cache (DESIGN.md §16). A nil or off cache takes exactly the
// plain path; an exact cache verifies layer-1 rows bitwise while
// populating; a reuse cache splices cached layer-1 rows into the layer-2
// input and computes only the missed destinations.
func BatchInferenceCached(model any, blocks []*graph.Block, feats *tensor.Tensor, ec *embcache.Cache) (*tensor.Tensor, error) {
	layers, err := layerStack(model)
	if err != nil {
		return nil, err
	}
	if len(blocks) != len(layers) {
		return nil, fmt.Errorf("core: %d blocks for %d model layers", len(blocks), len(layers))
	}
	if feats.Rows() != blocks[0].NumSrc {
		return nil, fmt.Errorf("core: feature rows %d != %d input nodes", feats.Rows(), blocks[0].NumSrc)
	}
	tp := tensor.NewTape()
	defer tp.Release() // logits are cloned out below; recycle the arena
	h, err := embcache.Forward(tp, model, blocks, tensor.Leaf(feats), ec)
	if err != nil {
		return nil, err
	}
	return h.Value.Clone(), nil
}

// LayerwiseInference computes the model's outputs for every node of the
// graph, one layer at a time in node chunks — the standard offline GNN
// inference pattern (DGL's inference loop): instead of sampling a deep
// neighborhood per output (whose cost explodes with depth), each layer is
// computed for all nodes from the previous layer's full output, bounding
// memory by the chunk size.
//
// feats holds the input features for all g.NumNodes() nodes. The returned
// tensor has one output row per node. No gradients are recorded.
func LayerwiseInference(model any, g *graph.Graph, feats *tensor.Tensor, chunk int) (*tensor.Tensor, error) {
	layers, err := layerStack(model)
	if err != nil {
		return nil, err
	}
	if int32(feats.Rows()) != g.NumNodes() {
		return nil, fmt.Errorf("core: feature rows %d != %d nodes", feats.Rows(), g.NumNodes())
	}
	if chunk <= 0 {
		chunk = 1024
	}
	n := int(g.NumNodes())
	cur := feats
	for li, layer := range layers {
		var out *tensor.Tensor
		for lo := 0; lo < n; lo += chunk {
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			seeds := make([]int32, hi-lo)
			for i := range seeds {
				seeds[i] = int32(lo + i)
			}
			blocks, err := sample.SampleFull(g, seeds, 1)
			if err != nil {
				return nil, err
			}
			b := blocks[0]
			h := tensor.New(b.NumSrc, cur.Cols())
			for i, nid := range b.SrcNID {
				copy(h.Row(i), cur.Row(int(nid)))
			}
			tp := tensor.NewTape()
			res := applyLayer(tp, layer, b, tensor.Leaf(h), li == len(layers)-1)
			if out == nil {
				out = tensor.New(n, res.Value.Cols())
			}
			for i := 0; i < res.Value.Rows(); i++ {
				copy(out.Row(lo+i), res.Value.Row(i))
			}
			tp.Release() // rows copied out; recycle the chunk's arena
		}
		cur = out
	}
	return cur, nil
}

// InferAccuracy runs layer-wise inference and scores the predictions on
// the given node set.
func InferAccuracy(model any, g *graph.Graph, feats *tensor.Tensor, labels []int32, nodes []int32, chunk int) (float64, error) {
	logits, err := LayerwiseInference(model, g, feats, chunk)
	if err != nil {
		return 0, err
	}
	if len(nodes) == 0 {
		return 0, fmt.Errorf("core: no nodes to score")
	}
	pred := tensor.Argmax(logits)
	correct := 0
	for _, v := range nodes {
		if pred[v] == labels[v] {
			correct++
		}
	}
	return float64(correct) / float64(len(nodes)), nil
}
