package core

import (
	"fmt"

	"betty/internal/graph"
	"betty/internal/nn"
	"betty/internal/sample"
	"betty/internal/tensor"
)

// BlockLayer is one GNN layer that can be applied to a single bipartite
// block — the unit of layer-wise inference. All conv layers in package nn
// satisfy it.
type BlockLayer interface {
	Forward(tp *tensor.Tape, b *graph.Block, h *tensor.Var) *tensor.Var
}

// layerStack extracts the per-layer modules of a supported model.
func layerStack(model any) ([]BlockLayer, error) {
	switch m := model.(type) {
	case *nn.GraphSAGE:
		out := make([]BlockLayer, len(m.Layers))
		for i, l := range m.Layers {
			out[i] = l
		}
		return out, nil
	case *nn.GAT:
		out := make([]BlockLayer, len(m.Layers))
		for i, l := range m.Layers {
			out[i] = l
		}
		return out, nil
	case *nn.GCN:
		out := make([]BlockLayer, len(m.Layers))
		for i, l := range m.Layers {
			out[i] = l
		}
		return out, nil
	default:
		return nil, fmt.Errorf("core: layer-wise inference does not support %T", model)
	}
}

// fusedBlockLayer is the optional fused-tier interface (DESIGN.md §13):
// layers that implement it run gather→aggregate→bias→ReLU in fused kernels,
// with the inter-layer ReLU folded in. Fusion is bitwise-exact, so which
// path executes never changes a prediction byte.
type fusedBlockLayer interface {
	ForwardFused(tp *tensor.Tape, b *graph.Block, h *tensor.Var, relu bool) *tensor.Var
}

// applyLayer runs one GNN layer over one block, applying the inter-layer
// ReLU when the layer is not the model's last. It is the single per-layer
// forward step shared by whole-batch inference (BatchInference) and
// layer-wise offline inference (LayerwiseInference). Layers that implement
// the fused tier take it when BETTY_FUSED is on.
func applyLayer(tp *tensor.Tape, layer BlockLayer, b *graph.Block, h *tensor.Var, last bool) *tensor.Var {
	if fl, ok := layer.(fusedBlockLayer); ok && nn.FusedEnabled() {
		return fl.ForwardFused(tp, b, h, !last)
	}
	out := layer.Forward(tp, b, h)
	if !last {
		out = tp.ReLU(out)
	}
	return out
}

// BatchInference runs one forward pass of model over an input-first block
// list and returns the logits for the last block's destinations as a fresh
// tensor (one row per destination, in DstNID order). No gradients are
// recorded and all intermediates are recycled before returning.
//
// This is the one batch-forward implementation shared across the
// repository: training (train.Runner.RunMicroBatch) and evaluation call
// the same per-layer modules through Model.Forward, offline inference
// (LayerwiseInference) applies them one layer at a time, and the online
// serving path (internal/serve) calls BatchInference directly — the op
// sequence is identical in all cases, so predictions are bitwise equal
// across the three paths.
func BatchInference(model any, blocks []*graph.Block, feats *tensor.Tensor) (*tensor.Tensor, error) {
	layers, err := layerStack(model)
	if err != nil {
		return nil, err
	}
	if len(blocks) != len(layers) {
		return nil, fmt.Errorf("core: %d blocks for %d model layers", len(blocks), len(layers))
	}
	if feats.Rows() != blocks[0].NumSrc {
		return nil, fmt.Errorf("core: feature rows %d != %d input nodes", feats.Rows(), blocks[0].NumSrc)
	}
	tp := tensor.NewTape()
	defer tp.Release() // logits are cloned out below; recycle the arena
	h := tensor.Leaf(feats)
	for i, layer := range layers {
		h = applyLayer(tp, layer, blocks[i], h, i == len(layers)-1)
	}
	return h.Value.Clone(), nil
}

// LayerwiseInference computes the model's outputs for every node of the
// graph, one layer at a time in node chunks — the standard offline GNN
// inference pattern (DGL's inference loop): instead of sampling a deep
// neighborhood per output (whose cost explodes with depth), each layer is
// computed for all nodes from the previous layer's full output, bounding
// memory by the chunk size.
//
// feats holds the input features for all g.NumNodes() nodes. The returned
// tensor has one output row per node. No gradients are recorded.
func LayerwiseInference(model any, g *graph.Graph, feats *tensor.Tensor, chunk int) (*tensor.Tensor, error) {
	layers, err := layerStack(model)
	if err != nil {
		return nil, err
	}
	if int32(feats.Rows()) != g.NumNodes() {
		return nil, fmt.Errorf("core: feature rows %d != %d nodes", feats.Rows(), g.NumNodes())
	}
	if chunk <= 0 {
		chunk = 1024
	}
	n := int(g.NumNodes())
	cur := feats
	for li, layer := range layers {
		var out *tensor.Tensor
		for lo := 0; lo < n; lo += chunk {
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			seeds := make([]int32, hi-lo)
			for i := range seeds {
				seeds[i] = int32(lo + i)
			}
			blocks, err := sample.SampleFull(g, seeds, 1)
			if err != nil {
				return nil, err
			}
			b := blocks[0]
			h := tensor.New(b.NumSrc, cur.Cols())
			for i, nid := range b.SrcNID {
				copy(h.Row(i), cur.Row(int(nid)))
			}
			tp := tensor.NewTape()
			res := applyLayer(tp, layer, b, tensor.Leaf(h), li == len(layers)-1)
			if out == nil {
				out = tensor.New(n, res.Value.Cols())
			}
			for i := 0; i < res.Value.Rows(); i++ {
				copy(out.Row(lo+i), res.Value.Row(i))
			}
			tp.Release() // rows copied out; recycle the chunk's arena
		}
		cur = out
	}
	return cur, nil
}

// InferAccuracy runs layer-wise inference and scores the predictions on
// the given node set.
func InferAccuracy(model any, g *graph.Graph, feats *tensor.Tensor, labels []int32, nodes []int32, chunk int) (float64, error) {
	logits, err := LayerwiseInference(model, g, feats, chunk)
	if err != nil {
		return 0, err
	}
	if len(nodes) == 0 {
		return 0, fmt.Errorf("core: no nodes to score")
	}
	pred := tensor.Argmax(logits)
	correct := 0
	for _, v := range nodes {
		if pred[v] == labels[v] {
			correct++
		}
	}
	return float64(correct) / float64(len(nodes)), nil
}
