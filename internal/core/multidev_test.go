package core

import (
	"math"
	"testing"

	"betty/internal/dataset"
	"betty/internal/device"
	"betty/internal/memory"
	"betty/internal/nn"
	"betty/internal/tensor"
)

func multiSetupCost(t *testing.T, numDevices, k int, cm device.CostModel) (*Setup, *MultiDevice) {
	t.Helper()
	d := testData(t)
	s, err := BuildSAGE(d, Options{Seed: 20, Hidden: 16, Fanouts: []int{5, 5}, FixedK: k})
	if err != nil {
		t.Fatal(err)
	}
	devs := make([]*device.Device, numDevices)
	for i := range devs {
		devs[i] = device.New(device.GiB, cm)
	}
	return s, &MultiDevice{Engine: s.Engine, Devices: devs}
}

func multiSetup(t *testing.T, numDevices, k int) (*Setup, *MultiDevice) {
	t.Helper()
	return multiSetupCost(t, numDevices, k, device.DefaultCostModel())
}

// maskedCoreData is the masked-label fixture: every third node is
// unlabeled (label < 0), mirroring the train-package fixture.
func maskedCoreData(t *testing.T) *dataset.Dataset {
	t.Helper()
	d := testData(t)
	for i := range d.Labels {
		if i%3 == 0 {
			d.Labels[i] = -1
		}
	}
	return d
}

// recordingOpt wraps an optimizer and snapshots every parameter gradient
// at Step time — the merged gradient every replica holds after the
// simulated all-reduce, immediately before the update is applied.
type recordingOpt struct {
	nn.Optimizer
	params []*tensor.Var
	grads  [][]float32
}

func (r *recordingOpt) Step() {
	var snap []float32
	for _, p := range r.params {
		if p.Grad != nil {
			snap = append(snap, p.Grad.Data...)
		}
	}
	r.grads = append(r.grads, snap)
	r.Optimizer.Step()
}

func recordGrads(s *Setup) *recordingOpt {
	ro := &recordingOpt{Optimizer: s.Engine.Runner.Opt, params: s.Model.Params()}
	s.Engine.Runner.Opt = ro
	return ro
}

func TestMultiDeviceBasics(t *testing.T) {
	_, md := multiSetup(t, 2, 8)
	st, err := md.TrainEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if st.K != 8 {
		t.Fatalf("K = %d", st.K)
	}
	if st.Devices != 2 || len(st.PerDevice) != 2 {
		t.Fatal("missing per-device loads")
	}
	for d, l := range st.PerDevice {
		// Split-parallelism: every device executes one shard of every
		// micro-batch.
		if l.Batches != 8 {
			t.Fatalf("device %d executed %d of 8 shards", d, l.Batches)
		}
		if l.PeakBytes == 0 {
			t.Fatalf("device %d executed shards but recorded no peak", d)
		}
		if l.Seconds <= 0 || l.OwnedBytes <= 0 {
			t.Fatalf("device %d has no simulated work: %+v", d, l)
		}
	}
	if st.HaloBytes <= 0 {
		t.Fatal("split-parallel epoch exchanged no halo features")
	}
	if st.AllReduceSeconds <= 0 || st.AllReduceBytes <= 0 || st.AllReduceRounds <= 0 {
		t.Fatalf("no all-reduce cost for 2 devices: %+v", st)
	}
	if st.Makespan < st.AllReduceSeconds {
		t.Fatal("makespan excludes all-reduce")
	}
}

func TestMultiDeviceNeedsDevices(t *testing.T) {
	s, _ := multiSetup(t, 1, 4)
	md := &MultiDevice{Engine: s.Engine}
	if _, err := md.TrainEpoch(); err == nil {
		t.Fatal("empty device list accepted")
	}
}

// Four devices must beat one on makespan once fixed launch/transfer
// latencies are out of the picture: shard flops and host bytes divide
// across the devices, and the halo moves over the faster interconnect.
func TestMultiDeviceSpeedup(t *testing.T) {
	cm := device.CostModel{H2DBandwidth: 12e9, Throughput: 5e12}
	_, md1 := multiSetupCost(t, 1, 8, cm)
	st1, err := md1.TrainEpoch()
	if err != nil {
		t.Fatal(err)
	}
	_, md4 := multiSetupCost(t, 4, 8, cm)
	md4.Interconnect = device.Interconnect{Bandwidth: 50e9}
	st4, err := md4.TrainEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if st4.Makespan >= st1.Makespan {
		t.Fatalf("4-device makespan %v not below 1-device %v", st4.Makespan, st1.Makespan)
	}
}

// multiTrace runs two multi-device epochs over n devices and returns the
// per-epoch loss/accuracy scalars, every recorded post-all-reduce
// gradient, and the final parameters.
func multiTrace(t *testing.T, n int, mode MultiDeviceMode) ([]float64, [][]float32, []float32) {
	t.Helper()
	d := testData(t)
	s, err := BuildSAGE(d, Options{Seed: 21, Hidden: 16, Fanouts: []int{5, 5}, FixedK: 6})
	if err != nil {
		t.Fatal(err)
	}
	ro := recordGrads(s)
	devs := make([]*device.Device, n)
	for i := range devs {
		devs[i] = device.New(device.GiB, device.DefaultCostModel())
	}
	md := &MultiDevice{Engine: s.Engine, Devices: devs, Mode: mode}
	var scalars []float64
	for e := 0; e < 2; e++ {
		st, err := md.TrainEpoch()
		if err != nil {
			t.Fatal(err)
		}
		scalars = append(scalars, st.Loss, st.TrainAcc)
	}
	var params []float32
	for _, p := range s.Model.Params() {
		params = append(params, p.Value.Data...)
	}
	return scalars, ro.grads, params
}

// singleTrace is the reference: the same model trained by the plain
// single-device micro-batch epoch.
func singleTrace(t *testing.T) ([]float64, [][]float32, []float32) {
	t.Helper()
	d := testData(t)
	s, err := BuildSAGE(d, Options{Seed: 21, Hidden: 16, Fanouts: []int{5, 5}, FixedK: 6})
	if err != nil {
		t.Fatal(err)
	}
	ro := recordGrads(s)
	var scalars []float64
	for e := 0; e < 2; e++ {
		st, err := s.Engine.TrainEpochMicro()
		if err != nil {
			t.Fatal(err)
		}
		scalars = append(scalars, st.Loss, st.TrainAcc)
	}
	var params []float32
	for _, p := range s.Model.Params() {
		params = append(params, p.Value.Data...)
	}
	return scalars, ro.grads, params
}

func compareGradTraces(t *testing.T, label string, g1, g2 [][]float32) {
	t.Helper()
	if len(g1) != len(g2) {
		t.Fatalf("%s: %d vs %d optimizer steps", label, len(g1), len(g2))
	}
	for s := range g1 {
		if len(g1[s]) != len(g2[s]) {
			t.Fatalf("%s: step %d gradient sizes differ", label, s)
		}
		for i := range g1[s] {
			if math.Float32bits(g1[s][i]) != math.Float32bits(g2[s][i]) {
				t.Fatalf("%s: step %d gradient %d differs: %v vs %v",
					label, s, i, g1[s][i], g2[s][i])
			}
		}
	}
}

// TestMultiDeviceBitwiseIdentical pins the split-parallel determinism
// claim: at every tested device count the per-epoch losses and accuracies,
// the merged gradients after the all-reduce, and the post-step parameters
// are bitwise identical to single-device micro-batch training.
func TestMultiDeviceBitwiseIdentical(t *testing.T) {
	sRef, gRef, pRef := singleTrace(t)
	for _, n := range []int{1, 2, 4, 8} {
		sN, gN, pN := multiTrace(t, n, SplitParallel)
		label := "single vs " + string(rune('0'+n)) + " devices"
		compareTraces(t, label, sRef, sN, pRef, pN)
		compareGradTraces(t, label, gRef, gN)
	}
}

// TestMultiDeviceBatchParallelBitwise pins the same claim for the
// batch-parallel baseline mode: scheduling whole micro-batches onto
// devices changes no numerical result either.
func TestMultiDeviceBatchParallelBitwise(t *testing.T) {
	sRef, gRef, pRef := singleTrace(t)
	sB, gB, pB := multiTrace(t, 3, BatchParallel)
	compareTraces(t, "single vs batch-parallel", sRef, sB, pRef, pB)
	compareGradTraces(t, "single vs batch-parallel", gRef, gB)
}

// TestMultiDeviceMaskedAccuracy is the masked-label fixture for the
// accuracy-accounting fix: with a third of the nodes unlabeled, the
// multi-device epoch accuracy must equal the single-device accuracy
// bitwise — both divide by the labeled-output count. The pre-fix code
// divided by the full seed count (and weighted micro losses by raw
// destination counts), so it fails this test.
func TestMultiDeviceMaskedAccuracy(t *testing.T) {
	d := maskedCoreData(t)
	single, err := BuildSAGE(d, Options{Seed: 23, Hidden: 16, Fanouts: []int{5, 5}, FixedK: 4})
	if err != nil {
		t.Fatal(err)
	}
	stS, err := single.Engine.TrainEpochMicro()
	if err != nil {
		t.Fatal(err)
	}
	multi, err := BuildSAGE(d, Options{Seed: 23, Hidden: 16, Fanouts: []int{5, 5}, FixedK: 4})
	if err != nil {
		t.Fatal(err)
	}
	devs := []*device.Device{
		device.New(device.GiB, device.DefaultCostModel()),
		device.New(device.GiB, device.DefaultCostModel()),
	}
	md := &MultiDevice{Engine: multi.Engine, Devices: devs}
	stM, err := md.TrainEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if stM.TrainAcc <= 0 || stM.TrainAcc > 1 {
		t.Fatalf("masked multi-device accuracy %v outside (0, 1]", stM.TrainAcc)
	}
	if math.Float64bits(stM.TrainAcc) != math.Float64bits(stS.TrainAcc) {
		t.Fatalf("masked accuracy: multi %v vs single %v", stM.TrainAcc, stS.TrainAcc)
	}
	if math.Float64bits(stM.Loss) != math.Float64bits(stS.Loss) {
		t.Fatalf("masked loss: multi %v vs single %v", stM.Loss, stS.Loss)
	}
}

// Resident replicas must persist across epochs: the per-device peak must
// not grow epoch over epoch (a regression here means each epoch allocates
// a fresh model replica without freeing the previous one).
func TestMultiDeviceNoReplicaLeak(t *testing.T) {
	_, md := multiSetup(t, 2, 4)
	first, err := md.TrainEpoch()
	if err != nil {
		t.Fatal(err)
	}
	var last MultiEpochStats
	for e := 0; e < 3; e++ {
		last, err = md.TrainEpoch()
		if err != nil {
			t.Fatal(err)
		}
	}
	// allow small variation from partition differences, not replica growth
	if last.PeakBytes > first.PeakBytes*3/2 {
		t.Fatalf("peak grew %d -> %d across epochs (replica leak)", first.PeakBytes, last.PeakBytes)
	}
}

// A device too small for its share must surface the OOM.
func TestMultiDeviceOOM(t *testing.T) {
	s, _ := multiSetup(t, 1, 2)
	tiny := device.New(64*device.KiB, device.DefaultCostModel())
	md := &MultiDevice{Engine: s.Engine, Devices: []*device.Device{tiny}}
	if _, err := md.TrainEpoch(); err == nil {
		t.Fatal("tiny device did not OOM")
	}
}

// Every halo byte received by one device was sent by another: the in/out
// tallies must agree with each other and with the epoch total, and the
// host loads must cover each micro-batch's distinct inputs exactly once.
func TestMultiDeviceHaloConservation(t *testing.T) {
	_, md := multiSetup(t, 4, 8)
	st, err := md.TrainEpoch()
	if err != nil {
		t.Fatal(err)
	}
	var in, out int64
	for _, l := range st.PerDevice {
		in += l.HaloInBytes
		out += l.HaloOutBytes
	}
	if in != out || in != st.HaloBytes {
		t.Fatalf("halo bytes: in %d, out %d, total %d", in, out, st.HaloBytes)
	}
	if st.HaloBytes <= 0 || st.HaloSeconds <= 0 {
		t.Fatal("4-device split-parallel epoch exchanged no halo")
	}
	var owned int64
	for _, l := range st.PerDevice {
		owned += l.OwnedBytes
	}
	featBytes := int64(md.Engine.Runner.Data.FeatureDim()) * 4
	want := int64(st.InputNodes) * featBytes
	if owned != want {
		t.Fatalf("owned host loads %d, want %d (distinct inputs once each)", owned, want)
	}
}

// The batch-parallel LPT schedule must keep device loads in a reasonable
// band and must not exchange halos (every input is host-loaded).
func TestMultiDeviceBatchParallelBalance(t *testing.T) {
	_, md := multiSetup(t, 2, 16)
	md.Mode = BatchParallel
	st, err := md.TrainEpoch()
	if err != nil {
		t.Fatal(err)
	}
	a, b := st.PerDevice[0].Batches, st.PerDevice[1].Batches
	if a+b != 16 {
		t.Fatalf("scheduled %d batches", a+b)
	}
	if a < 4 || b < 4 {
		t.Fatalf("grossly imbalanced schedule: %d vs %d", a, b)
	}
	if st.HaloBytes != 0 {
		t.Fatalf("batch-parallel mode exchanged %d halo bytes", st.HaloBytes)
	}
}

// lptOrder must sort by peak descending with the micro-batch index as a
// deterministic tiebreak — the insertion-sort replacement keeps the exact
// order the old scheduler produced.
func TestLPTOrderDeterministic(t *testing.T) {
	est := []memory.Breakdown{
		{Params: 5}, {Params: 9}, {Params: 5}, {Params: 9}, {Params: 1},
	}
	got := lptOrder(est)
	want := []int{1, 3, 0, 2, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("lptOrder = %v, want %v", got, want)
		}
	}
}
