package core

import (
	"math"
	"testing"

	"betty/internal/device"
)

func multiSetup(t *testing.T, numDevices, k int) (*Setup, *MultiDevice) {
	t.Helper()
	d := testData(t)
	s, err := BuildSAGE(d, Options{Seed: 20, Hidden: 16, Fanouts: []int{5, 5}, FixedK: k})
	if err != nil {
		t.Fatal(err)
	}
	devs := make([]*device.Device, numDevices)
	for i := range devs {
		devs[i] = device.New(device.GiB, device.DefaultCostModel())
	}
	return s, &MultiDevice{Engine: s.Engine, Devices: devs}
}

func TestMultiDeviceBasics(t *testing.T) {
	_, md := multiSetup(t, 2, 8)
	st, err := md.TrainEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if st.K != 8 {
		t.Fatalf("K = %d", st.K)
	}
	if len(st.PerDevice) != 2 {
		t.Fatal("missing per-device loads")
	}
	total := 0
	for _, l := range st.PerDevice {
		total += l.Batches
		if l.Batches > 0 && l.PeakBytes == 0 {
			t.Fatal("device executed batches but recorded no peak")
		}
	}
	if total != 8 {
		t.Fatalf("devices executed %d of 8 micro-batches", total)
	}
	if st.AllReduceSeconds <= 0 {
		t.Fatal("no all-reduce cost for 2 devices")
	}
	if st.Makespan < st.AllReduceSeconds {
		t.Fatal("makespan excludes all-reduce")
	}
}

func TestMultiDeviceNeedsDevices(t *testing.T) {
	s, _ := multiSetup(t, 1, 4)
	md := &MultiDevice{Engine: s.Engine}
	if _, err := md.TrainEpoch(); err == nil {
		t.Fatal("empty device list accepted")
	}
}

// Two devices must beat one on makespan for a parallel-friendly K, because
// the per-device execution time roughly halves.
func TestMultiDeviceSpeedup(t *testing.T) {
	_, md1 := multiSetup(t, 1, 8)
	st1, err := md1.TrainEpoch()
	if err != nil {
		t.Fatal(err)
	}
	_, md4 := multiSetup(t, 4, 8)
	st4, err := md4.TrainEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if st4.Makespan >= st1.Makespan {
		t.Fatalf("4-device makespan %v not below 1-device %v", st4.Makespan, st1.Makespan)
	}
}

// Multi-device training is mathematically identical to single-engine
// micro-batch training: parameters after one epoch must match.
func TestMultiDeviceGradientEquivalence(t *testing.T) {
	d := testData(t)
	single, err := BuildSAGE(d, Options{Seed: 21, Hidden: 16, Fanouts: []int{5, 5}, FixedK: 6})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := single.Engine.TrainEpochMicro(); err != nil {
		t.Fatal(err)
	}

	multi, err := BuildSAGE(d, Options{Seed: 21, Hidden: 16, Fanouts: []int{5, 5}, FixedK: 6})
	if err != nil {
		t.Fatal(err)
	}
	devs := []*device.Device{
		device.New(device.GiB, device.DefaultCostModel()),
		device.New(device.GiB, device.DefaultCostModel()),
		device.New(device.GiB, device.DefaultCostModel()),
	}
	md := &MultiDevice{Engine: multi.Engine, Devices: devs}
	if _, err := md.TrainEpoch(); err != nil {
		t.Fatal(err)
	}

	ps, pm := single.Model.Params(), multi.Model.Params()
	for i := range ps {
		for j := range ps[i].Value.Data {
			a, b := float64(ps[i].Value.Data[j]), float64(pm[i].Value.Data[j])
			if math.Abs(a-b) > 1e-4*(1+math.Abs(a)) {
				t.Fatalf("param %d elem %d: single %v vs multi %v", i, j, a, b)
			}
		}
	}
}

// Resident replicas must persist across epochs: the per-device peak must
// not grow epoch over epoch (a regression here means each epoch allocates
// a fresh model replica without freeing the previous one).
func TestMultiDeviceNoReplicaLeak(t *testing.T) {
	_, md := multiSetup(t, 2, 4)
	first, err := md.TrainEpoch()
	if err != nil {
		t.Fatal(err)
	}
	var last MultiEpochStats
	for e := 0; e < 3; e++ {
		last, err = md.TrainEpoch()
		if err != nil {
			t.Fatal(err)
		}
	}
	// allow small variation from partition differences, not replica growth
	if last.PeakBytes > first.PeakBytes*3/2 {
		t.Fatalf("peak grew %d -> %d across epochs (replica leak)", first.PeakBytes, last.PeakBytes)
	}
}

// A device too small for its share must surface the OOM.
func TestMultiDeviceOOM(t *testing.T) {
	s, _ := multiSetup(t, 1, 2)
	tiny := device.New(64*device.KiB, device.DefaultCostModel())
	md := &MultiDevice{Engine: s.Engine, Devices: []*device.Device{tiny}}
	if _, err := md.TrainEpoch(); err == nil {
		t.Fatal("tiny device did not OOM")
	}
}

// The LPT scheduler must keep the device loads within a reasonable band.
func TestMultiDeviceBalance(t *testing.T) {
	_, md := multiSetup(t, 2, 16)
	st, err := md.TrainEpoch()
	if err != nil {
		t.Fatal(err)
	}
	a, b := st.PerDevice[0].Batches, st.PerDevice[1].Batches
	if a+b != 16 {
		t.Fatalf("scheduled %d batches", a+b)
	}
	if a < 4 || b < 4 {
		t.Fatalf("grossly imbalanced schedule: %d vs %d", a, b)
	}
}
