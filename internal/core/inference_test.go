package core

import (
	"math"
	"testing"

	"betty/internal/sample"
	"betty/internal/tensor"
)

// Layer-wise inference over the full graph must equal direct forward with
// full-neighbor sampling, because both compute the exact (unsampled) GNN.
func TestLayerwiseInferenceMatchesDirectForward(t *testing.T) {
	d := testData(t)
	s, err := BuildSAGE(d, Options{Seed: 30, Hidden: 16, Fanouts: []int{-1, -1}})
	if err != nil {
		t.Fatal(err)
	}
	// direct: full 2-hop neighborhood of a few probe nodes
	probes := []int32{0, 17, 99, 500}
	blocks, err := sample.SampleFull(d.Graph, probes, 2)
	if err != nil {
		t.Fatal(err)
	}
	x, err := d.GatherFeatures(blocks[0].SrcNID)
	if err != nil {
		t.Fatal(err)
	}
	tp := tensor.NewTape()
	direct := s.Model.Forward(tp, blocks, tensor.Leaf(x))

	// layer-wise over the whole graph with a small chunk size
	logits, err := LayerwiseInference(s.Model, d.Graph, d.Features, 137)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range probes {
		for j := 0; j < logits.Cols(); j++ {
			a := float64(direct.Value.At(i, j))
			b := float64(logits.At(int(v), j))
			if math.Abs(a-b) > 1e-4*(1+math.Abs(a)) {
				t.Fatalf("node %d logit %d: direct %v vs layer-wise %v", v, j, a, b)
			}
		}
	}
}

func TestLayerwiseInferenceGCNAndGAT(t *testing.T) {
	d := testData(t)
	for _, build := range []func() (*Setup, error){
		func() (*Setup, error) { return BuildGCN(d, Options{Seed: 31, Hidden: 8, Fanouts: []int{-1, -1}}) },
		func() (*Setup, error) {
			return BuildGAT(d, Options{Seed: 31, Hidden: 8, Heads: 2, Fanouts: []int{-1, -1}})
		},
	} {
		s, err := build()
		if err != nil {
			t.Fatal(err)
		}
		logits, err := LayerwiseInference(s.Model, d.Graph, d.Features, 211)
		if err != nil {
			t.Fatal(err)
		}
		if int32(logits.Rows()) != d.Graph.NumNodes() || logits.Cols() != d.NumClasses {
			t.Fatalf("logit shape %dx%d", logits.Rows(), logits.Cols())
		}
	}
}

// BatchInference must be bitwise identical to the model's own Forward —
// it is the shared forward implementation the serving path relies on.
func TestBatchInferenceMatchesModelForward(t *testing.T) {
	d := testData(t)
	for name, build := range map[string]func() (*Setup, error){
		"sage": func() (*Setup, error) { return BuildSAGE(d, Options{Seed: 40, Hidden: 16, Fanouts: []int{4, 6}}) },
		"gcn":  func() (*Setup, error) { return BuildGCN(d, Options{Seed: 41, Hidden: 8, Fanouts: []int{4, 6}}) },
		"gat": func() (*Setup, error) {
			return BuildGAT(d, Options{Seed: 42, Hidden: 8, Heads: 2, Fanouts: []int{4, 6}})
		},
	} {
		s, err := build()
		if err != nil {
			t.Fatal(err)
		}
		blocks, err := s.Engine.Sampler.Sample(d.Graph, []int32{3, 8, 120, 700})
		if err != nil {
			t.Fatal(err)
		}
		x, err := d.GatherFeatures(blocks[0].SrcNID)
		if err != nil {
			t.Fatal(err)
		}
		tp := tensor.NewTape()
		want := s.Model.Forward(tp, blocks, tensor.Leaf(x))
		got, err := BatchInference(s.Model, blocks, x)
		if err != nil {
			t.Fatal(err)
		}
		if got.Rows() != want.Value.Rows() || got.Cols() != want.Value.Cols() {
			t.Fatalf("%s: shape %dx%d, want %dx%d", name, got.Rows(), got.Cols(), want.Value.Rows(), want.Value.Cols())
		}
		for i := range got.Data {
			if math.Float32bits(got.Data[i]) != math.Float32bits(want.Value.Data[i]) {
				t.Fatalf("%s: logit %d differs: %v vs %v", name, i, got.Data[i], want.Value.Data[i])
			}
		}
		tp.Release()
	}
}

func TestBatchInferenceErrors(t *testing.T) {
	d := testData(t)
	s, err := BuildSAGE(d, Options{Seed: 43, Hidden: 8, Fanouts: []int{4, 4}})
	if err != nil {
		t.Fatal(err)
	}
	blocks, err := s.Engine.Sampler.Sample(d.Graph, []int32{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	x, err := d.GatherFeatures(blocks[0].SrcNID)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BatchInference(struct{}{}, blocks, x); err == nil {
		t.Fatal("unsupported model accepted")
	}
	if _, err := BatchInference(s.Model, blocks[:1], x); err == nil {
		t.Fatal("block/layer count mismatch accepted")
	}
	if _, err := BatchInference(s.Model, blocks, tensor.New(1, d.FeatureDim())); err == nil {
		t.Fatal("feature row mismatch accepted")
	}
}

func TestLayerwiseInferenceErrors(t *testing.T) {
	d := testData(t)
	if _, err := LayerwiseInference(struct{}{}, d.Graph, d.Features, 0); err == nil {
		t.Fatal("unsupported model accepted")
	}
	s, err := BuildSAGE(d, Options{Seed: 32, Hidden: 8, Fanouts: []int{5, 5}})
	if err != nil {
		t.Fatal(err)
	}
	bad := tensor.New(3, d.FeatureDim())
	if _, err := LayerwiseInference(s.Model, d.Graph, bad, 0); err == nil {
		t.Fatal("feature shape mismatch accepted")
	}
}

func TestInferAccuracy(t *testing.T) {
	d := testData(t)
	s, err := BuildSAGE(d, Options{Seed: 33, Hidden: 32, Fanouts: []int{8, 8}, FixedK: 2, LR: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 8; e++ {
		if _, err := s.Engine.TrainEpochMicro(); err != nil {
			t.Fatal(err)
		}
	}
	acc, err := InferAccuracy(s.Model, d.Graph, d.Features, d.Labels, d.TestIdx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 2.0/float64(d.NumClasses) {
		t.Fatalf("inference accuracy %v no better than chance", acc)
	}
	if _, err := InferAccuracy(s.Model, d.Graph, d.Features, d.Labels, nil, 0); err == nil {
		t.Fatal("empty node set accepted")
	}
}

// GCN trains end to end through the Betty engine.
func TestGCNTrainsWithBetty(t *testing.T) {
	d := testData(t)
	s, err := BuildGCN(d, Options{Seed: 34, Hidden: 16, Fanouts: []int{5, 5}, FixedK: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Engine.Spec.IsGCN {
		t.Fatal("GCN spec not marked")
	}
	var first, last float64
	for e := 0; e < 8; e++ {
		st, err := s.Engine.TrainEpochMicro()
		if err != nil {
			t.Fatal(err)
		}
		if e == 0 {
			first = st.Loss
		}
		last = st.Loss
	}
	if last >= first {
		t.Fatalf("GCN loss did not decrease: %v -> %v", first, last)
	}
}
