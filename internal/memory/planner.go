package memory

import (
	"errors"
	"fmt"

	"betty/internal/graph"
	"betty/internal/obs"
	"betty/internal/reg"
)

// ErrCannotFit is returned when no partition count up to MaxK brings the
// largest micro-batch under the capacity.
var ErrCannotFit = errors.New("memory: batch cannot fit capacity at any partition count")

// Planner implements the memory-aware batch re-partitioning loop of
// §4.4.3: K-way partition the batch, estimate every micro-batch, and try
// (K+1)-way if the largest estimate violates the capacity constraint.
type Planner struct {
	// Capacity is the device memory budget in bytes.
	Capacity int64
	// Partitioner splits the batch's output nodes (Betty's REG
	// partitioning in the paper, but any BatchPartitioner works).
	Partitioner reg.BatchPartitioner
	// Spec is the model description for estimation.
	Spec Spec
	// StartK is the first partition count tried (default 1).
	StartK int
	// MaxK caps the search (default: number of output nodes).
	MaxK int
	// SafetyMargin inflates estimates by this fraction to absorb
	// estimation error (§6.7 discusses folding the error into planning);
	// 0 means no margin.
	SafetyMargin float64
	// Obs, when non-nil, receives partition/estimate spans per evaluated K
	// plus planning metrics (plan.attempts, plan.repartitions, plan.k).
	Obs *obs.Registry
	// Peak selects which breakdown component sum is compared against the
	// capacity; nil means Breakdown.Peak (training: forward + backward).
	// The serving planner sets Breakdown.ForwardPeak, since inference
	// materializes no gradients or optimizer states.
	Peak func(Breakdown) int64
}

// peakOf applies the configured peak function (default Breakdown.Peak).
func (pl *Planner) peakOf(b Breakdown) int64 {
	if pl.Peak != nil {
		return pl.Peak(b)
	}
	return b.Peak()
}

// Plan is the planner's result: the chosen partition count, the output
// groups, the sliced micro-batches, and their estimates.
type Plan struct {
	K         int
	Groups    [][]int32
	Micro     [][]*graph.Block
	Estimates []Breakdown
	// MaxPeak is the largest estimated micro-batch peak in bytes.
	MaxPeak int64
	// Attempts is how many partition counts were evaluated.
	Attempts int
}

// Redundancy returns the duplicated input nodes versus the full batch.
func (p *Plan) Redundancy(full []*graph.Block) int {
	return graph.InputRedundancy(full, p.Micro)
}

// Plan searches for the smallest K (from StartK upward) whose largest
// estimated micro-batch fits the capacity.
func (pl *Planner) Plan(full []*graph.Block) (*Plan, error) {
	if pl.Partitioner == nil {
		return nil, fmt.Errorf("memory: planner needs a partitioner")
	}
	if pl.Capacity <= 0 {
		return nil, fmt.Errorf("memory: capacity must be positive")
	}
	if len(full) == 0 {
		return nil, fmt.Errorf("memory: empty batch")
	}
	last := full[len(full)-1]
	startK := pl.StartK
	if startK <= 0 {
		startK = 1
	}
	maxK := pl.MaxK
	if maxK <= 0 || maxK > last.NumDst {
		maxK = last.NumDst
	}
	attempts := 0
	for k := startK; k <= maxK; k++ {
		attempts++
		pl.Obs.Add("plan.attempts", 1)
		plan, err := pl.evaluate(full, k)
		if err != nil {
			return nil, err
		}
		plan.Attempts = attempts
		margin := int64(float64(plan.MaxPeak) * pl.SafetyMargin)
		if plan.MaxPeak+margin <= pl.Capacity {
			pl.Obs.Add("plan.repartitions", int64(attempts-1))
			pl.Obs.Set("plan.k", int64(plan.K))
			pl.Obs.Set("plan.max_peak_bytes", plan.MaxPeak)
			return plan, nil
		}
	}
	return nil, fmt.Errorf("%w: capacity %d bytes, tried K=%d..%d",
		ErrCannotFit, pl.Capacity, startK, maxK)
}

// evaluate partitions into exactly k micro-batches and estimates each.
func (pl *Planner) evaluate(full []*graph.Block, k int) (*Plan, error) {
	last := full[len(full)-1]
	groups, err := pl.partitionGroups(last, k)
	if err != nil {
		return nil, err
	}
	plan := &Plan{K: k, Groups: groups}
	// The estimate span covers slicing plus estimation of all K
	// micro-batches — the full cost of evaluating one candidate K.
	esp := pl.Obs.StartSpan(obs.PhaseEstimate).SetInt("k", int64(k))
	defer esp.End()
	for gi, sel := range groups {
		micro, err := graph.SliceBatch(full, sel)
		if err != nil {
			return nil, fmt.Errorf("memory: slicing group %d: %w", gi, err)
		}
		est, err := Estimate(micro, pl.Spec)
		if err != nil {
			return nil, err
		}
		plan.Micro = append(plan.Micro, micro)
		plan.Estimates = append(plan.Estimates, est)
		if p := pl.peakOf(est); p > plan.MaxPeak {
			plan.MaxPeak = p
		}
	}
	esp.SetInt("max_peak_bytes", plan.MaxPeak)
	return plan, nil
}

// partitionGroups splits the last block's outputs into k groups under a
// PhasePartition span (K = 1 needs no partitioner: one group of all).
func (pl *Planner) partitionGroups(last *graph.Block, k int) ([][]int32, error) {
	if k == 1 {
		all := make([]int32, last.NumDst)
		for i := range all {
			all[i] = int32(i)
		}
		return [][]int32{all}, nil
	}
	sp := pl.Obs.StartSpan(obs.PhasePartition).
		SetInt("k", int64(k)).
		SetInt("outputs", int64(last.NumDst))
	defer sp.End()
	groups, err := pl.Partitioner.PartitionBatch(last, k)
	if err != nil {
		return nil, fmt.Errorf("memory: partitioning K=%d: %w", k, err)
	}
	return groups, nil
}

// EvaluateFixedK returns the plan for an explicit partition count without
// searching — used by experiments that sweep K directly.
func (pl *Planner) EvaluateFixedK(full []*graph.Block, k int) (*Plan, error) {
	if pl.Partitioner == nil {
		return nil, fmt.Errorf("memory: planner needs a partitioner")
	}
	if len(full) == 0 {
		return nil, fmt.Errorf("memory: empty batch")
	}
	pl.Obs.Add("plan.attempts", 1)
	plan, err := pl.evaluate(full, k)
	if err != nil {
		return nil, err
	}
	plan.Attempts = 1
	pl.Obs.Set("plan.k", int64(plan.K))
	pl.Obs.Set("plan.max_peak_bytes", plan.MaxPeak)
	return plan, nil
}
