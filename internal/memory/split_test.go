package memory

import "testing"

func TestSplitPeakSingleDevice(t *testing.T) {
	b := Breakdown{Params: 100, OptStates: 200, InputFeatures: 400,
		Labels: 40, Blocks: 120, Hidden: 80, Aggregator: 60, Gradients: 100}
	if got := SplitPeak(1)(b); got != b.Peak() {
		t.Fatalf("SplitPeak(1) = %d, want Peak %d", got, b.Peak())
	}
	if got := SplitPeak(0)(b); got != b.Peak() {
		t.Fatalf("SplitPeak(0) = %d, want Peak %d", got, b.Peak())
	}
}

func TestSplitPeakDividesShardedComponents(t *testing.T) {
	b := Breakdown{Params: 100, OptStates: 200, InputFeatures: 400,
		Labels: 40, Blocks: 120, Hidden: 80, Aggregator: 60, Gradients: 100}
	// Params, OptStates, Gradients are replicated per device; the batch
	// tensors divide (ceiling) across 4 devices. Gradients (100) exceed
	// the divided aggregator working set (15), so they are the transient.
	want := int64(100+200) + int64(400+40+120+80)/4 + 100
	if got := SplitPeak(4)(b); got != want {
		t.Fatalf("SplitPeak(4) = %d, want %d", got, want)
	}
	// Odd sizes round up, never down.
	odd := Breakdown{InputFeatures: 10}
	if got := SplitPeak(3)(odd); got != 4 {
		t.Fatalf("ceiling division: got %d, want 4", got)
	}
}

// More devices never need more per-device memory.
func TestSplitPeakMonotone(t *testing.T) {
	b := Breakdown{Params: 123, OptStates: 246, InputFeatures: 4001,
		Labels: 401, Blocks: 1203, Hidden: 803, Aggregator: 2999, Gradients: 123}
	prev := SplitPeak(1)(b)
	for d := 2; d <= 16; d++ {
		cur := SplitPeak(d)(b)
		if cur > prev {
			t.Fatalf("SplitPeak(%d) = %d > SplitPeak(%d) = %d", d, cur, d-1, prev)
		}
		prev = cur
	}
}
