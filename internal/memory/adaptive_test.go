package memory

import "testing"

func TestTrackerStartsWithHeadroomOnly(t *testing.T) {
	tr := NewErrorTracker()
	if tr.Observations() {
		t.Fatal("fresh tracker claims observations")
	}
	if m := tr.Margin(); m != 0.02 {
		t.Fatalf("initial margin %v, want headroom 0.02", m)
	}
}

func TestTrackerLearnsUnderestimation(t *testing.T) {
	tr := NewErrorTracker()
	tr.Observe(100, 110) // 10% underestimate
	m := tr.Margin()
	if m < 0.10 || m > 0.15 {
		t.Fatalf("margin %v should reflect the 10%% underestimate plus headroom", m)
	}
	// converging observations pull the EMA down
	for i := 0; i < 10; i++ {
		tr.Observe(100, 100)
	}
	if m2 := tr.Margin(); m2 > 0.03 {
		t.Fatalf("margin %v did not decay after accurate observations", m2)
	}
}

func TestTrackerIgnoresOverestimates(t *testing.T) {
	tr := NewErrorTracker()
	tr.Observe(200, 100) // estimator was conservative
	if m := tr.Margin(); m != 0.02 {
		t.Fatalf("overestimate should leave only headroom, got %v", m)
	}
}

func TestTrackerIgnoresDegenerateInputs(t *testing.T) {
	tr := NewErrorTracker()
	tr.Observe(0, 100)
	tr.Observe(100, 0)
	tr.Observe(-1, -1)
	if tr.Observations() {
		t.Fatal("degenerate observations were recorded")
	}
}

func TestTrackerEMASmoothing(t *testing.T) {
	tr := NewErrorTracker()
	tr.Alpha = 0.5
	tr.Observe(100, 120) // 20%
	tr.Observe(100, 100) // 0%
	// EMA: 0.5*0 + 0.5*0.2 = 0.10 (+ headroom)
	m := tr.Margin()
	if m < 0.11 || m > 0.13 {
		t.Fatalf("EMA margin %v, want about 0.12", m)
	}
}
