package memory

// SplitPeak returns a Planner peak functional for split-parallel
// multi-device execution (GSplit-style): every planned micro-batch is
// itself partitioned across the devices, so a single device holds only its
// shard of the batch data while the model state is fully replicated.
//
// Replicated per device: parameters, optimizer states, and the gradient
// accumulator (every device folds a full-width gradient). Divided across
// devices: input features, labels, block structure, per-layer hidden
// outputs, and the aggregator working set. The division uses the ceiling
// share, which a balanced partition achieves to within one node; shard
// imbalance and halo duplication beyond that are absorbed by the planner's
// SafetyMargin, exactly like the estimator's other modeling error.
func SplitPeak(devices int) func(Breakdown) int64 {
	return func(b Breakdown) int64 {
		if devices <= 1 {
			return b.Peak()
		}
		d := int64(devices)
		share := func(v int64) int64 { return (v + d - 1) / d }
		stable := b.Params + b.OptStates +
			share(b.InputFeatures) + share(b.Labels) + share(b.Blocks) + share(b.Hidden)
		transient := share(b.Aggregator)
		if b.Gradients > transient {
			transient = b.Gradients
		}
		return stable + transient
	}
}
