package memory

import (
	"errors"
	"testing"

	"betty/internal/graph"
	"betty/internal/nn"
	"betty/internal/reg"
	"betty/internal/rng"
	"betty/internal/sample"
)

// testGraph builds a reproducible scale-free-ish random graph.
func testGraph(t *testing.T, seed uint64, n int32, m int) *graph.Graph {
	t.Helper()
	r := rng.New(seed)
	src := make([]int32, m)
	dst := make([]int32, m)
	for i := range src {
		src[i] = r.Int31n(n)
		dst[i] = r.Int31n(n)
	}
	g, err := graph.FromEdges(n, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func sampleBatch(t *testing.T, g *graph.Graph, seeds []int32, fanouts []int) []*graph.Block {
	t.Helper()
	blocks, err := sample.New(fanouts, 1).Sample(g, seeds)
	if err != nil {
		t.Fatal(err)
	}
	return blocks
}

func sageSpec(t *testing.T, cfg nn.Config) Spec {
	t.Helper()
	r := rng.New(2)
	m, err := nn.NewGraphSAGE(cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	return SpecFromSAGE(m, nn.NewAdam(m, 0.01))
}

func seedsRange(n int) []int32 {
	s := make([]int32, n)
	for i := range s {
		s[i] = int32(i)
	}
	return s
}

func TestEstimateHandComputed(t *testing.T) {
	defer nn.SetFused(nn.SetFused(false)) // constants below cost the unfused chains
	// one layer, one block: 2 dst, 3 src, 4 edges
	b := &graph.Block{
		NumSrc:   3,
		NumDst:   2,
		Ptr:      []int64{0, 2, 4},
		SrcLocal: []int32{1, 2, 0, 2},
		EID:      []int32{-1, -1, -1, -1},
		SrcNID:   []int32{5, 6, 7},
		DstNID:   []int32{5, 6},
	}
	spec := Spec{
		Model:            nn.Config{InDim: 10, Hidden: 8, OutDim: 4, Layers: 1, Aggregator: nn.Mean},
		ParamsGNN:        100,
		ParamsAgg:        0,
		OptStatePerParam: 2,
	}
	est, err := Estimate([]*graph.Block{b}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if est.Params != 400 {
		t.Fatalf("Params = %d", est.Params)
	}
	if est.InputFeatures != 3*10*4 {
		t.Fatalf("InputFeatures = %d", est.InputFeatures)
	}
	if est.Labels != 2*4 {
		t.Fatalf("Labels = %d", est.Labels)
	}
	if est.Blocks != 4*3*4 {
		t.Fatalf("Blocks = %d", est.Blocks)
	}
	// single layer: out dim = OutDim = 4, two destinations
	if est.Hidden != 2*4*4 {
		t.Fatalf("Hidden = %d", est.Hidden)
	}
	// mean-layer intermediates: self+concat (3NF) + combine (2NO) +
	// segment sum and scale (2NF) = 116 values, minus the N*O counted in
	// Hidden: (116 - 8) * 4 bytes
	if est.Aggregator != (3*2*10+2*2*4+2*2*10-2*4)*4 {
		t.Fatalf("Aggregator = %d", est.Aggregator)
	}
	if est.Gradients != 400 || est.OptStates != 800 {
		t.Fatalf("Gradients/OptStates = %d/%d", est.Gradients, est.OptStates)
	}
	// peak: stable + max(agg=432, grads=400) = stable + 432
	stable := est.Params + est.InputFeatures + est.Labels + est.Blocks + est.Hidden + est.OptStates
	if est.Peak() != stable+432 {
		t.Fatalf("Peak = %d, want %d", est.Peak(), stable+432)
	}
	if est.Total() != stable+est.Aggregator+est.Gradients {
		t.Fatal("Total mismatch")
	}
}

func TestEstimateLSTMEquation5(t *testing.T) {
	defer nn.SetFused(nn.SetFused(false)) // constants below cost the unfused chains
	b := &graph.Block{
		NumSrc:   4,
		NumDst:   2,
		Ptr:      []int64{0, 3, 5},
		SrcLocal: []int32{1, 2, 3, 0, 2},
		EID:      []int32{-1, -1, -1, -1, -1},
		SrcNID:   []int32{1, 2, 3, 4},
		DstNID:   []int32{1, 2},
	}
	spec := Spec{
		Model:     nn.Config{InDim: 6, Hidden: 6, OutDim: 3, Layers: 1, Aggregator: nn.LSTM},
		ParamsGNN: 10,
	}
	est, err := Estimate([]*graph.Block{b}, spec)
	if err != nil {
		t.Fatal(err)
	}
	// Eq 5: sum_i L_i*B_i = E = 5 edges, H = 6, x30 intermediates = 900
	// values, plus bucket scatters (degrees {3,2} -> 2 buckets -> 3*N*F=36)
	// plus the shared pipeline 3NF+2NO = 48, minus N*O counted in Hidden.
	want := int64(5*6*30+36+3*2*6+2*2*3-2*3) * 4
	if est.Aggregator != want {
		t.Fatalf("LSTM aggregator estimate = %d, want %d", est.Aggregator, want)
	}
}

func TestEstimateErrors(t *testing.T) {
	spec := sageSpec(t, nn.Config{InDim: 4, Hidden: 4, OutDim: 2, Layers: 2, Aggregator: nn.Mean})
	if _, err := Estimate(nil, spec); err == nil {
		t.Fatal("empty batch accepted")
	}
	b := &graph.Block{NumSrc: 1, NumDst: 1, Ptr: []int64{0, 0}, SrcNID: []int32{0}, DstNID: []int32{0}}
	if _, err := Estimate([]*graph.Block{b}, spec); err == nil {
		t.Fatal("layer count mismatch accepted")
	}
}

// Figure 2 trends: LSTM > Pool > Mean on the same batch; deeper models,
// wider hidden sizes, and larger fanouts all increase the estimate.
func TestEstimateMonotoneTrends(t *testing.T) {
	g := testGraph(t, 3, 3000, 40000)
	seeds := seedsRange(256)

	base := nn.Config{InDim: 32, Hidden: 32, OutDim: 8, Layers: 2}
	batch2 := sampleBatch(t, g, seeds, []int{10, 10})

	est := func(cfg nn.Config, blocks []*graph.Block) int64 {
		e, err := Estimate(blocks, sageSpec(t, cfg))
		if err != nil {
			t.Fatal(err)
		}
		return e.Peak()
	}

	cfgMean, cfgPool, cfgLSTM := base, base, base
	cfgMean.Aggregator = nn.Mean
	cfgPool.Aggregator = nn.Pool
	cfgLSTM.Aggregator = nn.LSTM
	mean, pool, lstm := est(cfgMean, batch2), est(cfgPool, batch2), est(cfgLSTM, batch2)
	if !(mean < pool && pool < lstm) {
		t.Fatalf("aggregator ordering violated: mean=%d pool=%d lstm=%d", mean, pool, lstm)
	}

	deep := base
	deep.Aggregator = nn.Mean
	deep.Layers = 3
	batch3 := sampleBatch(t, g, seeds, []int{10, 10, 10})
	if est(cfgMean, batch2) >= est(deep, batch3) {
		t.Fatal("deeper model should cost more")
	}

	wide := cfgMean
	wide.Hidden = 128
	wide.InDim = 128
	if est(cfgMean, batch2) >= est(wide, batch2) {
		t.Fatal("wider model should cost more")
	}

	batchBigFanout := sampleBatch(t, g, seeds, []int{25, 25})
	if est(cfgMean, batch2) >= est(cfgMean, batchBigFanout) {
		t.Fatal("larger fanout should cost more")
	}
}

func TestPlannerFindsMinimalK(t *testing.T) {
	g := testGraph(t, 5, 2000, 30000)
	full := sampleBatch(t, g, seedsRange(200), []int{10, 10})
	spec := sageSpec(t, nn.Config{InDim: 64, Hidden: 64, OutDim: 8, Layers: 2, Aggregator: nn.Mean})

	fullEst, err := Estimate(full, spec)
	if err != nil {
		t.Fatal(err)
	}
	// capacity below the full batch forces partitioning
	capacity := fullEst.Peak() * 2 / 3
	pl := &Planner{
		Capacity:    capacity,
		Partitioner: reg.BettyBatch{Seed: 1},
		Spec:        spec,
	}
	plan, err := pl.Plan(full)
	if err != nil {
		t.Fatal(err)
	}
	if plan.K < 2 {
		t.Fatalf("expected K >= 2, got %d", plan.K)
	}
	if plan.MaxPeak > capacity {
		t.Fatalf("plan violates capacity: %d > %d", plan.MaxPeak, capacity)
	}
	if len(plan.Micro) != plan.K || len(plan.Estimates) != plan.K {
		t.Fatal("plan structure inconsistent")
	}
	if plan.Attempts != plan.K {
		t.Fatalf("K+1 search should try every count: attempts=%d K=%d", plan.Attempts, plan.K)
	}
	// K-1 must NOT fit (minimality)
	prev, err := pl.EvaluateFixedK(full, plan.K-1)
	if err != nil {
		t.Fatal(err)
	}
	if prev.MaxPeak <= capacity {
		t.Fatalf("K-1=%d already fits (%d <= %d); planner overshot", plan.K-1, prev.MaxPeak, capacity)
	}
	if plan.Redundancy(full) < 0 {
		t.Fatal("negative redundancy")
	}
}

func TestPlannerHugeCapacityKeepsK1(t *testing.T) {
	g := testGraph(t, 6, 500, 4000)
	full := sampleBatch(t, g, seedsRange(50), []int{5, 5})
	spec := sageSpec(t, nn.Config{InDim: 8, Hidden: 8, OutDim: 4, Layers: 2, Aggregator: nn.Mean})
	pl := &Planner{Capacity: 1 << 40, Partitioner: reg.BettyBatch{}, Spec: spec}
	plan, err := pl.Plan(full)
	if err != nil {
		t.Fatal(err)
	}
	if plan.K != 1 || plan.Attempts != 1 {
		t.Fatalf("K=%d attempts=%d, want 1/1", plan.K, plan.Attempts)
	}
}

func TestPlannerCannotFit(t *testing.T) {
	g := testGraph(t, 7, 500, 4000)
	full := sampleBatch(t, g, seedsRange(20), []int{5, 5})
	spec := sageSpec(t, nn.Config{InDim: 8, Hidden: 8, OutDim: 4, Layers: 2, Aggregator: nn.Mean})
	pl := &Planner{Capacity: 100, Partitioner: reg.BettyBatch{}, Spec: spec, MaxK: 8}
	_, err := pl.Plan(full)
	if !errors.Is(err, ErrCannotFit) {
		t.Fatalf("want ErrCannotFit, got %v", err)
	}
}

func TestPlannerValidation(t *testing.T) {
	spec := sageSpec(t, nn.Config{InDim: 4, Hidden: 4, OutDim: 2, Layers: 1, Aggregator: nn.Mean})
	if _, err := (&Planner{Capacity: 10, Spec: spec}).Plan(nil); err == nil {
		t.Fatal("nil partitioner accepted")
	}
	pl := &Planner{Capacity: 0, Partitioner: reg.BettyBatch{}, Spec: spec}
	if _, err := pl.Plan(nil); err == nil {
		t.Fatal("zero capacity accepted")
	}
}

func TestSafetyMarginRaisesK(t *testing.T) {
	g := testGraph(t, 8, 2000, 30000)
	full := sampleBatch(t, g, seedsRange(200), []int{10, 10})
	spec := sageSpec(t, nn.Config{InDim: 64, Hidden: 64, OutDim: 8, Layers: 2, Aggregator: nn.Mean})
	fullEst, _ := Estimate(full, spec)
	capacity := fullEst.Peak() * 3 / 4

	noMargin := &Planner{Capacity: capacity, Partitioner: reg.BettyBatch{Seed: 2}, Spec: spec}
	withMargin := &Planner{Capacity: capacity, Partitioner: reg.BettyBatch{Seed: 2}, Spec: spec, SafetyMargin: 0.3}
	p1, err := noMargin.Plan(full)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := withMargin.Plan(full)
	if err != nil {
		t.Fatal(err)
	}
	if p2.K < p1.K {
		t.Fatalf("margin lowered K: %d < %d", p2.K, p1.K)
	}
}

// Splitting reduces the max micro-batch estimate monotonically "in trend":
// K=4 should estimate below K=1.
func TestPartitioningReducesPeak(t *testing.T) {
	g := testGraph(t, 9, 2000, 30000)
	full := sampleBatch(t, g, seedsRange(128), []int{10, 10})
	spec := sageSpec(t, nn.Config{InDim: 64, Hidden: 64, OutDim: 8, Layers: 2, Aggregator: nn.Mean})
	pl := &Planner{Capacity: 1 << 40, Partitioner: reg.BettyBatch{Seed: 3}, Spec: spec}
	p1, err := pl.EvaluateFixedK(full, 1)
	if err != nil {
		t.Fatal(err)
	}
	p4, err := pl.EvaluateFixedK(full, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p4.MaxPeak >= p1.MaxPeak {
		t.Fatalf("K=4 peak %d not below K=1 peak %d", p4.MaxPeak, p1.MaxPeak)
	}
}

// ForwardPeak must exclude backward-only components and labels, and the
// planner's Peak override must change which budget the search enforces.
func TestForwardPeakAndPlannerOverride(t *testing.T) {
	g := testGraph(t, 8, 2000, 30000)
	full := sampleBatch(t, g, seedsRange(200), []int{10, 10})
	spec := sageSpec(t, nn.Config{InDim: 64, Hidden: 64, OutDim: 8, Layers: 2, Aggregator: nn.Mean})

	est, err := Estimate(full, spec)
	if err != nil {
		t.Fatal(err)
	}
	fwd := est.ForwardPeak()
	if fwd >= est.Peak() {
		t.Fatalf("forward peak %d not below training peak %d", fwd, est.Peak())
	}
	want := est.Params + est.InputFeatures + est.Blocks + est.Hidden + est.Aggregator
	if fwd != want {
		t.Fatalf("ForwardPeak = %d, want component sum %d", fwd, want)
	}

	// A capacity between the forward peak and the training peak: the
	// default planner must split, the forward-only planner must not.
	capacity := (fwd + est.Peak()) / 2
	if capacity <= fwd {
		t.Skip("spec too small to separate forward and training peaks")
	}
	train := &Planner{Capacity: capacity, Partitioner: reg.BettyBatch{Seed: 1}, Spec: spec}
	tp, err := train.Plan(full)
	if err != nil {
		t.Fatal(err)
	}
	if tp.K < 2 {
		t.Fatalf("training planner kept K=%d under capacity %d (peak %d)", tp.K, capacity, est.Peak())
	}
	infer := &Planner{
		Capacity:    capacity,
		Partitioner: reg.BettyBatch{Seed: 1},
		Spec:        spec,
		Peak:        Breakdown.ForwardPeak,
	}
	ip, err := infer.Plan(full)
	if err != nil {
		t.Fatal(err)
	}
	if ip.K != 1 {
		t.Fatalf("forward-only planner split to K=%d though forward peak %d <= %d", ip.K, fwd, capacity)
	}
	if ip.MaxPeak != fwd {
		t.Fatalf("forward-only MaxPeak = %d, want %d", ip.MaxPeak, fwd)
	}
}

func TestSpecForInference(t *testing.T) {
	r := rng.New(11)
	sage, err := nn.NewGraphSAGE(nn.Config{InDim: 8, Hidden: 8, OutDim: 4, Layers: 2, Aggregator: nn.Mean}, r)
	if err != nil {
		t.Fatal(err)
	}
	s, err := SpecForInference(sage)
	if err != nil {
		t.Fatal(err)
	}
	if s.OptStatePerParam != 0 {
		t.Fatalf("inference spec carries optimizer states: %+v", s)
	}
	if s.ParamsGNN+s.ParamsAgg != nn.ParamCount(sage) {
		t.Fatal("inference spec params do not sum to model params")
	}
	gat, err := nn.NewGAT(nn.Config{InDim: 8, Hidden: 8, OutDim: 4, Layers: 2, Heads: 2}, r)
	if err != nil {
		t.Fatal(err)
	}
	gs, err := SpecForInference(gat)
	if err != nil {
		t.Fatal(err)
	}
	if !gs.IsGAT {
		t.Fatalf("GAT inference spec not marked: %+v", gs)
	}
	if _, err := SpecForInference(struct{}{}); err == nil {
		t.Fatal("unsupported model accepted")
	}
}

func TestSpecFromModels(t *testing.T) {
	r := rng.New(10)
	sage, err := nn.NewGraphSAGE(nn.Config{InDim: 8, Hidden: 8, OutDim: 4, Layers: 2, Aggregator: nn.LSTM}, r)
	if err != nil {
		t.Fatal(err)
	}
	s := SpecFromSAGE(sage, nn.NewAdam(sage, 0.01))
	if s.ParamsAgg == 0 || s.ParamsGNN == 0 || s.OptStatePerParam != 2 {
		t.Fatalf("bad SAGE spec: %+v", s)
	}
	if s.ParamsGNN+s.ParamsAgg != nn.ParamCount(sage) {
		t.Fatal("spec params do not sum to model params")
	}
	gat, err := nn.NewGAT(nn.Config{InDim: 8, Hidden: 8, OutDim: 4, Layers: 2, Heads: 2}, r)
	if err != nil {
		t.Fatal(err)
	}
	gs := SpecFromGAT(gat, nn.NewSGD(gat, 0.01, 0))
	if !gs.IsGAT || gs.OptStatePerParam != 0 {
		t.Fatalf("bad GAT spec: %+v", gs)
	}
}
