package memory

import (
	"math"
	"testing"

	"betty/internal/graph"
	"betty/internal/nn"
)

// tinyBlock is the 2-destination, 3-source, 4-edge block every
// hand-computed case below shares as its (last) layer.
func tinyBlock() *graph.Block {
	return &graph.Block{
		NumSrc:   3,
		NumDst:   2,
		Ptr:      []int64{0, 2, 4},
		SrcLocal: []int32{1, 2, 0, 2},
		EID:      []int32{-1, -1, -1, -1},
		SrcNID:   []int32{5, 6, 7},
		DstNID:   []int32{5, 6},
	}
}

// midBlock is a 3-destination, 5-source, 6-edge input layer for the
// two-layer case.
func midBlock() *graph.Block {
	return &graph.Block{
		NumSrc:   5,
		NumDst:   3,
		Ptr:      []int64{0, 2, 4, 6},
		SrcLocal: []int32{3, 4, 0, 2, 1, 4},
		EID:      []int32{-1, -1, -1, -1, -1, -1},
		SrcNID:   []int32{5, 6, 7, 8, 9},
		DstNID:   []int32{5, 6, 7},
	}
}

// TestEstimateComponentsByModel pins every Breakdown component to a byte
// count computed by hand from the §4.4.3 formulas, one case per supported
// architecture. All cases share tinyBlock (N=2 outputs, S=3 inputs, E=4
// edges); the hand arithmetic is spelled out per field.
func TestEstimateComponentsByModel(t *testing.T) {
	defer nn.SetFused(nn.SetFused(false)) // every case below costs the unfused chains
	cases := []struct {
		name   string
		blocks []*graph.Block
		spec   Spec
		want   Breakdown
	}{
		{
			// LayerDims(0) of a 1-layer net: f=InDim=10, o=OutDim=4.
			// act = self+concat 3NF(60) + combine 2NO(16) + sum-agg NF(20)
			//     = 96 values; Aggregator = 96*4 - Hidden(32).
			name:   "sage-sum-1layer",
			blocks: []*graph.Block{tinyBlock()},
			spec: Spec{
				Model:            nn.Config{InDim: 10, Hidden: 8, OutDim: 4, Layers: 1, Aggregator: nn.Sum},
				ParamsGNN:        50,
				OptStatePerParam: 1,
			},
			want: Breakdown{
				Params:        50 * 4,
				InputFeatures: 3 * 10 * 4,
				Labels:        2 * 4,
				Blocks:        4 * 3 * 4,
				Hidden:        2 * 4 * 4,
				Aggregator:    96*4 - 2*4*4,
				Gradients:     50 * 4,
				OptStates:     50 * 1 * 4,
			},
		},
		{
			// Pool adds pre-transform 3SF(90) + gathered messages EF(40) +
			// max NF(20) on top of the shared 3NF+2NO(76): 226 values.
			name:   "sage-pool-1layer",
			blocks: []*graph.Block{tinyBlock()},
			spec: Spec{
				Model:            nn.Config{InDim: 10, Hidden: 8, OutDim: 4, Layers: 1, Aggregator: nn.Pool},
				ParamsGNN:        80,
				ParamsAgg:        30,
				OptStatePerParam: 2,
			},
			want: Breakdown{
				Params:        110 * 4,
				InputFeatures: 3 * 10 * 4,
				Labels:        2 * 4,
				Blocks:        4 * 3 * 4,
				Hidden:        2 * 4 * 4,
				Aggregator:    226*4 - 2*4*4,
				Gradients:     110 * 4,
				OptStates:     110 * 2 * 4,
			},
		},
		{
			// GCN: source scaling SF(30) + neighbor sum/self/normalize
			// 5NF(100) + linear 2NO(16) = 146 values, no final ReLU.
			name:   "gcn-1layer",
			blocks: []*graph.Block{tinyBlock()},
			spec: Spec{
				Model:            nn.Config{InDim: 10, Hidden: 8, OutDim: 4, Layers: 1},
				ParamsGNN:        44,
				OptStatePerParam: 2,
				IsGCN:            true,
			},
			want: Breakdown{
				Params:        44 * 4,
				InputFeatures: 3 * 10 * 4,
				Labels:        2 * 4,
				Blocks:        4 * 3 * 4,
				Hidden:        2 * 4 * 4,
				Aggregator:    146*4 - 2*4*4,
				Gradients:     44 * 4,
				OptStates:     44 * 2 * 4,
			},
		},
		{
			// GAT, 2 heads, last layer (output width stays o=4): per head
			// SO(12) + 2S(6) + 5E(20) + 2EO(32) + NO(8) = 78, x2 heads =
			// 156, + head averaging NO*H(16) = 172 values.
			name:   "gat-1layer-2heads",
			blocks: []*graph.Block{tinyBlock()},
			spec: Spec{
				Model:            nn.Config{InDim: 10, Hidden: 8, OutDim: 4, Layers: 1, Heads: 2},
				ParamsGNN:        60,
				ParamsAgg:        12,
				OptStatePerParam: 0,
				IsGAT:            true,
			},
			want: Breakdown{
				Params:        72 * 4,
				InputFeatures: 3 * 10 * 4,
				Labels:        2 * 4,
				Blocks:        4 * 3 * 4,
				Hidden:        2 * 4 * 4,
				Aggregator:    172*4 - 2*4*4,
				Gradients:     72 * 4,
				OptStates:     0,
			},
		},
		{
			// Two layers. Layer 0 on midBlock (N=3,S=5,E=6,f=10,o=8):
			// 3NF(90) + 2NO(48) + ReLU NO(24) + mean 2NF(60) = 222 values,
			// minus Hidden0 = 3*8 values (96 bytes). Layer 1 on tinyBlock
			// (N=2,S=3,f=8,o=4): 3NF(48) + 2NO(16) + mean 2NF(32) = 96
			// values, minus Hidden1 = 2*4 values (32 bytes).
			name:   "sage-mean-2layer",
			blocks: []*graph.Block{midBlock(), tinyBlock()},
			spec: Spec{
				Model:            nn.Config{InDim: 10, Hidden: 8, OutDim: 4, Layers: 2, Aggregator: nn.Mean},
				ParamsGNN:        200,
				OptStatePerParam: 2,
			},
			want: Breakdown{
				Params:        200 * 4,
				InputFeatures: 5 * 10 * 4,
				Labels:        2 * 4,
				Blocks:        10 * 3 * 4,
				Hidden:        3*8*4 + 2*4*4,
				Aggregator:    (222*4 - 3*8*4) + (96*4 - 2*4*4),
				Gradients:     200 * 4,
				OptStates:     200 * 2 * 4,
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Estimate(tc.blocks, tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Errorf("Breakdown mismatch:\ngot  %+v\nwant %+v", got, tc.want)
			}
			// Peak/Total follow from the components.
			stable := tc.want.Params + tc.want.InputFeatures + tc.want.Labels +
				tc.want.Blocks + tc.want.Hidden + tc.want.OptStates
			transient := tc.want.Aggregator
			if tc.want.Gradients > transient {
				transient = tc.want.Gradients
			}
			if got.Peak() != stable+transient {
				t.Errorf("Peak = %d, want %d", got.Peak(), stable+transient)
			}
			if got.Total() != stable+tc.want.Aggregator+tc.want.Gradients {
				t.Errorf("Total = %d", got.Total())
			}
		})
	}
}

// TestEstimateComponentsFused pins the fused-tier activation accounting
// (DESIGN.md §13) the same way: hand-computed byte counts on tinyBlock for
// the architectures with fused forwards. Fused layers materialize one
// kernel output where the primitive chains materialize several, so the
// Aggregator component is strictly smaller than the matching unfused case.
func TestEstimateComponentsFused(t *testing.T) {
	defer nn.SetFused(nn.SetFused(true))
	cases := []struct {
		name   string
		blocks []*graph.Block
		spec   Spec
		want   int64 // Aggregator bytes
	}{
		{
			// f=10, o=4: self+concat 3NF(60) + fused linear NO(8) +
			// fused sum-agg NF(20) = 88 values; minus Hidden (8 values).
			name:   "sage-sum-1layer",
			blocks: []*graph.Block{tinyBlock()},
			spec: Spec{
				Model:     nn.Config{InDim: 10, Hidden: 8, OutDim: 4, Layers: 1, Aggregator: nn.Sum},
				ParamsGNN: 50,
			},
			want: (88 - 8) * 4,
		},
		{
			// Mean fuses the degree scale into the same kernel output, so
			// the count matches Sum: 3NF(60) + NO(8) + NF(20) = 88 values.
			name:   "sage-mean-1layer",
			blocks: []*graph.Block{tinyBlock()},
			spec: Spec{
				Model:     nn.Config{InDim: 10, Hidden: 8, OutDim: 4, Layers: 1, Aggregator: nn.Mean},
				ParamsGNN: 50,
			},
			want: (88 - 8) * 4,
		},
		{
			// GCN: source scaling SF(30) + fused normalized sum NF(20) +
			// self slice/scale 2NF(40) + add NF(20) + fused linear NO(8)
			// = 118 values.
			name:   "gcn-1layer",
			blocks: []*graph.Block{tinyBlock()},
			spec: Spec{
				Model:     nn.Config{InDim: 10, Hidden: 8, OutDim: 4, Layers: 1},
				ParamsGNN: 44,
				IsGCN:     true,
			},
			want: (118 - 8) * 4,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Estimate(tc.blocks, tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			if got.Aggregator != tc.want {
				t.Errorf("fused Aggregator = %d, want %d", got.Aggregator, tc.want)
			}
		})
	}
}

// TestErrorTrackerConverges drives the EMA with a constant relative
// underestimation and checks Margin approaches underestimation+headroom
// geometrically; overestimates clamp to headroom alone.
func TestErrorTrackerConverges(t *testing.T) {
	tr := NewErrorTracker()
	if m := tr.Margin(); math.Abs(m-0.02) > 1e-12 {
		t.Fatalf("pre-observation margin = %v, want headroom 0.02", m)
	}
	// measured = 1.1 * estimated: 10% underestimation, every epoch.
	const want = 0.10 + 0.02
	prevErr := math.Inf(1)
	for i := 0; i < 20; i++ {
		tr.Observe(1000, 1100)
		e := math.Abs(tr.Margin() - want)
		if e > prevErr+1e-15 {
			t.Fatalf("observation %d: margin error grew %v -> %v", i, prevErr, e)
		}
		prevErr = e
	}
	if prevErr > 1e-6 {
		t.Fatalf("margin did not converge: still %v from %v", prevErr, want)
	}
	if !tr.Observations() {
		t.Fatal("Observations false after observing")
	}
	// A long run of overestimates decays the margin back toward headroom.
	for i := 0; i < 40; i++ {
		tr.Observe(1000, 900)
	}
	if m := tr.Margin(); math.Abs(m-0.02) > 1e-6 {
		t.Fatalf("margin after overestimates = %v, want ~0.02", m)
	}
	// Degenerate observations are ignored.
	before := tr.Margin()
	tr.Observe(0, 100)
	tr.Observe(100, 0)
	if after := tr.Margin(); math.Abs(after-before) > 1e-15 {
		t.Fatalf("degenerate observations moved margin %v -> %v", before, after)
	}
}
