package memory

import "sync"

// ErrorTracker learns a safety margin from observed estimate-vs-measured
// memory errors. The paper (§6.7) notes that although the estimator's
// error is small, OOM can still be triggered in theory, and plans to
// "incorporate the estimation error into Betty's batch re-partitioning
// strategy if a micro-batch is getting close to the memory capacity" —
// this type implements that feedback loop.
//
// After every executed epoch the engine reports (estimated, measured)
// peaks; the tracker keeps an exponential moving average of the relative
// underestimation and exposes it (plus headroom) as a planner SafetyMargin.
type ErrorTracker struct {
	mu sync.Mutex
	// Alpha is the EMA factor for new observations (default 0.5).
	Alpha float64
	// Headroom is added on top of the learned underestimation so the
	// margin stays conservative (default 0.02 = 2%).
	Headroom float64

	ema      float64
	observed bool
}

// NewErrorTracker returns a tracker with the default smoothing.
func NewErrorTracker() *ErrorTracker {
	return &ErrorTracker{Alpha: 0.5, Headroom: 0.02}
}

// Observe records one epoch's estimated and measured peak bytes.
func (t *ErrorTracker) Observe(estimated, measured int64) {
	if estimated <= 0 || measured <= 0 {
		return
	}
	under := float64(measured-estimated) / float64(estimated)
	if under < 0 {
		under = 0 // overestimates need no margin
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	alpha := t.Alpha
	if alpha <= 0 || alpha > 1 {
		alpha = 0.5
	}
	if !t.observed {
		t.ema = under
		t.observed = true
	} else {
		t.ema = alpha*under + (1-alpha)*t.ema
	}
}

// Margin returns the safety margin the planner should apply: the learned
// relative underestimation plus headroom, or just the headroom before any
// observation.
func (t *ErrorTracker) Margin() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	headroom := t.Headroom
	if headroom < 0 {
		headroom = 0
	}
	if !t.observed {
		return headroom
	}
	return t.ema + headroom
}

// Observations reports whether the tracker has seen any data.
func (t *ErrorTracker) Observations() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.observed
}
