// Package memory implements Betty's analytical memory model (§4.4.3,
// Table 3, Equation 5) and the memory-aware re-partitioning planner built
// on it: estimate each micro-batch's device footprint without executing it,
// and increase the partition count until the largest micro-batch fits the
// device capacity.
package memory

import (
	"fmt"

	"betty/internal/graph"
	"betty/internal/nn"
)

// BytesPerValue is the size of one tensor element (float32) and of one
// node/edge index (int32).
const BytesPerValue = 4

// LSTMIntermediatesPerValue is the Equation 5 constant: the number of
// intermediate values the framework materializes per LSTM input element.
// The paper measures 18 for PyTorch and notes it is implementation-
// dependent; for this repository's autograd tape each LSTM timestep
// materializes the input gather (1), the two gate matmuls, their sum, and
// the bias add (4 x 4 = 16), the four gate slices and activations (8), the
// cell-state products and sum (3), and the output tanh and product (2),
// for 30 values per input element.
const LSTMIntermediatesPerValue = 30

// Spec describes the trained model for estimation purposes: the
// architecture plus the parameter counts of Table 3.
type Spec struct {
	// Model is the GNN architecture (dims, layers, aggregator, heads).
	Model nn.Config
	// ParamsGNN is NP_GNN: parameter values excluding the aggregator.
	ParamsGNN int
	// ParamsAgg is NP_Agg: aggregator-only parameter values.
	ParamsAgg int
	// OptStatePerParam is the optimizer-state values kept per parameter
	// value (Adam: 2, momentum SGD: 1, plain SGD: 0).
	OptStatePerParam int
	// IsGAT marks attention models, whose aggregator working set differs.
	IsGAT bool
	// IsGCN marks normalized-sum convolution models.
	IsGCN bool
}

// SpecFromSAGE derives a Spec from a constructed GraphSAGE model.
func SpecFromSAGE(m *nn.GraphSAGE, opt nn.Optimizer) Spec {
	agg := m.AggParamCount()
	return Spec{
		Model:            m.Config(),
		ParamsGNN:        nn.ParamCount(m) - agg,
		ParamsAgg:        agg,
		OptStatePerParam: opt.StateSize(),
	}
}

// SpecFromGCN derives a Spec from a constructed GCN model.
func SpecFromGCN(m *nn.GCN, opt nn.Optimizer) Spec {
	return Spec{
		Model:            m.Config(),
		ParamsGNN:        nn.ParamCount(m),
		OptStatePerParam: opt.StateSize(),
		IsGCN:            true,
	}
}

// SpecForInference derives a forward-only Spec from a constructed model of
// any supported architecture: no optimizer is attached, so the estimate
// carries no optimizer-state term. Combine with Planner.Peak =
// Breakdown.ForwardPeak so the serving planner budgets only what a forward
// pass materializes.
func SpecForInference(model any) (Spec, error) {
	switch m := model.(type) {
	case *nn.GraphSAGE:
		agg := m.AggParamCount()
		return Spec{
			Model:     m.Config(),
			ParamsGNN: nn.ParamCount(m) - agg,
			ParamsAgg: agg,
		}, nil
	case *nn.GCN:
		return Spec{
			Model:     m.Config(),
			ParamsGNN: nn.ParamCount(m),
			IsGCN:     true,
		}, nil
	case *nn.GAT:
		agg := m.AggParamCount()
		return Spec{
			Model:     m.Config(),
			ParamsGNN: nn.ParamCount(m) - agg,
			ParamsAgg: agg,
			IsGAT:     true,
		}, nil
	default:
		return Spec{}, fmt.Errorf("memory: no inference spec for model %T", model)
	}
}

// SpecFromGAT derives a Spec from a constructed GAT model.
func SpecFromGAT(m *nn.GAT, opt nn.Optimizer) Spec {
	agg := m.AggParamCount()
	return Spec{
		Model:            m.Config(),
		ParamsGNN:        nn.ParamCount(m) - agg,
		ParamsAgg:        agg,
		OptStatePerParam: opt.StateSize(),
		IsGAT:            true,
	}
}

// Breakdown itemizes the estimated device bytes of one (micro-)batch,
// following the eight components of §4.4.3.
type Breakdown struct {
	Params        int64 // (1) model parameters, incl. aggregator
	InputFeatures int64 // (2) N_in x H_in
	Labels        int64 // (3) N_out
	Blocks        int64 // (4) sum over blocks of E x 3
	Hidden        int64 // (5) per-layer destination outputs
	Aggregator    int64 // (6) aggregator working set (Eq. 5 for LSTM)
	Gradients     int64 // (7) one gradient value per parameter
	OptStates     int64 // (8) optimizer states
}

// Peak returns the estimated peak bytes: the aggregator working set (live
// during forward) and the gradients (live during backward) do not coexist
// at full size, so the peak is the stable tensors plus max of the two.
func (b Breakdown) Peak() int64 {
	transient := b.Aggregator
	if b.Gradients > transient {
		transient = b.Gradients
	}
	return b.stable() + transient
}

// ForwardPeak returns the estimated peak bytes of a forward-only pass —
// the inference-serving budget. No gradients or optimizer states exist,
// and labels are never gathered; what remains is the parameters, the
// staged inputs and blocks, the per-layer outputs, and the aggregator
// working set.
func (b Breakdown) ForwardPeak() int64 {
	return b.Params + b.InputFeatures + b.Blocks + b.Hidden + b.Aggregator
}

// Total returns the sum of all components (an upper bound the paper's
// Figure 3 style accounting uses for the full pie).
func (b Breakdown) Total() int64 {
	return b.stable() + b.Aggregator + b.Gradients
}

func (b Breakdown) stable() int64 {
	return b.Params + b.InputFeatures + b.Labels + b.Blocks + b.Hidden + b.OptStates
}

// String renders the breakdown in MiB for logs.
func (b Breakdown) String() string {
	mib := func(v int64) float64 { return float64(v) / (1 << 20) }
	return fmt.Sprintf(
		"params=%.1fMiB input=%.1fMiB labels=%.1fMiB blocks=%.1fMiB hidden=%.1fMiB agg=%.1fMiB grads=%.1fMiB opt=%.1fMiB peak=%.1fMiB",
		mib(b.Params), mib(b.InputFeatures), mib(b.Labels), mib(b.Blocks),
		mib(b.Hidden), mib(b.Aggregator), mib(b.Gradients), mib(b.OptStates), mib(b.Peak()))
}

// Estimate computes the memory breakdown of a batch (input-first blocks)
// under the model spec, without executing anything.
func Estimate(blocks []*graph.Block, spec Spec) (Breakdown, error) {
	if len(blocks) == 0 {
		return Breakdown{}, fmt.Errorf("memory: empty batch")
	}
	if len(blocks) != spec.Model.Layers {
		return Breakdown{}, fmt.Errorf("memory: %d blocks for %d model layers", len(blocks), spec.Model.Layers)
	}
	var b Breakdown
	params := int64(spec.ParamsGNN + spec.ParamsAgg)
	b.Params = params * BytesPerValue
	b.Gradients = params * BytesPerValue
	b.OptStates = params * int64(spec.OptStatePerParam) * BytesPerValue

	stats := graph.Stats(blocks)
	b.InputFeatures = int64(stats.NumInput) * int64(spec.Model.InDim) * BytesPerValue
	b.Labels = int64(stats.NumOutput) * BytesPerValue
	// (4): each block edge is stored as (src id, dst id, weight) = 3 values
	b.Blocks = int64(stats.TotalEdges) * 3 * BytesPerValue

	for l, blk := range blocks {
		layerIn, out := spec.Model.LayerDims(l)
		last := l == spec.Model.Layers-1
		heads := spec.Model.Heads
		if heads <= 0 {
			heads = 4
		}
		width := int64(out)
		if spec.IsGAT && !last {
			width = int64(out) * int64(heads)
		}
		// (5): the layer's destination outputs — the paper's N_i x h_i term.
		hidden := int64(blk.NumDst) * width * BytesPerValue
		b.Hidden += hidden

		// (6): the aggregator working set plus the framework intermediates
		// the forward pass materializes. Like the paper's constant 18, the
		// per-operation terms are calibrated to this implementation's
		// autograd tape (see the layer op sequences in package nn).
		n := int64(blk.NumDst)
		s := int64(blk.NumSrc)
		e := int64(blk.NumEdges())
		f := int64(layerIn)
		o := int64(out)
		// The fused kernel tier (DESIGN.md §13) collapses several primitive
		// ops into single-output kernels, so a fused layer materializes
		// fewer intermediate tensors than the chains costed below. The
		// estimate must follow the active execution path or it drifts out
		// of the calibration band the engine tests enforce.
		fused := nn.FusedEnabled()
		var act int64 // all forward intermediates of this layer, in values
		if spec.IsGCN {
			if fused {
				// source scaling (S*F), fused neighbor sum with the dst
				// normalization folded in (N*F), self slice + scale (2 N*F),
				// add (N*F), fused linear+bias+ReLU (N*O)
				act = s*f + 4*n*f + n*o
			} else {
				// source scaling (S*F), neighbor sum + self path + dst
				// normalization (5 N*F), linear (2 N*O), inter-layer ReLU
				act = s*f + 5*n*f + 2*n*o
				if !last {
					act += n * o
				}
			}
		} else if spec.IsGAT {
			h := int64(heads)
			// per head: projection (S*O), score vectors (2S), per-edge
			// score pipeline (5E), gathered+weighted messages (2*E*O),
			// and the per-destination sum (N*O)
			act = h * (s*o + 2*s + 5*e + 2*e*o + n*o)
			if last {
				// head averaging: H-1 adds plus the final scale
				act += n * o * int64(heads)
			} else {
				// pairwise concatenation of growing head outputs
				act += n * o * (int64(heads)*(int64(heads)+1)/2 - 1)
				// inter-layer ReLU over the concatenated width
				act += n * o * int64(heads)
			}
		} else {
			if fused {
				// shared fused SAGE pipeline: self slice (N*F), concat
				// (2N*F), fused linear+bias+ReLU (N*O)
				act = 3*n*f + n*o
			} else {
				// shared SAGE pipeline: self slice (N*F), concat (2N*F),
				// combine matmul + bias (2N*O), inter-layer ReLU (N*O)
				act = 3*n*f + 2*n*o
				if !last {
					act += n * o
				}
			}
			switch spec.Model.Aggregator {
			case nn.Mean:
				if fused {
					act += n * f // single fused gather+sum+scale output
				} else {
					act += 2 * n * f // segment sum + degree scale
				}
			case nn.Sum:
				act += n * f
			case nn.Pool:
				// pre-transform (3S*F), gathered messages (E*F), max (N*F)
				act += 3*s*f + e*f + n*f
			case nn.LSTM:
				// Equation 5 with this implementation's constant, plus the
				// per-bucket scatter/accumulate outputs (2 per non-empty
				// degree bucket, N*F each)
				act += e * f * LSTMIntermediatesPerValue
				if nb := int64(nonzeroDegreeBuckets(blk)); nb > 0 {
					act += (2*nb - 1) * n * f
				}
			}
		}
		b.Aggregator += act*BytesPerValue - hidden
	}
	return b, nil
}

// nonzeroDegreeBuckets counts the distinct nonzero in-degrees of a block's
// destinations — the NodeBatch count of the in-degree bucketing scheme.
func nonzeroDegreeBuckets(b *graph.Block) int {
	seen := make(map[int]bool)
	for d := 0; d < b.NumDst; d++ {
		if deg := b.InDegree(d); deg > 0 {
			seen[deg] = true
		}
	}
	return len(seen)
}
