package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file builds the whole-module static call graph the module-scoped
// analyzers (dettaint foremost) walk. The graph is computed once per
// Module from the ASTs the offline loader already holds: every FuncDecl
// body in every non-test file contributes one node, every statically
// resolvable call one edge. Function literals are attributed to their
// enclosing declaration — a closure a kernel hands to parallel.For is part
// of the kernel function as far as taint is concerned.
//
// Two deliberate limits, documented in DESIGN.md §14:
//
//   - Only direct calls are edges. Interface dispatch (obs.Clock.Now is
//     the canonical case) and calls of function-typed values are invisible;
//     the repository's determinism story leans on injection through
//     interfaces precisely so that the *static* reachability from kernel
//     code to a nondeterministic source is empty.
//   - Standard-library functions are leaves: their bodies are not loaded,
//     so a sink hidden inside a third function of the standard library is
//     not found. The sink set (wall clock, global rand, worker count) is
//     the complete list of nondeterministic stdlib inputs the repo's
//     invariants name.

// A FuncID names one function or method uniquely across the module:
// "pkgpath.Func" for package-level functions, "pkgpath.(Type).Method" for
// methods (pointer and value receivers share an ID). Test-package paths
// are folded onto their base package so the plain and analysis views of a
// function agree.
type FuncID string

// funcID derives the stable ID of fn, or "" when fn is nil.
func funcID(fn *types.Func) FuncID {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	path := strings.TrimSuffix(fn.Pkg().Path(), "_test")
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, isPtr := t.(*types.Pointer); isPtr {
			t = ptr.Elem()
		}
		if named, isNamed := t.(*types.Named); isNamed {
			return FuncID(fmt.Sprintf("%s.(%s).%s", path, named.Obj().Name(), fn.Name()))
		}
	}
	return FuncID(path + "." + fn.Name())
}

// An Edge is one static call site.
type Edge struct {
	Callee FuncID
	Pos    token.Position
}

// A SinkUse is one use of a nondeterministic input inside a function body.
type SinkUse struct {
	// Kind is one of "wall-clock", "global-rand", "worker-count",
	// "map-iteration".
	Kind string
	// Detail names the concrete source, e.g. "time.Now".
	Detail string
	Pos    token.Position
}

// A FuncNode is one declared function with a body somewhere in the module.
type FuncNode struct {
	ID      FuncID
	PkgPath string // analysis package path, "_test" trimmed
	Name    string // source-level name, for diagnostics
	Pos     token.Position
	// Exported reports whether the declaration's own name is exported
	// (methods count when the method name is exported).
	Exported bool
	Calls    []Edge
	Sinks    []SinkUse
}

// CallGraph is the module-wide static call graph.
type CallGraph struct {
	Nodes map[FuncID]*FuncNode
	// order fixes a deterministic node iteration order (sorted IDs).
	order []FuncID
}

// SortedIDs returns every node ID in sorted order.
func (g *CallGraph) SortedIDs() []FuncID { return g.order }

// buildCallGraph constructs the graph from every non-test file of pkgs.
// External test packages contribute nothing: determinism taint concerns
// production code, and tests legitimately read the clock.
func buildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{Nodes: make(map[FuncID]*FuncNode)}
	for _, p := range pkgs {
		if strings.HasSuffix(p.Path, "_test") {
			continue
		}
		for _, f := range p.Files {
			if p.isTestFile(f) {
				continue
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := p.Info.Defs[fd.Name].(*types.Func)
				id := funcID(fn)
				if id == "" {
					continue
				}
				node := &FuncNode{
					ID:       id,
					PkgPath:  strings.TrimSuffix(p.Path, "_test"),
					Name:     fd.Name.Name,
					Pos:      p.pos(fd),
					Exported: fd.Name.IsExported(),
				}
				scanBody(p, fd, node)
				g.Nodes[id] = node
			}
		}
	}
	for id := range g.Nodes {
		g.order = append(g.order, id)
	}
	sort.Slice(g.order, func(i, j int) bool { return g.order[i] < g.order[j] })
	return g
}

// scanBody records fd's static calls and sink uses on node, descending
// into function literals (a closure belongs to its enclosing declaration).
func scanBody(p *Package, fd *ast.FuncDecl, node *FuncNode) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.CallExpr:
			fn := funcObj(p.Info, s)
			if fn == nil {
				return true
			}
			if kind, detail, isSink := classifySink(fn, node.PkgPath); isSink {
				node.Sinks = append(node.Sinks, SinkUse{Kind: kind, Detail: detail, Pos: p.pos(s)})
				return true
			}
			if id := funcID(fn); id != "" {
				node.Calls = append(node.Calls, Edge{Callee: id, Pos: p.pos(s)})
			}
		case *ast.RangeStmt:
			tv, ok := p.Info.Types[s.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if sortedKeyCollection(p, fd, s) {
				return true
			}
			node.Sinks = append(node.Sinks, SinkUse{
				Kind:   "map-iteration",
				Detail: "range over map",
				Pos:    p.pos(s),
			})
		}
		return true
	})
}

// The shared sink tables. runDetrand and runShardpure are thin wrappers
// over the same classification, applied per package; dettaint applies it
// to everything the call graph reaches.
var (
	// wallClockFuncs are the time-package reads whose results change run
	// to run. Importing time for durations and formatting stays legal.
	wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

	// globalRandExempt are the math/rand package-level functions that do
	// not touch the global stream: constructors for locally seeded
	// generators are deterministic when their seed is.
	globalRandExempt = map[string]bool{"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true}
)

const parallelPkg = "betty/internal/parallel"

// classifySink reports whether a call to fn from a function in callerPkg
// is a nondeterministic input, and which kind.
func classifySink(fn *types.Func, callerPkg string) (kind, detail string, ok bool) {
	if fn == nil || fn.Pkg() == nil {
		return "", "", false
	}
	sig, _ := fn.Type().(*types.Signature)
	pkgLevel := sig == nil || sig.Recv() == nil
	switch fn.Pkg().Path() {
	case "time":
		if wallClockFuncs[fn.Name()] {
			return "wall-clock", "time." + fn.Name(), true
		}
	case "math/rand", "math/rand/v2":
		// Only the package-level functions draw from the shared global
		// stream; methods on a locally constructed *rand.Rand are as
		// deterministic as their seed.
		if pkgLevel && !globalRandExempt[fn.Name()] {
			return "global-rand", fn.Pkg().Path() + "." + fn.Name(), true
		}
	case "runtime":
		if fn.Name() == "NumCPU" || fn.Name() == "GOMAXPROCS" {
			if callerPkg == parallelPkg {
				return "", "", false // concurrency configuration, not shard math
			}
			return "worker-count", "runtime." + fn.Name(), true
		}
	case parallelPkg:
		if pkgLevel && fn.Name() == "Workers" && callerPkg != parallelPkg {
			return "worker-count", "parallel.Workers", true
		}
	}
	return "", "", false
}

// reach runs a deterministic breadth-first search from entries and returns
// the predecessor map: for every reachable node, the ID of the node it was
// first discovered from (entries map to themselves). Entries are visited
// in sorted order and edges in source order, so the discovery tree — and
// with it every printed taint path — is stable run to run.
func (g *CallGraph) reach(entries []FuncID) map[FuncID]FuncID {
	sorted := append([]FuncID(nil), entries...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	pred := make(map[FuncID]FuncID)
	var queue []FuncID
	for _, e := range sorted {
		if _, seen := pred[e]; seen {
			continue
		}
		if _, exists := g.Nodes[e]; !exists {
			continue
		}
		pred[e] = e
		queue = append(queue, e)
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		node := g.Nodes[cur]
		for _, edge := range node.Calls {
			if _, seen := pred[edge.Callee]; seen {
				continue
			}
			if _, exists := g.Nodes[edge.Callee]; !exists {
				continue // leaf without a body (stdlib)
			}
			pred[edge.Callee] = cur
			queue = append(queue, edge.Callee)
		}
	}
	return pred
}

// pathTo reconstructs the discovery path entry → ... → id from a reach
// predecessor map, rendered with the short function names.
func (g *CallGraph) pathTo(pred map[FuncID]FuncID, id FuncID) []FuncID {
	var rev []FuncID
	for cur := id; ; cur = pred[cur] {
		rev = append(rev, cur)
		if pred[cur] == cur || len(rev) > len(pred) {
			break
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}
