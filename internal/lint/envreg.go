package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Envreg enforces the environment-knob discipline that PR 3 established by
// convention and PR 5 repeated by hand: every BETTY_* environment variable
// is (1) read through a hardened fail-loud parser — a Parse* function that
// rejects garbage instead of silently running a different configuration
// than the operator set — and (2) documented in the README knob table. The
// analyzer carries the authoritative knob registry below and diffs it both
// ways against the doc, so adding a knob without registering and
// documenting it, or documenting a knob that no longer exists, fails the
// lint rather than rotting quietly as P2–P4 multiply the knob count.
//
// Concretely:
//
//   - os.Getenv("BETTY_X") must appear as a direct argument of a call to a
//     function whose name starts with "Parse" (ParseWorkers, ParsePoolMode,
//     ParseFusedMode, ParseQuantMode, ...). Passing os.Getenv itself as a
//     getenv func into a validating applier (serve.Config.ApplyEnv) is the
//     other approved pattern and involves no direct call to flag.
//   - os.Getenv with a non-literal argument defeats the registry audit and
//     is flagged (the serve pattern threads the name through constants that
//     the literal scan below still sees).
//   - Every string literal of shape "BETTY_..." in non-test code must name
//     a registered knob; every registered knob must appear in the README;
//     every BETTY_* token in the README must be registered.
var Envreg = &Analyzer{
	Name: "envreg",
	Doc: "require os.Getenv(\"BETTY_*\") to flow through a hardened Parse* parser, " +
		"every BETTY_* literal to name a registered knob, and the registry to match " +
		"the README knob table both ways",
	RunModule: runEnvreg,
}

// knobRegistry is the authoritative list of environment knobs. A new knob
// lands by adding a row here, a row in the README knob table, and a
// hardened parser — envreg fails on any subset.
var knobRegistry = map[string]string{
	"BETTY_WORKERS":                 "worker-pool size (parallel.ParseWorkers)",
	"BETTY_POOL":                    "tape buffer pool toggle (tensor.ParsePoolMode)",
	"BETTY_FUSED":                   "fused kernel tier toggle (nn.ParseFusedMode)",
	"BETTY_QUANT":                   "serving quantization mode (tensor.ParseQuantMode)",
	"BETTY_SERVE_MAX_BATCH":         "serving batcher coalescing target (serve.Config.ApplyEnv)",
	"BETTY_SERVE_MAX_WAIT_MS":       "serving batcher hold time (serve.Config.ApplyEnv)",
	"BETTY_SERVE_QUEUE_DEPTH":       "serving admission bound (serve.Config.ApplyEnv)",
	"BETTY_SERVE_CACHE_NODES":       "serving feature-cache capacity (serve.Config.ApplyEnv)",
	"BETTY_SERVE_TIMEOUT_MS":        "serving default deadline (serve.Config.ApplyEnv)",
	"BETTY_SERVE_MAX_REQUEST_NODES": "serving per-request seed cap (serve.Config.ApplyEnv)",
	"BETTY_SERVE_CAPACITY_MIB":      "serving device budget (serve.Config.ApplyEnv)",
	"BETTY_STORE_BUDGET_MIB":        "out-of-core shard-cache budget (store.ParseBudgetMiB)",
	"BETTY_STORE_SHARD_ROWS":        "pack-time feature-shard height (store.ParseShardRows)",
	"BETTY_EMBCACHE":                "historical-embedding cache mode off/exact/reuse (embcache.ParseMode)",
	"BETTY_EMBCACHE_BUDGET_MIB":     "historical-embedding cache budget (embcache.ParseBudgetMiB)",
	"BETTY_EMBCACHE_MAX_LAG":        "historical-embedding reuse staleness bound (embcache.ParseMaxLag)",
}

// KnobNames returns the registered knob names, sorted.
func KnobNames() []string {
	names := make([]string, 0, len(knobRegistry))
	for n := range knobRegistry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// knobLit matches a string literal that is exactly an environment-knob
// name (error-message format strings like "BETTY_WORKERS=%q: ..." do not
// full-match).
var knobLit = regexp.MustCompile(`^BETTY_[A-Z0-9_]+$`)

// docKnobToken finds knob-shaped tokens in the README.
var docKnobToken = regexp.MustCompile(`BETTY_[A-Z0-9_]+`)

func runEnvreg(m *Module) []Diagnostic {
	var diags []Diagnostic
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			if p.isTestFile(f) {
				continue
			}
			diags = append(diags, envregFile(p, f)...)
		}
	}
	diags = append(diags, envregDocDiff(m)...)
	return diags
}

func envregFile(p *Package, f *ast.File) []Diagnostic {
	var diags []Diagnostic

	// Pass 1: find os.Getenv calls that are routed — direct arguments of a
	// Parse*-named call.
	routed := make(map[*ast.CallExpr]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		outer, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := funcObj(p.Info, outer)
		if fn == nil || !strings.HasPrefix(fn.Name(), "Parse") {
			return true
		}
		for _, arg := range outer.Args {
			if inner, isCall := ast.Unparen(arg).(*ast.CallExpr); isCall && isOSGetenv(p, inner) {
				routed[inner] = true
			}
		}
		return true
	})

	// Pass 2: every os.Getenv call and every knob-shaped literal.
	ast.Inspect(f, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.CallExpr:
			if !isOSGetenv(p, s) {
				return true
			}
			name, isLit := getenvLiteral(s)
			if !isLit {
				diags = append(diags, Diagnostic{
					Analyzer: "envreg",
					Pos:      p.pos(s),
					Message: "os.Getenv with a non-literal name defeats the knob-registry audit: " +
						"read knobs by literal name, or pass os.Getenv itself into a validating " +
						"applier (serve.Config.ApplyEnv pattern)",
				})
				return true
			}
			if !strings.HasPrefix(name, "BETTY_") {
				return true
			}
			if !routed[s] {
				diags = append(diags, Diagnostic{
					Analyzer: "envreg",
					Pos:      p.pos(s),
					Message: fmt.Sprintf("os.Getenv(%q) is not routed through a hardened parser: "+
						"wrap it in a Parse* function that fails loudly on malformed values "+
						"(parallel.ParseWorkers is the model)", name),
				})
			}
		case *ast.BasicLit:
			if s.Kind != token.STRING {
				return true
			}
			name, err := strconv.Unquote(s.Value)
			if err != nil || !knobLit.MatchString(name) {
				return true
			}
			if _, known := knobRegistry[name]; !known {
				diags = append(diags, Diagnostic{
					Analyzer: "envreg",
					Pos:      p.pos(s),
					Message: fmt.Sprintf("%s is not in bettyvet's knob registry: add it to "+
						"knobRegistry in internal/lint/envreg.go and to the README knob table", name),
				})
			}
		}
		return true
	})
	return diags
}

// envregDocDiff diffs the registry against the README knob documentation,
// both ways. A missing KnobDoc (subset runs without a module root) skips
// the diff.
func envregDocDiff(m *Module) []Diagnostic {
	if m.KnobDoc == "" {
		return nil
	}
	docPos := token.Position{Filename: "README.md", Line: 1, Column: 1}
	var diags []Diagnostic
	documented := make(map[string]bool)
	for _, tok := range docKnobToken.FindAllString(m.KnobDoc, -1) {
		documented[tok] = true
	}
	for _, name := range KnobNames() {
		if !documented[name] {
			diags = append(diags, Diagnostic{
				Analyzer: "envreg",
				Pos:      docPos,
				Message:  fmt.Sprintf("registered knob %s is not documented in the README knob table", name),
			})
		}
	}
	var docNames []string
	for name := range documented {
		docNames = append(docNames, name)
	}
	sort.Strings(docNames)
	for _, name := range docNames {
		if _, known := knobRegistry[name]; !known {
			diags = append(diags, Diagnostic{
				Analyzer: "envreg",
				Pos:      docPos,
				Message: fmt.Sprintf("README documents %s but it is not in bettyvet's knob registry: "+
					"register it or drop the doc row", name),
			})
		}
	}
	return diags
}

// isOSGetenv reports whether call is os.Getenv(...).
func isOSGetenv(p *Package, call *ast.CallExpr) bool {
	fn := funcObj(p.Info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "os" && fn.Name() == "Getenv"
}

// getenvLiteral extracts the literal name argument of an os.Getenv call.
func getenvLiteral(call *ast.CallExpr) (string, bool) {
	if len(call.Args) != 1 {
		return "", false
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	name, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return name, true
}
