package lint

import (
	"fmt"
	"go/types"
)

// Shardpure guards the one invariant internal/parallel is built around:
// shard boundaries are a function of the problem (n, grain, segment
// structure), never of how many workers happen to execute them. Any kernel
// that reads the machine's parallelism — runtime.NumCPU, the GOMAXPROCS
// setting, or parallel.Workers — can leak it into shard math and break
// bitwise reproducibility across hosts and worker counts.
//
// parallel.SetWorkers stays legal everywhere: it configures concurrency,
// it does not feed a value into kernel arithmetic.
var Shardpure = &Analyzer{
	Name: "shardpure",
	Doc: "forbid runtime.NumCPU / runtime.GOMAXPROCS / parallel.Workers in kernel " +
		"packages outside internal/parallel, so shard boundaries cannot depend on the worker count",
	Run: runShardpure,
}

func runShardpure(p *Package) []Diagnostic {
	if !isKernel(p.Path) || p.Path == "betty/internal/parallel" {
		return nil
	}
	var diags []Diagnostic
	for id, obj := range p.Info.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil {
			continue
		}
		var banned bool
		switch fn.Pkg().Path() {
		case "runtime":
			banned = fn.Name() == "NumCPU" || fn.Name() == "GOMAXPROCS"
		case "betty/internal/parallel":
			banned = fn.Name() == "Workers"
		}
		if !banned {
			continue
		}
		diags = append(diags, Diagnostic{
			Analyzer: "shardpure",
			Pos:      p.Fset.Position(id.Pos()),
			Message: fmt.Sprintf("%s.%s read in a kernel package; shard boundaries must depend "+
				"only on the problem, never the worker count (keep worker awareness inside internal/parallel)",
				fn.Pkg().Name(), fn.Name()),
		})
	}
	return diags
}
