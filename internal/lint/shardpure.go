package lint

import (
	"fmt"
	"go/types"
	"strings"
)

// Shardpure guards the one invariant internal/parallel is built around:
// shard boundaries are a function of the problem (n, grain, segment
// structure), never of how many workers happen to execute them. Any kernel
// that reads the machine's parallelism — runtime.NumCPU, the GOMAXPROCS
// setting, or parallel.Workers — can leak it into shard math and break
// bitwise reproducibility across hosts and worker counts.
//
// parallel.SetWorkers stays legal everywhere: it configures concurrency,
// it does not feed a value into kernel arithmetic.
var Shardpure = &Analyzer{
	Name: "shardpure",
	Doc: "forbid runtime.NumCPU / runtime.GOMAXPROCS / parallel.Workers in kernel " +
		"packages outside internal/parallel, so shard boundaries cannot depend on the worker count",
	Run: runShardpure,
}

// runShardpure is a thin wrapper over the shared sink classifier of
// callgraph.go: the "worker-count" classification (which already exempts
// internal/parallel itself) applied to every identifier use in a kernel
// package. dettaint applies the same classification to everything the
// call graph reaches beyond kernel packages.
func runShardpure(p *Package) []Diagnostic {
	if !isKernel(p.Path) {
		return nil
	}
	var diags []Diagnostic
	for id, obj := range p.Info.Uses {
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		kind, detail, isSink := classifySink(fn, strings.TrimSuffix(p.Path, "_test"))
		if !isSink || kind != "worker-count" {
			continue
		}
		diags = append(diags, Diagnostic{
			Analyzer: "shardpure",
			Pos:      p.Fset.Position(id.Pos()),
			Message: fmt.Sprintf("%s read in a kernel package; shard boundaries must depend "+
				"only on the problem, never the worker count (keep worker awareness inside internal/parallel)",
				detail),
		})
	}
	return diags
}
