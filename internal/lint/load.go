package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	Dir          string
	ImportPath   string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Imports      []string
}

// Load enumerates patterns with `go list -json` run in dir, then parses and
// type-checks every matched package fully offline: module-local imports are
// resolved from the module enumeration itself (typed in dependency order)
// and standard-library imports through the source importer, so no compiled
// export data or network is needed.
//
// The returned packages are analysis views: internal _test.go files are
// type-checked together with the package they extend, and external test
// packages (package foo_test) are returned as packages of their own with
// the import path "foo_test".
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	targets, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	// The typing universe is the whole module, so module-local imports of
	// the targets (including test-only imports) resolve even when the
	// patterns select a subset.
	universe, err := goList(dir, []string{"./..."})
	if err != nil {
		return nil, err
	}
	byPath := make(map[string]*listPackage, len(universe))
	for _, lp := range universe {
		byPath[lp.ImportPath] = lp
	}

	fset := token.NewFileSet()
	ld := &loader{
		fset:   fset,
		byPath: byPath,
		plain:  make(map[string]*types.Package),
		std:    importer.ForCompiler(fset, "source", nil),
	}

	var out []*Package
	for _, lp := range targets {
		p, err := ld.analysisPackage(lp)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
		if len(lp.XTestGoFiles) > 0 {
			xp, err := ld.xtestPackage(lp)
			if err != nil {
				return nil, err
			}
			out = append(out, xp)
		}
	}
	return out, nil
}

// LoadModule loads patterns like Load and wraps the result in a Module
// ready for the full suite, with the module root's README.md attached for
// envreg's registry/doc diff. A missing README leaves KnobDoc empty, which
// skips the diff (subset runs outside a module root stay usable).
func LoadModule(dir string, patterns ...string) (*Module, error) {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	m := NewModule(pkgs)
	root, err := goModRoot(dir)
	if err != nil {
		root = dir
	}
	if doc, err := os.ReadFile(filepath.Join(root, "README.md")); err == nil {
		m.KnobDoc = string(doc)
	}
	return m, nil
}

// goModRoot resolves the module root directory for dir.
func goModRoot(dir string) (string, error) {
	cmd := exec.Command("go", "list", "-m", "-f", "{{.Dir}}")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", err
	}
	return strings.TrimSpace(string(out)), nil
}

// goList runs `go list -json` in dir and decodes the JSON stream.
func goList(dir string, patterns []string) ([]*listPackage, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	var pkgs []*listPackage
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, nil
}

// loader type-checks module packages on demand, memoizing the plain
// (non-test) variant of each so imports are shared.
type loader struct {
	fset   *token.FileSet
	byPath map[string]*listPackage
	plain  map[string]*types.Package
	std    types.Importer
	// visiting guards against import cycles, which would be a bug in the
	// module but must not hang the linter.
	visiting []string
}

// Import implements types.Importer: module-local packages come from the
// enumeration, everything else from the source importer.
func (ld *loader) Import(path string) (*types.Package, error) {
	if lp, ok := ld.byPath[path]; ok {
		return ld.plainPackage(lp)
	}
	return ld.std.Import(path)
}

// plainPackage type-checks lp's GoFiles only (the importable view).
func (ld *loader) plainPackage(lp *listPackage) (*types.Package, error) {
	if pkg, ok := ld.plain[lp.ImportPath]; ok {
		return pkg, nil
	}
	for _, v := range ld.visiting {
		if v == lp.ImportPath {
			return nil, fmt.Errorf("import cycle through %s", lp.ImportPath)
		}
	}
	ld.visiting = append(ld.visiting, lp.ImportPath)
	defer func() { ld.visiting = ld.visiting[:len(ld.visiting)-1] }()

	files, err := ld.parse(lp.Dir, lp.GoFiles)
	if err != nil {
		return nil, err
	}
	pkg, _, err := ld.check(lp.ImportPath, files, ld)
	if err != nil {
		return nil, err
	}
	ld.plain[lp.ImportPath] = pkg
	return pkg, nil
}

// analysisPackage type-checks lp's GoFiles plus internal test files as one
// package — the view the analyzers inspect.
func (ld *loader) analysisPackage(lp *listPackage) (*Package, error) {
	files, err := ld.parse(lp.Dir, append(append([]string{}, lp.GoFiles...), lp.TestGoFiles...))
	if err != nil {
		return nil, err
	}
	pkg, info, err := ld.check(lp.ImportPath, files, ld)
	if err != nil {
		return nil, err
	}
	return &Package{Path: lp.ImportPath, Fset: ld.fset, Files: files, Pkg: pkg, Info: info}, nil
}

// xtestPackage type-checks lp's external test package (package foo_test).
func (ld *loader) xtestPackage(lp *listPackage) (*Package, error) {
	files, err := ld.parse(lp.Dir, lp.XTestGoFiles)
	if err != nil {
		return nil, err
	}
	path := lp.ImportPath + "_test"
	pkg, info, err := ld.check(path, files, ld)
	if err != nil {
		return nil, err
	}
	return &Package{Path: path, Fset: ld.fset, Files: files, Pkg: pkg, Info: info}, nil
}

func (ld *loader) parse(dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

func (ld *loader) check(path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	return pkg, info, nil
}
