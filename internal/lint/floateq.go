package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// Floateq flags ==/!= between floating-point operands everywhere in the
// repository, tests included. Exact float comparison is almost always one
// of three intents, and each has a cleaner spelling:
//
//   - approximate equality → an epsilon helper (a function whose name
//     matches floateqApproved is treated as the helper itself and may use
//     ==/!= internally, e.g. for its fast path);
//   - bitwise determinism checks → compare math.Float32bits /
//     math.Float64bits, which states the actual claim and is NaN-exact;
//   - NaN detection → x != x is recognized and allowed.
//
// One carve-out: in _test.go files a comparison with a compile-time
// constant operand is allowed — the test controls both sides and asserts
// an exact, reviewer-visible expectation (e.g. got != 2.5 after exact
// arithmetic). Production code gets no such allowance: sentinel-zero
// tests and constant comparisons in kernels are precisely the bug class,
// so intentional ones carry a reasoned //bettyvet:ok floateq annotation.
var Floateq = &Analyzer{
	Name: "floateq",
	Doc: "forbid ==/!= on floating-point operands outside approved epsilon/bit-equality " +
		"helpers; use epsilon comparison, Float32bits, or an annotation",
	Run: runFloateq,
}

// floateqApproved matches the names of functions allowed to compare floats
// exactly: the epsilon/closeness helpers themselves.
var floateqApproved = regexp.MustCompile(`(?i)(approx|almost|near|eps|ulp|close)`)

func runFloateq(p *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Files {
		testFile := p.isTestFile(f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if floateqApproved.MatchString(fd.Name.Name) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				if !isFloatOperand(p, be.X) && !isFloatOperand(p, be.Y) {
					return true
				}
				// x != x is the portable NaN test.
				if be.Op == token.NEQ && types.ExprString(be.X) == types.ExprString(be.Y) {
					return true
				}
				if testFile && (isConstExpr(p, be.X) || isConstExpr(p, be.Y)) {
					return true
				}
				diags = append(diags, Diagnostic{
					Analyzer: "floateq",
					Pos:      p.pos(be),
					Message: "exact ==/!= on floating-point operands: use an epsilon helper for " +
						"approximate equality or math.Float32bits/Float64bits for bitwise claims, " +
						"or annotate //bettyvet:ok floateq <reason>",
				})
				return true
			})
		}
	}
	return diags
}

// isConstExpr reports whether the type checker evaluated e to a
// compile-time constant.
func isConstExpr(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	return ok && tv.Value != nil
}

// isFloatOperand reports whether e's type (after any implicit conversion
// recorded by the type checker) is a floating-point type.
func isFloatOperand(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}
