package kernel

import (
	"runtime"

	"betty/internal/parallel"
)

func badGrain(n int) int {
	return n / runtime.NumCPU() // want shardpure
}

func badProcs() int {
	return runtime.GOMAXPROCS(0) // want shardpure
}

func badShards() int {
	return parallel.Workers() * 2 // want shardpure
}

func okConfigure(n int) int {
	return parallel.SetWorkers(n) // SetWorkers stays legal everywhere
}

func okAnnotatedWorkers() int {
	//bettyvet:ok shardpure diagnostic log line only, the value never reaches shard math // want-sup+1 shardpure
	return parallel.Workers()
}
