package kernel

import (
	"betty/internal/store"
	"betty/internal/tensor"
)

type holder struct {
	scratch *tensor.Tensor
	tape    *tensor.Tape
	weights []float32
	pinned  *store.Shard
}

func leakField(tp *tensor.Tape, h *holder) {
	h.scratch = tp.Alloc(2, 2) // want pooldisc
}

func leakAlias(tp *tensor.Tape, h *holder) {
	buf := tp.Alloc(2, 2)
	h.scratch = buf // want pooldisc
}

func leakReturn(tp *tensor.Tape) *tensor.Tensor {
	buf := tp.Alloc(4, 4)
	return buf // want pooldisc
}

func missingRelease() int {
	tp := tensor.NewTape() // want pooldisc
	return tp.Alloc(1, 1).RowsN
}

func okReleased() {
	tp := tensor.NewTape()
	defer tp.Release()
	buf := tp.Alloc(2, 2)
	buf.Data[0] = 1
}

func okTransferField(h *holder) {
	tp := tensor.NewTape()
	h.tape = tp
}

func okTransferReturn() *tensor.Tape {
	tp := tensor.NewTape()
	return tp
}

func okAnnotated(tp *tensor.Tape) *tensor.Tensor {
	//bettyvet:ok pooldisc fixture tensor outlives no Release in this contrived example // want-sup+1 pooldisc
	return tp.Alloc(3, 3)
}

func leakScratch() float32 {
	s := tensor.AcquireScratch(8) // want pooldisc
	return s[0]
}

func okScratchReleased() float32 {
	s := tensor.AcquireScratch(8)
	defer tensor.ReleaseScratch(s)
	return s[0]
}

func okScratchTransferField(h *holder) {
	s := tensor.AcquireScratch(8)
	h.weights = s // install pattern: h's uninstall releases it later
}

func okScratchTransferReturn() []float32 {
	s := tensor.AcquireScratch(8)
	return s
}

func leakPin(c *store.Cache) float32 {
	sh, err := c.Pin(3) // want pooldisc
	if err != nil {
		return 0
	}
	return sh.Data[0]
}

func okPinUnpinned(c *store.Cache) (float32, error) {
	sh, err := c.Pin(3)
	if err != nil {
		return 0, err
	}
	defer c.Unpin(sh)
	return sh.Data[0], nil
}

func okPinTransferField(c *store.Cache, h *holder) error {
	sh, err := c.Pin(3)
	if err != nil {
		return err
	}
	h.pinned = sh // holder's owner unpins on teardown
	return nil
}

func okPinTransferReturn(c *store.Cache) (*store.Shard, error) {
	sh, err := c.Pin(3)
	return sh, err
}

func okPinAnnotated(c *store.Cache) float32 {
	//bettyvet:ok pooldisc fixture pin is unpinned by the caller-registered finalizer // want-sup+1 pooldisc
	sh, _ := c.Pin(4)
	return sh.Data[0]
}
