package kernel

import (
	"betty/internal/parallel"
	"betty/internal/tensor"
)

func shardMake(n int, out []int) {
	parallel.For(n, 16, func(lo, hi int) {
		tmp := make([]int, hi-lo) // want hotalloc
		for i := range tmp {
			tmp[i] = lo + i
		}
		copy(out[lo:hi], tmp)
	})
}

func shardLiteralAndAppend(n int) [][]int {
	rows := make([][]int, n)
	parallel.ForShards([]int{0, n}, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := []int{i, i + 1}     // want hotalloc
			rows[i] = append(row, i+2) // want hotalloc
		}
	})
	return rows
}

func shardMapReduce(n int) int {
	return parallel.MapReduce(n, 16, func(lo, hi int) int {
		seen := map[int]bool{} // want hotalloc
		for i := lo; i < hi; i++ {
			seen[i] = true
		}
		return len(seen)
	}, func(a, b int) int { return a + b })
}

func tapeOpAlloc(tp *tensor.Tape, val *tensor.Tensor) *tensor.Tensor {
	return tp.Record(val, true, func() {
		grad := make([]float32, len(val.Data)) // want hotalloc
		copy(grad, val.Data)
	})
}

func okHoisted(n int, out []int) {
	buf := make([]int, n)
	parallel.For(n, 16, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			buf[i] = i
		}
	})
	copy(out, buf)
}

func okPooled(n int, out []float32) {
	parallel.For(n, 16, func(lo, hi int) {
		s := tensor.AcquireScratch(hi - lo)
		copy(out[lo:hi], s)
		tensor.ReleaseScratch(s)
	})
}

func okColdClosure(n int) []int {
	build := func() []int { return make([]int, n) }
	return build()
}

func okAnnotatedShardBuffer(n int, out []int) {
	parallel.For(n, 16, func(lo, hi int) {
		//bettyvet:ok hotalloc golden fixture: per-shard private buffer is intentional here // want-sup+1 hotalloc
		tmp := make([]int, hi-lo)
		for i := range tmp {
			tmp[i] = lo + i
		}
		copy(out[lo:hi], tmp)
	})
}
