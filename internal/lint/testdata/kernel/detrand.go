package kernel

import (
	"math/rand" // want detrand
	"time"
)

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

func elapsed(since time.Time) time.Duration {
	return time.Since(since) // want detrand
}

func stamp() int64 {
	//bettyvet:ok detrand coarse wall-clock only labels the trace, it never feeds kernel output // want-sup+1 detrand
	return time.Now().UnixNano()
}
