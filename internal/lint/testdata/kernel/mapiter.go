package kernel

import "sort"

func sums(m map[int]float64) []float64 {
	var out []float64
	for _, v := range m { // want mapiter
		out = append(out, v)
	}
	return out
}

func sortedKeys(m map[int]float64) []int {
	var keys []int
	for k := range m { // collect-then-sort idiom: not flagged
		if k >= 0 {
			keys = append(keys, k)
		}
	}
	sort.Ints(keys)
	return keys
}

func size(m map[int]float64) int {
	n := 0
	//bettyvet:ok mapiter pure count, output is order-insensitive // want-sup+1 mapiter
	for range m {
		n++
	}
	return n
}
