// Package envknobs is the envreg golden fixture: every way a BETTY_*
// environment knob can be read, routed, mis-routed, or invented. ParseCount
// stands in for the hardened parsers (parallel.ParseWorkers and friends) —
// envreg keys on the Parse* name, not the package.
package envknobs

import "os"

// ParseCount is a stand-in hardened parser: any os.Getenv passed directly
// to a Parse*-named function counts as routed.
func ParseCount(s string) int { return len(s) }

func routed() int {
	return ParseCount(os.Getenv("BETTY_WORKERS"))
}

func raw() string {
	return os.Getenv("BETTY_POOL") // want envreg
}

func nonLiteral(name string) string {
	return os.Getenv(name) // want envreg
}

func unregistered() int {
	return ParseCount(os.Getenv("BETTY_NO_SUCH_KNOB")) // want envreg
}

func suppressedRaw() string {
	//bettyvet:ok envreg golden fixture: raw read stands in for a migration shim // want-sup+1 envreg
	return os.Getenv("BETTY_FUSED")
}

type config struct{}

func (c *config) ApplyEnv(getenv func(string) string) {}

// applier shows the sanctioned injection pattern: os.Getenv passed as a
// value into a validating applier involves no direct call to route.
func applier(c *config) {
	c.ApplyEnv(os.Getenv)
}

// notAKnob reads a non-BETTY variable: out of scope.
func notAKnob() string {
	return os.Getenv("HOME")
}

// errFmt mentions a knob inside a larger string: the literal scan
// full-matches knob names, so format strings stay legal.
const errFmt = "BETTY_WORKERS=%q: not an integer"
