package floateq

// This file's _test.go suffix puts it under floateq's test-file carve-out:
// comparisons against compile-time constants are allowed, comparisons of
// two computed values are still flagged.

func exactExpectation(got float32) bool {
	return got == 2.5 // constant operand in a test file: allowed
}

func compareComputed(got, want float32) bool {
	return got == want // want floateq
}
