// Package floateq exercises the one analyzer that applies to every package
// in the module, tests included.
package floateq

func badEqual(a, b float64) bool {
	return a == b // want floateq
}

func isNaN(x float64) bool {
	return x != x // NaN idiom: allowed
}

func approxEqual(a, b, eps float64) bool {
	if a == b { // approved epsilon helper: may use == for its fast path
		return true
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < eps
}

func converged(loss float32) bool {
	//bettyvet:ok floateq loss is exactly zero only for the empty-batch sentinel // want-sup+1 floateq
	return loss == 0
}

func missingReason(x float64) bool {
	// want+1 bettyvet
	//bettyvet:ok floateq
	return x == 0 // want floateq
}

func unknownAnalyzer(x float64) bool {
	//bettyvet:ok nosuch not a real analyzer // want bettyvet
	return x != 0 // want floateq
}
