// Package store is a minimal stand-in for betty/internal/store with just
// enough API surface (Cache, Pin, Unpin, Shard) for the pooldisc golden
// tests to type-check the shard pin/unpin pairing rule against.
package store

type Shard struct {
	ID   int
	Data []float32
}

type Cache struct{ resident map[int]*Shard }

func (c *Cache) Pin(id int) (*Shard, error) {
	sh, ok := c.resident[id]
	if !ok {
		sh = &Shard{ID: id}
	}
	return sh, nil
}

func (c *Cache) Unpin(sh *Shard) { _ = sh }
