// Package tensor is a minimal stand-in for betty/internal/tensor with just
// enough API surface (Tensor, Tape, NewTape, Alloc, Release, Record, plus
// the AcquireScratch/ReleaseScratch pair) for the pooldisc and hotalloc
// golden tests to type-check against. Record is the exported twin of the
// real Tape.record: hotalloc treats both as tape-op closure sites.
package tensor

type Tensor struct {
	RowsN, ColsN int
	Data         []float32
}

type Tape struct{ owned [][]float32 }

func NewTape() *Tape { return &Tape{} }

func (tp *Tape) Alloc(rows, cols int) *Tensor {
	return &Tensor{RowsN: rows, ColsN: cols, Data: make([]float32, rows*cols)}
}

func (tp *Tape) Release() { tp.owned = tp.owned[:0] }

func (tp *Tape) Record(value *Tensor, needsGrad bool, back func()) *Tensor {
	if needsGrad {
		back()
	}
	return value
}

func AcquireScratch(n int) []float32 { return make([]float32, n) }

func ReleaseScratch(s []float32) { _ = s }
