// Package parallel is a minimal stand-in for betty/internal/parallel with
// just enough API surface (Workers, SetWorkers, For) for the shardpure
// golden tests to type-check against.
package parallel

var workers = 1

func Workers() int { return workers }

func SetWorkers(n int) int { old := workers; workers = n; return old }

func For(n, grain int, body func(lo, hi int)) { body(0, n) }
