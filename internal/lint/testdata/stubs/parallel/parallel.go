// Package parallel is a minimal stand-in for betty/internal/parallel with
// just enough API surface (Workers, SetWorkers, For/ForShards/MapReduce)
// for the shardpure and hotalloc golden tests to type-check against.
package parallel

var workers = 1

func Workers() int { return workers }

func SetWorkers(n int) int { old := workers; workers = n; return old }

func For(n, grain int, body func(lo, hi int)) { body(0, n) }

func ForShards(bounds []int, body func(lo, hi int)) {
	for i := 1; i < len(bounds); i++ {
		body(bounds[i-1], bounds[i])
	}
}

func MapReduce(n, grain int, mapper func(lo, hi int) int, reduce func(a, b int) int) int {
	return mapper(0, n)
}
