// Package obs is a minimal stand-in for betty/internal/obs with just
// enough API surface (Registry, StartSpan/SetInt/End, the metric
// write/read methods) for the obsdisc golden tests to type-check against.
package obs

type Registry struct{ counters map[string]int64 }

func NewRegistry() *Registry { return &Registry{counters: map[string]int64{}} }

type Span struct{}

func (r *Registry) StartSpan(phase string) *Span { return &Span{} }

func (s *Span) SetInt(key string, v int64) *Span { return s }

func (s *Span) End() {}

func (r *Registry) Counter(name string)                       {}
func (r *Registry) Gauge(name string)                         {}
func (r *Registry) HistogramWith(name string, bounds []int64) {}
func (r *Registry) Add(name string, delta int64)              {}
func (r *Registry) Set(name string, v int64)                  {}
func (r *Registry) Observe(name string, v int64)              {}
func (r *Registry) CounterValue(name string) int64            { return r.counters[name] }
func (r *Registry) GaugeValue(name string) int64              { return r.counters[name] }
