// Package deep is the kernel side of the dettaint golden fixture: analyzed
// under betty/internal/sample/deep, its exported functions are taint entry
// points. The package itself is spotless under detrand/shardpure/mapiter —
// the nondeterminism lives two calls away in betty/app/taintutil, which is
// exactly the gap the interprocedural analyzer closes (see
// TestDettaintInterprocedural, which asserts detrand stays blind here).
package deep

import "betty/app/taintutil"

// PlanBatches reaches time.Now through taintutil.Stamp → tag → now.
func PlanBatches(n int) int { return taintutil.Stamp(n) }

// PlanOrder reaches the global math/rand stream through taintutil.Shuffle,
// whose finding carries a reasoned suppression.
func PlanOrder(xs []int) { taintutil.Shuffle(xs) }

// planLocal is unexported: not an entry point, and it calls nothing tainted.
func planLocal(n int) int { return n * 2 }
