// Package taintutil is the dettaint golden fixture: a non-kernel helper
// package whose sinks are invisible to every per-package analyzer (it is
// analyzed under betty/app/taintutil, outside kernel scope) yet reachable
// from the kernel entry points in the taintentry fixture. The wall-clock
// read sits two calls below the exported surface, so only the
// interprocedural walk can connect it to a kernel.
package taintutil

import (
	"math/rand"
	"time"
)

// Stamp is what the kernel entry point calls; the sink is two hops down.
func Stamp(n int) int { return tag(n) }

func tag(n int) int { return n + int(now().UnixNano()) }

func now() time.Time {
	return time.Now() // want dettaint
}

// Shuffle carries a reasoned suppression: the finding is real (the global
// math/rand stream is kernel-reachable through PlanOrder) but excused for
// the golden.
func Shuffle(xs []int) {
	//bettyvet:ok dettaint golden fixture: suppressed interprocedural finding // want-sup+1 dettaint
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// cold has the same sink but no caller: unreachable code is not reported.
func cold() int64 { return time.Now().UnixNano() }
