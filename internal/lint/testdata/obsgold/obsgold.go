// Package obsgold is the obsdisc golden fixture: every way a span can be
// started, ended, handed away, or leaked, plus metric reads that do and do
// not name a metric the module writes.
package obsgold

import "betty/internal/obs"

func leak(r *obs.Registry) {
	sp := r.StartSpan("train_step") // want obsdisc
	_ = sp
}

func discard(r *obs.Registry) {
	r.StartSpan("dropped") // want obsdisc
}

func discardBlank(r *obs.Registry) {
	_ = r.StartSpan("blanked") // want obsdisc
}

func okDeferred(r *obs.Registry) {
	sp := r.StartSpan("gather").SetInt("nodes", 1)
	defer sp.End()
}

func okInline(r *obs.Registry) {
	sp := r.StartSpan("scatter")
	sp.End()
}

func okReturned(r *obs.Registry) *obs.Span {
	sp := r.StartSpan("handed_off")
	return sp
}

func finish(sp *obs.Span) { sp.End() }

func okPassed(r *obs.Registry) {
	sp := r.StartSpan("delegated")
	finish(sp)
}

type stepState struct{ sp *obs.Span }

func okFieldStored(r *obs.Registry, st *stepState) {
	sp := r.StartSpan("held")
	st.sp = sp
}

func okSuppressedLeak(r *obs.Registry) {
	//bettyvet:ok obsdisc golden fixture: span deliberately leaked to exercise the audit // want-sup+1 obsdisc
	sp := r.StartSpan("leaky")
	_ = sp
}

func readTypo(r *obs.Registry) int64 {
	return r.CounterValue("serve.requets_total") // want obsdisc
}

func okReadWritten(r *obs.Registry) int64 {
	r.Add("serve.requests_total", 1)
	return r.CounterValue("serve.requests_total")
}

func okReadGauge(r *obs.Registry) int64 {
	r.Set("pool.live_bytes", 1)
	return r.GaugeValue("pool.live_bytes")
}

// okReadSpanHistogram reads a span-phase histogram: those are written
// implicitly by Span.End and exempt from the registration rule.
func okReadSpanHistogram(r *obs.Registry) int64 {
	return r.GaugeValue("span.train_step_ns")
}
