// Package nonkernel holds the same patterns the kernel-scoped analyzers
// flag, placed under a non-kernel import path: none of them may be reported.
package nonkernel

import (
	"math/rand"
	"runtime"
	"time"
)

func jitter() time.Duration {
	return time.Duration(rand.Intn(int(time.Now().UnixNano()%1000 + 1)))
}

func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func procs() int { return runtime.NumCPU() }

// The annotation below silences nothing — detrand does not run outside
// kernel packages — so the suppression audit must flag it as stale.
//
//bettyvet:ok detrand deliberately stale annotation for the audit golden // want-stale
func annotatedForNothing(since time.Time) time.Duration {
	return time.Since(since)
}
