package lint

import (
	"fmt"
	"go/types"
	"strconv"
)

// Detrand guards DESIGN.md §8's first determinism clause: kernel outputs
// are pure functions of their inputs and seeds. A kernel that reads the
// global math/rand stream or the wall clock produces run-dependent results
// that no worker-count or pooling A/B test can pin down.
var Detrand = &Analyzer{
	Name: "detrand",
	Doc: "forbid nondeterministic inputs (math/rand, crypto/rand, time.Now/Since/Until) " +
		"in kernel packages; randomness must come from the seeded internal/rng",
	Run: runDetrand,
}

// detrandBannedImports are whole packages kernels may not import: their
// entire APIs are nondeterministic sources.
var detrandBannedImports = map[string]string{
	"math/rand":    "use the seeded betty/internal/rng instead",
	"math/rand/v2": "use the seeded betty/internal/rng instead",
	"crypto/rand":  "kernels need reproducible streams, not entropy",
}

// runDetrand is a thin wrapper over the shared sink classifier of
// callgraph.go: it applies the wall-clock classification to every
// identifier use in a kernel package (dettaint applies the same
// classification interprocedurally) and keeps the import-level ban, which
// has no interprocedural analogue.
func runDetrand(p *Package) []Diagnostic {
	if !isKernel(p.Path) {
		return nil
	}
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if why, ok := detrandBannedImports[path]; ok {
				diags = append(diags, Diagnostic{
					Analyzer: "detrand",
					Pos:      p.pos(imp),
					Message:  fmt.Sprintf("kernel package imports nondeterministic %s: %s", path, why),
				})
			}
		}
	}
	for id, obj := range p.Info.Uses {
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		kind, detail, isSink := classifySink(fn, p.Path)
		if !isSink || kind != "wall-clock" {
			continue
		}
		diags = append(diags, Diagnostic{
			Analyzer: "detrand",
			Pos:      p.Fset.Position(id.Pos()),
			Message: fmt.Sprintf("kernel package reads the wall clock via %s; "+
				"kernel results must not depend on time (inject timestamps from the caller)", detail),
		})
	}
	return diags
}
