package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// Obsdisc is pooldisc's sibling for the observability layer: the
// instrumentation contract of DESIGN.md §10 is only self-enforcing when
// spans actually End (an unpaired span never feeds its phase histogram,
// silently biasing every span.<phase>_ns percentile) and when metric reads
// name metrics that something writes (CounterValue of a typo'd name
// returns a well-formed zero forever). Two rules:
//
//  1. Span pairing — a function that binds obs.Registry.StartSpan's result
//     (chained SetInt calls included) must call End on it, or visibly hand
//     ownership away: return it, store it in a struct field, or pass it to
//     a callee. A StartSpan result that is discarded outright can never be
//     ended and is always flagged.
//  2. Registration before use — every CounterValue/GaugeValue read of a
//     literal metric name must name a metric some code in the module
//     registers or writes (Counter, Gauge, HistogramWith, Add, Set,
//     Observe). Span histograms ("span.<phase>_ns") are written implicitly
//     by End and are exempt.
//
// The obs package itself is exempt — it is the implementation — and so are
// its tests; reads in other packages' tests are checked, because a typo'd
// assertion passes vacuously, which is precisely the rot this rule exists
// to stop.
var Obsdisc = &Analyzer{
	Name: "obsdisc",
	Doc: "require every obs span bound from StartSpan to be Ended or ownership-transferred, " +
		"and every CounterValue/GaugeValue read to name a metric the module writes",
	RunModule: runObsdisc,
}

const obsPkg = "betty/internal/obs"

// obsWriteMethods are the Registry methods that create or write a metric.
var obsWriteMethods = map[string]bool{
	"Add": true, "Set": true, "Observe": true,
	"Counter": true, "Gauge": true, "HistogramWith": true,
}

// obsReadMethods are the Registry methods that read without creating.
var obsReadMethods = map[string]bool{"CounterValue": true, "GaugeValue": true}

func runObsdisc(m *Module) []Diagnostic {
	var diags []Diagnostic
	written := make(map[string]bool)
	type read struct {
		name string
		pos  ast.Node
		pkg  *Package
	}
	var reads []read

	for _, p := range m.Pkgs {
		if strings.TrimSuffix(p.Path, "_test") == obsPkg {
			continue
		}
		for _, f := range p.Files {
			testFile := p.isTestFile(f)
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if !testFile {
					diags = append(diags, spanPairing(p, fd)...)
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					fn := funcObj(p.Info, call)
					if fn == nil || !isMethodOn(fn, obsPkg, "Registry", fn.Name()) || len(call.Args) == 0 {
						return true
					}
					name, isLit := stringLiteral(call.Args[0])
					if !isLit {
						return true
					}
					switch {
					case obsWriteMethods[fn.Name()]:
						written[name] = true
					case obsReadMethods[fn.Name()]:
						reads = append(reads, read{name: name, pos: call, pkg: p})
					}
					return true
				})
			}
		}
	}

	sort.Slice(reads, func(i, j int) bool { return reads[i].name < reads[j].name })
	for _, r := range reads {
		if written[r.name] || strings.HasPrefix(r.name, "span.") {
			continue
		}
		diags = append(diags, Diagnostic{
			Analyzer: "obsdisc",
			Pos:      r.pkg.pos(r.pos),
			Message: fmt.Sprintf("metric %q is read but nothing in the module registers or writes it: "+
				"a typo'd name reads zero forever; register the metric or fix the name", r.name),
		})
	}
	return diags
}

// spanPairing enforces rule 1 on one function.
func spanPairing(p *Package, fd *ast.FuncDecl) []Diagnostic {
	var diags []Diagnostic
	owned := make(map[types.Object]ast.Node)
	ended := make(map[types.Object]bool)
	transferred := make(map[types.Object]bool)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) != len(s.Rhs) {
				return true
			}
			for i, rhs := range s.Rhs {
				if !isSpanChain(p, rhs) {
					continue
				}
				switch lhs := ast.Unparen(s.Lhs[i]).(type) {
				case *ast.Ident:
					if lhs.Name == "_" {
						diags = append(diags, Diagnostic{
							Analyzer: "obsdisc",
							Pos:      p.pos(s),
							Message: "obs span discarded at creation: a span that is never Ended " +
								"skews every span.<phase>_ns histogram; bind it and call End",
						})
						continue
					}
					owned[p.Info.ObjectOf(lhs)] = s
				case *ast.SelectorExpr:
					// Field store at creation: ownership lives with the struct.
				}
			}
		case *ast.ExprStmt:
			if isSpanChain(p, s.X) {
				diags = append(diags, Diagnostic{
					Analyzer: "obsdisc",
					Pos:      p.pos(s),
					Message: "obs span discarded at creation: a span that is never Ended " +
						"skews every span.<phase>_ns histogram; bind it and call End",
				})
			}
		case *ast.CallExpr:
			if fn := funcObj(p.Info, s); isMethodOn(fn, obsPkg, "Span", "End") {
				if sel, ok := ast.Unparen(s.Fun).(*ast.SelectorExpr); ok {
					if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
						ended[p.Info.ObjectOf(id)] = true
					}
				}
				return true
			}
			// Passing an owned span to a callee transfers responsibility.
			for _, arg := range s.Args {
				if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
					if _, isOwned := owned[p.Info.ObjectOf(id)]; isOwned {
						transferred[p.Info.ObjectOf(id)] = true
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range s.Results {
				if id, ok := ast.Unparen(res).(*ast.Ident); ok {
					transferred[p.Info.ObjectOf(id)] = true
				}
			}
		}
		return true
	})

	// Field stores transfer ownership, mirroring pooldisc.
	for obj, site := range owned {
		if ended[obj] || transferred[obj] || fieldAssigned(p, fd, obj) {
			continue
		}
		diags = append(diags, Diagnostic{
			Analyzer: "obsdisc",
			Pos:      p.pos(site),
			Message: "obs span bound here but neither Ended nor ownership-transferred in this " +
				"function: call End (usually defer sp.End()) or visibly hand the span away",
		})
	}
	return diags
}

// isSpanChain reports whether e is a Registry.StartSpan call, possibly
// wrapped in chained Span.SetInt calls.
func isSpanChain(p *Package, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := funcObj(p.Info, call)
	if isMethodOn(fn, obsPkg, "Registry", "StartSpan") {
		return true
	}
	if isMethodOn(fn, obsPkg, "Span", "SetInt") {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			return isSpanChain(p, sel.X)
		}
	}
	return false
}

// stringLiteral extracts a string literal expression's value.
func stringLiteral(e ast.Expr) (string, bool) {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	name, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return name, true
}
