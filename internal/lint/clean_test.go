package lint

import "testing"

// TestRepositoryClean runs the full analyzer suite over the whole module
// and requires zero active diagnostics: every real finding must be fixed
// and every intentional one annotated before a change lands. This is the
// in-tree twin of the CI `go run ./cmd/bettyvet ./...` gate.
func TestRepositoryClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checking the whole module is not short")
	}
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	clean := true
	for _, p := range pkgs {
		for _, d := range Run(p).Diags {
			clean = false
			t.Errorf("%s", d)
		}
	}
	if !clean {
		t.Error("bettyvet must be clean on the committed tree: fix the finding or annotate it with //bettyvet:ok <analyzer> <reason>")
	}
}
