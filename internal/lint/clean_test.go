package lint

import "testing"

// TestRepositoryClean runs the full analyzer suite — all nine analyzers,
// local and module-scoped, plus the suppression audit — over the whole
// module and requires zero active diagnostics and zero stale suppressions:
// every real finding must be fixed, every intentional one annotated, and
// every annotation must still be earning its keep. This is the in-tree
// twin of the CI `go run ./cmd/bettyvet -audit ./...` gate.
func TestRepositoryClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checking the whole module is not short")
	}
	m, err := LoadModule("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	for _, d := range res.Diags {
		t.Errorf("%s", d)
	}
	for _, d := range res.Stale {
		t.Errorf("%s", d)
	}
	if len(res.Diags) > 0 {
		t.Error("bettyvet must be clean on the committed tree: fix the finding or annotate it with //bettyvet:ok <analyzer> <reason>")
	}
	if len(res.Stale) > 0 {
		t.Error("stale //bettyvet:ok annotations must be removed (go run ./cmd/bettyvet -audit ./...)")
	}
}
