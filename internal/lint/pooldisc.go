package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// Pooldisc guards the tape-pool ownership discipline from DESIGN.md §8:
// tensor.Tape owns every pooled buffer it hands out, Release returns the
// whole arena, and a released tensor is poison. Three rules follow:
//
//  1. A function that binds a fresh tape to a local (tp :=
//     tensor.NewTape()) must either release a tape (a Release call or
//     defer anywhere in the function) or visibly hand ownership away —
//     return the tape or store it in a struct field whose owner releases
//     it later. Passing a fresh tape straight into a call or a return also
//     counts as a transfer.
//  2. A tensor obtained from Tape.Alloc is arena-backed and dies at
//     Release; it must never escape into a return value or a struct field.
//     (Passing it down as a call argument is fine — the callee finishes
//     before Release can run.)
//  3. A raw scratch slice from tensor.AcquireScratch (the dequant-tile and
//     fused-kernel buffers of DESIGN.md §13) follows the tape's rule 1: the
//     binding function must call tensor.ReleaseScratch or visibly transfer
//     ownership (return the slice or store it in a struct field — the
//     install/uninstall weight-swap pattern, where a later function
//     releases it).
//  4. A shard pinned through store.Cache.Pin (the out-of-core feature
//     cache of DESIGN.md §15) follows the same shape: a pinned shard
//     blocks eviction, so the binding function must call store.Cache.Unpin
//     or visibly transfer ownership (return the shard or store it in a
//     struct field whose owner unpins later). A leaked pin slowly wedges
//     the cache — gathers block once every resident shard is pinned.
//
// The tensor and store packages themselves are exempt: each is the
// implementation of its discipline (their internal acquire/release pairs
// are arena- or cache-scoped, not function-scoped). Test files are exempt
// too — short-lived test tapes lean on the GC by design, and the pool only
// retains buffers on Release.
var Pooldisc = &Analyzer{
	Name: "pooldisc",
	Doc: "require every locally bound tensor.NewTape to be Released or ownership-transferred, " +
		"forbid Tape.Alloc results escaping into returns or struct fields, " +
		"require every tensor.AcquireScratch to be ReleaseScratch-ed or ownership-transferred, " +
		"and require every store.Cache.Pin to be Unpinned or ownership-transferred",
	Run: runPooldisc,
}

const (
	tensorPkg = "betty/internal/tensor"
	storePkg  = "betty/internal/store"
)

func runPooldisc(p *Package) []Diagnostic {
	if p.Path == tensorPkg || p.Path == storePkg {
		return nil
	}
	var diags []Diagnostic
	for _, f := range p.Files {
		if p.isTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			diags = append(diags, pooldiscFunc(p, fd)...)
		}
	}
	return diags
}

func pooldiscFunc(p *Package, fd *ast.FuncDecl) []Diagnostic {
	var diags []Diagnostic

	// pooled taints locals holding Tape.Alloc results (directly or through
	// aliasing); owned maps locals bound to a fresh tape to the binding
	// site. ast.Inspect visits statements in source order, so the taint
	// flows top-down, which matches straight-line dataflow closely enough
	// for a lint.
	pooled := make(map[types.Object]bool)
	owned := make(map[types.Object]ast.Node)
	scratchOwned := make(map[types.Object]ast.Node)
	pinOwned := make(map[types.Object]ast.Node)
	released := false
	scratchReleased := false
	unpinned := false

	// isTensorFunc matches a call to a package-level tensor function.
	isTensorFunc := func(e ast.Expr, name string) bool {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok {
			return false
		}
		fn := funcObj(p.Info, call)
		return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == tensorPkg &&
			fn.Name() == name && fn.Type().(*types.Signature).Recv() == nil
	}
	isNewTape := func(e ast.Expr) bool { return isTensorFunc(e, "NewTape") }
	isAlloc := func(e ast.Expr) bool {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok {
			return false
		}
		return isMethodOn(funcObj(p.Info, call), tensorPkg, "Tape", "Alloc")
	}
	// isPooled reports whether e evaluates to an arena-backed tensor.
	isPooled := func(e ast.Expr) bool {
		if isAlloc(e) {
			return true
		}
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			return pooled[p.Info.ObjectOf(id)]
		}
		return false
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) != len(s.Rhs) {
				// Multi-value form. The only tracked multi-value acquisition
				// is the cache pin: sh, err := c.Pin(id).
				if len(s.Lhs) == 2 && len(s.Rhs) == 1 {
					if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok &&
						isMethodOn(funcObj(p.Info, call), storePkg, "Cache", "Pin") {
						if id, ok := ast.Unparen(s.Lhs[0]).(*ast.Ident); ok {
							pinOwned[p.Info.ObjectOf(id)] = s
						}
					}
				}
				return true
			}
			for i, rhs := range s.Rhs {
				lhs := ast.Unparen(s.Lhs[i])
				switch {
				case isNewTape(rhs):
					// Ident binding demands a Release; a field store is an
					// ownership transfer and needs nothing here.
					if id, ok := lhs.(*ast.Ident); ok {
						owned[p.Info.ObjectOf(id)] = s
					}
				case isTensorFunc(rhs, "AcquireScratch"):
					if id, ok := lhs.(*ast.Ident); ok {
						scratchOwned[p.Info.ObjectOf(id)] = s
					}
				case isPooled(rhs):
					if sel, ok := lhs.(*ast.SelectorExpr); ok {
						diags = append(diags, Diagnostic{
							Analyzer: "pooldisc",
							Pos:      p.pos(s),
							Message: fmt.Sprintf("pooled tensor from Tape.Alloc stored in field %s: "+
								"arena-backed tensors die at Release and must not outlive the tape", sel.Sel.Name),
						})
					} else if id, ok := lhs.(*ast.Ident); ok {
						pooled[p.Info.ObjectOf(id)] = true
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range s.Results {
				if isPooled(res) {
					diags = append(diags, Diagnostic{
						Analyzer: "pooldisc",
						Pos:      p.pos(s),
						Message: "pooled tensor from Tape.Alloc returned: arena-backed tensors die " +
							"at the tape's Release and must not escape the releasing function",
					})
				}
				// Returning an owned tape or scratch slice transfers
				// ownership to the caller.
				if id, ok := ast.Unparen(res).(*ast.Ident); ok {
					delete(owned, p.Info.ObjectOf(id))
					delete(scratchOwned, p.Info.ObjectOf(id))
					delete(pinOwned, p.Info.ObjectOf(id))
				}
			}
		case *ast.CallExpr:
			if isMethodOn(funcObj(p.Info, s), tensorPkg, "Tape", "Release") {
				released = true
			}
			if isTensorFunc(s, "ReleaseScratch") {
				scratchReleased = true
			}
			if isMethodOn(funcObj(p.Info, s), storePkg, "Cache", "Unpin") {
				unpinned = true
			}
		}
		return true
	})

	if !released {
		for obj, site := range owned {
			if fieldAssigned(p, fd, obj) {
				continue // ownership transferred to a long-lived struct
			}
			diags = append(diags, Diagnostic{
				Analyzer: "pooldisc",
				Pos:      p.pos(site),
				Message: "tensor.NewTape bound here but no Tape.Release in this function: every pooled " +
					"acquisition must be released (defer tp.Release()) or ownership visibly transferred",
			})
		}
	}
	if !scratchReleased {
		for obj, site := range scratchOwned {
			if fieldAssigned(p, fd, obj) {
				continue // install-pattern transfer: the owning struct's uninstall releases it
			}
			diags = append(diags, Diagnostic{
				Analyzer: "pooldisc",
				Pos:      p.pos(site),
				Message: "tensor.AcquireScratch bound here but no tensor.ReleaseScratch in this function: " +
					"every scratch slice must be released (defer tensor.ReleaseScratch(s)) or ownership visibly transferred",
			})
		}
	}
	if !unpinned {
		for obj, site := range pinOwned {
			if fieldAssigned(p, fd, obj) {
				continue // ownership transferred: the holding struct unpins later
			}
			diags = append(diags, Diagnostic{
				Analyzer: "pooldisc",
				Pos:      p.pos(site),
				Message: "store.Cache.Pin bound here but no Cache.Unpin in this function: a leaked pin " +
					"blocks eviction forever — unpin (defer c.Unpin(sh)) or visibly transfer ownership",
			})
		}
	}
	return diags
}

// fieldAssigned reports whether obj's value is assigned to a struct field
// somewhere in fd (ownership transfer of a tape).
func fieldAssigned(p *Package, fd *ast.FuncDecl, obj types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		s, ok := n.(*ast.AssignStmt)
		if !ok || len(s.Lhs) != len(s.Rhs) {
			return true
		}
		for i, rhs := range s.Rhs {
			id, ok := ast.Unparen(rhs).(*ast.Ident)
			if !ok || p.Info.ObjectOf(id) != obj {
				continue
			}
			if _, ok := ast.Unparen(s.Lhs[i]).(*ast.SelectorExpr); ok {
				found = true
			}
		}
		return true
	})
	return found
}
