package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// Hotalloc guards the residual-allocation class BENCH_step.json measures:
// after the tape pool (PR 2) and the fused tier (PR 7), what is left on
// the per-step allocation profile is memory conjured inside the hottest
// closures — parallel.For / ForShards / MapReduce bodies, which run once
// per shard per kernel call, and tape-op backward closures, which run once
// per op per Backward. A make, a slice/map literal, or an append inside
// one of those multiplies by the step count and shows straight up in
// allocs/step; the sanctioned buffers are pooled (Tape.Alloc /
// tensor.AcquireScratch) or hoisted to the enclosing function, where they
// are paid once per call instead of once per shard.
//
// The analyzer is syntactic about the closure body: it flags make/new
// calls, slice and map composite literals, and append calls written
// directly inside a hot closure (nested literals included — a closure in a
// closure is still per-shard code). Allocation hidden behind a function
// call is out of scope — the called function is visible on a profile under
// its own name. Intentional allocations (a cold error path, a
// once-per-shard buffer that must be private) carry a reasoned
// //bettyvet:ok hotalloc annotation.
var Hotalloc = &Analyzer{
	Name: "hotalloc",
	Doc: "flag make/new, slice/map composite literals, and append inside parallel.For/" +
		"ForShards/MapReduce bodies and tape-op closures; hot-path buffers come from " +
		"Tape.Alloc/AcquireScratch or are hoisted to the enclosing function",
	Run: runHotalloc,
}

// hotParallelFuncs are the worker-pool entry points whose closure
// arguments execute once per shard.
var hotParallelFuncs = map[string]bool{"For": true, "ForShards": true, "MapReduce": true}

func runHotalloc(p *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Files {
		if p.isTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			kind, hot := hotClosureCall(p, call)
			if !hot {
				return true
			}
			for _, arg := range call.Args {
				if lit, isLit := ast.Unparen(arg).(*ast.FuncLit); isLit {
					diags = append(diags, allocsIn(p, lit, kind)...)
				}
			}
			return true
		})
	}
	return diags
}

// hotClosureCall reports whether call is one whose closure arguments are
// hot: a parallel.For/ForShards/MapReduce call or a Tape.record/Record
// call (the autograd backward closures).
func hotClosureCall(p *Package, call *ast.CallExpr) (string, bool) {
	fn := funcObj(p.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	sig, _ := fn.Type().(*types.Signature)
	if fn.Pkg().Path() == parallelPkg && sig != nil && sig.Recv() == nil && hotParallelFuncs[fn.Name()] {
		return "parallel." + fn.Name() + " body", true
	}
	if isMethodOn(fn, tensorPkg, "Tape", "record") || isMethodOn(fn, tensorPkg, "Tape", "Record") {
		return "tape-op closure", true
	}
	return "", false
}

// allocsIn flags the allocation sites written directly inside lit's body.
func allocsIn(p *Package, lit *ast.FuncLit, kind string) []Diagnostic {
	var diags []Diagnostic
	flag := func(n ast.Node, what string) {
		diags = append(diags, Diagnostic{
			Analyzer: "hotalloc",
			Pos:      p.pos(n),
			Message: fmt.Sprintf("%s in a %s allocates once per shard/op on the hot path: "+
				"use Tape.Alloc/tensor.AcquireScratch, hoist the buffer to the enclosing "+
				"function, or annotate //bettyvet:ok hotalloc <reason>", what, kind),
		})
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.CallExpr:
			fun, ok := ast.Unparen(s.Fun).(*ast.Ident)
			if !ok {
				return true
			}
			b, ok := p.Info.Uses[fun].(*types.Builtin)
			if !ok {
				return true
			}
			switch b.Name() {
			case "make":
				flag(s, "make")
			case "new":
				flag(s, "new")
			case "append":
				flag(s, "append (may grow)")
			}
		case *ast.CompositeLit:
			tv, ok := p.Info.Types[s]
			if !ok || tv.Type == nil {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Slice:
				flag(s, "slice literal")
			case *types.Map:
				flag(s, "map literal")
			}
		}
		return true
	})
	return diags
}
