// Package lint implements bettyvet, the project-specific static-analysis
// suite that machine-checks the invariants the training stack's correctness
// rests on (DESIGN.md §9):
//
//   - detrand: kernel packages draw randomness only from the seeded
//     internal/rng and never read the wall clock, so every kernel output is
//     a pure function of its inputs and seeds.
//   - shardpure: shard boundaries depend only on the problem, never on the
//     worker count — runtime.NumCPU, runtime.GOMAXPROCS, and
//     parallel.Workers are off-limits outside internal/parallel.
//   - mapiter: no kernel feeds ordered output from an unsorted map
//     iteration.
//   - pooldisc: every tape created is released (or has its ownership
//     transferred), and pooled tensors from Tape.Alloc never escape into
//     struct fields or return values.
//   - floateq: floating-point values are never compared with ==/!= outside
//     approved epsilon/bit-equality helpers.
//
// The suite is zero-dependency: packages are enumerated with `go list
// -json`, parsed with go/parser, and type-checked with go/types against the
// source importer, so it runs fully offline. Intentional violations are
// suppressed with a reasoned annotation on the offending line or the line
// above it:
//
//	//bettyvet:ok <analyzer> <reason>
//
// A suppression without a reason (or naming an unknown analyzer) is itself
// reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// An Analyzer reports findings at one of two scopes: local analyzers (Run)
// inspect one type-checked package at a time; module analyzers (RunModule)
// see the whole module at once — the call graph, every package, and the
// README — and catch what no single-package view can (a sink one call away
// from a kernel, a knob missing from the doc table). Exactly one of Run
// and RunModule is set.
type Analyzer struct {
	Name      string
	Doc       string
	Run       func(p *Package) []Diagnostic
	RunModule func(m *Module) []Diagnostic
}

// Analyzers returns the full bettyvet suite in report order: the five
// local analyzers from PR 3, then the four module-scoped analyzers built
// on the whole-module call graph.
func Analyzers() []*Analyzer {
	return []*Analyzer{Detrand, Shardpure, Mapiter, Pooldisc, Floateq,
		Dettaint, Hotalloc, Envreg, Obsdisc}
}

// Module is the whole-module analysis view: every loaded package plus the
// lazily built call graph and the README content envreg diffs its knob
// registry against.
type Module struct {
	Pkgs []*Package
	// KnobDoc is the README.md content ("" skips the registry/doc diff —
	// subset runs and golden tests set it explicitly).
	KnobDoc string

	graph *CallGraph
}

// NewModule wraps pkgs for module-scoped analysis.
func NewModule(pkgs []*Package) *Module { return &Module{Pkgs: pkgs} }

// CallGraph returns the module's static call graph, building it on first
// use.
func (m *Module) CallGraph() *CallGraph {
	if m.graph == nil {
		m.graph = buildCallGraph(m.Pkgs)
	}
	return m.graph
}

// Run executes the full analyzer suite — local analyzers over every
// package, module analyzers once — applies suppressions across the whole
// module, and audits them: an annotation that silences no diagnostic is
// itself reported in Stale, so //bettyvet:ok comments cannot outlive the
// finding they excused.
func (m *Module) Run() Result {
	var all []Diagnostic
	for _, a := range Analyzers() {
		if a.Run != nil {
			for _, p := range m.Pkgs {
				all = append(all, a.Run(p)...)
			}
		}
		if a.RunModule != nil {
			all = append(all, a.RunModule(m)...)
		}
	}
	set := make(suppressionSet)
	var anns []*suppAnnotation
	var res Result
	for _, p := range m.Pkgs {
		pAnns, malformed := parseAnnotations(p, set)
		anns = append(anns, pAnns...)
		res.Diags = append(res.Diags, malformed...)
	}
	for _, d := range all {
		if ann := set.covering(d); ann != nil {
			ann.used = true
			res.Suppressed = append(res.Suppressed, d)
		} else {
			res.Diags = append(res.Diags, d)
		}
	}
	for _, ann := range anns {
		if ann.used {
			continue
		}
		res.Stale = append(res.Stale, Diagnostic{
			Analyzer: auditAnalyzer,
			Pos:      ann.pos,
			Message: fmt.Sprintf("stale suppression: //%s %s silences no diagnostic here; "+
				"remove the annotation (or fix it to sit on the offending line or the line above)",
				suppressPrefix, ann.analyzer),
		})
	}
	sortDiags(res.Diags)
	sortDiags(res.Suppressed)
	sortDiags(res.Stale)
	return res
}

// auditAnalyzer is the pseudo-analyzer name stale-suppression findings are
// reported under (bettyvet -audit).
const auditAnalyzer = "bettyvet-audit"

// kernelPrefixes are the import paths of the kernel packages whose outputs
// must be bitwise-deterministic. Scoped analyzers apply to these packages
// and their subpackages only.
var kernelPrefixes = []string{
	"betty/internal/tensor",
	"betty/internal/graph",
	"betty/internal/reg",
	"betty/internal/partition",
	"betty/internal/sample",
	"betty/internal/sparse",
	"betty/internal/parallel",
}

// isKernel reports whether path is a kernel package (or a subpackage of
// one). External test packages ("pkg_test") share their package's scope.
func isKernel(path string) bool {
	path = strings.TrimSuffix(path, "_test")
	for _, pre := range kernelPrefixes {
		if path == pre || strings.HasPrefix(path, pre+"/") {
			return true
		}
	}
	return false
}

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	// Path is the import path scoped analyzers dispatch on. External test
	// packages carry their "_test" suffix.
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// pos returns the position of n in p's file set.
func (p *Package) pos(n ast.Node) token.Position { return p.Fset.Position(n.Pos()) }

// isTestFile reports whether f is a _test.go file.
func (p *Package) isTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go")
}

// Result separates the findings that stand from those silenced by a
// reasoned //bettyvet:ok annotation; all slices are position-sorted.
// Suppressed findings are kept so tests can assert a suppression actually
// matched a finding rather than the analyzer missing the line. Stale holds
// the audit findings of Module.Run: annotations that silenced nothing.
type Result struct {
	Diags      []Diagnostic
	Suppressed []Diagnostic
	Stale      []Diagnostic
}

// Run executes the local analyzers on p and applies suppressions. Module
// analyzers (and the suppression audit) need the whole module — use
// Module.Run; this per-package entry point exists for focused tests and
// for comparing the local analyzers' reach against the interprocedural
// ones.
func Run(p *Package) Result {
	var all []Diagnostic
	for _, a := range Analyzers() {
		if a.Run == nil {
			continue
		}
		all = append(all, a.Run(p)...)
	}
	set := make(suppressionSet)
	_, malformed := parseAnnotations(p, set)
	res := Result{Diags: malformed}
	for _, d := range all {
		if ann := set.covering(d); ann != nil {
			ann.used = true
			res.Suppressed = append(res.Suppressed, d)
		} else {
			res.Diags = append(res.Diags, d)
		}
	}
	sortDiags(res.Diags)
	sortDiags(res.Suppressed)
	return res
}

func sortDiags(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// suppressionKey identifies one (file, line, analyzer) a //bettyvet:ok
// comment silences.
type suppressionKey struct {
	file     string
	line     int
	analyzer string
}

// suppAnnotation is one parsed //bettyvet:ok comment. used flips when a
// diagnostic matches it, so Module.Run can audit for stale annotations.
type suppAnnotation struct {
	analyzer string
	pos      token.Position
	used     bool
}

type suppressionSet map[suppressionKey]*suppAnnotation

func (s suppressionSet) covering(d Diagnostic) *suppAnnotation {
	return s[suppressionKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}]
}

// suppressPrefix introduces a suppression comment. The full syntax is
// "//bettyvet:ok <analyzer> <reason>"; the annotation covers its own line
// and the line below, so it can trail the offending statement or sit on its
// own line above it.
const suppressPrefix = "bettyvet:ok"

// parseAnnotations collects every //bettyvet:ok annotation in p into set
// and returns the parsed annotations plus malformed ones — unknown
// analyzer or missing reason — as diagnostics of the pseudo-analyzer
// "bettyvet", so a suppression can never silently rot into a no-op.
func parseAnnotations(p *Package, set suppressionSet) ([]*suppAnnotation, []Diagnostic) {
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	var anns []*suppAnnotation
	var malformed []Diagnostic
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+suppressPrefix)
				if !ok {
					continue
				}
				pos := p.pos(c)
				fields := strings.Fields(text)
				if len(fields) == 0 || !known[fields[0]] {
					malformed = append(malformed, Diagnostic{
						Analyzer: "bettyvet",
						Pos:      pos,
						Message:  fmt.Sprintf("suppression %q must name a known analyzer (one of %s)", c.Text, analyzerNames()),
					})
					continue
				}
				if len(fields) < 2 {
					malformed = append(malformed, Diagnostic{
						Analyzer: "bettyvet",
						Pos:      pos,
						Message:  fmt.Sprintf("suppression of %q must carry a reason: //%s %s <why this is intentional>", fields[0], suppressPrefix, fields[0]),
					})
					continue
				}
				ann := &suppAnnotation{analyzer: fields[0], pos: pos}
				anns = append(anns, ann)
				for _, line := range []int{pos.Line, pos.Line + 1} {
					set[suppressionKey{pos.Filename, line, fields[0]}] = ann
				}
			}
		}
	}
	return anns, malformed
}

func analyzerNames() string {
	var names []string
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	return strings.Join(names, ", ")
}

// funcObj resolves the called function/method of a call expression, seeing
// through parentheses. It returns nil for builtins, type conversions, and
// calls of function-typed values.
func funcObj(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isMethodOn reports whether fn is the named method on the given type
// (pointer or value receiver) of the given package path.
func isMethodOn(fn *types.Func, pkgPath, typeName, method string) bool {
	if fn == nil || fn.Name() != method {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == typeName
}
