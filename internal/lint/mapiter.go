package lint

import (
	"go/ast"
	"go/types"
)

// Mapiter guards kernel output ordering: Go map iteration order is
// deliberately randomized, so a kernel loop that ranges over a map and
// feeds anything order-sensitive (appends to an output slice in visit
// order, accumulates floats, emits rows) produces run-dependent bytes.
//
// The one recognized safe idiom is key collection for sorting: a range
// body that only appends to slices which are later passed to a sort or
// slices call in the same function is deterministic end-to-end and is not
// flagged. Everything else needs either a sorted key slice or a reasoned
// //bettyvet:ok mapiter annotation.
//
// The analyzer is deliberately conservative in what it excuses, not in
// what it flags: order-insensitive map ranges it cannot prove safe must be
// annotated, which is exactly the audit trail the invariant wants.
var Mapiter = &Analyzer{
	Name: "mapiter",
	Doc: "flag range over maps in kernel packages (non-test files) unless the loop " +
		"only collects keys that are subsequently sorted",
	Run: runMapiter,
}

func runMapiter(p *Package) []Diagnostic {
	if !isKernel(p.Path) {
		return nil
	}
	var diags []Diagnostic
	for _, f := range p.Files {
		if p.isTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			diags = append(diags, mapitersIn(p, fd)...)
		}
	}
	return diags
}

func mapitersIn(p *Package, fd *ast.FuncDecl) []Diagnostic {
	var diags []Diagnostic
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := p.Info.Types[rs.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		if sortedKeyCollection(p, fd, rs) {
			return true
		}
		diags = append(diags, Diagnostic{
			Analyzer: "mapiter",
			Pos:      p.pos(rs),
			Message: "iteration over a map in a kernel package: map order is randomized, so any " +
				"order-sensitive output becomes nondeterministic; sort the keys first or annotate " +
				"//bettyvet:ok mapiter <reason>",
		})
		return true
	})
	return diags
}

// sortedKeyCollection reports whether rs is the safe collect-then-sort
// idiom: every statement in the body (conditionals included) only appends
// to slice variables, and at least one of those variables is an argument to
// a sort./slices. call after the loop in the same function.
func sortedKeyCollection(p *Package, fd *ast.FuncDecl, rs *ast.RangeStmt) bool {
	appended := make(map[types.Object]bool)
	pure := true
	var scan func(stmts []ast.Stmt)
	scan = func(stmts []ast.Stmt) {
		for _, st := range stmts {
			switch s := st.(type) {
			case *ast.AssignStmt:
				obj := appendTarget(p, s)
				if obj == nil {
					pure = false
					return
				}
				appended[obj] = true
			case *ast.IfStmt:
				if s.Init != nil || s.Else != nil {
					pure = false
					return
				}
				scan(s.Body.List)
			default:
				pure = false
				return
			}
		}
	}
	scan(rs.Body.List)
	if !pure || len(appended) == 0 {
		return false
	}
	sorted := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		fn := funcObj(p.Info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if path := fn.Pkg().Path(); path != "sort" && path != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && appended[p.Info.ObjectOf(id)] {
				sorted = true
			}
		}
		return true
	})
	return sorted
}

// appendTarget returns the variable object of an `x = append(x, ...)`
// statement, or nil when s is anything else.
func appendTarget(p *Package, s *ast.AssignStmt) types.Object {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return nil
	}
	lhs, ok := ast.Unparen(s.Lhs[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return nil
	}
	fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return nil
	}
	if b, ok := p.Info.Uses[fun].(*types.Builtin); !ok || b.Name() != "append" {
		return nil
	}
	return p.Info.ObjectOf(lhs)
}
