package lint

import (
	"fmt"
	"testing"
)

// FuzzCallGraphReach fuzzes the breadth-first walk at the core of dettaint
// over synthetic call graphs decoded from the fuzz input: the predecessor
// map must agree with an independent depth-first search on exactly which
// nodes are reachable, every reported path must walk real edges from an
// entry to its node, and the whole computation must be deterministic —
// the property the printed taint paths in diagnostics depend on.
func FuzzCallGraphReach(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 1, 2, 2, 0})
	f.Add([]byte{3, 3})
	f.Add([]byte{0, 1, 0, 2, 1, 3, 2, 3, 7, 7})
	f.Add([]byte{0, 17, 1, 18, 2, 2, 15, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<10 {
			t.Skip("bounded graph sizes keep the fuzz fast")
		}
		g, entries := synthCallGraph(data)

		pred := g.reach(entries)
		again := g.reach(entries)
		if len(pred) != len(again) {
			t.Fatalf("reach is nondeterministic: %d vs %d reachable nodes", len(pred), len(again))
		}
		for id, p := range pred {
			if again[id] != p {
				t.Fatalf("reach is nondeterministic: pred[%s] = %s then %s", id, p, again[id])
			}
		}

		// Independent reachability: iterative DFS over the same edges,
		// ignoring callees without a body, exactly as reach must.
		want := make(map[FuncID]bool)
		var stack []FuncID
		for _, e := range entries {
			if _, exists := g.Nodes[e]; exists && !want[e] {
				want[e] = true
				stack = append(stack, e)
			}
		}
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, edge := range g.Nodes[cur].Calls {
				if _, exists := g.Nodes[edge.Callee]; !exists || want[edge.Callee] {
					continue
				}
				want[edge.Callee] = true
				stack = append(stack, edge.Callee)
			}
		}
		for id := range want {
			if _, ok := pred[id]; !ok {
				t.Errorf("DFS reaches %s but reach does not", id)
			}
		}
		for id := range pred {
			if !want[id] {
				t.Errorf("reach claims %s but DFS does not reach it", id)
			}
		}

		isEntry := make(map[FuncID]bool)
		for _, e := range entries {
			isEntry[e] = true
		}
		for id := range pred {
			path := g.pathTo(pred, id)
			if len(path) == 0 || path[len(path)-1] != id {
				t.Fatalf("pathTo(%s) does not end at the node: %v", id, path)
			}
			if !isEntry[path[0]] {
				t.Fatalf("pathTo(%s) does not start at an entry: %v", id, path)
			}
			for i := 0; i+1 < len(path); i++ {
				from, ok := g.Nodes[path[i]]
				if !ok {
					t.Fatalf("pathTo(%s) visits unknown node %s", id, path[i])
				}
				found := false
				for _, edge := range from.Calls {
					if edge.Callee == path[i+1] {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("pathTo(%s) uses nonexistent edge %s → %s", id, path[i], path[i+1])
				}
			}
		}
	})
}

// synthCallGraph decodes data into a fixed-population graph: byte pairs are
// (caller, callee) edges over 16 nodes, with the callee space widened to 20
// so some edges dangle — the stdlib-leaf case reach must skip. The entry
// set is node 0 plus a data-derived node, mirroring dettaint's multi-entry
// seeding.
func synthCallGraph(data []byte) (*CallGraph, []FuncID) {
	const nodes, calleeSpace = 16, 20
	id := func(i int) FuncID { return FuncID(fmt.Sprintf("pkg%d.F%d", i%4, i)) }
	g := &CallGraph{Nodes: make(map[FuncID]*FuncNode)}
	for i := 0; i < nodes; i++ {
		g.Nodes[id(i)] = &FuncNode{
			ID:      id(i),
			PkgPath: fmt.Sprintf("pkg%d", i%4),
			Name:    fmt.Sprintf("F%d", i),
		}
	}
	for i := 0; i+1 < len(data); i += 2 {
		from := g.Nodes[id(int(data[i])%nodes)]
		from.Calls = append(from.Calls, Edge{Callee: id(int(data[i+1]) % calleeSpace)})
	}
	for nid := range g.Nodes {
		g.order = append(g.order, nid)
	}
	entries := []FuncID{id(0)}
	if len(data) > 0 {
		entries = append(entries, id(int(data[0])%nodes))
	}
	return g, entries
}
