package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// goldenPackages maps each testdata directory to the import path it is
// analyzed under — the path, not the directory, decides analyzer scope, so
// the same source can be checked as a kernel or a non-kernel package. The
// list is typed in order; a package marked register is importable by the
// packages after it (taintentry imports taintutil).
var goldenPackages = []struct {
	dir      string
	path     string
	register bool
}{
	{"kernel", "betty/internal/sample", false},
	{"nonkernel", "betty/internal/bench", false},
	{"floateq", "betty/app", false},
	{"taintutil", "betty/app/taintutil", true},
	{"taintentry", "betty/internal/sample/deep", false},
	{"envknobs", "betty/app/envknobs", false},
	{"obsgold", "betty/app/obsgold", false},
}

// An expectation is one // want, // want-sup, or // want-stale marker:
// analyzer X must report (or report-and-suppress, or report-as-stale) a
// finding on this file and line.
type expectation struct {
	file     string
	line     int
	analyzer string
}

func (e expectation) String() string {
	return fmt.Sprintf("%s:%d %s", e.file, e.line, e.analyzer)
}

var (
	// "// want <analyzer>" expects a diagnostic on its own line;
	// "// want+1 <analyzer>" on the line below (for markers that cannot
	// share the flagged line, e.g. a malformed suppression comment).
	wantRe = regexp.MustCompile(`// want(\+1)? (\w+)`)
	// "// want-sup <analyzer>" expects a finding silenced by a
	// //bettyvet:ok annotation on this line; "// want-sup+1 <analyzer>" on
	// the line below (the marker usually trails the annotation itself).
	wantSupRe = regexp.MustCompile(`// want-sup(\+1)? (\w+)`)
	// "// want-stale" expects the suppression audit to flag the annotation
	// on this line as silencing nothing.
	wantStaleRe = regexp.MustCompile(`// want-stale(\+1)?`)
)

// goldenModule type-checks every golden package offline against the stub
// betty packages and wraps them in a Module whose KnobDoc documents every
// registered knob (the README diff is exercised separately in
// TestEnvregDocDiff). It returns the module and the packages by testdata
// directory, for tests that run a single analyzer against one fixture.
func goldenModule(t *testing.T) (*Module, map[string]*Package) {
	t.Helper()
	fset := token.NewFileSet()
	imp := &stubImporter{
		std:   importer.ForCompiler(fset, "source", nil),
		local: make(map[string]*types.Package),
	}
	for _, stub := range []struct{ dir, path string }{
		{"stubs/tensor", "betty/internal/tensor"},
		{"stubs/parallel", "betty/internal/parallel"},
		{"stubs/obs", "betty/internal/obs"},
		{"stubs/store", "betty/internal/store"},
	} {
		imp.local[stub.path] = typecheckDir(t, fset, imp, stub.dir, stub.path).Pkg
	}
	byDir := make(map[string]*Package)
	var pkgs []*Package
	for _, gp := range goldenPackages {
		p := typecheckDir(t, fset, imp, gp.dir, gp.path)
		byDir[gp.dir] = p
		pkgs = append(pkgs, p)
		if gp.register {
			imp.local[gp.path] = p.Pkg
		}
	}
	m := NewModule(pkgs)
	m.KnobDoc = strings.Join(KnobNames(), " ")
	return m, byDir
}

// TestGolden runs the full suite — local analyzers, module analyzers, and
// the suppression audit — over the golden module and asserts it reports
// exactly the marked findings: every analyzer must show a true positive, a
// scope/idiom negative, and a reasoned suppression, and the audit must
// catch the deliberately stale annotation.
func TestGolden(t *testing.T) {
	m, _ := goldenModule(t)

	var wantDiags, wantSup, wantStale []expectation
	for _, gp := range goldenPackages {
		w, s, st := readExpectations(t, filepath.Join("testdata", gp.dir))
		wantDiags = append(wantDiags, w...)
		wantSup = append(wantSup, s...)
		wantStale = append(wantStale, st...)
	}

	res := m.Run()
	var gotDiags, gotSup, gotStale []expectation
	for _, d := range res.Diags {
		gotDiags = append(gotDiags, asExpectation(d))
	}
	for _, d := range res.Suppressed {
		gotSup = append(gotSup, asExpectation(d))
	}
	for _, d := range res.Stale {
		gotStale = append(gotStale, asExpectation(d))
	}
	compare(t, "diagnostic", wantDiags, gotDiags)
	compare(t, "suppressed finding", wantSup, gotSup)
	compare(t, "stale suppression", wantStale, gotStale)

	demonstrated := make(map[string]bool)
	suppressed := make(map[string]bool)
	for _, e := range wantDiags {
		demonstrated[e.analyzer] = true
	}
	for _, e := range wantSup {
		suppressed[e.analyzer] = true
	}
	for _, a := range Analyzers() {
		if !demonstrated[a.Name] {
			t.Errorf("analyzer %s has no true-positive golden case in testdata", a.Name)
		}
		if !suppressed[a.Name] {
			t.Errorf("analyzer %s has no suppressed golden case in testdata", a.Name)
		}
	}
	if len(wantStale) == 0 {
		t.Error("the suppression audit has no stale golden case in testdata")
	}
}

// TestDettaintInterprocedural is the seeded regression the interprocedural
// rebuild exists for: a wall-clock read planted two calls below a kernel
// entry point, in another package. The per-package detrand pass is blind
// to it — the kernel package itself is spotless — while dettaint reports
// the sink with the full discovery path in the message.
func TestDettaintInterprocedural(t *testing.T) {
	m, byDir := goldenModule(t)

	if diags := Detrand.Run(byDir["taintentry"]); len(diags) != 0 {
		t.Fatalf("detrand should find nothing in the entry package (the sink is interprocedural), got %v", diags)
	}

	const wantPath = "call path: sample/deep.PlanBatches → betty/app/taintutil.Stamp → " +
		"betty/app/taintutil.tag → betty/app/taintutil.now → time.Now"
	var messages []string
	for _, d := range runDettaint(m) {
		messages = append(messages, d.Message)
		if strings.Contains(d.Message, wantPath) {
			return
		}
	}
	t.Fatalf("no dettaint diagnostic carries the taint path %q; got:\n%s",
		wantPath, strings.Join(messages, "\n"))
}

// TestEnvregDocDiff exercises the registry↔README diff both ways: a doc
// missing a registered knob and documenting an unregistered one must yield
// one README.md-anchored diagnostic each; an empty KnobDoc skips the diff.
func TestEnvregDocDiff(t *testing.T) {
	names := KnobNames()
	complete := strings.Join(names, " ")

	m := NewModule(nil)
	if diags := runEnvreg(m); len(diags) != 0 {
		t.Errorf("empty KnobDoc must skip the doc diff, got %v", diags)
	}

	m.KnobDoc = complete
	if diags := runEnvreg(m); len(diags) != 0 {
		t.Errorf("complete doc must be clean, got %v", diags)
	}

	m.KnobDoc = strings.Join(names[1:], " ") + " BETTY_NOT_A_REAL_KNOB"
	diags := runEnvreg(m)
	if len(diags) != 2 {
		t.Fatalf("want 2 doc-diff diagnostics (one missing, one unregistered), got %d: %v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Pos.Filename != "README.md" || d.Pos.Line != 1 {
			t.Errorf("doc-diff diagnostic must anchor at README.md:1, got %s", d.Pos)
		}
	}
	if !strings.Contains(diags[0].Message, names[0]) {
		t.Errorf("first diagnostic should name the undocumented knob %s: %s", names[0], diags[0].Message)
	}
	if !strings.Contains(diags[1].Message, "BETTY_NOT_A_REAL_KNOB") {
		t.Errorf("second diagnostic should name the unregistered doc token: %s", diags[1].Message)
	}
}

// stubImporter resolves the stub betty packages from testdata and
// everything else (the standard library) through the source importer.
type stubImporter struct {
	std   types.Importer
	local map[string]*types.Package
}

func (si *stubImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := si.local[path]; ok {
		return pkg, nil
	}
	return si.std.Import(path)
}

// typecheckDir parses and type-checks every .go file under testdata/dir as
// one package with the given import path.
func typecheckDir(t *testing.T, fset *token.FileSet, imp types.Importer, dir, path string) *Package {
	t.Helper()
	full := filepath.Join("testdata", dir)
	entries, err := os.ReadDir(full)
	if err != nil {
		t.Fatal(err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(full, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking testdata/%s as %s: %v", dir, path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Pkg: pkg, Info: info}
}

// readExpectations scans dir's sources for // want, // want-sup, and
// // want-stale markers.
func readExpectations(t *testing.T, dir string) (diags, sup, stale []expectation) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(src), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				exp := expectation{file: e.Name(), line: i + 1, analyzer: m[2]}
				if m[1] == "+1" {
					exp.line++
				}
				diags = append(diags, exp)
			}
			for _, m := range wantSupRe.FindAllStringSubmatch(line, -1) {
				exp := expectation{file: e.Name(), line: i + 1, analyzer: m[2]}
				if m[1] == "+1" {
					exp.line++
				}
				sup = append(sup, exp)
			}
			for _, m := range wantStaleRe.FindAllStringSubmatch(line, -1) {
				exp := expectation{file: e.Name(), line: i + 1, analyzer: auditAnalyzer}
				if m[1] == "+1" {
					exp.line++
				}
				stale = append(stale, exp)
			}
		}
	}
	return diags, sup, stale
}

func asExpectation(d Diagnostic) expectation {
	return expectation{file: filepath.Base(d.Pos.Filename), line: d.Pos.Line, analyzer: d.Analyzer}
}

// compare diffs the expected and reported finding multisets.
func compare(t *testing.T, kind string, want, got []expectation) {
	t.Helper()
	count := make(map[expectation]int)
	for _, e := range want {
		count[e]++
	}
	for _, e := range got {
		if count[e] > 0 {
			count[e]--
		} else {
			t.Errorf("unexpected %s: %s", kind, e)
		}
	}
	var missing []string
	for e, n := range count {
		for ; n > 0; n-- {
			missing = append(missing, e.String())
		}
	}
	sort.Strings(missing)
	for _, m := range missing {
		t.Errorf("missing %s: %s", kind, m)
	}
}
