package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// goldenPackages maps each testdata directory to the import path it is
// analyzed under — the path, not the directory, decides analyzer scope, so
// the same source can be checked as a kernel or a non-kernel package.
var goldenPackages = []struct {
	dir  string
	path string
}{
	{"kernel", "betty/internal/sample"},
	{"nonkernel", "betty/internal/bench"},
	{"floateq", "betty/app"},
}

// An expectation is one // want or // want-sup marker: analyzer X must
// report (or report-and-suppress) a finding on this file and line.
type expectation struct {
	file     string
	line     int
	analyzer string
}

func (e expectation) String() string {
	return fmt.Sprintf("%s:%d %s", e.file, e.line, e.analyzer)
}

var (
	// "// want <analyzer>" expects a diagnostic on its own line;
	// "// want+1 <analyzer>" on the line below (for markers that cannot
	// share the flagged line, e.g. a malformed suppression comment).
	wantRe = regexp.MustCompile(`// want(\+1)? (\w+)`)
	// "// want-sup <analyzer>" expects a finding silenced by a
	// //bettyvet:ok annotation on this line; "// want-sup+1 <analyzer>" on
	// the line below (the marker usually trails the annotation itself).
	wantSupRe = regexp.MustCompile(`// want-sup(\+1)? (\w+)`)
)

// TestGolden type-checks the testdata packages offline and asserts the
// suite reports exactly the marked findings: every analyzer must show a
// true positive, a scope/idiom negative, and a reasoned suppression.
func TestGolden(t *testing.T) {
	fset := token.NewFileSet()
	imp := &stubImporter{
		std:   importer.ForCompiler(fset, "source", nil),
		local: make(map[string]*types.Package),
	}
	for _, stub := range []struct{ dir, path string }{
		{"stubs/tensor", "betty/internal/tensor"},
		{"stubs/parallel", "betty/internal/parallel"},
	} {
		imp.local[stub.path] = typecheckDir(t, fset, imp, stub.dir, stub.path).Pkg
	}

	var wantDiags, wantSup, gotDiags, gotSup []expectation
	for _, gp := range goldenPackages {
		p := typecheckDir(t, fset, imp, gp.dir, gp.path)
		w, s := readExpectations(t, filepath.Join("testdata", gp.dir))
		wantDiags = append(wantDiags, w...)
		wantSup = append(wantSup, s...)
		res := Run(p)
		for _, d := range res.Diags {
			gotDiags = append(gotDiags, asExpectation(d))
		}
		for _, d := range res.Suppressed {
			gotSup = append(gotSup, asExpectation(d))
		}
	}
	compare(t, "diagnostic", wantDiags, gotDiags)
	compare(t, "suppressed finding", wantSup, gotSup)

	demonstrated := make(map[string]bool)
	suppressed := make(map[string]bool)
	for _, e := range wantDiags {
		demonstrated[e.analyzer] = true
	}
	for _, e := range wantSup {
		suppressed[e.analyzer] = true
	}
	for _, a := range Analyzers() {
		if !demonstrated[a.Name] {
			t.Errorf("analyzer %s has no true-positive golden case in testdata", a.Name)
		}
		if !suppressed[a.Name] {
			t.Errorf("analyzer %s has no suppressed golden case in testdata", a.Name)
		}
	}
}

// stubImporter resolves the stub betty packages from testdata and
// everything else (the standard library) through the source importer.
type stubImporter struct {
	std   types.Importer
	local map[string]*types.Package
}

func (si *stubImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := si.local[path]; ok {
		return pkg, nil
	}
	return si.std.Import(path)
}

// typecheckDir parses and type-checks every .go file under testdata/dir as
// one package with the given import path.
func typecheckDir(t *testing.T, fset *token.FileSet, imp types.Importer, dir, path string) *Package {
	t.Helper()
	full := filepath.Join("testdata", dir)
	entries, err := os.ReadDir(full)
	if err != nil {
		t.Fatal(err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(full, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking testdata/%s as %s: %v", dir, path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Pkg: pkg, Info: info}
}

// readExpectations scans dir's sources for // want and // want-sup markers.
func readExpectations(t *testing.T, dir string) (diags, sup []expectation) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(src), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				exp := expectation{file: e.Name(), line: i + 1, analyzer: m[2]}
				if m[1] == "+1" {
					exp.line++
				}
				diags = append(diags, exp)
			}
			for _, m := range wantSupRe.FindAllStringSubmatch(line, -1) {
				exp := expectation{file: e.Name(), line: i + 1, analyzer: m[2]}
				if m[1] == "+1" {
					exp.line++
				}
				sup = append(sup, exp)
			}
		}
	}
	return diags, sup
}

func asExpectation(d Diagnostic) expectation {
	return expectation{file: filepath.Base(d.Pos.Filename), line: d.Pos.Line, analyzer: d.Analyzer}
}

// compare diffs the expected and reported finding multisets.
func compare(t *testing.T, kind string, want, got []expectation) {
	t.Helper()
	count := make(map[expectation]int)
	for _, e := range want {
		count[e]++
	}
	for _, e := range got {
		if count[e] > 0 {
			count[e]--
		} else {
			t.Errorf("unexpected %s: %s", kind, e)
		}
	}
	var missing []string
	for e, n := range count {
		for ; n > 0; n-- {
			missing = append(missing, e.String())
		}
	}
	sort.Strings(missing)
	for _, m := range missing {
		t.Errorf("missing %s: %s", kind, m)
	}
}
