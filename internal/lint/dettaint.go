package lint

import (
	"fmt"
	"strings"
)

// Dettaint is the interprocedural successor of detrand/shardpure/mapiter's
// per-package scans: any function *transitively reachable* from a kernel
// entry point — the exported API of the tensor, graph, reg, partition,
// sample, sparse, parallel, and nn packages — must not reach a
// nondeterministic input, no matter which package the reaching function
// lives in. The local analyzers keep kernel packages clean; dettaint
// closes the gap they cannot see: a helper one package away that reads
// time.Now is invisible to every import-level check yet breaks the same
// bitwise-reproduction guarantee (PAPER.md §4, DESIGN.md §8).
//
// Sinks are the shared classification of callgraph.go — wall-clock reads,
// the global math/rand stream, worker-count reads, and unsorted map
// iteration. Sinks inside kernel packages themselves are *not* re-reported
// (detrand, shardpure, and mapiter already own those, with their more
// precise local messages); dettaint reports sinks in non-kernel code that
// kernel entry points reach, and every diagnostic carries the discovery
// path so the finding is actionable without re-deriving the reachability
// by hand.
var Dettaint = &Analyzer{
	Name: "dettaint",
	Doc: "forbid nondeterministic inputs (wall clock, global math/rand, worker-count reads, " +
		"unsorted map iteration) anywhere transitively reachable from kernel entry points, " +
		"with the call path in the diagnostic",
	RunModule: runDettaint,
}

// taintEntryPrefixes are the packages whose exported APIs seed the
// reachability: the kernel packages plus nn, whose layer forwards sit
// directly on the training hot path but are not a "kernel" package for the
// local analyzers.
var taintEntryPrefixes = append([]string{"betty/internal/nn"}, kernelPrefixes...)

func isTaintEntryPkg(path string) bool {
	path = strings.TrimSuffix(path, "_test")
	for _, pre := range taintEntryPrefixes {
		if path == pre || strings.HasPrefix(path, pre+"/") {
			return true
		}
	}
	return false
}

func runDettaint(m *Module) []Diagnostic {
	g := m.CallGraph()
	var entries []FuncID
	for _, id := range g.SortedIDs() {
		n := g.Nodes[id]
		if n.Exported && isTaintEntryPkg(n.PkgPath) {
			entries = append(entries, id)
		}
	}
	pred := g.reach(entries)

	var diags []Diagnostic
	for _, id := range g.SortedIDs() {
		if _, reachable := pred[id]; !reachable {
			continue
		}
		n := g.Nodes[id]
		if len(n.Sinks) == 0 {
			continue
		}
		// Kernel-package sinks are owned by the local analyzers; nn (an
		// entry package but not a kernel package) and everything else a
		// kernel reaches is dettaint's to report.
		if isKernel(n.PkgPath) {
			continue
		}
		path := g.pathTo(pred, id)
		for _, s := range n.Sinks {
			diags = append(diags, Diagnostic{
				Analyzer: "dettaint",
				Pos:      s.Pos,
				Message: fmt.Sprintf("%s (%s) is reachable from kernel entry point %s; "+
					"call path: %s; kernel-reachable code must be a pure function of its inputs and seeds",
					s.Detail, s.Kind, path[0], renderPath(path, s.Detail)),
			})
		}
	}
	return diags
}

// renderPath prints entry → ... → sink with short names.
func renderPath(path []FuncID, sink string) string {
	parts := make([]string, 0, len(path)+1)
	for _, id := range path {
		parts = append(parts, shortFuncID(id))
	}
	return strings.Join(append(parts, sink), " → ")
}

// shortFuncID strips the "betty/internal/" prefix for readability.
func shortFuncID(id FuncID) string {
	return strings.TrimPrefix(string(id), "betty/internal/")
}
