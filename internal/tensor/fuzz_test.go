package tensor

import "testing"

// FuzzInvertIndex fuzzes the gather-index inversion the deterministic
// scatter-add kernels iterate over: cnt must be a valid prefix-sum table,
// pos a permutation of the index positions, and each row's positions must
// come back in ascending order (the serial accumulation order).
func FuzzInvertIndex(f *testing.F) {
	f.Add(4, []byte{0, 1, 2, 3})
	f.Add(1, []byte{0, 0, 0})
	f.Add(3, []byte{2, 2, 0})
	f.Add(5, []byte{})
	f.Add(2, []byte{1, 0, 1, 0, 1})
	f.Fuzz(func(t *testing.T, rows int, raw []byte) {
		if rows < 1 || rows > 1<<12 || len(raw) > 1<<12 {
			t.Skip("bounded problem sizes keep the fuzz fast")
		}
		idx := make([]int32, len(raw))
		for i, b := range raw {
			idx[i] = int32(int(b) % rows)
		}
		cnt, pos := invertIndex(idx, rows)
		if len(cnt) != rows+1 || len(pos) != len(idx) {
			t.Fatalf("invertIndex returned %d counts, %d positions for %d rows, %d indices",
				len(cnt), len(pos), rows, len(idx))
		}
		if cnt[0] != 0 || int(cnt[rows]) != len(idx) {
			t.Fatalf("cnt[0] = %d, cnt[rows] = %d; want 0 and %d", cnt[0], cnt[rows], len(idx))
		}
		seen := make([]bool, len(idx))
		for r := 0; r < rows; r++ {
			if cnt[r] > cnt[r+1] {
				t.Fatalf("cnt not non-decreasing at row %d: %d > %d", r, cnt[r], cnt[r+1])
			}
			for q := cnt[r]; q < cnt[r+1]; q++ {
				p := pos[q]
				if p < 0 || int(p) >= len(idx) {
					t.Fatalf("pos[%d] = %d out of range", q, p)
				}
				if seen[p] {
					t.Fatalf("position %d listed twice: pos is not a permutation", p)
				}
				seen[p] = true
				if idx[p] != int32(r) {
					t.Fatalf("pos[%d] = %d has idx %d, filed under row %d", q, p, idx[p], r)
				}
				if q > cnt[r] && pos[q-1] >= p {
					t.Fatalf("row %d positions not ascending: %d then %d", r, pos[q-1], p)
				}
			}
		}
	})
}
