package tensor

import (
	"fmt"

	"betty/internal/parallel"
)

// This file is the fused half of the kernel tier (DESIGN.md §13): single-pass
// tape ops that each replace a chain of primitive ops with bitwise-identical
// values. Fusion here is an execution detail, never an approximation — every
// kernel accumulates each output element in exactly the serial order of the
// unfused composition it replaces, so BETTY_FUSED on/off and any
// BETTY_WORKERS count all produce identical bytes.

// CSR describes one graph block's edges in the layout FusedCSRAgg consumes:
// parallel per-edge endpoint slices sorted by destination, plus the
// precomputed inverse of Src that the backward scatter-add iterates. Callers
// (internal/nn) build it from graph.Block's memoized views, so constructing a
// CSR on the hot path allocates nothing.
type CSR struct {
	// Src and Dst are per-edge local endpoints; Dst must be non-decreasing
	// (the segment kernels' sharding contract).
	Src, Dst []int32
	// Wt holds optional per-edge weights (Equation 1's e_uv); nil = unit.
	Wt []float32
	// InvDeg holds an optional per-destination post-scale (1/deg for mean
	// aggregation, 1/√d̂ for GCN destination normalization); nil = no scale.
	InvDeg []float32
	// InvCnt/InvPos are the inverse of Src (see invertIndex): positions
	// InvPos[InvCnt[r]:InvCnt[r+1]] list, ascending, the edges with
	// Src == r. Required — the backward pass owns each source row through
	// this inverse.
	InvCnt, InvPos []int32
	// NSrc and NDst are the source and destination node counts.
	NSrc, NDst int
}

// FusedCSRAgg aggregates source rows into destination rows in one pass:
//
//	out[d] = (Σ_{p: Dst[p]==d, ascending p} Wt[p] * h[Src[p]]) * InvDeg[d]
//
// with the Wt factor and the InvDeg scale each optional. It fuses the
// unfused chains
//
//	GatherSegmentSum(h, src, dst)                       (sum)
//	RowScale(GatherSegmentSum(h, src, dst), inv)        (mean / normalized)
//	SegmentSum(MulRowsVec(GatherRows(h, src), w), dst)  (weighted sum)
//
// bitwise: each destination element accumulates its edges in ascending edge
// order into a single accumulator and is scaled once afterwards — the exact
// value sequence of the chain, without materializing the per-edge messages
// or the pre-scale sum. The backward pass owns each source row via the
// precomputed inverse and accumulates dh[r] += (dOut[Dst[p]] * InvDeg[Dst[p]])
// * Wt[p] in ascending p — the same parenthesization the RowScale →
// SegmentSum/MulRowsVec → GatherRows backward composition produces — so
// gradients are bitwise-identical too, at any worker count.
func (tp *Tape) FusedCSRAgg(h *Var, c CSR) *Var {
	if h.Value.RowsN != c.NSrc {
		panic(fmt.Sprintf("tensor: FusedCSRAgg got %d feature rows for %d sources", h.Value.RowsN, c.NSrc))
	}
	if len(c.Src) != len(c.Dst) {
		panic("tensor: FusedCSRAgg src/dst length mismatch")
	}
	if c.Wt != nil && len(c.Wt) != len(c.Src) {
		panic("tensor: FusedCSRAgg weight length mismatch")
	}
	if c.InvDeg != nil && len(c.InvDeg) != c.NDst {
		panic("tensor: FusedCSRAgg InvDeg length mismatch")
	}
	n := h.Value.ColsN
	val := tp.alloc(c.NDst, n)
	bounds := segmentBounds(c.Dst, segEdgeGrain)
	parallel.ForShards(bounds, func(lo, hi int) {
		for e := lo; e < hi; e++ {
			row := val.Row(int(c.Dst[e]))
			hrow := h.Value.Row(int(c.Src[e]))
			if c.Wt != nil {
				w := c.Wt[e]
				for j, v := range hrow {
					row[j] += v * w
				}
			} else {
				for j, v := range hrow {
					row[j] += v
				}
			}
		}
		if c.InvDeg != nil {
			// The shard owns complete destination segments, so scaling its
			// destinations in place races with nobody. Destinations with no
			// edges keep their zero rows — identical to scaling them, since
			// the InvDeg factors are non-negative.
			for d := int(c.Dst[lo]); d <= int(c.Dst[hi-1]); d++ {
				s := c.InvDeg[d]
				row := val.Row(d)
				for j := range row {
					row[j] *= s
				}
			}
		}
	})
	var out *Var
	out = tp.record(val, h.requiresGrad, func() {
		if !h.requiresGrad {
			return
		}
		g := h.grad()
		parallel.For(c.NSrc, elemRowGrain(n), func(lo, hi int) {
			for r := lo; r < hi; r++ {
				grow := g.Row(r)
				for p := c.InvCnt[r]; p < c.InvCnt[r+1]; p++ {
					e := c.InvPos[p]
					d := int(c.Dst[e])
					orow := out.Grad.Row(d)
					switch {
					case c.Wt != nil && c.InvDeg != nil:
						s, w := c.InvDeg[d], c.Wt[e]
						for j, v := range orow {
							grow[j] += (v * s) * w
						}
					case c.Wt != nil:
						w := c.Wt[e]
						for j, v := range orow {
							grow[j] += v * w
						}
					case c.InvDeg != nil:
						s := c.InvDeg[d]
						for j, v := range orow {
							grow[j] += v * s
						}
					default:
						for j, v := range orow {
							grow[j] += v
						}
					}
				}
			}
		})
	})
	return out
}

// LinearBiasReLU computes ReLU(x @ W + b) — or x @ W + b when relu is false
// — as one tape op. It fuses the MatMul → AddBias → ReLU chain bitwise: the
// matmul lands in the output buffer first (same tiled kernel, same
// per-element accumulation order), then one pass over each output row adds
// the bias and clamps negatives, producing exactly the values the three
// separate ops would, without materializing the two intermediate tensors.
//
// Backward reproduces the chain's gradient values exactly: the ReLU mask is
// taken from the post-activation output (out > 0 ⇔ pre-activation > 0, since
// ReLU only zeroes non-positives), the bias gradient folds per-shard partial
// column sums in ascending shard order with the same grain as AddBias, and
// the weight/input gradients go through the same transposed kernels MatMul's
// backward uses.
func (tp *Tape) LinearBiasReLU(x, w, b *Var, relu bool) *Var {
	if x.Value.ColsN != w.Value.RowsN {
		panic(fmt.Sprintf("tensor: LinearBiasReLU shape mismatch %dx%d @ %dx%d",
			x.Value.RowsN, x.Value.ColsN, w.Value.RowsN, w.Value.ColsN))
	}
	if b.Value.RowsN != 1 || b.Value.ColsN != w.Value.ColsN {
		panic("tensor: LinearBiasReLU requires a 1 x cols bias")
	}
	m, n := x.Value.RowsN, w.Value.ColsN
	val := tp.alloc(m, n)
	matMulInto(val, x.Value, w.Value, false)
	bias := b.Value.Data
	parallel.For(m, elemRowGrain(n), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := val.Row(i)
			if relu {
				for j := range row {
					v := row[j] + bias[j]
					if v > 0 {
						row[j] = v
					} else {
						row[j] = 0
					}
				}
			} else {
				for j := range row {
					row[j] += bias[j]
				}
			}
		}
	})
	var out *Var
	out = tp.record(val, anyGrad(x, w, b), func() {
		// dPre is the gradient at the pre-activation (post-bias) value. With
		// relu it is the masked output gradient in a pooled scratch tensor;
		// without, the output gradient itself serves unmasked.
		dPre := out.Grad
		if relu {
			dPre = tp.alloc(m, n)
			parallel.For(len(val.Data), elemGrain, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					if val.Data[i] > 0 {
						dPre.Data[i] = out.Grad.Data[i]
					}
				}
			})
		}
		if b.requiresGrad {
			addBiasGrad(tp, b.grad(), dPre)
		}
		if x.requiresGrad {
			matMulTBInto(x.grad(), dPre, w.Value, true)
		}
		if w.requiresGrad {
			matMulTAInto(w.grad(), x.Value, dPre, true)
		}
	})
	return out
}

// addBiasGrad accumulates the column sums of dOut into g (the bias
// gradient): each shard sums its rows into a private partial, and partials
// fold in ascending shard order. The shard structure depends only on the
// problem, so the reduction tree — shared verbatim with AddBias's backward —
// is fixed for every worker count.
func addBiasGrad(tp *Tape, g, dOut *Tensor) {
	m, n := dOut.RowsN, dOut.ColsN
	grain := elemRowGrain(n)
	nShards := parallel.NumShards(m, grain)
	if nShards <= 1 {
		for i := 0; i < m; i++ {
			row := dOut.Row(i)
			for j, v := range row {
				g.Data[j] += v
			}
		}
		return
	}
	partials := tp.allocF32(nShards * n)
	parallel.For(m, grain, func(lo, hi int) {
		p := partials[(lo/grain)*n : (lo/grain+1)*n]
		for i := lo; i < hi; i++ {
			row := dOut.Row(i)
			for j, v := range row {
				p[j] += v
			}
		}
	})
	for s := 0; s < nShards; s++ {
		p := partials[s*n : (s+1)*n]
		for j, v := range p {
			g.Data[j] += v
		}
	}
}
