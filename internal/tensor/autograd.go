package tensor

import (
	"fmt"
	"math"

	"betty/internal/rng"
)

// Var is a node in the autograd graph: a tensor value plus an optional
// gradient of the final loss with respect to it.
//
// Leaf Vars (created with Leaf or Param) live across training steps; their
// gradients accumulate until ZeroGrad is called, which is exactly the
// mechanism micro-batch gradient accumulation relies on. Interior Vars are
// created by Tape operations and live for one forward/backward pass.
type Var struct {
	Value *Tensor
	Grad  *Tensor // lazily allocated on first gradient contribution

	requiresGrad bool
	back         func() // propagates v.Grad into the parents' gradients
}

// Leaf wraps a tensor as a constant input (no gradient is tracked).
func Leaf(t *Tensor) *Var { return &Var{Value: t} }

// Param wraps a tensor as a trainable parameter whose gradient accumulates
// across backward passes until ZeroGrad.
func Param(t *Tensor) *Var { return &Var{Value: t, requiresGrad: true} }

// RequiresGrad reports whether gradients flow into v.
func (v *Var) RequiresGrad() bool { return v.requiresGrad }

// ZeroGrad clears the accumulated gradient.
func (v *Var) ZeroGrad() {
	if v.Grad != nil {
		v.Grad.Zero()
	}
}

// accumGrad adds g into v.Grad, allocating it on first use.
func (v *Var) accumGrad(g *Tensor) {
	if v.Grad == nil {
		v.Grad = New(v.Value.RowsN, v.Value.ColsN)
	}
	AddInto(v.Grad, g)
}

// grad returns v.Grad, allocating a zero tensor if needed. Used by backward
// closures that write into the gradient incrementally.
func (v *Var) grad() *Tensor {
	if v.Grad == nil {
		v.Grad = New(v.Value.RowsN, v.Value.ColsN)
	}
	return v.Grad
}

// Tape records operations of one forward pass so they can be replayed in
// reverse for backpropagation. A Tape is single-use per forward pass and is
// not safe for concurrent use.
type Tape struct {
	ops        []*Var
	valueBytes int64
}

// NewTape returns an empty tape.
func NewTape() *Tape { return &Tape{} }

// record registers a new interior Var produced by an operation. The result
// requires a gradient if any input does; operations call record with the
// backward closure already bound.
func (tp *Tape) record(value *Tensor, needsGrad bool, back func()) *Var {
	v := &Var{Value: value, requiresGrad: needsGrad, back: back}
	tp.valueBytes += int64(value.Len()) * 4
	if needsGrad {
		tp.ops = append(tp.ops, v)
	}
	return v
}

// ValueBytes returns the total bytes of every intermediate tensor the tape
// has materialized — the activation memory of the forward pass, which the
// simulated device charges against its capacity.
func (tp *Tape) ValueBytes() int64 { return tp.valueBytes }

func anyGrad(vs ...*Var) bool {
	for _, v := range vs {
		if v.requiresGrad {
			return true
		}
	}
	return false
}

// Backward seeds d(loss)/d(loss) = 1 and runs the tape in reverse,
// accumulating gradients into every Var that requires them. loss must be a
// 1x1 Var produced by this tape.
func (tp *Tape) Backward(loss *Var) {
	if loss.Value.Len() != 1 {
		panic("tensor: Backward requires a scalar loss")
	}
	loss.grad().Data[0] = 1
	for i := len(tp.ops) - 1; i >= 0; i-- {
		op := tp.ops[i]
		if op.Grad != nil && op.back != nil {
			op.back()
		}
	}
}

// NumOps returns the number of recorded differentiable operations,
// used by tests and the memory estimator's activation accounting.
func (tp *Tape) NumOps() int { return len(tp.ops) }

// --- differentiable operations ---

// MatMul computes a @ b.
func (tp *Tape) MatMul(a, b *Var) *Var {
	val := MatMul(a.Value, b.Value)
	var out *Var
	out = tp.record(val, anyGrad(a, b), func() {
		if a.requiresGrad {
			// dA += dC @ Bᵀ
			AddInto(a.grad(), MatMulTB(out.Grad, b.Value))
		}
		if b.requiresGrad {
			// dB += Aᵀ @ dC
			AddInto(b.grad(), MatMulTA(a.Value, out.Grad))
		}
	})
	return out
}

// Add computes a + b elementwise (same shape).
func (tp *Tape) Add(a, b *Var) *Var {
	if !a.Value.SameShape(b.Value) {
		panic("tensor: Add shape mismatch")
	}
	val := a.Value.Clone()
	AddInto(val, b.Value)
	var out *Var
	out = tp.record(val, anyGrad(a, b), func() {
		if a.requiresGrad {
			AddInto(a.grad(), out.Grad)
		}
		if b.requiresGrad {
			AddInto(b.grad(), out.Grad)
		}
	})
	return out
}

// Sub computes a - b elementwise (same shape).
func (tp *Tape) Sub(a, b *Var) *Var {
	if !a.Value.SameShape(b.Value) {
		panic("tensor: Sub shape mismatch")
	}
	val := a.Value.Clone()
	AXPY(val, -1, b.Value)
	var out *Var
	out = tp.record(val, anyGrad(a, b), func() {
		if a.requiresGrad {
			AddInto(a.grad(), out.Grad)
		}
		if b.requiresGrad {
			AXPY(b.grad(), -1, out.Grad)
		}
	})
	return out
}

// Mul computes the Hadamard (elementwise) product a * b.
func (tp *Tape) Mul(a, b *Var) *Var {
	if !a.Value.SameShape(b.Value) {
		panic("tensor: Mul shape mismatch")
	}
	val := New(a.Value.RowsN, a.Value.ColsN)
	for i := range val.Data {
		val.Data[i] = a.Value.Data[i] * b.Value.Data[i]
	}
	var out *Var
	out = tp.record(val, anyGrad(a, b), func() {
		if a.requiresGrad {
			g := a.grad()
			for i := range g.Data {
				g.Data[i] += out.Grad.Data[i] * b.Value.Data[i]
			}
		}
		if b.requiresGrad {
			g := b.grad()
			for i := range g.Data {
				g.Data[i] += out.Grad.Data[i] * a.Value.Data[i]
			}
		}
	})
	return out
}

// Scale computes s * a.
func (tp *Tape) Scale(a *Var, s float32) *Var {
	val := a.Value.Clone()
	for i := range val.Data {
		val.Data[i] *= s
	}
	var out *Var
	out = tp.record(val, a.requiresGrad, func() {
		if a.requiresGrad {
			AXPY(a.grad(), s, out.Grad)
		}
	})
	return out
}

// AddBias adds a 1 x n bias row vector b to every row of a (m x n).
func (tp *Tape) AddBias(a, b *Var) *Var {
	if b.Value.RowsN != 1 || b.Value.ColsN != a.Value.ColsN {
		panic("tensor: AddBias requires a 1 x cols bias")
	}
	val := a.Value.Clone()
	n := val.ColsN
	for i := 0; i < val.RowsN; i++ {
		row := val.Row(i)
		for j := 0; j < n; j++ {
			row[j] += b.Value.Data[j]
		}
	}
	var out *Var
	out = tp.record(val, anyGrad(a, b), func() {
		if a.requiresGrad {
			AddInto(a.grad(), out.Grad)
		}
		if b.requiresGrad {
			g := b.grad()
			for i := 0; i < out.Grad.RowsN; i++ {
				row := out.Grad.Row(i)
				for j := 0; j < n; j++ {
					g.Data[j] += row[j]
				}
			}
		}
	})
	return out
}

// ReLU computes max(0, a) elementwise.
func (tp *Tape) ReLU(a *Var) *Var {
	val := New(a.Value.RowsN, a.Value.ColsN)
	for i, v := range a.Value.Data {
		if v > 0 {
			val.Data[i] = v
		}
	}
	var out *Var
	out = tp.record(val, a.requiresGrad, func() {
		if a.requiresGrad {
			g := a.grad()
			for i := range g.Data {
				if a.Value.Data[i] > 0 {
					g.Data[i] += out.Grad.Data[i]
				}
			}
		}
	})
	return out
}

// LeakyReLU computes a where a > 0 and alpha*a elsewhere.
func (tp *Tape) LeakyReLU(a *Var, alpha float32) *Var {
	val := New(a.Value.RowsN, a.Value.ColsN)
	for i, v := range a.Value.Data {
		if v > 0 {
			val.Data[i] = v
		} else {
			val.Data[i] = alpha * v
		}
	}
	var out *Var
	out = tp.record(val, a.requiresGrad, func() {
		if a.requiresGrad {
			g := a.grad()
			for i := range g.Data {
				if a.Value.Data[i] > 0 {
					g.Data[i] += out.Grad.Data[i]
				} else {
					g.Data[i] += alpha * out.Grad.Data[i]
				}
			}
		}
	})
	return out
}

// Sigmoid computes 1/(1+exp(-a)) elementwise.
func (tp *Tape) Sigmoid(a *Var) *Var {
	val := New(a.Value.RowsN, a.Value.ColsN)
	for i, v := range a.Value.Data {
		val.Data[i] = float32(1 / (1 + math.Exp(-float64(v))))
	}
	var out *Var
	out = tp.record(val, a.requiresGrad, func() {
		if a.requiresGrad {
			g := a.grad()
			for i := range g.Data {
				s := val.Data[i]
				g.Data[i] += out.Grad.Data[i] * s * (1 - s)
			}
		}
	})
	return out
}

// Tanh computes tanh(a) elementwise.
func (tp *Tape) Tanh(a *Var) *Var {
	val := New(a.Value.RowsN, a.Value.ColsN)
	for i, v := range a.Value.Data {
		val.Data[i] = float32(math.Tanh(float64(v)))
	}
	var out *Var
	out = tp.record(val, a.requiresGrad, func() {
		if a.requiresGrad {
			g := a.grad()
			for i := range g.Data {
				t := val.Data[i]
				g.Data[i] += out.Grad.Data[i] * (1 - t*t)
			}
		}
	})
	return out
}

// ConcatCols concatenates a (m x n1) and b (m x n2) into (m x n1+n2).
func (tp *Tape) ConcatCols(a, b *Var) *Var {
	if a.Value.RowsN != b.Value.RowsN {
		panic("tensor: ConcatCols row mismatch")
	}
	m, n1, n2 := a.Value.RowsN, a.Value.ColsN, b.Value.ColsN
	val := New(m, n1+n2)
	for i := 0; i < m; i++ {
		copy(val.Row(i)[:n1], a.Value.Row(i))
		copy(val.Row(i)[n1:], b.Value.Row(i))
	}
	var out *Var
	out = tp.record(val, anyGrad(a, b), func() {
		if a.requiresGrad {
			g := a.grad()
			for i := 0; i < m; i++ {
				row := out.Grad.Row(i)[:n1]
				grow := g.Row(i)
				for j, v := range row {
					grow[j] += v
				}
			}
		}
		if b.requiresGrad {
			g := b.grad()
			for i := 0; i < m; i++ {
				row := out.Grad.Row(i)[n1:]
				grow := g.Row(i)
				for j, v := range row {
					grow[j] += v
				}
			}
		}
	})
	return out
}

// GatherRows selects rows of a by idx: out[i] = a[idx[i]].
func (tp *Tape) GatherRows(a *Var, idx []int32) *Var {
	n := a.Value.ColsN
	val := New(len(idx), n)
	for i, id := range idx {
		copy(val.Row(i), a.Value.Row(int(id)))
	}
	var out *Var
	out = tp.record(val, a.requiresGrad, func() {
		if a.requiresGrad {
			g := a.grad()
			for i, id := range idx {
				grow := g.Row(int(id))
				orow := out.Grad.Row(i)
				for j, v := range orow {
					grow[j] += v
				}
			}
		}
	})
	return out
}

// SliceRows returns rows [lo, hi) of a, sharing no storage with a.
func (tp *Tape) SliceRows(a *Var, lo, hi int) *Var {
	if lo < 0 || hi > a.Value.RowsN || lo > hi {
		panic(fmt.Sprintf("tensor: SliceRows [%d,%d) out of range for %d rows", lo, hi, a.Value.RowsN))
	}
	n := a.Value.ColsN
	val := New(hi-lo, n)
	copy(val.Data, a.Value.Data[lo*n:hi*n])
	var out *Var
	out = tp.record(val, a.requiresGrad, func() {
		if a.requiresGrad {
			g := a.grad()
			sub := g.Data[lo*n : hi*n]
			for i, v := range out.Grad.Data {
				sub[i] += v
			}
		}
	})
	return out
}

// SliceCols returns columns [lo, hi) of a as a new tensor.
func (tp *Tape) SliceCols(a *Var, lo, hi int) *Var {
	if lo < 0 || hi > a.Value.ColsN || lo > hi {
		panic(fmt.Sprintf("tensor: SliceCols [%d,%d) out of range for %d cols", lo, hi, a.Value.ColsN))
	}
	m, w := a.Value.RowsN, hi-lo
	val := New(m, w)
	for i := 0; i < m; i++ {
		copy(val.Row(i), a.Value.Row(i)[lo:hi])
	}
	var out *Var
	out = tp.record(val, a.requiresGrad, func() {
		if a.requiresGrad {
			g := a.grad()
			for i := 0; i < m; i++ {
				grow := g.Row(i)[lo:hi]
				orow := out.Grad.Row(i)
				for j, v := range orow {
					grow[j] += v
				}
			}
		}
	})
	return out
}

// SegmentSum aggregates per-edge rows into per-destination rows:
// out[dst[e]] += a[e] for every edge e. a is (nEdges x n), out is (nSeg x n).
func (tp *Tape) SegmentSum(a *Var, dst []int32, nSeg int) *Var {
	if len(dst) != a.Value.RowsN {
		panic("tensor: SegmentSum index length mismatch")
	}
	n := a.Value.ColsN
	val := New(nSeg, n)
	for e, d := range dst {
		row := val.Row(int(d))
		arow := a.Value.Row(e)
		for j, v := range arow {
			row[j] += v
		}
	}
	var out *Var
	out = tp.record(val, a.requiresGrad, func() {
		if a.requiresGrad {
			g := a.grad()
			for e, d := range dst {
				grow := g.Row(e)
				orow := out.Grad.Row(int(d))
				for j, v := range orow {
					grow[j] += v
				}
			}
		}
	})
	return out
}

// GatherSegmentSum fuses GatherRows + SegmentSum for the common
// message-passing pattern out[dst[e]] += a[src[e]]: it avoids materializing
// the per-edge tensor. a is (nSrc x n), out is (nSeg x n).
func (tp *Tape) GatherSegmentSum(a *Var, src, dst []int32, nSeg int) *Var {
	if len(src) != len(dst) {
		panic("tensor: GatherSegmentSum src/dst length mismatch")
	}
	n := a.Value.ColsN
	val := New(nSeg, n)
	for e := range src {
		row := val.Row(int(dst[e]))
		arow := a.Value.Row(int(src[e]))
		for j, v := range arow {
			row[j] += v
		}
	}
	var out *Var
	out = tp.record(val, a.requiresGrad, func() {
		if a.requiresGrad {
			g := a.grad()
			for e := range src {
				grow := g.Row(int(src[e]))
				orow := out.Grad.Row(int(dst[e]))
				for j, v := range orow {
					grow[j] += v
				}
			}
		}
	})
	return out
}

// SegmentMax computes out[s] = elementwise max over rows of a with dst==s.
// Segments with no edges yield zero rows. The backward pass routes each
// output gradient to the argmax row, as in max-pooling aggregators.
func (tp *Tape) SegmentMax(a *Var, dst []int32, nSeg int) *Var {
	if len(dst) != a.Value.RowsN {
		panic("tensor: SegmentMax index length mismatch")
	}
	n := a.Value.ColsN
	val := New(nSeg, n)
	arg := make([]int32, nSeg*n) // edge index of the max, -1 = empty
	for i := range arg {
		arg[i] = -1
	}
	for e, d := range dst {
		row := val.Row(int(d))
		arow := a.Value.Row(e)
		base := int(d) * n
		for j, v := range arow {
			if arg[base+j] == -1 || v > row[j] {
				row[j] = v
				arg[base+j] = int32(e)
			}
		}
	}
	var out *Var
	out = tp.record(val, a.requiresGrad, func() {
		if a.requiresGrad {
			g := a.grad()
			for s := 0; s < nSeg; s++ {
				orow := out.Grad.Row(s)
				base := s * n
				for j, v := range orow {
					if e := arg[base+j]; e >= 0 {
						g.Data[int(e)*n+j] += v
					}
				}
			}
		}
	})
	return out
}

// ScatterRows places row i of a at row idx[i] of a new numRows x cols
// tensor. Indices must be distinct; unassigned rows are zero. It is the
// inverse of GatherRows with disjoint indices, used to merge degree-bucket
// results back into per-destination order.
func (tp *Tape) ScatterRows(a *Var, idx []int32, numRows int) *Var {
	if len(idx) != a.Value.RowsN {
		panic("tensor: ScatterRows index length mismatch")
	}
	n := a.Value.ColsN
	val := New(numRows, n)
	seen := make(map[int32]bool, len(idx))
	for i, id := range idx {
		if id < 0 || int(id) >= numRows {
			panic(fmt.Sprintf("tensor: ScatterRows index %d out of range [0,%d)", id, numRows))
		}
		if seen[id] {
			panic(fmt.Sprintf("tensor: ScatterRows duplicate index %d", id))
		}
		seen[id] = true
		copy(val.Row(int(id)), a.Value.Row(i))
	}
	var out *Var
	out = tp.record(val, a.requiresGrad, func() {
		if a.requiresGrad {
			g := a.grad()
			for i, id := range idx {
				grow := g.Row(i)
				orow := out.Grad.Row(int(id))
				for j, v := range orow {
					grow[j] += v
				}
			}
		}
	})
	return out
}

// RowScale multiplies each row i of a by scale[i]. scale is constant
// (no gradient flows into it); used for mean aggregation (scale = 1/deg).
func (tp *Tape) RowScale(a *Var, scale []float32) *Var {
	if len(scale) != a.Value.RowsN {
		panic("tensor: RowScale length mismatch")
	}
	n := a.Value.ColsN
	val := New(a.Value.RowsN, n)
	for i := 0; i < a.Value.RowsN; i++ {
		s := scale[i]
		row := val.Row(i)
		arow := a.Value.Row(i)
		for j, v := range arow {
			row[j] = v * s
		}
	}
	var out *Var
	out = tp.record(val, a.requiresGrad, func() {
		if a.requiresGrad {
			g := a.grad()
			for i := 0; i < out.Grad.RowsN; i++ {
				s := scale[i]
				grow := g.Row(i)
				orow := out.Grad.Row(i)
				for j, v := range orow {
					grow[j] += v * s
				}
			}
		}
	})
	return out
}

// MulRowsVec multiplies every element of row i of a (m x n) by the scalar
// w[i][0], where w is an m x 1 Var. Gradients flow into both a and w.
// Used for attention-weighted message passing.
func (tp *Tape) MulRowsVec(a, w *Var) *Var {
	if w.Value.ColsN != 1 || w.Value.RowsN != a.Value.RowsN {
		panic("tensor: MulRowsVec requires w of shape rows(a) x 1")
	}
	n := a.Value.ColsN
	val := New(a.Value.RowsN, n)
	for i := 0; i < a.Value.RowsN; i++ {
		s := w.Value.Data[i]
		row := val.Row(i)
		arow := a.Value.Row(i)
		for j, v := range arow {
			row[j] = v * s
		}
	}
	var out *Var
	out = tp.record(val, anyGrad(a, w), func() {
		if a.requiresGrad {
			g := a.grad()
			for i := 0; i < out.Grad.RowsN; i++ {
				s := w.Value.Data[i]
				grow := g.Row(i)
				orow := out.Grad.Row(i)
				for j, v := range orow {
					grow[j] += v * s
				}
			}
		}
		if w.requiresGrad {
			g := w.grad()
			for i := 0; i < out.Grad.RowsN; i++ {
				arow := a.Value.Row(i)
				orow := out.Grad.Row(i)
				var s float32
				for j, v := range orow {
					s += v * arow[j]
				}
				g.Data[i] += s
			}
		}
	})
	return out
}

// SegmentSoftmax normalizes the scores (nEdges x 1) with a softmax within
// each destination segment: out[e] = exp(s[e]) / sum_{e': dst[e']==dst[e]} exp(s[e']).
// A numerically stable per-segment max subtraction is applied.
func (tp *Tape) SegmentSoftmax(scores *Var, dst []int32, nSeg int) *Var {
	if scores.Value.ColsN != 1 || len(dst) != scores.Value.RowsN {
		panic("tensor: SegmentSoftmax requires nEdges x 1 scores")
	}
	nE := len(dst)
	maxes := make([]float32, nSeg)
	seen := make([]bool, nSeg)
	for e, d := range dst {
		v := scores.Value.Data[e]
		if !seen[d] || v > maxes[d] {
			maxes[d] = v
			seen[d] = true
		}
	}
	val := New(nE, 1)
	sums := make([]float64, nSeg)
	for e, d := range dst {
		ex := math.Exp(float64(scores.Value.Data[e] - maxes[d]))
		val.Data[e] = float32(ex)
		sums[d] += ex
	}
	for e, d := range dst {
		val.Data[e] = float32(float64(val.Data[e]) / sums[d])
	}
	var out *Var
	out = tp.record(val, scores.requiresGrad, func() {
		if scores.requiresGrad {
			// d s_e = p_e * (g_e - sum_{e' in seg} p_e' g_e')
			dots := make([]float64, nSeg)
			for e, d := range dst {
				dots[d] += float64(val.Data[e]) * float64(out.Grad.Data[e])
			}
			g := scores.grad()
			for e, d := range dst {
				g.Data[e] += val.Data[e] * (out.Grad.Data[e] - float32(dots[d]))
			}
		}
	})
	return out
}

// Dropout zeroes each element with probability p and scales survivors by
// 1/(1-p) (inverted dropout). With p == 0 it is the identity.
func (tp *Tape) Dropout(a *Var, p float32, r *rng.RNG) *Var {
	if p <= 0 {
		return a
	}
	if p >= 1 {
		panic("tensor: Dropout probability must be < 1")
	}
	keep := 1 - p
	inv := 1 / keep
	mask := make([]float32, a.Value.Len())
	val := New(a.Value.RowsN, a.Value.ColsN)
	for i, v := range a.Value.Data {
		if r.Float32() < keep {
			mask[i] = inv
			val.Data[i] = v * inv
		}
	}
	var out *Var
	out = tp.record(val, a.requiresGrad, func() {
		if a.requiresGrad {
			g := a.grad()
			for i := range g.Data {
				g.Data[i] += out.Grad.Data[i] * mask[i]
			}
		}
	})
	return out
}

// Sum reduces a to a 1x1 scalar by summing all elements.
func (tp *Tape) Sum(a *Var) *Var {
	val := New(1, 1)
	var s float64
	for _, v := range a.Value.Data {
		s += float64(v)
	}
	val.Data[0] = float32(s)
	var out *Var
	out = tp.record(val, a.requiresGrad, func() {
		if a.requiresGrad {
			g := a.grad()
			gv := out.Grad.Data[0]
			for i := range g.Data {
				g.Data[i] += gv
			}
		}
	})
	return out
}

// Mean reduces a to a 1x1 scalar by averaging all elements.
func (tp *Tape) Mean(a *Var) *Var {
	return tp.Scale(tp.Sum(a), 1/float32(a.Value.Len()))
}

// SoftmaxCrossEntropy computes the mean cross-entropy loss between logits
// (m x C) and integer labels (length m). It returns a 1x1 loss Var. Rows
// whose label is negative are ignored (masked), matching the convention for
// nodes without labels.
func (tp *Tape) SoftmaxCrossEntropy(logits *Var, labels []int32) *Var {
	m, c := logits.Value.RowsN, logits.Value.ColsN
	if len(labels) != m {
		panic("tensor: SoftmaxCrossEntropy label length mismatch")
	}
	probs := New(m, c)
	var loss float64
	count := 0
	for i := 0; i < m; i++ {
		if labels[i] < 0 {
			continue
		}
		count++
		row := logits.Value.Row(i)
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		prow := probs.Row(i)
		for j, v := range row {
			e := math.Exp(float64(v - maxv))
			prow[j] = float32(e)
			sum += e
		}
		for j := range prow {
			prow[j] = float32(float64(prow[j]) / sum)
		}
		loss += -math.Log(math.Max(float64(prow[labels[i]]), 1e-30))
	}
	val := New(1, 1)
	if count > 0 {
		val.Data[0] = float32(loss / float64(count))
	}
	var out *Var
	out = tp.record(val, logits.requiresGrad, func() {
		if logits.requiresGrad && count > 0 {
			g := logits.grad()
			scale := out.Grad.Data[0] / float32(count)
			for i := 0; i < m; i++ {
				if labels[i] < 0 {
					continue
				}
				grow := g.Row(i)
				prow := probs.Row(i)
				for j, p := range prow {
					grow[j] += scale * p
				}
				grow[labels[i]] -= scale
			}
		}
	})
	return out
}

// Softmax computes a row-wise softmax of logits without recording a
// backward op; it is a convenience for inference-time predictions.
func Softmax(logits *Tensor) *Tensor {
	out := New(logits.RowsN, logits.ColsN)
	for i := 0; i < logits.RowsN; i++ {
		row := logits.Row(i)
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		orow := out.Row(i)
		for j, v := range row {
			e := math.Exp(float64(v - maxv))
			orow[j] = float32(e)
			sum += e
		}
		for j := range orow {
			orow[j] = float32(float64(orow[j]) / sum)
		}
	}
	return out
}

// Argmax returns the index of the largest value in each row.
func Argmax(t *Tensor) []int32 {
	out := make([]int32, t.RowsN)
	for i := 0; i < t.RowsN; i++ {
		row := t.Row(i)
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		out[i] = int32(best)
	}
	return out
}
