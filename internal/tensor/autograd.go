package tensor

import (
	"fmt"
	"math"

	"betty/internal/parallel"
	"betty/internal/rng"
)

// Var is a node in the autograd graph: a tensor value plus an optional
// gradient of the final loss with respect to it.
//
// Leaf Vars (created with Leaf or Param) live across training steps; their
// gradients accumulate until ZeroGrad is called, which is exactly the
// mechanism micro-batch gradient accumulation relies on. Interior Vars are
// created by Tape operations and live for one forward/backward pass.
type Var struct {
	Value *Tensor
	Grad  *Tensor // lazily allocated on first gradient contribution

	requiresGrad bool
	back         func() // propagates v.Grad into the parents' gradients
	tape         *Tape  // owning tape for interior Vars; nil for leaves
}

// Leaf wraps a tensor as a constant input (no gradient is tracked).
func Leaf(t *Tensor) *Var { return &Var{Value: t} }

// Param wraps a tensor as a trainable parameter whose gradient accumulates
// across backward passes until ZeroGrad.
func Param(t *Tensor) *Var { return &Var{Value: t, requiresGrad: true} }

// RequiresGrad reports whether gradients flow into v.
func (v *Var) RequiresGrad() bool { return v.requiresGrad }

// ZeroGrad clears the accumulated gradient.
func (v *Var) ZeroGrad() {
	if v.Grad != nil {
		v.Grad.Zero()
	}
}

// accumGrad adds g into v.Grad, allocating it on first use.
func (v *Var) accumGrad(g *Tensor) {
	AddInto(v.grad(), g)
}

// grad returns v.Grad, allocating a zero tensor if needed. Used by backward
// closures that write into the gradient incrementally. Interior Vars draw
// the allocation from their tape's pooled arena; leaf and parameter
// gradients persist across steps and are never pooled.
func (v *Var) grad() *Tensor {
	if v.Grad == nil {
		if v.tape != nil {
			v.Grad = v.tape.alloc(v.Value.RowsN, v.Value.ColsN)
		} else {
			v.Grad = New(v.Value.RowsN, v.Value.ColsN)
		}
	}
	return v.Grad
}

// Tape records operations of one forward pass so they can be replayed in
// reverse for backpropagation. A Tape is single-use per forward pass and is
// not safe for concurrent use.
//
// Every intermediate tensor a tape materializes — op outputs, interior
// gradients, dropout masks — is acquired from the package buffer pool and
// registered on the tape, so Release returns the whole arena at once and
// the next tape (the next micro-batch of the same training batch, whose
// shapes match) runs allocation-free.
type Tape struct {
	ops        []*Var
	valueBytes int64
	owned      [][]float32 // pooled backing slices returned by Release

	// Header arenas: Var and Tensor structs are carved out of fixed-size
	// chunks that Release rewinds but keeps, so a reused tape (the runner
	// holds one across micro-batches) records its whole graph without
	// allocating a single header. Chunks are never reallocated in place, so
	// handed-out pointers stay valid until Release recycles them.
	varChunks  [][]Var
	varC, varI int
	tenChunks  [][]Tensor
	tenC, tenI int
}

// arenaChunk is the Var/Tensor count per arena chunk.
const arenaChunk = 256

// NewTape returns an empty tape.
func NewTape() *Tape { return &Tape{} }

// newVar carves a Var header out of the tape's arena. The caller assigns
// every field, so rewound headers need no explicit zeroing.
func (tp *Tape) newVar(v Var) *Var {
	if tp.varC == len(tp.varChunks) {
		tp.varChunks = append(tp.varChunks, make([]Var, arenaChunk))
	}
	p := &tp.varChunks[tp.varC][tp.varI]
	*p = v
	tp.varI++
	if tp.varI == arenaChunk {
		tp.varC, tp.varI = tp.varC+1, 0
	}
	return p
}

// newTensor carves a Tensor header out of the tape's arena.
func (tp *Tape) newTensor(t Tensor) *Tensor {
	if tp.tenC == len(tp.tenChunks) {
		tp.tenChunks = append(tp.tenChunks, make([]Tensor, arenaChunk))
	}
	p := &tp.tenChunks[tp.tenC][tp.tenI]
	*p = t
	tp.tenI++
	if tp.tenI == arenaChunk {
		tp.tenC, tp.tenI = tp.tenC+1, 0
	}
	return p
}

// allocF32 acquires a zeroed length-n slice from the buffer pool (or the
// heap when pooling is off) and registers it for Release.
func (tp *Tape) allocF32(n int) []float32 {
	s := acquire(n)
	if s != nil {
		tp.owned = append(tp.owned, s)
	}
	return s
}

// alloc returns a zeroed rows x cols tensor backed by the tape's arena.
func (tp *Tape) alloc(rows, cols int) *Tensor {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	return tp.newTensor(Tensor{RowsN: rows, ColsN: cols, Data: tp.allocF32(rows * cols)})
}

// Alloc returns a zeroed rows x cols tensor whose backing slice is drawn
// from the buffer pool and returned by Release. Callers use it to stage
// per-batch inputs (gathered features) in the recycled arena; like every
// tape tensor, the result is invalid after Release.
func (tp *Tape) Alloc(rows, cols int) *Tensor { return tp.alloc(rows, cols) }

// Release returns every buffer the tape allocated — the values, gradients,
// and masks of its interior Vars — to the package buffer pool, and rewinds
// the header arenas for reuse. After Release, the Var and Tensor headers
// the tape produced are invalid and must not be read; leaf and parameter
// Vars are unaffected (their storage was never tape-owned). A released
// tape is empty and ready to record the next forward pass — the runner
// reuses one tape across all micro-batches of a batch. Release is
// idempotent, and when pooling is disabled it only drops the buffer
// references for the garbage collector.
func (tp *Tape) Release() {
	for i, s := range tp.owned {
		release(s)
		tp.owned[i] = nil
	}
	tp.owned = tp.owned[:0]
	tp.ops = tp.ops[:0]
	tp.valueBytes = 0
	tp.varC, tp.varI = 0, 0
	tp.tenC, tp.tenI = 0, 0
}

// record registers a new interior Var produced by an operation. The result
// requires a gradient if any input does; operations call record with the
// backward closure already bound.
func (tp *Tape) record(value *Tensor, needsGrad bool, back func()) *Var {
	v := tp.newVar(Var{Value: value, requiresGrad: needsGrad, back: back, tape: tp})
	tp.valueBytes += int64(value.Len()) * 4
	if needsGrad {
		tp.ops = append(tp.ops, v)
	}
	return v
}

// ValueBytes returns the total bytes of every intermediate tensor the tape
// has materialized — the activation memory of the forward pass, which the
// simulated device charges against its capacity.
func (tp *Tape) ValueBytes() int64 { return tp.valueBytes }

func anyGrad(vs ...*Var) bool {
	for _, v := range vs {
		if v.requiresGrad {
			return true
		}
	}
	return false
}

// Backward seeds d(loss)/d(loss) = 1 and runs the tape in reverse,
// accumulating gradients into every Var that requires them. loss must be a
// 1x1 Var produced by this tape.
func (tp *Tape) Backward(loss *Var) {
	if loss.Value.Len() != 1 {
		panic("tensor: Backward requires a scalar loss")
	}
	loss.grad().Data[0] = 1
	for i := len(tp.ops) - 1; i >= 0; i-- {
		op := tp.ops[i]
		if op.Grad != nil && op.back != nil {
			op.back()
		}
	}
}

// NumOps returns the number of recorded differentiable operations,
// used by tests and the memory estimator's activation accounting.
func (tp *Tape) NumOps() int { return len(tp.ops) }

// --- deterministic sharding helpers ---

// segEdgeGrain is the minimum edge count per segment-aligned shard of the
// segment kernels. A constant of the problem, never of the worker count.
const segEdgeGrain = 1 << 13

// segmentBounds splits the edge range [0, len(dst)) into shards of at
// least grain edges whose boundaries fall only where dst changes value, so
// every destination segment lives in exactly one shard and shards own
// disjoint output rows. The boundaries depend only on (dst, grain). When
// dst is not non-decreasing the kernels cannot cut safely and the whole
// range becomes one shard (serial execution) — block edge lists from
// graph.Block.EdgePairs are always sorted by destination.
func segmentBounds(dst []int32, grain int) []int {
	n := len(dst)
	if n == 0 {
		return nil
	}
	bounds := make([]int, 1, n/grain+2)
	last := 0
	for e := 1; e < n; e++ {
		if dst[e] < dst[e-1] {
			return []int{0, n} // unsorted: single serial shard
		}
		if dst[e] != dst[e-1] && e-last >= grain {
			bounds = append(bounds, e)
			last = e
		}
	}
	return append(bounds, n)
}

// invertIndex builds the inverse of a gather index: positions
// pos[cnt[r]:cnt[r+1]] list, in ascending order, the p with idx[p] == r.
// The backward scatter-adds iterate targets row-by-row over this inverse,
// so each target row is owned by one worker and accumulates its
// contributions in the same ascending-p order as the serial kernel —
// bitwise-identical for every worker count.
func invertIndex(idx []int32, rows int) (cnt, pos []int32) {
	cnt = make([]int32, rows+1)
	for _, id := range idx {
		cnt[id+1]++
	}
	for r := 0; r < rows; r++ {
		cnt[r+1] += cnt[r]
	}
	pos = make([]int32, len(idx))
	cursor := make([]int32, rows)
	copy(cursor, cnt[:rows])
	for p, id := range idx {
		pos[cursor[id]] = int32(p)
		cursor[id]++
	}
	return cnt, pos
}

// --- differentiable operations ---

// MatMul computes a @ b.
func (tp *Tape) MatMul(a, b *Var) *Var {
	if a.Value.ColsN != b.Value.RowsN {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch %dx%d @ %dx%d",
			a.Value.RowsN, a.Value.ColsN, b.Value.RowsN, b.Value.ColsN))
	}
	val := tp.alloc(a.Value.RowsN, b.Value.ColsN)
	matMulInto(val, a.Value, b.Value, false)
	var out *Var
	out = tp.record(val, anyGrad(a, b), func() {
		if a.requiresGrad {
			// dA += dC @ Bᵀ, accumulated in place (no temporary)
			matMulTBInto(a.grad(), out.Grad, b.Value, true)
		}
		if b.requiresGrad {
			// dB += Aᵀ @ dC
			matMulTAInto(b.grad(), a.Value, out.Grad, true)
		}
	})
	return out
}

// Add computes a + b elementwise (same shape).
func (tp *Tape) Add(a, b *Var) *Var {
	if !a.Value.SameShape(b.Value) {
		panic("tensor: Add shape mismatch")
	}
	val := tp.alloc(a.Value.RowsN, a.Value.ColsN)
	av, bv := a.Value.Data, b.Value.Data
	parallel.For(len(av), elemGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			val.Data[i] = av[i] + bv[i]
		}
	})
	var out *Var
	out = tp.record(val, anyGrad(a, b), func() {
		if a.requiresGrad {
			AddInto(a.grad(), out.Grad)
		}
		if b.requiresGrad {
			AddInto(b.grad(), out.Grad)
		}
	})
	return out
}

// Sub computes a - b elementwise (same shape).
func (tp *Tape) Sub(a, b *Var) *Var {
	if !a.Value.SameShape(b.Value) {
		panic("tensor: Sub shape mismatch")
	}
	val := tp.alloc(a.Value.RowsN, a.Value.ColsN)
	av, bv := a.Value.Data, b.Value.Data
	parallel.For(len(av), elemGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			val.Data[i] = av[i] - bv[i]
		}
	})
	var out *Var
	out = tp.record(val, anyGrad(a, b), func() {
		if a.requiresGrad {
			AddInto(a.grad(), out.Grad)
		}
		if b.requiresGrad {
			AXPY(b.grad(), -1, out.Grad)
		}
	})
	return out
}

// Mul computes the Hadamard (elementwise) product a * b.
func (tp *Tape) Mul(a, b *Var) *Var {
	if !a.Value.SameShape(b.Value) {
		panic("tensor: Mul shape mismatch")
	}
	val := tp.alloc(a.Value.RowsN, a.Value.ColsN)
	av, bv := a.Value.Data, b.Value.Data
	parallel.For(len(av), elemGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			val.Data[i] = av[i] * bv[i]
		}
	})
	var out *Var
	out = tp.record(val, anyGrad(a, b), func() {
		if a.requiresGrad {
			g := a.grad()
			parallel.For(len(g.Data), elemGrain, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					g.Data[i] += out.Grad.Data[i] * bv[i]
				}
			})
		}
		if b.requiresGrad {
			g := b.grad()
			parallel.For(len(g.Data), elemGrain, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					g.Data[i] += out.Grad.Data[i] * av[i]
				}
			})
		}
	})
	return out
}

// Scale computes s * a.
func (tp *Tape) Scale(a *Var, s float32) *Var {
	val := tp.alloc(a.Value.RowsN, a.Value.ColsN)
	av := a.Value.Data
	parallel.For(len(av), elemGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			val.Data[i] = av[i] * s
		}
	})
	var out *Var
	out = tp.record(val, a.requiresGrad, func() {
		if a.requiresGrad {
			AXPY(a.grad(), s, out.Grad)
		}
	})
	return out
}

// AddBias adds a 1 x n bias row vector b to every row of a (m x n).
func (tp *Tape) AddBias(a, b *Var) *Var {
	if b.Value.RowsN != 1 || b.Value.ColsN != a.Value.ColsN {
		panic("tensor: AddBias requires a 1 x cols bias")
	}
	m, n := a.Value.RowsN, a.Value.ColsN
	val := tp.alloc(m, n)
	bias := b.Value.Data
	parallel.For(m, elemRowGrain(n), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := val.Row(i)
			arow := a.Value.Row(i)
			for j, v := range arow {
				row[j] = v + bias[j]
			}
		}
	})
	var out *Var
	out = tp.record(val, anyGrad(a, b), func() {
		if a.requiresGrad {
			AddInto(a.grad(), out.Grad)
		}
		if b.requiresGrad {
			// The bias gradient is a column-sum over rows folded from
			// per-shard partials in ascending shard order; the partials live
			// in the tape's pooled arena (see addBiasGrad in fused.go, which
			// shares the exact reduction with LinearBiasReLU's backward).
			addBiasGrad(tp, b.grad(), out.Grad)
		}
	})
	return out
}

// ReLU computes max(0, a) elementwise.
func (tp *Tape) ReLU(a *Var) *Var {
	val := tp.alloc(a.Value.RowsN, a.Value.ColsN)
	av := a.Value.Data
	parallel.For(len(av), elemGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if v := av[i]; v > 0 {
				val.Data[i] = v
			}
		}
	})
	var out *Var
	out = tp.record(val, a.requiresGrad, func() {
		if a.requiresGrad {
			g := a.grad()
			parallel.For(len(g.Data), elemGrain, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					if av[i] > 0 {
						g.Data[i] += out.Grad.Data[i]
					}
				}
			})
		}
	})
	return out
}

// LeakyReLU computes a where a > 0 and alpha*a elsewhere.
func (tp *Tape) LeakyReLU(a *Var, alpha float32) *Var {
	val := tp.alloc(a.Value.RowsN, a.Value.ColsN)
	av := a.Value.Data
	parallel.For(len(av), elemGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if v := av[i]; v > 0 {
				val.Data[i] = v
			} else {
				val.Data[i] = alpha * v
			}
		}
	})
	var out *Var
	out = tp.record(val, a.requiresGrad, func() {
		if a.requiresGrad {
			g := a.grad()
			parallel.For(len(g.Data), elemGrain, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					if av[i] > 0 {
						g.Data[i] += out.Grad.Data[i]
					} else {
						g.Data[i] += alpha * out.Grad.Data[i]
					}
				}
			})
		}
	})
	return out
}

// Sigmoid computes 1/(1+exp(-a)) elementwise.
func (tp *Tape) Sigmoid(a *Var) *Var {
	val := tp.alloc(a.Value.RowsN, a.Value.ColsN)
	av := a.Value.Data
	parallel.For(len(av), elemGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			val.Data[i] = float32(1 / (1 + math.Exp(-float64(av[i]))))
		}
	})
	var out *Var
	out = tp.record(val, a.requiresGrad, func() {
		if a.requiresGrad {
			g := a.grad()
			parallel.For(len(g.Data), elemGrain, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					s := val.Data[i]
					g.Data[i] += out.Grad.Data[i] * s * (1 - s)
				}
			})
		}
	})
	return out
}

// Tanh computes tanh(a) elementwise.
func (tp *Tape) Tanh(a *Var) *Var {
	val := tp.alloc(a.Value.RowsN, a.Value.ColsN)
	av := a.Value.Data
	parallel.For(len(av), elemGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			val.Data[i] = float32(math.Tanh(float64(av[i])))
		}
	})
	var out *Var
	out = tp.record(val, a.requiresGrad, func() {
		if a.requiresGrad {
			g := a.grad()
			parallel.For(len(g.Data), elemGrain, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					t := val.Data[i]
					g.Data[i] += out.Grad.Data[i] * (1 - t*t)
				}
			})
		}
	})
	return out
}

// ConcatCols concatenates a (m x n1) and b (m x n2) into (m x n1+n2).
func (tp *Tape) ConcatCols(a, b *Var) *Var {
	if a.Value.RowsN != b.Value.RowsN {
		panic("tensor: ConcatCols row mismatch")
	}
	m, n1, n2 := a.Value.RowsN, a.Value.ColsN, b.Value.ColsN
	val := tp.alloc(m, n1+n2)
	parallel.For(m, elemRowGrain(n1+n2), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			copy(val.Row(i)[:n1], a.Value.Row(i))
			copy(val.Row(i)[n1:], b.Value.Row(i))
		}
	})
	var out *Var
	out = tp.record(val, anyGrad(a, b), func() {
		if a.requiresGrad {
			g := a.grad()
			parallel.For(m, elemRowGrain(n1), func(lo, hi int) {
				for i := lo; i < hi; i++ {
					row := out.Grad.Row(i)[:n1]
					grow := g.Row(i)
					for j, v := range row {
						grow[j] += v
					}
				}
			})
		}
		if b.requiresGrad {
			g := b.grad()
			parallel.For(m, elemRowGrain(n2), func(lo, hi int) {
				for i := lo; i < hi; i++ {
					row := out.Grad.Row(i)[n1:]
					grow := g.Row(i)
					for j, v := range row {
						grow[j] += v
					}
				}
			})
		}
	})
	return out
}

// GatherRows selects rows of a by idx: out[i] = a[idx[i]].
func (tp *Tape) GatherRows(a *Var, idx []int32) *Var {
	n := a.Value.ColsN
	rows := a.Value.RowsN
	val := tp.alloc(len(idx), n)
	parallel.For(len(idx), elemRowGrain(n), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			copy(val.Row(i), a.Value.Row(int(idx[i])))
		}
	})
	var out *Var
	out = tp.record(val, a.requiresGrad, func() {
		if a.requiresGrad {
			// Scatter-add dA[idx[i]] += dOut[i]: each source row of a is
			// owned by one worker via the inverse index, and its
			// contributions add in ascending gather position — the serial
			// accumulation order, for every worker count.
			g := a.grad()
			cnt, pos := invertIndex(idx, rows)
			parallel.For(rows, elemRowGrain(n), func(lo, hi int) {
				for r := lo; r < hi; r++ {
					grow := g.Row(r)
					for p := cnt[r]; p < cnt[r+1]; p++ {
						orow := out.Grad.Row(int(pos[p]))
						for j, v := range orow {
							grow[j] += v
						}
					}
				}
			})
		}
	})
	return out
}

// SliceRows returns rows [lo, hi) of a, sharing no storage with a.
func (tp *Tape) SliceRows(a *Var, lo, hi int) *Var {
	if lo < 0 || hi > a.Value.RowsN || lo > hi {
		panic(fmt.Sprintf("tensor: SliceRows [%d,%d) out of range for %d rows", lo, hi, a.Value.RowsN))
	}
	n := a.Value.ColsN
	val := tp.alloc(hi-lo, n)
	copy(val.Data, a.Value.Data[lo*n:hi*n])
	var out *Var
	out = tp.record(val, a.requiresGrad, func() {
		if a.requiresGrad {
			g := a.grad()
			sub := g.Data[lo*n : hi*n]
			og := out.Grad.Data
			parallel.For(len(og), elemGrain, func(elo, ehi int) {
				for i := elo; i < ehi; i++ {
					sub[i] += og[i]
				}
			})
		}
	})
	return out
}

// SliceCols returns columns [lo, hi) of a as a new tensor.
func (tp *Tape) SliceCols(a *Var, lo, hi int) *Var {
	if lo < 0 || hi > a.Value.ColsN || lo > hi {
		panic(fmt.Sprintf("tensor: SliceCols [%d,%d) out of range for %d cols", lo, hi, a.Value.ColsN))
	}
	m, w := a.Value.RowsN, hi-lo
	val := tp.alloc(m, w)
	parallel.For(m, elemRowGrain(w), func(rlo, rhi int) {
		for i := rlo; i < rhi; i++ {
			copy(val.Row(i), a.Value.Row(i)[lo:hi])
		}
	})
	var out *Var
	out = tp.record(val, a.requiresGrad, func() {
		if a.requiresGrad {
			g := a.grad()
			parallel.For(m, elemRowGrain(w), func(rlo, rhi int) {
				for i := rlo; i < rhi; i++ {
					grow := g.Row(i)[lo:hi]
					orow := out.Grad.Row(i)
					for j, v := range orow {
						grow[j] += v
					}
				}
			})
		}
	})
	return out
}

// SegmentSum aggregates per-edge rows into per-destination rows:
// out[dst[e]] += a[e] for every edge e. a is (nEdges x n), out is (nSeg x n).
//
// The forward pass shards the edge range on destination-segment boundaries
// (segmentBounds), so each shard owns a disjoint set of output rows and
// accumulates each destination's edges in the serial order.
func (tp *Tape) SegmentSum(a *Var, dst []int32, nSeg int) *Var {
	if len(dst) != a.Value.RowsN {
		panic("tensor: SegmentSum index length mismatch")
	}
	n := a.Value.ColsN
	val := tp.alloc(nSeg, n)
	bounds := segmentBounds(dst, segEdgeGrain)
	parallel.ForShards(bounds, func(lo, hi int) {
		for e := lo; e < hi; e++ {
			row := val.Row(int(dst[e]))
			arow := a.Value.Row(e)
			for j, v := range arow {
				row[j] += v
			}
		}
	})
	var out *Var
	out = tp.record(val, a.requiresGrad, func() {
		if a.requiresGrad {
			// dA[e] += dOut[dst[e]]: per-edge rows are disjoint.
			g := a.grad()
			parallel.For(len(dst), elemRowGrain(n), func(lo, hi int) {
				for e := lo; e < hi; e++ {
					grow := g.Row(e)
					orow := out.Grad.Row(int(dst[e]))
					for j, v := range orow {
						grow[j] += v
					}
				}
			})
		}
	})
	return out
}

// GatherSegmentSum fuses GatherRows + SegmentSum for the common
// message-passing pattern out[dst[e]] += a[src[e]]: it avoids materializing
// the per-edge tensor. a is (nSrc x n), out is (nSeg x n). Forward shards
// on segment boundaries; backward owns each source row via the inverse of
// src, accumulating in ascending edge order (see invertIndex).
func (tp *Tape) GatherSegmentSum(a *Var, src, dst []int32, nSeg int) *Var {
	if len(src) != len(dst) {
		panic("tensor: GatherSegmentSum src/dst length mismatch")
	}
	n := a.Value.ColsN
	nSrc := a.Value.RowsN
	val := tp.alloc(nSeg, n)
	bounds := segmentBounds(dst, segEdgeGrain)
	parallel.ForShards(bounds, func(lo, hi int) {
		for e := lo; e < hi; e++ {
			row := val.Row(int(dst[e]))
			arow := a.Value.Row(int(src[e]))
			for j, v := range arow {
				row[j] += v
			}
		}
	})
	var out *Var
	out = tp.record(val, a.requiresGrad, func() {
		if a.requiresGrad {
			g := a.grad()
			cnt, pos := invertIndex(src, nSrc)
			parallel.For(nSrc, elemRowGrain(n), func(lo, hi int) {
				for r := lo; r < hi; r++ {
					grow := g.Row(r)
					for p := cnt[r]; p < cnt[r+1]; p++ {
						orow := out.Grad.Row(int(dst[pos[p]]))
						for j, v := range orow {
							grow[j] += v
						}
					}
				}
			})
		}
	})
	return out
}

// SegmentMax computes out[s] = elementwise max over rows of a with dst==s.
// Segments with no edges yield zero rows. The backward pass routes each
// output gradient to the argmax row, as in max-pooling aggregators.
func (tp *Tape) SegmentMax(a *Var, dst []int32, nSeg int) *Var {
	if len(dst) != a.Value.RowsN {
		panic("tensor: SegmentMax index length mismatch")
	}
	n := a.Value.ColsN
	val := tp.alloc(nSeg, n)
	arg := make([]int32, nSeg*n) // edge index of the max, -1 = empty
	for i := range arg {
		arg[i] = -1
	}
	bounds := segmentBounds(dst, segEdgeGrain)
	parallel.ForShards(bounds, func(lo, hi int) {
		for e := lo; e < hi; e++ {
			d := dst[e]
			row := val.Row(int(d))
			arow := a.Value.Row(e)
			base := int(d) * n
			for j, v := range arow {
				if arg[base+j] == -1 || v > row[j] {
					row[j] = v
					arg[base+j] = int32(e)
				}
			}
		}
	})
	var out *Var
	out = tp.record(val, a.requiresGrad, func() {
		if a.requiresGrad {
			// Each segment's argmax entries point at edges of that segment
			// only, so sharding over segments writes disjoint rows of g.
			g := a.grad()
			parallel.For(nSeg, elemRowGrain(n), func(lo, hi int) {
				for s := lo; s < hi; s++ {
					orow := out.Grad.Row(s)
					base := s * n
					for j, v := range orow {
						if e := arg[base+j]; e >= 0 {
							g.Data[int(e)*n+j] += v
						}
					}
				}
			})
		}
	})
	return out
}

// ScatterRows places row i of a at row idx[i] of a new numRows x cols
// tensor. Indices must be distinct; unassigned rows are zero. It is the
// inverse of GatherRows with disjoint indices, used to merge degree-bucket
// results back into per-destination order.
func (tp *Tape) ScatterRows(a *Var, idx []int32, numRows int) *Var {
	if len(idx) != a.Value.RowsN {
		panic("tensor: ScatterRows index length mismatch")
	}
	n := a.Value.ColsN
	seen := make([]bool, numRows)
	for _, id := range idx {
		if id < 0 || int(id) >= numRows {
			panic(fmt.Sprintf("tensor: ScatterRows index %d out of range [0,%d)", id, numRows))
		}
		if seen[id] {
			panic(fmt.Sprintf("tensor: ScatterRows duplicate index %d", id))
		}
		seen[id] = true
	}
	val := tp.alloc(numRows, n)
	parallel.For(len(idx), elemRowGrain(n), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			copy(val.Row(int(idx[i])), a.Value.Row(i))
		}
	})
	var out *Var
	out = tp.record(val, a.requiresGrad, func() {
		if a.requiresGrad {
			// Distinct indices make the reads disjoint per row of a.
			g := a.grad()
			parallel.For(len(idx), elemRowGrain(n), func(lo, hi int) {
				for i := lo; i < hi; i++ {
					grow := g.Row(i)
					orow := out.Grad.Row(int(idx[i]))
					for j, v := range orow {
						grow[j] += v
					}
				}
			})
		}
	})
	return out
}

// RowScale multiplies each row i of a by scale[i]. scale is constant
// (no gradient flows into it); used for mean aggregation (scale = 1/deg).
func (tp *Tape) RowScale(a *Var, scale []float32) *Var {
	if len(scale) != a.Value.RowsN {
		panic("tensor: RowScale length mismatch")
	}
	n := a.Value.ColsN
	val := tp.alloc(a.Value.RowsN, n)
	parallel.For(a.Value.RowsN, elemRowGrain(n), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s := scale[i]
			row := val.Row(i)
			arow := a.Value.Row(i)
			for j, v := range arow {
				row[j] = v * s
			}
		}
	})
	var out *Var
	out = tp.record(val, a.requiresGrad, func() {
		if a.requiresGrad {
			g := a.grad()
			parallel.For(out.Grad.RowsN, elemRowGrain(n), func(lo, hi int) {
				for i := lo; i < hi; i++ {
					s := scale[i]
					grow := g.Row(i)
					orow := out.Grad.Row(i)
					for j, v := range orow {
						grow[j] += v * s
					}
				}
			})
		}
	})
	return out
}

// MulRowsVec multiplies every element of row i of a (m x n) by the scalar
// w[i][0], where w is an m x 1 Var. Gradients flow into both a and w.
// Used for attention-weighted message passing.
func (tp *Tape) MulRowsVec(a, w *Var) *Var {
	if w.Value.ColsN != 1 || w.Value.RowsN != a.Value.RowsN {
		panic("tensor: MulRowsVec requires w of shape rows(a) x 1")
	}
	n := a.Value.ColsN
	val := tp.alloc(a.Value.RowsN, n)
	parallel.For(a.Value.RowsN, elemRowGrain(n), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s := w.Value.Data[i]
			row := val.Row(i)
			arow := a.Value.Row(i)
			for j, v := range arow {
				row[j] = v * s
			}
		}
	})
	var out *Var
	out = tp.record(val, anyGrad(a, w), func() {
		if a.requiresGrad {
			g := a.grad()
			parallel.For(out.Grad.RowsN, elemRowGrain(n), func(lo, hi int) {
				for i := lo; i < hi; i++ {
					s := w.Value.Data[i]
					grow := g.Row(i)
					orow := out.Grad.Row(i)
					for j, v := range orow {
						grow[j] += v * s
					}
				}
			})
		}
		if w.requiresGrad {
			// dw[i] is a per-row dot product: rows are disjoint.
			g := w.grad()
			parallel.For(out.Grad.RowsN, elemRowGrain(n), func(lo, hi int) {
				for i := lo; i < hi; i++ {
					arow := a.Value.Row(i)
					orow := out.Grad.Row(i)
					var s float32
					for j, v := range orow {
						s += v * arow[j]
					}
					g.Data[i] += s
				}
			})
		}
	})
	return out
}

// SegmentSoftmax normalizes the scores (nEdges x 1) with a softmax within
// each destination segment: out[e] = exp(s[e]) / sum_{e': dst[e']==dst[e]} exp(s[e']).
// A numerically stable per-segment max subtraction is applied. Shards cut
// only on segment boundaries, so each shard owns its segments' max, sum,
// and normalization exclusively, in the serial accumulation order.
func (tp *Tape) SegmentSoftmax(scores *Var, dst []int32, nSeg int) *Var {
	if scores.Value.ColsN != 1 || len(dst) != scores.Value.RowsN {
		panic("tensor: SegmentSoftmax requires nEdges x 1 scores")
	}
	nE := len(dst)
	maxes := make([]float32, nSeg)
	seen := make([]bool, nSeg)
	val := tp.alloc(nE, 1)
	sums := make([]float64, nSeg)
	bounds := segmentBounds(dst, segEdgeGrain)
	parallel.ForShards(bounds, func(lo, hi int) {
		for e := lo; e < hi; e++ {
			d := dst[e]
			v := scores.Value.Data[e]
			if !seen[d] || v > maxes[d] {
				maxes[d] = v
				seen[d] = true
			}
		}
		for e := lo; e < hi; e++ {
			d := dst[e]
			ex := math.Exp(float64(scores.Value.Data[e] - maxes[d]))
			val.Data[e] = float32(ex)
			sums[d] += ex
		}
		for e := lo; e < hi; e++ {
			val.Data[e] = float32(float64(val.Data[e]) / sums[dst[e]])
		}
	})
	// The per-segment dot-product buffer is hoisted out of the backward
	// closure (a once-per-op hot path) and zeroed per run instead.
	var dots []float64
	if scores.requiresGrad {
		dots = make([]float64, nSeg)
	}
	var out *Var
	out = tp.record(val, scores.requiresGrad, func() {
		if scores.requiresGrad {
			// d s_e = p_e * (g_e - sum_{e' in seg} p_e' g_e'); the same
			// segment-aligned shards own the per-segment dot products.
			g := scores.grad()
			for i := range dots {
				dots[i] = 0
			}
			parallel.ForShards(bounds, func(lo, hi int) {
				for e := lo; e < hi; e++ {
					dots[dst[e]] += float64(val.Data[e]) * float64(out.Grad.Data[e])
				}
				for e := lo; e < hi; e++ {
					g.Data[e] += val.Data[e] * (out.Grad.Data[e] - float32(dots[dst[e]]))
				}
			})
		}
	})
	return out
}

// Dropout zeroes each element with probability p and scales survivors by
// 1/(1-p) (inverted dropout). With p == 0 it is the identity. The mask is
// drawn serially so the RNG stream is identical for every worker count;
// applying it (and the backward pass) runs on the worker pool.
func (tp *Tape) Dropout(a *Var, p float32, r *rng.RNG) *Var {
	if p <= 0 {
		return a
	}
	if p >= 1 {
		panic("tensor: Dropout probability must be < 1")
	}
	keep := 1 - p
	inv := 1 / keep
	mask := tp.allocF32(a.Value.Len())
	for i := range mask {
		if r.Float32() < keep {
			mask[i] = inv
		}
	}
	val := tp.alloc(a.Value.RowsN, a.Value.ColsN)
	av := a.Value.Data
	parallel.For(len(av), elemGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			//bettyvet:ok floateq dropout mask entries are exactly 0 or 1/keep by construction
			if mask[i] != 0 {
				val.Data[i] = av[i] * mask[i]
			}
		}
	})
	var out *Var
	out = tp.record(val, a.requiresGrad, func() {
		if a.requiresGrad {
			g := a.grad()
			parallel.For(len(g.Data), elemGrain, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					g.Data[i] += out.Grad.Data[i] * mask[i]
				}
			})
		}
	})
	return out
}

// Sum reduces a to a 1x1 scalar by summing all elements. Shards sum
// privately in float64 and fold in shard order.
func (tp *Tape) Sum(a *Var) *Var {
	val := tp.alloc(1, 1)
	av := a.Value.Data
	s := parallel.MapReduce(len(av), elemGrain, func(lo, hi int) float64 {
		var p float64
		for i := lo; i < hi; i++ {
			p += float64(av[i])
		}
		return p
	}, func(acc, v float64) float64 { return acc + v })
	val.Data[0] = float32(s)
	var out *Var
	out = tp.record(val, a.requiresGrad, func() {
		if a.requiresGrad {
			g := a.grad()
			gv := out.Grad.Data[0]
			parallel.For(len(g.Data), elemGrain, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					g.Data[i] += gv
				}
			})
		}
	})
	return out
}

// Mean reduces a to a 1x1 scalar by averaging all elements.
func (tp *Tape) Mean(a *Var) *Var {
	return tp.Scale(tp.Sum(a), 1/float32(a.Value.Len()))
}

// SoftmaxCrossEntropy computes the mean cross-entropy loss between logits
// (m x C) and integer labels (length m). It returns a 1x1 loss Var. Rows
// whose label is negative are ignored (masked), matching the convention for
// nodes without labels. Rows are sharded across workers; the per-shard
// loss/count partials fold in shard order.
func (tp *Tape) SoftmaxCrossEntropy(logits *Var, labels []int32) *Var {
	m, c := logits.Value.RowsN, logits.Value.ColsN
	if len(labels) != m {
		panic("tensor: SoftmaxCrossEntropy label length mismatch")
	}
	probs := tp.alloc(m, c)
	grain := elemRowGrain(c)
	type partial struct {
		loss  float64
		count int
	}
	total := parallel.MapReduce(m, grain, func(lo, hi int) partial {
		var p partial
		for i := lo; i < hi; i++ {
			if labels[i] < 0 {
				continue
			}
			p.count++
			row := logits.Value.Row(i)
			maxv := row[0]
			for _, v := range row[1:] {
				if v > maxv {
					maxv = v
				}
			}
			var sum float64
			prow := probs.Row(i)
			for j, v := range row {
				e := math.Exp(float64(v - maxv))
				prow[j] = float32(e)
				sum += e
			}
			for j := range prow {
				prow[j] = float32(float64(prow[j]) / sum)
			}
			p.loss += -math.Log(math.Max(float64(prow[labels[i]]), 1e-30))
		}
		return p
	}, func(acc, v partial) partial {
		return partial{loss: acc.loss + v.loss, count: acc.count + v.count}
	})
	count := total.count
	val := tp.alloc(1, 1)
	if count > 0 {
		val.Data[0] = float32(total.loss / float64(count))
	}
	var out *Var
	out = tp.record(val, logits.requiresGrad, func() {
		if logits.requiresGrad && count > 0 {
			g := logits.grad()
			scale := out.Grad.Data[0] / float32(count)
			parallel.For(m, grain, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					if labels[i] < 0 {
						continue
					}
					grow := g.Row(i)
					prow := probs.Row(i)
					for j, p := range prow {
						grow[j] += scale * p
					}
					grow[labels[i]] -= scale
				}
			})
		}
	})
	return out
}

// Softmax computes a row-wise softmax of logits without recording a
// backward op; it is a convenience for inference-time predictions.
func Softmax(logits *Tensor) *Tensor {
	out := New(logits.RowsN, logits.ColsN)
	for i := 0; i < logits.RowsN; i++ {
		row := logits.Row(i)
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		orow := out.Row(i)
		for j, v := range row {
			e := math.Exp(float64(v - maxv))
			orow[j] = float32(e)
			sum += e
		}
		for j := range orow {
			orow[j] = float32(float64(orow[j]) / sum)
		}
	}
	return out
}

// Argmax returns the index of the largest value in each row.
func Argmax(t *Tensor) []int32 {
	out := make([]int32, t.RowsN)
	for i := 0; i < t.RowsN; i++ {
		row := t.Row(i)
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		out[i] = int32(best)
	}
	return out
}
