package tensor

import (
	"math"
	"testing"

	"betty/internal/parallel"
	"betty/internal/rng"
)

// The fusion contract (DESIGN.md §13): every fused op produces bitwise the
// same forward values and gradients as the unfused chain it replaces, at any
// worker count. These tests run each (variant, workers) pair through both
// paths and require exact byte equality.

// fusedAggCase builds one aggregation problem: features h over nSrc sources,
// an edge list sorted by destination, optional weights, optional inverse
// degrees.
type fusedAggCase struct {
	name     string
	weighted bool
	scaled   bool
}

// buildCSR assembles the CSR view plus the matching unfused chain inputs.
func buildCSR(r *rng.RNG, nE, nDst, nSrc int, weighted, scaled bool) CSR {
	src, dst, _ := segmentEdges(r, nE, nDst, nSrc)
	c := CSR{Src: src, Dst: dst, NSrc: nSrc, NDst: nDst}
	if weighted {
		c.Wt = make([]float32, nE)
		for i := range c.Wt {
			c.Wt[i] = float32(r.Float64())
		}
	}
	if scaled {
		deg := make([]int, nDst)
		for _, d := range dst {
			deg[d]++
		}
		c.InvDeg = make([]float32, nDst)
		for d, k := range deg {
			if k > 0 {
				c.InvDeg[d] = 1 / float32(k)
			}
		}
	}
	c.InvCnt, c.InvPos = invertIndex(src, nSrc)
	return c
}

// unfusedAgg runs the primitive-op composition FusedCSRAgg replaces.
func unfusedAgg(tp *Tape, h *Var, c CSR) *Var {
	var sum *Var
	if c.Wt != nil {
		w := Leaf(FromSlice(len(c.Wt), 1, c.Wt))
		msgs := tp.MulRowsVec(tp.GatherRows(h, c.Src), w)
		sum = tp.SegmentSum(msgs, c.Dst, c.NDst)
	} else {
		sum = tp.GatherSegmentSum(h, c.Src, c.Dst, c.NDst)
	}
	if c.InvDeg != nil {
		sum = tp.RowScale(sum, c.InvDeg)
	}
	return sum
}

// TestFusedCSRAggBitwise compares FusedCSRAgg against the unfused chain for
// every aggregation variant, forward and backward, at 1 and 8 workers.
func TestFusedCSRAggBitwise(t *testing.T) {
	const (
		nE   = 20000 // > 2*segEdgeGrain so the segment shards split
		nDst = 257
		nSrc = 5000
		feat = 16
	)
	cases := []fusedAggCase{
		{"sum", false, false},
		{"mean", false, true},
		{"weighted-sum", true, false},
		{"weighted-mean", true, true},
	}
	for _, tc := range cases {
		for _, w := range []int{1, 8} {
			t.Run(tc.name, func(t *testing.T) {
				defer parallel.SetWorkers(parallel.SetWorkers(w))
				run := func(fused bool) []float32 {
					r := rng.New(31)
					c := buildCSR(r, nE, nDst, nSrc, tc.weighted, tc.scaled)
					tp := NewTape()
					h := Param(randTensor(r, nSrc, feat))
					var out *Var
					if fused {
						out = tp.FusedCSRAgg(h, c)
					} else {
						out = unfusedAgg(tp, h, c)
					}
					return backprop(tp, out, randTensor(r, nDst, feat), h)
				}
				unfused := run(false)
				fused := run(true)
				if len(unfused) != len(fused) {
					t.Fatalf("result sizes differ: %d vs %d", len(unfused), len(fused))
				}
				for i := range unfused {
					if math.Float32bits(unfused[i]) != math.Float32bits(fused[i]) {
						t.Fatalf("workers=%d float %d differs: unfused %v vs fused %v", w, i, unfused[i], fused[i])
					}
				}
			})
		}
	}
}

// TestLinearBiasReLUBitwise compares LinearBiasReLU against the
// MatMul → AddBias → (ReLU) chain, forward and backward, with gradients
// flowing into the input, weight, and bias, at 1 and 8 workers. The input
// carries exact zeros (as post-ReLU activations do) so the matmul kernels'
// sparsity fast paths are exercised on both sides.
func TestLinearBiasReLUBitwise(t *testing.T) {
	const (
		m, k, n = 300, 67, 43 // k,n indivisible by 4: tiled kernels hit tails
	)
	for _, relu := range []bool{true, false} {
		for _, w := range []int{1, 8} {
			name := "linear"
			if relu {
				name = "linear-relu"
			}
			t.Run(name, func(t *testing.T) {
				defer parallel.SetWorkers(parallel.SetWorkers(w))
				run := func(fused bool) []float32 {
					r := rng.New(41)
					tp := NewTape()
					xt := randTensor(r, m, k)
					for i := range xt.Data { // sprinkle exact zeros
						if r.Float64() < 0.5 {
							xt.Data[i] = 0
						}
					}
					x := Param(xt)
					wt := Param(randTensor(r, k, n))
					b := Param(randTensor(r, 1, n))
					var out *Var
					if fused {
						out = tp.LinearBiasReLU(x, wt, b, relu)
					} else {
						out = tp.AddBias(tp.MatMul(x, wt), b)
						if relu {
							out = tp.ReLU(out)
						}
					}
					return backprop(tp, out, randTensor(r, m, n), x, wt, b)
				}
				unfused := run(false)
				fused := run(true)
				if len(unfused) != len(fused) {
					t.Fatalf("result sizes differ: %d vs %d", len(unfused), len(fused))
				}
				for i := range unfused {
					if math.Float32bits(unfused[i]) != math.Float32bits(fused[i]) {
						t.Fatalf("workers=%d float %d differs: unfused %v vs fused %v", w, i, unfused[i], fused[i])
					}
				}
			})
		}
	}
}

// TestMatMulZeroSkipSemantics pins the sparsity fast path of the tiled
// kernels: an exactly-zero multiplier skips its term entirely, so NaN and
// Inf entries in the other operand's corresponding rows never contaminate
// the output. This is the semantic the pre-tiling kernels had; the blocked
// kernels must preserve it in full, partial, and mixed blocks.
func TestMatMulZeroSkipSemantics(t *testing.T) {
	const m, k, n = 3, 14, 5
	// Zero columns chosen to exercise every blocked-kernel case: a mixed
	// block (position 1 of block 0), an entirely-zero block (4..7), and a
	// zero in the scalar tail (13).
	zero := map[int]bool{1: true, 4: true, 5: true, 6: true, 7: true, 13: true}
	a := New(m, k)
	b := New(k, n)
	for i := 0; i < m; i++ {
		for kk := 0; kk < k; kk++ {
			if !zero[kk] {
				a.Set(i, kk, float32(i+kk+1))
			}
		}
	}
	poison := []float32{float32(math.NaN()), float32(math.Inf(1))}
	for kk := 0; kk < k; kk++ {
		for j := 0; j < n; j++ {
			if zero[kk] {
				b.Set(kk, j, poison[(kk+j)%2])
			} else {
				b.Set(kk, j, float32(kk-j)*0.25)
			}
		}
	}
	out := MatMul(a, b)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var want float32
			for kk := 0; kk < k; kk++ {
				if !zero[kk] {
					want += a.At(i, kk) * b.At(kk, j)
				}
			}
			got := out.At(i, j)
			if math.IsNaN(float64(got)) || math.IsInf(float64(got), 0) {
				t.Fatalf("row %d col %d: %v leaked through a zero multiplier", i, j, got)
			}
			if math.Float32bits(got) != math.Float32bits(want) {
				t.Fatalf("row %d col %d: got %v want %v", i, j, got, want)
			}
		}
	}
	// The transposed kernels share the skip: aᵀ has the same zero rows.
	ta := MatMulTA(Transpose(a), b)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if math.Float32bits(ta.At(i, j)) != math.Float32bits(out.At(i, j)) {
				t.Fatalf("MatMulTA row %d col %d: got %v want %v", i, j, ta.At(i, j), out.At(i, j))
			}
		}
	}
}
