package tensor

import (
	"fmt"
	"math"
)

// Quantized storage for the inference-only serve path (DESIGN.md §13).
// Training never touches these formats: they compress weights and cached
// feature rows at rest, and the serve worker dequantizes into pooled f32
// scratch (AcquireScratch) before the exact f32 kernels run. Two formats:
//
//   - f16: IEEE 754 binary16 with round-to-nearest-even. For normal values
//     the round-trip relative error is at most 2⁻¹¹ (half the ulp of a
//     10-bit significand); values above 65504 overflow to ±Inf and
//     magnitudes below 2⁻²⁴ flush to zero, neither of which occurs in
//     trained weights or normalized features at sane scales.
//
//   - int8: symmetric per-row scaling. Each row stores scale = maxabs/127
//     and bytes round(v/scale) in [-127, 127]; the round-trip error is at
//     most scale/2 = maxabs(row)/254. All-zero rows store scale 0 and
//     decode to exact zeros.
//
// Both bounds are enforced by TestF16RoundTrip/TestInt8RoundTrip.

// QuantMode selects the serve-path storage format.
type QuantMode int

// Quantization modes. Off is the default: the serve path stays exact f32.
const (
	QuantOff QuantMode = iota
	QuantF16
	QuantInt8
)

// String implements fmt.Stringer.
func (m QuantMode) String() string {
	switch m {
	case QuantOff:
		return "off"
	case QuantF16:
		return "f16"
	case QuantInt8:
		return "int8"
	default:
		return fmt.Sprintf("quant(%d)", int(m))
	}
}

// ParseQuantMode validates a BETTY_QUANT value. The empty string means
// "unset" and yields QuantOff. Anything other than off/f16/int8 is an
// error: a typo must fail loudly rather than silently serve exact f32 when
// the operator asked for a compressed deployment (or vice versa).
func ParseQuantMode(v string) (QuantMode, error) {
	switch v {
	case "", "off":
		return QuantOff, nil
	case "f16":
		return QuantF16, nil
	case "int8":
		return QuantInt8, nil
	default:
		return QuantOff, fmt.Errorf("BETTY_QUANT=%q: unknown mode (want off, f16, or int8)", v)
	}
}

// --- float16 codec ---

// F16Encode converts v to IEEE binary16 with round-to-nearest-even,
// overflowing to ±Inf and flushing sub-half-subnormals to ±0.
func F16Encode(v float32) uint16 {
	bits := math.Float32bits(v)
	sign := uint16(bits>>16) & 0x8000
	exp := int32(bits>>23&0xff) - 127
	mant := bits & 0x7fffff
	switch {
	case exp == 128: // Inf / NaN
		if mant != 0 {
			return sign | 0x7e00 // quiet NaN
		}
		return sign | 0x7c00
	case exp > 15: // overflow → Inf
		return sign | 0x7c00
	case exp >= -14: // normal half
		// 10-bit significand: round the dropped 13 bits to nearest-even.
		h := uint32(exp+15)<<10 | mant>>13
		round := mant & 0x1fff
		if round > 0x1000 || (round == 0x1000 && h&1 == 1) {
			h++ // may carry into the exponent; that is the correct rounding
		}
		return sign | uint16(h)
	case exp >= -25: // subnormal half (exp -25 can still round up to q=1)
		// Implicit leading 1 becomes explicit: v = m·2^(exp-23), and the
		// half-subnormal quantum is 2^-24, so q = round(m·2^(exp+1)) =
		// m >> (-exp-1) rounded to nearest-even.
		m := mant | 0x800000
		shift := uint32(-exp - 1) // 14 (exp=-15) .. 24 (exp=-25)
		h := m >> shift
		round := m & (1<<shift - 1)
		half := uint32(1) << (shift - 1)
		if round > half || (round == half && h&1 == 1) {
			h++
		}
		return sign | uint16(h)
	default: // underflow → signed zero
		return sign
	}
}

// F16Decode converts an IEEE binary16 value back to float32 exactly (every
// half value is representable in single precision).
func F16Decode(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h >> 10 & 0x1f)
	mant := uint32(h & 0x3ff)
	switch {
	case exp == 0x1f: // Inf / NaN
		return math.Float32frombits(sign | 0x7f800000 | mant<<13)
	case exp != 0: // normal
		return math.Float32frombits(sign | (exp+112)<<23 | mant<<13)
	case mant != 0: // subnormal: value = mant * 2^-24
		return float32(mant) * float32(math.Ldexp(1, -24)) * signFactor(sign)
	default:
		return math.Float32frombits(sign) // signed zero
	}
}

func signFactor(signBit uint32) float32 {
	if signBit != 0 {
		return -1
	}
	return 1
}

// F16EncodeSlice encodes src into dst (same length).
func F16EncodeSlice(dst []uint16, src []float32) {
	if len(dst) != len(src) {
		panic("tensor: F16EncodeSlice length mismatch")
	}
	for i, v := range src {
		dst[i] = F16Encode(v)
	}
}

// F16DecodeSlice decodes src into dst (same length).
func F16DecodeSlice(dst []float32, src []uint16) {
	if len(dst) != len(src) {
		panic("tensor: F16DecodeSlice length mismatch")
	}
	for i, h := range src {
		dst[i] = F16Decode(h)
	}
}

// --- int8 per-row codec ---

// Int8Row is one row quantized with a symmetric per-row scale: the decoded
// value of entry j is float32(Q[j]) * Scale.
type Int8Row struct {
	Scale float32
	Q     []int8
}

// Int8EncodeRow quantizes src with scale maxabs/127 into dst (same length)
// and returns the scale. The maximum round-trip error is scale/2. An
// all-zero row (or one poisoned by non-finite values) gets scale 0, the
// sentinel Int8DecodeRow maps back to exact zeros.
func Int8EncodeRow(dst []int8, src []float32) (scale float32) {
	if len(dst) != len(src) {
		panic("tensor: Int8EncodeRow length mismatch")
	}
	var maxAbs float32
	for _, v := range src {
		a := float32(math.Abs(float64(v)))
		if a > maxAbs {
			maxAbs = a
		}
	}
	//bettyvet:ok floateq scale-sentinel: an exactly-zero (or non-finite) maxabs marks the all-zero row encoding, compared exactly by contract
	if maxAbs == 0 || math.IsInf(float64(maxAbs), 0) || math.IsNaN(float64(maxAbs)) {
		for i := range dst {
			dst[i] = 0
		}
		return 0
	}
	scale = maxAbs / 127
	inv := 1 / float64(scale)
	for i, v := range src {
		q := math.RoundToEven(float64(v) * inv)
		if q > 127 {
			q = 127
		} else if q < -127 {
			q = -127
		}
		dst[i] = int8(q)
	}
	return scale
}

// Int8DecodeRow reconstructs quantized values into dst: dst[j] = q[j]*scale.
// A zero scale (the all-zero-row sentinel) decodes to exact zeros.
func Int8DecodeRow(dst []float32, q []int8, scale float32) {
	if len(dst) != len(q) {
		panic("tensor: Int8DecodeRow length mismatch")
	}
	//bettyvet:ok floateq scale-sentinel: zero scale marks the all-zero row encoding, compared exactly by contract
	if scale == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	for i, v := range q {
		dst[i] = float32(v) * scale
	}
}

// QuantTensor is a tensor stored in a quantized format, decodable into f32
// scratch for the exact kernels. Exactly one of the format fields is
// populated, matching Mode.
type QuantTensor struct {
	Mode QuantMode
	Rows int
	Cols int
	// F16 holds Rows*Cols encoded halves when Mode == QuantF16.
	F16 []uint16
	// Scales/Q hold per-row scales and Rows*Cols quantized bytes when
	// Mode == QuantInt8.
	Scales []float32
	Q      []int8
}

// Quantize encodes t under mode. QuantOff returns nil: callers keep the
// original f32 tensor.
func Quantize(t *Tensor, mode QuantMode) *QuantTensor {
	switch mode {
	case QuantOff:
		return nil
	case QuantF16:
		q := &QuantTensor{Mode: mode, Rows: t.RowsN, Cols: t.ColsN, F16: make([]uint16, t.Len())}
		F16EncodeSlice(q.F16, t.Data)
		return q
	case QuantInt8:
		q := &QuantTensor{
			Mode:   mode,
			Rows:   t.RowsN,
			Cols:   t.ColsN,
			Scales: make([]float32, t.RowsN),
			Q:      make([]int8, t.Len()),
		}
		for i := 0; i < t.RowsN; i++ {
			q.Scales[i] = Int8EncodeRow(q.Q[i*t.ColsN:(i+1)*t.ColsN], t.Row(i))
		}
		return q
	default:
		panic(fmt.Sprintf("tensor: Quantize unknown mode %v", mode))
	}
}

// DecodeInto dequantizes q into dst, which must hold Rows*Cols floats —
// typically a pooled scratch slice from AcquireScratch.
func (q *QuantTensor) DecodeInto(dst []float32) {
	if len(dst) != q.Rows*q.Cols {
		panic(fmt.Sprintf("tensor: DecodeInto needs %d floats, got %d", q.Rows*q.Cols, len(dst)))
	}
	switch q.Mode {
	case QuantF16:
		F16DecodeSlice(dst, q.F16)
	case QuantInt8:
		for i := 0; i < q.Rows; i++ {
			Int8DecodeRow(dst[i*q.Cols:(i+1)*q.Cols], q.Q[i*q.Cols:(i+1)*q.Cols], q.Scales[i])
		}
	default:
		panic(fmt.Sprintf("tensor: DecodeInto unknown mode %v", q.Mode))
	}
}

// Bytes returns the storage footprint of the quantized form.
func (q *QuantTensor) Bytes() int64 {
	switch q.Mode {
	case QuantF16:
		return int64(len(q.F16)) * 2
	case QuantInt8:
		return int64(len(q.Q)) + int64(len(q.Scales))*4
	default:
		return 0
	}
}
