package tensor

import (
	"fmt"
	"math/bits"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
)

// The tape buffer pool recycles tensor backing slices across forward/
// backward passes. Every training step allocates the same shapes — the
// activations and gradients of the fixed model applied to similarly sized
// micro-batches — so the K micro-batches of a batch (and every batch after
// the first) can run out of one arena instead of hammering the garbage
// collector with fresh allocations.
//
// The pool is a set of power-of-two size classes, each a LIFO stack of
// slices, guarded by one mutex (acquire/release are rare relative to the
// kernel work done on each buffer). Acquired slices are always zeroed, so
// a pooled tensor is indistinguishable from a freshly made one and pooling
// cannot change any numerical result: training with the pool on and off is
// bitwise-identical by construction.
//
// Pooling defaults to on; BETTY_POOL=0 (or SetPooling(false)) disables it,
// turning acquire/release into plain make/no-op for A/B benchmarking.

const (
	// poolMinBits..poolMaxBits bound the size classes: slices shorter than
	// 2^poolMinBits are cheaper to allocate than to pool, and slices above
	// 2^poolMaxBits (256 Mi floats = 1 GiB) are returned to the GC.
	poolMinBits = 6
	poolMaxBits = 28
	// poolByteCap bounds the bytes retained across all classes; releases
	// beyond it are dropped so a one-off giant batch cannot pin memory.
	poolByteCap = 1 << 31
)

var (
	poolEnabled atomic.Bool
	poolMu      sync.Mutex
	poolClasses [poolMaxBits + 1][][]float32
	poolBytes   int64 // retained bytes, guarded by poolMu

	poolAcquires atomic.Int64
	poolHits     atomic.Int64
	poolReleases atomic.Int64
)

func init() { poolEnabled.Store(defaultPooling()) }

// ParsePoolMode validates a BETTY_POOL override, accepting exactly the
// strconv.ParseBool spellings (1/0, t/f, true/false, ...). The empty
// string means "unset" and returns the default (pooling on). Garbage is an
// error: a typo must fail loudly, not silently run an A/B benchmark with
// the wrong arm.
func ParsePoolMode(v string) (bool, error) {
	if v == "" {
		return true, nil
	}
	on, err := strconv.ParseBool(v)
	if err != nil {
		return false, fmt.Errorf("BETTY_POOL=%q: not a boolean (want 1/0, true/false, t/f)", v)
	}
	return on, nil
}

// defaultPooling reads the BETTY_POOL environment toggle (default on). An
// invalid BETTY_POOL value panics at startup.
func defaultPooling() bool {
	on, err := ParsePoolMode(os.Getenv("BETTY_POOL"))
	if err != nil {
		panic("tensor: " + err.Error())
	}
	return on
}

// PoolingEnabled reports whether the tape buffer pool is active.
func PoolingEnabled() bool { return poolEnabled.Load() }

// SetPooling switches the tape buffer pool on or off and returns the
// previous setting. Disabling also drops every retained buffer, so
// benchmarks toggling the pool start from a cold arena either way:
//
//	defer tensor.SetPooling(tensor.SetPooling(false))
func SetPooling(on bool) bool {
	prev := poolEnabled.Swap(on)
	if !on {
		DrainPool()
	}
	return prev
}

// PoolStats returns the cumulative acquire, acquire-hit, and release
// counts. The hit ratio is the fraction of tape tensors served without a
// fresh allocation.
func PoolStats() (acquires, hits, releases int64) {
	return poolAcquires.Load(), poolHits.Load(), poolReleases.Load()
}

// DrainPool drops every retained buffer and resets the statistics.
func DrainPool() {
	poolMu.Lock()
	for c := range poolClasses {
		poolClasses[c] = nil
	}
	poolBytes = 0
	poolMu.Unlock()
	poolAcquires.Store(0)
	poolHits.Store(0)
	poolReleases.Store(0)
}

// sizeClass returns the class whose slices can hold n floats: the smallest
// c with 1<<c >= n, clamped into [poolMinBits, poolMaxBits]; ok is false
// when n is too large to pool.
func sizeClass(n int) (c int, ok bool) {
	c = bits.Len(uint(n - 1))
	if c < poolMinBits {
		c = poolMinBits
	}
	return c, c <= poolMaxBits
}

// acquire returns a zeroed slice of length n, recycled from the pool when
// possible. The zeroing makes pooled and fresh slices indistinguishable.
func acquire(n int) []float32 {
	if n == 0 {
		return nil
	}
	if !poolEnabled.Load() {
		return make([]float32, n)
	}
	poolAcquires.Add(1)
	c, ok := sizeClass(n)
	if !ok {
		return make([]float32, n)
	}
	poolMu.Lock()
	stack := poolClasses[c]
	if len(stack) == 0 {
		poolMu.Unlock()
		return make([]float32, n, 1<<c)
	}
	s := stack[len(stack)-1]
	poolClasses[c] = stack[:len(stack)-1]
	poolBytes -= int64(cap(s)) * 4
	poolMu.Unlock()
	poolHits.Add(1)
	s = s[:n]
	clear(s)
	return s
}

// AcquireScratch returns a zeroed length-n float32 scratch slice drawn from
// the tape buffer pool (or the heap when pooling is off). It is the
// tape-free entry point for transient kernel buffers — the quantized serve
// path dequantizes weight and feature tiles into these between batches.
// Every AcquireScratch must be paired with a ReleaseScratch (bettyvet's
// pooldisc analyzer enforces the pairing), and the slice must not be used
// after release.
func AcquireScratch(n int) []float32 { return acquire(n) }

// ReleaseScratch returns a scratch slice obtained from AcquireScratch to
// the pool. Passing nil is a no-op.
func ReleaseScratch(s []float32) { release(s) }

// release returns a slice to the pool. Slices are binned by the class
// their capacity fills (floor log2), so any slice stored in class c has
// cap >= 1<<c and satisfies every acquire routed to that class.
func release(s []float32) {
	if cap(s) == 0 || !poolEnabled.Load() {
		return
	}
	c := bits.Len(uint(cap(s))) - 1 // floor log2
	if c < poolMinBits || c > poolMaxBits {
		return
	}
	poolReleases.Add(1)
	poolMu.Lock()
	if poolBytes+int64(cap(s))*4 <= poolByteCap {
		poolClasses[c] = append(poolClasses[c], s)
		poolBytes += int64(cap(s)) * 4
	}
	poolMu.Unlock()
}
