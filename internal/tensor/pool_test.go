package tensor

import "testing"

// TestPoolAcquireZeroed proves a recycled slice comes back zeroed even
// after its previous owner dirtied it — the property that makes pooling
// numerically invisible.
func TestPoolAcquireZeroed(t *testing.T) {
	defer SetPooling(SetPooling(true))
	DrainPool()
	s := acquire(100)
	for i := range s {
		s[i] = float32(i + 1)
	}
	release(s)
	got := acquire(100)
	for i, v := range got {
		if v != 0 {
			t.Fatalf("recycled slice not zeroed at %d: %v", i, v)
		}
	}
}

// TestPoolReusesBacking proves acquire actually recycles: after a release,
// an acquire of the same class returns the identical backing array.
func TestPoolReusesBacking(t *testing.T) {
	defer SetPooling(SetPooling(true))
	DrainPool()
	s := acquire(1000)
	p := &s[0]
	release(s)
	got := acquire(900) // same power-of-two class (1024)
	if &got[0] != p {
		t.Fatal("acquire did not recycle the released backing array")
	}
	acq, hits, rels := PoolStats()
	if acq != 2 || hits != 1 || rels != 1 {
		t.Fatalf("stats = %d acquires, %d hits, %d releases; want 2, 1, 1", acq, hits, rels)
	}
}

// TestPoolDisabled proves the BETTY_POOL=0 path allocates fresh slices and
// retains nothing.
func TestPoolDisabled(t *testing.T) {
	defer SetPooling(SetPooling(false))
	s := acquire(64)
	release(s)
	if acq, hits, rels := PoolStats(); acq != 0 || hits != 0 || rels != 0 {
		t.Fatalf("disabled pool recorded activity: %d/%d/%d", acq, hits, rels)
	}
}

// TestSizeClass pins the class mapping at its boundaries.
func TestSizeClass(t *testing.T) {
	for _, tc := range []struct {
		n, class int
		ok       bool
	}{
		{1, poolMinBits, true},
		{64, poolMinBits, true},
		{65, 7, true},
		{1 << 20, 20, true},
		{1<<20 + 1, 21, true},
		{1 << poolMaxBits, poolMaxBits, true},
		{1<<poolMaxBits + 1, poolMaxBits + 1, false},
	} {
		c, ok := sizeClass(tc.n)
		if c != tc.class || ok != tc.ok {
			t.Fatalf("sizeClass(%d) = %d,%v; want %d,%v", tc.n, c, ok, tc.class, tc.ok)
		}
	}
}

// TestTapeReleaseRecycles proves the tape/pool round trip: Release returns
// every tape buffer, so an identical second pass is served entirely from
// the pool, reusing the rewound header arenas.
func TestTapeReleaseRecycles(t *testing.T) {
	defer SetPooling(SetPooling(true))
	DrainPool()
	tp := NewTape()
	pass := func() *Var {
		a := Param(New(32, 16))
		b := Param(New(32, 16))
		out := tp.Sum(tp.Mul(tp.Add(a, b), Leaf(New(32, 16))))
		tp.Backward(out)
		return out
	}
	pass()
	tp.Release()
	_, _, rels := PoolStats()
	if rels == 0 {
		t.Fatal("Release returned nothing to the pool")
	}
	DrainPool()
	pass() // fill the pool with this graph's buffers
	tp.Release()
	preAcq, preHits, _ := PoolStats()
	pass()
	acq, hits, _ := PoolStats()
	if gotAcq, gotHits := acq-preAcq, hits-preHits; gotAcq != gotHits {
		t.Fatalf("steady-state pass missed the pool: %d acquires, %d hits", gotAcq, gotHits)
	}
	if tp.NumOps() == 0 {
		t.Fatal("reused tape recorded no ops")
	}
	tp.Release()
	if tp.NumOps() != 0 || tp.ValueBytes() != 0 {
		t.Fatal("Release did not rewind the tape")
	}
	tp.Release() // idempotent
}

// TestReleaseKeepsLeafGrads proves parameter gradients survive Release:
// only interior storage is tape-owned.
func TestReleaseKeepsLeafGrads(t *testing.T) {
	defer SetPooling(SetPooling(true))
	tp := NewTape()
	a := Param(FromSlice(1, 2, []float32{1, 2}))
	loss := tp.Sum(tp.Mul(a, a))
	tp.Backward(loss)
	want := append([]float32(nil), a.Grad.Data...)
	tp.Release()
	for i, v := range a.Grad.Data {
		if v != want[i] {
			t.Fatalf("parameter grad changed by Release at %d: %v != %v", i, v, want[i])
		}
	}
	if want[0] != 2 || want[1] != 4 {
		t.Fatalf("d(sum a^2)/da = %v, want [2 4]", want)
	}
}
